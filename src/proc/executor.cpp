#include "proc/executor.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace ampom::proc {

Executor::Executor(sim::Simulator& simulator, Process& process, NodeCosts costs)
    : sim_{simulator}, process_{process}, costs_{costs} {}

sim::Time Executor::scale_cpu(sim::Time t) const {
  const double share = cpu_share();
  const double factor = costs_.cpu_speed * (share <= 0.0 ? 1e-3 : share);
  return t.scaled(1.0 / factor);
}

void Executor::set_ram_limit_pages(std::uint64_t pages) {
  ram_limit_pages_ = pages;
  lru_.clear();
  lru_pos_.clear();
  if (pages > 0) {
    // Seed with currently local pages (deterministic order).
    for (const mem::PageId p : process_.aspace().pages_in_state(mem::PageState::Local)) {
      lru_.push_back(p);
      lru_pos_[p] = std::prev(lru_.end());
    }
  }
}

void Executor::touch_lru(mem::PageId page) {
  if (ram_limit_pages_ == 0) {
    return;
  }
  const auto it = lru_pos_.find(page);
  if (it != lru_pos_.end()) {
    lru_.erase(it->second);
    lru_pos_.erase(it);
  }
  lru_.push_front(page);
  lru_pos_[page] = lru_.begin();
}

// Make room for `page` if at the limit; returns the eviction CPU cost.
sim::Time Executor::maybe_evict_for(mem::PageId page) {
  if (ram_limit_pages_ == 0) {
    return sim::Time::zero();
  }
  sim::Time cost = sim::Time::zero();
  while (lru_pos_.size() >= ram_limit_pages_ && !lru_.empty()) {
    const mem::PageId victim = lru_.back();
    if (victim == page) {
      break;  // never evict the page being installed
    }
    lru_.pop_back();
    lru_pos_.erase(victim);
    process_.aspace().evict_to_swap(victim);
    ++stats_.evictions;
    cost += scale_cpu(costs_.map_page);  // unmap + queue to swap
  }
  return cost;
}

void Executor::start() {
  if (started_) {
    throw std::logic_error("Executor::start called twice");
  }
  started_ = true;
  stats_.started_at = sim_.now();
  last_fault_wall_ = sim_.now();
  last_fault_cpu_ = stats_.cpu_time;
  schedule_burst(sim::Time::zero());
}

void Executor::schedule_burst(sim::Time delay) {
  // The generation stamp invalidates events that were in flight when a
  // crash interrupted the run. "Stale events see Frozen and return" is not
  // enough on its own: recovery may freeze and resume within one instant
  // (recover_to_home), in which case a pre-crash burst event fires against a
  // Running process and a second burst loop starts consuming the stream.
  //
  // The burst chain follows the process: routing by current_node hands the
  // chain to the destination's partition after a migration commit (which
  // runs in the barrier context) instead of leaving it wherever the commit
  // happened to execute.
  sim_.schedule_on_node(process_.current_node(), sim_.now() + delay,
                        [this, gen = run_gen_] {
                          if (gen != run_gen_) {
                            return;
                          }
                          run_burst();
                        });
}

void Executor::finish(sim::Time at_delay) {
  sim_.schedule_on_node(process_.current_node(), sim_.now() + at_delay,
                        [this, gen = run_gen_] {
                          if (gen != run_gen_) {
                            return;
                          }
                          process_.set_state(ProcState::Finished);
                          stats_.finished = true;
                          stats_.finished_at = sim_.now();
                          on_frozen_ = nullptr;  // a pending freeze request is moot now
                          if (on_finished_) {
                            on_finished_();
                          }
                        });
}

bool Executor::take_freeze() {
  if (!on_frozen_) {
    return false;
  }
  process_.set_state(ProcState::Frozen);
  auto cb = std::move(on_frozen_);
  on_frozen_ = nullptr;
  cb();
  return true;
}

void Executor::request_freeze(std::function<void()> on_frozen) {
  if (process_.state() == ProcState::Finished) {
    throw std::logic_error("Executor::request_freeze: process already finished");
  }
  if (on_frozen_) {
    throw std::logic_error("Executor::request_freeze: freeze already pending");
  }
  on_frozen_ = std::move(on_frozen);
}

void Executor::consume_pending(mem::PageId touched) {
  if (touched != mem::kInvalidPage) {
    process_.note_touch(touched);
    touch_lru(touched);
    if (touch_observer_) {
      touch_observer_(touched);
    }
  }
  pending_.reset();
  pending_cpu_counted_ = false;
  ++stats_.refs_consumed;
}

void Executor::run_burst() {
  if (process_.state() == ProcState::Frozen || process_.state() == ProcState::Finished) {
    return;
  }
  if (take_freeze()) {
    return;
  }
  process_.set_state(ProcState::Running);
  if (warmup_balance_ > sim::Time::zero()) {
    // Cold-cache warm-up after a migration: pay the CPMD balance down in
    // burst-sized slices so a pending freeze (re-migration) still gets its
    // safe point between slices — whatever is unpaid then carries over.
    const sim::Time pay = std::min(warmup_balance_, max_burst_);
    warmup_balance_ -= pay;
    stats_.warmup_paid += pay;
    schedule_burst(pay);
    return;
  }
  mem::AddressSpace& aspace = process_.aspace();
  sim::Time acc = sim::Time::zero();

  for (;;) {
    if (!pending_) {
      pending_ = process_.stream().next();
      pending_cpu_counted_ = false;
      if (!pending_) {
        finish(acc);
        return;
      }
    }
    const Ref ref = *pending_;
    if (!pending_cpu_counted_) {
      const sim::Time cpu = scale_cpu(ref.cpu);
      acc += cpu;
      stats_.cpu_time += cpu;
      pending_cpu_counted_ = true;
    }

    if (ref.kind == Ref::Kind::Syscall) {
      if (process_.migrated() && syscall_transport_) {
        begin_syscall(acc);
        return;
      }
      const sim::Time service = scale_cpu(costs_.syscall_service);
      acc += service;
      stats_.handler_time += service;
      ++stats_.syscalls_local;
      consume_pending(mem::kInvalidPage);
    } else {
      switch (aspace.classify(ref.page)) {
        case mem::AccessKind::Hit: {
          ++stats_.hits;
          consume_pending(ref.page);
          break;
        }
        case mem::AccessKind::FirstTouch: {
          acc += maybe_evict_for(ref.page);
          const sim::Time minor = scale_cpu(costs_.minor_fault);
          acc += minor;
          stats_.handler_time += minor;
          aspace.create_on_touch(ref.page);
          ++stats_.first_touches;
          consume_pending(ref.page);
          break;
        }
        case mem::AccessKind::SwapFault: {
          acc += maybe_evict_for(ref.page);
          const sim::Time swap = scale_cpu(costs_.swap_in);
          acc += swap;
          stats_.handler_time += swap;
          aspace.load_from_swap(ref.page);
          ++stats_.swap_faults;
          consume_pending(ref.page);
          break;
        }
        case mem::AccessKind::SoftFault:
        case mem::AccessKind::HardFault:
        case mem::AccessKind::InFlightWait: {
          begin_fault(ref.page, acc);
          return;
        }
      }
    }

    if (acc >= max_burst_) {
      // Yield so freezes and message handlers interleave with long bursts.
      schedule_burst(acc);
      return;
    }
  }
}

void Executor::begin_fault(mem::PageId page, sim::Time acc) {
  sim_.schedule_after(acc, [this, page] {
    if (process_.state() == ProcState::Frozen || take_freeze()) {
      return;  // migration intervened; resume_migrated() restarts the burst
    }
    process_.set_state(ProcState::Blocked);
    fault_started_ = sim_.now();
    // C_i: CPU fraction over the full previous fault-to-fault interval,
    // including the previous fault's stall — "the current CPU utilization
    // when r_i is recorded" (paper §3.1).
    {
      const sim::Time wall = sim_.now() - last_fault_wall_;
      const sim::Time cpu = stats_.cpu_time - last_fault_cpu_;
      if (wall > sim::Time::zero()) {
        const double f = cpu / wall;
        cpu_fraction_snapshot_ = f < 0.01 ? 0.01 : (f > 1.0 ? 1.0 : f);
      }
      last_fault_wall_ = sim_.now();
      last_fault_cpu_ = stats_.cpu_time;
    }
    pending_charge_ = costs_.fault_entry.scaled(1.0 / costs_.cpu_speed);
    stats_.handler_time += pending_charge_;
    // Classification may have improved while compute was accruing (the page
    // or its batch may have Arrived); the policy sees the current kind.
    const mem::AccessKind kind = process_.aspace().classify(page);
    switch (kind) {
      case mem::AccessKind::SoftFault:
        ++stats_.soft_faults;
        break;
      case mem::AccessKind::HardFault:
        ++stats_.hard_faults;
        break;
      case mem::AccessKind::InFlightWait:
        ++stats_.inflight_waits;
        break;
      default:
        // Became Local already (mapped as an urgent page of an earlier batch).
        complete_fault(page);
        return;
    }
    if (policy_ == nullptr) {
      throw std::logic_error("Executor: page fault with no fault policy installed");
    }
    policy_->on_fault(process_, page, kind);
  });
}

void Executor::charge_handler(sim::Time t) {
  const sim::Time scaled = t.scaled(1.0 / costs_.cpu_speed);
  pending_charge_ += scaled;
  stats_.handler_time += scaled;
}

void Executor::complete_fault(mem::PageId page) {
  if (process_.state() != ProcState::Blocked || !pending_ || pending_->page != page) {
    // Stale completion. A policy charge/arrival timer armed before a crash
    // interrupt outlives the run it belonged to — and recovery may already
    // have the process executing at home (even in the same instant, when
    // the balancer reclaims a just-crashed node's migrant). Consuming here
    // would double-count the reference; only the executor can tell the
    // timer its run is gone, so it is dropped here.
    return;
  }
  mem::AddressSpace& aspace = process_.aspace();
  if (aspace.state(page) != mem::PageState::Local) {
    throw std::logic_error("Executor::complete_fault: page is not Local");
  }
  const sim::Time eviction = maybe_evict_for(page);
  const sim::Time resume_delay = pending_charge_ + eviction;
  const sim::Time latency = (sim_.now() - fault_started_) + resume_delay;
  stats_.stall_time += latency;
  stats_.fault_latency_us.add(latency.us());
  pending_charge_ = sim::Time::zero();

  consume_pending(page);
  schedule_burst(resume_delay);
}

void Executor::begin_syscall(sim::Time acc) {
  sim_.schedule_after(acc, [this] {
    if (process_.state() == ProcState::Frozen || take_freeze()) {
      return;
    }
    process_.set_state(ProcState::Blocked);
    fault_started_ = sim_.now();
    ++stats_.syscalls_redirected;
    syscall_transport_(++syscall_seq_);
  });
}

void Executor::complete_syscall(std::uint64_t seq) {
  if (process_.state() != ProcState::Blocked || seq < syscall_seq_) {
    // Stale: a duplicate, or a response to a run a crash interrupt already
    // ended (see complete_fault). A *future* sequence stays a hard error.
    return;
  }
  if (seq != syscall_seq_) {
    throw std::logic_error("Executor::complete_syscall: unexpected sequence number");
  }
  stats_.stall_time += sim_.now() - fault_started_;
  consume_pending(mem::kInvalidPage);
  schedule_burst(sim::Time::zero());
}

void Executor::crash_interrupt() {
  if (process_.state() == ProcState::Finished) {
    return;
  }
  on_frozen_ = nullptr;
  pending_charge_ = sim::Time::zero();
  process_.set_state(ProcState::Frozen);
  ++run_gen_;  // orphan every burst/finish event from the interrupted run
}

void Executor::resume_migrated(NodeCosts new_costs) {
  if (process_.state() != ProcState::Frozen) {
    throw std::logic_error("Executor::resume_migrated: process is not frozen");
  }
  costs_ = new_costs;
  if (ram_limit_pages_ > 0) {
    set_ram_limit_pages(ram_limit_pages_);  // rebuild LRU over surviving pages
  }
  process_.set_state(ProcState::Running);
  last_fault_wall_ = sim_.now();
  last_fault_cpu_ = stats_.cpu_time;
  schedule_burst(sim::Time::zero());
}

double Executor::recent_cpu_fraction() const { return cpu_fraction_snapshot_; }

}  // namespace ampom::proc
