#pragma once
// The executor's view of an application: a stream of page references.
//
// A reference is "run for `cpu` of compute, then touch `page`". Generators
// in workload/ model the HPC Challenge kernels; TraceStream replays explicit
// traces in tests. The interface lives with its consumer (the executor).

#include <cstdint>
#include <optional>
#include <vector>

#include "mem/page.hpp"
#include "simcore/time.hpp"

namespace ampom::proc {

struct Ref {
  enum class Kind : std::uint8_t {
    Memory,   // touch `page` after `cpu` of compute
    Syscall,  // after `cpu` of compute, issue a system call (page ignored)
  };
  mem::PageId page{mem::kInvalidPage};
  sim::Time cpu{sim::Time::zero()};
  Kind kind{Kind::Memory};
};

class ReferenceStream {
 public:
  virtual ~ReferenceStream() = default;
  ReferenceStream() = default;
  ReferenceStream(const ReferenceStream&) = delete;
  ReferenceStream& operator=(const ReferenceStream&) = delete;

  // Next reference; nullopt when the program finishes.
  [[nodiscard]] virtual std::optional<Ref> next() = 0;

  [[nodiscard]] virtual const char* name() const = 0;

  // Total bytes the program allocates (drives the address-space layout).
  [[nodiscard]] virtual sim::Bytes memory_bytes() const = 0;

  [[nodiscard]] std::uint64_t emitted() const { return emitted_; }

 protected:
  void count_emit() { ++emitted_; }

 private:
  std::uint64_t emitted_{0};
};

// Replays a fixed trace — the unit-test workhorse.
class TraceStream final : public ReferenceStream {
 public:
  TraceStream(std::vector<Ref> refs, sim::Bytes memory_bytes)
      : refs_{std::move(refs)}, memory_bytes_{memory_bytes} {}

  [[nodiscard]] std::optional<Ref> next() override {
    if (pos_ >= refs_.size()) {
      return std::nullopt;
    }
    count_emit();
    return refs_[pos_++];
  }

  [[nodiscard]] const char* name() const override { return "trace"; }
  [[nodiscard]] sim::Bytes memory_bytes() const override { return memory_bytes_; }

 private:
  std::vector<Ref> refs_;
  sim::Bytes memory_bytes_;
  std::size_t pos_{0};
};

}  // namespace ampom::proc
