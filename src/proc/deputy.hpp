#pragma once
// The deputy process (paper §2.2): after migration, the original process
// instance at the home node answers remote paging requests from its HPT and
// executes redirected system calls on behalf of the migrant.

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "mem/ledger.hpp"
#include "mem/page_table.hpp"
#include "net/fabric.hpp"
#include "proc/costs.hpp"
#include "simcore/simulator.hpp"
#include "trace/trace.hpp"

namespace ampom::proc {

struct DeputyStats {
  std::uint64_t requests_served{0};
  std::uint64_t pages_served{0};
  std::uint64_t urgent_pages_served{0};
  std::uint64_t syscalls_served{0};
  std::uint64_t flush_pages_received{0};
  std::uint64_t requests_stalled_on_flush{0};
  // Reliability counters (all zero when reliability is off).
  std::uint64_t pages_replayed{0};      // idempotent re-sends of already-shipped pages
  std::uint64_t duplicate_flushes{0};   // flush arrivals for pages already home
  std::uint64_t pages_recovered{0};     // pages reclaimed from a crashed host
};

class Deputy {
 public:
  Deputy(sim::Simulator& simulator, net::Fabric& fabric, WireCosts wire, NodeCosts costs,
         net::NodeId home_node, std::uint64_t pid, std::uint64_t page_count,
         mem::PageLedger* ledger);

  // Called by the migration engine once the migrant is resumed.
  void begin_service(net::NodeId migrant_node) { migrant_node_ = migrant_node; }

  // Where the deputy believes its migrant runs (kInvalidNode before the
  // first begin_service and after recover_pages_from). The auditor checks
  // this against the process's actual node.
  [[nodiscard]] net::NodeId migrant_node() const { return migrant_node_; }

  // Reliability: remember which pages each request id shipped so a
  // retransmitted request replays the PageData (same wire bytes, deputy CPU
  // cost) without re-transferring ledger ownership, and answer flushed
  // pages with a FlushAck. Off by default — the classic deputy treats a
  // duplicate request as a protocol violation and keeps throwing.
  void set_reliability(bool enabled) { reliable_ = enabled; }
  [[nodiscard]] bool reliability() const { return reliable_; }

  // Failure recovery: the node holding this process's remote pages crashed.
  // Reclaims every page the HPT does not mark Here (the authoritative copies
  // died with the host; the deputy's frozen image stands in for them),
  // updates the ledger, and forgets the migrant. Returns pages reclaimed.
  std::uint64_t recover_pages_from(net::NodeId lost_node);

  // Observability: request service, replays and flush arrivals, correlated
  // by request id / page. Null (the default) is a no-op. Not owned.
  void set_trace(trace::TraceRecorder* recorder) { trace_ = recorder; }

  // The HPT; the migration engine populates it during the freeze.
  [[nodiscard]] mem::PageTable& hpt() { return hpt_; }
  [[nodiscard]] const mem::PageTable& hpt() const { return hpt_; }

  // Node router entry points.
  void on_page_request(const net::PageRequest& request);
  void on_syscall_request(const net::SyscallRequest& request);
  // Re-migration: a page flushed back from the previous host arrives home.
  // Serves any request that was waiting for it.
  void on_flush_page(net::NodeId from, const net::FlushPage& flush);

  [[nodiscard]] const DeputyStats& stats() const { return stats_; }

 private:
  sim::Simulator& sim_;
  net::Fabric& fabric_;
  WireCosts wire_;
  NodeCosts costs_;
  net::NodeId home_node_;
  net::NodeId migrant_node_{net::kInvalidNode};
  std::uint64_t pid_;
  mem::PageTable hpt_;
  mem::PageLedger* ledger_;
  sim::Time busy_until_{sim::Time::zero()};
  DeputyStats stats_;
  // Requests for pages still being flushed back (re-migration): page ->
  // pending (request_id, urgent) pairs, served on flush arrival.
  std::map<mem::PageId, std::vector<std::pair<std::uint64_t, bool>>> waiting_on_flush_;
  bool reliable_{false};
  // Reliability: request_id -> pages already shipped for it (replay source).
  std::map<std::uint64_t, std::set<mem::PageId>> served_;
  trace::TraceRecorder* trace_{nullptr};

  void ship_page(mem::PageId page, std::uint64_t request_id, bool urgent);
  void replay_page(mem::PageId page, std::uint64_t request_id, bool urgent);
};

}  // namespace ampom::proc
