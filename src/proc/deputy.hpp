#pragma once
// The deputy process (paper §2.2): after migration, the original process
// instance at the home node answers remote paging requests from its HPT and
// executes redirected system calls on behalf of the migrant.

#include <cstdint>
#include <map>
#include <vector>

#include "mem/ledger.hpp"
#include "mem/page_table.hpp"
#include "net/fabric.hpp"
#include "proc/costs.hpp"
#include "simcore/simulator.hpp"

namespace ampom::proc {

struct DeputyStats {
  std::uint64_t requests_served{0};
  std::uint64_t pages_served{0};
  std::uint64_t urgent_pages_served{0};
  std::uint64_t syscalls_served{0};
  std::uint64_t flush_pages_received{0};
  std::uint64_t requests_stalled_on_flush{0};
};

class Deputy {
 public:
  Deputy(sim::Simulator& simulator, net::Fabric& fabric, WireCosts wire, NodeCosts costs,
         net::NodeId home_node, std::uint64_t pid, std::uint64_t page_count,
         mem::PageLedger* ledger);

  // Called by the migration engine once the migrant is resumed.
  void begin_service(net::NodeId migrant_node) { migrant_node_ = migrant_node; }

  // The HPT; the migration engine populates it during the freeze.
  [[nodiscard]] mem::PageTable& hpt() { return hpt_; }
  [[nodiscard]] const mem::PageTable& hpt() const { return hpt_; }

  // Node router entry points.
  void on_page_request(const net::PageRequest& request);
  void on_syscall_request(const net::SyscallRequest& request);
  // Re-migration: a page flushed back from the previous host arrives home.
  // Serves any request that was waiting for it.
  void on_flush_page(net::NodeId from, const net::FlushPage& flush);

  [[nodiscard]] const DeputyStats& stats() const { return stats_; }

 private:
  sim::Simulator& sim_;
  net::Fabric& fabric_;
  WireCosts wire_;
  NodeCosts costs_;
  net::NodeId home_node_;
  net::NodeId migrant_node_{net::kInvalidNode};
  std::uint64_t pid_;
  mem::PageTable hpt_;
  mem::PageLedger* ledger_;
  sim::Time busy_until_{sim::Time::zero()};
  DeputyStats stats_;
  // Requests for pages still being flushed back (re-migration): page ->
  // pending (request_id, urgent) pairs, served on flush arrival.
  std::map<mem::PageId, std::vector<std::pair<std::uint64_t, bool>>> waiting_on_flush_;

  void ship_page(mem::PageId page, std::uint64_t request_id, bool urgent);
};

}  // namespace ampom::proc
