#pragma once
// The paper's "NoPrefetch" baseline (§5.1): the FFA-variant that migrates
// three pages and fetches every missing page from the original node on
// demand, one page per fault, with no prefetching.

#include <cstdint>

#include "proc/executor.hpp"
#include "proc/fault_policy.hpp"
#include "proc/paging_client.hpp"

namespace ampom::proc {

class DemandPagingPolicy final : public FaultPolicy {
 public:
  DemandPagingPolicy(sim::Simulator& simulator, Executor& executor, PagingClient& client);

  void on_fault(Process& process, mem::PageId page, mem::AccessKind kind) override;

  // Wired to PagingClient::set_arrival_handler by the scenario builder.
  void on_arrival(mem::PageId page, bool urgent);

  [[nodiscard]] std::uint64_t faults_handled() const { return faults_handled_; }

 private:
  sim::Simulator& sim_;
  Executor& executor_;
  PagingClient& client_;
  mem::PageId blocked_page_{mem::kInvalidPage};
  std::uint64_t faults_handled_{0};
};

}  // namespace ampom::proc
