#pragma once
// Migrant-side remote-paging transport: batches page requests to the home
// node's deputy and dispatches PageData arrivals to the fault policy.

#include <cstdint>
#include <functional>
#include <vector>

#include "mem/page.hpp"
#include "net/fabric.hpp"
#include "proc/costs.hpp"
#include "simcore/simulator.hpp"

namespace ampom::proc {

struct PagingClientStats {
  std::uint64_t fault_requests{0};     // requests carrying an urgent page (Fig. 7 metric)
  std::uint64_t prefetch_requests{0};  // requests with no urgent page
  std::uint64_t pages_requested{0};
  std::uint64_t prefetch_pages_requested{0};  // pages beyond the urgent one
  std::uint64_t pages_arrived{0};
};

class PagingClient {
 public:
  PagingClient(sim::Simulator& simulator, net::Fabric& fabric, WireCosts wire,
               net::NodeId self_node, net::NodeId home_node, std::uint64_t pid)
      : sim_{simulator},
        fabric_{fabric},
        wire_{wire},
        self_node_{self_node},
        home_node_{home_node},
        pid_{pid} {}

  // Page arrival callback: (page, urgent).
  void set_arrival_handler(std::function<void(mem::PageId, bool)> fn) {
    on_arrival_ = std::move(fn);
  }

  // Send one batched request. `urgent` must be pages.front() when present.
  void request_pages(const std::vector<mem::PageId>& pages, mem::PageId urgent);

  // Node router entry point.
  void on_page_data(const net::PageData& data);

  [[nodiscard]] const PagingClientStats& stats() const { return stats_; }

 private:
  sim::Simulator& sim_;
  net::Fabric& fabric_;
  WireCosts wire_;
  net::NodeId self_node_;
  net::NodeId home_node_;
  std::uint64_t pid_;
  std::uint64_t next_request_id_{1};
  std::function<void(mem::PageId, bool)> on_arrival_;
  PagingClientStats stats_;
};

}  // namespace ampom::proc
