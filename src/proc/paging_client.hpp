#pragma once
// Migrant-side remote-paging transport: batches page requests to the home
// node's deputy and dispatches PageData arrivals to the fault policy.
//
// With reliability enabled (see PagingRetryConfig) each request is tracked
// until every page it named has arrived: a per-request timer derived from
// the InfoDaemon's RTT estimate retransmits the still-missing pages with
// exponential backoff, and page arrivals the tracker has already seen
// (retransmit races, network duplication) are suppressed before they reach
// the fault policy. Reliability off (the default) is byte- and event-exact
// with the original fire-and-forget client.

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "mem/page.hpp"
#include "net/fabric.hpp"
#include "proc/costs.hpp"
#include "simcore/simulator.hpp"
#include "trace/trace.hpp"

namespace ampom::proc {

struct PagingClientStats {
  std::uint64_t fault_requests{0};     // requests carrying an urgent page (Fig. 7 metric)
  std::uint64_t prefetch_requests{0};  // requests with no urgent page
  std::uint64_t pages_requested{0};
  std::uint64_t prefetch_pages_requested{0};  // pages beyond the urgent one
  std::uint64_t pages_arrived{0};
  // Reliability counters (all zero when reliability is off).
  std::uint64_t retransmits{0};          // requests re-sent after a timeout
  std::uint64_t timeouts{0};             // timer expiries (== retransmits unless capped)
  std::uint64_t duplicates_dropped{0};   // PageData arrivals already satisfied
  std::uint64_t pages_retransmitted{0};  // pages named across all retransmits
};

// Timeout/backoff policy for reliable paging. The timer detects *silence*,
// not slow service: the base timeout is
//   clamp(rtt_multiplier * rtt_estimate, min_timeout, max_timeout)
//     + missing_pages * per_page_allowance
// (a batch of N replies legitimately takes N serialization slots of the
// home node's TX port, so big prefetch batches get proportionally more
// patience), doubles (backoff_factor) per retry of the same request, and is
// re-armed — with the retry count reset — every time any page of the
// request arrives, since progress proves the path is alive.
//
// backoff_ceiling (off by default for bit-compatibility with earlier runs)
// changes the long-outage regime: the backoff curve is clamped to the
// ceiling instead of max_timeout, and once max_retries is reached the client
// keeps probing at the ceiling rate instead of throwing — a node that sits
// out a two-minute partition must neither give up nor, on heal, replay a
// burst of retries whose spacing grew unboundedly stale. jitter_fraction
// then desynchronizes those probes across clients: each timer is stretched
// by a deterministic per-(request, retry, node, pid) factor in
// [1, 1 + jitter_fraction), so every client healing from the same outage
// does not hammer the home node on the same instant.
struct PagingRetryConfig {
  bool enabled{false};
  double rtt_multiplier{4.0};
  sim::Time min_timeout{sim::Time::from_ms(1)};
  sim::Time max_timeout{sim::Time::from_ms(200)};
  sim::Time per_page_allowance{sim::Time::from_us(500)};
  double backoff_factor{2.0};
  std::uint32_t max_retries{10};  // exceeded => throws (ceiling off) or keeps probing (on)
  sim::Time backoff_ceiling{};    // zero = legacy: clamp at max_timeout, throw at max_retries
  double jitter_fraction{0.0};    // zero = no jitter; else timers stretch by < this fraction
};

class PagingClient {
 public:
  PagingClient(sim::Simulator& simulator, net::Fabric& fabric, WireCosts wire,
               net::NodeId self_node, net::NodeId home_node, std::uint64_t pid)
      : sim_{simulator},
        fabric_{fabric},
        wire_{wire},
        self_node_{self_node},
        home_node_{home_node},
        pid_{pid} {}

  // Page arrival callback: (page, urgent).
  void set_arrival_handler(std::function<void(mem::PageId, bool)> fn) {
    on_arrival_ = std::move(fn);
  }

  void set_retry_config(PagingRetryConfig config) { retry_ = config; }
  [[nodiscard]] const PagingRetryConfig& retry_config() const { return retry_; }

  // RTT estimate feeding the timeout formula (typically InfoDaemon::rtt_to
  // the home node). Unset or zero falls back to min_timeout.
  void set_rtt_provider(std::function<sim::Time()> fn) { rtt_provider_ = std::move(fn); }

  // Observability: fault spans (request -> urgent arrival), prefetch-batch
  // spans (request -> last arrival) and retransmit markers, correlated by
  // request id. Null (the default) leaves the client untouched. Not owned.
  void set_trace(trace::TraceRecorder* recorder) { trace_ = recorder; }

  // Send one batched request. `urgent` must be pages.front() when present.
  void request_pages(const std::vector<mem::PageId>& pages, mem::PageId urgent);

  // Node router entry point.
  void on_page_data(const net::PageData& data);

  // Abandon all in-flight requests (the process is leaving this node or the
  // node crashed); cancels every retransmit timer.
  void cancel_outstanding();

  [[nodiscard]] std::size_t outstanding_requests() const { return outstanding_.size(); }

  // Next id request_pages() will stamp; ids are monotone per client, which
  // the invariant auditor checks across epochs.
  [[nodiscard]] std::uint64_t next_request_id() const { return next_request_id_; }

  [[nodiscard]] const PagingClientStats& stats() const { return stats_; }

 private:
  struct Pending {
    std::vector<mem::PageId> pages;  // still-missing pages, request order
    mem::PageId urgent{mem::kInvalidPage};
    std::uint32_t retries{0};
    sim::Simulator::EventId timer;
  };

  [[nodiscard]] sim::Time base_timeout() const;
  void arm_timer(std::uint64_t request_id, Pending& pending);
  void on_timeout(std::uint64_t request_id);

  sim::Simulator& sim_;
  net::Fabric& fabric_;
  WireCosts wire_;
  net::NodeId self_node_;
  net::NodeId home_node_;
  std::uint64_t pid_;
  std::uint64_t next_request_id_{1};
  std::function<void(mem::PageId, bool)> on_arrival_;
  std::function<sim::Time()> rtt_provider_;
  PagingRetryConfig retry_;
  std::map<std::uint64_t, Pending> outstanding_;  // request_id -> tracker
  PagingClientStats stats_;
  trace::TraceRecorder* trace_{nullptr};
  // Tracing only: pages still expected per request, to close batch spans.
  struct TraceOpen {
    std::uint64_t remaining{0};
    bool fault{false};  // request carried an urgent page
  };
  std::map<std::uint64_t, TraceOpen> trace_open_;
};

}  // namespace ampom::proc
