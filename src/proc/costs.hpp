#pragma once
// Kernel-operation cost model (one per node), calibrated against the
// Gideon 300 numbers in driver/profile.hpp.

#include <cstdint>

#include "mem/page.hpp"
#include "simcore/time.hpp"
#include "simcore/units.hpp"

namespace ampom::proc {

struct NodeCosts {
  using Time = sim::Time;

  // Fault handling.
  Time fault_entry{Time::from_us(8)};    // trap + handler entry/exit
  Time minor_fault{Time::from_us(2)};    // first-touch page creation
  Time map_page{Time::from_us(4)};       // map one page from the lookaside buffer
  Time swap_in{Time::from_ms(3)};        // RAM-limit extension: load from local swap

  // Remote-paging protocol.
  Time request_build{Time::from_us(15)};     // assemble + send a paging request
  Time deputy_page{Time::from_us(25)};       // deputy: look up + ship one page
  Time deputy_request{Time::from_us(120)};   // deputy: per-request handling
  Time syscall_service{Time::from_us(60)};   // deputy: execute one redirected syscall

  // Migration engine.
  Time pack_page{Time::from_us(20)};       // pack one dirty page for transfer
  Time unpack_page{Time::from_us(12)};     // install one received page
  Time mpt_pack_entry{Time::from_ns(2500)};    // serialize one MPT entry
  Time mpt_unpack_entry{Time::from_ns(1200)};  // install one MPT entry
  Time freeze_setup{Time::from_ms(25)};    // capture registers, kernel state
  Time restore_setup{Time::from_ms(35)};   // rebuild task struct, resume

  // Relative CPU speed of this node (1.0 = reference 2 GHz P4).
  double cpu_speed{1.0};
};

// Protocol wire framing.
struct WireCosts {
  // Overhead bytes accompanying one 4 KiB page on the wire (Ethernet/IP/TCP
  // framing across ~3 frames plus ack traffic). Calibrated so that a 575 MB
  // openMosix migration over Fast Ethernet lands near the paper's 53.9 s.
  sim::Bytes page_overhead{410};
  sim::Bytes request_base{96};       // paging request header
  sim::Bytes request_per_page{8};    // page id in a batched request
  sim::Bytes pcb_bytes{64 * sim::kKiB};  // registers + kernel state
  sim::Bytes control_message{64};    // pings, acks, syscall messages

  [[nodiscard]] sim::Bytes page_message_bytes() const {
    return mem::kPageBytes + page_overhead;
  }
  [[nodiscard]] sim::Bytes request_bytes(std::uint64_t page_count) const {
    return request_base + request_per_page * page_count;
  }
};

}  // namespace ampom::proc
