#include "proc/process.hpp"

namespace ampom::proc {

namespace {
ReferenceStream& require_stream(const std::unique_ptr<ReferenceStream>& stream) {
  if (stream == nullptr) {
    throw std::invalid_argument("Process requires a reference stream");
  }
  return *stream;
}
}  // namespace

Process::Process(std::uint64_t pid, std::unique_ptr<ReferenceStream> stream, net::NodeId home)
    : stream_{std::move(stream)},
      aspace_{mem::RegionLayout::for_total_bytes(require_stream(stream_).memory_bytes())},
      home_{home},
      current_{home} {
  pcb_.pid = pid;
  last_touched_.fill(mem::kInvalidPage);
}

void Process::note_touch(mem::PageId page) {
  const mem::Region r = aspace_.layout().region_of(page);
  last_touched_[static_cast<std::size_t>(r)] = page;
}

std::array<mem::PageId, 3> Process::current_pages() const {
  const auto& layout = aspace_.layout();
  auto current_or_first = [&](mem::Region r) {
    const mem::PageId p = last_touched(r);
    return p == mem::kInvalidPage ? layout.begin(r) : p;
  };
  // "Data" in the paper's FFA description means the current heap page; fall
  // back to the data segment if the heap was never touched.
  mem::PageId data_page = last_touched(mem::Region::Heap);
  if (data_page == mem::kInvalidPage) {
    data_page = current_or_first(mem::Region::Data);
  }
  return {current_or_first(mem::Region::Code), data_page, current_or_first(mem::Region::Stack)};
}

}  // namespace ampom::proc
