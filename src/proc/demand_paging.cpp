#include "proc/demand_paging.hpp"

#include <stdexcept>

namespace ampom::proc {

DemandPagingPolicy::DemandPagingPolicy(sim::Simulator& simulator, Executor& executor,
                                       PagingClient& client)
    : sim_{simulator}, executor_{executor}, client_{client} {}

void DemandPagingPolicy::on_fault(Process& process, mem::PageId page, mem::AccessKind kind) {
  ++faults_handled_;
  if (kind != mem::AccessKind::HardFault) {
    // Without prefetching no page can be Arrived or InFlight at fault time.
    throw std::logic_error("DemandPagingPolicy: unexpected non-hard fault");
  }
  process.aspace().mark_in_flight(page);
  blocked_page_ = page;
  // Build and send the single-page request after the request-build cost.
  const sim::Time build = executor_.costs().request_build;
  sim_.schedule_after(build, [this, page] { client_.request_pages({page}, page); });
}

void DemandPagingPolicy::on_arrival(mem::PageId page, bool urgent) {
  Process& process = executor_.process();
  process.aspace().mark_arrived(page);
  if (!urgent || page != blocked_page_) {
    throw std::logic_error("DemandPagingPolicy: arrival does not match the blocked fault");
  }
  blocked_page_ = mem::kInvalidPage;
  process.aspace().map_arrived_page(page);
  executor_.charge_handler(executor_.costs().map_page);
  executor_.complete_fault(page);
}

}  // namespace ampom::proc
