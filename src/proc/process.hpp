#pragma once
// A migratable process: PCB + address space + reference stream + location.

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>

#include "mem/address_space.hpp"
#include "net/message.hpp"
#include "proc/reference_stream.hpp"

namespace ampom::proc {

enum class ProcState : std::uint8_t {
  Running,   // consuming its reference stream
  Blocked,   // waiting on a remote page or redirected syscall
  Frozen,    // mid-migration
  Finished,  // stream exhausted
};

struct Pcb {
  std::uint64_t pid{0};
  // Captured at freeze: registers, kernel stack, file table, signal state.
  // The simulator carries only its wire size.
};

class Process {
 public:
  Process(std::uint64_t pid, std::unique_ptr<ReferenceStream> stream, net::NodeId home);

  [[nodiscard]] std::uint64_t pid() const { return pcb_.pid; }
  [[nodiscard]] mem::AddressSpace& aspace() { return aspace_; }
  [[nodiscard]] const mem::AddressSpace& aspace() const { return aspace_; }
  [[nodiscard]] ReferenceStream& stream() { return *stream_; }
  [[nodiscard]] const ReferenceStream& stream() const { return *stream_; }

  [[nodiscard]] ProcState state() const { return state_; }
  void set_state(ProcState s) { state_ = s; }

  [[nodiscard]] net::NodeId home_node() const { return home_; }
  [[nodiscard]] net::NodeId current_node() const { return current_; }
  void set_current_node(net::NodeId n) {
    const net::NodeId prev = current_;
    current_ = n;
    if (prev != n && on_node_changed_) {
      on_node_changed_(prev, n);
    }
  }
  // Placement hook: the cluster world maintains per-node load counts
  // incrementally from this instead of rescanning every process (O(1) vs
  // O(processes) per load read — the difference at 100k processes).
  void set_on_node_changed(std::function<void(net::NodeId, net::NodeId)> fn) {
    on_node_changed_ = std::move(fn);
  }
  [[nodiscard]] bool migrated() const { return current_ != home_; }

  // Track the most recently touched page per region; the FFA-style engines
  // ship exactly these "currently accessed" pages (paper §2.1).
  void note_touch(mem::PageId page);
  [[nodiscard]] mem::PageId last_touched(mem::Region r) const {
    return last_touched_[static_cast<std::size_t>(r)];
  }
  // The three pages every lightweight scheme migrates: current code, current
  // data (heap), current stack page. Falls back to each region's first page
  // if a region was never touched.
  [[nodiscard]] std::array<mem::PageId, 3> current_pages() const;

 private:
  Pcb pcb_;
  std::unique_ptr<ReferenceStream> stream_;
  mem::AddressSpace aspace_;
  ProcState state_{ProcState::Running};
  net::NodeId home_;
  net::NodeId current_;
  std::function<void(net::NodeId, net::NodeId)> on_node_changed_;
  std::array<mem::PageId, mem::kRegionCount> last_touched_;
};

}  // namespace ampom::proc
