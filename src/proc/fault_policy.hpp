#pragma once
// Strategy interface the executor calls on every page fault.
//
// Implementations: migration::DemandPagingPolicy (the paper's NoPrefetch
// baseline) and core::AmpomPolicy (Algorithm 1). The policy owns the
// remote-paging conversation and must finish by resuming the executor via
// Executor::complete_fault once the faulted page is Local.

#include "mem/address_space.hpp"
#include "mem/page.hpp"

namespace ampom::proc {

class Process;

class FaultPolicy {
 public:
  virtual ~FaultPolicy() = default;
  FaultPolicy() = default;
  FaultPolicy(const FaultPolicy&) = delete;
  FaultPolicy& operator=(const FaultPolicy&) = delete;

  // The process faulted on `page`. `kind` is the classification at fault
  // time (SoftFault, HardFault or InFlightWait — the executor resolves the
  // cheap kinds itself).
  virtual void on_fault(Process& process, mem::PageId page, mem::AccessKind kind) = 0;
};

}  // namespace ampom::proc
