#include "proc/paging_client.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "simcore/fmt.hpp"

namespace ampom::proc {

namespace {

// splitmix64 finalizer over the mixed identity of one (request, retry, node,
// pid) tuple. Pure arithmetic on values every replica of a run computes
// identically, so the jitter is deterministic — same seed, same timers —
// while still decorrelating clients from each other.
std::uint64_t jitter_hash(std::uint64_t request_id, std::uint32_t retries, std::uint64_t node,
                          std::uint64_t pid) {
  std::uint64_t x = request_id;
  x = x * 0x9e3779b97f4a7c15ULL + retries;
  x = x * 0x9e3779b97f4a7c15ULL + node;
  x = x * 0x9e3779b97f4a7c15ULL + pid;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

}  // namespace

void PagingClient::request_pages(const std::vector<mem::PageId>& pages, mem::PageId urgent) {
  if (pages.empty()) {
    throw std::logic_error("PagingClient::request_pages: empty batch");
  }
  if (urgent != mem::kInvalidPage && pages.front() != urgent) {
    throw std::logic_error("PagingClient::request_pages: urgent page must lead the batch");
  }
  net::PageRequest req;
  req.pid = pid_;
  req.request_id = next_request_id_++;
  req.urgent = urgent == mem::kInvalidPage ? net::kNoPage : urgent;
  req.pages.assign(pages.begin(), pages.end());

  if (urgent != mem::kInvalidPage) {
    ++stats_.fault_requests;
    stats_.prefetch_pages_requested += pages.size() - 1;
  } else {
    ++stats_.prefetch_requests;
    stats_.prefetch_pages_requested += pages.size();
  }
  stats_.pages_requested += pages.size();

  if (retry_.enabled) {
    Pending pending;
    pending.pages = pages;
    pending.urgent = urgent;
    auto [it, inserted] = outstanding_.emplace(req.request_id, std::move(pending));
    (void)inserted;
    arm_timer(req.request_id, it->second);
  }

  if (trace_ != nullptr) {
    const std::uint64_t batch = pages.size();
    if (urgent != mem::kInvalidPage) {
      trace_->async_begin(trace::Category::kPaging, "fault", sim_.now(), self_node_,
                          req.request_id, urgent, batch);
    } else {
      trace_->async_begin(trace::Category::kPrefetch, "prefetch_batch", sim_.now(), self_node_,
                          req.request_id, batch);
    }
    trace_open_[req.request_id] = TraceOpen{batch, urgent != mem::kInvalidPage};
  }

  const std::uint64_t request_id = req.request_id;
  fabric_.send(net::Message{self_node_, home_node_,
                            wire_.request_bytes(static_cast<std::uint64_t>(pages.size())),
                            std::move(req), request_id});
}

sim::Time PagingClient::base_timeout() const {
  const sim::Time rtt = rtt_provider_ ? rtt_provider_() : sim::Time::zero();
  if (rtt <= sim::Time::zero()) {
    return retry_.min_timeout;
  }
  const sim::Time scaled = rtt.scaled(retry_.rtt_multiplier);
  return std::clamp(scaled, retry_.min_timeout, retry_.max_timeout);
}

void PagingClient::arm_timer(std::uint64_t request_id, Pending& pending) {
  // Replies come off the home node's TX port one page-message at a time, and
  // this client may have several batches queued there: a request's reply can
  // legitimately wait behind every other page this client still has
  // outstanding. Grant that whole backlog as service time on top of the
  // RTT-derived silence threshold so only real silence trips the timer.
  std::uint64_t backlog = 0;
  for (const auto& entry : outstanding_) {
    backlog += entry.second.pages.size();
  }
  const sim::Time service =
      retry_.per_page_allowance * static_cast<std::int64_t>(backlog);
  const sim::Time grown =
      (base_timeout() + service).scaled(std::pow(retry_.backoff_factor, pending.retries));
  // The ceiling, when set, bounds how far backoff can stretch the silence
  // threshold; otherwise the legacy bound (max_timeout) applies.
  const sim::Time cap =
      retry_.backoff_ceiling > sim::Time::zero() ? retry_.backoff_ceiling : retry_.max_timeout;
  sim::Time timeout = std::min(grown, cap + service);
  if (retry_.jitter_fraction > 0.0) {
    const double unit =
        static_cast<double>(jitter_hash(request_id, pending.retries, self_node_, pid_) >> 11) *
        0x1.0p-53;  // 53 high bits -> [0, 1)
    timeout = timeout.scaled(1.0 + retry_.jitter_fraction * unit);
  }
  pending.timer =
      sim_.schedule_after(timeout, [this, request_id] { on_timeout(request_id); });
}

void PagingClient::on_timeout(std::uint64_t request_id) {
  const auto it = outstanding_.find(request_id);
  if (it == outstanding_.end()) {
    return;  // satisfied between timer fire and lookup (cancel raced)
  }
  Pending& pending = it->second;
  ++stats_.timeouts;
  if (pending.retries >= retry_.max_retries) {
    if (retry_.backoff_ceiling <= sim::Time::zero()) {
      throw std::runtime_error(sim::strfmt(
          "PagingClient: request %llu exceeded %u retries — home node unreachable?",
          static_cast<unsigned long long>(request_id), retry_.max_retries));
    }
    // Ceiling mode: keep probing at the capped rate. The retry count stays
    // pinned so the backoff exponent (and thus the probe spacing) is stable
    // for however long the outage lasts; recovery is the home node's or the
    // harness's job (rehoming, heal), not this timer's.
  } else {
    pending.retries += 1;
  }
  ++stats_.retransmits;
  stats_.pages_retransmitted += pending.pages.size();

  // Re-request only the still-missing pages under the same request id, so
  // the deputy can recognize and replay it idempotently.
  net::PageRequest req;
  req.pid = pid_;
  req.request_id = request_id;
  const bool urgent_pending =
      pending.urgent != mem::kInvalidPage &&
      std::find(pending.pages.begin(), pending.pages.end(), pending.urgent) !=
          pending.pages.end();
  req.urgent = urgent_pending ? pending.urgent : net::kNoPage;
  req.pages.assign(pending.pages.begin(), pending.pages.end());
  if (trace_ != nullptr) {
    trace_->instant(trace::Category::kPaging, "retransmit", sim_.now(), self_node_, request_id,
                    pending.pages.size(), pending.retries);
  }
  arm_timer(request_id, pending);
  fabric_.send(
      net::Message{self_node_, home_node_,
                   wire_.request_bytes(static_cast<std::uint64_t>(pending.pages.size())),
                   std::move(req), request_id});
}

void PagingClient::on_page_data(const net::PageData& data) {
  if (data.pid != pid_) {
    throw std::logic_error("PagingClient: page data for a different process");
  }
  if (retry_.enabled) {
    const auto it = outstanding_.find(data.request_id);
    if (it == outstanding_.end()) {
      // Whole request already satisfied: a duplicated frame or a retransmit
      // reply racing the original. Drop before it reaches the fault policy.
      ++stats_.duplicates_dropped;
      return;
    }
    auto& pages = it->second.pages;
    const auto page_it = std::find(pages.begin(), pages.end(), data.page);
    if (page_it == pages.end()) {
      ++stats_.duplicates_dropped;
      return;
    }
    pages.erase(page_it);
    sim_.cancel(it->second.timer);
    if (pages.empty()) {
      outstanding_.erase(it);
    } else {
      // Progress: the path is alive. Restart the silence timer for the
      // remainder and forgive past timeouts (they measured congestion, not
      // loss).
      it->second.retries = 0;
      arm_timer(data.request_id, it->second);
    }
  }
  ++stats_.pages_arrived;
  if (trace_ != nullptr) {
    trace_->instant(trace::Category::kPaging, "page_arrival", sim_.now(), self_node_,
                    data.request_id, data.page, data.urgent ? 1 : 0);
    const auto open = trace_open_.find(data.request_id);
    if (open != trace_open_.end()) {
      if (data.urgent && open->second.fault) {
        trace_->async_end(trace::Category::kPaging, "fault", sim_.now(), self_node_,
                          data.request_id, data.page);
      }
      if (open->second.remaining > 0 && --open->second.remaining == 0) {
        if (!open->second.fault) {
          trace_->async_end(trace::Category::kPrefetch, "prefetch_batch", sim_.now(),
                            self_node_, data.request_id);
        }
        trace_open_.erase(open);
      }
    }
  }
  if (on_arrival_) {
    on_arrival_(data.page, data.urgent);
  }
}

void PagingClient::cancel_outstanding() {
  for (auto& [request_id, pending] : outstanding_) {
    sim_.cancel(pending.timer);
  }
  outstanding_.clear();
  // Abandoned requests never complete; their spans stay open in the trace
  // (Perfetto renders unfinished async spans), but stop tracking them.
  trace_open_.clear();
}

}  // namespace ampom::proc
