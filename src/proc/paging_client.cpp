#include "proc/paging_client.hpp"

#include <stdexcept>

namespace ampom::proc {

void PagingClient::request_pages(const std::vector<mem::PageId>& pages, mem::PageId urgent) {
  if (pages.empty()) {
    throw std::logic_error("PagingClient::request_pages: empty batch");
  }
  if (urgent != mem::kInvalidPage && pages.front() != urgent) {
    throw std::logic_error("PagingClient::request_pages: urgent page must lead the batch");
  }
  net::PageRequest req;
  req.pid = pid_;
  req.request_id = next_request_id_++;
  req.urgent = urgent == mem::kInvalidPage ? net::kNoPage : urgent;
  req.pages.assign(pages.begin(), pages.end());

  if (urgent != mem::kInvalidPage) {
    ++stats_.fault_requests;
    stats_.prefetch_pages_requested += pages.size() - 1;
  } else {
    ++stats_.prefetch_requests;
    stats_.prefetch_pages_requested += pages.size();
  }
  stats_.pages_requested += pages.size();

  fabric_.send(net::Message{self_node_, home_node_,
                            wire_.request_bytes(static_cast<std::uint64_t>(pages.size())),
                            std::move(req)});
}

void PagingClient::on_page_data(const net::PageData& data) {
  if (data.pid != pid_) {
    throw std::logic_error("PagingClient: page data for a different process");
  }
  ++stats_.pages_arrived;
  if (on_arrival_) {
    on_arrival_(data.page, data.urgent);
  }
}

}  // namespace ampom::proc
