#include "proc/deputy.hpp"

#include <algorithm>
#include <stdexcept>

#include "simcore/fmt.hpp"

namespace ampom::proc {

Deputy::Deputy(sim::Simulator& simulator, net::Fabric& fabric, WireCosts wire, NodeCosts costs,
               net::NodeId home_node, std::uint64_t pid, std::uint64_t page_count,
               mem::PageLedger* ledger)
    : sim_{simulator},
      fabric_{fabric},
      wire_{wire},
      costs_{costs},
      home_node_{home_node},
      pid_{pid},
      hpt_{page_count},
      ledger_{ledger} {}

void Deputy::on_page_request(const net::PageRequest& request) {
  if (migrant_node_ == net::kInvalidNode) {
    throw std::logic_error("Deputy: page request before begin_service");
  }
  if (request.pid != pid_) {
    throw std::logic_error("Deputy: page request for a different process");
  }
  ++stats_.requests_served;
  if (trace_ != nullptr) {
    trace_->instant(trace::Category::kPaging, "deputy_request", sim_.now(), home_node_,
                    request.request_id, request.pages.size(),
                    request.urgent != net::kNoPage ? 1 : 0);
  }

  // The deputy is a single kernel thread at the home node: requests and page
  // sends serialize on its CPU, pipelining with the NIC which serializes the
  // actual wire transfer.
  busy_until_ = std::max(busy_until_, sim_.now()) + costs_.deputy_request;

  for (const std::uint64_t raw_page : request.pages) {
    const mem::PageId page = raw_page;
    const bool urgent = (raw_page == request.urgent);
    const mem::PageTable::Loc loc = hpt_.loc(page);
    if (loc == mem::PageTable::Loc::Incoming) {
      // Re-migration: the page is still being flushed back from the
      // previous host; serve it when it lands.
      auto& waiters = waiting_on_flush_[page];
      const bool already_queued =
          reliable_ && std::any_of(waiters.begin(), waiters.end(), [&](const auto& w) {
            return w.first == request.request_id;
          });
      if (!already_queued) {
        waiters.emplace_back(request.request_id, urgent);
        ++stats_.requests_stalled_on_flush;
      }
      continue;
    }
    if (loc != mem::PageTable::Loc::Here) {
      if (reliable_) {
        const auto it = served_.find(request.request_id);
        if (it != served_.end() && it->second.count(page) > 0) {
          // Retransmitted request: this page already shipped but its
          // PageData was lost (or is still in flight). Replay the data
          // message without touching HPT/ledger — the migrant already owns
          // the page as far as bookkeeping is concerned.
          busy_until_ += costs_.deputy_page;
          replay_page(page, request.request_id, urgent);
          continue;
        }
      }
      throw std::logic_error(sim::strfmt(
          "Deputy: page %llu requested but HPT says it is not at home",
          static_cast<unsigned long long>(raw_page)));
    }
    busy_until_ += costs_.deputy_page;
    ship_page(page, request.request_id, urgent);
  }
}

void Deputy::ship_page(mem::PageId page, std::uint64_t request_id, bool urgent) {
  // Page leaves the home node: delete the home copy, update the HPT (§2.2).
  hpt_.set_loc(page, mem::PageTable::Loc::Remote);
  if (ledger_ != nullptr) {
    ledger_->transfer(page, home_node_, migrant_node_);
  }
  if (reliable_) {
    served_[request_id].insert(page);
  }
  ++stats_.pages_served;
  if (urgent) {
    ++stats_.urgent_pages_served;
  }
  sim_.schedule_at(std::max(busy_until_, sim_.now()),
                   [this, page, urgent, request_id] {
                     if (migrant_node_ == net::kInvalidNode) {
                       return;  // service ended by recovery while this send was queued
                     }
                     fabric_.send(net::Message{home_node_, migrant_node_,
                                               wire_.page_message_bytes(),
                                               net::PageData{pid_, request_id, page, urgent},
                                               request_id});
                   });
}

void Deputy::replay_page(mem::PageId page, std::uint64_t request_id, bool urgent) {
  ++stats_.pages_replayed;
  if (trace_ != nullptr) {
    trace_->instant(trace::Category::kPaging, "deputy_replay", sim_.now(), home_node_,
                    request_id, page, urgent ? 1 : 0);
  }
  sim_.schedule_at(std::max(busy_until_, sim_.now()),
                   [this, page, urgent, request_id] {
                     if (migrant_node_ == net::kInvalidNode) {
                       return;
                     }
                     fabric_.send(net::Message{home_node_, migrant_node_,
                                               wire_.page_message_bytes(),
                                               net::PageData{pid_, request_id, page, urgent},
                                               request_id});
                   });
}

void Deputy::on_flush_page(net::NodeId from, const net::FlushPage& flush) {
  if (flush.pid != pid_) {
    throw std::logic_error("Deputy: flush page for a different process");
  }
  const mem::PageId page = flush.page;
  if (hpt_.loc(page) != mem::PageTable::Loc::Incoming) {
    if (reliable_ && hpt_.loc(page) == mem::PageTable::Loc::Here) {
      // Duplicate flush (retransmit raced the original, or the frame was
      // duplicated): the page already landed. Re-ack so the flusher's
      // tracker converges, but change nothing.
      ++stats_.duplicate_flushes;
      fabric_.send(net::Message{home_node_, from, wire_.control_message,
                                net::FlushAck{pid_, page}, page});
      return;
    }
    throw std::logic_error("Deputy: flush arrival for a page not marked Incoming");
  }
  ++stats_.flush_pages_received;
  if (trace_ != nullptr) {
    trace_->instant(trace::Category::kMigration, "flush_arrival", sim_.now(), home_node_, page,
                    from);
  }
  hpt_.set_loc(page, mem::PageTable::Loc::Here);
  if (ledger_ != nullptr) {
    ledger_->transfer(page, from, home_node_);
  }
  if (reliable_) {
    fabric_.send(net::Message{home_node_, from, wire_.control_message,
                              net::FlushAck{pid_, page}, page});
  }
  const auto it = waiting_on_flush_.find(page);
  if (it != waiting_on_flush_.end()) {
    busy_until_ = std::max(busy_until_, sim_.now());
    for (const auto& [request_id, urgent] : it->second) {
      busy_until_ += costs_.deputy_page;
      ship_page(page, request_id, urgent);
      break;  // one authoritative copy: first waiter gets it
    }
    waiting_on_flush_.erase(it);
  }
}

std::uint64_t Deputy::recover_pages_from(net::NodeId lost_node) {
  std::uint64_t recovered = 0;
  for (mem::PageId page = 0; page < hpt_.page_count(); ++page) {
    const mem::PageTable::Loc loc = hpt_.loc(page);
    if (loc == mem::PageTable::Loc::Remote || loc == mem::PageTable::Loc::Incoming) {
      hpt_.set_loc(page, mem::PageTable::Loc::Here);
      if (ledger_ != nullptr && ledger_->owner(page) == lost_node) {
        ledger_->transfer(page, lost_node, home_node_);
      }
      ++recovered;
    }
  }
  stats_.pages_recovered += recovered;
  migrant_node_ = net::kInvalidNode;
  waiting_on_flush_.clear();
  served_.clear();
  return recovered;
}

void Deputy::on_syscall_request(const net::SyscallRequest& request) {
  if (request.pid != pid_) {
    throw std::logic_error("Deputy: syscall request for a different process");
  }
  busy_until_ = std::max(busy_until_, sim_.now()) + costs_.syscall_service;
  ++stats_.syscalls_served;
  sim_.schedule_at(busy_until_, [this, seq = request.seq] {
    fabric_.send(net::Message{home_node_, migrant_node_, wire_.control_message,
                              net::SyscallReply{pid_, seq}, seq});
  });
}

}  // namespace ampom::proc
