#pragma once
// Drives a process: consumes its reference stream, accumulating compute
// time for local accesses without simulator events, and yields to the
// event queue only at page faults, syscalls, periodic burst boundaries and
// completion.
//
// The executor follows the process across a migration: the engine requests
// a freeze (taken at the next safe point — a burst boundary or fault-handler
// entry, as a kernel would at a trap) and later resumes it with the
// destination node's cost model. Fault resolution is delegated to a
// FaultPolicy (NoPrefetch demand paging or AMPoM), which calls
// complete_fault() once the faulted page is mapped.

#include <cstdint>
#include <functional>
#include <list>
#include <optional>
#include <unordered_map>

#include "proc/costs.hpp"
#include "proc/fault_policy.hpp"
#include "proc/process.hpp"
#include "simcore/simulator.hpp"
#include "stats/summary.hpp"

namespace ampom::proc {

struct ExecStats {
  std::uint64_t refs_consumed{0};
  std::uint64_t hits{0};
  std::uint64_t first_touches{0};
  std::uint64_t soft_faults{0};     // served from the lookaside buffer
  std::uint64_t hard_faults{0};     // required a remote request
  std::uint64_t inflight_waits{0};  // blocked on an already-requested page
  std::uint64_t swap_faults{0};
  std::uint64_t syscalls_local{0};
  std::uint64_t syscalls_redirected{0};
  std::uint64_t evictions{0};
  sim::Time cpu_time{};       // pure application compute
  sim::Time handler_time{};   // charged fault/handler kernel time
  sim::Time stall_time{};     // wall time from fault to resume
  // CPMD cache warm-up (migration/cpmd.hpp): debt assessed at migration
  // commits vs. debt actually paid delaying post-migration bursts. The
  // difference is the outstanding balance a re-migration carries forward.
  sim::Time warmup_charged{};
  sim::Time warmup_paid{};
  std::uint64_t warmup_charges{0};  // commits that assessed a fresh charge
  sim::Time started_at{};
  sim::Time finished_at{};
  bool finished{false};
  // Per-fault stall latency distribution, in microseconds (blocking faults
  // only — the tail NoPrefetch suffers and AMPoM collapses).
  stats::Summary fault_latency_us;
};

class Executor {
 public:
  Executor(sim::Simulator& simulator, Process& process, NodeCosts costs);

  void set_policy(FaultPolicy* policy) { policy_ = policy; }
  void set_on_finished(std::function<void()> fn) { on_finished_ = std::move(fn); }
  // Fraction of the CPU available to the process on the current node
  // (1 - background load); feeds both time dilation and AMPoM's c'.
  void set_cpu_share_source(std::function<double()> fn) { cpu_share_ = std::move(fn); }
  // Transport for redirected system calls (set while migrated with the
  // openMosix home dependency; absent = syscalls execute locally).
  void set_syscall_transport(std::function<void(std::uint64_t seq)> fn) {
    syscall_transport_ = std::move(fn);
  }
  // RAM-limit extension: the node holds at most this many local pages
  // (0 = unlimited); beyond it, LRU pages are evicted to local swap.
  void set_ram_limit_pages(std::uint64_t pages);
  // A long local burst yields to the event queue after this much simulated
  // compute, bounding freeze-request latency.
  void set_max_burst(sim::Time t) { max_burst_ = t; }
  // Observe every consumed memory reference (pre-copy engines track pages
  // re-dirtied during their copy rounds). Null to remove.
  void set_touch_observer(std::function<void(mem::PageId)> fn) {
    touch_observer_ = std::move(fn);
  }

  void start();

  // Ask for a freeze; `on_frozen` fires at the next safe point. If the
  // process finishes first, the request is dropped (the caller observes the
  // Finished state).
  void request_freeze(std::function<void()> on_frozen);
  // Resume on the destination node after migration with its cost model.
  void resume_migrated(NodeCosts new_costs);
  // The hosting node crashed: force Frozen from any state, discarding a
  // blocked fault/syscall and any pending freeze request. Stale burst/fault
  // events see Frozen and return; recovery later calls resume_migrated()
  // with the new host's costs and re-examines the interrupted reference.
  void crash_interrupt();

  // CPMD warm-up charge: the process's first bursts at a migration
  // destination are delayed until `t` of simulated warm-up is paid down
  // (one max_burst slice per burst, so freezes still interleave). A zero
  // balance leaves the burst loop untouched — runs without the cost model
  // are bit-identical. The balance survives crash_interrupt: the debt is
  // real wherever the process resumes.
  void add_warmup_charge(sim::Time t) {
    warmup_balance_ += t;
    stats_.warmup_charged += t;
    ++stats_.warmup_charges;
  }
  [[nodiscard]] sim::Time warmup_balance() const { return warmup_balance_; }

  // --- policy-facing API ----------------------------------------------------
  // Accumulate kernel handler time; consumed by the next complete_fault().
  void charge_handler(sim::Time t);
  // The faulted page is Local; resume execution after pending charges.
  void complete_fault(mem::PageId page);
  void complete_syscall(std::uint64_t seq);

  [[nodiscard]] const ExecStats& stats() const { return stats_; }
  [[nodiscard]] Process& process() { return process_; }
  [[nodiscard]] const NodeCosts& costs() const { return costs_; }
  [[nodiscard]] double cpu_share() const { return cpu_share_ ? cpu_share_() : 1.0; }

  // CPU fraction actually consumed since the previous fault (AMPoM's C_i).
  [[nodiscard]] double recent_cpu_fraction() const;

 private:
  void schedule_burst(sim::Time delay);
  // The burst loop body; always runs on the process's current partition.
  // ampom: partition-entry
  void run_burst();
  void finish(sim::Time at_delay);
  void begin_fault(mem::PageId page, sim::Time acc);
  void begin_syscall(sim::Time acc);
  // Take a pending freeze request; returns true if the executor froze.
  bool take_freeze();
  [[nodiscard]] sim::Time scale_cpu(sim::Time t) const;
  void consume_pending(mem::PageId touched);
  void touch_lru(mem::PageId page);
  sim::Time maybe_evict_for(mem::PageId page);

  sim::Simulator& sim_;
  Process& process_;
  NodeCosts costs_;
  FaultPolicy* policy_{nullptr};
  std::function<void()> on_finished_;
  std::function<double()> cpu_share_;
  std::function<void(std::uint64_t)> syscall_transport_;
  std::function<void(mem::PageId)> touch_observer_;

  ExecStats stats_;
  std::optional<Ref> pending_;      // reference being executed / blocked on
  bool pending_cpu_counted_{false};  // its compute already accrued
  sim::Time max_burst_{sim::Time::from_ms(20)};
  sim::Time fault_started_{};        // when the active fault event fired
  sim::Time pending_charge_{};       // handler time to apply at resume
  sim::Time warmup_balance_{};       // unpaid CPMD warm-up (see add_warmup_charge)
  std::uint64_t syscall_seq_{0};
  // Bumped by crash_interrupt; burst/finish events carry the generation they
  // were scheduled under and return if it moved (see schedule_burst).
  std::uint64_t run_gen_{0};
  bool started_{false};
  std::function<void()> on_frozen_;  // non-null while a freeze is pending

  // Markers for AMPoM's per-fault CPU-fraction estimate (C_i).
  sim::Time last_fault_wall_{};
  sim::Time last_fault_cpu_{};
  double cpu_fraction_snapshot_{1.0};

  // RAM-limit LRU (active only when ram_limit_pages_ > 0).
  std::uint64_t ram_limit_pages_{0};
  std::list<mem::PageId> lru_;  // front = most recent
  // ampom-lint: ordered-safe(lookup index only; eviction order is the std::list, never this map)
  std::unordered_map<mem::PageId, std::list<mem::PageId>::iterator> lru_pos_;
};

}  // namespace ampom::proc
