#pragma once
// A simple openMosix-style load balancer: periodically compare node loads
// (read through the cluster::ClusterView interface) and migrate one process
// from the most- to the least-loaded node when the imbalance exceeds a
// threshold. Greedy rather than openMosix's probabilistic exchange, but the
// same information flow: decisions use the load vector the daemons gossip.
//
// Zoned worlds shard the balancer: each zone runs the greedy pass over its
// own ClusterView slice (so per-tick cost is O(zone size) per zone, and
// zones balance concurrently), and a thin global tier compares zone-level
// load aggregates, migrating across zones only when the busiest zone's
// intra-zone pass saturated — it could not move anything internally.
// Single-zone worlds take the exact pre-zoning code path.
//
// The knob that matters is `assumed_freeze_seconds`: a migration is only
// worth its freeze time. With openMosix's multi-second freezes the balancer
// must be conservative; with AMPoM's sub-second freezes it can chase much
// smaller imbalances — the paper's §7 claim, measurable in
// bench/balancer_study.

#include <cstdint>

#include "balancer/cluster_sim.hpp"
#include "cluster/cluster_view.hpp"

namespace ampom::balancer {

class LoadBalancer {
 public:
  struct Config {
    sim::Time period{sim::Time::from_ms(750)};
    double imbalance_threshold{1.5};  // min load difference to act
    // Estimated freeze cost (seconds) a migration must amortize; policies
    // set this from their mechanism (openMosix: seconds; AMPoM: ~0.2).
    double assumed_freeze_seconds{0.0};
    // Expected remaining seconds of imbalance a migration must outweigh.
    double horizon_seconds{10.0};
    // Consult the cluster's failure-detection consensus each tick: nodes
    // not kAlive are excluded as migration sources/destinations, and a
    // migrant stranded on a kDead node is reclaimed to its home node. Only
    // effective when the world's ReliabilityConfig enables detection.
    bool respect_failure_detection{true};
    // Destination-scoring policy (driver/scenario.hpp). kLoad keeps the
    // classic least-loaded pick bit-identical; kEq3 folds the paper's Eq.-3
    // transfer cost into the score; kCacheAware additionally charges the
    // predicted CPMD warm-up and NUMA contention read from the world's
    // memory-hierarchy model (zero when the model is off).
    driver::Placement placement{driver::Placement::kLoad};
  };

  LoadBalancer(ClusterSim& world, Config config);

  void start();
  void stop() { running_ = false; }

  [[nodiscard]] std::uint64_t decisions() const { return decisions_; }
  [[nodiscard]] std::uint64_t ticks() const { return ticks_; }
  // Stranded migrants reclaimed to their home node after their host died.
  [[nodiscard]] std::uint64_t rehomes() const { return rehomes_; }
  // Zoned worlds: decisions split into within-zone and cross-zone moves.
  [[nodiscard]] std::uint64_t intra_zone_moves() const { return intra_moves_; }
  [[nodiscard]] std::uint64_t cross_zone_moves() const { return cross_moves_; }

 private:
  // One node's standing in a zone scan: the extremes and whether any alive
  // node was seen at all.
  struct ZoneScan {
    net::NodeId busiest{0};
    net::NodeId idlest{0};
    double max_load{0.0};
    double min_load{0.0};   // load of the chosen destination (== true min for kLoad)
    double best_score{0.0};  // placement score of the chosen destination
    bool found{false};
  };

  // The balancing pass runs in the barrier context (scheduled with
  // schedule_after, never pinned to a partition): it reads every node's
  // load and moves processes across partitions.
  // ampom: global-only
  void tick();
  // ampom: global-only
  void single_zone_tick();
  // ampom: global-only
  void zoned_tick();
  // ampom: global-only
  void reclaim_stranded();
  [[nodiscard]] ZoneScan scan_zone(std::uint32_t zone) const;
  [[nodiscard]] bool worth_moving(double max_load, double min_load) const;
  // Placement score of migrating `src`'s candidate (working set `wss`) onto
  // `dst` carrying `load`; lower is better. kLoad returns the load itself.
  [[nodiscard]] double dest_score(net::NodeId src, net::NodeId dst, double load,
                                  sim::Bytes wss) const;
  // Working set of the host move_one would pick on `from` (0 if none).
  [[nodiscard]] sim::Bytes candidate_wss(net::NodeId from) const;
  // Migrate the lowest-pid migratable host on `from` to `to`; true if one
  // was found and the move was issued.
  bool move_one(net::NodeId from, net::NodeId to);

  ClusterSim& world_;
  const cluster::ClusterView& view_;
  Config config_;
  bool running_{false};
  std::uint64_t decisions_{0};
  std::uint64_t ticks_{0};
  std::uint64_t rehomes_{0};
  std::uint64_t intra_moves_{0};
  std::uint64_t cross_moves_{0};
};

}  // namespace ampom::balancer
