#pragma once
// A simple openMosix-style load balancer: periodically compare node loads
// (own count + InfoDaemon-propagated peer loads) and migrate one process
// from the most- to the least-loaded node when the imbalance exceeds a
// threshold. Greedy rather than openMosix's probabilistic exchange, but the
// same information flow: decisions use the load vector the daemons gossip.
//
// The knob that matters is `min_gain_seconds`: a migration is only worth
// its freeze time. With openMosix's multi-second freezes the balancer must
// be conservative; with AMPoM's sub-second freezes it can chase much
// smaller imbalances — the paper's §7 claim, measurable in
// bench/balancer_study.

#include <cstdint>

#include "balancer/cluster_sim.hpp"

namespace ampom::balancer {

class LoadBalancer {
 public:
  struct Config {
    sim::Time period{sim::Time::from_ms(750)};
    double imbalance_threshold{1.5};  // min load difference to act
    // Estimated freeze cost (seconds) a migration must amortize; policies
    // set this from their mechanism (openMosix: seconds; AMPoM: ~0.2).
    double assumed_freeze_seconds{0.0};
    // Expected remaining seconds of imbalance a migration must outweigh.
    double horizon_seconds{10.0};
    // Consult the cluster's failure-detection consensus each tick: nodes
    // not kAlive are excluded as migration sources/destinations, and a
    // migrant stranded on a kDead node is reclaimed to its home node. Only
    // effective when the world's ReliabilityConfig enables detection.
    bool respect_failure_detection{true};
  };

  LoadBalancer(ClusterSim& world, Config config);

  void start();
  void stop() { running_ = false; }

  [[nodiscard]] std::uint64_t decisions() const { return decisions_; }
  [[nodiscard]] std::uint64_t ticks() const { return ticks_; }
  // Stranded migrants reclaimed to their home node after their host died.
  [[nodiscard]] std::uint64_t rehomes() const { return rehomes_; }

 private:
  void tick();
  void reclaim_stranded();

  ClusterSim& world_;
  Config config_;
  bool running_{false};
  std::uint64_t decisions_{0};
  std::uint64_t ticks_{0};
  std::uint64_t rehomes_{0};
};

}  // namespace ampom::balancer
