#pragma once
// Multi-process cluster world — the system-level face of openMosix.
//
// A ClusterSim hosts K nodes, each with an InfoDaemon, and any number of
// migratable processes (ProcessHost bundles a process with its executor,
// deputy and per-node paging stacks). Processes on one node time-share its
// CPU; migrations use the engines of src/migration, choosing first-hop or
// re-migration variants automatically. The LoadBalancer (load_balancer.hpp)
// drives migrations from InfoDaemon load vectors — the §7 "scheduling
// policies that make use of AMPoM" direction.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster_view.hpp"
#include "cluster/infod.hpp"
#include "cluster/node.hpp"
#include "core/ampom_policy.hpp"
#include "driver/metrics.hpp"
#include "driver/profile.hpp"
#include "driver/scenario.hpp"
#include "mem/hierarchy.hpp"
#include "mem/ledger.hpp"
#include "mem/page.hpp"
#include "migration/cpmd.hpp"
#include "migration/engine.hpp"
#include "migration/full_copy.hpp"
#include "migration/lightweight.hpp"
#include "net/fault_injector.hpp"
#include "proc/demand_paging.hpp"
#include "proc/deputy.hpp"
#include "proc/executor.hpp"
#include "proc/paging_client.hpp"
#include "stats/summary.hpp"
#include "verify/observer.hpp"

namespace ampom::balancer {

struct JobSpec {
  std::function<std::unique_ptr<proc::ReferenceStream>()> make_workload;
  std::string label{"job"};
  net::NodeId home{0};
  sim::Time start{};  // absolute simulation time
};

class ClusterSim;

// One migratable process and everything it needs on every node it visits.
class ProcessHost {
 public:
  ProcessHost(ClusterSim& world, std::uint64_t pid, JobSpec spec);

  [[nodiscard]] std::uint64_t pid() const { return pid_; }
  [[nodiscard]] const std::string& label() const { return spec_.label; }
  [[nodiscard]] net::NodeId current_node() const { return process_.current_node(); }
  [[nodiscard]] net::NodeId home_node() const { return process_.home_node(); }
  [[nodiscard]] bool finished() const { return executor_.stats().finished; }
  [[nodiscard]] bool started() const { return started_; }
  [[nodiscard]] bool migrating() const { return migrating_; }
  // Eligible for a balancer-initiated move right now.
  [[nodiscard]] bool migratable() const { return started_ && !finished() && !migrating_; }

  // Move the process to `dst`; a no-op if not currently migratable.
  // Mutates cross-partition placement and world load accounting.
  // ampom: global-only
  void migrate_to(net::NodeId dst);

  // Failure recovery: the node the process runs on died. The deputy reclaims
  // every page the crashed host held (HPT/ledger reconstruction), the frozen
  // process image is re-established from the home node's copy, and the
  // executor resumes at home. A no-op when already home, finished, or
  // mid-migration.
  // ampom: global-only
  void recover_to_home();

  [[nodiscard]] const proc::ExecStats& stats() const { return executor_.stats(); }
  [[nodiscard]] std::uint64_t migrations() const { return migrations_; }
  [[nodiscard]] std::uint64_t failed_migrations() const { return failed_migrations_; }
  [[nodiscard]] std::uint64_t recoveries() const { return recoveries_; }
  [[nodiscard]] sim::Time freeze_total() const { return freeze_total_; }
  [[nodiscard]] sim::Time finished_at() const { return executor_.stats().finished_at; }
  // Working-set-size proxy the cache model charges by: the full address
  // space (every page the process can touch competes for LLC capacity).
  [[nodiscard]] sim::Bytes wss_bytes() const {
    return process_.aspace().page_count() * mem::kPageBytes;
  }
  [[nodiscard]] const mem::PageLedger& ledger() const { return ledger_; }
  [[nodiscard]] const proc::Deputy& deputy() const { return deputy_; }
  [[nodiscard]] const proc::Process& process() const { return process_; }
  [[nodiscard]] const proc::PagingClientStats* paging_stats(net::NodeId node) const;
  // The paging client this process uses when running on `node`, or null if
  // it never activated a stack there. Read-only: auditor introspection.
  [[nodiscard]] const proc::PagingClient* paging_client(net::NodeId node) const;

 private:
  friend class ClusterSim;
  void start();  // scheduled by ClusterSim at spec_.start
  // Create (once) and activate the paging stack for `node`.
  void activate_stack(net::NodeId node);
  // The node the process currently runs on crashed: force-freeze the
  // executor and abandon in-flight page requests. Recovery follows later
  // (recover_to_home, normally triggered by the balancer's failure check).
  void on_host_crashed(net::NodeId node);

  struct PagingStack {
    std::unique_ptr<proc::PagingClient> client;
    std::unique_ptr<proc::DemandPagingPolicy> demand;
    std::unique_ptr<core::AmpomPolicy> ampom;
  };

  ClusterSim& world_;
  std::uint64_t pid_;
  JobSpec spec_;
  proc::Process process_;
  proc::Executor executor_;
  mem::PageLedger ledger_;
  proc::Deputy deputy_;
  std::map<net::NodeId, PagingStack> stacks_;
  bool started_{false};
  bool migrating_{false};
  std::uint64_t migrations_{0};
  std::uint64_t failed_migrations_{0};  // aborted (e.g. destination died)
  std::uint64_t recoveries_{0};         // recover_to_home invocations
  sim::Time freeze_total_{};
};

// The full shape of a cluster world: scheme + profile + zone layout +
// dissemination mode. The scenario-based constructor derives one from a
// builder-validated Scenario, so examples and benches no longer hand-roll
// node wiring.
struct WorldConfig {
  driver::Scheme scheme{driver::Scheme::Ampom};
  driver::ClusterProfile profile{driver::gideon300_profile()};
  core::AmpomConfig ampom{};
  cluster::Topology topology{};
  cluster::GossipConfig gossip{};
  // exec.workers >= 1 (with a multi-zone topology) selects the partitioned
  // simulator: one event sub-queue per zone, run on that many OS threads.
  // The schedule is a pure function of the scenario, so every worker count
  // produces bit-identical results (DESIGN.md §15). Default: serial engine.
  driver::ExecPolicy exec{};
  // Cache/NUMA model + CPMD calibration (DESIGN.md §17). Disabled by
  // default: no hierarchy state, no warm-up charges, bit-identical runs.
  mem::HierarchyConfig hierarchy{};
  std::string cpmd_calibration{};  // empty = CpmdTable::builtin()

  [[nodiscard]] static WorldConfig from(const driver::Scenario& scenario);
};

class ClusterSim : public cluster::ClusterView {
 public:
  explicit ClusterSim(const WorldConfig& config);
  // Single-zone, all-pairs-mesh convenience (the pre-gossip shape).
  ClusterSim(std::size_t node_count, driver::Scheme scheme,
             driver::ClusterProfile profile = driver::gideon300_profile(),
             core::AmpomConfig ampom = {});
  // Builds the world a validated cluster-mode Scenario describes, applying
  // its reliability config and fault plan (spawn jobs, then run).
  explicit ClusterSim(const driver::Scenario& scenario);

  ClusterSim(const ClusterSim&) = delete;
  ClusterSim& operator=(const ClusterSim&) = delete;

  // Register a job; its process starts at spec.start.
  ProcessHost& spawn(JobSpec spec);

  // Run the world until every spawned process finished.
  void run();

  // Run until every process finished or `deadline` passes, whichever comes
  // first; true iff everything finished. InfoDaemon ticks keep the event
  // queue populated forever, so a run that livelocks (e.g. every path to a
  // process's home node permanently dead) never drains — the fuzzer uses
  // this bounded form instead of run() to turn a hang into a reportable
  // failure instead of an infinite loop.
  [[nodiscard]] bool run_until(sim::Time deadline);

  // --- faults & reliability --------------------------------------------------
  // Install a scripted fault schedule. Probabilistic faults and link outages
  // go straight to the injector; node crashes are orchestrated through
  // crash_node so the processes on the dying node are interrupted too.
  // Call before run().
  void set_fault_plan(const driver::FaultPlan& plan);
  // Enable the reliable protocol variants (paging retransmission, ack'd
  // migration, heartbeat failure detection). Call before spawning jobs.
  void set_reliability(const driver::ReliabilityConfig& config);
  [[nodiscard]] const driver::ReliabilityConfig& reliability() const { return reliability_; }
  [[nodiscard]] net::FaultInjector* fault_injector() { return injector_.get(); }

  // Crash `id` now: the injector suppresses all its traffic, and every
  // process running there is force-frozen with its page requests abandoned
  // (their state died with the node; the balancer re-homes them once the
  // heartbeat silence crosses the dead threshold).
  // ampom: global-only
  void crash_node(net::NodeId id);
  // ampom: global-only
  void restore_node(net::NodeId id);
  [[nodiscard]] bool node_crashed(net::NodeId id) const;

  // Zone-wide health of `id` by majority vote over its zone's other nodes'
  // heartbeat-silence verdicts (single-zone worlds: the whole cluster).
  // Crashed observers answer no poll and are excluded — they hear nobody,
  // would call everyone dead, and with enough of them a healthy node would
  // be condemned by its dead neighbours. Always kAlive while failure
  // detection is disabled.
  [[nodiscard]] cluster::PeerHealth consensus_health(net::NodeId id) const;

  // --- cluster::ClusterView (the read-side API consumers use) ---------------
  [[nodiscard]] const cluster::Topology& topology() const override { return topology_; }
  [[nodiscard]] double load(net::NodeId node) const override {
    return static_cast<double>(active_count_[node]);
  }
  [[nodiscard]] cluster::PeerHealth health(net::NodeId node) const override {
    return consensus_health(node);
  }
  [[nodiscard]] sim::Time rtt_one_way(net::NodeId from, net::NodeId to) const override {
    return infods_[from]->rtt_one_way(to);
  }
  [[nodiscard]] double zone_load(std::uint32_t zone) const override {
    return static_cast<double>(zone_active_[zone]) / topology_.nodes_per_zone;
  }
  // LLC occupancy / capacity on `node`; 0.0 when the cache model is off.
  [[nodiscard]] double cache_pressure(net::NodeId node) const override {
    return hierarchy_ == nullptr ? 0.0 : hierarchy_->cache_pressure(node);
  }
  [[nodiscard]] const cluster::ClusterView& view() const { return *this; }

  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] net::Fabric& fabric() { return fabric_; }
  [[nodiscard]] cluster::Node& node(net::NodeId id) { return *nodes_.at(id); }
  [[nodiscard]] cluster::InfoDaemon& infod(net::NodeId id) { return *infods_.at(id); }
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] driver::Scheme scheme() const { return scheme_; }
  [[nodiscard]] const driver::ClusterProfile& profile() const { return profile_; }
  // Effective InfoDaemon tick period (the gossip config may override the
  // profile's) — detector settle times scale from this.
  [[nodiscard]] sim::Time infod_period() const {
    return gossip_.enabled && gossip_.period > sim::Time::zero() ? gossip_.period
                                                                 : profile_.infod_period;
  }
  [[nodiscard]] const cluster::GossipConfig& gossip_config() const { return gossip_; }
  [[nodiscard]] const core::AmpomConfig& ampom_config() const { return ampom_; }

  // --- verification & recovery observability --------------------------------
  // Register (or clear, with nullptr) the verification observer. Not owned;
  // must outlive the run. Null observer = zero overhead, bit-identical runs.
  // In a partitioned world an observer drops the worker count to one thread:
  // observer callbacks fire inside partition windows and may read state
  // across the whole world, which is only race-free single-threaded. The
  // schedule is unchanged, so the run stays bit-identical to any worker
  // count — audited runs are slower, never different. Attach before run().
  void set_observer(verify::WorldObserver* observer) {
    observer_ = observer;
    if (observer != nullptr && sim_.partitioned()) {
      sim_.set_workers(1);
    }
  }
  [[nodiscard]] verify::WorldObserver* observer() { return observer_; }

  // Observability: route fabric events (and migration phase spans) into
  // `recorder` (not owned; nullptr detaches). In a partitioned world the
  // recorder is switched to per-partition shards so worker threads never
  // share a buffer. Attach before run().
  void set_trace(trace::TraceRecorder* recorder);

  // Latest instant at which a *scheduled* fault still changes the world
  // (crash, restore, outage edge, campaign heal), maxed with any
  // crash_node/restore_node call made so far. After it + detector settle
  // time, heartbeat views must converge — the auditor's quiescence gate.
  [[nodiscard]] sim::Time last_fault_at() const { return last_fault_at_; }

  // Recovery latency tracking (off by default; enabling schedules read-only
  // poll events, so only bit-identity-indifferent runs should turn it on).
  // Call BEFORE set_fault_plan so campaign heal marks get convergence
  // watches.
  void enable_recovery_tracking() { recovery_tracking_ = true; }

  struct RecoveryStats {
    stats::Summary detect_ms;  // crash -> surviving-majority dead consensus
    stats::Summary rehome_ms;  // crash -> stranded migrant re-homed
    stats::Summary heal_ms;    // campaign heal mark -> all-alive views
    std::uint64_t crashes{0};
    std::uint64_t rehomes{0};
    std::uint64_t heals{0};
  };
  [[nodiscard]] const RecoveryStats& recovery_stats() const { return recovery_; }
  // Copies counts and p50/p95 percentiles into the RunMetrics recovery block.
  void fill_recovery_metrics(driver::RunMetrics& metrics) const;

  // Unfinished processes currently placed on `node` (the load metric).
  // O(1): maintained incrementally from process start/finish/move events.
  [[nodiscard]] std::uint64_t active_on(net::NodeId node) const {
    return active_count_[node];
  }
  [[nodiscard]] const std::vector<std::unique_ptr<ProcessHost>>& hosts() const { return hosts_; }
  // Active (started, unfinished) hosts currently placed on `node`, sorted
  // by pid — the balancer's per-node candidate list.
  [[nodiscard]] const std::vector<ProcessHost*>& hosts_on(net::NodeId node) const {
    return hosts_on_[node];
  }
  // In-flight balancer migrations (damping signals; O(1) reads).
  [[nodiscard]] std::uint32_t migrations_in_flight() const { return migrating_total_; }
  [[nodiscard]] std::uint32_t migrations_in_flight(std::uint32_t zone) const {
    return migrating_zone_[zone];
  }

  // --- cache/NUMA model (DESIGN.md §17; inert unless hierarchy.enabled) -----
  [[nodiscard]] bool cache_model_enabled() const { return hierarchy_ != nullptr; }
  [[nodiscard]] const mem::MemoryHierarchy* hierarchy() const { return hierarchy_.get(); }
  [[nodiscard]] const migration::CpmdTable& cpmd_table() const { return cpmd_; }
  // Predicted CPMD warm-up a process with working set `wss` would pay after
  // landing on `dst` now: calibration-curve delay scaled by the LLC pressure
  // already resident there. Zero when the model is off — the balancer's
  // cache-aware score degrades to the load score.
  [[nodiscard]] sim::Time predicted_warmup(sim::Bytes wss, net::NodeId dst) const {
    if (hierarchy_ == nullptr) {
      return sim::Time::zero();
    }
    return cpmd_.warmup_delay(wss).scaled(1.0 + hierarchy_->cache_pressure(dst));
  }
  // Occupancy of the emptiest NUMA domain on `node` relative to its share of
  // the LLC; 0.0 when the model is off.
  [[nodiscard]] double numa_contention(net::NodeId node) const {
    return hierarchy_ == nullptr ? 0.0 : hierarchy_->numa_contention(node);
  }

  // Engine selection shared by all hosts.
  [[nodiscard]] migration::MigrationEngine& first_hop_engine();
  [[nodiscard]] migration::MigrationEngine& second_hop_engine();

  [[nodiscard]] sim::Time makespan() const;  // latest finish time

 private:
  friend class ProcessHost;
  void note_finished(ProcessHost& host);
  void note_rehomed(ProcessHost& host, net::NodeId lost);
  // Incremental load accounting (keeps active_on / zone_load / hosts_on
  // exact without scanning the host list).
  void note_activated(ProcessHost& host, net::NodeId node);
  void note_deactivated(ProcessHost& host, net::NodeId node);
  void note_moved(ProcessHost& host, net::NodeId from, net::NodeId to);
  void note_migration_started(net::NodeId src, net::NodeId dst);
  void note_migration_ended(net::NodeId src, net::NodeId dst);
  // Charge the CPMD warm-up delay to a process that just committed a
  // migration onto `dst` (no-op when the cache model is off). A process
  // remigrating before its previous warm-up is fully paid carries only the
  // outstanding balance — no fresh full charge (remigration_test pins this).
  void charge_warmup(ProcessHost& host, net::NodeId dst);
  // Recovery-tracking poll loops (read-only; scheduled only when tracking).
  void poll_detection(net::NodeId id, sim::Time crashed_at);
  void poll_heal(sim::Time mark);
  [[nodiscard]] bool survivor_views_converged() const;

  driver::Scheme scheme_;
  driver::ClusterProfile profile_;
  core::AmpomConfig ampom_;
  cluster::Topology topology_;
  cluster::GossipConfig gossip_;
  driver::ReliabilityConfig reliability_;
  sim::Simulator sim_;
  net::Fabric fabric_;
  std::unique_ptr<net::FaultInjector> injector_;
  std::vector<std::unique_ptr<cluster::Node>> nodes_;
  std::vector<std::unique_ptr<cluster::InfoDaemon>> infods_;
  std::vector<std::unique_ptr<ProcessHost>> hosts_;
  // Processes finish inside their partition's window; the counter is the
  // one piece of world accounting shared across partitions mid-window.
  std::atomic<std::size_t> finished_{0};
  verify::WorldObserver* observer_{nullptr};
  trace::TraceRecorder* trace_{nullptr};
  bool run_end_notified_{false};
  sim::Time last_fault_at_{};
  bool recovery_tracking_{false};
  RecoveryStats recovery_;
  // Most recent crash per node (dense; valid=false until the first crash).
  struct CrashStamp {
    sim::Time at{};
    bool valid{false};
  };
  std::vector<CrashStamp> crashed_at_;

  // Dense per-node/per-zone load accounting (see note_* above).
  std::vector<std::uint32_t> active_count_;
  std::vector<std::uint64_t> zone_active_;
  std::vector<std::vector<ProcessHost*>> hosts_on_;
  // Balancer damping signals, written only by the migration commit path in
  // the barrier context and read by the (global) balancer tick. Unlike the
  // per-node load counts above these are NOT partition-sharded: a partition
  // callback touching them would race with other zones' windows.
  // ampom: global-only
  std::vector<std::uint32_t> migrating_zone_;
  // ampom: global-only
  std::uint32_t migrating_total_{0};

  // Cache/NUMA model (null = off). Per-node occupancy lives inside the
  // hierarchy and is only mutated by the same note_activated/
  // note_deactivated events that maintain active_count_, so it shares the
  // partition-sharded discipline of the load counts above (and, like them,
  // carries no global-only marker: each node's slice belongs to its zone).
  std::unique_ptr<mem::MemoryHierarchy> hierarchy_;
  migration::CpmdTable cpmd_;  // immutable after construction

  migration::FullCopyEngine full_copy_;
  migration::ThreePageEngine three_page_;
  migration::AmpomEngine ampom_engine_;
  std::unique_ptr<migration::MigrationEngine> remigrate_;  // scheme-specific
};

}  // namespace ampom::balancer
