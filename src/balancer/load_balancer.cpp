#include "balancer/load_balancer.hpp"

#include <limits>
#include <stdexcept>
#include <vector>

namespace ampom::balancer {

LoadBalancer::LoadBalancer(ClusterSim& world, Config config)
    : world_{world}, view_{world.view()}, config_{config} {
  if (config.imbalance_threshold <= 0.0) {
    throw std::invalid_argument("LoadBalancer: imbalance threshold must be positive");
  }
}

void LoadBalancer::start() {
  if (running_) {
    return;
  }
  running_ = true;
  // start() is driver setup: it runs before the event loop, so the tick
  // chain it arms lives in the barrier context. The analyzer reaches this
  // line only through the name-collision fan-out of ProcessHost::start.
  // ampom-lint: partition-ok(start() runs at setup in the barrier context; never called from a partition callback)
  world_.simulator().schedule_after(config_.period, [this] { tick(); });
}

void LoadBalancer::reclaim_stranded() {
  // A migrant whose host the cluster agrees is dead cannot make progress —
  // its executor is frozen and its pages unreachable. Re-home it: the
  // deputy reconstructs ownership from the HPT/ledger and the process
  // resumes at its home node.
  for (const auto& host : world_.hosts()) {
    if (!host->started() || host->finished() || host->migrating() ||
        host->current_node() == host->home_node()) {
      continue;
    }
    const cluster::PeerHealth health = view_.health(host->current_node());
    // A frozen, non-migrating migrant on a node the cluster sees as healthy
    // is stranded by a crash/reboot faster than the dead threshold: the node
    // heartbeats again but the process image died with the crash, so the
    // kDead rule alone would leave it frozen forever. The deputy's view (a
    // frozen migrant nobody is thawing) is enough to re-home it.
    const bool lost_to_reboot = health == cluster::PeerHealth::kAlive &&
                                host->process().state() == proc::ProcState::Frozen;
    if (health == cluster::PeerHealth::kDead || lost_to_reboot) {
      host->recover_to_home();
      ++rehomes_;
    }
  }
}

// The paper's Eq.-3 flat transfer cost amortizes roughly three protocol
// rounds of the measured one-way latency per migration.
constexpr double kEq3TransferRounds = 3.0;

sim::Bytes LoadBalancer::candidate_wss(net::NodeId from) const {
  for (ProcessHost* host : world_.hosts_on(from)) {
    if (host->migratable()) {
      return host->wss_bytes();
    }
  }
  return 0;
}

double LoadBalancer::dest_score(net::NodeId src, net::NodeId dst, double load,
                                sim::Bytes wss) const {
  switch (config_.placement) {
    case driver::Placement::kLoad:
      return load;
    case driver::Placement::kEq3: {
      // Eq. 3: the move pays a flat transfer cost (freeze + a few latency
      // rounds) amortized over the balancing horizon, in load units.
      const double transfer_seconds = config_.assumed_freeze_seconds +
                                      view_.rtt_one_way(src, dst).sec() * kEq3TransferRounds;
      return load + transfer_seconds / config_.horizon_seconds;
    }
    case driver::Placement::kCacheAware:
      // Eq.-3 shape with a measured cost: the CPMD warm-up the migrant
      // would pay on this destination's LLC (calibration curve scaled by
      // resident pressure), plus the contention of the NUMA domain it
      // would land in. Both read 0 while the cache model is off.
      return load + world_.predicted_warmup(wss, dst).sec() / config_.horizon_seconds +
             world_.numa_contention(dst);
  }
  return load;
}

LoadBalancer::ZoneScan LoadBalancer::scan_zone(std::uint32_t zone) const {
  // Nodes the cluster does not consider healthy are skipped entirely —
  // never a migration destination, and not a source either (their
  // processes go through reclaim_stranded instead).
  ZoneScan scan;
  scan.min_load = std::numeric_limits<double>::max();
  scan.best_score = std::numeric_limits<double>::max();
  // Pass 1: the busiest alive node (the migration source).
  for (net::NodeId id = view_.zone_begin(zone); id < view_.zone_end(zone); ++id) {
    if (config_.respect_failure_detection &&
        view_.health(id) != cluster::PeerHealth::kAlive) {
      continue;
    }
    scan.found = true;
    const double load = view_.load(id);
    if (load > scan.max_load) {
      scan.max_load = load;
      scan.busiest = id;
    }
  }
  if (!scan.found) {
    return scan;
  }
  // Pass 2: the destination, by placement score. For kLoad the score IS the
  // load, so the pick — including the first-strictly-lower tie-break — is
  // exactly the classic single-pass idlest and kLoad runs stay bit-identical
  // to the pre-scoring balancer.
  const sim::Bytes wss = config_.placement == driver::Placement::kCacheAware
                             ? candidate_wss(scan.busiest)
                             : 0;
  scan.idlest = scan.busiest;
  for (net::NodeId id = view_.zone_begin(zone); id < view_.zone_end(zone); ++id) {
    if (config_.respect_failure_detection &&
        view_.health(id) != cluster::PeerHealth::kAlive) {
      continue;
    }
    if (config_.placement != driver::Placement::kLoad && id == scan.busiest) {
      continue;  // self is never a useful destination; avoids a self-RTT read
    }
    const double load = view_.load(id);
    const double score = dest_score(scan.busiest, id, load, wss);
    if (score < scan.best_score) {
      scan.best_score = score;
      scan.min_load = load;
      scan.idlest = id;
    }
  }
  return scan;
}

bool LoadBalancer::worth_moving(double max_load, double min_load) const {
  const double imbalance = max_load - min_load;
  if (imbalance < config_.imbalance_threshold) {
    return false;
  }
  // Worth it? Moving one process gains roughly its share improvement over
  // the horizon; it costs one freeze.
  const double gain =
      config_.horizon_seconds * (1.0 / (min_load + 1.0) - 1.0 / max_load);
  return gain > config_.assumed_freeze_seconds;
}

bool LoadBalancer::move_one(net::NodeId from, net::NodeId to) {
  for (ProcessHost* host : world_.hosts_on(from)) {
    // A process whose home is the destination is skipped: migrate_to refuses
    // live returns home (that is the recovery path), so picking it would
    // burn the tick's one move on a no-op.
    if (host->migratable() && host->home_node() != to) {
      host->migrate_to(to);
      ++decisions_;
      return true;
    }
  }
  return false;
}

void LoadBalancer::tick() {
  if (!running_) {
    return;
  }
  ++ticks_;
  if (view_.zone_count() == 1) {
    single_zone_tick();
  } else {
    zoned_tick();
  }
  world_.simulator().schedule_after(config_.period, [this] { tick(); });
}

void LoadBalancer::single_zone_tick() {
  if (config_.respect_failure_detection) {
    reclaim_stranded();
  }

  // Damping: while a migration is in flight the load vector is stale (the
  // migrant still counts at its source); deciding now causes ping-pong
  // churn — expensive exactly when freezes are expensive.
  if (world_.migrations_in_flight() > 0) {
    return;
  }

  const ZoneScan scan = scan_zone(0);
  if (!scan.found || scan.busiest == scan.idlest) {
    return;
  }
  if (worth_moving(scan.max_load, scan.min_load) && move_one(scan.busiest, scan.idlest)) {
    ++intra_moves_;
  }
}

void LoadBalancer::zoned_tick() {
  // Reclaim is zone-agnostic (a stranded migrant is stranded wherever it
  // is), so it runs before any damping decision, like the single-zone path.
  if (config_.respect_failure_detection) {
    reclaim_stranded();
  }

  const std::uint32_t zones = view_.zone_count();
  std::vector<ZoneScan> scans(zones);
  std::vector<bool> eligible(zones, false);  // undamped; vector is reused below
  std::vector<bool> moved(zones, false);
  for (std::uint32_t zone = 0; zone < zones; ++zone) {
    // Per-zone damping: a zone with an in-flight migration has a stale
    // load vector; other zones keep balancing concurrently.
    if (world_.migrations_in_flight(zone) > 0) {
      continue;
    }
    eligible[zone] = true;
    scans[zone] = scan_zone(zone);
    const ZoneScan& scan = scans[zone];
    if (!scan.found || scan.busiest == scan.idlest) {
      continue;
    }
    if (worth_moving(scan.max_load, scan.min_load) && move_one(scan.busiest, scan.idlest)) {
      ++intra_moves_;
      moved[zone] = true;
    }
  }

  // Global tier: one cross-zone move per tick, and only from a zone whose
  // intra-zone pass saturated (made no move — it is either internally
  // balanced or has nothing migratable, yet may still tower over another
  // zone). Compares the source zone's busiest node against the overall
  // idlest node in any other undamped zone.
  std::uint32_t src_zone = 0;
  std::uint32_t dst_zone = 0;
  bool have_src = false;
  bool have_dst = false;
  for (std::uint32_t zone = 0; zone < zones; ++zone) {
    if (!eligible[zone] || !scans[zone].found) {
      continue;
    }
    if (!moved[zone] && (!have_src || scans[zone].max_load > scans[src_zone].max_load)) {
      src_zone = zone;
      have_src = true;
    }
    // Destination zones compete on the placement score of their chosen
    // node (scored against their own zone's busiest — a proxy for the
    // cross-zone source, exact for kLoad where the score is the load).
    if (!have_dst || scans[zone].best_score < scans[dst_zone].best_score) {
      dst_zone = zone;
      have_dst = true;
    }
  }
  if (!have_src || !have_dst || src_zone == dst_zone) {
    return;
  }
  if (worth_moving(scans[src_zone].max_load, scans[dst_zone].min_load) &&
      move_one(scans[src_zone].busiest, scans[dst_zone].idlest)) {
    ++cross_moves_;
  }
}

}  // namespace ampom::balancer
