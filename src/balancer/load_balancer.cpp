#include "balancer/load_balancer.hpp"

#include <stdexcept>

namespace ampom::balancer {

LoadBalancer::LoadBalancer(ClusterSim& world, Config config)
    : world_{world}, config_{config} {
  if (config.imbalance_threshold <= 0.0) {
    throw std::invalid_argument("LoadBalancer: imbalance threshold must be positive");
  }
}

void LoadBalancer::start() {
  if (running_) {
    return;
  }
  running_ = true;
  world_.simulator().schedule_after(config_.period, [this] { tick(); });
}

void LoadBalancer::reclaim_stranded() {
  // A migrant whose host the cluster agrees is dead cannot make progress —
  // its executor is frozen and its pages unreachable. Re-home it: the
  // deputy reconstructs ownership from the HPT/ledger and the process
  // resumes at its home node.
  for (const auto& host : world_.hosts()) {
    if (!host->started() || host->finished() || host->migrating() ||
        host->current_node() == host->home_node()) {
      continue;
    }
    const cluster::PeerHealth health = world_.consensus_health(host->current_node());
    // A frozen, non-migrating migrant on a node the cluster sees as healthy
    // is stranded by a crash/reboot faster than the dead threshold: the node
    // heartbeats again but the process image died with the crash, so the
    // kDead rule alone would leave it frozen forever. The deputy's view (a
    // frozen migrant nobody is thawing) is enough to re-home it.
    const bool lost_to_reboot = health == cluster::PeerHealth::kAlive &&
                                host->process().state() == proc::ProcState::Frozen;
    if (health == cluster::PeerHealth::kDead || lost_to_reboot) {
      host->recover_to_home();
      ++rehomes_;
    }
  }
}

void LoadBalancer::tick() {
  if (!running_) {
    return;
  }
  ++ticks_;

  if (config_.respect_failure_detection) {
    reclaim_stranded();
  }

  // Damping: while a migration is in flight the load vector is stale (the
  // migrant still counts at its source); deciding now causes ping-pong
  // churn — expensive exactly when freezes are expensive.
  for (const auto& host : world_.hosts()) {
    if (host->migrating()) {
      world_.simulator().schedule_after(config_.period, [this] { tick(); });
      return;
    }
  }

  // Load vector: direct count for every node (the InfoDaemons gossip the
  // same numbers; reading them locally avoids acting on stale pings for
  // nodes we could inspect exactly). Nodes the cluster does not consider
  // healthy are skipped entirely — never a migration destination, and not
  // a source either (their processes go through reclaim_stranded instead).
  net::NodeId busiest = 0;
  net::NodeId idlest = 0;
  std::uint64_t max_load = 0;
  std::uint64_t min_load = UINT64_MAX;
  bool found_any = false;
  for (net::NodeId id = 0; id < world_.node_count(); ++id) {
    if (config_.respect_failure_detection &&
        world_.consensus_health(id) != cluster::PeerHealth::kAlive) {
      continue;
    }
    found_any = true;
    const std::uint64_t load = world_.active_on(id);
    if (load > max_load) {
      max_load = load;
      busiest = id;
    }
    if (load < min_load) {
      min_load = load;
      idlest = id;
    }
  }
  if (!found_any || busiest == idlest) {
    world_.simulator().schedule_after(config_.period, [this] { tick(); });
    return;
  }

  const double imbalance = static_cast<double>(max_load) - static_cast<double>(min_load);
  if (imbalance >= config_.imbalance_threshold) {
    // Worth it? Moving one process gains roughly its share improvement over
    // the horizon; it costs one freeze.
    const double gain =
        config_.horizon_seconds *
        (1.0 / static_cast<double>(min_load + 1) - 1.0 / static_cast<double>(max_load));
    if (gain > config_.assumed_freeze_seconds) {
      for (const auto& host : world_.hosts()) {
        if (host->migratable() && host->current_node() == busiest) {
          host->migrate_to(idlest);
          ++decisions_;
          break;
        }
      }
    }
  }

  world_.simulator().schedule_after(config_.period, [this] { tick(); });
}

}  // namespace ampom::balancer
