#include "balancer/cluster_sim.hpp"

#include <algorithm>
#include <stdexcept>

#include "migration/precopy.hpp"
#include "migration/remigration.hpp"
#include "trace/trace.hpp"

namespace ampom::balancer {

// ---------------------------------------------------------------------------
// ProcessHost
// ---------------------------------------------------------------------------

ProcessHost::ProcessHost(ClusterSim& world, std::uint64_t pid, JobSpec spec)
    : world_{world},
      pid_{pid},
      spec_{std::move(spec)},
      process_{pid, spec_.make_workload(), spec_.home},
      executor_{world.simulator(), process_, world.profile().costs},
      ledger_{process_.aspace().page_count(), spec_.home},
      deputy_{world.simulator(), world.fabric(), world.profile().wire, world.profile().costs,
              spec_.home,        pid,            process_.aspace().page_count(), &ledger_} {
  process_.aspace().populate_all_dirty();
  world_.node(spec_.home).set_deputy(pid_, &deputy_);
  if (world.reliability().enabled) {
    deputy_.set_reliability(true);
  }
  // Keep the world's per-node load counts exact: every placement change
  // (migration commit, rehoming) goes through set_current_node.
  process_.set_on_node_changed([this](net::NodeId from, net::NodeId to) {
    if (started_ && !finished()) {
      world_.note_moved(*this, from, to);
    }
  });
  // Time-sharing: the process gets an equal share of whichever node it is on.
  executor_.set_cpu_share_source([this] {
    const auto sharers = world_.active_on(process_.current_node());
    return 1.0 / static_cast<double>(std::max<std::uint64_t>(1, sharers));
  });
  executor_.set_max_burst(sim::Time::from_ms(5));  // responsive rebalancing
  executor_.set_on_finished([this] { world_.note_finished(*this); });
}

void ProcessHost::start() {
  started_ = true;
  world_.note_activated(*this, process_.current_node());
  executor_.start();
  if (world_.observer_ != nullptr) {
    world_.observer_->on_started(*this);
  }
}

const proc::PagingClientStats* ProcessHost::paging_stats(net::NodeId node) const {
  const auto it = stacks_.find(node);
  if (it == stacks_.end() || it->second.client == nullptr) {
    return nullptr;
  }
  return &it->second.client->stats();
}

const proc::PagingClient* ProcessHost::paging_client(net::NodeId node) const {
  const auto it = stacks_.find(node);
  return it == stacks_.end() ? nullptr : it->second.client.get();
}

void ProcessHost::on_host_crashed(net::NodeId node) {
  executor_.crash_interrupt();
  const auto it = stacks_.find(node);
  if (it != stacks_.end() && it->second.client != nullptr) {
    it->second.client->cancel_outstanding();
  }
}

void ProcessHost::recover_to_home() {
  if (!started_ || finished() || migrating_ || current_node() == home_node()) {
    return;
  }
  const net::NodeId lost = process_.current_node();
  // Belt and braces: normally on_host_crashed already ran when the node
  // died, but recover_to_home is also callable directly (both are
  // idempotent).
  on_host_crashed(lost);
  deputy_.recover_pages_from(lost);
  process_.aspace().recover_all_local();
  process_.set_current_node(spec_.home);
  executor_.set_policy(nullptr);  // every page is Local at home again
  executor_.resume_migrated(world_.profile().costs);
  ++recoveries_;
  world_.note_rehomed(*this, lost);
}

void ProcessHost::activate_stack(net::NodeId node) {
  auto it = stacks_.find(node);
  if (it == stacks_.end()) {
    PagingStack stack;
    stack.client = std::make_unique<proc::PagingClient>(
        world_.simulator(), world_.fabric(), world_.profile().wire, node, spec_.home, pid_);
    if (world_.reliability().enabled && world_.reliability().paging.enabled) {
      stack.client->set_retry_config(world_.reliability().paging);
      cluster::InfoDaemon& daemon = world_.infod(node);
      stack.client->set_rtt_provider(
          [&daemon, home = spec_.home] { return daemon.rtt_one_way(home); });
    }
    switch (world_.scheme()) {
      case driver::Scheme::NoPrefetch:
        stack.demand = std::make_unique<proc::DemandPagingPolicy>(world_.simulator(), executor_,
                                                                  *stack.client);
        break;
      case driver::Scheme::Ampom: {
        cluster::InfoDaemon& daemon = world_.infod(node);
        cluster::Node& host_node = world_.node(node);
        stack.ampom = std::make_unique<core::AmpomPolicy>(
            world_.simulator(), executor_, *stack.client, world_.ampom_config(),
            [&daemon, &host_node, home = spec_.home, wire = world_.profile().wire] {
              core::ResourceEstimates est;
              est.rtt_one_way = daemon.rtt_one_way(home);
              est.page_transfer =
                  daemon.available_bandwidth().transfer_time(wire.page_message_bytes());
              est.expected_cpu_share = host_node.cpu_share();
              return est;
            });
        break;
      }
      default:
        break;  // openMosix / PreCopy: no remote paging
    }
    it = stacks_.emplace(node, std::move(stack)).first;
  }

  PagingStack& stack = it->second;
  if (stack.client == nullptr) {
    return;
  }
  world_.node(node).set_paging_client(pid_, stack.client.get());
  if (stack.demand != nullptr) {
    executor_.set_policy(stack.demand.get());
    stack.client->set_arrival_handler([policy = stack.demand.get()](mem::PageId p, bool urgent) {
      policy->on_arrival(p, urgent);
    });
  } else if (stack.ampom != nullptr) {
    executor_.set_policy(stack.ampom.get());
    stack.client->set_arrival_handler([policy = stack.ampom.get()](mem::PageId p, bool urgent) {
      policy->on_arrival(p, urgent);
    });
  }
}

void ProcessHost::migrate_to(net::NodeId dst) {
  if (!migratable() || dst == process_.current_node() || dst >= world_.node_count()) {
    return;
  }
  if (dst == process_.home_node()) {
    // The engines model H->B first hops and B->C re-migrations, not live
    // B->H returns (a paging stack at home would page from itself). Going
    // home is the recovery path (recover_to_home), not a balancer move.
    return;
  }
  const bool reliable =
      world_.reliability().enabled && world_.reliability().migration.enabled;
  if (world_.node_crashed(dst) && !reliable) {
    // The classic fire-and-forget engines would "complete" into a dead node;
    // without the ack'd protocol to detect that, refuse the move instead.
    return;
  }
  migrating_ = true;
  const net::NodeId src = process_.current_node();
  world_.note_migration_started(src, dst);
  const bool first_hop = process_.current_node() == process_.home_node();
  migration::MigrationEngine& engine =
      first_hop ? world_.first_hop_engine() : world_.second_hop_engine();

  migration::MigrationContext ctx{world_.simulator(),
                                  world_.fabric(),
                                  world_.profile().wire,
                                  process_,
                                  executor_,
                                  deputy_,
                                  process_.current_node(),
                                  dst,
                                  world_.profile().costs,
                                  world_.profile().costs,
                                  &ledger_,
                                  [this, dst] { activate_stack(dst); },
                                  /*src_node=*/nullptr,
                                  /*dst_node=*/nullptr,
                                  /*reliability=*/{}};
  if (reliable) {
    ctx.src_node = &world_.node(process_.current_node());
    ctx.dst_node = &world_.node(dst);
    ctx.reliability = world_.reliability().migration;
  }
  ctx.trace = world_.trace_;
  migration::migrate_process(std::move(ctx), engine,
                             [this, src, dst](migration::MigrationResult result) {
                               migrating_ = false;
                               world_.note_migration_ended(src, dst);
                               if (result.completed()) {
                                 ++migrations_;
                                 // Cold caches at the destination: charge the CPMD
                                 // warm-up before the first resumed burst runs (a
                                 // no-op while the cache model is off).
                                 world_.charge_warmup(*this, dst);
                                 if (world_.node_crashed(process_.current_node())) {
                                   // The destination died while the final acks were
                                   // in flight: the commit is legitimate (every chunk
                                   // was acknowledged) but the image landed on a dead
                                   // node and nobody there will thaw it. Freeze it
                                   // now; the balancer re-homes it like any other
                                   // stranded migrant.
                                   on_host_crashed(process_.current_node());
                                 }
                               } else {
                                 ++failed_migrations_;
                               }
                               freeze_total_ += result.freeze_time();
                               if (world_.observer_ != nullptr) {
                                 if (result.completed()) {
                                   world_.observer_->on_migration_committed(*this, src, dst);
                                 } else {
                                   world_.observer_->on_migration_aborted(*this, src, dst);
                                 }
                               }
                             });
}

// ---------------------------------------------------------------------------
// ClusterSim
// ---------------------------------------------------------------------------

WorldConfig WorldConfig::from(const driver::Scenario& scenario) {
  if (!scenario.topology.set()) {
    throw std::invalid_argument(
        "WorldConfig::from: scenario has no topology — cluster worlds need "
        "ScenarioBuilder::topology(zones, nodes_per_zone)");
  }
  WorldConfig config;
  config.scheme = scenario.scheme;
  config.profile = scenario.profile;
  config.ampom = scenario.ampom;
  config.topology = scenario.topology;
  config.gossip = scenario.gossip;
  config.exec = scenario.exec;
  config.hierarchy = scenario.hierarchy;
  config.cpmd_calibration = scenario.cpmd_calibration;
  return config;
}

ClusterSim::ClusterSim(std::size_t node_count, driver::Scheme scheme,
                       driver::ClusterProfile profile, core::AmpomConfig ampom)
    : ClusterSim{WorldConfig{scheme, profile, ampom,
                             cluster::Topology::flat(node_count),
                             cluster::GossipConfig{}}} {}

ClusterSim::ClusterSim(const driver::Scenario& scenario)
    : ClusterSim{WorldConfig::from(scenario)} {
  set_reliability(scenario.reliability);
  if (scenario.faults.active()) {
    set_fault_plan(scenario.faults);
  }
}

ClusterSim::ClusterSim(const WorldConfig& config)
    : scheme_{config.scheme},
      profile_{config.profile},
      ampom_{config.ampom},
      topology_{config.topology},
      gossip_{config.gossip},
      fabric_{sim_, config.topology.node_count(), config.profile.link} {
  const std::size_t node_count = topology_.node_count();
  if (node_count < 2) {
    throw std::invalid_argument("ClusterSim needs at least two nodes");
  }
  // Intra-run parallelism: partition the event queue by zone before anything
  // schedules an event. The zone is the natural partition — gossip, voting
  // and the balancer's local tier all stay zone-internal — and the default
  // link latency is the minimum cross-zone propagation delay, i.e. the
  // conservative lookahead bound. A single-zone world has nothing to run in
  // parallel and silently keeps the serial engine.
  if (config.exec.parallel_run() && topology_.zones >= 2) {
    sim::Simulator::PartitionPlan plan;
    plan.partitions = topology_.zones;
    plan.node_partition.resize(node_count);
    for (std::size_t i = 0; i < node_count; ++i) {
      plan.node_partition[i] = topology_.zone_of(static_cast<net::NodeId>(i)) + 1;
    }
    plan.lookahead = profile_.link.latency;
    sim_.configure_partitions(std::move(plan), static_cast<std::uint32_t>(config.exec.workers));
  }
  // Cache/NUMA model (DESIGN.md §17): built before the daemons so their
  // cache-pressure sources can read it. The digest upgrade rides on the
  // existing gossip config — when both are on, every daemon ships the
  // 32-byte cache-format entries.
  if (config.hierarchy.enabled) {
    hierarchy_ = std::make_unique<mem::MemoryHierarchy>(config.hierarchy, node_count);
    cpmd_ = config.cpmd_calibration.empty()
                ? migration::CpmdTable::builtin()
                : migration::CpmdTable::load_file(config.cpmd_calibration);
    if (gossip_.enabled) {
      gossip_.cache_digest = true;
    }
  }
  crashed_at_.resize(node_count);
  active_count_.assign(node_count, 0);
  hosts_on_.resize(node_count);
  zone_active_.assign(topology_.zones, 0);
  migrating_zone_.assign(topology_.zones, 0);
  nodes_.reserve(node_count);
  infods_.reserve(node_count);
  for (std::size_t i = 0; i < node_count; ++i) {
    const auto id = static_cast<net::NodeId>(i);
    nodes_.push_back(std::make_unique<cluster::Node>(sim_, fabric_, id, profile_.costs));
    infods_.push_back(
        std::make_unique<cluster::InfoDaemon>(sim_, fabric_, id, profile_.infod_period));
  }
  // The gossip domain is the zone: each daemon's membership is its zone's
  // other nodes, so per-daemon state is O(zone size) and a 10k-node world
  // stays linear in memory instead of quadratic. Single-zone worlds get the
  // classic everyone-knows-everyone mesh.
  for (std::size_t i = 0; i < node_count; ++i) {
    const auto id = static_cast<net::NodeId>(i);
    const std::uint32_t zone = topology_.zone_of(id);
    for (net::NodeId j = topology_.zone_begin(zone); j < topology_.zone_end(zone); ++j) {
      if (j != id) {
        infods_[i]->add_peer(j);
      }
    }
    if (gossip_.enabled) {
      infods_[i]->set_gossip(gossip_);
    }
    infods_[i]->set_local_load_source(
        [this, id] { return static_cast<double>(active_on(id)); });
    if (hierarchy_ != nullptr) {
      infods_[i]->set_local_cache_pressure_source([this, id] { return cache_pressure(id); });
    }
    nodes_[i]->set_infod(infods_[i].get());
    infods_[i]->start();
  }

  switch (scheme_) {
    case driver::Scheme::Ampom:
      remigrate_ = std::make_unique<migration::RemigrationEngine>(
          migration::RemigrationEngine::Config{/*ship_mpt=*/true});
      break;
    case driver::Scheme::NoPrefetch:
      remigrate_ = std::make_unique<migration::RemigrationEngine>(
          migration::RemigrationEngine::Config{/*ship_mpt=*/false});
      break;
    default:
      break;  // full copy / pre-copy re-migrate with their first-hop engine
  }
}

void ClusterSim::set_fault_plan(const driver::FaultPlan& plan) {
  if (injector_ == nullptr) {
    injector_ = std::make_unique<net::FaultInjector>(sim_, plan.seed);
    if (sim_.partitioned()) {
      // Partitions decide message fates concurrently: switch the injector to
      // per-message keyed draws (fate = f(seed, src, dst, send index)) and
      // per-partition stat shards so no RNG or counter is shared.
      injector_->enable_keyed_mode(node_count(), sim_.partitions());
    }
    fabric_.set_fault_injector(injector_.get());
  }
  plan.apply_faults(*injector_);
  const auto schedule_crash = [this](net::NodeId node, sim::Time at, sim::Time restore_at) {
    sim_.schedule_at(at, [this, node] { crash_node(node); });
    last_fault_at_ = std::max(last_fault_at_, at);
    if (restore_at > sim::Time::zero()) {
      sim_.schedule_at(restore_at, [this, node] { restore_node(node); });
      last_fault_at_ = std::max(last_fault_at_, restore_at);
    }
  };
  for (const auto& crash : plan.crashes) {
    schedule_crash(crash.node, crash.at, crash.restore_at);
  }
  for (const auto& outage : plan.outages) {
    last_fault_at_ = std::max({last_fault_at_, outage.down_at, outage.up_at});
  }

  if (plan.chaos.active()) {
    // Campaigns expand to the same primitives the plan carries explicitly:
    // outages feed the injector directly, crashes go through crash_node so
    // the processes on dying nodes are interrupted too.
    const cluster::ExpandedChaos expanded = cluster::expand_chaos(plan.chaos, topology_);
    for (const auto& outage : expanded.outages) {
      injector_->schedule_link_outage(outage.a, outage.b, outage.down_at, outage.up_at);
    }
    for (const auto& crash : expanded.crashes) {
      schedule_crash(crash.node, crash.at, crash.restore_at);
    }
    last_fault_at_ = std::max(last_fault_at_, expanded.last_fault_at);
    if (recovery_tracking_) {
      sim::Time last_mark = sim::Time::zero();
      for (const sim::Time mark : expanded.heal_marks) {
        if (mark == last_mark) {
          continue;  // heal_marks is sorted; watch each instant once
        }
        last_mark = mark;
        sim_.schedule_at(mark, [this, mark] { poll_heal(mark); });
      }
    }
  }
}

void ClusterSim::set_reliability(const driver::ReliabilityConfig& config) {
  reliability_ = config;
  for (auto& infod : infods_) {
    infod->set_failure_detection(config.detection);
  }
  // Hosts spawned before this call still get their paging stacks lazily, so
  // only the deputy flag needs back-filling.
  for (auto& host : hosts_) {
    host->deputy_.set_reliability(config.enabled);
  }
}

void ClusterSim::set_trace(trace::TraceRecorder* recorder) {
  trace_ = recorder;
  fabric_.set_trace(recorder);
  if (recorder != nullptr && sim_.partitioned()) {
    // Partitions record concurrently into per-partition shards; the recorder
    // merges them deterministically (by timestamp, then partition) on read.
    recorder->enable_partition_shards(sim_.partitions());
  }
}

void ClusterSim::crash_node(net::NodeId id) {
  if (id >= node_count()) {
    throw std::invalid_argument("ClusterSim::crash_node: node out of range");
  }
  if (injector_ == nullptr) {
    // No fault plan installed: a zero-fault injector is exactly transparent,
    // so composing one in just for the crash flags is safe.
    injector_ = std::make_unique<net::FaultInjector>(sim_, /*seed=*/1);
    if (sim_.partitioned()) {
      injector_->enable_keyed_mode(node_count(), sim_.partitions());
    }
    fabric_.set_fault_injector(injector_.get());
  }
  injector_->crash_node(id);
  for (ProcessHost* host : hosts_on_[id]) {
    if (!host->migrating()) {
      host->on_host_crashed(id);
    }
  }
  last_fault_at_ = std::max(last_fault_at_, sim_.now());
  if (recovery_tracking_) {
    ++recovery_.crashes;
    crashed_at_[id] = CrashStamp{sim_.now(), true};
    if (reliability_.enabled && reliability_.detection.enabled) {
      poll_detection(id, sim_.now());
    }
  }
  if (observer_ != nullptr) {
    observer_->on_node_crashed(id);
  }
}

void ClusterSim::restore_node(net::NodeId id) {
  if (injector_ != nullptr) {
    injector_->restore_node(id);
  }
  // The restored node boots fresh: its failure detector must not judge
  // peers by pre-crash timestamps, or two restored nodes can outvote the
  // survivors and condemn a live migrant's host.
  if (id < infods_.size() && infods_[id] != nullptr) {
    infods_[id]->note_rebooted();
  }
  last_fault_at_ = std::max(last_fault_at_, sim_.now());
  if (observer_ != nullptr) {
    observer_->on_node_restored(id);
  }
}

bool ClusterSim::node_crashed(net::NodeId id) const {
  return injector_ != nullptr && injector_->node_crashed(id);
}

cluster::PeerHealth ClusterSim::consensus_health(net::NodeId id) const {
  if (!reliability_.enabled || !reliability_.detection.enabled || id >= node_count()) {
    return cluster::PeerHealth::kAlive;
  }
  std::size_t dead = 0;
  std::size_t suspected = 0;
  std::size_t voters = 0;
  // Voters are the target's zone — the nodes whose daemons actually
  // exchange heartbeats with it. Single-zone worlds vote cluster-wide,
  // exactly the pre-zoning behavior.
  const std::uint32_t zone = topology_.zone_of(id);
  for (net::NodeId observer = topology_.zone_begin(zone);
       observer < topology_.zone_end(zone); ++observer) {
    if (observer == id) {
      continue;
    }
    // A crashed peer answers no poll, so its verdict cannot count. Without
    // this, a half-dead cluster condemns its own survivors: crashed
    // observers hear nobody, vote everyone dead, and a majority of them
    // gets a live migrant's host declared kDead — and the migrant
    // "reclaimed" while it is still running there.
    if (node_crashed(observer)) {
      continue;
    }
    ++voters;
    switch (infods_[observer]->peer_health(id)) {
      case cluster::PeerHealth::kDead:
        ++dead;
        break;
      case cluster::PeerHealth::kSuspected:
        ++suspected;
        break;
      case cluster::PeerHealth::kAlive:
        break;
    }
  }
  if (dead * 2 > voters) {
    return cluster::PeerHealth::kDead;
  }
  if ((dead + suspected) * 2 > voters) {
    return cluster::PeerHealth::kSuspected;
  }
  return cluster::PeerHealth::kAlive;
}

migration::MigrationEngine& ClusterSim::first_hop_engine() {
  switch (scheme_) {
    case driver::Scheme::OpenMosix:
    case driver::Scheme::PreCopy:     // pre-copy not supported per-host; full copy
    case driver::Scheme::Checkpoint:  // no file server in ClusterSim; full copy
      return full_copy_;
    case driver::Scheme::NoPrefetch:
      return three_page_;
    case driver::Scheme::Ampom:
      return ampom_engine_;
  }
  return full_copy_;
}

migration::MigrationEngine& ClusterSim::second_hop_engine() {
  if (remigrate_ != nullptr) {
    return *remigrate_;
  }
  return full_copy_;
}

ProcessHost& ClusterSim::spawn(JobSpec spec) {
  if (spec.home >= node_count()) {
    throw std::invalid_argument("ClusterSim::spawn: home node out of range");
  }
  if (!spec.make_workload) {
    throw std::invalid_argument("ClusterSim::spawn: job has no workload factory");
  }
  const auto pid = static_cast<std::uint64_t>(hosts_.size() + 1);
  hosts_.push_back(std::make_unique<ProcessHost>(*this, pid, std::move(spec)));
  ProcessHost* host = hosts_.back().get();
  // The start event belongs to the home node's partition: from there the
  // executor's burst chain stays partition-local until a migration commits.
  sim_.schedule_on_node(host->spec_.home, host->spec_.start, [host] { host->start(); });
  return *host;
}

void ClusterSim::note_activated(ProcessHost& host, net::NodeId node) {
  ++active_count_[node];
  ++zone_active_[topology_.zone_of(node)];
  auto& list = hosts_on_[node];
  const auto pos = std::lower_bound(list.begin(), list.end(), &host,
                                    [](const ProcessHost* a, const ProcessHost* b) {
                                      return a->pid() < b->pid();
                                    });
  list.insert(pos, &host);
  if (hierarchy_ != nullptr) {
    hierarchy_->place(node, host.pid(), host.wss_bytes());
  }
}

void ClusterSim::note_deactivated(ProcessHost& host, net::NodeId node) {
  --active_count_[node];
  --zone_active_[topology_.zone_of(node)];
  auto& list = hosts_on_[node];
  list.erase(std::find(list.begin(), list.end(), &host));
  if (hierarchy_ != nullptr) {
    hierarchy_->remove(node, host.pid());
  }
}

void ClusterSim::charge_warmup(ProcessHost& host, net::NodeId dst) {
  if (hierarchy_ == nullptr) {
    return;
  }
  const sim::Time carried = host.executor_.warmup_balance();
  sim::Time charged = sim::Time::zero();
  if (carried == sim::Time::zero()) {
    // Displacement cost of landing here: the calibration-curve delay for
    // this working set, inflated by the LLC pressure of the processes
    // already resident (the migrant itself was placed by note_moved just
    // before this runs, so it must not count against itself).
    const sim::Time base = cpmd_.warmup_delay(host.wss_bytes());
    charged = base.scaled(1.0 + hierarchy_->pressure_excluding(dst, host.pid()));
    host.executor_.add_warmup_charge(charged);
  }
  // else: remigrated before the previous warm-up was fully paid — the
  // outstanding balance carries as-is; adding a fresh full charge would
  // bill the same cold cache twice (remigration_test pins this).
  if (trace_ != nullptr) {
    trace_->instant(trace::Category::kSched, "warmup", sim_.now(), dst, host.pid(),
                    static_cast<std::uint64_t>(charged.us()),
                    static_cast<std::uint64_t>(carried.us()));
  }
}

void ClusterSim::note_moved(ProcessHost& host, net::NodeId from, net::NodeId to) {
  note_deactivated(host, from);
  note_activated(host, to);
}

void ClusterSim::note_migration_started(net::NodeId src, net::NodeId dst) {
  ++migrating_total_;
  const std::uint32_t src_zone = topology_.zone_of(src);
  const std::uint32_t dst_zone = topology_.zone_of(dst);
  ++migrating_zone_[src_zone];
  if (dst_zone != src_zone) {
    ++migrating_zone_[dst_zone];
  }
}

void ClusterSim::note_migration_ended(net::NodeId src, net::NodeId dst) {
  --migrating_total_;
  const std::uint32_t src_zone = topology_.zone_of(src);
  const std::uint32_t dst_zone = topology_.zone_of(dst);
  --migrating_zone_[src_zone];
  if (dst_zone != src_zone) {
    --migrating_zone_[dst_zone];
  }
}

void ClusterSim::note_finished(ProcessHost& host) {
  note_deactivated(host, host.current_node());
  // Partitioned runs finish processes concurrently across windows; the
  // atomic increment makes exactly one caller observe the final count.
  const std::size_t done = finished_.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (observer_ != nullptr) {
    observer_->on_finished(host);
  }
  if (done == hosts_.size()) {
    if (observer_ != nullptr && !run_end_notified_) {
      run_end_notified_ = true;
      observer_->on_run_end();
    }
    sim_.halt();
  }
}

void ClusterSim::note_rehomed(ProcessHost& host, net::NodeId lost) {
  if (recovery_tracking_) {
    ++recovery_.rehomes;
    if (crashed_at_[lost].valid) {
      recovery_.rehome_ms.add((sim_.now() - crashed_at_[lost].at).ms());
    }
  }
  if (observer_ != nullptr) {
    observer_->on_rehomed(host);
  }
}

void ClusterSim::poll_detection(net::NodeId id, sim::Time crashed_at) {
  if (!crashed_at_[id].valid || crashed_at_[id].at != crashed_at) {
    return;  // superseded by a restore + re-crash; the newer watch owns it
  }
  if (!node_crashed(id)) {
    return;  // restored before the survivors agreed it was dead
  }
  if (consensus_health(id) == cluster::PeerHealth::kDead) {
    recovery_.detect_ms.add((sim_.now() - crashed_at).ms());
    return;
  }
  sim_.schedule_after(infod_period(),
                      [this, id, crashed_at] { poll_detection(id, crashed_at); });
}

void ClusterSim::poll_heal(sim::Time mark) {
  if (survivor_views_converged()) {
    ++recovery_.heals;
    recovery_.heal_ms.add((sim_.now() - mark).ms());
    return;
  }
  sim_.schedule_after(infod_period(), [this, mark] { poll_heal(mark); });
}

bool ClusterSim::survivor_views_converged() const {
  if (!reliability_.enabled || !reliability_.detection.enabled) {
    return true;  // no views to converge
  }
  // Views only exist inside a zone (that is the gossip domain), so
  // convergence is judged per zone; single-zone worlds check all pairs.
  for (net::NodeId viewer = 0; viewer < node_count(); ++viewer) {
    if (node_crashed(viewer)) {
      continue;
    }
    const std::uint32_t zone = topology_.zone_of(viewer);
    for (net::NodeId target = topology_.zone_begin(zone);
         target < topology_.zone_end(zone); ++target) {
      if (viewer == target || node_crashed(target)) {
        continue;
      }
      if (infods_[viewer]->peer_health(target) != cluster::PeerHealth::kAlive) {
        return false;
      }
    }
  }
  return true;
}

void ClusterSim::fill_recovery_metrics(driver::RunMetrics& metrics) const {
  metrics.crashes_injected = recovery_.crashes;
  metrics.migrants_rehomed = recovery_.rehomes;
  metrics.heals_observed = recovery_.heals;
  if (!recovery_.detect_ms.empty()) {
    metrics.detect_p50_ms = recovery_.detect_ms.percentile(0.5);
    metrics.detect_p95_ms = recovery_.detect_ms.percentile(0.95);
  }
  if (!recovery_.rehome_ms.empty()) {
    metrics.rehome_p50_ms = recovery_.rehome_ms.percentile(0.5);
    metrics.rehome_p95_ms = recovery_.rehome_ms.percentile(0.95);
  }
  if (!recovery_.heal_ms.empty()) {
    metrics.heal_p50_ms = recovery_.heal_ms.percentile(0.5);
    metrics.heal_p95_ms = recovery_.heal_ms.percentile(0.95);
  }
}

void ClusterSim::run() {
  if (hosts_.empty()) {
    throw std::logic_error("ClusterSim::run: no jobs spawned");
  }
  sim_.run();
  if (finished_ != hosts_.size()) {
    throw std::runtime_error("ClusterSim::run: simulation drained with unfinished processes");
  }
}

bool ClusterSim::run_until(sim::Time deadline) {
  if (hosts_.empty()) {
    throw std::logic_error("ClusterSim::run_until: no jobs spawned");
  }
  sim_.run_until(deadline);
  return finished_ == hosts_.size();
}

sim::Time ClusterSim::makespan() const {
  sim::Time latest{};
  for (const auto& host : hosts_) {
    latest = std::max(latest, host->finished_at());
  }
  return latest;
}

}  // namespace ampom::balancer
