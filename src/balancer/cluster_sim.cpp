#include "balancer/cluster_sim.hpp"

#include <algorithm>
#include <stdexcept>

#include "migration/precopy.hpp"
#include "migration/remigration.hpp"

namespace ampom::balancer {

// ---------------------------------------------------------------------------
// ProcessHost
// ---------------------------------------------------------------------------

ProcessHost::ProcessHost(ClusterSim& world, std::uint64_t pid, JobSpec spec)
    : world_{world},
      pid_{pid},
      spec_{std::move(spec)},
      process_{pid, spec_.make_workload(), spec_.home},
      executor_{world.simulator(), process_, world.profile().costs},
      ledger_{process_.aspace().page_count(), spec_.home},
      deputy_{world.simulator(), world.fabric(), world.profile().wire, world.profile().costs,
              spec_.home,        pid,            process_.aspace().page_count(), &ledger_} {
  process_.aspace().populate_all_dirty();
  world_.node(spec_.home).set_deputy(pid_, &deputy_);
  if (world.reliability().enabled) {
    deputy_.set_reliability(true);
  }
  // Time-sharing: the process gets an equal share of whichever node it is on.
  executor_.set_cpu_share_source([this] {
    const auto sharers = world_.active_on(process_.current_node());
    return 1.0 / static_cast<double>(std::max<std::uint64_t>(1, sharers));
  });
  executor_.set_max_burst(sim::Time::from_ms(5));  // responsive rebalancing
  executor_.set_on_finished([this] { world_.note_finished(); });
}

void ProcessHost::start() {
  started_ = true;
  executor_.start();
}

const proc::PagingClientStats* ProcessHost::paging_stats(net::NodeId node) const {
  const auto it = stacks_.find(node);
  if (it == stacks_.end() || it->second.client == nullptr) {
    return nullptr;
  }
  return &it->second.client->stats();
}

void ProcessHost::on_host_crashed(net::NodeId node) {
  executor_.crash_interrupt();
  const auto it = stacks_.find(node);
  if (it != stacks_.end() && it->second.client != nullptr) {
    it->second.client->cancel_outstanding();
  }
}

void ProcessHost::recover_to_home() {
  if (!started_ || finished() || migrating_ || current_node() == home_node()) {
    return;
  }
  const net::NodeId lost = process_.current_node();
  // Belt and braces: normally on_host_crashed already ran when the node
  // died, but recover_to_home is also callable directly (both are
  // idempotent).
  on_host_crashed(lost);
  deputy_.recover_pages_from(lost);
  process_.aspace().recover_all_local();
  process_.set_current_node(spec_.home);
  executor_.set_policy(nullptr);  // every page is Local at home again
  executor_.resume_migrated(world_.profile().costs);
  ++recoveries_;
}

void ProcessHost::activate_stack(net::NodeId node) {
  auto it = stacks_.find(node);
  if (it == stacks_.end()) {
    PagingStack stack;
    stack.client = std::make_unique<proc::PagingClient>(
        world_.simulator(), world_.fabric(), world_.profile().wire, node, spec_.home, pid_);
    if (world_.reliability().enabled && world_.reliability().paging.enabled) {
      stack.client->set_retry_config(world_.reliability().paging);
      cluster::InfoDaemon& daemon = world_.infod(node);
      stack.client->set_rtt_provider(
          [&daemon, home = spec_.home] { return daemon.rtt_one_way(home); });
    }
    switch (world_.scheme()) {
      case driver::Scheme::NoPrefetch:
        stack.demand = std::make_unique<proc::DemandPagingPolicy>(world_.simulator(), executor_,
                                                                  *stack.client);
        break;
      case driver::Scheme::Ampom: {
        cluster::InfoDaemon& daemon = world_.infod(node);
        cluster::Node& host_node = world_.node(node);
        stack.ampom = std::make_unique<core::AmpomPolicy>(
            world_.simulator(), executor_, *stack.client, world_.ampom_config(),
            [&daemon, &host_node, home = spec_.home, wire = world_.profile().wire] {
              core::ResourceEstimates est;
              est.rtt_one_way = daemon.rtt_one_way(home);
              est.page_transfer =
                  daemon.available_bandwidth().transfer_time(wire.page_message_bytes());
              est.expected_cpu_share = host_node.cpu_share();
              return est;
            });
        break;
      }
      default:
        break;  // openMosix / PreCopy: no remote paging
    }
    it = stacks_.emplace(node, std::move(stack)).first;
  }

  PagingStack& stack = it->second;
  if (stack.client == nullptr) {
    return;
  }
  world_.node(node).set_paging_client(pid_, stack.client.get());
  if (stack.demand != nullptr) {
    executor_.set_policy(stack.demand.get());
    stack.client->set_arrival_handler([policy = stack.demand.get()](mem::PageId p, bool urgent) {
      policy->on_arrival(p, urgent);
    });
  } else if (stack.ampom != nullptr) {
    executor_.set_policy(stack.ampom.get());
    stack.client->set_arrival_handler([policy = stack.ampom.get()](mem::PageId p, bool urgent) {
      policy->on_arrival(p, urgent);
    });
  }
}

void ProcessHost::migrate_to(net::NodeId dst) {
  if (!migratable() || dst == process_.current_node() || dst >= world_.node_count()) {
    return;
  }
  const bool reliable =
      world_.reliability().enabled && world_.reliability().migration.enabled;
  if (world_.node_crashed(dst) && !reliable) {
    // The classic fire-and-forget engines would "complete" into a dead node;
    // without the ack'd protocol to detect that, refuse the move instead.
    return;
  }
  migrating_ = true;
  const bool first_hop = process_.current_node() == process_.home_node();
  migration::MigrationEngine& engine =
      first_hop ? world_.first_hop_engine() : world_.second_hop_engine();

  migration::MigrationContext ctx{world_.simulator(),
                                  world_.fabric(),
                                  world_.profile().wire,
                                  process_,
                                  executor_,
                                  deputy_,
                                  process_.current_node(),
                                  dst,
                                  world_.profile().costs,
                                  world_.profile().costs,
                                  &ledger_,
                                  [this, dst] { activate_stack(dst); },
                                  /*src_node=*/nullptr,
                                  /*dst_node=*/nullptr,
                                  /*reliability=*/{}};
  if (reliable) {
    ctx.src_node = &world_.node(process_.current_node());
    ctx.dst_node = &world_.node(dst);
    ctx.reliability = world_.reliability().migration;
  }
  migration::migrate_process(std::move(ctx), engine,
                             [this](migration::MigrationResult result) {
                               migrating_ = false;
                               if (result.completed()) {
                                 ++migrations_;
                               } else {
                                 ++failed_migrations_;
                               }
                               freeze_total_ += result.freeze_time();
                             });
}

// ---------------------------------------------------------------------------
// ClusterSim
// ---------------------------------------------------------------------------

ClusterSim::ClusterSim(std::size_t node_count, driver::Scheme scheme,
                       driver::ClusterProfile profile, core::AmpomConfig ampom)
    : scheme_{scheme},
      profile_{profile},
      ampom_{ampom},
      fabric_{sim_, node_count, profile.link} {
  if (node_count < 2) {
    throw std::invalid_argument("ClusterSim needs at least two nodes");
  }
  nodes_.reserve(node_count);
  infods_.reserve(node_count);
  for (std::size_t i = 0; i < node_count; ++i) {
    const auto id = static_cast<net::NodeId>(i);
    nodes_.push_back(std::make_unique<cluster::Node>(sim_, fabric_, id, profile.costs));
    infods_.push_back(
        std::make_unique<cluster::InfoDaemon>(sim_, fabric_, id, profile.infod_period));
  }
  for (std::size_t i = 0; i < node_count; ++i) {
    for (std::size_t j = 0; j < node_count; ++j) {
      if (i != j) {
        infods_[i]->add_peer(static_cast<net::NodeId>(j));
      }
    }
    const auto id = static_cast<net::NodeId>(i);
    infods_[i]->set_local_load_source(
        [this, id] { return static_cast<double>(active_on(id)); });
    nodes_[i]->set_infod(infods_[i].get());
    infods_[i]->start();
  }

  switch (scheme_) {
    case driver::Scheme::Ampom:
      remigrate_ = std::make_unique<migration::RemigrationEngine>(
          migration::RemigrationEngine::Config{/*ship_mpt=*/true});
      break;
    case driver::Scheme::NoPrefetch:
      remigrate_ = std::make_unique<migration::RemigrationEngine>(
          migration::RemigrationEngine::Config{/*ship_mpt=*/false});
      break;
    default:
      break;  // full copy / pre-copy re-migrate with their first-hop engine
  }
}

void ClusterSim::set_fault_plan(const driver::FaultPlan& plan) {
  if (injector_ == nullptr) {
    injector_ = std::make_unique<net::FaultInjector>(sim_, plan.seed);
    fabric_.set_fault_injector(injector_.get());
  }
  plan.apply_faults(*injector_);
  for (const auto& crash : plan.crashes) {
    sim_.schedule_at(crash.at, [this, node = crash.node] { crash_node(node); });
    if (crash.restore_at > sim::Time::zero()) {
      sim_.schedule_at(crash.restore_at,
                       [this, node = crash.node] { restore_node(node); });
    }
  }
}

void ClusterSim::set_reliability(const driver::ReliabilityConfig& config) {
  reliability_ = config;
  for (auto& infod : infods_) {
    infod->set_failure_detection(config.detection);
  }
  // Hosts spawned before this call still get their paging stacks lazily, so
  // only the deputy flag needs back-filling.
  for (auto& host : hosts_) {
    host->deputy_.set_reliability(config.enabled);
  }
}

void ClusterSim::crash_node(net::NodeId id) {
  if (id >= node_count()) {
    throw std::invalid_argument("ClusterSim::crash_node: node out of range");
  }
  if (injector_ == nullptr) {
    // No fault plan installed: a zero-fault injector is exactly transparent,
    // so composing one in just for the crash flags is safe.
    injector_ = std::make_unique<net::FaultInjector>(sim_, /*seed=*/1);
    fabric_.set_fault_injector(injector_.get());
  }
  injector_->crash_node(id);
  for (auto& host : hosts_) {
    if (host->started_ && !host->finished() && !host->migrating() &&
        host->current_node() == id) {
      host->on_host_crashed(id);
    }
  }
}

void ClusterSim::restore_node(net::NodeId id) {
  if (injector_ != nullptr) {
    injector_->restore_node(id);
  }
}

bool ClusterSim::node_crashed(net::NodeId id) const {
  return injector_ != nullptr && injector_->node_crashed(id);
}

cluster::PeerHealth ClusterSim::consensus_health(net::NodeId id) const {
  if (!reliability_.enabled || !reliability_.detection.enabled || id >= node_count()) {
    return cluster::PeerHealth::kAlive;
  }
  std::size_t dead = 0;
  std::size_t suspected = 0;
  const std::size_t voters = node_count() - 1;
  for (net::NodeId observer = 0; observer < node_count(); ++observer) {
    if (observer == id) {
      continue;
    }
    switch (infods_[observer]->peer_health(id)) {
      case cluster::PeerHealth::kDead:
        ++dead;
        break;
      case cluster::PeerHealth::kSuspected:
        ++suspected;
        break;
      case cluster::PeerHealth::kAlive:
        break;
    }
  }
  if (dead * 2 > voters) {
    return cluster::PeerHealth::kDead;
  }
  if ((dead + suspected) * 2 > voters) {
    return cluster::PeerHealth::kSuspected;
  }
  return cluster::PeerHealth::kAlive;
}

migration::MigrationEngine& ClusterSim::first_hop_engine() {
  switch (scheme_) {
    case driver::Scheme::OpenMosix:
    case driver::Scheme::PreCopy:     // pre-copy not supported per-host; full copy
    case driver::Scheme::Checkpoint:  // no file server in ClusterSim; full copy
      return full_copy_;
    case driver::Scheme::NoPrefetch:
      return three_page_;
    case driver::Scheme::Ampom:
      return ampom_engine_;
  }
  return full_copy_;
}

migration::MigrationEngine& ClusterSim::second_hop_engine() {
  if (remigrate_ != nullptr) {
    return *remigrate_;
  }
  return full_copy_;
}

ProcessHost& ClusterSim::spawn(JobSpec spec) {
  if (spec.home >= node_count()) {
    throw std::invalid_argument("ClusterSim::spawn: home node out of range");
  }
  if (!spec.make_workload) {
    throw std::invalid_argument("ClusterSim::spawn: job has no workload factory");
  }
  const auto pid = static_cast<std::uint64_t>(hosts_.size() + 1);
  hosts_.push_back(std::make_unique<ProcessHost>(*this, pid, std::move(spec)));
  ProcessHost* host = hosts_.back().get();
  sim_.schedule_at(host->spec_.start, [host] { host->start(); });
  return *host;
}

std::uint64_t ClusterSim::active_on(net::NodeId node) const {
  std::uint64_t count = 0;
  for (const auto& host : hosts_) {
    if (host->started_ && !host->finished() && host->current_node() == node) {
      ++count;
    }
  }
  return count;
}

void ClusterSim::note_finished() {
  ++finished_;
  if (finished_ == hosts_.size()) {
    sim_.halt();
  }
}

void ClusterSim::run() {
  if (hosts_.empty()) {
    throw std::logic_error("ClusterSim::run: no jobs spawned");
  }
  sim_.run();
  if (finished_ != hosts_.size()) {
    throw std::runtime_error("ClusterSim::run: simulation drained with unfinished processes");
  }
}

sim::Time ClusterSim::makespan() const {
  sim::Time latest{};
  for (const auto& host : hosts_) {
    latest = std::max(latest, host->finished_at());
  }
  return latest;
}

}  // namespace ampom::balancer
