#pragma once
// Deterministic fault-injection model composed into Fabric::send.
//
// A FaultInjector decides, per message, whether the fabric delivers it
// (drop probability, link-down windows, crashed endpoints), duplicates it,
// or delays it by extra jitter. All randomness comes from one sim::Rng
// seeded by the scenario, so a (scenario, seed) pair fully determines the
// fault trace — chaos runs are reproducible and diffable.
//
// Fault classes (paper context: the Gideon 300 ran on real Fast Ethernet,
// where packets drop, links flap and nodes die):
//   - per-link message loss:        LinkFaults::drop_probability
//   - per-link duplication:         LinkFaults::duplicate_probability
//   - per-link delay jitter:        LinkFaults::max_extra_delay (uniform)
//   - scheduled link outages:       set_link_down / schedule_link_outage
//   - whole-node crash/restart:     crash_node / restore_node; a crashed
//     node neither sends nor receives, and messages already in flight to
//     it are discarded at delivery time.
//
// With all probabilities zero and no outages/crashes the injector is
// exactly transparent: every message is delivered at the time the plain
// fabric would deliver it (no RNG draws are made on that path, so even the
// stream position is untouched).
//
// Keyed mode (partitioned simulation): the single sequential RNG stream
// assumes a global send order, which a partitioned run does not have. With
// enable_keyed_mode() every decision instead draws from a one-shot RNG
// seeded by hash(seed, src, dst, per-source send counter) — the fault fate
// of a message is a pure function of its own identity, independent of the
// interleaving of other links' sends, so it is identical for any worker
// count. Stats are sharded per executing partition (aggregated on read) and
// the per-message trace string is not recorded in this mode.

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "net/message.hpp"
#include "simcore/rng.hpp"
#include "simcore/simulator.hpp"
#include "simcore/time.hpp"

namespace ampom::net {

struct LinkFaults {
  double drop_probability{0.0};       // P(message silently lost)
  double duplicate_probability{0.0};  // P(message delivered twice)
  sim::Time max_extra_delay{};        // uniform extra delivery jitter in [0, max]
};

struct FaultInjectorStats {
  std::uint64_t messages_seen{0};
  std::uint64_t dropped{0};           // lost to drop_probability
  std::uint64_t duplicated{0};
  std::uint64_t delayed{0};           // got nonzero extra jitter
  std::uint64_t link_down_drops{0};   // lost to a scheduled outage window
  std::uint64_t crash_drops{0};       // endpoint crashed (at send or delivery)
};

class FaultInjector {
 public:
  FaultInjector(sim::Simulator& simulator, std::uint64_t seed);

  // --- fault configuration --------------------------------------------------
  void set_default_faults(LinkFaults faults) { default_faults_ = faults; }
  void set_link_faults(NodeId a, NodeId b, LinkFaults faults);
  [[nodiscard]] LinkFaults link_faults(NodeId a, NodeId b) const;

  // --- scheduled outages and crashes ---------------------------------------
  void set_link_down(NodeId a, NodeId b, bool down);
  [[nodiscard]] bool link_down(NodeId a, NodeId b) const;
  // Declarative window: the link drops everything in [down_at, up_at).
  void schedule_link_outage(NodeId a, NodeId b, sim::Time down_at, sim::Time up_at);

  void crash_node(NodeId node);
  void restore_node(NodeId node);
  [[nodiscard]] bool node_crashed(NodeId node) const;
  // Crash at `at`; restore at `restore_at` (zero = stays down forever).
  void schedule_node_crash(NodeId node, sim::Time at, sim::Time restore_at = {});

  // --- the per-message decision (called by Fabric::send) --------------------
  struct Decision {
    bool deliver{true};          // false: message never arrives
    bool duplicate{false};       // deliver a second copy
    sim::Time extra_delay{};     // added to the primary delivery time
    sim::Time duplicate_delay{}; // added (beyond extra_delay) for the copy
  };
  [[nodiscard]] Decision decide(const Message& msg);

  // Called by the fabric at delivery time: a message already in flight
  // toward a node that crashed after it was sent is discarded on arrival.
  [[nodiscard]] bool drop_in_flight(const Message& msg);

  // Switch to per-message keyed randomness (see the header comment). Must be
  // set before any message is seen; `partitions` is the partition count of
  // the owning simulator (stats sharding), `node_count` bounds the per-source
  // send counters.
  void enable_keyed_mode(std::size_t node_count, std::uint32_t partitions);
  [[nodiscard]] bool keyed_mode() const { return keyed_; }

  // Aggregated across stat shards (one per executing partition in keyed
  // mode; exactly one otherwise).
  [[nodiscard]] FaultInjectorStats stats() const;

  // Deterministic fault trace: one character per message seen, in send
  // order ('.' delivered, 'D' dropped, 'd' duplicated, 'j' jittered,
  // 'L' link-down, 'X' crash-suppressed). Same seed => identical trace.
  // Empty in keyed mode (there is no global send order to index it by).
  [[nodiscard]] const std::string& trace() const { return trace_; }

 private:
  [[nodiscard]] static std::pair<NodeId, NodeId> ordered(NodeId a, NodeId b) {
    return a < b ? std::pair{a, b} : std::pair{b, a};
  }

  [[nodiscard]] FaultInjectorStats& shard();
  [[nodiscard]] Decision decide_with(sim::Rng& rng, const LinkFaults& faults, bool record_trace);

  sim::Simulator& sim_;
  sim::Rng rng_;
  std::uint64_t seed_;
  LinkFaults default_faults_;
  std::map<std::pair<NodeId, NodeId>, LinkFaults> link_overrides_;
  std::map<std::pair<NodeId, NodeId>, bool> link_down_;
  std::vector<bool> crashed_;  // indexed by NodeId, grown on demand
  bool keyed_{false};
  std::vector<std::uint64_t> send_seq_;          // keyed mode: per-source counters
  std::vector<FaultInjectorStats> stat_shards_;  // index = executing partition
  std::string trace_;
};

}  // namespace ampom::net
