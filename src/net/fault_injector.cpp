#include "net/fault_injector.hpp"

#include <stdexcept>

namespace ampom::net {

namespace {

// splitmix64-style combine: the keyed-mode seed for one message.
std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6U) + (h >> 2U);
  h *= 0xBF58476D1CE4E5B9ULL;
  return h ^ (h >> 27U);
}

}  // namespace

FaultInjector::FaultInjector(sim::Simulator& simulator, std::uint64_t seed)
    : sim_{simulator}, rng_{seed}, seed_{seed}, stat_shards_(1) {}

void FaultInjector::set_link_faults(NodeId a, NodeId b, LinkFaults faults) {
  link_overrides_[ordered(a, b)] = faults;
}

LinkFaults FaultInjector::link_faults(NodeId a, NodeId b) const {
  const auto it = link_overrides_.find(ordered(a, b));
  return it == link_overrides_.end() ? default_faults_ : it->second;
}

void FaultInjector::set_link_down(NodeId a, NodeId b, bool down) {
  link_down_[ordered(a, b)] = down;
}

bool FaultInjector::link_down(NodeId a, NodeId b) const {
  const auto it = link_down_.find(ordered(a, b));
  return it != link_down_.end() && it->second;
}

void FaultInjector::schedule_link_outage(NodeId a, NodeId b, sim::Time down_at,
                                         sim::Time up_at) {
  sim_.schedule_at(down_at, [this, a, b] { set_link_down(a, b, true); });
  sim_.schedule_at(up_at, [this, a, b] { set_link_down(a, b, false); });
}

void FaultInjector::crash_node(NodeId node) {
  if (crashed_.size() <= node) {
    crashed_.resize(node + 1, false);
  }
  crashed_[node] = true;
}

void FaultInjector::restore_node(NodeId node) {
  if (crashed_.size() > node) {
    crashed_[node] = false;
  }
}

bool FaultInjector::node_crashed(NodeId node) const {
  return crashed_.size() > node && crashed_[node];
}

void FaultInjector::schedule_node_crash(NodeId node, sim::Time at, sim::Time restore_at) {
  sim_.schedule_at(at, [this, node] { crash_node(node); });
  if (restore_at > sim::Time::zero()) {
    sim_.schedule_at(restore_at, [this, node] { restore_node(node); });
  }
}

void FaultInjector::enable_keyed_mode(std::size_t node_count, std::uint32_t partitions) {
  FaultInjectorStats seen_any;
  for (const FaultInjectorStats& s : stat_shards_) {
    seen_any.messages_seen += s.messages_seen;
  }
  if (seen_any.messages_seen != 0) {
    throw std::logic_error("FaultInjector::enable_keyed_mode: messages already decided");
  }
  keyed_ = true;
  send_seq_.assign(node_count, 0);
  stat_shards_.assign(partitions + 1, FaultInjectorStats{});
  if (crashed_.size() < node_count) {
    crashed_.resize(node_count, false);  // fixed footprint: no growth mid-run
  }
}

FaultInjectorStats FaultInjector::stats() const {
  FaultInjectorStats total;
  for (const FaultInjectorStats& s : stat_shards_) {
    total.messages_seen += s.messages_seen;
    total.dropped += s.dropped;
    total.duplicated += s.duplicated;
    total.delayed += s.delayed;
    total.link_down_drops += s.link_down_drops;
    total.crash_drops += s.crash_drops;
  }
  return total;
}

FaultInjectorStats& FaultInjector::shard() {
  if (stat_shards_.size() == 1) {
    return stat_shards_[0];
  }
  const std::uint32_t part = sim::Simulator::current_partition_hint();
  return stat_shards_[part < stat_shards_.size() ? part : 0];
}

bool FaultInjector::drop_in_flight(const Message& msg) {
  if (node_crashed(msg.dst)) {
    ++shard().crash_drops;
    return true;
  }
  return false;
}

FaultInjector::Decision FaultInjector::decide(const Message& msg) {
  FaultInjectorStats& stats = shard();
  ++stats.messages_seen;
  Decision d;

  // Endpoint liveness and outage windows first: these consume no randomness,
  // so a crash window does not shift the drop/jitter stream of other links.
  if (node_crashed(msg.src) || node_crashed(msg.dst)) {
    d.deliver = false;
    ++stats.crash_drops;
    if (!keyed_) {
      trace_.push_back('X');
    }
    return d;
  }
  if (link_down(msg.src, msg.dst)) {
    d.deliver = false;
    ++stats.link_down_drops;
    if (!keyed_) {
      trace_.push_back('L');
    }
    return d;
  }

  const LinkFaults faults = link_faults(msg.src, msg.dst);
  if (!keyed_) {
    return decide_with(rng_, faults, /*record_trace=*/true);
  }
  // Keyed mode: the fate of this message depends only on (seed, src, dst,
  // how many messages src has sent) — never on other partitions' progress.
  std::uint64_t h = mix(seed_, msg.src);
  h = mix(h, msg.dst);
  h = mix(h, send_seq_.at(msg.src)++);
  sim::Rng one_shot{h};
  return decide_with(one_shot, faults, /*record_trace=*/false);
}

FaultInjector::Decision FaultInjector::decide_with(sim::Rng& rng, const LinkFaults& faults,
                                                   bool record_trace) {
  FaultInjectorStats& stats = shard();
  Decision d;
  // Draw only for nonzero knobs: a zero-fault injector never touches the RNG,
  // which keeps it bit-transparent and lets per-link overrides coexist with a
  // fault-free default without perturbing each other's streams.
  if (faults.drop_probability > 0.0 && rng.bernoulli(faults.drop_probability)) {
    d.deliver = false;
    ++stats.dropped;
    if (record_trace) {
      trace_.push_back('D');
    }
    return d;
  }
  if (faults.max_extra_delay > sim::Time::zero()) {
    const auto span = static_cast<std::uint64_t>(faults.max_extra_delay.ns());
    d.extra_delay = sim::Time::from_ns(static_cast<std::int64_t>(rng.uniform(span + 1)));
    if (d.extra_delay > sim::Time::zero()) {
      ++stats.delayed;
    }
  }
  if (faults.duplicate_probability > 0.0 && rng.bernoulli(faults.duplicate_probability)) {
    d.duplicate = true;
    // The copy trails the original like a retransmitted frame: one extra
    // jitter span (or a fixed microsecond when jitter is off).
    d.duplicate_delay = faults.max_extra_delay > sim::Time::zero()
                            ? faults.max_extra_delay
                            : sim::Time::from_us(1);
    ++stats.duplicated;
    if (record_trace) {
      trace_.push_back('d');
    }
    return d;
  }
  if (record_trace) {
    trace_.push_back(d.extra_delay > sim::Time::zero() ? 'j' : '.');
  }
  return d;
}

}  // namespace ampom::net
