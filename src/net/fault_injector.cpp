#include "net/fault_injector.hpp"

namespace ampom::net {

FaultInjector::FaultInjector(sim::Simulator& simulator, std::uint64_t seed)
    : sim_{simulator}, rng_{seed} {}

void FaultInjector::set_link_faults(NodeId a, NodeId b, LinkFaults faults) {
  link_overrides_[ordered(a, b)] = faults;
}

LinkFaults FaultInjector::link_faults(NodeId a, NodeId b) const {
  const auto it = link_overrides_.find(ordered(a, b));
  return it == link_overrides_.end() ? default_faults_ : it->second;
}

void FaultInjector::set_link_down(NodeId a, NodeId b, bool down) {
  link_down_[ordered(a, b)] = down;
}

bool FaultInjector::link_down(NodeId a, NodeId b) const {
  const auto it = link_down_.find(ordered(a, b));
  return it != link_down_.end() && it->second;
}

void FaultInjector::schedule_link_outage(NodeId a, NodeId b, sim::Time down_at,
                                         sim::Time up_at) {
  sim_.schedule_at(down_at, [this, a, b] { set_link_down(a, b, true); });
  sim_.schedule_at(up_at, [this, a, b] { set_link_down(a, b, false); });
}

void FaultInjector::crash_node(NodeId node) {
  if (crashed_.size() <= node) {
    crashed_.resize(node + 1, false);
  }
  crashed_[node] = true;
}

void FaultInjector::restore_node(NodeId node) {
  if (crashed_.size() > node) {
    crashed_[node] = false;
  }
}

bool FaultInjector::node_crashed(NodeId node) const {
  return crashed_.size() > node && crashed_[node];
}

void FaultInjector::schedule_node_crash(NodeId node, sim::Time at, sim::Time restore_at) {
  sim_.schedule_at(at, [this, node] { crash_node(node); });
  if (restore_at > sim::Time::zero()) {
    sim_.schedule_at(restore_at, [this, node] { restore_node(node); });
  }
}

bool FaultInjector::drop_in_flight(const Message& msg) {
  if (node_crashed(msg.dst)) {
    ++stats_.crash_drops;
    return true;
  }
  return false;
}

FaultInjector::Decision FaultInjector::decide(const Message& msg) {
  ++stats_.messages_seen;
  Decision d;

  // Endpoint liveness and outage windows first: these consume no randomness,
  // so a crash window does not shift the drop/jitter stream of other links.
  if (node_crashed(msg.src) || node_crashed(msg.dst)) {
    d.deliver = false;
    ++stats_.crash_drops;
    trace_.push_back('X');
    return d;
  }
  if (link_down(msg.src, msg.dst)) {
    d.deliver = false;
    ++stats_.link_down_drops;
    trace_.push_back('L');
    return d;
  }

  const LinkFaults faults = link_faults(msg.src, msg.dst);
  // Draw only for nonzero knobs: a zero-fault injector never touches the RNG,
  // which keeps it bit-transparent and lets per-link overrides coexist with a
  // fault-free default without perturbing each other's streams.
  if (faults.drop_probability > 0.0 && rng_.bernoulli(faults.drop_probability)) {
    d.deliver = false;
    ++stats_.dropped;
    trace_.push_back('D');
    return d;
  }
  if (faults.max_extra_delay > sim::Time::zero()) {
    const auto span = static_cast<std::uint64_t>(faults.max_extra_delay.ns());
    d.extra_delay = sim::Time::from_ns(static_cast<std::int64_t>(rng_.uniform(span + 1)));
    if (d.extra_delay > sim::Time::zero()) {
      ++stats_.delayed;
    }
  }
  if (faults.duplicate_probability > 0.0 && rng_.bernoulli(faults.duplicate_probability)) {
    d.duplicate = true;
    // The copy trails the original like a retransmitted frame: one extra
    // jitter span (or a fixed microsecond when jitter is off).
    d.duplicate_delay = faults.max_extra_delay > sim::Time::zero()
                            ? faults.max_extra_delay
                            : sim::Time::from_us(1);
    ++stats_.duplicated;
    trace_.push_back('d');
    return d;
  }
  trace_.push_back(d.extra_delay > sim::Time::zero() ? 'j' : '.');
  return d;
}

}  // namespace ampom::net
