#pragma once
// Emulation of the paper's §5.5 `tc`/`iptables` broadband experiment:
// reshapes the link between two nodes (or the whole fabric) to a given
// bandwidth/latency and can restore the original parameters afterwards.

#include <optional>

#include "net/fabric.hpp"

namespace ampom::net {

class TrafficShaper {
 public:
  explicit TrafficShaper(Fabric& fabric) : fabric_{fabric} {}

  // Shape one node pair, e.g. the migrant/home pair in Fig. 9.
  void shape_pair(NodeId a, NodeId b, LinkParams params) {
    if (!saved_pair_) {
      saved_pair_ = SavedPair{a, b, fabric_.link(a, b)};
    }
    fabric_.set_link(a, b, params);
  }

  // Shape every link in the cluster.
  void shape_all(LinkParams params) {
    if (!saved_default_) {
      saved_default_ = fabric_.default_link();
    }
    fabric_.clear_link_overrides();
    fabric_.set_default_link(params);
  }

  // The paper's broadband profile: 6 Mb/s, 2 ms latency.
  [[nodiscard]] static LinkParams broadband() {
    return LinkParams{sim::Bandwidth::mbits_per_sec(6), sim::Time::from_ms(2)};
  }

  void restore() {
    if (saved_pair_) {
      fabric_.set_link(saved_pair_->a, saved_pair_->b, saved_pair_->params);
      saved_pair_.reset();
    }
    if (saved_default_) {
      fabric_.set_default_link(*saved_default_);
      saved_default_.reset();
    }
  }

 private:
  struct SavedPair {
    NodeId a;
    NodeId b;
    LinkParams params;
  };
  Fabric& fabric_;
  std::optional<SavedPair> saved_pair_;
  std::optional<LinkParams> saved_default_;
};

}  // namespace ampom::net
