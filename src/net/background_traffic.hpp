#pragma once
// Competing traffic generator.
//
// Injects Background messages between a node pair at a target fraction of
// link bandwidth with Poisson arrivals. Used to exercise AMPoM's
// network-utilization adaptivity and the InfoDaemon's available-bandwidth
// estimator.

#include <cstdint>

#include "net/fabric.hpp"
#include "simcore/rng.hpp"
#include "simcore/simulator.hpp"

namespace ampom::net {

class BackgroundTraffic {
 public:
  BackgroundTraffic(sim::Simulator& simulator, Fabric& fabric, NodeId src, NodeId dst,
                    double load_fraction, sim::Bytes chunk_bytes = 16 * sim::kKiB,
                    std::uint64_t seed = 0x6a09e667f3bcc908ULL);

  void start();
  void stop() { running_ = false; }
  [[nodiscard]] bool running() const { return running_; }
  [[nodiscard]] std::uint64_t chunks_sent() const { return chunks_sent_; }

 private:
  void schedule_next();

  sim::Simulator& sim_;
  Fabric& fabric_;
  NodeId src_;
  NodeId dst_;
  double load_fraction_;
  sim::Bytes chunk_bytes_;
  sim::Rng rng_;
  bool running_{false};
  std::uint64_t chunks_sent_{0};
};

}  // namespace ampom::net
