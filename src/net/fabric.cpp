#include "net/fabric.hpp"

#include <cassert>
#include <stdexcept>

#include "net/fault_injector.hpp"
#include "trace/trace.hpp"

namespace ampom::net {

Fabric::Fabric(sim::Simulator& simulator, std::size_t node_count, LinkParams default_link)
    : sim_{simulator}, default_link_{default_link}, nics_(node_count) {
  if (node_count < 2) {
    throw std::invalid_argument("Fabric needs at least two nodes");
  }
}

void Fabric::set_handler(NodeId node, Handler handler) {
  nics_.at(node).handler = std::move(handler);
}

LinkParams Fabric::link(NodeId a, NodeId b) const {
  const auto it = link_overrides_.find(ordered(a, b));
  return it == link_overrides_.end() ? default_link_ : it->second;
}

void Fabric::set_link(NodeId a, NodeId b, LinkParams params) {
  link_overrides_[ordered(a, b)] = params;
}

const NicCounters& Fabric::counters(NodeId node) const { return nics_.at(node).counters; }

sim::Time Fabric::tx_free_at(NodeId node) const { return nics_.at(node).tx_free; }

sim::Time Fabric::send(Message msg) {
  if (msg.src == msg.dst) {
    throw std::logic_error("Fabric::send: src == dst (local delivery is not a network message)");
  }
  Nic& src = nics_.at(msg.src);
  Nic& dst = nics_.at(msg.dst);
  const LinkParams params = link(msg.src, msg.dst);
  const sim::Time ser = params.bandwidth.transfer_time(msg.wire_bytes);
  const sim::Time now = sim_.now();
  // Cross-partition sends must not read or write the receiver's NIC here:
  // its partition may be mid-window. The RX side is resolved by receive_at.
  const bool split_rx = sim_.cross_partition(msg.src, msg.dst);
  src.counters.tx_bytes += msg.wire_bytes;
  src.counters.tx_messages += 1;

  sim::Time arrival;   // prediction; exact unless split_rx meets RX contention
  sim::Time rx_phase;  // split_rx: when the RX phase runs on the destination
  if (msg.wire_bytes <= kControlCutoffBytes) {
    // Control message: interleaves at packet granularity. If a bulk stream
    // occupies either port it waits behind one full-size frame; on an idle
    // path it goes straight out. (Split sends check each port on its own
    // side, so a doubly-busy path can cost one frame per side.)
    const bool busy = split_rx ? src.tx_free > now : (src.tx_free > now || dst.rx_free > now);
    const sim::Time frame =
        busy ? params.bandwidth.transfer_time(kMaxFrameBytes) : sim::Time::zero();
    arrival = now + frame + ser + params.latency;
    rx_phase = arrival;
  } else {
    const sim::Time tx_start = std::max(now, src.tx_free);
    const sim::Time tx_done = tx_start + ser;
    src.tx_free = tx_done;

    // RX port occupancy: the message needs `ser` of receive bandwidth ending
    // no earlier than the last bit's arrival.
    const sim::Time earliest_first_bit = tx_done + params.latency - ser;
    if (split_rx) {
      rx_phase = earliest_first_bit;
      arrival = earliest_first_bit + ser;  // idle-RX prediction
    } else {
      const sim::Time rx_start = std::max(earliest_first_bit, dst.rx_free);
      arrival = rx_start + ser;
      dst.rx_free = arrival;
    }
  }

  if (trace_ != nullptr) {
    trace_->instant(trace::Category::kNet, payload_name(msg.payload), now, msg.src, msg.corr,
                    msg.wire_bytes, msg.dst);
  }

  if (injector_ != nullptr) {
    const FaultInjector::Decision d = injector_->decide(msg);
    if (!d.deliver) {
      // Lost in the network: the sender's ports and TX counters already saw
      // it, but no delivery event is scheduled. The returned prediction is
      // what a fault-free delivery would have been.
      if (trace_ != nullptr) {
        trace_->instant(trace::Category::kNet, "drop", now, msg.src, msg.corr, msg.wire_bytes,
                        msg.dst);
      }
      return arrival;
    }
    arrival = arrival + d.extra_delay;
    rx_phase = rx_phase + d.extra_delay;
    if (d.duplicate) {
      if (trace_ != nullptr) {
        trace_->instant(trace::Category::kNet, "duplicate", now, msg.src, msg.corr,
                        msg.wire_bytes, msg.dst);
      }
      // The original is scheduled before its copy: with duplicate_delay == 0
      // both land on the same instant and the engine's same-time FIFO would
      // otherwise hand the receiver the duplicate first, making the real
      // message the one counted (and dropped) as the dup.
      if (split_rx) {
        receive_at(rx_phase, msg);
        receive_at(rx_phase + d.duplicate_delay, std::move(msg));
      } else {
        deliver_at(arrival, msg);
        deliver_at(arrival + d.duplicate_delay, std::move(msg));
      }
      return arrival;
    }
  }
  if (split_rx) {
    receive_at(rx_phase, std::move(msg));
  } else {
    deliver_at(arrival, std::move(msg));
  }
  return arrival;
}

void Fabric::deliver_at(sim::Time when, Message msg) {
  sim_.schedule_on_node(msg.dst, when, [this, m = std::move(msg)]() mutable { deliver_now(m); });
}

// The destination-side half of a cross-partition send: runs on the
// receiver's partition (for a control message at its idle-path arrival, for
// bulk when its first bit reaches the port), resolves RX contention against
// receiver-owned state and completes delivery.
void Fabric::receive_at(sim::Time when, Message msg) {
  sim_.schedule_on_node(msg.dst, when, [this, m = std::move(msg)]() mutable {
    const LinkParams params = link(m.src, m.dst);
    Nic& receiver = nics_.at(m.dst);
    const sim::Time at = sim_.now();
    sim::Time arrival;
    if (m.wire_bytes <= kControlCutoffBytes) {
      const sim::Time frame = receiver.rx_free > at
                                  ? params.bandwidth.transfer_time(kMaxFrameBytes)
                                  : sim::Time::zero();
      arrival = at + frame;
    } else {
      const sim::Time ser = params.bandwidth.transfer_time(m.wire_bytes);
      const sim::Time rx_start = std::max(at, receiver.rx_free);
      arrival = rx_start + ser;
      receiver.rx_free = arrival;
    }
    if (arrival == at) {
      deliver_now(m);
    } else {
      sim_.schedule_at(arrival, [this, m2 = std::move(m)]() mutable { deliver_now(m2); });
    }
  });
}

void Fabric::deliver_now(Message& m) {
  if (injector_ != nullptr && injector_->drop_in_flight(m)) {
    if (trace_ != nullptr) {
      trace_->instant(trace::Category::kNet, "crash_drop", sim_.now(), m.dst, m.corr,
                      m.wire_bytes, m.src);
    }
    return;
  }
  Nic& receiver = nics_.at(m.dst);
  receiver.counters.rx_bytes += m.wire_bytes;
  receiver.counters.rx_messages += 1;
  if (trace_ != nullptr) {
    trace_->instant(trace::Category::kNet, "deliver", sim_.now(), m.dst, m.corr,
                    m.wire_bytes, m.src);
  }
  if (receiver.handler) {
    receiver.handler(m);
  }
}

}  // namespace ampom::net
