#pragma once
// Wire messages exchanged between nodes.
//
// The network layer is deliberately independent of the memory and process
// subsystems: payloads carry opaque 64-bit ids. Wire sizes are set by the
// senders (protocol code in migration/, proc/, cluster/), so framing
// overheads live with the protocol definitions, not here.

#include <cstdint>
#include <variant>
#include <vector>

#include "simcore/time.hpp"
#include "simcore/units.hpp"

namespace ampom::net {

using NodeId = std::uint32_t;
inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

inline constexpr std::uint64_t kNoPage = static_cast<std::uint64_t>(-1);

// Remote paging: a migrant asks its home node for a batch of pages. `urgent`
// is the page the process is blocked on (kNoPage for pure prefetch batches).
struct PageRequest {
  std::uint64_t pid{0};
  std::uint64_t request_id{0};
  std::vector<std::uint64_t> pages;
  std::uint64_t urgent{kNoPage};
};

// Remote paging: one page of data streamed back by the deputy.
struct PageData {
  std::uint64_t pid{0};
  std::uint64_t request_id{0};
  std::uint64_t page{0};
  bool urgent{false};
};

// Process migration: one chunk of the freeze-time transfer. `seq` and
// `total_chunks` are populated only by the reliable (ack'd) protocol; the
// classic fast path leaves them zero and tracks arrivals via the fabric's
// predicted delivery times.
struct MigrationChunk {
  enum class Kind : std::uint8_t {
    Pcb,              // registers, kernel state
    DirtyPages,       // openMosix: the full dirty set
    CurrentPages,     // FFA-style: the currently-accessed code/data/stack pages
    MasterPageTable,  // AMPoM: the MPT (6 bytes per page)
  };
  std::uint64_t pid{0};
  Kind kind{Kind::Pcb};
  std::uint64_t item_count{0};
  bool last{false};
  std::uint64_t seq{0};           // 1-based chunk sequence (reliable mode)
  std::uint64_t total_chunks{0};  // chunks in this transfer (reliable mode)
};

// Reliable migration: destination acknowledges one received chunk.
struct MigrationAck {
  std::uint64_t pid{0};
  std::uint64_t seq{0};
};

// InfoDaemon load-update ping; the ack round-trip measures t0 (paper §4).
struct LoadPing {
  std::uint64_t seq{0};
  sim::Time sent_at{};
  double cpu_load{0.0};
};
struct LoadAck {
  std::uint64_t seq{0};
  sim::Time ping_sent_at{};
  double cpu_load{0.0};
};

// System call redirected to the home node (openMosix home dependency).
struct SyscallRequest {
  std::uint64_t pid{0};
  std::uint64_t seq{0};
};
struct SyscallReply {
  std::uint64_t pid{0};
  std::uint64_t seq{0};
};

// Re-migration: a page the previous host flushes back to the home node
// (the process moved on; its old host's pages return to the deputy).
struct FlushPage {
  std::uint64_t pid{0};
  std::uint64_t page{0};
};

// Reliable re-migration: the deputy confirms a flushed page landed.
struct FlushAck {
  std::uint64_t pid{0};
  std::uint64_t page{0};
};

// Opaque competing traffic (load generators, other jobs).
struct Background {};

// Gossip digest wire-format versions. kGossipFormatLoad frames each digest
// entry as 24 wire bytes (node id, version, load); kGossipFormatCache adds
// the cache-pressure field (32 bytes per entry, plus 8 bytes for the
// sender's own pressure on the framing). Receivers handle both: a message
// stamped with an older format is migrated deterministically — the missing
// pressure fields read as 0.0 — and never rejected, so mixed-version
// clusters converge on load/liveness exactly as before (gossip_test pins
// this).
inline constexpr std::uint32_t kGossipFormatLoad = 1;
inline constexpr std::uint32_t kGossipFormatCache = 2;

// Epidemic load dissemination (the scalable InfoDaemon mode). One entry of
// the piggybacked digest: the origin node's load stamped with the origin's
// monotone version counter. The version doubles as the heartbeat — a
// receiver that sees it advance knows the origin was alive when it bumped
// it, no matter how many hops the entry took. `cache_pressure` is carried
// on the wire only under kGossipFormatCache framing; receivers must gate
// on the message's format stamp, not on the field (which always exists in
// memory).
struct GossipEntry {
  NodeId node{kInvalidNode};
  std::uint64_t version{0};
  double load{0.0};
  double cache_pressure{0.0};
};

// A gossip round-trip: like LoadPing/LoadAck (the ack still measures t0),
// but carrying the sender's version and a digest of recently-changed
// entries so load and liveness spread transitively through the fan-out.
struct GossipPing {
  std::uint64_t seq{0};
  sim::Time sent_at{};
  double cpu_load{0.0};
  std::uint64_t sender_version{0};
  std::vector<GossipEntry> digest;
  std::uint32_t format{kGossipFormatLoad};
  double cache_pressure{0.0};  // sender's own (format >= kGossipFormatCache)
};
struct GossipAck {
  std::uint64_t seq{0};
  sim::Time ping_sent_at{};
  double cpu_load{0.0};
  std::uint64_t sender_version{0};
  std::uint32_t format{kGossipFormatLoad};
  double cache_pressure{0.0};  // sender's own (format >= kGossipFormatCache)
};

// Gossip payloads are appended after Background so the pre-gossip
// alternative indices (and payload_name cases) stay stable.
using Payload = std::variant<PageRequest, PageData, MigrationChunk, MigrationAck, LoadPing,
                             LoadAck, SyscallRequest, SyscallReply, FlushPage, FlushAck,
                             Background, GossipPing, GossipAck>;

struct Message {
  NodeId src{kInvalidNode};
  NodeId dst{kInvalidNode};
  sim::Bytes wire_bytes{0};
  Payload payload;
  // Correlation id threaded through the protocol layers so observability
  // can follow one request across fabric, deputy and paging client
  // (paging: request_id; migration: chunk seq; syscalls: seq). Zero means
  // "uncorrelated"; the field never influences protocol behavior.
  std::uint64_t corr{0};
};

// Stable short name of the payload alternative (trace/event labels).
[[nodiscard]] constexpr const char* payload_name(const Payload& p) {
  switch (p.index()) {
    case 0:
      return "PageRequest";
    case 1:
      return "PageData";
    case 2:
      return "MigrationChunk";
    case 3:
      return "MigrationAck";
    case 4:
      return "LoadPing";
    case 5:
      return "LoadAck";
    case 6:
      return "SyscallRequest";
    case 7:
      return "SyscallReply";
    case 8:
      return "FlushPage";
    case 9:
      return "FlushAck";
    case 10:
      return "Background";
    case 11:
      return "GossipPing";
    case 12:
      return "GossipAck";
  }
  return "?";
}

}  // namespace ampom::net
