#pragma once
// Switched-Ethernet fabric model.
//
// Every node owns a full-duplex NIC. A message serializes on the sender's TX
// port (back-to-back messages queue), propagates with the link's one-way
// latency, then serializes on the receiver's RX port (two senders targeting
// one node share its RX bandwidth). This is the standard store-and-forward
// model; for a single flow the end-to-end delay is
//   serialization(bytes) + latency
// with no double counting.
//
// Link parameters default cluster-wide (Gideon 300: 100 Mb/s Fast Ethernet)
// and can be overridden per node pair — that is how the traffic shaper
// emulates the paper's §5.5 broadband experiment (6 Mb/s, 2 ms).
//
// Small control messages (pings, acks, syscall messages — anything at or
// below kControlCutoffBytes) interleave with bulk streams at packet
// granularity on a real network; they are modeled as bypassing the FIFO
// ports, waiting at most one full-size frame. Without this, a load-update
// ack queued behind a 50 MB page stream would report a multi-second RTT.
//
// Partitioned simulation: when the owning simulator is partitioned and a
// message crosses partitions, the send splits into two phases. The sender's
// side (TX serialization + propagation) is computed at send time against
// sender-owned state only; the receiver's side (RX port contention) is
// resolved by an arrival event on the *destination's* partition, so no NIC
// field is ever touched from two partitions. The returned prediction then
// assumes an idle RX port — for same-partition and serial sends it remains
// the exact delivery time. The model delta is confined to cross-partition
// RX queueing order (by first-bit arrival instead of by send instant) and
// is identical for every worker count.

#include <cstdint>
#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "net/message.hpp"
#include "simcore/simulator.hpp"
#include "simcore/units.hpp"

namespace ampom::trace {
class TraceRecorder;
}

namespace ampom::net {

class FaultInjector;

struct LinkParams {
  sim::Bandwidth bandwidth{sim::Bandwidth::mbits_per_sec(100)};
  sim::Time latency{sim::Time::from_us(75)};  // one-way propagation + switch
};

// Messages at or below this size skip the FIFO port queues (cut-through).
inline constexpr sim::Bytes kControlCutoffBytes = 512;
// A bypassing message still waits behind the frame on the wire: one
// 1500-byte Ethernet frame's worth of serialization at 100 Mb/s.
inline constexpr sim::Bytes kMaxFrameBytes = 1500;

// ifconfig-style byte counters; the InfoDaemon diffs these to estimate
// available bandwidth exactly as the paper reads RX/TX bytes (§4).
struct NicCounters {
  std::uint64_t tx_bytes{0};
  std::uint64_t rx_bytes{0};
  std::uint64_t tx_messages{0};
  std::uint64_t rx_messages{0};
};

class Fabric {
 public:
  using Handler = std::function<void(const Message&)>;

  Fabric(sim::Simulator& simulator, std::size_t node_count, LinkParams default_link = {});

  [[nodiscard]] std::size_t node_count() const { return nics_.size(); }

  // Install the receive callback for a node (its protocol stack).
  void set_handler(NodeId node, Handler handler);

  // Queue a message. Returns the predicted delivery time. With a fault
  // injector attached the prediction is what the fault-free fabric would
  // have delivered (plus any injected jitter); a dropped message still
  // occupies the ports and counts TX bytes — the loss happens in the
  // network, not at the sender.
  sim::Time send(Message msg);

  // Compose a fault model into every subsequent send. Pass nullptr to
  // detach. The injector must outlive the fabric (or be detached first).
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }
  [[nodiscard]] FaultInjector* fault_injector() const { return injector_; }

  // Observability: emit send/deliver/drop/duplicate events per message.
  // Null (the default) keeps the send path untouched. Not owned.
  void set_trace(trace::TraceRecorder* recorder) { trace_ = recorder; }

  // Link parameters between a pair (unordered); assigning affects only
  // messages sent afterwards.
  [[nodiscard]] LinkParams link(NodeId a, NodeId b) const;
  void set_link(NodeId a, NodeId b, LinkParams params);
  void set_default_link(LinkParams params) { default_link_ = params; }
  [[nodiscard]] LinkParams default_link() const { return default_link_; }
  void clear_link_overrides() { link_overrides_.clear(); }

  [[nodiscard]] const NicCounters& counters(NodeId node) const;

  // Earliest time the node's TX port is free (exposed for tests).
  [[nodiscard]] sim::Time tx_free_at(NodeId node) const;

 private:
  struct Nic {
    Handler handler;
    NicCounters counters;
    sim::Time tx_free{sim::Time::zero()};
    sim::Time rx_free{sim::Time::zero()};
  };

  [[nodiscard]] static std::pair<NodeId, NodeId> ordered(NodeId a, NodeId b) {
    return a < b ? std::pair{a, b} : std::pair{b, a};
  }

  void deliver_at(sim::Time when, Message msg);
  void receive_at(sim::Time when, Message msg);  // cross-partition RX phase
  // Runs on the destination's partition; touches only receiver-owned state.
  // ampom: partition-local
  void deliver_now(Message& msg);

  sim::Simulator& sim_;
  LinkParams default_link_;
  std::map<std::pair<NodeId, NodeId>, LinkParams> link_overrides_;
  std::vector<Nic> nics_;
  FaultInjector* injector_{nullptr};
  trace::TraceRecorder* trace_{nullptr};
};

}  // namespace ampom::net
