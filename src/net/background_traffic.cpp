#include "net/background_traffic.hpp"

#include <cassert>
#include <stdexcept>

namespace ampom::net {

BackgroundTraffic::BackgroundTraffic(sim::Simulator& simulator, Fabric& fabric, NodeId src,
                                     NodeId dst, double load_fraction, sim::Bytes chunk_bytes,
                                     std::uint64_t seed)
    : sim_{simulator},
      fabric_{fabric},
      src_{src},
      dst_{dst},
      load_fraction_{load_fraction},
      chunk_bytes_{chunk_bytes},
      rng_{seed} {
  if (load_fraction <= 0.0 || load_fraction >= 1.0) {
    throw std::invalid_argument("BackgroundTraffic load fraction must be in (0, 1)");
  }
  if (chunk_bytes == 0) {
    throw std::invalid_argument("BackgroundTraffic chunk size must be positive");
  }
}

void BackgroundTraffic::start() {
  if (running_) {
    return;
  }
  running_ = true;
  schedule_next();
}

void BackgroundTraffic::schedule_next() {
  // Mean inter-arrival chosen so chunk_bytes per interval equals the target
  // fraction of the current link bandwidth.
  const LinkParams params = fabric_.link(src_, dst_);
  const sim::Time chunk_time = params.bandwidth.transfer_time(chunk_bytes_);
  const double mean_gap_sec = chunk_time.sec() / load_fraction_;
  const sim::Time gap = sim::Time::from_sec(rng_.exponential(mean_gap_sec));
  sim_.schedule_after(gap, [this] {
    if (!running_) {
      return;
    }
    fabric_.send(Message{src_, dst_, chunk_bytes_, Background{}});
    ++chunks_sent_;
    schedule_next();
  });
}

}  // namespace ampom::net
