#include "simcore/log.hpp"

#include <iostream>

#include "simcore/fmt.hpp"

namespace ampom::sim {

namespace {
[[nodiscard]] const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Trace:
      return "TRACE";
    case LogLevel::Debug:
      return "DEBUG";
    case LogLevel::Info:
      return "INFO";
    case LogLevel::Warn:
      return "WARN";
    case LogLevel::Error:
      return "ERROR";
    case LogLevel::Off:
      return "OFF";
  }
  return "?";
}
}  // namespace

// ampom-lint: raw-io-ok(the Logger itself owns the default stderr sink)
Logger::Logger() : sink_{&std::cerr} {}

// ampom-lint: raw-io-ok(the Logger itself owns the default stderr sink)
Logger::Logger(LogLevel level) : level_{level}, sink_{&std::cerr} {}

Logger::Logger(LogLevel level, std::ostream* sink) : level_{level}, sink_{sink} {}

void Logger::write(LogLevel level, Time now, const std::string& component,
                   const std::string& message) {
  if (sink_ == nullptr) {
    return;
  }
  *sink_ << strfmt("[%12.6f] %-5s %-12s %s\n", now.sec(), level_name(level), component.c_str(),
                   message.c_str());
}

}  // namespace ampom::sim
