#pragma once
// Simulated time as a strong integer-nanosecond type.
//
// All latencies in the simulator are expressed as sim::Time. Using a 64-bit
// integer tick (1 ns) instead of floating-point seconds keeps event ordering
// exact and runs reproducible: two schedules computed along different code
// paths compare equal iff they are the same instant.

#include <cmath>
#include <compare>
#include <cstdint>
#include <limits>
#include <string>

namespace ampom::sim {

class Time {
 public:
  constexpr Time() = default;

  [[nodiscard]] static constexpr Time from_ns(std::int64_t ns) { return Time{ns}; }
  [[nodiscard]] static constexpr Time from_us(std::int64_t us) { return Time{us * 1'000}; }
  [[nodiscard]] static constexpr Time from_ms(std::int64_t ms) { return Time{ms * 1'000'000}; }
  [[nodiscard]] static constexpr Time from_sec(double sec) {
    return Time{static_cast<std::int64_t>(sec * 1e9 + (sec >= 0 ? 0.5 : -0.5))};
  }
  [[nodiscard]] static constexpr Time zero() { return Time{0}; }
  [[nodiscard]] static constexpr Time max() {
    return Time{std::numeric_limits<std::int64_t>::max()};
  }

  [[nodiscard]] constexpr std::int64_t ns() const { return ns_; }
  [[nodiscard]] constexpr double us() const { return static_cast<double>(ns_) / 1e3; }
  [[nodiscard]] constexpr double ms() const { return static_cast<double>(ns_) / 1e6; }
  [[nodiscard]] constexpr double sec() const { return static_cast<double>(ns_) / 1e9; }

  constexpr auto operator<=>(const Time&) const = default;

  constexpr Time& operator+=(Time rhs) {
    ns_ += rhs.ns_;
    return *this;
  }
  constexpr Time& operator-=(Time rhs) {
    ns_ -= rhs.ns_;
    return *this;
  }
  [[nodiscard]] friend constexpr Time operator+(Time a, Time b) { return Time{a.ns_ + b.ns_}; }
  [[nodiscard]] friend constexpr Time operator-(Time a, Time b) { return Time{a.ns_ - b.ns_}; }
  [[nodiscard]] friend constexpr Time operator*(Time a, std::int64_t k) {
    return Time{a.ns_ * k};
  }
  [[nodiscard]] friend constexpr Time operator*(std::int64_t k, Time a) { return a * k; }
  [[nodiscard]] friend constexpr Time operator/(Time a, std::int64_t k) {
    return Time{a.ns_ / k};
  }
  // Ratio of two durations, e.g. utilization computations.
  [[nodiscard]] friend constexpr double operator/(Time a, Time b) {
    return static_cast<double>(a.ns_) / static_cast<double>(b.ns_);
  }

  // Scale a duration by a dimensionless factor (e.g. CPU speed ratios).
  [[nodiscard]] constexpr Time scaled(double factor) const {
    return from_sec(sec() * factor);
  }

  [[nodiscard]] std::string str() const;

 private:
  constexpr explicit Time(std::int64_t ns) : ns_{ns} {}
  std::int64_t ns_{0};
};

namespace literals {
[[nodiscard]] constexpr Time operator""_ns(unsigned long long v) {
  return Time::from_ns(static_cast<std::int64_t>(v));
}
[[nodiscard]] constexpr Time operator""_us(unsigned long long v) {
  return Time::from_us(static_cast<std::int64_t>(v));
}
[[nodiscard]] constexpr Time operator""_ms(unsigned long long v) {
  return Time::from_ms(static_cast<std::int64_t>(v));
}
[[nodiscard]] constexpr Time operator""_s(unsigned long long v) {
  return Time::from_sec(static_cast<double>(v));
}
[[nodiscard]] constexpr Time operator""_s(long double v) {
  return Time::from_sec(static_cast<double>(v));
}
}  // namespace literals

}  // namespace ampom::sim
