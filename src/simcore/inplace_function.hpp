#pragma once
// Small-buffer-optimized, move-only callable for the event-queue hot path.
//
// std::function heap-allocates any closure bigger than its inline buffer
// (16 bytes on libstdc++), and simulator callbacks routinely capture `this`
// plus a couple of ids — just over that line, so the old engine paid one
// malloc/free round trip per scheduled event. InplaceFunction stores any
// nothrow-movable callable up to `Capacity` bytes directly in the object and
// only boxes larger (or throwing-move) ones on the heap, so the
// schedule/fire/cancel path makes zero allocations for typical lambdas.
//
// Move-only by design: a queued callback owns its captures and is invoked
// (or destroyed on cancel) exactly once; copying one is never meaningful.

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace ampom::sim {

template <class Signature, std::size_t Capacity = 64>
class InplaceFunction;

template <class R, class... Args, std::size_t Capacity>
class InplaceFunction<R(Args...), Capacity> {
 public:
  InplaceFunction() = default;
  InplaceFunction(std::nullptr_t) {}  // implicit, mirroring std::function

  // Implicit like std::function's converting constructor; the enable_if
  // keeps it from hijacking moves of InplaceFunction itself.
  template <class F, class D = std::decay_t<F>,
            class = std::enable_if_t<!std::is_same_v<D, InplaceFunction> &&
                                     std::is_invocable_r_v<R, D&, Args...>>>
  InplaceFunction(F&& f) {
    if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(f)));
      ops_ = &kBoxedOps<D>;
    }
  }

  InplaceFunction(InplaceFunction&& other) noexcept { steal(other); }

  InplaceFunction& operator=(InplaceFunction&& other) noexcept {
    if (this != &other) {
      reset();
      steal(other);
    }
    return *this;
  }

  InplaceFunction& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  InplaceFunction(const InplaceFunction&) = delete;
  InplaceFunction& operator=(const InplaceFunction&) = delete;

  ~InplaceFunction() { reset(); }

  R operator()(Args... args) { return ops_->invoke(storage_, std::forward<Args>(args)...); }

  [[nodiscard]] explicit operator bool() const { return ops_ != nullptr; }
  [[nodiscard]] friend bool operator==(const InplaceFunction& f, std::nullptr_t) {
    return f.ops_ == nullptr;
  }
  [[nodiscard]] friend bool operator!=(const InplaceFunction& f, std::nullptr_t) {
    return f.ops_ != nullptr;
  }

  // True when a callable of type D lives in the inline buffer (exposed so
  // tests and the perf harness can pin which captures stay allocation-free).
  template <class D>
  [[nodiscard]] static constexpr bool fits_inline() {
    return sizeof(D) <= Capacity && alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

 private:
  // Manual vtable: one static Ops instance per erased type. `relocate` is a
  // destructive move (move-construct into `to`, destroy `from`) so the owner
  // can be moved without touching the heap.
  struct Ops {
    R (*invoke)(void*, Args&&...);
    void (*relocate)(void* from, void* to) noexcept;
    void (*destroy)(void*) noexcept;
  };

  template <class D>
  static constexpr Ops kInlineOps{
      [](void* s, Args&&... args) -> R {
        return (*static_cast<D*>(s))(std::forward<Args>(args)...);
      },
      [](void* from, void* to) noexcept {
        ::new (to) D(std::move(*static_cast<D*>(from)));
        static_cast<D*>(from)->~D();
      },
      [](void* s) noexcept { static_cast<D*>(s)->~D(); }};

  template <class D>
  static constexpr Ops kBoxedOps{
      [](void* s, Args&&... args) -> R {
        return (**static_cast<D**>(s))(std::forward<Args>(args)...);
      },
      [](void* from, void* to) noexcept {
        ::new (to) D*(*static_cast<D**>(from));
      },
      [](void* s) noexcept { delete *static_cast<D**>(s); }};

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  void steal(InplaceFunction& other) noexcept {
    if (other.ops_ != nullptr) {
      other.ops_->relocate(other.storage_, storage_);
      ops_ = other.ops_;
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[Capacity < sizeof(void*)
                                                       ? sizeof(void*)
                                                       : Capacity]{};
  const Ops* ops_{nullptr};
};

}  // namespace ampom::sim
