#include "simcore/simulator.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

#include "simcore/fmt.hpp"

namespace ampom::sim {

namespace {

// Executing context of the calling thread: which simulator is draining which
// partition. Null outside partition windows (root code, barrier events), so
// scheduling from there defaults to the global partition.
struct ExecCtx {
  const Simulator* sim{nullptr};
  std::uint32_t part{0};
};
thread_local ExecCtx tl_exec_ctx{};

}  // namespace

std::string Time::str() const {
  if (ns_ == 0) {
    return "0s";
  }
  const double s = sec();
  if (s >= 1.0 || s <= -1.0) {
    return strfmt("%.3fs", s);
  }
  const double milli = ms();
  if (milli >= 1.0 || milli <= -1.0) {
    return strfmt("%.3fms", milli);
  }
  return strfmt("%.3fus", us());
}

Simulator::Simulator() { parts_.push_back(std::make_unique<Partition>()); }

Simulator::~Simulator() { stop_pool(); }

std::uint32_t Simulator::ctx_index() const {
  return tl_exec_ctx.sim == this ? tl_exec_ctx.part : 0U;
}

std::uint32_t Simulator::current_partition_hint() { return tl_exec_ctx.part; }

Time Simulator::now() const { return parts_[ctx_index()]->now; }

Simulator::EventId Simulator::schedule_at(Time at, Callback cb) {
  const std::uint32_t index = ctx_index();
  Partition& part = *parts_[index];
  if (at < part.now) {
    throw std::logic_error(
        strfmt("schedule_at(%s) is in the past (now=%s)", at.str().c_str(), part.now.str().c_str()));
  }
  return EventId{part.queue.push(at, std::move(cb)), index};
}

Simulator::EventId Simulator::schedule_on_node(std::uint32_t node, Time at, Callback cb) {
  if (!partitioned_) {
    return schedule_at(at, std::move(cb));
  }
  const std::uint32_t target = partition_of_node(node);
  const std::uint32_t cur = ctx_index();
  if (cur == target) {
    return schedule_at(at, std::move(cb));
  }
  if (cur == 0) {
    // Barrier/root context: every partition is parked, push directly.
    Partition& part = *parts_[target];
    if (at < part.now) {
      throw std::logic_error(strfmt("schedule_on_node(%s) is in the past (partition now=%s)",
                                    at.str().c_str(), part.now.str().c_str()));
    }
    return EventId{part.queue.push(at, std::move(cb)), target};
  }
  // Cross-partition from inside a partition event: defer to the barrier. The
  // lookahead contract puts `at` at or beyond the fence; barrier-adjacent
  // control events may land just below it and are clamped (deterministic —
  // the fence is schedule state, not thread state).
  Partition& src = *parts_[cur];
  const Time eff = at < window_fence_ ? window_fence_ : at;
  src.outbox.push_back(Outgoing{eff, target, src.next_out_seq++, EventId{}, std::move(cb)});
  return EventId{};
}

void Simulator::post_global(Callback cb) {
  const std::uint32_t cur = ctx_index();
  if (!partitioned_ || cur == 0) {
    cb();  // already serialized against every partition
    return;
  }
  Partition& src = *parts_[cur];
  src.outbox.push_back(Outgoing{window_fence_, 0, src.next_out_seq++, EventId{}, std::move(cb)});
}

bool Simulator::cancel(EventId id) {
  if (!id.valid()) {
    return false;
  }
  const std::uint32_t cur = ctx_index();
  if (!partitioned_ || id.part == cur || cur == 0) {
    return parts_[id.part]->queue.cancel(id.seq);
  }
  if (id.part == 0) {
    // Deferred cancel of a barrier-context event. Safe: global events fire
    // only at barriers, and the fence this cancel lands on is <= any global
    // event time still pending, so the cancel is applied before the event
    // could fire.
    Partition& src = *parts_[cur];
    src.outbox.push_back(Outgoing{window_fence_, 0, src.next_out_seq++, id, Callback{}});
    return true;
  }
  throw std::logic_error("Simulator::cancel: cross-partition cancel of a non-global event");
}

bool Simulator::step() {
  if (partitioned_) {
    throw std::logic_error("Simulator::step: single-stepping is unavailable in partitioned mode");
  }
  Partition& part = *parts_[0];
  Time at;
  Callback cb;
  if (!part.queue.pop(at, cb)) {
    return false;
  }
  assert(at >= part.now);
  part.now = at;
  ++part.processed;
  cb();
  return true;
}

std::uint64_t Simulator::run() {
  return partitioned_ ? run_windows(std::nullopt) : run_serial(std::nullopt);
}

std::uint64_t Simulator::run_until(Time limit) {
  return partitioned_ ? run_windows(limit) : run_serial(limit);
}

std::uint64_t Simulator::run_serial(std::optional<Time> limit) {
  Partition& part = *parts_[0];
  const std::uint64_t before = part.processed;
  while (!halted()) {
    if (part.queue.empty() || (limit && part.queue.top_time() > *limit)) {
      if (limit && part.now < *limit) {
        // Drained the window: the full interval elapsed.
        part.now = *limit;
      }
      if (!limit && part.queue.empty()) {
        break;
      }
      if (limit) {
        halted_.store(false, std::memory_order_relaxed);
        return part.processed - before;
      }
      break;
    }
    step();
  }
  // Halted (possibly before the first event): the clock stays where the halt
  // caught it, so delays scheduled afterwards are measured from the true
  // stopping point, not a limit this run never reached.
  halted_.store(false, std::memory_order_relaxed);
  return part.processed - before;
}

std::size_t Simulator::pending() const {
  std::size_t total = 0;
  for (const auto& part : parts_) {
    total += part->queue.size();
  }
  return total;
}

std::uint64_t Simulator::events_processed() const {
  std::uint64_t total = 0;
  for (const auto& part : parts_) {
    total += part->processed;
  }
  return total;
}

std::size_t Simulator::queued_entries() const {
  std::size_t total = 0;
  for (const auto& part : parts_) {
    total += part->queue.queued_entries();
  }
  return total;
}

std::size_t Simulator::slot_high_water() const {
  std::size_t high = 0;
  for (const auto& part : parts_) {
    high = std::max(high, part->queue.slot_high_water());
  }
  return high;
}

void Simulator::start_probe(Time period, Probe probe) {
  if (period <= Time::zero()) {
    throw std::invalid_argument("Simulator::start_probe: period must be positive");
  }
  stop_probe();
  probe_ = std::move(probe);
  probe_period_ = period;
  probe_event_ = schedule_after(period, [this] { fire_probe(); });
}

void Simulator::stop_probe() {
  if (probe_event_.valid()) {
    cancel(probe_event_);
    probe_event_ = EventId{};
  }
  probe_ = nullptr;
  probe_period_ = Time::zero();
}

void Simulator::fire_probe() {
  probe_event_ = EventId{};
  if (!probe_) {
    return;
  }
  probe_(now(), pending(), events_processed());
  // Reschedule only while other work remains: a probe alone in the queue
  // would otherwise keep run() alive forever.
  if (pending() > 0) {
    probe_event_ = schedule_after(probe_period_, [this] { fire_probe(); });
  }
}

// --- partitioned mode -------------------------------------------------------

void Simulator::configure_partitions(PartitionPlan plan, std::uint32_t workers) {
  if (partitioned_) {
    throw std::logic_error("Simulator::configure_partitions: already partitioned");
  }
  if (plan.partitions == 0) {
    throw std::invalid_argument("Simulator::configure_partitions: need at least one partition");
  }
  if (plan.lookahead <= Time::zero()) {
    throw std::invalid_argument("Simulator::configure_partitions: lookahead must be positive");
  }
  for (const std::uint32_t p : plan.node_partition) {
    if (p == 0 || p > plan.partitions) {
      throw std::invalid_argument("Simulator::configure_partitions: node partition out of range");
    }
  }
  if (!parts_[0]->queue.empty() || parts_[0]->processed != 0) {
    throw std::logic_error("Simulator::configure_partitions: simulator already has events");
  }
  plan_ = std::move(plan);
  partitioned_ = true;
  parts_.reserve(plan_.partitions + 1);
  for (std::uint32_t p = 0; p < plan_.partitions; ++p) {
    parts_.push_back(std::make_unique<Partition>());
  }
  set_workers(workers);
}

void Simulator::set_workers(std::uint32_t workers) {
  const std::uint32_t clamped =
      partitioned_ ? std::clamp(workers, 1U, plan_.partitions) : std::max(workers, 1U);
  if (!threads_.empty() && clamped != workers_) {
    throw std::logic_error("Simulator::set_workers: worker pool already started");
  }
  workers_ = clamped;
}

std::uint32_t Simulator::partitions() const {
  return partitioned_ ? plan_.partitions : 1U;
}

std::uint32_t Simulator::partition_of_node(std::uint32_t node) const {
  if (!partitioned_) {
    return 0;
  }
  if (node >= plan_.node_partition.size()) {
    throw std::out_of_range("Simulator::partition_of_node: unknown node");
  }
  return plan_.node_partition[node];
}

bool Simulator::cross_partition(std::uint32_t node_a, std::uint32_t node_b) const {
  return partitioned_ && partition_of_node(node_a) != partition_of_node(node_b);
}

std::uint64_t Simulator::run_windows(std::optional<Time> limit) {
  const std::uint64_t before = events_processed();
  ensure_pool();
  for (;;) {
    if (halted()) {
      break;
    }
    // Earliest pending work anywhere.
    bool any = false;
    Time tmin = Time::zero();
    for (const auto& part : parts_) {
      if (!part->queue.empty()) {
        const Time t = part->queue.top_time();
        if (!any || t < tmin) {
          tmin = t;
          any = true;
        }
      }
    }
    if (!any || (limit && tmin > *limit)) {
      if (limit) {
        for (auto& part : parts_) {
          part->now = std::max(part->now, *limit);
        }
      }
      break;
    }
    Partition& global = *parts_[0];
    if (!global.queue.empty() && global.queue.top_time() <= tmin) {
      // Barrier phase: global events run serially with every partition
      // parked at or before this instant.
      run_global_at(global.queue.top_time());
      continue;
    }
    // Window [tmin, fence): partitions drain concurrently. The fence never
    // exceeds the next global event (barrier-context state must not be
    // overtaken) and cross-partition traffic cannot land below
    // tmin + lookahead, so the window is causally closed.
    Time fence = tmin + plan_.lookahead;
    if (!global.queue.empty()) {
      fence = std::min(fence, global.queue.top_time());
    }
    if (limit) {
      fence = std::min(fence, *limit + Time::from_ns(1));
    }
    const Time clock = limit ? std::min(fence, *limit) : fence;
    dispatch_window(fence, clock);
    merge_outboxes();
    global.now = std::max(global.now, clock);
  }
  halted_.store(false, std::memory_order_relaxed);
  return events_processed() - before;
}

void Simulator::run_global_at(Time at) {
  Partition& global = *parts_[0];
  global.now = at;
  while (!halted() && !global.queue.empty() && global.queue.top_time() == at) {
    Time t;
    Callback cb;
    global.queue.pop(t, cb);
    ++global.processed;
    cb();
  }
}

void Simulator::run_partition_window(Partition& part, std::uint32_t index, Time fence, Time clock) {
  const ExecCtx saved = tl_exec_ctx;
  tl_exec_ctx = ExecCtx{this, index};
  while (!part.queue.empty() && part.queue.top_time() < fence) {
    Time at;
    Callback cb;
    part.queue.pop(at, cb);
    assert(at >= part.now);
    part.now = at;
    ++part.processed;
    cb();
  }
  part.now = std::max(part.now, clock);
  tl_exec_ctx = saved;
}

void Simulator::dispatch_window(Time fence, Time clock) {
  window_fence_ = fence;
  if (nthreads_ <= 1) {
    for (std::uint32_t p = 1; p < parts_.size(); ++p) {
      run_partition_window(*parts_[p], p, fence, clock);
    }
    return;
  }
  {
    const std::lock_guard<std::mutex> lk(pool_mu_);
    pool_clock_ = clock;
    pool_pending_ = nthreads_ - 1;
    ++pool_epoch_;
  }
  pool_cv_.notify_all();
  for (std::uint32_t p = 1; p < parts_.size(); ++p) {
    if ((p - 1) % nthreads_ == 0) {
      run_partition_window(*parts_[p], p, fence, clock);
    }
  }
  std::unique_lock<std::mutex> lk(pool_mu_);
  done_cv_.wait(lk, [this] { return pool_pending_ == 0; });
}

void Simulator::merge_outboxes() {
  // Deterministic cross-partition delivery: collect every outbox in source
  // order (entries within one source are already in schedule order) and
  // stable-sort by time, yielding the canonical (time, source partition,
  // sequence) key. Push order into each target queue — and therefore the
  // (time, order) tie-break — is then independent of thread scheduling.
  merge_scratch_.clear();
  for (std::uint32_t p = 1; p < parts_.size(); ++p) {
    for (Outgoing& out : parts_[p]->outbox) {
      merge_scratch_.push_back(&out);
    }
  }
  std::stable_sort(merge_scratch_.begin(), merge_scratch_.end(),
                   [](const Outgoing* a, const Outgoing* b) { return a->at < b->at; });
  for (Outgoing* out : merge_scratch_) {
    if (out->cancel_target.valid()) {
      parts_[out->cancel_target.part]->queue.cancel(out->cancel_target.seq);
    } else {
      parts_[out->target]->queue.push(out->at, std::move(out->cb));
    }
  }
  merge_scratch_.clear();
  for (std::uint32_t p = 1; p < parts_.size(); ++p) {
    parts_[p]->outbox.clear();
  }
}

void Simulator::ensure_pool() {
  nthreads_ = std::min(workers_, plan_.partitions);
  if (nthreads_ <= 1 || !threads_.empty()) {
    return;
  }
  threads_.reserve(nthreads_ - 1);
  for (std::uint32_t slot = 1; slot < nthreads_; ++slot) {
    threads_.emplace_back([this, slot] { worker_main(slot); });
  }
}

void Simulator::stop_pool() {
  if (threads_.empty()) {
    return;
  }
  {
    const std::lock_guard<std::mutex> lk(pool_mu_);
    pool_quit_ = true;
  }
  pool_cv_.notify_all();
  for (std::thread& t : threads_) {
    t.join();
  }
  threads_.clear();
  pool_quit_ = false;
}

void Simulator::worker_main(std::uint32_t slot) {
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lk(pool_mu_);
  for (;;) {
    pool_cv_.wait(lk, [this, seen] { return pool_quit_ || pool_epoch_ != seen; });
    if (pool_quit_) {
      return;
    }
    seen = pool_epoch_;
    const Time fence = window_fence_;
    const Time clock = pool_clock_;
    lk.unlock();
    // Static partition→thread assignment: the work split is a function of
    // the plan, not of runtime load, so thread count cannot leak into the
    // schedule.
    for (std::uint32_t p = 1; p < parts_.size(); ++p) {
      if ((p - 1) % nthreads_ == slot) {
        run_partition_window(*parts_[p], p, fence, clock);
      }
    }
    lk.lock();
    if (--pool_pending_ == 0) {
      done_cv_.notify_one();
    }
  }
}

}  // namespace ampom::sim
