#include "simcore/simulator.hpp"

#include <cassert>
#include <stdexcept>
#include <utility>

#include "simcore/fmt.hpp"

namespace ampom::sim {

std::string Time::str() const {
  if (ns_ == 0) {
    return "0s";
  }
  const double s = sec();
  if (s >= 1.0 || s <= -1.0) {
    return strfmt("%.3fs", s);
  }
  const double milli = ms();
  if (milli >= 1.0 || milli <= -1.0) {
    return strfmt("%.3fms", milli);
  }
  return strfmt("%.3fus", us());
}

Simulator::EventId Simulator::schedule_at(Time at, Callback cb) {
  if (at < now_) {
    throw std::logic_error(
        strfmt("schedule_at(%s) is in the past (now=%s)", at.str().c_str(), now_.str().c_str()));
  }
  return EventId{queue_.push(at, std::move(cb))};
}

bool Simulator::cancel(EventId id) { return queue_.cancel(id.seq); }

bool Simulator::step() {
  Time at;
  Callback cb;
  if (!queue_.pop(at, cb)) {
    return false;
  }
  assert(at >= now_);
  now_ = at;
  ++processed_;
  cb();
  return true;
}

std::uint64_t Simulator::run() {
  const std::uint64_t before = processed_;
  while (!halted_ && step()) {
  }
  halted_ = false;  // consumed by this run, whether it stopped us or was pending
  return processed_ - before;
}

void Simulator::start_probe(Time period, Probe probe) {
  if (period <= Time::zero()) {
    throw std::invalid_argument("Simulator::start_probe: period must be positive");
  }
  stop_probe();
  probe_ = std::move(probe);
  probe_period_ = period;
  probe_event_ = schedule_after(period, [this] { fire_probe(); });
}

void Simulator::stop_probe() {
  if (probe_event_.valid()) {
    cancel(probe_event_);
    probe_event_ = EventId{};
  }
  probe_ = nullptr;
  probe_period_ = Time::zero();
}

void Simulator::fire_probe() {
  probe_event_ = EventId{};
  if (!probe_) {
    return;
  }
  probe_(now_, queue_.size(), processed_);
  // Reschedule only while other work remains: a probe alone in the queue
  // would otherwise keep run() alive forever.
  if (!queue_.empty()) {
    probe_event_ = schedule_after(probe_period_, [this] { fire_probe(); });
  }
}

std::uint64_t Simulator::run_until(Time limit) {
  const std::uint64_t before = processed_;
  while (!halted_) {
    if (queue_.empty() || queue_.top_time() > limit) {
      // Drained the window: the full interval elapsed.
      if (now_ < limit) {
        now_ = limit;
      }
      halted_ = false;
      return processed_ - before;
    }
    step();
  }
  // Halted (possibly before the first event): the clock stays where the halt
  // caught it, so delays scheduled afterwards are measured from the true
  // stopping point, not a limit this run never reached.
  halted_ = false;
  return processed_ - before;
}

}  // namespace ampom::sim
