#include "simcore/simulator.hpp"

#include <cassert>
#include <stdexcept>

#include "simcore/fmt.hpp"

namespace ampom::sim {

std::string Time::str() const {
  if (ns_ == 0) {
    return "0s";
  }
  const double s = sec();
  if (s >= 1.0 || s <= -1.0) {
    return strfmt("%.3fs", s);
  }
  const double milli = ms();
  if (milli >= 1.0 || milli <= -1.0) {
    return strfmt("%.3fms", milli);
  }
  return strfmt("%.3fus", us());
}

Simulator::EventId Simulator::schedule_at(Time at, Callback cb) {
  if (at < now_) {
    throw std::logic_error(
        strfmt("schedule_at(%s) is in the past (now=%s)", at.str().c_str(), now_.str().c_str()));
  }
  const std::uint64_t seq = next_seq_++;
  heap_.push(Item{at, seq, std::move(cb)});
  live_.insert(seq);
  return EventId{seq};
}

bool Simulator::cancel(EventId id) {
  // We cannot remove from the middle of the heap; drop the id from the live
  // set and skip the dead heap entry when it reaches the top.
  return id.valid() && live_.erase(id.seq) > 0;
}

bool Simulator::pop_next(Item& out) {
  while (!heap_.empty()) {
    // priority_queue::top() is const; move is safe because we pop right away.
    out = std::move(const_cast<Item&>(heap_.top()));
    heap_.pop();
    if (live_.erase(out.seq) > 0) {
      return true;
    }
  }
  return false;
}

bool Simulator::step() {
  Item item;
  if (!pop_next(item)) {
    return false;
  }
  assert(item.at >= now_);
  now_ = item.at;
  ++processed_;
  item.cb();
  return true;
}

std::uint64_t Simulator::run() {
  halted_ = false;
  const std::uint64_t before = processed_;
  while (!halted_ && step()) {
  }
  return processed_ - before;
}

void Simulator::start_probe(Time period, Probe probe) {
  if (period <= Time::zero()) {
    throw std::invalid_argument("Simulator::start_probe: period must be positive");
  }
  stop_probe();
  probe_ = std::move(probe);
  probe_period_ = period;
  probe_event_ = schedule_after(period, [this] { fire_probe(); });
}

void Simulator::stop_probe() {
  if (probe_event_.valid()) {
    cancel(probe_event_);
    probe_event_ = EventId{};
  }
  probe_ = nullptr;
  probe_period_ = Time::zero();
}

void Simulator::fire_probe() {
  probe_event_ = EventId{};
  if (!probe_) {
    return;
  }
  probe_(now_, live_.size(), processed_);
  // Reschedule only while other work remains: a probe alone in the queue
  // would otherwise keep run() alive forever.
  if (!live_.empty()) {
    probe_event_ = schedule_after(probe_period_, [this] { fire_probe(); });
  }
}

std::uint64_t Simulator::run_until(Time limit) {
  halted_ = false;
  const std::uint64_t before = processed_;
  while (!halted_) {
    Item item;
    if (!pop_next(item)) {
      break;
    }
    if (item.at > limit) {
      // Put it back; it stays pending (and live) for a later run.
      live_.insert(item.seq);
      heap_.push(std::move(item));
      now_ = limit;
      return processed_ - before;
    }
    now_ = item.at;
    ++processed_;
    item.cb();
  }
  if (now_ < limit) {
    now_ = limit;
  }
  return processed_ - before;
}

}  // namespace ampom::sim
