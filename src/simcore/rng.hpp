#pragma once
// Deterministic pseudo-random source (xoshiro256**, seeded via splitmix64).
//
// Every stochastic element of a scenario draws from one Rng owned by the
// experiment, so a (scenario, seed) pair fully determines the run.

#include <cassert>
#include <cmath>
#include <cstdint>

namespace ampom::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    // splitmix64 expansion of the seed into the xoshiro state.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9E3779B97f4A7C15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      s = z ^ (z >> 31);
    }
  }

  [[nodiscard]] std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound). Unbiased via rejection.
  [[nodiscard]] std::uint64_t uniform(std::uint64_t bound) {
    assert(bound > 0);
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = next();
      if (r >= threshold) {
        return r % bound;
      }
    }
  }

  // Uniform double in [0, 1).
  [[nodiscard]] double uniform_real() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  // Uniform double in [lo, hi).
  [[nodiscard]] double uniform_real(double lo, double hi) {
    return lo + (hi - lo) * uniform_real();
  }

  // Exponential with the given mean (> 0).
  [[nodiscard]] double exponential(double mean) {
    assert(mean > 0.0);
    double u = uniform_real();
    if (u <= 0.0) {
      u = 0x1.0p-53;
    }
    return -mean * std::log(u);
  }

  [[nodiscard]] bool bernoulli(double p) { return uniform_real() < p; }

  // Derive an independent child stream (for sub-components).
  [[nodiscard]] Rng fork() { return Rng{next() ^ 0xA5A5A5A5DEADBEEFULL}; }

 private:
  [[nodiscard]] static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4]{};
};

}  // namespace ampom::sim
