#pragma once
// Indexed 4-ary min-heap of timed callbacks: the storage engine under the
// Simulator.
//
// The engine it replaced was a std::priority_queue with lazy deletion: a
// cancelled event's heap entry (and its std::function closure) stayed queued
// until its deadline bubbled to the top. Under the reliable-paging protocol
// — which cancels and re-arms a silence timer on *every* page arrival — that
// strands one dead entry per page, so the heap held O(timeout/page-gap)
// garbage per in-flight request and every pop paid to skip it.
//
// This queue keeps a side index from event handle to heap position, so
// cancel() is an O(log n) in-place removal that destroys the callback
// immediately, and the heap never holds a dead entry: size() is exactly the
// number of live events. The 4-ary layout halves the tree depth of a binary
// heap and keeps sift-downs inside one or two cache lines of children, which
// is where a discrete-event simulator spends its life.
//
// Determinism: entries are ordered by (time, push order), so same-instant
// events pop in FIFO push order. Cancellation never perturbs the relative
// order of surviving events.
//
// Handles: push() returns an opaque non-zero handle encoding the slot the
// callback lives in plus a generation counter; a handle for an event that
// already fired or was cancelled mismatches its slot's current generation
// and cancel() returns false. Zero is never a valid handle.
//
// Storage: three flat vectors (heap entries, callback slots, slot free
// list). At steady state push/pop/cancel touch no allocator at all, and a
// callback whose closure fits Callback's small buffer never touches the
// heap anywhere in its life.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "simcore/inplace_function.hpp"
#include "simcore/time.hpp"

namespace ampom::sim {

class EventQueue {
 public:
  using Callback = InplaceFunction<void()>;
  using Handle = std::uint64_t;

  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  // Insert `cb` keyed by (`at`, arrival order). O(log n), allocation-free at
  // steady state. Returns a non-zero handle for cancel().
  Handle push(Time at, Callback cb);

  // Remove a pending event in place and destroy its callback now. Returns
  // false for the zero handle or one whose event already popped/cancelled.
  bool cancel(Handle handle);

  // Move the earliest event (FIFO among equal times) into `at`/`cb`;
  // false when empty.
  bool pop(Time& at, Callback& cb);

  // Earliest pending time without popping. Precondition: !empty().
  [[nodiscard]] Time top_time() const { return heap_.front().at; }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  // Storage introspection for soak tests and the perf harness.
  // Entries physically held by the heap. For this engine it equals size()
  // by construction — the lazy-delete engine it replaced kept cancelled
  // entries queued, which is exactly what the cancel-heavy soak pins.
  [[nodiscard]] std::size_t queued_entries() const { return heap_.size(); }
  // High-water mark of concurrently live events (slots are recycled).
  [[nodiscard]] std::size_t slot_high_water() const { return slots_.size(); }

 private:
  struct Entry {
    Time at;
    std::uint64_t order;  // monotonic push counter: FIFO tie-break
    std::uint32_t slot;
  };
  struct Slot {
    Callback cb;
    std::uint32_t heap_index{0};
    std::uint32_t generation{0};
  };

  [[nodiscard]] static bool earlier(const Entry& a, const Entry& b) {
    return a.at != b.at ? a.at < b.at : a.order < b.order;
  }

  [[nodiscard]] static Handle make_handle(std::uint32_t slot, std::uint32_t generation) {
    return (static_cast<Handle>(generation) << 32U) | (static_cast<Handle>(slot) + 1U);
  }

  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  void place(std::size_t i, Entry entry);  // write + maintain the index
  void remove_at(std::size_t i);
  void release(std::uint32_t slot);

  std::vector<Entry> heap_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::uint64_t next_order_{1};
};

}  // namespace ampom::sim
