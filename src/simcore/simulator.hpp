#pragma once
// The discrete-event engine: a time-ordered queue of callbacks.
//
// Determinism: events scheduled for the same instant fire in schedule order
// (FIFO by sequence number), so a run is a pure function of the scenario.

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "simcore/time.hpp"

namespace ampom::sim {

class Simulator {
 public:
  using Callback = std::function<void()>;

  struct EventId {
    std::uint64_t seq{0};
    [[nodiscard]] bool valid() const { return seq != 0; }
  };

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] Time now() const { return now_; }

  // Schedule `cb` at absolute time `at` (must not be in the past).
  EventId schedule_at(Time at, Callback cb);

  // Schedule `cb` `delay` after now.
  EventId schedule_after(Time delay, Callback cb) { return schedule_at(now_ + delay, std::move(cb)); }

  // Cancel a pending event. Returns false if it already fired or was
  // cancelled before.
  bool cancel(EventId id);

  // Run until the queue drains or halt() is called. Returns the number of
  // events processed by this call.
  std::uint64_t run();

  // Run events with time <= `limit`; afterwards now() == min(limit, drain).
  std::uint64_t run_until(Time limit);

  // Process a single event; returns false when the queue is empty.
  bool step();

  void halt() { halted_ = true; }
  [[nodiscard]] bool halted() const { return halted_; }

  [[nodiscard]] std::size_t pending() const { return live_.size(); }
  [[nodiscard]] std::uint64_t events_processed() const { return processed_; }

  // Observability hook: invoke `probe` every `period` of simulated time with
  // the current time, queue depth and cumulative events processed. The probe
  // rides the ordinary event queue (so it perturbs no other event's relative
  // order) and stops rescheduling itself once it is the only pending event,
  // letting run() drain naturally. One probe at a time; stop_probe() cancels.
  using Probe = std::function<void(Time now, std::size_t pending, std::uint64_t processed)>;
  void start_probe(Time period, Probe probe);
  void stop_probe();

 private:
  struct Item {
    Time at;
    std::uint64_t seq;
    Callback cb;
  };
  struct Later {
    [[nodiscard]] bool operator()(const Item& a, const Item& b) const {
      if (a.at != b.at) {
        return a.at > b.at;
      }
      return a.seq > b.seq;
    }
  };

  // Pops the next live (non-cancelled) item; false if none.
  bool pop_next(Item& out);

  void fire_probe();

  std::priority_queue<Item, std::vector<Item>, Later> heap_;
  // ampom-lint: ordered-safe(membership test only; firing order is the seq-tiebroken heap)
  std::unordered_set<std::uint64_t> live_;  // pending, not-cancelled event seqs
  Time now_{Time::zero()};
  std::uint64_t next_seq_{1};
  std::uint64_t processed_{0};
  bool halted_{false};
  Probe probe_;
  Time probe_period_{Time::zero()};
  EventId probe_event_{};
};

}  // namespace ampom::sim
