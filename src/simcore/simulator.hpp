#pragma once
// The discrete-event engine: a time-ordered queue of callbacks.
//
// Determinism: events scheduled for the same instant fire in schedule order
// (FIFO by sequence), so a run is a pure function of the scenario.
//
// Storage is an indexed 4-ary heap (simcore/event_queue.hpp): cancel() is an
// in-place O(log n) removal that destroys the callback immediately, and
// callbacks are small-buffer-optimized (simcore/inplace_function.hpp), so
// the schedule/fire/cancel hot path performs no heap allocations for
// typical closures.
//
// Halt semantics: halt() requests that the engine stop dispatching. The run
// in progress — or, if none is in progress, the *next* run() / run_until()
// call — returns before processing another event. The request is consumed
// by the run it stops; a subsequent run proceeds normally. A run stopped by
// halt() leaves now() at the instant of the last processed event: it never
// fast-forwards to a run_until() limit it did not actually reach. step()
// ignores halt requests; it processes exactly one event regardless.
//
// --- Partitioned (parallel) mode -------------------------------------------
//
// configure_partitions() splits the event queue into one sub-queue per node
// partition plus a global partition (index 0), and the run loop becomes a
// conservative (CMB-style) window engine: every partition processes its own
// events up to a shared fence = window start + lookahead, then a barrier
// merges cross-partition traffic in a deterministic (time, source partition,
// sequence) order. Because the fence never exceeds the next global event and
// cross-partition effects are delayed by at least the lookahead, no event
// can observe state out of order. The schedule — which event runs on which
// partition at which (time, order) key — is a pure function of the scenario
// and the partition plan, NOT of the worker-thread count: set_workers() only
// chooses how many OS threads execute that fixed schedule, so workers=1 and
// workers=N runs are bit-identical. See DESIGN.md §15.
//
// Partitioned-mode semantics deltas (all documented, none observable by a
// well-formed scenario):
//   - now() is per-partition and window-quantized: after a window it sits at
//     the fence, not at the last processed event.
//   - halt() takes effect at the next window boundary, not mid-window.
//   - step() is unavailable (throws): single-stepping a parallel schedule
//     has no serial meaning.
//   - Cross-partition schedule_on_node() below the fence is clamped to the
//     fence (the lookahead contract makes this unreachable for fabric
//     traffic; it only triggers for barrier-adjacent control events).

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "simcore/event_queue.hpp"
#include "simcore/time.hpp"

namespace ampom::sim {

class Simulator {
 public:
  using Callback = EventQueue::Callback;

  struct EventId {
    std::uint64_t seq{0};
    std::uint32_t part{0};  // owning partition; 0 = global (and all of serial mode)
    [[nodiscard]] bool valid() const { return seq != 0; }
  };

  // Static node→partition map for partitioned mode. Partition indices are
  // 1-based (0 is the global/barrier partition); `lookahead` is the minimum
  // cross-partition propagation delay (the CMB bound) and must be positive.
  struct PartitionPlan {
    std::uint32_t partitions{0};
    std::vector<std::uint32_t> node_partition;  // node id -> 1..partitions
    Time lookahead{Time::zero()};
  };

  Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;
  ~Simulator();

  // Current simulated time of the executing context: the partition clock
  // inside a partition event, the global clock everywhere else.
  [[nodiscard]] Time now() const;

  // Schedule `cb` at absolute time `at` (must not be in the past). The event
  // lands on the scheduling context's own partition (the global partition
  // when called from outside any event or from a barrier-context event).
  EventId schedule_at(Time at, Callback cb);

  // Schedule `cb` `delay` after now.
  EventId schedule_after(Time delay, Callback cb) { return schedule_at(now() + delay, std::move(cb)); }

  // Schedule `cb` on the partition that owns `node` (serial mode: identical
  // to schedule_at). Cross-partition calls from inside a partition event are
  // deferred to the next barrier and return an invalid id (not cancellable);
  // same-partition and barrier-context calls push directly.
  EventId schedule_on_node(std::uint32_t node, Time at, Callback cb);

  // Run `cb` in barrier context, where every partition is parked: inline if
  // already serialized (serial mode, global context), otherwise deferred to
  // the fence of the current window. Cross-partition state transitions
  // (e.g. migration commits) use this to serialize against all partitions.
  void post_global(Callback cb);

  // Cancel a pending event in place (its callback is destroyed immediately).
  // Returns false if it already fired or was cancelled before. A partition
  // event may cancel a *global* event (deferred to the barrier, returns true
  // optimistically); cancelling another partition's event throws.
  bool cancel(EventId id);

  // Run until the queue drains or halt() is called. Returns the number of
  // events processed by this call.
  std::uint64_t run();

  // Run events with time <= `limit`; afterwards now() == min(limit, drain),
  // unless halt() stopped the run early — then now() stays at the halt point.
  std::uint64_t run_until(Time limit);

  // Process a single event; returns false when the queue is empty.
  // Unavailable (throws) in partitioned mode.
  bool step();

  void halt() { halted_.store(true, std::memory_order_relaxed); }
  [[nodiscard]] bool halted() const { return halted_.load(std::memory_order_relaxed); }

  // Partitioned mode. Must be called on a fresh simulator (no events yet);
  // `workers` is the OS-thread count (clamped to [1, partitions]) and only
  // affects wall-clock, never the schedule. set_workers() may retune the
  // thread count until the first partitioned run starts the pool.
  void configure_partitions(PartitionPlan plan, std::uint32_t workers);
  void set_workers(std::uint32_t workers);
  [[nodiscard]] bool partitioned() const { return partitioned_; }
  [[nodiscard]] std::uint32_t partitions() const;  // excluding the global partition
  [[nodiscard]] std::uint32_t workers() const { return workers_; }
  [[nodiscard]] std::uint32_t partition_of_node(std::uint32_t node) const;
  [[nodiscard]] bool cross_partition(std::uint32_t node_a, std::uint32_t node_b) const;
  // Executing context: 0 outside partition events (and always in serial
  // mode), otherwise the 1-based index of the partition being drained.
  [[nodiscard]] std::uint32_t current_partition() const { return ctx_index(); }
  // Same, but across whatever simulator the calling thread is executing —
  // shard routing for observers (e.g. trace recording) that have no
  // simulator reference at the call site.
  [[nodiscard]] static std::uint32_t current_partition_hint();

  // Aggregates over all partitions. In partitioned mode these are exact in
  // barrier/root context; a partition event calling them mid-window sees
  // only a consistent snapshot of its own partition plus the parked ones.
  [[nodiscard]] std::size_t pending() const;
  [[nodiscard]] std::uint64_t events_processed() const;

  // Storage introspection (soak tests, perf harness): entries physically in
  // the queue — equal to pending() for this engine, where the retired
  // lazy-delete engine kept cancelled entries queued until their deadline —
  // and the high-water mark of concurrently live events.
  [[nodiscard]] std::size_t queued_entries() const;
  [[nodiscard]] std::size_t slot_high_water() const;

  // Observability hook: invoke `probe` every `period` of simulated time with
  // the current time, queue depth and cumulative events processed. The probe
  // rides the ordinary event queue (so it perturbs no other event's relative
  // order) and stops rescheduling itself once it is the only pending event,
  // letting run() drain naturally. One probe at a time; stop_probe() cancels.
  // In partitioned mode the probe is a global event and fires at barriers.
  using Probe = std::function<void(Time now, std::size_t pending, std::uint64_t processed)>;
  void start_probe(Time period, Probe probe);
  void stop_probe();

 private:
  struct Outgoing {
    Time at{Time::zero()};
    std::uint32_t target{0};     // partition index; 0 = global
    std::uint64_t seq{0};        // per-source counter: preserves schedule order
    EventId cancel_target{};     // valid => deferred cancel instead of a push
    Callback cb;
  };

  struct Partition {
    EventQueue queue;
    Time now{Time::zero()};
    std::uint64_t processed{0};
    std::vector<Outgoing> outbox;  // cross-partition traffic made this window
    std::uint64_t next_out_seq{0};
  };

  [[nodiscard]] std::uint32_t ctx_index() const;
  void fire_probe();
  std::uint64_t run_serial(std::optional<Time> limit);
  std::uint64_t run_windows(std::optional<Time> limit);
  void run_global_at(Time at);
  void run_partition_window(Partition& part, std::uint32_t index, Time fence, Time clock);
  void merge_outboxes();
  void dispatch_window(Time fence, Time clock);
  void ensure_pool();
  void stop_pool();
  void worker_main(std::uint32_t slot);

  std::vector<std::unique_ptr<Partition>> parts_;  // [0] = global; serial mode uses only [0]
  std::atomic<bool> halted_{false};
  Probe probe_;
  Time probe_period_{Time::zero()};
  EventId probe_event_{};

  // Partitioned mode.
  bool partitioned_{false};
  PartitionPlan plan_;
  std::uint32_t workers_{1};
  Time window_fence_{Time::zero()};  // written under pool_mu_ before each window
  std::vector<Outgoing*> merge_scratch_;

  // Worker pool (spawned lazily on the first partitioned run with >1 thread).
  std::vector<std::thread> threads_;
  std::uint32_t nthreads_{1};
  std::mutex pool_mu_;
  std::condition_variable pool_cv_;
  std::condition_variable done_cv_;
  std::uint64_t pool_epoch_{0};
  std::uint32_t pool_pending_{0};
  Time pool_clock_{Time::zero()};
  bool pool_quit_{false};
};

}  // namespace ampom::sim
