#pragma once
// The discrete-event engine: a time-ordered queue of callbacks.
//
// Determinism: events scheduled for the same instant fire in schedule order
// (FIFO by sequence), so a run is a pure function of the scenario.
//
// Storage is an indexed 4-ary heap (simcore/event_queue.hpp): cancel() is an
// in-place O(log n) removal that destroys the callback immediately, and
// callbacks are small-buffer-optimized (simcore/inplace_function.hpp), so
// the schedule/fire/cancel hot path performs no heap allocations for
// typical closures.
//
// Halt semantics: halt() requests that the engine stop dispatching. The run
// in progress — or, if none is in progress, the *next* run() / run_until()
// call — returns before processing another event. The request is consumed
// by the run it stops; a subsequent run proceeds normally. A run stopped by
// halt() leaves now() at the instant of the last processed event: it never
// fast-forwards to a run_until() limit it did not actually reach. step()
// ignores halt requests; it processes exactly one event regardless.

#include <cstdint>
#include <functional>

#include "simcore/event_queue.hpp"
#include "simcore/time.hpp"

namespace ampom::sim {

class Simulator {
 public:
  using Callback = EventQueue::Callback;

  struct EventId {
    std::uint64_t seq{0};
    [[nodiscard]] bool valid() const { return seq != 0; }
  };

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] Time now() const { return now_; }

  // Schedule `cb` at absolute time `at` (must not be in the past).
  EventId schedule_at(Time at, Callback cb);

  // Schedule `cb` `delay` after now.
  EventId schedule_after(Time delay, Callback cb) { return schedule_at(now_ + delay, std::move(cb)); }

  // Cancel a pending event in place (its callback is destroyed immediately).
  // Returns false if it already fired or was cancelled before.
  bool cancel(EventId id);

  // Run until the queue drains or halt() is called. Returns the number of
  // events processed by this call.
  std::uint64_t run();

  // Run events with time <= `limit`; afterwards now() == min(limit, drain),
  // unless halt() stopped the run early — then now() stays at the halt point.
  std::uint64_t run_until(Time limit);

  // Process a single event; returns false when the queue is empty.
  bool step();

  void halt() { halted_ = true; }
  [[nodiscard]] bool halted() const { return halted_; }

  [[nodiscard]] std::size_t pending() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t events_processed() const { return processed_; }

  // Storage introspection (soak tests, perf harness): entries physically in
  // the queue — equal to pending() for this engine, where the retired
  // lazy-delete engine kept cancelled entries queued until their deadline —
  // and the high-water mark of concurrently live events.
  [[nodiscard]] std::size_t queued_entries() const { return queue_.queued_entries(); }
  [[nodiscard]] std::size_t slot_high_water() const { return queue_.slot_high_water(); }

  // Observability hook: invoke `probe` every `period` of simulated time with
  // the current time, queue depth and cumulative events processed. The probe
  // rides the ordinary event queue (so it perturbs no other event's relative
  // order) and stops rescheduling itself once it is the only pending event,
  // letting run() drain naturally. One probe at a time; stop_probe() cancels.
  using Probe = std::function<void(Time now, std::size_t pending, std::uint64_t processed)>;
  void start_probe(Time period, Probe probe);
  void stop_probe();

 private:
  void fire_probe();

  EventQueue queue_;
  Time now_{Time::zero()};
  std::uint64_t processed_{0};
  bool halted_{false};
  Probe probe_;
  Time probe_period_{Time::zero()};
  EventId probe_event_{};
};

}  // namespace ampom::sim
