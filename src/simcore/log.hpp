#pragma once
// Leveled logging tied to simulated time.
//
// Logging defaults to Warn so large parameter sweeps stay quiet; tests and
// examples raise the level when tracing a scenario.

#include <iosfwd>
#include <string>

#include "simcore/fmt.hpp"
#include "simcore/time.hpp"

namespace ampom::sim {

enum class LogLevel : int { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

class Logger {
 public:
  // Process-wide logger used by the whole simulation.
  [[nodiscard]] static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  [[nodiscard]] LogLevel level() const { return level_; }
  [[nodiscard]] bool enabled(LogLevel level) const { return level >= level_; }

  // Route output somewhere else (tests capture it). Not owned.
  void set_sink(std::ostream* sink) { sink_ = sink; }

  void write(LogLevel level, Time now, const std::string& component, const std::string& message);

 private:
  Logger();
  LogLevel level_{LogLevel::Warn};
  std::ostream* sink_;
};

#define AMPOM_LOG(level, now, component, ...)                                         \
  do {                                                                                \
    auto& ampom_logger_ = ::ampom::sim::Logger::instance();                           \
    if (ampom_logger_.enabled(level)) {                                               \
      ampom_logger_.write(level, now, component, ::ampom::sim::strfmt(__VA_ARGS__));  \
    }                                                                                 \
  } while (false)

}  // namespace ampom::sim
