#pragma once
// Leveled logging tied to simulated time.
//
// A Logger is a plain per-run value: the experiment driver creates one per
// RunContext, so concurrent runs never share a sink or a level. There is no
// process-wide instance — code that wants to log receives a Logger& from
// whoever owns the run (see driver/run_context.hpp).
//
// Logging defaults to Warn so large parameter sweeps stay quiet; tests and
// examples raise the level when tracing a scenario.

#include <iosfwd>
#include <string>

#include "simcore/fmt.hpp"
#include "simcore/time.hpp"

namespace ampom::sim {

enum class LogLevel : int { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

class Logger {
 public:
  // Defaults to stderr; pass nullptr to discard everything.
  Logger();
  explicit Logger(LogLevel level);
  Logger(LogLevel level, std::ostream* sink);

  void set_level(LogLevel level) { level_ = level; }
  [[nodiscard]] LogLevel level() const { return level_; }
  [[nodiscard]] bool enabled(LogLevel level) const { return level >= level_; }

  // Route output somewhere else (tests and RunContext capture it). Not owned.
  void set_sink(std::ostream* sink) { sink_ = sink; }

  void write(LogLevel level, Time now, const std::string& component, const std::string& message);

 private:
  LogLevel level_{LogLevel::Warn};
  std::ostream* sink_;
};

// `logger` is any expression yielding a Logger&; the format arguments are
// only evaluated when the level passes.
#define AMPOM_LOG(logger, level, now, component, ...)                                 \
  do {                                                                                \
    ::ampom::sim::Logger& ampom_logger_ = (logger);                                   \
    if (ampom_logger_.enabled(level)) {                                               \
      ampom_logger_.write(level, now, component, ::ampom::sim::strfmt(__VA_ARGS__));  \
    }                                                                                 \
  } while (false)

}  // namespace ampom::sim
