#pragma once
// Byte-count and bandwidth helpers shared across the simulator.

#include <cstdint>

#include "simcore/time.hpp"

namespace ampom::sim {

using Bytes = std::uint64_t;

inline constexpr Bytes kKiB = 1024;
inline constexpr Bytes kMiB = 1024 * kKiB;
inline constexpr Bytes kGiB = 1024 * kMiB;

// Link bandwidth in bits per second. Fast Ethernet is 100 Mb/s.
class Bandwidth {
 public:
  constexpr Bandwidth() = default;

  [[nodiscard]] static constexpr Bandwidth bits_per_sec(std::uint64_t bps) {
    return Bandwidth{bps};
  }
  [[nodiscard]] static constexpr Bandwidth mbits_per_sec(std::uint64_t mbps) {
    return Bandwidth{mbps * 1'000'000};
  }
  [[nodiscard]] static constexpr Bandwidth bytes_per_sec(std::uint64_t Bps) {
    return Bandwidth{Bps * 8};
  }

  [[nodiscard]] constexpr std::uint64_t bps() const { return bps_; }
  [[nodiscard]] constexpr double bytes_per_sec() const { return static_cast<double>(bps_) / 8.0; }
  [[nodiscard]] constexpr bool is_zero() const { return bps_ == 0; }

  // Serialization delay for `n` bytes at this rate.
  [[nodiscard]] constexpr Time transfer_time(Bytes n) const {
    if (bps_ == 0) {
      return Time::max();
    }
    // ns = bytes * 8e9 / bps, computed in integer arithmetic without overflow
    // for realistic sizes (n < 2^40, bps < 2^40).
    const auto bits = static_cast<double>(n) * 8.0;
    return Time::from_sec(bits / static_cast<double>(bps_));
  }

  constexpr auto operator<=>(const Bandwidth&) const = default;

 private:
  constexpr explicit Bandwidth(std::uint64_t bps) : bps_{bps} {}
  std::uint64_t bps_{0};
};

}  // namespace ampom::sim
