#include "simcore/event_queue.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace ampom::sim {

namespace {
constexpr std::size_t kArity = 4;
}

EventQueue::Handle EventQueue::push(Time at, Callback cb) {
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  s.cb = std::move(cb);

  const std::size_t i = heap_.size();
  heap_.push_back(Entry{at, next_order_++, slot});
  s.heap_index = static_cast<std::uint32_t>(i);
  sift_up(i);
  return make_handle(slot, s.generation);
}

bool EventQueue::cancel(Handle handle) {
  if (handle == 0) {
    return false;
  }
  const std::uint32_t slot = static_cast<std::uint32_t>(handle & 0xffffffffU) - 1U;
  if (slot >= slots_.size()) {
    return false;
  }
  Slot& s = slots_[slot];
  if (s.generation != static_cast<std::uint32_t>(handle >> 32U)) {
    return false;  // already fired or cancelled (slot possibly reused)
  }
  remove_at(s.heap_index);
  release(slot);
  return true;
}

bool EventQueue::pop(Time& at, Callback& cb) {
  if (heap_.empty()) {
    return false;
  }
  const std::uint32_t slot = heap_.front().slot;
  at = heap_.front().at;
  cb = std::move(slots_[slot].cb);
  remove_at(0);
  release(slot);
  return true;
}

void EventQueue::place(std::size_t i, Entry entry) {
  slots_[entry.slot].heap_index = static_cast<std::uint32_t>(i);
  heap_[i] = entry;
}

void EventQueue::sift_up(std::size_t i) {
  Entry entry = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / kArity;
    if (!earlier(entry, heap_[parent])) {
      break;
    }
    place(i, heap_[parent]);
    i = parent;
  }
  place(i, entry);
}

void EventQueue::sift_down(std::size_t i) {
  Entry entry = heap_[i];
  const std::size_t n = heap_.size();
  while (true) {
    const std::size_t first_child = i * kArity + 1;
    if (first_child >= n) {
      break;
    }
    std::size_t best = first_child;
    const std::size_t last_child = std::min(first_child + kArity, n);
    for (std::size_t c = first_child + 1; c < last_child; ++c) {
      if (earlier(heap_[c], heap_[best])) {
        best = c;
      }
    }
    if (!earlier(heap_[best], entry)) {
      break;
    }
    place(i, heap_[best]);
    i = best;
  }
  place(i, entry);
}

void EventQueue::remove_at(std::size_t i) {
  assert(i < heap_.size());
  const std::size_t last = heap_.size() - 1;
  if (i == last) {
    heap_.pop_back();
    return;
  }
  Entry moved = heap_[last];
  heap_.pop_back();
  place(i, moved);
  // The displaced entry may belong either above or below its new position.
  sift_up(i);
  sift_down(slots_[moved.slot].heap_index);
}

void EventQueue::release(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.cb = nullptr;  // destroy the closure immediately, not at its deadline
  ++s.generation;
  free_slots_.push_back(slot);
}

}  // namespace ampom::sim
