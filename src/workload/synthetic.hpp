#pragma once
// Synthetic reference streams with controlled locality — used by unit,
// property and ablation tests to isolate algorithm behaviour.

#include <cstdint>
#include <vector>

#include "simcore/rng.hpp"
#include "workload/buffered_stream.hpp"

namespace ampom::workload {

// Pure sequential sweep over the heap, `passes` times. Spatial locality 1.
class SequentialStream final : public BufferedStream {
 public:
  SequentialStream(sim::Bytes memory, std::uint64_t passes, sim::Time cpu_per_ref)
      : BufferedStream{memory}, passes_{passes}, cpu_{cpu_per_ref} {}

  [[nodiscard]] const char* name() const override { return "sequential"; }

 protected:
  void refill() override {
    if (pass_ >= passes_) {
      return;
    }
    constexpr std::uint64_t kBatch = 2048;
    const std::uint64_t end = std::min(pos_ + kBatch, heap_pages());
    for (; pos_ < end; ++pos_) {
      emit(heap_begin() + pos_, cpu_);
    }
    if (pos_ >= heap_pages()) {
      pos_ = 0;
      ++pass_;
    }
  }

 private:
  std::uint64_t passes_;
  sim::Time cpu_;
  std::uint64_t pass_{0};
  std::uint64_t pos_{0};
};

// Uniformly random page touches. Spatial locality ~0.
class UniformRandomStream final : public BufferedStream {
 public:
  UniformRandomStream(sim::Bytes memory, std::uint64_t touches, sim::Time cpu_per_ref,
                      std::uint64_t seed = 0x853C49E6748FEA9BULL)
      : BufferedStream{memory}, touches_{touches}, cpu_{cpu_per_ref}, rng_{seed} {}

  [[nodiscard]] const char* name() const override { return "random"; }

 protected:
  void refill() override {
    constexpr std::uint64_t kBatch = 2048;
    const std::uint64_t end = std::min(done_ + kBatch, touches_);
    for (; done_ < end; ++done_) {
      emit(heap_begin() + rng_.uniform(heap_pages()), cpu_);
    }
  }

 private:
  std::uint64_t touches_;
  sim::Time cpu_;
  sim::Rng rng_;
  std::uint64_t done_{0};
};

// `cursors` interleaved sequential walks, each over an equal slice of the
// heap: the fault stream exhibits stride-`cursors` patterns.
class InterleavedStream final : public BufferedStream {
 public:
  InterleavedStream(sim::Bytes memory, std::uint64_t cursors, sim::Time cpu_per_ref)
      : BufferedStream{memory}, cursors_{cursors == 0 ? 1 : cursors}, cpu_{cpu_per_ref} {
    slice_ = heap_pages() / cursors_;
  }

  [[nodiscard]] const char* name() const override { return "interleaved"; }

 protected:
  void refill() override {
    if (pos_ >= slice_) {
      return;
    }
    constexpr std::uint64_t kBatch = 2048;
    const std::uint64_t end = std::min(pos_ + kBatch / cursors_, slice_);
    for (; pos_ < end; ++pos_) {
      for (std::uint64_t k = 0; k < cursors_; ++k) {
        emit(heap_begin() + k * slice_ + pos_, cpu_);
      }
    }
  }

 private:
  std::uint64_t cursors_;
  sim::Time cpu_;
  std::uint64_t slice_{0};
  std::uint64_t pos_{0};
};

// Repeatedly touches a small hot set (temporal locality), with occasional
// excursions to cold pages.
class HotColdStream final : public BufferedStream {
 public:
  HotColdStream(sim::Bytes memory, std::uint64_t hot_pages, std::uint64_t touches,
                double cold_fraction, sim::Time cpu_per_ref,
                std::uint64_t seed = 0xDA942042E4DD58B5ULL)
      : BufferedStream{memory},
        hot_pages_{hot_pages},
        touches_{touches},
        cold_fraction_{cold_fraction},
        cpu_{cpu_per_ref},
        rng_{seed} {}

  [[nodiscard]] const char* name() const override { return "hotcold"; }

 protected:
  void refill() override {
    constexpr std::uint64_t kBatch = 2048;
    const std::uint64_t end = std::min(done_ + kBatch, touches_);
    for (; done_ < end; ++done_) {
      if (rng_.uniform_real() < cold_fraction_) {
        emit(heap_begin() + hot_pages_ + rng_.uniform(heap_pages() - hot_pages_), cpu_);
      } else {
        emit(heap_begin() + rng_.uniform(hot_pages_), cpu_);
      }
    }
  }

 private:
  std::uint64_t hot_pages_;
  std::uint64_t touches_;
  double cold_fraction_;
  sim::Time cpu_;
  sim::Rng rng_;
  std::uint64_t done_{0};
};

// An interactive-style stream: bursts of memory work separated by system
// calls (I/O). Exercises the home-dependency syscall redirection.
class InteractiveStream final : public BufferedStream {
 public:
  InteractiveStream(sim::Bytes memory, std::uint64_t bursts, std::uint64_t pages_per_burst,
                    std::uint64_t syscalls_per_burst, sim::Time cpu_per_ref)
      : BufferedStream{memory},
        bursts_{bursts},
        pages_per_burst_{pages_per_burst},
        syscalls_per_burst_{syscalls_per_burst},
        cpu_{cpu_per_ref} {}

  [[nodiscard]] const char* name() const override { return "interactive"; }

 protected:
  void refill() override {
    if (burst_ >= bursts_) {
      return;
    }
    for (std::uint64_t i = 0; i < pages_per_burst_; ++i) {
      emit(heap_begin() + (cursor_++ % heap_pages()), cpu_);
    }
    for (std::uint64_t s = 0; s < syscalls_per_burst_; ++s) {
      emit_syscall(cpu_);
    }
    ++burst_;
  }

 private:
  std::uint64_t bursts_;
  std::uint64_t pages_per_burst_;
  std::uint64_t syscalls_per_burst_;
  sim::Time cpu_;
  std::uint64_t burst_{0};
  std::uint64_t cursor_{0};
};

}  // namespace ampom::workload
