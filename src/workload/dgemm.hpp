#pragma once
// HPCC DGEMM model: high spatial AND high temporal locality (paper Fig. 4).
//
// Three square matrices A, B, C fill the working set (blocked C = A*B).
// After migration the kernel value-initializes the matrices with
// pseudo-random doubles (HPCC's init is RNG-bound, so the sweep is slower
// than STREAM's), then walks block-triples (ii, jj, kk), touching the pages
// of C(ii,jj), A(ii,kk) and B(kk,jj) sequentially with a high compute cost
// per page (2b^3 flops per block amortized over its pages). Blocks are
// revisited heavily — the temporal locality that keeps post-init faults
// rare.
//
// `working_set` (0 = whole heap) reproduces the paper's §5.6 experiment:
// the process allocates `memory` but its matrices only span the working
// set; pages beyond it are never referenced after migration.

#include <cstdint>

#include "workload/buffered_stream.hpp"

namespace ampom::workload {

struct DgemmConfig {
  sim::Bytes memory{128 * sim::kMiB};
  sim::Bytes working_set{0};  // 0 = all of memory
  std::uint64_t block_pages{128};  // pages per matrix block (~512 KiB)
  sim::Time cpu_per_ref{sim::Time::from_us(50)};  // per page touch in gemm
  sim::Time cpu_init{sim::Time::from_us(40)};     // RNG-bound init, per page
};

class Dgemm final : public BufferedStream {
 public:
  explicit Dgemm(DgemmConfig config);

  [[nodiscard]] const char* name() const override { return "DGEMM"; }
  [[nodiscard]] std::uint64_t grid() const { return grid_; }

 protected:
  void refill() override;

 private:
  enum class Phase : std::uint8_t { Init, Gemm, Done };

  // First page of block (row, col) of the matrix starting at `base`.
  [[nodiscard]] mem::PageId block_page(mem::PageId base, std::uint64_t row,
                                       std::uint64_t col) const {
    return base + (row * grid_ + col) * block_pages_;
  }
  void emit_block(mem::PageId base, std::uint64_t row, std::uint64_t col);

  DgemmConfig config_;
  std::uint64_t matrix_pages_;  // pages per matrix (working set / 3)
  std::uint64_t block_pages_;
  std::uint64_t grid_;  // blocks per matrix dimension
  mem::PageId a_, b_, c_;

  Phase phase_{Phase::Init};
  std::uint64_t init_pos_{0};
  std::uint64_t ii_{0}, jj_{0}, kk_{0};
};

}  // namespace ampom::workload
