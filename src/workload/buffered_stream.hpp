#pragma once
// Base class for workload generators: kernels append batches of references
// into a small buffer (refill()), next() drains it. Keeps each kernel a
// simple resumable state machine.

#include <deque>

#include "mem/region.hpp"
#include "proc/reference_stream.hpp"

namespace ampom::workload {

class BufferedStream : public proc::ReferenceStream {
 public:
  explicit BufferedStream(sim::Bytes memory_bytes)
      : layout_{mem::RegionLayout::for_total_bytes(memory_bytes)}, memory_bytes_{memory_bytes} {}

  [[nodiscard]] std::optional<proc::Ref> next() final {
    if (buffer_.empty()) {
      refill();
    }
    if (buffer_.empty()) {
      return std::nullopt;
    }
    const proc::Ref ref = buffer_.front();
    buffer_.pop_front();
    count_emit();
    return ref;
  }

  [[nodiscard]] sim::Bytes memory_bytes() const final { return memory_bytes_; }
  [[nodiscard]] const mem::RegionLayout& layout() const { return layout_; }

 protected:
  // Append more references; leaving the buffer empty ends the stream.
  virtual void refill() = 0;

  void emit(mem::PageId page, sim::Time cpu) {
    maybe_aux_touch();
    buffer_.push_back(proc::Ref{page, cpu, proc::Ref::Kind::Memory});
  }
  void emit_syscall(sim::Time cpu) {
    buffer_.push_back(proc::Ref{mem::kInvalidPage, cpu, proc::Ref::Kind::Syscall});
  }

  [[nodiscard]] mem::PageId heap_begin() const { return layout_.begin(mem::Region::Heap); }
  [[nodiscard]] std::uint64_t heap_pages() const { return layout_.pages(mem::Region::Heap); }

 private:
  // Real processes keep touching code and stack while they run; sprinkle
  // round-robin code-page touches so the "currently accessed" page set the
  // migration engines ship is meaningful.
  void maybe_aux_touch() {
    if (++since_aux_ < kAuxPeriod) {
      return;
    }
    since_aux_ = 0;
    const mem::PageId code =
        layout_.begin(mem::Region::Code) + (aux_round_ % layout_.pages(mem::Region::Code));
    buffer_.push_back(proc::Ref{code, sim::Time::from_ns(200), proc::Ref::Kind::Memory});
    if (aux_round_ % 8 == 0) {
      const mem::PageId stack =
          layout_.begin(mem::Region::Stack) + (aux_round_ % layout_.pages(mem::Region::Stack));
      buffer_.push_back(proc::Ref{stack, sim::Time::from_ns(200), proc::Ref::Kind::Memory});
    }
    ++aux_round_;
  }

  static constexpr std::uint64_t kAuxPeriod = 1024;
  mem::RegionLayout layout_;
  sim::Bytes memory_bytes_;
  std::deque<proc::Ref> buffer_;
  std::uint64_t since_aux_{0};
  std::uint64_t aux_round_{0};
};

}  // namespace ampom::workload
