#pragma once
// PTRANS model (parallel matrix transpose, A = A^T + B) — the second HPCC
// kernel the paper's evaluation skipped; provided as an extension. At page
// level a blocked transpose pairs one sequential stream (the row-major
// destination block) with a large-stride stream (the column-major source
// block), giving moderate spatial locality and little reuse.

#include <cstdint>

#include "workload/buffered_stream.hpp"

namespace ampom::workload {

struct PtransConfig {
  sim::Bytes memory{128 * sim::kMiB};  // two matrices A and B
  std::uint64_t block_pages{64};
  sim::Time cpu_per_ref{sim::Time::from_us(25)};
  sim::Time cpu_init{sim::Time::from_us(15)};
};

class Ptrans final : public BufferedStream {
 public:
  explicit Ptrans(PtransConfig config);

  [[nodiscard]] const char* name() const override { return "PTRANS"; }
  [[nodiscard]] std::uint64_t grid() const { return grid_; }

 protected:
  void refill() override;

 private:
  enum class Phase : std::uint8_t { Init, Transpose, Done };

  [[nodiscard]] mem::PageId block_page(mem::PageId base, std::uint64_t row,
                                       std::uint64_t col) const {
    return base + (row * grid_ + col) * block_pages_;
  }

  PtransConfig config_;
  std::uint64_t matrix_pages_;
  std::uint64_t block_pages_;
  std::uint64_t grid_;
  mem::PageId a_, b_;

  Phase phase_{Phase::Init};
  std::uint64_t init_pos_{0};
  std::uint64_t bi_{0};
  std::uint64_t bj_{0};
};

}  // namespace ampom::workload
