#pragma once
// HPCC STREAM model: high spatial locality, low temporal locality
// (paper Fig. 4, top-right of the HPCC locality space).
//
// The heap holds three equal arrays a, b, c. After migration the kernel
// first value-initializes all three (a fast sequential sweep — the phase
// whose remote faults dominate the lightweight schemes), then runs
// `iterations` passes of the four STREAM sub-kernels:
//   COPY  c = a          SCALE b = s*c
//   ADD   c = a + b      TRIAD a = b + s*c
// Page-level, each sub-kernel interleaves sequential walks over two or
// three arrays, producing the stride-2/stride-3 fault patterns AMPoM's
// analyzer detects.

#include <cstdint>

#include "workload/buffered_stream.hpp"

namespace ampom::workload {

struct StreamTriadConfig {
  sim::Bytes memory{128 * sim::kMiB};
  std::uint64_t iterations{4};
  sim::Time cpu_per_ref{sim::Time::from_us(20)};  // per page touch in passes
  sim::Time cpu_init{sim::Time::from_us(2)};      // per page in the init sweep
};

class StreamTriad final : public BufferedStream {
 public:
  explicit StreamTriad(StreamTriadConfig config);

  [[nodiscard]] const char* name() const override { return "STREAM"; }

 protected:
  void refill() override;

 private:
  enum class Phase : std::uint8_t { Init, Passes, Done };

  StreamTriadConfig config_;
  std::uint64_t array_pages_;
  mem::PageId a_, b_, c_;

  Phase phase_{Phase::Init};
  std::uint64_t init_pos_{0};
  std::uint64_t iter_{0};
  std::uint64_t sub_{0};  // 0..3: copy, scale, add, triad
  std::uint64_t pos_{0};
};

}  // namespace ampom::workload
