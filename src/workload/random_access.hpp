#pragma once
// HPCC RandomAccess (GUPS) model: low spatial, low temporal locality
// (paper Fig. 4, bottom-left).
//
// The heap is one large table of 64-bit words. Its trivial initialization
// (T[i] = i) is fused with allocation and therefore happens *before*
// migration — the post-migration reference stream starts with the random
// update phase, which is what makes RandomAccess the unfavourable case in
// the paper (§5.3: prefetching "fails to enhance the performance").
//
// Updates go to uniformly random pages. As in HPCC's implementation, the
// random stream is punctuated by short sequential walks (the stream-table /
// bucket bookkeeping that real GUPS implementations interleave with table
// updates); these are the chance sequential patterns the paper notes AMPoM
// picks up "once there are some sequential accesses appear in the lookback
// window by chance" (§5.3). A final sequential verification pass checks the
// table, as HPCC does.

#include <cstdint>

#include "simcore/rng.hpp"
#include "workload/buffered_stream.hpp"

namespace ampom::workload {

struct RandomAccessConfig {
  sim::Bytes memory{64 * sim::kMiB};
  double updates_per_page{8.0};
  // One sequential bookkeeping touch every `seq_interval` updates. At 3,
  // consecutive bookkeeping pages land four window slots apart — right at
  // the paper's dmax = 4 stride-detection horizon.
  std::uint64_t seq_interval{3};
  sim::Time cpu_per_update{sim::Time::from_us(120)};
  sim::Time cpu_seq{sim::Time::from_us(4)};
  sim::Time cpu_verify{sim::Time::from_us(3)};
  std::uint64_t seed{0x9E3779B97F4A7C15ULL};
};

class RandomAccess final : public BufferedStream {
 public:
  explicit RandomAccess(RandomAccessConfig config);

  [[nodiscard]] const char* name() const override { return "RandomAccess"; }
  [[nodiscard]] std::uint64_t total_updates() const { return total_updates_; }

 protected:
  void refill() override;

 private:
  enum class Phase : std::uint8_t { Updates, Verify, Done };

  RandomAccessConfig config_;
  sim::Rng rng_;
  std::uint64_t table_pages_;
  std::uint64_t total_updates_;
  Phase phase_{Phase::Updates};
  std::uint64_t done_updates_{0};
  std::uint64_t seq_cursor_{0};
  std::uint64_t verify_pos_{0};
};

}  // namespace ampom::workload
