#include "workload/ptrans.hpp"

#include <cmath>

namespace ampom::workload {

Ptrans::Ptrans(PtransConfig config) : BufferedStream{config.memory}, config_{config} {
  matrix_pages_ = heap_pages() / 2;
  block_pages_ = std::min(config.block_pages, matrix_pages_);
  grid_ = static_cast<std::uint64_t>(
      std::floor(std::sqrt(static_cast<double>(matrix_pages_ / block_pages_))));
  if (grid_ == 0) {
    grid_ = 1;
  }
  block_pages_ = matrix_pages_ / (grid_ * grid_);
  matrix_pages_ = grid_ * grid_ * block_pages_;
  a_ = heap_begin();
  b_ = a_ + matrix_pages_;
}

void Ptrans::refill() {
  switch (phase_) {
    case Phase::Init: {
      constexpr std::uint64_t kBatch = 2048;
      const std::uint64_t total = matrix_pages_ * 2;
      const std::uint64_t end = std::min(init_pos_ + kBatch, total);
      for (; init_pos_ < end; ++init_pos_) {
        emit(a_ + init_pos_, config_.cpu_init);
      }
      if (init_pos_ >= total) {
        phase_ = Phase::Transpose;
      }
      return;
    }
    case Phase::Transpose: {
      // One block step: A(bi, bj) = A(bj, bi)^T + B(bi, bj). The source
      // block sits at the transposed coordinates — a large stride from the
      // destination, interleaved page by page.
      const mem::PageId dst = block_page(a_, bi_, bj_);
      const mem::PageId src = block_page(a_, bj_, bi_);
      const mem::PageId add = block_page(b_, bi_, bj_);
      for (std::uint64_t p = 0; p < block_pages_; ++p) {
        emit(src + p, config_.cpu_per_ref);
        emit(add + p, config_.cpu_per_ref);
        emit(dst + p, config_.cpu_per_ref);
      }
      if (++bj_ >= grid_) {
        bj_ = 0;
        if (++bi_ >= grid_) {
          phase_ = Phase::Done;
        }
      }
      return;
    }
    case Phase::Done:
      return;
  }
}

}  // namespace ampom::workload
