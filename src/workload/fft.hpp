#pragma once
// HPCC FFT model: lower spatial locality than STREAM/DGEMM but high
// temporal locality (paper Fig. 4; §5.5 groups FFT's spatial locality with
// RandomAccess's).
//
// The heap holds one complex vector. After migration the kernel
// value-initializes it (sequential sweep), performs the bit-reversal
// permutation (a sequential cursor paired with a pseudo-random partner —
// spatially poor), then runs radix-2 butterfly stages. A stage with span
// `s` pages walks two interleaved sequential cursors at offset s, which at
// page level produces the stride-2 fault patterns AMPoM detects.

#include <cstdint>

#include "simcore/rng.hpp"
#include "workload/buffered_stream.hpp"

namespace ampom::workload {

struct FftConfig {
  sim::Bytes memory{64 * sim::kMiB};
  std::uint64_t max_stages{8};  // butterfly stages modeled
  sim::Time cpu_per_ref{sim::Time::from_us(40)};  // per page touch in stages
  sim::Time cpu_init{sim::Time::from_us(50)};     // random-value init, per page
  std::uint64_t seed{0xC2B2AE3D27D4EB4FULL};
};

class Fft final : public BufferedStream {
 public:
  explicit Fft(FftConfig config);

  [[nodiscard]] const char* name() const override { return "FFT"; }
  [[nodiscard]] std::uint64_t stages() const { return stages_; }

 protected:
  void refill() override;

 private:
  enum class Phase : std::uint8_t { Init, BitReversal, Stages, Done };

  FftConfig config_;
  sim::Rng rng_;
  std::uint64_t vector_pages_;
  std::uint64_t stages_;

  Phase phase_{Phase::Init};
  std::uint64_t init_pos_{0};
  std::uint64_t rev_pos_{0};
  std::uint64_t stage_{0};
  std::uint64_t stage_pos_{0};
};

}  // namespace ampom::workload
