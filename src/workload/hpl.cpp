#include "workload/hpl.hpp"

#include <cmath>

namespace ampom::workload {

Hpl::Hpl(HplConfig config) : BufferedStream{config.memory}, config_{config} {
  const std::uint64_t matrix_pages = heap_pages();
  block_pages_ = std::min(config.block_pages, matrix_pages);
  grid_ = static_cast<std::uint64_t>(
      std::floor(std::sqrt(static_cast<double>(matrix_pages / block_pages_))));
  if (grid_ == 0) {
    grid_ = 1;
  }
  block_pages_ = matrix_pages / (grid_ * grid_);
}

void Hpl::emit_block(std::uint64_t row, std::uint64_t col, sim::Time cpu) {
  const mem::PageId first = block_page(row, col);
  for (std::uint64_t p = 0; p < block_pages_; ++p) {
    emit(first + p, cpu);
  }
}

void Hpl::refill() {
  switch (phase_) {
    case Phase::Init: {
      constexpr std::uint64_t kBatch = 2048;
      const std::uint64_t total = grid_ * grid_ * block_pages_;
      const std::uint64_t end = std::min(init_pos_ + kBatch, total);
      for (; init_pos_ < end; ++init_pos_) {
        emit(heap_begin() + init_pos_, config_.cpu_init);
      }
      if (init_pos_ >= total) {
        phase_ = Phase::Factorize;
        ti_ = tj_ = k_ + 1;
      }
      return;
    }
    case Phase::Factorize: {
      if (!panel_done_) {
        // Panel: block column k from the diagonal down (pivot search + scale).
        for (std::uint64_t i = k_; i < grid_; ++i) {
          emit_block(i, k_, config_.cpu_panel);
        }
        panel_done_ = true;
        if (k_ + 1 >= grid_) {
          phase_ = Phase::Done;
        }
        return;
      }
      // One trailing-update step: A(ti, tj) -= A(ti, k) * A(k, tj).
      emit_block(k_, tj_, config_.cpu_per_ref);
      emit_block(ti_, k_, config_.cpu_per_ref);
      emit_block(ti_, tj_, config_.cpu_per_ref);
      if (++tj_ >= grid_) {
        tj_ = k_ + 1;
        if (++ti_ >= grid_) {
          ++k_;
          panel_done_ = false;
          ti_ = tj_ = k_ + 1;
          if (k_ >= grid_) {
            phase_ = Phase::Done;
          }
        }
      }
      return;
    }
    case Phase::Done:
      return;
  }
}

}  // namespace ampom::workload
