#include "workload/fft.hpp"

#include <algorithm>
#include <bit>

namespace ampom::workload {

Fft::Fft(FftConfig config) : BufferedStream{config.memory}, config_{config}, rng_{config.seed} {
  vector_pages_ = heap_pages();
  const auto log2_pages =
      static_cast<std::uint64_t>(std::bit_width(vector_pages_) > 0
                                     ? std::bit_width(vector_pages_) - 1
                                     : 0);
  stages_ = std::min(config.max_stages, log2_pages);
}

void Fft::refill() {
  constexpr std::uint64_t kBatch = 2048;

  switch (phase_) {
    case Phase::Init: {
      const std::uint64_t end = std::min(init_pos_ + kBatch, vector_pages_);
      for (; init_pos_ < end; ++init_pos_) {
        emit(heap_begin() + init_pos_, config_.cpu_init);
      }
      if (init_pos_ >= vector_pages_) {
        phase_ = stages_ > 0 ? Phase::BitReversal : Phase::Done;
      }
      return;
    }
    case Phase::BitReversal: {
      // Sequential cursor paired with a pseudo-random partner page.
      const std::uint64_t end = std::min(rev_pos_ + kBatch / 2, vector_pages_);
      for (; rev_pos_ < end; ++rev_pos_) {
        emit(heap_begin() + rev_pos_, config_.cpu_per_ref);
        emit(heap_begin() + rng_.uniform(vector_pages_), config_.cpu_per_ref);
      }
      if (rev_pos_ >= vector_pages_) {
        phase_ = Phase::Stages;
      }
      return;
    }
    case Phase::Stages: {
      // Stage k: butterflies pair page i with page i + span.
      const std::uint64_t span = std::max<std::uint64_t>(1, vector_pages_ >> (stage_ + 1));
      const std::uint64_t pairs = vector_pages_ - span;
      const std::uint64_t end = std::min(stage_pos_ + kBatch / 2, pairs);
      for (; stage_pos_ < end; ++stage_pos_) {
        emit(heap_begin() + stage_pos_, config_.cpu_per_ref);
        emit(heap_begin() + stage_pos_ + span, config_.cpu_per_ref);
      }
      if (stage_pos_ >= pairs) {
        stage_pos_ = 0;
        if (++stage_ >= stages_) {
          phase_ = Phase::Done;
        }
      }
      return;
    }
    case Phase::Done:
      return;
  }
}

}  // namespace ampom::workload
