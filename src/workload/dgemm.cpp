#include "workload/dgemm.hpp"

#include <cmath>
#include <stdexcept>

namespace ampom::workload {

Dgemm::Dgemm(DgemmConfig config) : BufferedStream{config.memory}, config_{config} {
  const sim::Bytes ws = config.working_set == 0 ? config.memory : config.working_set;
  if (ws > config.memory) {
    throw std::invalid_argument("Dgemm: working set exceeds allocated memory");
  }
  const std::uint64_t ws_pages = std::min(mem::pages_for_bytes(ws), heap_pages());
  matrix_pages_ = ws_pages / 3;
  if (matrix_pages_ == 0) {
    throw std::invalid_argument("Dgemm: working set too small for three matrices");
  }
  block_pages_ = std::min(config.block_pages, matrix_pages_);
  grid_ = static_cast<std::uint64_t>(
      std::floor(std::sqrt(static_cast<double>(matrix_pages_ / block_pages_))));
  if (grid_ == 0) {
    grid_ = 1;
  }
  // Refit the block size so grid^2 blocks cover (nearly) the whole matrix —
  // otherwise the truncated tail would act like an accidental small working
  // set and skew the full-working-set experiments.
  block_pages_ = matrix_pages_ / (grid_ * grid_);
  matrix_pages_ = grid_ * grid_ * block_pages_;
  a_ = heap_begin();
  b_ = a_ + matrix_pages_;
  c_ = b_ + matrix_pages_;
}

void Dgemm::emit_block(mem::PageId base, std::uint64_t row, std::uint64_t col) {
  const mem::PageId first = block_page(base, row, col);
  for (std::uint64_t p = 0; p < block_pages_; ++p) {
    emit(first + p, config_.cpu_per_ref);
  }
}

void Dgemm::refill() {
  if (phase_ == Phase::Init) {
    constexpr std::uint64_t kBatch = 2048;
    const std::uint64_t total = matrix_pages_ * 3;
    const std::uint64_t end = std::min(init_pos_ + kBatch, total);
    for (; init_pos_ < end; ++init_pos_) {
      emit(a_ + init_pos_, config_.cpu_init);
    }
    if (init_pos_ >= total) {
      phase_ = Phase::Gemm;
    }
    return;
  }
  if (phase_ == Phase::Done) {
    return;
  }

  // One (ii, jj, kk) block step per refill: C(ii,jj) += A(ii,kk) * B(kk,jj).
  if (kk_ == 0) {
    emit_block(c_, ii_, jj_);
  }
  emit_block(a_, ii_, kk_);
  emit_block(b_, kk_, jj_);

  if (++kk_ >= grid_) {
    kk_ = 0;
    if (++jj_ >= grid_) {
      jj_ = 0;
      if (++ii_ >= grid_) {
        phase_ = Phase::Done;
      }
    }
  }
}

}  // namespace ampom::workload
