#include "workload/random_access.hpp"

#include <cmath>

namespace ampom::workload {

RandomAccess::RandomAccess(RandomAccessConfig config)
    : BufferedStream{config.memory}, config_{config}, rng_{config.seed} {
  table_pages_ = heap_pages();
  total_updates_ = static_cast<std::uint64_t>(
      std::llround(config.updates_per_page * static_cast<double>(table_pages_)));
}

void RandomAccess::refill() {
  constexpr std::uint64_t kBatch = 2048;

  switch (phase_) {
    case Phase::Updates: {
      const std::uint64_t end = std::min(done_updates_ + kBatch, total_updates_);
      for (; done_updates_ < end; ++done_updates_) {
        emit(heap_begin() + rng_.uniform(table_pages_), config_.cpu_per_update);
        if (config_.seq_interval != 0 && done_updates_ % config_.seq_interval == 0) {
          emit(heap_begin() + (seq_cursor_ % table_pages_), config_.cpu_seq);
          ++seq_cursor_;
        }
      }
      if (done_updates_ >= total_updates_) {
        phase_ = Phase::Verify;
      }
      return;
    }
    case Phase::Verify: {
      const std::uint64_t end = std::min(verify_pos_ + kBatch, table_pages_);
      for (; verify_pos_ < end; ++verify_pos_) {
        emit(heap_begin() + verify_pos_, config_.cpu_verify);
      }
      if (verify_pos_ >= table_pages_) {
        phase_ = Phase::Done;
      }
      return;
    }
    case Phase::Done:
      return;
  }
}

}  // namespace ampom::workload
