#pragma once
// HPL (LINPACK) model — one of the HPCC kernels the paper's evaluation
// skipped ("network communication performance in parallel programs is not
// the focus of AMPoM", §5.1). Provided as an extension so the full suite
// can be run; in the HPCC locality chart HPL sits at high temporal AND
// high spatial locality.
//
// Blocked right-looking LU with partial pivoting over one square matrix:
// for each step k, factorize the panel (block column k, touched top to
// bottom with heavy compute), then update the trailing submatrix (blocks
// (i, j) with i, j > k, each combined with A(i,k) and A(k,j)). The active
// area shrinks as k advances — the fault stream is front-loaded and the
// reuse intense.

#include <cstdint>

#include "workload/buffered_stream.hpp"

namespace ampom::workload {

struct HplConfig {
  sim::Bytes memory{128 * sim::kMiB};
  std::uint64_t block_pages{96};
  sim::Time cpu_per_ref{sim::Time::from_us(60)};  // trailing-update touch
  sim::Time cpu_panel{sim::Time::from_us(90)};    // panel-factorization touch
  sim::Time cpu_init{sim::Time::from_us(40)};     // RNG matrix init, per page
};

class Hpl final : public BufferedStream {
 public:
  explicit Hpl(HplConfig config);

  [[nodiscard]] const char* name() const override { return "HPL"; }
  [[nodiscard]] std::uint64_t grid() const { return grid_; }

 protected:
  void refill() override;

 private:
  enum class Phase : std::uint8_t { Init, Factorize, Done };

  [[nodiscard]] mem::PageId block_page(std::uint64_t row, std::uint64_t col) const {
    return heap_begin() + (row * grid_ + col) * block_pages_;
  }
  void emit_block(std::uint64_t row, std::uint64_t col, sim::Time cpu);

  HplConfig config_;
  std::uint64_t block_pages_;
  std::uint64_t grid_;

  Phase phase_{Phase::Init};
  std::uint64_t init_pos_{0};
  std::uint64_t k_{0};   // elimination step
  std::uint64_t ti_{0};  // trailing row
  std::uint64_t tj_{0};  // trailing col
  bool panel_done_{false};
};

}  // namespace ampom::workload
