#include "workload/hpcc.hpp"

#include <stdexcept>

namespace ampom::workload {

std::unique_ptr<proc::ReferenceStream> make_hpcc_kernel(HpccKernel kernel,
                                                        std::uint64_t memory_mib,
                                                        std::uint64_t seed) {
  const sim::Bytes memory = memory_mib * sim::kMiB;
  switch (kernel) {
    case HpccKernel::Dgemm: {
      DgemmConfig cfg;
      cfg.memory = memory;
      return std::make_unique<Dgemm>(cfg);
    }
    case HpccKernel::Stream: {
      StreamTriadConfig cfg;
      cfg.memory = memory;
      return std::make_unique<StreamTriad>(cfg);
    }
    case HpccKernel::RandomAccess: {
      RandomAccessConfig cfg;
      cfg.memory = memory;
      cfg.seed ^= seed;
      return std::make_unique<RandomAccess>(cfg);
    }
    case HpccKernel::Fft: {
      FftConfig cfg;
      cfg.memory = memory;
      cfg.seed ^= seed;
      return std::make_unique<Fft>(cfg);
    }
  }
  throw std::invalid_argument("make_hpcc_kernel: unknown kernel");
}

std::unique_ptr<proc::ReferenceStream> make_small_ws_dgemm(std::uint64_t memory_mib,
                                                           std::uint64_t working_set_mib) {
  DgemmConfig cfg;
  cfg.memory = memory_mib * sim::kMiB;
  cfg.working_set = working_set_mib * sim::kMiB;
  return std::make_unique<Dgemm>(cfg);
}

}  // namespace ampom::workload
