#pragma once
// The paper's Table 1: HPCC problem sizes, memory sizes, and a factory that
// builds the corresponding kernel models.

#include <array>
#include <cstdint>
#include <memory>
#include <string_view>

#include "workload/dgemm.hpp"
#include "workload/fft.hpp"
#include "workload/random_access.hpp"
#include "workload/stream_triad.hpp"

namespace ampom::workload {

enum class HpccKernel : std::uint8_t { Dgemm, Stream, RandomAccess, Fft };

[[nodiscard]] constexpr const char* hpcc_kernel_name(HpccKernel k) {
  switch (k) {
    case HpccKernel::Dgemm:
      return "DGEMM";
    case HpccKernel::Stream:
      return "STREAM";
    case HpccKernel::RandomAccess:
      return "RandomAccess";
    case HpccKernel::Fft:
      return "FFT";
  }
  return "?";
}

struct HpccCase {
  std::uint64_t problem_size;  // the HPCC configuration parameter (Table 1)
  std::uint64_t memory_mib;    // the resulting process size (Table 1)
};

// Paper Table 1, verbatim.
inline constexpr std::array<HpccCase, 5> kDgemmCases{
    {{7600, 115}, {10850, 230}, {13350, 345}, {15450, 460}, {17350, 575}}};
inline constexpr std::array<HpccCase, 5> kStreamCases{
    {{7750, 115}, {11000, 230}, {13450, 345}, {15520, 460}, {17400, 575}}};
inline constexpr std::array<HpccCase, 4> kRandomAccessCases{
    {{8000, 65}, {11000, 129}, {16000, 260}, {23000, 513}}};
inline constexpr std::array<HpccCase, 4> kFftCases{
    {{8000, 65}, {11000, 129}, {16000, 260}, {23000, 513}}};

[[nodiscard]] std::unique_ptr<proc::ReferenceStream> make_hpcc_kernel(HpccKernel kernel,
                                                                      std::uint64_t memory_mib,
                                                                      std::uint64_t seed = 1);

// The §5.6 variant: DGEMM allocating `memory_mib` but working on
// `working_set_mib` of matrices.
[[nodiscard]] std::unique_ptr<proc::ReferenceStream> make_small_ws_dgemm(
    std::uint64_t memory_mib, std::uint64_t working_set_mib);

}  // namespace ampom::workload
