#include "workload/stream_triad.hpp"

namespace ampom::workload {

StreamTriad::StreamTriad(StreamTriadConfig config)
    : BufferedStream{config.memory}, config_{config} {
  array_pages_ = heap_pages() / 3;
  a_ = heap_begin();
  b_ = a_ + array_pages_;
  c_ = b_ + array_pages_;
}

void StreamTriad::refill() {
  constexpr std::uint64_t kBatch = 2048;

  if (phase_ == Phase::Init) {
    // Sequential value-initialization of a, b, c (one linear sweep).
    const std::uint64_t total = array_pages_ * 3;
    const std::uint64_t end = std::min(init_pos_ + kBatch, total);
    for (; init_pos_ < end; ++init_pos_) {
      emit(a_ + init_pos_, config_.cpu_init);
    }
    if (init_pos_ >= total) {
      phase_ = Phase::Passes;
    }
    return;
  }
  if (phase_ == Phase::Done) {
    return;
  }

  const std::uint64_t end = std::min(pos_ + kBatch, array_pages_);
  for (std::uint64_t i = pos_; i < end; ++i) {
    switch (sub_) {
      case 0:  // COPY: c = a
        emit(a_ + i, config_.cpu_per_ref);
        emit(c_ + i, config_.cpu_per_ref);
        break;
      case 1:  // SCALE: b = s * c
        emit(c_ + i, config_.cpu_per_ref);
        emit(b_ + i, config_.cpu_per_ref);
        break;
      case 2:  // ADD: c = a + b
        emit(a_ + i, config_.cpu_per_ref);
        emit(b_ + i, config_.cpu_per_ref);
        emit(c_ + i, config_.cpu_per_ref);
        break;
      default:  // TRIAD: a = b + s * c
        emit(b_ + i, config_.cpu_per_ref);
        emit(c_ + i, config_.cpu_per_ref);
        emit(a_ + i, config_.cpu_per_ref);
        break;
    }
  }
  pos_ = end;
  if (pos_ >= array_pages_) {
    pos_ = 0;
    if (++sub_ >= 4) {
      sub_ = 0;
      if (++iter_ >= config_.iterations) {
        phase_ = Phase::Done;
      }
    }
  }
}

}  // namespace ampom::workload
