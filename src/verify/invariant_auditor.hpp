#pragma once
// InvariantAuditor: the run-wide correctness oracle for chaos scenarios.
//
// The per-structure checks that already exist (PageLedger throws on a bad
// transfer, Deputy throws on an unservable request) each see one object;
// none of them can say "this page is now owned by two nodes" or "this
// process will never run again". The auditor can: it registers as the
// ClusterSim's WorldObserver and cross-checks the *global* state — every
// process's address space against its deputy's HPT against the ownership
// ledger — at configurable epochs and at the transition points where the
// protocol is most likely to lose state (migration commit, migration abort,
// rehoming, run end).
//
// Invariant catalog (the *why* behind each lives in DESIGN.md §13):
//   I1  page-ownership conservation — every page has exactly one owner, and
//       the owner is consistent with both page tables; an aborted migration
//       leaves nothing owned by the dead destination.
//   I2  process conservation — reference progress is monotone, freezes at
//       finish, and a migrant stranded on a crashed node is Frozen or
//       Finished (never silently executing on a dead host).
//   I3  deputy/migrant pairing — a settled migrant runs exactly where its
//       deputy believes it runs.
//   I4  sequence monotonicity — per (process, node) paging channel, request
//       ids never go backwards.
//   I5  heartbeat convergence — once faults quiesce and a majority survives,
//       the surviving views agree with ground truth about who is dead.
//
// Zero-overhead-when-off: constructing no auditor leaves ClusterSim's
// observer null and schedules nothing — runs are bit-identical to pre-PR
// binaries. With an auditor, epoch events are read-only and FIFO-appended,
// so they never reorder the simulation's own events either.

#include <cstdint>
#include <deque>
#include <map>
#include <stdexcept>
#include <string>

#include "balancer/cluster_sim.hpp"
#include "verify/observer.hpp"

namespace ampom::verify {

struct AuditorConfig {
  // Period of the standing sweep over all processes (zero = trigger events
  // only). The epoch event re-arms itself for the whole run; ClusterSim
  // halts the simulator when every process finishes, so it never keeps a
  // run alive.
  sim::Time epoch{sim::Time::from_ms(25)};
  bool throw_on_violation{true};  // false: count + record, keep running
  std::size_t trail_limit{64};    // audit-trail ring size (events kept)
};

// Thrown on the first violation when throw_on_violation is set. what() is
// the violation plus the recent audit trail — the context a repro needs.
class InvariantViolation : public std::runtime_error {
 public:
  explicit InvariantViolation(const std::string& what) : std::runtime_error(what) {}
};

class InvariantAuditor final : public WorldObserver {
 public:
  // Registers as `world`'s observer and, if config.epoch > 0, starts the
  // epoch sweep. The auditor must outlive the run.
  explicit InvariantAuditor(balancer::ClusterSim& world, AuditorConfig config = {});
  ~InvariantAuditor() override;

  [[nodiscard]] std::uint64_t epochs_run() const { return epochs_run_; }
  [[nodiscard]] std::uint64_t checks_run() const { return checks_run_; }
  [[nodiscard]] std::uint64_t violations() const { return violations_; }
  // First violation message ("" if none) — the headline a repro file carries.
  [[nodiscard]] const std::string& first_violation() const { return first_violation_; }
  // Recent events, oldest first, one per line.
  [[nodiscard]] std::string trail() const;

  // WorldObserver hooks (trigger events).
  void on_started(balancer::ProcessHost& host) override;
  void on_migration_committed(balancer::ProcessHost& host, net::NodeId src,
                              net::NodeId dst) override;
  void on_migration_aborted(balancer::ProcessHost& host, net::NodeId src,
                            net::NodeId dst) override;
  void on_node_crashed(net::NodeId node) override;
  void on_node_restored(net::NodeId node) override;
  void on_rehomed(balancer::ProcessHost& host) override;
  void on_finished(balancer::ProcessHost& host) override;
  void on_run_end() override;

 private:
  // Per-process bookkeeping carried between checks.
  struct HostState {
    std::uint64_t prev_refs{0};
    std::uint64_t refs_at_finish{0};
    bool finished_seen{false};
    std::map<net::NodeId, std::uint64_t> last_request_id;
  };

  void record(std::string line);
  void violation(const std::string& message);
  void epoch_sweep();

  // I1 + the pairing half of I3 for one process. Strict mode also audits a
  // process that is mid-migration or not yet started (trigger events call it
  // at instants where the state must already be settled).
  void audit_pages(balancer::ProcessHost& host);
  // I2 progress/zombie checks; `at_run_end` additionally demands the stream
  // was fully consumed.
  void audit_process(balancer::ProcessHost& host, bool at_run_end);
  // I4 for every paging channel of one process.
  void audit_sequences(balancer::ProcessHost& host);
  // I5, gated on fault quiescence and a surviving majority.
  void audit_convergence();

  balancer::ClusterSim& world_;
  AuditorConfig config_;
  std::map<std::uint64_t, HostState> states_;
  std::deque<std::string> trail_;
  std::uint64_t epochs_run_{0};
  std::uint64_t checks_run_{0};
  std::uint64_t violations_{0};
  std::string first_violation_;
};

}  // namespace ampom::verify
