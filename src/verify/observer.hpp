#pragma once
// WorldObserver: the hook surface ClusterSim exposes to the verification
// layer.
//
// Dependency-free on purpose: ampom_balancer includes this header (it is
// just an interface) without linking ampom_verify, and the concrete
// InvariantAuditor lives above both. Every hook has an empty default body
// and ClusterSim guards each call site with a null check, so a world with
// no observer runs the exact pre-hook event sequence — zero overhead, and
// bit-identical outputs, when verification is off.
//
// Hooks fire inside the event that caused the transition, after the world's
// own bookkeeping settled — the observer sees each post-state exactly once,
// at the instant it became true.

#include "net/message.hpp"

namespace ampom::balancer {
class ProcessHost;
}

namespace ampom::verify {

class WorldObserver {
 public:
  WorldObserver() = default;
  WorldObserver(const WorldObserver&) = delete;
  WorldObserver& operator=(const WorldObserver&) = delete;
  virtual ~WorldObserver() = default;

  // A process started executing at its home node.
  virtual void on_started(balancer::ProcessHost& /*host*/) {}
  // A migration committed: the process resumed at `dst`.
  virtual void on_migration_committed(balancer::ProcessHost& /*host*/, net::NodeId /*src*/,
                                      net::NodeId /*dst*/) {}
  // A migration aborted (destination lost): the process resumed at `src`
  // and the abort rollback must have left the source image whole.
  virtual void on_migration_aborted(balancer::ProcessHost& /*host*/, net::NodeId /*src*/,
                                    net::NodeId /*dst*/) {}
  virtual void on_node_crashed(net::NodeId /*node*/) {}
  virtual void on_node_restored(net::NodeId /*node*/) {}
  // A stranded migrant was re-established at its home node.
  virtual void on_rehomed(balancer::ProcessHost& /*host*/) {}
  virtual void on_finished(balancer::ProcessHost& /*host*/) {}
  // Every spawned process finished; final conservation checks run here.
  virtual void on_run_end() {}
};

}  // namespace ampom::verify
