#include "verify/invariant_auditor.hpp"

#include <utility>

#include "simcore/fmt.hpp"

namespace ampom::verify {

namespace {

using mem::PageState;
using Loc = mem::PageTable::Loc;

const char* loc_name(Loc loc) {
  switch (loc) {
    case Loc::Absent:
      return "absent";
    case Loc::Here:
      return "here";
    case Loc::Remote:
      return "remote";
    case Loc::Incoming:
      return "incoming";
  }
  return "?";
}

}  // namespace

InvariantAuditor::InvariantAuditor(balancer::ClusterSim& world, AuditorConfig config)
    : world_{world}, config_{config} {
  world_.set_observer(this);
  if (config_.epoch > sim::Time::zero()) {
    world_.simulator().schedule_after(config_.epoch, [this] { epoch_sweep(); });
  }
}

InvariantAuditor::~InvariantAuditor() {
  if (world_.observer() == this) {
    world_.set_observer(nullptr);
  }
}

std::string InvariantAuditor::trail() const {
  std::string out;
  for (const std::string& line : trail_) {
    out += line;
    out += '\n';
  }
  return out;
}

void InvariantAuditor::record(std::string line) {
  trail_.push_back(
      sim::strfmt("[%10.3f ms] %s", world_.simulator().now().ms(), line.c_str()));
  while (trail_.size() > config_.trail_limit) {
    trail_.pop_front();
  }
}

void InvariantAuditor::violation(const std::string& message) {
  ++violations_;
  record("VIOLATION: " + message);
  if (first_violation_.empty()) {
    first_violation_ = message;
  }
  if (config_.throw_on_violation) {
    throw InvariantViolation(message + "\n--- audit trail (oldest first) ---\n" + trail());
  }
}

void InvariantAuditor::epoch_sweep() {
  ++epochs_run_;
  for (const auto& host : world_.hosts()) {
    // A process mid-migration (or not yet started) is legitimately between
    // consistent snapshots: the engines move ownership and table entries in
    // separate events. The trigger hooks audit it the instant it settles.
    if (host->started() && !host->migrating()) {
      audit_pages(*host);
    }
    audit_process(*host, /*at_run_end=*/false);
    audit_sequences(*host);
  }
  audit_convergence();
  world_.simulator().schedule_after(config_.epoch, [this] { epoch_sweep(); });
}

void InvariantAuditor::audit_pages(balancer::ProcessHost& host) {
  ++checks_run_;
  const proc::Process& process = host.process();
  const mem::AddressSpace& aspace = process.aspace();
  const mem::PageTable& hpt = host.deputy().hpt();
  const mem::PageLedger& ledger = host.ledger();
  const net::NodeId home = host.home_node();
  const net::NodeId cur = host.current_node();

  const auto fail = [&](mem::PageId page, const char* why) {
    violation(sim::strfmt(
        "I1 pid %llu page %llu: %s (owner=node %u, aspace=%s, hpt=%s, home=%u, cur=%u)",
        static_cast<unsigned long long>(host.pid()), static_cast<unsigned long long>(page), why,
        ledger.owner(page), mem::page_state_name(aspace.state(page)),
        loc_name(hpt.loc(page)), home, cur));
  };

  for (mem::PageId page = 0; page < aspace.page_count(); ++page) {
    const net::NodeId owner = ledger.owner(page);
    const PageState as = aspace.state(page);
    const Loc loc = hpt.loc(page);

    if (cur == home) {
      // At home every page is whole again: the home node owns it, the image
      // holds it (or never allocated / locally swapped it), and the HPT has
      // nothing outstanding.
      if (owner != home) {
        fail(page, "page of an at-home process owned elsewhere");
      }
      if (as != PageState::Local && as != PageState::Unallocated && as != PageState::Swapped) {
        fail(page, "at-home page in a migration state");
      }
      if (loc != Loc::Here && loc != Loc::Absent) {
        fail(page, "at-home HPT entry still points off-node");
      }
      continue;
    }

    // Migrated: exactly one of four consistent shapes per HPT entry.
    switch (loc) {
      case Loc::Here:
        // Deputy holds it: home owns it, migrant faults on it (or waits).
        if (owner != home) {
          fail(page, "deputy-held page not owned by home");
        }
        if (as != PageState::Remote && as != PageState::InFlight) {
          fail(page, "deputy-held page also materialized at the migrant");
        }
        break;
      case Loc::Remote:
        // Shipped: the migrant owns it and must have (or be receiving) it.
        if (owner != cur) {
          fail(page, "shipped page not owned by the migrant");
        }
        if (as == PageState::Remote || as == PageState::Unallocated) {
          fail(page, "shipped page lost — neither side holds a copy");
        }
        break;
      case Loc::Incoming:
        // Re-migration flush in flight back to home: the migrant must not
        // think it still has it.
        if (as != PageState::Remote) {
          fail(page, "incoming-flush page still materialized at the migrant");
        }
        break;
      case Loc::Absent:
        // Created on touch (MPT-only update, §2.2) or never allocated:
        // ownership never left home.
        if (owner != home) {
          fail(page, "HPT-absent page owned off-home");
        }
        if (as != PageState::Local && as != PageState::Unallocated &&
            as != PageState::Swapped) {
          fail(page, "HPT-absent page in a transfer state");
        }
        break;
    }

    // Leak catch: a bystander node may own a page only while a flush to home
    // is in flight (abandoned flushes included).
    if (owner != home && owner != cur && loc != Loc::Incoming) {
      fail(page, "page owned by a node the process neither lives on nor calls home");
    }
  }

  // I3: a settled migrant runs exactly where its deputy serves it.
  if (cur != home && !host.migrating() && host.deputy().migrant_node() != cur) {
    violation(sim::strfmt(
        "I3 pid %llu: deputy serves node %u but the process runs on node %u",
        static_cast<unsigned long long>(host.pid()), host.deputy().migrant_node(), cur));
  }
}

void InvariantAuditor::audit_process(balancer::ProcessHost& host, bool at_run_end) {
  ++checks_run_;
  HostState& st = states_[host.pid()];
  const std::uint64_t refs = host.stats().refs_consumed;
  if (refs < st.prev_refs) {
    violation(sim::strfmt("I2 pid %llu: reference progress went backwards (%llu -> %llu)",
                          static_cast<unsigned long long>(host.pid()),
                          static_cast<unsigned long long>(st.prev_refs),
                          static_cast<unsigned long long>(refs)));
  }
  st.prev_refs = refs;

  if (host.finished()) {
    if (!st.finished_seen) {
      st.finished_seen = true;
      st.refs_at_finish = refs;
    } else if (refs != st.refs_at_finish) {
      violation(sim::strfmt("I2 pid %llu: executed %llu references after finishing",
                            static_cast<unsigned long long>(host.pid()),
                            static_cast<unsigned long long>(refs - st.refs_at_finish)));
    }
  }

  // Zombie catch: a migrant whose host died is Frozen until rehomed (or was
  // already Finished) — it must never keep executing on a dead node.
  if (host.process().migrated() && !host.migrating() &&
      world_.node_crashed(host.current_node())) {
    const proc::ProcState state = host.process().state();
    if (state != proc::ProcState::Frozen && state != proc::ProcState::Finished) {
      violation(sim::strfmt("I2 pid %llu: executing on crashed node %u",
                            static_cast<unsigned long long>(host.pid()),
                            host.current_node()));
    }
  }

  if (at_run_end && host.finished() && refs != host.process().stream().emitted()) {
    violation(sim::strfmt(
        "I2 pid %llu: finished having consumed %llu refs but the stream emitted %llu",
        static_cast<unsigned long long>(host.pid()), static_cast<unsigned long long>(refs),
        static_cast<unsigned long long>(host.process().stream().emitted())));
  }
}

void InvariantAuditor::audit_sequences(balancer::ProcessHost& host) {
  ++checks_run_;
  HostState& st = states_[host.pid()];
  for (net::NodeId node = 0; node < world_.node_count(); ++node) {
    const proc::PagingClient* client = host.paging_client(node);
    if (client == nullptr) {
      continue;
    }
    const std::uint64_t next = client->next_request_id();
    std::uint64_t& last = st.last_request_id[node];
    if (next < last) {
      violation(sim::strfmt(
          "I4 pid %llu node %u: paging request ids went backwards (%llu -> %llu)",
          static_cast<unsigned long long>(host.pid()), node,
          static_cast<unsigned long long>(last), static_cast<unsigned long long>(next)));
    }
    last = next;
  }
}

void InvariantAuditor::audit_convergence() {
  ++checks_run_;
  const driver::ReliabilityConfig& rel = world_.reliability();
  if (!rel.enabled || !rel.detection.enabled) {
    return;
  }
  // Quiescence gate: dead_periods of heartbeat silence build the verdict,
  // plus margin for the heartbeats themselves to flow again after a heal.
  const sim::Time settle = world_.infod_period().scaled(rel.detection.dead_periods + 4.0);
  if (world_.simulator().now() < world_.last_fault_at() + settle) {
    return;
  }
  // Consensus is a zone-majority vote (the zone is the gossip domain), so
  // the surviving-majority gate and the target sweep are per zone too; a
  // single-zone world degenerates to the original cluster-wide check.
  const cluster::ClusterView& view = world_.view();
  const cluster::Topology& topo = view.topology();
  for (std::uint32_t zone = 0; zone < topo.zones; ++zone) {
    std::size_t crashed = 0;
    for (net::NodeId node = topo.zone_begin(zone); node < topo.zone_end(zone); ++node) {
      if (world_.node_crashed(node)) {
        ++crashed;
      }
    }
    // A crashed observer hears nobody and votes everyone dead; only a
    // strict surviving majority makes the consensus meaningful.
    if (crashed * 2 >= topo.nodes_per_zone) {
      continue;
    }
    for (net::NodeId target = topo.zone_begin(zone); target < topo.zone_end(zone); ++target) {
      const bool dead = world_.node_crashed(target);
      const cluster::PeerHealth health = view.health(target);
      if (dead && health != cluster::PeerHealth::kDead) {
        violation(sim::strfmt(
            "I5 node %u: crashed, faults quiesced, but the survivors have not converged on "
            "dead",
            target));
      }
      if (!dead && health == cluster::PeerHealth::kDead) {
        violation(sim::strfmt("I5 node %u: alive but condemned by the surviving majority",
                              target));
      }
    }
  }
}

void InvariantAuditor::on_started(balancer::ProcessHost& host) {
  record(sim::strfmt("started pid %llu (%s) at node %u",
                     static_cast<unsigned long long>(host.pid()), host.label().c_str(),
                     host.current_node()));
  states_[host.pid()];  // materialize the tracking slot
}

void InvariantAuditor::on_migration_committed(balancer::ProcessHost& host, net::NodeId src,
                                              net::NodeId dst) {
  record(sim::strfmt("migration committed pid %llu: node %u -> node %u",
                     static_cast<unsigned long long>(host.pid()), src, dst));
  audit_pages(host);
  audit_process(host, /*at_run_end=*/false);
  audit_sequences(host);
}

void InvariantAuditor::on_migration_aborted(balancer::ProcessHost& host, net::NodeId src,
                                            net::NodeId dst) {
  record(sim::strfmt("migration aborted pid %llu: node %u -> node %u",
                     static_cast<unsigned long long>(host.pid()), src, dst));
  // The abort contract: the destination gained nothing. (Guard dst != home —
  // a hypothetical homeward hop aborts with home legitimately owning pages.)
  if (dst != host.home_node()) {
    const mem::PageLedger& ledger = host.ledger();
    for (mem::PageId page = 0; page < ledger.page_count(); ++page) {
      if (ledger.owner(page) == dst) {
        violation(sim::strfmt(
            "I1 pid %llu page %llu: aborted migration left the page owned by the lost "
            "destination (node %u)",
            static_cast<unsigned long long>(host.pid()),
            static_cast<unsigned long long>(page), dst));
      }
    }
  }
  audit_pages(host);
  audit_process(host, /*at_run_end=*/false);
}

void InvariantAuditor::on_node_crashed(net::NodeId node) {
  record(sim::strfmt("node %u crashed", node));
}

void InvariantAuditor::on_node_restored(net::NodeId node) {
  record(sim::strfmt("node %u restored", node));
}

void InvariantAuditor::on_rehomed(balancer::ProcessHost& host) {
  record(sim::strfmt("rehomed pid %llu to node %u",
                     static_cast<unsigned long long>(host.pid()), host.current_node()));
  audit_pages(host);
  audit_process(host, /*at_run_end=*/false);
}

void InvariantAuditor::on_finished(balancer::ProcessHost& host) {
  record(sim::strfmt("finished pid %llu at node %u (refs=%llu)",
                     static_cast<unsigned long long>(host.pid()), host.current_node(),
                     static_cast<unsigned long long>(host.stats().refs_consumed)));
  audit_process(host, /*at_run_end=*/false);
}

void InvariantAuditor::on_run_end() {
  record("run end: every process finished");
  for (const auto& host : world_.hosts()) {
    if (!host->migrating()) {
      audit_pages(*host);
    }
    audit_process(*host, /*at_run_end=*/true);
    audit_sequences(*host);
  }
}

}  // namespace ampom::verify
