#pragma once
// Ack'd chunk transfer: the reliable migration protocol's transport.
//
// The source sends the freeze-time chunks with sequence numbers; the
// destination's node router acks each one (control-size MigrationAck). A
// source-side timer armed at the predicted arrival of the last outstanding
// chunk plus an ack grace period retransmits whatever is still unacked,
// backing off per round; exhausting max_retries declares the destination
// lost. Delivery completion is judged at the destination (all chunks
// actually received), so the engine resumes the process only on state it
// really has — on a fault-free run that instant equals the classic
// predicted-arrival timeline.
//
// Two-generals note: if the destination received everything but every ack
// was lost, a real system could not distinguish this from a dead peer. The
// simulator can — the transfer object sees both ends — and treats it as
// delivered (the destination has resumed the process; unfreezing the source
// too would fork it). The retransmit/timeout accounting still records the
// wasted rounds.

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "migration/engine.hpp"

namespace ampom::migration {

struct ReliableTransferStats {
  std::uint64_t chunk_retransmits{0};
  std::uint64_t pages_retransmitted{0};
  sim::Bytes bytes_retransmitted{0};
  std::uint64_t duplicate_chunks{0};  // chunks the destination had already seen
  std::uint64_t timeout_rounds{0};
};

class ReliableTransfer : public std::enable_shared_from_this<ReliableTransfer> {
 public:
  struct Item {
    net::MigrationChunk::Kind kind{net::MigrationChunk::Kind::Pcb};
    std::uint64_t item_count{0};
    sim::Bytes wire_bytes{0};
    bool counts_pages{false};  // item_count contributes to page accounting
  };

  // Starts the transfer now. `on_delivered` fires when the last chunk lands
  // at the destination (destination-side time); `on_lost` fires at the
  // source after max_retries exhausted timeout rounds with the destination
  // never having completed. Exactly one of the two fires, once.
  static void run(const MigrationContext& ctx, std::vector<Item> items,
                  std::function<void(sim::Time, const ReliableTransferStats&)> on_delivered,
                  std::function<void(const ReliableTransferStats&)> on_lost);

 private:
  ReliableTransfer(const MigrationContext& ctx, std::vector<Item> items);

  void send_round();
  void on_chunk(const net::MigrationChunk& chunk);
  void on_ack(const net::MigrationAck& ack);
  void on_timeout();
  void cleanup();

  sim::Simulator& sim_;
  net::Fabric& fabric_;
  proc::WireCosts wire_;
  net::NodeId src_;
  net::NodeId dst_;
  std::uint64_t pid_;
  cluster::Node* src_node_;
  cluster::Node* dst_node_;
  MigrationReliability config_;
  trace::TraceRecorder* trace_;

  std::vector<Item> items_;
  std::vector<bool> acked_;
  std::vector<bool> received_;
  std::uint64_t acked_count_{0};
  std::uint64_t received_count_{0};
  std::uint32_t rounds_{0};
  bool delivered_{false};
  bool finished_{false};
  sim::Simulator::EventId timer_;
  ReliableTransferStats stats_;
  std::shared_ptr<ReliableTransfer> self_;  // keeps the run alive until done
  std::function<void(sim::Time, const ReliableTransferStats&)> on_delivered_;
  std::function<void(const ReliableTransferStats&)> on_lost_;
};

}  // namespace ampom::migration
