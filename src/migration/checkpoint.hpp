#pragma once
// Checkpoint/restart placement — the alternative the paper's introduction
// positions process migration against (§1: after migration research stalled,
// "research focus was then shifted to process checkpointing (e.g. MIST),
// which offers a compromise between ease of implementation and versatility"
// — but "needs a file server", unlike migration).
//
// The process freezes, its full image is written to a file-server node,
// and the destination restarts it by reading the image back. The freeze
// spans BOTH transfers (plus the server's disk), which is why checkpointing
// is the slowest placement mechanism here — the quantitative footnote to
// the paper's motivation.

#include <cstdint>

#include "migration/engine.hpp"

namespace ampom::migration {

class CheckpointRestartEngine final : public MigrationEngine {
 public:
  struct Config {
    net::NodeId file_server{2};
    // Sustained disk bandwidth at the file server (2008-era RAID: ~60 MB/s
    // writes, a bit faster reads).
    sim::Bandwidth disk_write{sim::Bandwidth::bytes_per_sec(60 * 1000 * 1000)};
    sim::Bandwidth disk_read{sim::Bandwidth::bytes_per_sec(80 * 1000 * 1000)};
  };

  CheckpointRestartEngine() : CheckpointRestartEngine{Config{}} {}
  explicit CheckpointRestartEngine(Config config);

  [[nodiscard]] const char* name() const override { return "Checkpoint"; }

  void execute(MigrationContext ctx, std::function<void(MigrationResult)> done) override;

 private:
  Config config_;
};

}  // namespace ampom::migration
