#include "migration/engine.hpp"

#include <stdexcept>

#include "trace/trace.hpp"

namespace ampom::migration {

void MigrationEngine::finish_resume(MigrationContext& ctx, MigrationResult result,
                                    const std::function<void(MigrationResult)>& done) {
  ctx.process.set_current_node(ctx.dst);
  ctx.deputy.begin_service(ctx.dst);
  if (ctx.on_before_resume) {
    ctx.on_before_resume();
  }
  ctx.executor.resume_migrated(ctx.dst_costs);
  if (ctx.trace != nullptr) {
    ctx.trace->instant(trace::Category::kMigration, "resume", ctx.sim.now(), ctx.dst,
                       ctx.process.pid(), result.pages_transferred);
    ctx.trace->async_end(trace::Category::kMigration, "migration", ctx.sim.now(), ctx.src,
                         ctx.process.pid(), result.pages_transferred);
  }
  if (done) {
    done(result);
  }
}

void MigrationEngine::abort_unfreeze(MigrationContext& ctx, MigrationResult result,
                                     MigrationOutcome outcome,
                                     const std::function<void(MigrationResult)>& done) {
  result.outcome = outcome;
  result.resume_at = ctx.sim.now();
  result.pages_transferred = 0;
  ctx.executor.resume_migrated(ctx.src_costs);
  if (ctx.trace != nullptr) {
    ctx.trace->instant(trace::Category::kMigration, "abort_unfreeze", ctx.sim.now(), ctx.src,
                       ctx.process.pid(), static_cast<std::uint64_t>(outcome));
    ctx.trace->async_end(trace::Category::kMigration, "migration", ctx.sim.now(), ctx.src,
                         ctx.process.pid());
  }
  if (done) {
    done(result);
  }
}

void migrate_process(MigrationContext ctx, MigrationEngine& engine,
                     std::function<void(MigrationResult)> done) {
  if (ctx.src == ctx.dst) {
    throw std::invalid_argument("migrate_process: source and destination are the same node");
  }
  if (ctx.trace != nullptr) {
    ctx.trace->async_begin(trace::Category::kMigration, "migration", ctx.sim.now(), ctx.src,
                           ctx.process.pid(), ctx.dst);
  }
  if (!engine.needs_freeze_first()) {
    engine.execute(std::move(ctx), std::move(done));
    return;
  }
  proc::Executor& executor = ctx.executor;
  executor.request_freeze(
      [&engine, ctx = std::move(ctx), done = std::move(done)]() mutable {
        if (ctx.trace != nullptr) {
          ctx.trace->instant(trace::Category::kMigration, "frozen", ctx.sim.now(), ctx.src,
                             ctx.process.pid());
        }
        engine.execute(std::move(ctx), std::move(done));
      });
}

}  // namespace ampom::migration
