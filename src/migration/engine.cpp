#include "migration/engine.hpp"

#include <stdexcept>

#include "trace/trace.hpp"

namespace ampom::migration {

void MigrationEngine::finish_resume(MigrationContext& ctx, MigrationResult result,
                                    const std::function<void(MigrationResult)>& done) {
  // Reliable-mode ack chains can deliver the final ack on the source node's
  // partition. The commit itself mutates cross-partition state (the process's
  // placement, the deputy's service target, the world's load accounting via
  // `done`), so hop to the barrier context first; the hop is a deterministic
  // function of the event schedule, not of the worker count.
  if (ctx.sim.partitioned() && ctx.sim.current_partition() != 0) {
    ctx.sim.post_global(
        [ctx, result, done]() mutable { finish_resume(ctx, result, done); });
    return;
  }
  ctx.process.set_current_node(ctx.dst);
  ctx.deputy.begin_service(ctx.dst);
  if (ctx.on_before_resume) {
    ctx.on_before_resume();
  }
  ctx.executor.resume_migrated(ctx.dst_costs);
  if (ctx.trace != nullptr) {
    ctx.trace->instant(trace::Category::kMigration, "resume", ctx.sim.now(), ctx.dst,
                       ctx.process.pid(), result.pages_transferred);
    ctx.trace->async_end(trace::Category::kMigration, "migration", ctx.sim.now(), ctx.src,
                         ctx.process.pid(), result.pages_transferred);
  }
  if (done) {
    done(result);
  }
}

void MigrationEngine::abort_unfreeze(MigrationContext& ctx, MigrationResult result,
                                     MigrationOutcome outcome,
                                     const std::function<void(MigrationResult)>& done) {
  // Same barrier hop as finish_resume: the abort accounting in `done` is
  // world-global state.
  if (ctx.sim.partitioned() && ctx.sim.current_partition() != 0) {
    ctx.sim.post_global([ctx, result, outcome, done]() mutable {
      abort_unfreeze(ctx, result, outcome, done);
    });
    return;
  }
  result.outcome = outcome;
  result.resume_at = ctx.sim.now();
  result.pages_transferred = 0;
  ctx.executor.resume_migrated(ctx.src_costs);
  if (ctx.trace != nullptr) {
    ctx.trace->instant(trace::Category::kMigration, "abort_unfreeze", ctx.sim.now(), ctx.src,
                       ctx.process.pid(), static_cast<std::uint64_t>(outcome));
    ctx.trace->async_end(trace::Category::kMigration, "migration", ctx.sim.now(), ctx.src,
                         ctx.process.pid());
  }
  if (done) {
    done(result);
  }
}

void migrate_process(MigrationContext ctx, MigrationEngine& engine,
                     std::function<void(MigrationResult)> done) {
  if (ctx.src == ctx.dst) {
    throw std::invalid_argument("migrate_process: source and destination are the same node");
  }
  if (ctx.trace != nullptr) {
    ctx.trace->async_begin(trace::Category::kMigration, "migration", ctx.sim.now(), ctx.src,
                           ctx.process.pid(), ctx.dst);
  }
  // Engines drive the whole transfer from the home/deputy side and commit by
  // touching world-global state, so in partitioned runs they execute in the
  // barrier context. post_global is inline when already there (the balancer
  // tick path) and defers to the next window fence when the request
  // originated inside a partition (the freeze grant fires inside a burst
  // event on the process's partition).
  if (!engine.needs_freeze_first()) {
    sim::Simulator& sim = ctx.sim;
    if (sim.partitioned()) {
      sim.post_global([&engine, ctx = std::move(ctx), done = std::move(done)]() mutable {
        engine.execute(std::move(ctx), std::move(done));
      });
    } else {
      engine.execute(std::move(ctx), std::move(done));
    }
    return;
  }
  proc::Executor& executor = ctx.executor;
  executor.request_freeze(
      [&engine, ctx = std::move(ctx), done = std::move(done)]() mutable {
        if (ctx.trace != nullptr) {
          ctx.trace->instant(trace::Category::kMigration, "frozen", ctx.sim.now(), ctx.src,
                             ctx.process.pid());
        }
        sim::Simulator& sim = ctx.sim;
        if (sim.partitioned()) {
          sim.post_global(
              [&engine, ctx = std::move(ctx), done = std::move(done)]() mutable {
            engine.execute(std::move(ctx), std::move(done));
          });
        } else {
          engine.execute(std::move(ctx), std::move(done));
        }
      });
}

}  // namespace ampom::migration
