#pragma once
// The unmodified-openMosix mechanism: transfer ALL dirty pages during the
// freeze (paper §2.1, left panel of Fig. 2). Execution resumes only once
// every page has arrived; there are never remote page faults afterwards.

#include "migration/engine.hpp"

namespace ampom::migration {

class FullCopyEngine final : public MigrationEngine {
 public:
  // Pages are packed and shipped in pipelined chunks; packing at the source
  // overlaps wire serialization, as openMosix's sender loop does.
  explicit FullCopyEngine(std::uint64_t chunk_pages = 64);

  [[nodiscard]] const char* name() const override { return "openMosix"; }

  void execute(MigrationContext ctx, std::function<void(MigrationResult)> done) override;

 private:
  std::uint64_t chunk_pages_;
};

}  // namespace ampom::migration
