#include "migration/cpmd.hpp"

#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace ampom::migration {

CpmdTable CpmdTable::builtin() {
  // Cold-cache warm-up after a cross-socket migration: near-linear while
  // the working set fits a contemporary LLC, flattening past it (beyond
  // the cache size the post-migration miss pattern converges with the
  // steady-state one). Magnitudes follow the published cpmd-experiments
  // shape, not any one machine.
  CpmdTable table;
  table.points_ = {
      {4.0, 18.0},        // 4 KiB: one hot page, microseconds
      {64.0, 95.0},       //
      {256.0, 340.0},     //
      {1024.0, 1250.0},   // 1 MiB
      {4096.0, 4600.0},   // 4 MiB
      {16384.0, 16500.0},  // 16 MiB: around LLC capacity
      {65536.0, 38000.0},  // 64 MiB: mostly DRAM-bound either way
      {262144.0, 52000.0}  // 256 MiB: flattened
  };
  return table;
}

CpmdTable CpmdTable::parse(const std::string& text) {
  CpmdTable table;
  std::istringstream in{text};
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) {
      line.resize(hash);
    }
    std::istringstream fields{line};
    double wss_kib = 0.0;
    double delay_us = 0.0;
    if (!(fields >> wss_kib)) {
      continue;  // blank or comment-only line
    }
    if (!(fields >> delay_us)) {
      throw std::invalid_argument("CpmdTable: line " + std::to_string(line_no) +
                                  ": expected `wss_kib delay_us`");
    }
    std::string trailing;
    if (fields >> trailing) {
      throw std::invalid_argument("CpmdTable: line " + std::to_string(line_no) +
                                  ": trailing tokens after the delay field");
    }
    if (wss_kib <= 0.0 || delay_us < 0.0) {
      throw std::invalid_argument("CpmdTable: line " + std::to_string(line_no) +
                                  ": wss_kib must be positive and delay_us non-negative");
    }
    if (!table.points_.empty() && wss_kib <= table.points_.back().wss_kib) {
      throw std::invalid_argument("CpmdTable: line " + std::to_string(line_no) +
                                  ": wss_kib must be strictly increasing");
    }
    table.points_.push_back(Point{wss_kib, delay_us});
  }
  if (table.points_.empty()) {
    throw std::invalid_argument("CpmdTable: calibration has no data points");
  }
  return table;
}

CpmdTable CpmdTable::load_file(const std::string& path) {
  std::ifstream in{path};
  if (!in) {
    throw std::invalid_argument("CpmdTable: cannot read calibration file: " + path);
  }
  std::ostringstream text;
  text << in.rdbuf();
  return parse(text.str());
}

sim::Time CpmdTable::warmup_delay(sim::Bytes wss) const {
  if (points_.empty()) {
    return sim::Time::zero();
  }
  const double wss_kib = static_cast<double>(wss) / 1024.0;
  if (wss_kib <= points_.front().wss_kib) {
    return sim::Time::from_sec((points_.front().delay_us) * 1e-6);
  }
  if (wss_kib >= points_.back().wss_kib) {
    return sim::Time::from_sec((points_.back().delay_us) * 1e-6);
  }
  for (std::size_t i = 1; i < points_.size(); ++i) {
    if (wss_kib <= points_[i].wss_kib) {
      const Point& lo = points_[i - 1];
      const Point& hi = points_[i];
      const double frac = (wss_kib - lo.wss_kib) / (hi.wss_kib - lo.wss_kib);
      return sim::Time::from_sec((lo.delay_us + frac * (hi.delay_us - lo.delay_us)) * 1e-6);
    }
  }
  return sim::Time::from_sec((points_.back().delay_us) * 1e-6);
}

}  // namespace ampom::migration
