#pragma once
// CPMD: cache-related preemption-and-migration delay.
//
// Brandenburg's cpmd-experiments measure how long a task runs degraded
// after a migration while it re-warms its working set into the new CPU's
// cache hierarchy — a cost that grows with working-set size and that flat
// transfer-time models (the paper's Eq. 3) miss entirely. This module
// carries that measurement into the simulator as a deterministic
// calibration table: WSS in KiB -> warm-up delay in microseconds, applied
// piecewise-linearly and clamped at the table's ends.
//
// The table ships two ways: a built-in curve (shaped like the published
// cold-cache measurements: near-linear while the WSS fits the LLC, then
// flattening once everything misses anyway), and a committed calibration
// file (data/cpmd_calibration.txt) so a real machine's measurements can be
// dropped in without recompiling. The file format is one `wss_kib
// delay_us` pair per line, '#' comments, strictly increasing WSS.
//
// The charge itself is paid by the executor on the first bursts at a
// migration destination (see Executor::add_warmup_charge): ClusterSim
// assesses table(wss) scaled by the destination's cache pressure at commit
// time. A process that re-migrates before the charge is fully paid carries
// only the remaining balance — the unwarmed pages are unwarmed wherever it
// lands, so a fresh full charge would double-bill the move (the
// remigration_test pin).

#include <cstdint>
#include <string>
#include <vector>

#include "simcore/time.hpp"
#include "simcore/units.hpp"

namespace ampom::migration {

class CpmdTable {
 public:
  struct Point {
    double wss_kib{0.0};
    double delay_us{0.0};
  };

  // The built-in curve (microseconds of warm-up per KiB of working set).
  [[nodiscard]] static CpmdTable builtin();

  // Parse the calibration text format; throws std::invalid_argument naming
  // the offending line on malformed input, non-increasing WSS, or negative
  // delay. parse(serialize-of-any-valid-table) round-trips.
  [[nodiscard]] static CpmdTable parse(const std::string& text);

  // Load a committed calibration file; throws std::invalid_argument when
  // the file cannot be read (plus everything parse() throws).
  [[nodiscard]] static CpmdTable load_file(const std::string& path);

  // Piecewise-linear warm-up delay for a working set of `wss` bytes,
  // clamped to the first/last calibration point. Zero for an empty table.
  [[nodiscard]] sim::Time warmup_delay(sim::Bytes wss) const;

  [[nodiscard]] bool empty() const { return points_.empty(); }
  [[nodiscard]] const std::vector<Point>& points() const { return points_; }

 private:
  std::vector<Point> points_;  // strictly increasing wss_kib
};

}  // namespace ampom::migration
