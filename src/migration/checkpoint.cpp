#include "migration/checkpoint.hpp"

#include <stdexcept>

namespace ampom::migration {

CheckpointRestartEngine::CheckpointRestartEngine(Config config) : config_{config} {
  if (config.disk_write.is_zero() || config.disk_read.is_zero()) {
    throw std::invalid_argument("CheckpointRestartEngine: disk bandwidth must be positive");
  }
}

void CheckpointRestartEngine::execute(MigrationContext ctx,
                                      std::function<void(MigrationResult)> done) {
  if (config_.file_server == ctx.src || config_.file_server == ctx.dst) {
    throw std::invalid_argument(
        "CheckpointRestartEngine: the file server must be a third node");
  }
  mem::AddressSpace& aspace = ctx.process.aspace();
  const std::vector<mem::PageId> local = aspace.pages_in_state(mem::PageState::Local);

  MigrationResult result;
  result.initiated_at = ctx.sim.now();
  result.freeze_begin = ctx.sim.now();
  result.pages_transferred = local.size();
  result.pages_sent_total = local.size() * 2;  // image crosses the wire twice

  // Bookkeeping: pages end up with the process at the destination.
  mem::PageTable& hpt = ctx.deputy.hpt();
  for (const mem::PageId page : local) {
    aspace.carry_over(page);
    hpt.set_loc(page, mem::PageTable::Loc::Remote);
    if (ctx.ledger != nullptr) {
      ctx.ledger->transfer(page, ctx.src, ctx.dst);
    }
  }

  const sim::Bytes image =
      ctx.wire.pcb_bytes + static_cast<sim::Bytes>(local.size()) * ctx.wire.page_message_bytes();
  result.bytes_transferred = 2 * image;

  // Phase 1: write the image to the file server (wire + disk in series at
  // the slower of the two rates, modeled as wire transfer then disk tail).
  const sim::Time setup = ctx.src_costs.freeze_setup.scaled(1.0 / ctx.src_costs.cpu_speed) +
                          ctx.src_costs.pack_page.scaled(1.0 / ctx.src_costs.cpu_speed) *
                              static_cast<std::int64_t>(local.size());
  ctx.sim.schedule_after(setup, [this, ctx, done = std::move(done), result, image]() mutable {
    const sim::Time upload_arrival = ctx.fabric.send(net::Message{
        ctx.src, config_.file_server, image,
        net::MigrationChunk{ctx.process.pid(), net::MigrationChunk::Kind::DirtyPages,
                            result.pages_transferred, false}});
    const sim::Time disk_tail =
        config_.disk_write.transfer_time(image) > ctx.fabric.link(ctx.src, config_.file_server)
                                                      .bandwidth.transfer_time(image)
            ? config_.disk_write.transfer_time(image) -
                  ctx.fabric.link(ctx.src, config_.file_server).bandwidth.transfer_time(image)
            : sim::Time::zero();
    const sim::Time written = upload_arrival + disk_tail;

    // Phase 2: the destination reads the image back and restarts.
    ctx.sim.schedule_at(written, [this, ctx, done = std::move(done), result, image]() mutable {
      const sim::Time download_arrival = ctx.fabric.send(net::Message{
          config_.file_server, ctx.dst, image,
          net::MigrationChunk{ctx.process.pid(), net::MigrationChunk::Kind::DirtyPages,
                              result.pages_transferred, true}});
      const sim::Time restore =
          ctx.dst_costs.restore_setup.scaled(1.0 / ctx.dst_costs.cpu_speed) +
          ctx.dst_costs.unpack_page.scaled(1.0 / ctx.dst_costs.cpu_speed) *
              static_cast<std::int64_t>(result.pages_transferred);
      ctx.sim.schedule_at(download_arrival + restore,
                          [ctx, done = std::move(done), result]() mutable {
                            result.resume_at = ctx.sim.now();
                            MigrationEngine::finish_resume(ctx, result, done);
                          });
    });
  });
}

}  // namespace ampom::migration
