#pragma once
// Re-migration of an already-migrated process (paper §1: "a wrong or
// suboptimal migration decision would require the process being migrated
// again, inducing even longer freeze time" — the scenario whose cost AMPoM
// is designed to collapse).
//
// The process sits at node B with part of its address space at its home
// node H. Migrating B -> C ships the PCB, the three current pages and
// (for the AMPoM variant) the MPT; every other B-local page is flushed back
// to H in the background after the process resumes at C — openMosix's
// home-anchored model, mirroring FFA's flush of dirty pages. The deputy
// marks flushing pages Incoming and parks any request for them until the
// flush lands.

#include <cstdint>

#include "migration/engine.hpp"

namespace ampom::migration {

class RemigrationEngine final : public MigrationEngine {
 public:
  struct Config {
    bool ship_mpt{true};  // true = AMPoM variant; false = NoPrefetch variant
    std::uint64_t flush_chunk_pages{64};
  };

  // Reliable mode: the background flush stream is tracked page-by-page via
  // the deputy's FlushAcks and retransmitted on timeout (the freeze-time
  // B -> C transfer keeps the classic timeline; its chunks carry no state
  // the resume depends on). Counters accumulate across runs of this engine.
  struct FlushStats {
    std::uint64_t pages_flushed{0};
    std::uint64_t retransmits{0};       // pages re-flushed after a timeout round
    std::uint64_t timeout_rounds{0};
    std::uint64_t abandoned{0};         // pages given up on after max retries
  };

  RemigrationEngine() : RemigrationEngine{Config{}} {}
  explicit RemigrationEngine(Config config);

  [[nodiscard]] const char* name() const override {
    return config_.ship_mpt ? "AMPoM-remigrate" : "NoPrefetch-remigrate";
  }

  // ctx.src is the node the process currently runs on (B); ctx.dst is the
  // new destination (C). The deputy (and HPT) stay at the home node.
  void execute(MigrationContext ctx, std::function<void(MigrationResult)> done) override;

  [[nodiscard]] const FlushStats& flush_stats() const { return flush_stats_; }

 private:
  void execute_drained(MigrationContext ctx, std::function<void(MigrationResult)> done);

  Config config_;
  FlushStats flush_stats_;
};

}  // namespace ampom::migration
