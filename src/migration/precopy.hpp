#pragma once
// Pre-copy migration — the V System mechanism from the paper's related
// work (§6): "the address space ... is pre-copied to the remote node prior
// to its migration, while the process is still executing in the source
// node. This approach, however, induces unnecessary network traffic if
// pages are modified after they are pre-copied."
//
// Rounds: copy the dirty set while the process keeps running; pages touched
// during a round are re-dirtied and copied again in the next. When the
// re-dirtied set is small enough (or the round budget is exhausted), freeze,
// ship the residue plus the PCB, and resume at the destination. Freeze time
// is short like AMPoM's, but total traffic exceeds the address space by the
// re-dirty rate — the trade-off this engine exists to demonstrate
// (bench/related_work_mechanisms).

#include <cstdint>

#include "migration/engine.hpp"

namespace ampom::migration {

class PreCopyEngine final : public MigrationEngine {
 public:
  struct Config {
    std::uint64_t chunk_pages{64};
    std::uint64_t max_rounds{5};
    // Freeze once the re-dirtied set is at most this fraction of the
    // address space.
    double stop_fraction{0.02};
  };

  PreCopyEngine() : PreCopyEngine{Config{}} {}
  explicit PreCopyEngine(Config config);

  [[nodiscard]] const char* name() const override { return "PreCopy"; }
  [[nodiscard]] bool needs_freeze_first() const override { return false; }

  void execute(MigrationContext ctx, std::function<void(MigrationResult)> done) override;

 private:
  Config config_;
};

}  // namespace ampom::migration
