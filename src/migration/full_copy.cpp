#include "migration/full_copy.hpp"

#include <memory>
#include <stdexcept>

#include "migration/reliable.hpp"
#include "trace/trace.hpp"

namespace ampom::migration {

namespace {

// Reliable variant: pack everything, ship PCB + page chunks over the ack'd
// protocol, and commit the bookkeeping (pages move with the process) only
// when the destination verifiably holds the full image. Unlike the classic
// path, packing does not pipeline with the wire — the retransmit unit is
// the packed chunk, which must exist in full before its first send.
void execute_reliable(MigrationContext ctx, std::uint64_t chunk_pages,
                      std::function<void(MigrationResult)> done) {
  mem::AddressSpace& aspace = ctx.process.aspace();
  const std::vector<mem::PageId> local = aspace.pages_in_state(mem::PageState::Local);

  MigrationResult result;
  result.initiated_at = ctx.sim.now();
  result.freeze_begin = ctx.sim.now();
  result.pages_transferred = local.size();
  result.pages_sent_total = local.size();
  result.bytes_transferred = ctx.wire.pcb_bytes;

  const std::uint64_t total = local.size();
  std::vector<ReliableTransfer::Item> items;
  items.push_back({net::MigrationChunk::Kind::Pcb, 1, ctx.wire.pcb_bytes, false});
  for (std::uint64_t first = 0; first < total; first += chunk_pages) {
    const std::uint64_t count = std::min(chunk_pages, total - first);
    const sim::Bytes bytes = count * ctx.wire.page_message_bytes();
    result.bytes_transferred += bytes;
    items.push_back({net::MigrationChunk::Kind::DirtyPages, count, bytes, true});
  }

  const sim::Time setup = ctx.src_costs.freeze_setup.scaled(1.0 / ctx.src_costs.cpu_speed);
  const sim::Time pack = ctx.src_costs.pack_page.scaled(1.0 / ctx.src_costs.cpu_speed) *
                         static_cast<std::int64_t>(total);
  ctx.sim.schedule_at(ctx.sim.now() + setup + pack, [ctx, items = std::move(items),
                                                     local, result,
                                                     done = std::move(done)]() mutable {
    ReliableTransfer::run(
        ctx, std::move(items),
        /*on_delivered=*/
        [ctx, local = std::move(local), result, done](
            sim::Time delivered_at, const ReliableTransferStats& st) mutable {
          mem::PageTable& hpt = ctx.deputy.hpt();
          for (const mem::PageId page : local) {
            ctx.process.aspace().carry_over(page);
            hpt.set_loc(page, mem::PageTable::Loc::Remote);
            if (ctx.ledger != nullptr) {
              ctx.ledger->transfer(page, ctx.src, ctx.dst);
            }
          }
          result.chunk_retransmits = st.chunk_retransmits;
          result.pages_retransmitted = st.pages_retransmitted;
          result.pages_sent_total += st.pages_retransmitted;
          result.bytes_transferred += st.bytes_retransmitted;
          const sim::Time unpack =
              ctx.dst_costs.unpack_page.scaled(1.0 / ctx.dst_costs.cpu_speed) *
                  static_cast<std::int64_t>(local.size()) +
              ctx.dst_costs.restore_setup.scaled(1.0 / ctx.dst_costs.cpu_speed);
          ctx.sim.schedule_at(delivered_at + unpack,
                              [ctx, result, done = std::move(done)]() mutable {
                                result.resume_at = ctx.sim.now();
                                MigrationEngine::finish_resume(ctx, result, done);
                              });
        },
        /*on_lost=*/
        [ctx, result, done](const ReliableTransferStats& st) mutable {
          result.chunk_retransmits = st.chunk_retransmits;
          result.pages_retransmitted = st.pages_retransmitted;
          result.pages_sent_total += st.pages_retransmitted;
          result.bytes_transferred += st.bytes_retransmitted;
          MigrationEngine::abort_unfreeze(ctx, result, MigrationOutcome::kDestinationLost,
                                          done);
        });
  });
}

}  // namespace

FullCopyEngine::FullCopyEngine(std::uint64_t chunk_pages) : chunk_pages_{chunk_pages} {
  if (chunk_pages == 0) {
    throw std::invalid_argument("FullCopyEngine chunk size must be positive");
  }
}

void FullCopyEngine::execute(MigrationContext ctx, std::function<void(MigrationResult)> done) {
  if (ctx.reliable()) {
    execute_reliable(std::move(ctx), chunk_pages_, std::move(done));
    return;
  }
  mem::AddressSpace& aspace = ctx.process.aspace();
  const std::vector<mem::PageId> local = aspace.pages_in_state(mem::PageState::Local);

  MigrationResult result;
  result.initiated_at = ctx.sim.now();
  result.freeze_begin = ctx.sim.now();

  // Bookkeeping first: pages move with the process; the HPT keeps only the
  // never-touched holes as Absent.
  mem::PageTable& hpt = ctx.deputy.hpt();
  for (const mem::PageId page : local) {
    aspace.carry_over(page);
    hpt.set_loc(page, mem::PageTable::Loc::Remote);
    if (ctx.ledger != nullptr) {
      ctx.ledger->transfer(page, ctx.src, ctx.dst);
    }
  }
  result.pages_transferred = local.size();
  result.pages_sent_total = local.size();

  // Timing: PCB first, then page chunks. Each chunk is sent once the source
  // CPU finished packing it; the NIC queue pipelines packing with the wire.
  const sim::Time setup = ctx.src_costs.freeze_setup.scaled(1.0 / ctx.src_costs.cpu_speed);
  const sim::Time pack_per_page = ctx.src_costs.pack_page.scaled(1.0 / ctx.src_costs.cpu_speed);
  sim::Time pack_done = ctx.sim.now() + setup;

  ctx.sim.schedule_at(pack_done, [&sim = ctx.sim, &fabric = ctx.fabric, src = ctx.src,
                                  dst = ctx.dst, pcb = ctx.wire.pcb_bytes,
                                  pid = ctx.process.pid()] {
    fabric.send(net::Message{
        src, dst, pcb, net::MigrationChunk{pid, net::MigrationChunk::Kind::Pcb, 1, false}});
    (void)sim;
  });
  result.bytes_transferred += ctx.wire.pcb_bytes;

  const std::uint64_t total = local.size();
  // Completion state shared between the chunk-send events.
  auto shared = std::make_shared<MigrationResult>(result);
  auto complete = [ctx, done, shared](sim::Time last_arrival, std::uint64_t last_chunk) mutable {
    const sim::Time unpack = ctx.dst_costs.unpack_page.scaled(1.0 / ctx.dst_costs.cpu_speed) *
                             static_cast<std::int64_t>(last_chunk);
    const sim::Time restore =
        ctx.dst_costs.restore_setup.scaled(1.0 / ctx.dst_costs.cpu_speed);
    if (ctx.trace != nullptr) {
      const std::uint64_t pid = ctx.process.pid();
      ctx.trace->async_begin(trace::Category::kMigration, "unpack_restore", last_arrival,
                             ctx.src, pid, last_chunk);
      ctx.trace->async_end(trace::Category::kMigration, "unpack_restore",
                           last_arrival + unpack + restore, ctx.src, pid);
    }
    ctx.sim.schedule_at(last_arrival + unpack + restore, [ctx, done, shared]() mutable {
      shared->resume_at = ctx.sim.now();
      finish_resume(ctx, *shared, done);
    });
  };

  if (total == 0) {
    // Nothing dirty: resume after the PCB lands.
    const sim::Time pcb_arrival =
        pack_done + ctx.fabric.link(ctx.src, ctx.dst).bandwidth.transfer_time(ctx.wire.pcb_bytes) +
        ctx.fabric.link(ctx.src, ctx.dst).latency;
    if (ctx.trace != nullptr) {
      ctx.trace->async_begin(trace::Category::kMigration, "freeze_pack", result.freeze_begin,
                             ctx.src, ctx.process.pid());
      ctx.trace->async_end(trace::Category::kMigration, "freeze_pack", pack_done, ctx.src,
                           ctx.process.pid());
    }
    complete(pcb_arrival, 0);
    return;
  }

  for (std::uint64_t first = 0; first < total; first += chunk_pages_) {
    const std::uint64_t count = std::min(chunk_pages_, total - first);
    pack_done += pack_per_page * static_cast<std::int64_t>(count);
    const bool last = first + count >= total;
    const sim::Bytes bytes = count * ctx.wire.page_message_bytes();
    shared->bytes_transferred += bytes;
    ctx.sim.schedule_at(
        pack_done, [&fabric = ctx.fabric, src = ctx.src, dst = ctx.dst, bytes, count, last,
                    pid = ctx.process.pid(), complete]() mutable {
          const sim::Time arrival = fabric.send(net::Message{
              src, dst, bytes,
              net::MigrationChunk{pid, net::MigrationChunk::Kind::DirtyPages, count, last}});
          if (last) {
            complete(arrival, count);
          }
        });
  }
  // Pipelined pack: the span closes when the last chunk finishes packing.
  if (ctx.trace != nullptr) {
    ctx.trace->async_begin(trace::Category::kMigration, "freeze_pack", result.freeze_begin,
                           ctx.src, ctx.process.pid(), total);
    ctx.trace->async_end(trace::Category::kMigration, "freeze_pack", pack_done, ctx.src,
                         ctx.process.pid());
  }
}

}  // namespace ampom::migration
