#pragma once
// Migration engine interface and the shared context.
//
// An engine runs the freeze-time protocol of one mechanism from the paper's
// Fig. 2: openMosix full-dirty-copy, the FFA-variant three-page transfer
// (NoPrefetch), or AMPoM's three-pages-plus-MPT transfer. Engines are
// invoked with the process already frozen, move state across the fabric,
// populate the deputy's HPT, and resume the executor at the destination.

#include <cstdint>
#include <functional>

#include "mem/ledger.hpp"
#include "net/fabric.hpp"
#include "proc/costs.hpp"
#include "proc/deputy.hpp"
#include "proc/executor.hpp"
#include "simcore/simulator.hpp"

namespace ampom::migration {

struct MigrationContext {
  sim::Simulator& sim;
  net::Fabric& fabric;
  proc::WireCosts wire;
  proc::Process& process;
  proc::Executor& executor;
  proc::Deputy& deputy;
  net::NodeId src;
  net::NodeId dst;
  proc::NodeCosts src_costs;
  proc::NodeCosts dst_costs;
  mem::PageLedger* ledger{nullptr};
  // Invoked right before the executor resumes at the destination; scenario
  // builders install the fault policy and flip syscall redirection here.
  std::function<void()> on_before_resume;
};

struct MigrationResult {
  sim::Time initiated_at{};  // when the mechanism started working
  sim::Time freeze_begin{};  // when the process stopped executing
  sim::Time resume_at{};
  sim::Bytes bytes_transferred{0};
  std::uint64_t pages_transferred{0};  // pages living at the destination after resume
  std::uint64_t pages_sent_total{0};   // includes pre-copy resends

  [[nodiscard]] sim::Time freeze_time() const { return resume_at - freeze_begin; }
  // Wall time the mechanism occupied the network/CPU (pre-copy >> freeze).
  [[nodiscard]] sim::Time migration_span() const { return resume_at - initiated_at; }
  [[nodiscard]] std::uint64_t pages_resent() const {
    return pages_sent_total > pages_transferred ? pages_sent_total - pages_transferred : 0;
  }
};

class MigrationEngine {
 public:
  virtual ~MigrationEngine() = default;
  MigrationEngine() = default;
  MigrationEngine(const MigrationEngine&) = delete;
  MigrationEngine& operator=(const MigrationEngine&) = delete;

  [[nodiscard]] virtual const char* name() const = 0;

  // True (default) = migrate_process freezes the process before execute();
  // false = the engine runs alongside the process and freezes it itself
  // (pre-copy mechanisms).
  [[nodiscard]] virtual bool needs_freeze_first() const { return true; }

  // Precondition: ctx.process is Frozen iff needs_freeze_first(). Calls
  // `done` at resume time.
  virtual void execute(MigrationContext ctx, std::function<void(MigrationResult)> done) = 0;

  // Shared resume tail: HPT service start, policy hook, executor resume.
  // Public so engine-internal run objects can call it.
  static void finish_resume(MigrationContext& ctx, MigrationResult result,
                            const std::function<void(MigrationResult)>& done);
};

// Orchestrates request_freeze -> engine.execute.
void migrate_process(MigrationContext ctx, MigrationEngine& engine,
                     std::function<void(MigrationResult)> done);

}  // namespace ampom::migration
