#pragma once
// Migration engine interface and the shared context.
//
// An engine runs the freeze-time protocol of one mechanism from the paper's
// Fig. 2: openMosix full-dirty-copy, the FFA-variant three-page transfer
// (NoPrefetch), or AMPoM's three-pages-plus-MPT transfer. Engines are
// invoked with the process already frozen, move state across the fabric,
// populate the deputy's HPT, and resume the executor at the destination.

#include <cstdint>
#include <functional>

#include "mem/ledger.hpp"
#include "net/fabric.hpp"
#include "proc/costs.hpp"
#include "proc/deputy.hpp"
#include "proc/executor.hpp"
#include "simcore/simulator.hpp"

namespace ampom::cluster {
class Node;
}

namespace ampom::trace {
class TraceRecorder;
}

namespace ampom::migration {

// How a migration attempt ended.
enum class MigrationOutcome : std::uint8_t {
  kCompleted,        // process resumed at the destination
  kAborted,          // engine gave up before committing (e.g. nothing to move)
  kDestinationLost,  // destination stopped acking; process unfrozen at source
};

// Reliable (ack'd) transfer knobs. The retransmit timer arms at the
// predicted arrival of the last outstanding chunk plus ack_grace, doubling
// (backoff_factor) per round; max_retries exhausted rounds declare the
// destination lost.
struct MigrationReliability {
  bool enabled{false};
  sim::Time ack_grace{sim::Time::from_ms(2)};
  double backoff_factor{2.0};
  std::uint32_t max_retries{4};
  // Mutation knob for the verification layer's self-test: commit the page
  // repartition *before* the transfer is acknowledged and skip the rollback
  // when the destination is declared lost — the historical bug class the
  // reliable path exists to prevent. An aborted migration then strands the
  // carried pages' ownership at the dead destination, which the invariant
  // auditor must flag and ampom_fuzz must shrink. Never set outside
  // deliberate auditor/fuzzer mutation runs.
  bool mutate_skip_abort_rollback{false};
};

struct MigrationContext {
  sim::Simulator& sim;
  net::Fabric& fabric;
  proc::WireCosts wire;
  proc::Process& process;
  proc::Executor& executor;
  proc::Deputy& deputy;
  net::NodeId src;
  net::NodeId dst;
  proc::NodeCosts src_costs;
  proc::NodeCosts dst_costs;
  mem::PageLedger* ledger{nullptr};
  // Invoked right before the executor resumes at the destination; scenario
  // builders install the fault policy and flip syscall redirection here.
  std::function<void()> on_before_resume;
  // Reliable mode (optional): the node routers at both ends carry the ack'd
  // chunk protocol. Null nodes or reliability.enabled == false selects the
  // classic fire-and-forget timeline, byte-identical to the seed engines.
  cluster::Node* src_node{nullptr};
  cluster::Node* dst_node{nullptr};
  MigrationReliability reliability;
  // Observability (optional, not owned): migration/phase spans and per-round
  // retransmission markers, correlated by pid. Null = untouched timeline.
  trace::TraceRecorder* trace{nullptr};

  [[nodiscard]] bool reliable() const {
    return reliability.enabled && src_node != nullptr && dst_node != nullptr;
  }
};

struct MigrationResult {
  sim::Time initiated_at{};  // when the mechanism started working
  sim::Time freeze_begin{};  // when the process stopped executing
  sim::Time resume_at{};     // on kDestinationLost: when the source unfroze
  sim::Bytes bytes_transferred{0};
  std::uint64_t pages_transferred{0};  // pages living at the destination after resume
  std::uint64_t pages_sent_total{0};   // includes pre-copy resends and retransmits
  MigrationOutcome outcome{MigrationOutcome::kCompleted};
  std::uint64_t chunk_retransmits{0};    // reliable mode: chunks re-sent after timeout
  std::uint64_t pages_retransmitted{0};  // pages inside those re-sent chunks

  [[nodiscard]] sim::Time freeze_time() const { return resume_at - freeze_begin; }
  // Wall time the mechanism occupied the network/CPU (pre-copy >> freeze).
  [[nodiscard]] sim::Time migration_span() const { return resume_at - initiated_at; }
  // Pages that crossed the wire more than once. Two distinct sources feed
  // this: pre-copy delta rounds re-sending pages the process dirtied between
  // iterations (a deliberate cost of the kPreCopy scheme), and timeout-driven
  // retransmissions by the reliable protocol (loss recovery; itemized
  // separately in pages_retransmitted). pages_sent_total accumulates both,
  // so the difference surfaces every duplicate page send of either kind.
  [[nodiscard]] std::uint64_t pages_resent() const {
    return pages_sent_total > pages_transferred ? pages_sent_total - pages_transferred : 0;
  }
  [[nodiscard]] bool completed() const { return outcome == MigrationOutcome::kCompleted; }
};

class MigrationEngine {
 public:
  virtual ~MigrationEngine() = default;
  MigrationEngine() = default;
  MigrationEngine(const MigrationEngine&) = delete;
  MigrationEngine& operator=(const MigrationEngine&) = delete;

  [[nodiscard]] virtual const char* name() const = 0;

  // True (default) = migrate_process freezes the process before execute();
  // false = the engine runs alongside the process and freezes it itself
  // (pre-copy mechanisms).
  [[nodiscard]] virtual bool needs_freeze_first() const { return true; }

  // Precondition: ctx.process is Frozen iff needs_freeze_first(). Calls
  // `done` at resume time. Engines commit cross-partition state (placement,
  // HPT ownership, load accounting): migrate_process hops to the barrier
  // context before invoking this.
  // ampom: global-only
  virtual void execute(MigrationContext ctx, std::function<void(MigrationResult)> done) = 0;

  // Shared resume tail: HPT service start, policy hook, executor resume.
  // Public so engine-internal run objects can call it.
  static void finish_resume(MigrationContext& ctx, MigrationResult result,
                            const std::function<void(MigrationResult)>& done);

  // Shared abort tail (reliable mode): the destination is presumed dead, so
  // the process unfreezes in place at the source with nothing moved.
  static void abort_unfreeze(MigrationContext& ctx, MigrationResult result,
                             MigrationOutcome outcome,
                             const std::function<void(MigrationResult)>& done);
};

// Orchestrates request_freeze -> engine.execute.
void migrate_process(MigrationContext ctx, MigrationEngine& engine,
                     std::function<void(MigrationResult)> done);

}  // namespace ampom::migration
