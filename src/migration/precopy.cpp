#include "migration/precopy.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <unordered_set>
#include <vector>

#include "trace/trace.hpp"

namespace ampom::migration {

namespace {

// Extract the dirty set in page order. The copy rounds only ever consume
// counts and byte totals, but keeping the extraction sorted means any future
// per-page consumer (tracing, chunk checksums) inherits a deterministic
// order for free instead of the set's hash order.
[[nodiscard]] std::vector<mem::PageId> sorted_pages(
    const std::unordered_set<mem::PageId>& pages) {  // ampom-lint: ordered-safe(sorted below)
  std::vector<mem::PageId> out(pages.begin(), pages.end());  // ampom-lint: ordered-safe(sorted below)
  std::sort(out.begin(), out.end());
  return out;
}

// Shared state of one pre-copy run. Ownership rides the event closures:
// every callback scheduled on the simulator captures a shared_ptr to the
// run, so it lives exactly as long as some continuation is pending — even
// when the simulation halts early with events still queued (a self-owning
// cycle here leaked in that case; LeakSanitizer caught it).
struct PreCopyRun : std::enable_shared_from_this<PreCopyRun> {
  PreCopyRun(MigrationContext context, PreCopyEngine::Config configuration,
             std::function<void(MigrationResult)> done_cb)
      : ctx{std::move(context)}, config{configuration}, done{std::move(done_cb)} {}

  MigrationContext ctx;
  PreCopyEngine::Config config;
  std::function<void(MigrationResult)> done;
  MigrationResult result;
  // ampom-lint: ordered-safe(only iterated via sorted_pages(); O(1) insert on the touch path)
  std::unordered_set<mem::PageId> redirtied;
  std::uint64_t rounds_run{0};

  [[nodiscard]] sim::Time pack_time_per_page() const {
    return ctx.src_costs.pack_page.scaled(1.0 / ctx.src_costs.cpu_speed);
  }

  // Stream `pages` in chunks starting no earlier than `not_before`;
  // `on_complete(last_arrival)` fires when the last chunk lands.
  void stream_pages(std::vector<mem::PageId> pages, sim::Time not_before, bool final_round,
                    std::function<void(sim::Time)> on_complete) {
    const std::uint64_t total = pages.size();
    result.pages_sent_total += total;
    if (total == 0) {
      // Nothing to send: complete after the wire latency (a sync message).
      const sim::Time arrival = ctx.fabric.send(net::Message{
          ctx.src, ctx.dst, ctx.wire.control_message,
          net::MigrationChunk{ctx.process.pid(), net::MigrationChunk::Kind::DirtyPages, 0,
                              final_round}});
      ctx.sim.schedule_at(arrival, [arrival, cb = std::move(on_complete)] { cb(arrival); });
      return;
    }
    sim::Time pack_done = std::max(ctx.sim.now(), not_before);
    auto self_complete = std::make_shared<std::function<void(sim::Time)>>(std::move(on_complete));
    for (std::uint64_t first = 0; first < total; first += config.chunk_pages) {
      const std::uint64_t count = std::min(config.chunk_pages, total - first);
      pack_done += pack_time_per_page() * static_cast<std::int64_t>(count);
      const bool last = first + count >= total;
      const sim::Bytes bytes = count * ctx.wire.page_message_bytes();
      result.bytes_transferred += bytes;
      ctx.sim.schedule_at(pack_done, [self = shared_from_this(), bytes, count, last,
                                      final_round, self_complete] {
        const sim::Time arrival = self->ctx.fabric.send(net::Message{
            self->ctx.src, self->ctx.dst, bytes,
            net::MigrationChunk{self->ctx.process.pid(), net::MigrationChunk::Kind::DirtyPages,
                                count, last && final_round}});
        if (last) {
          (*self_complete)(arrival);
        }
      });
    }
  }

  void run_round(std::vector<mem::PageId> to_copy) {
    ++rounds_run;
    redirtied.clear();
    if (ctx.trace != nullptr) {
      ctx.trace->instant(trace::Category::kMigration, "precopy_round", ctx.sim.now(), ctx.src,
                         ctx.process.pid(), rounds_run, to_copy.size());
    }
    stream_pages(std::move(to_copy), ctx.sim.now(), /*final_round=*/false,
                 [self = shared_from_this()](sim::Time last_arrival) {
                   self->ctx.sim.schedule_at(last_arrival,
                                             [self] { self->next_round_or_freeze(); });
                 });
  }

  void next_round_or_freeze() {
    const auto threshold = static_cast<double>(ctx.process.aspace().page_count()) *
                           config.stop_fraction;
    if (ctx.process.state() == proc::ProcState::Finished) {
      // The process outran the migration; abort. Dropping the last
      // continuation releases the run.
      ctx.executor.set_touch_observer(nullptr);
      return;
    }
    if (rounds_run < config.max_rounds &&
        static_cast<double>(redirtied.size()) > threshold) {
      run_round(sorted_pages(redirtied));
      return;
    }
    // Converged (or out of rounds): stop-and-copy the residue.
    ctx.executor.request_freeze([self = shared_from_this()] { self->final_round(); });
  }

  void final_round() {
    result.freeze_begin = ctx.sim.now();
    ctx.executor.set_touch_observer(nullptr);
    if (ctx.trace != nullptr) {
      // Pre-copy freezes itself (needs_freeze_first() is false), so the
      // orchestrator's "frozen" marker never fires; emit it here.
      ctx.trace->instant(trace::Category::kMigration, "frozen", ctx.sim.now(), ctx.src,
                         ctx.process.pid(), redirtied.size());
    }

    std::vector<mem::PageId> residue = sorted_pages(redirtied);
    const sim::Time setup = ctx.src_costs.freeze_setup.scaled(1.0 / ctx.src_costs.cpu_speed);
    result.bytes_transferred += ctx.wire.pcb_bytes;
    ctx.sim.schedule_at(ctx.sim.now() + setup, [self = shared_from_this()] {
      self->ctx.fabric.send(net::Message{
          self->ctx.src, self->ctx.dst, self->ctx.wire.pcb_bytes,
          net::MigrationChunk{self->ctx.process.pid(), net::MigrationChunk::Kind::Pcb, 1,
                              false}});
    });
    stream_pages(std::move(residue), ctx.sim.now() + setup, /*final_round=*/true,
                 [self = shared_from_this()](sim::Time last_arrival) {
                   const sim::Time restore = self->ctx.dst_costs.restore_setup.scaled(
                       1.0 / self->ctx.dst_costs.cpu_speed);
                   self->ctx.sim.schedule_at(last_arrival + restore,
                                             [self] { self->complete(); });
                 });
  }

  void complete() {
    mem::AddressSpace& aspace = ctx.process.aspace();
    mem::PageTable& hpt = ctx.deputy.hpt();
    std::uint64_t moved = 0;
    for (const mem::PageId page : aspace.pages_in_state(mem::PageState::Local)) {
      aspace.carry_over(page);
      hpt.set_loc(page, mem::PageTable::Loc::Remote);
      if (ctx.ledger != nullptr) {
        ctx.ledger->transfer(page, ctx.src, ctx.dst);
      }
      ++moved;
    }
    result.pages_transferred = moved;
    result.resume_at = ctx.sim.now();
    MigrationEngine::finish_resume(ctx, result, done);
    // The closure firing this was the last shared owner; the run is
    // destroyed when it unwinds.
  }
};

}  // namespace

PreCopyEngine::PreCopyEngine(Config config) : config_{config} {
  if (config.chunk_pages == 0 || config.max_rounds == 0) {
    throw std::invalid_argument("PreCopyEngine: chunk_pages and max_rounds must be positive");
  }
  if (config.stop_fraction < 0.0 || config.stop_fraction >= 1.0) {
    throw std::invalid_argument("PreCopyEngine: stop_fraction must be in [0, 1)");
  }
}

void PreCopyEngine::execute(MigrationContext ctx, std::function<void(MigrationResult)> done) {
  auto run = std::make_shared<PreCopyRun>(std::move(ctx), config_, std::move(done));
  run->result.initiated_at = run->ctx.sim.now();

  // Track pages the still-running process touches (they need re-copying).
  // Captures a weak reference: liveness belongs to the event closures.
  run->ctx.executor.set_touch_observer(
      [weak = std::weak_ptr<PreCopyRun>(run)](mem::PageId page) {
        if (const auto strong = weak.lock()) {
          if (strong->ctx.process.aspace().state(page) == mem::PageState::Local) {
            strong->redirtied.insert(page);
          }
        }
      });

  // Round 1 copies the entire current local set. The closures it schedules
  // hold shared ownership; when the simulator drops them — fired or
  // discarded at teardown — the run goes with them.
  run->run_round(run->ctx.process.aspace().pages_in_state(mem::PageState::Local));
}

}  // namespace ampom::migration
