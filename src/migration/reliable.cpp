#include "migration/reliable.hpp"

#include <cmath>
#include <stdexcept>

#include "cluster/node.hpp"
#include "trace/trace.hpp"

namespace ampom::migration {

ReliableTransfer::ReliableTransfer(const MigrationContext& ctx, std::vector<Item> items)
    : sim_{ctx.sim},
      fabric_{ctx.fabric},
      wire_{ctx.wire},
      src_{ctx.src},
      dst_{ctx.dst},
      pid_{ctx.process.pid()},
      src_node_{ctx.src_node},
      dst_node_{ctx.dst_node},
      config_{ctx.reliability},
      trace_{ctx.trace},
      items_{std::move(items)},
      acked_(items_.size(), false),
      received_(items_.size(), false) {
  if (items_.empty()) {
    throw std::logic_error("ReliableTransfer: no chunks to send");
  }
}

void ReliableTransfer::run(const MigrationContext& ctx, std::vector<Item> items,
                           std::function<void(sim::Time, const ReliableTransferStats&)> on_delivered,
                           std::function<void(const ReliableTransferStats&)> on_lost) {
  if (!ctx.reliable()) {
    throw std::logic_error("ReliableTransfer::run without reliable context (nodes + config)");
  }
  auto self = std::shared_ptr<ReliableTransfer>(new ReliableTransfer(ctx, std::move(items)));
  self->self_ = self;
  self->on_delivered_ = std::move(on_delivered);
  self->on_lost_ = std::move(on_lost);
  self->dst_node_->set_migration_chunk_handler(
      self->pid_, [self](net::NodeId, const net::MigrationChunk& chunk) { self->on_chunk(chunk); });
  self->src_node_->set_migration_ack_handler(
      self->pid_, [self](net::NodeId, const net::MigrationAck& ack) { self->on_ack(ack); });
  self->send_round();
}

void ReliableTransfer::send_round() {
  const std::uint64_t total = items_.size();
  const bool first_round = rounds_ == 0;
  sim::Time last_predicted = sim_.now();
  for (std::uint64_t i = 0; i < total; ++i) {
    if (acked_[i]) {
      continue;
    }
    const Item& item = items_[i];
    net::MigrationChunk chunk;
    chunk.pid = pid_;
    chunk.kind = item.kind;
    chunk.item_count = item.item_count;
    chunk.last = i + 1 == total;
    chunk.seq = i + 1;
    chunk.total_chunks = total;
    last_predicted = fabric_.send(net::Message{src_, dst_, item.wire_bytes, chunk, chunk.seq});
    if (!first_round) {
      ++stats_.chunk_retransmits;
      stats_.bytes_retransmitted += item.wire_bytes;
      if (item.counts_pages) {
        stats_.pages_retransmitted += item.item_count;
      }
      if (trace_ != nullptr) {
        trace_->instant(trace::Category::kMigration, "chunk_retransmit", sim_.now(), src_,
                        chunk.seq, item.item_count, rounds_);
      }
    }
  }
  // Arm the round timer past the predicted arrival of the slowest chunk,
  // plus a grace window for the ack leg that widens per round.
  const sim::Time grace =
      config_.ack_grace.scaled(std::pow(config_.backoff_factor, static_cast<double>(rounds_)));
  timer_ = sim_.schedule_at(last_predicted + grace, [self = shared_from_this()] {
    self->on_timeout();
  });
}

void ReliableTransfer::on_chunk(const net::MigrationChunk& chunk) {
  if (chunk.seq == 0 || chunk.seq > received_.size()) {
    throw std::logic_error("ReliableTransfer: chunk with out-of-range sequence number");
  }
  // Always ack — the ack for an earlier copy may have been lost.
  fabric_.send(net::Message{dst_, src_, wire_.control_message,
                            net::MigrationAck{pid_, chunk.seq}, chunk.seq});
  const std::uint64_t idx = chunk.seq - 1;
  if (received_[idx]) {
    ++stats_.duplicate_chunks;
    return;
  }
  received_[idx] = true;
  ++received_count_;
  if (received_count_ == received_.size() && !delivered_) {
    delivered_ = true;
    if (on_delivered_) {
      on_delivered_(sim_.now(), stats_);
    }
  }
}

void ReliableTransfer::on_ack(const net::MigrationAck& ack) {
  if (finished_ || ack.seq == 0 || ack.seq > acked_.size()) {
    return;
  }
  const std::uint64_t idx = ack.seq - 1;
  if (acked_[idx]) {
    return;
  }
  acked_[idx] = true;
  ++acked_count_;
  if (acked_count_ == acked_.size()) {
    sim_.cancel(timer_);
    cleanup();
  }
}

void ReliableTransfer::on_timeout() {
  if (finished_) {
    return;
  }
  ++stats_.timeout_rounds;
  ++rounds_;
  if (rounds_ > config_.max_retries) {
    const bool lost = !delivered_;
    auto lost_cb = std::move(on_lost_);  // cleanup() clears the members
    cleanup();
    if (lost && lost_cb) {
      lost_cb(stats_);
    }
    // delivered_ but acks never made it back: the destination already
    // resumed the process (see the two-generals note in the header); the
    // source just stops retransmitting.
    return;
  }
  send_round();
}

void ReliableTransfer::cleanup() {
  finished_ = true;
  src_node_->clear_migration_handlers(pid_);
  dst_node_->clear_migration_handlers(pid_);
  on_delivered_ = nullptr;
  on_lost_ = nullptr;
  self_.reset();
}

}  // namespace ampom::migration
