#include "migration/lightweight.hpp"

#include <algorithm>
#include <array>

#include "migration/reliable.hpp"
#include "trace/trace.hpp"

namespace ampom::migration {

std::vector<mem::PageId> LightweightEngineBase::select_carried(MigrationContext& ctx) {
  mem::AddressSpace& aspace = ctx.process.aspace();
  const std::array<mem::PageId, 3> current = ctx.process.current_pages();
  std::vector<mem::PageId> carried(current.begin(), current.end());
  std::sort(carried.begin(), carried.end());
  carried.erase(std::unique(carried.begin(), carried.end()), carried.end());
  // Only pages that exist can be carried.
  std::erase_if(carried, [&](mem::PageId p) {
    return aspace.state(p) != mem::PageState::Local;
  });
  return carried;
}

LightweightEngineBase::Prepared LightweightEngineBase::apply_partition(
    MigrationContext& ctx, const std::vector<mem::PageId>& carried) {
  mem::AddressSpace& aspace = ctx.process.aspace();
  mem::PageTable& hpt = ctx.deputy.hpt();

  Prepared prepared;
  prepared.carried = carried;

  auto is_carried = [&](mem::PageId p) {
    return std::find(carried.begin(), carried.end(), p) != carried.end();
  };

  for (mem::PageId page = 0; page < aspace.page_count(); ++page) {
    switch (aspace.state(page)) {
      case mem::PageState::Local:
        if (is_carried(page)) {
          aspace.carry_over(page);
          hpt.set_loc(page, mem::PageTable::Loc::Remote);
          if (ctx.ledger != nullptr) {
            ctx.ledger->transfer(page, ctx.src, ctx.dst);
          }
        } else {
          aspace.demote_to_remote(page);
          hpt.set_loc(page, mem::PageTable::Loc::Here);
          ++prepared.left_behind;
        }
        break;
      case mem::PageState::Unallocated:
        break;  // stays Absent in the HPT
      default:
        throw std::logic_error("LightweightEngineBase: unexpected page state at freeze");
    }
  }
  return prepared;
}

void LightweightEngineBase::run_freeze(MigrationContext ctx, std::vector<mem::PageId> carried,
                                       sim::Bytes extra_bytes, sim::Time extra_pack,
                                       sim::Time extra_unpack,
                                       std::function<void(MigrationResult)> done) {
  MigrationResult result;
  result.initiated_at = ctx.sim.now();
  result.freeze_begin = ctx.sim.now();
  result.pages_transferred = carried.size();
  result.pages_sent_total = carried.size();

  const double src_speed = ctx.src_costs.cpu_speed;
  const sim::Time setup = ctx.src_costs.freeze_setup.scaled(1.0 / src_speed);
  const sim::Time pack = ctx.src_costs.pack_page.scaled(1.0 / src_speed) *
                             static_cast<std::int64_t>(carried.size()) +
                         extra_pack.scaled(1.0 / src_speed);
  const sim::Time send_at = ctx.sim.now() + setup + pack;

  const sim::Bytes page_bytes =
      static_cast<sim::Bytes>(carried.size()) * ctx.wire.page_message_bytes();
  result.bytes_transferred = ctx.wire.pcb_bytes + page_bytes + extra_bytes;

  // Phase spans share the migration's correlation id (pid): pack ends at the
  // already-known send instant, so both edges are recorded up front.
  if (ctx.trace != nullptr) {
    ctx.trace->async_begin(trace::Category::kMigration, "freeze_pack", ctx.sim.now(), ctx.src,
                           ctx.process.pid(), carried.size());
    ctx.trace->async_end(trace::Category::kMigration, "freeze_pack", send_at, ctx.src,
                         ctx.process.pid());
  }

  if (!ctx.reliable()) {
    // Classic fire-and-forget: partition now, time the resume off the
    // fabric's predicted arrivals (byte-identical to the seed protocol).
    apply_partition(ctx, carried);
    ctx.sim.schedule_at(send_at, [ctx, done = std::move(done), result, extra_bytes,
                                  extra_unpack, page_bytes]() mutable {
      const std::uint64_t pid = ctx.process.pid();
      ctx.fabric.send(net::Message{
          ctx.src, ctx.dst, ctx.wire.pcb_bytes,
          net::MigrationChunk{pid, net::MigrationChunk::Kind::Pcb, 1, false}});
      sim::Time last_arrival = ctx.fabric.send(net::Message{
          ctx.src, ctx.dst, page_bytes,
          net::MigrationChunk{pid, net::MigrationChunk::Kind::CurrentPages,
                              result.pages_transferred, extra_bytes == 0}});
      if (extra_bytes > 0) {
        last_arrival = ctx.fabric.send(net::Message{
            ctx.src, ctx.dst, extra_bytes,
            net::MigrationChunk{pid, net::MigrationChunk::Kind::MasterPageTable, 1, true}});
      }

      const double dst_speed = ctx.dst_costs.cpu_speed;
      const sim::Time unpack =
          ctx.dst_costs.unpack_page.scaled(1.0 / dst_speed) *
              static_cast<std::int64_t>(result.pages_transferred) +
          extra_unpack.scaled(1.0 / dst_speed) +
          ctx.dst_costs.restore_setup.scaled(1.0 / dst_speed);
      if (ctx.trace != nullptr) {
        ctx.trace->async_begin(trace::Category::kMigration, "transfer", ctx.sim.now(), ctx.src,
                               pid, result.pages_transferred);
        ctx.trace->async_end(trace::Category::kMigration, "transfer", last_arrival, ctx.src, pid);
        ctx.trace->async_begin(trace::Category::kMigration, "unpack_restore", last_arrival,
                               ctx.src, pid);
        ctx.trace->async_end(trace::Category::kMigration, "unpack_restore", last_arrival + unpack,
                             ctx.src, pid);
      }
      ctx.sim.schedule_at(last_arrival + unpack, [ctx, done = std::move(done), result]() mutable {
        result.resume_at = ctx.sim.now();
        finish_resume(ctx, result, done);
      });
    });
    return;
  }

  // Reliable: the repartition commits only once the destination verifiably
  // holds every chunk; until then the source image stays intact so a lost
  // destination costs nothing but the wasted wire time.
  //
  // The mutation knob reintroduces the bug this ordering prevents: partition
  // eagerly, and on a lost destination resume without rolling the ownership
  // back — exactly what the auditor's abort-trigger check must catch.
  const bool mutate_early_commit = ctx.reliability.mutate_skip_abort_rollback;
  if (mutate_early_commit) {
    apply_partition(ctx, carried);
  }
  ctx.sim.schedule_at(send_at, [ctx, carried = std::move(carried), done = std::move(done),
                                result, extra_bytes, extra_unpack, page_bytes,
                                mutate_early_commit]() mutable {
    std::vector<ReliableTransfer::Item> items;
    items.push_back({net::MigrationChunk::Kind::Pcb, 1, ctx.wire.pcb_bytes, false});
    items.push_back({net::MigrationChunk::Kind::CurrentPages, result.pages_transferred,
                     page_bytes, true});
    if (extra_bytes > 0) {
      items.push_back({net::MigrationChunk::Kind::MasterPageTable, 1, extra_bytes, false});
    }
    ReliableTransfer::run(
        ctx, std::move(items),
        /*on_delivered=*/
        [ctx, carried = std::move(carried), done, result, extra_unpack, mutate_early_commit](
            sim::Time delivered_at, const ReliableTransferStats& st) mutable {
          if (!mutate_early_commit) {
            apply_partition(ctx, carried);
          }
          result.chunk_retransmits = st.chunk_retransmits;
          result.pages_retransmitted = st.pages_retransmitted;
          result.pages_sent_total += st.pages_retransmitted;
          result.bytes_transferred += st.bytes_retransmitted;
          const double dst_speed = ctx.dst_costs.cpu_speed;
          const sim::Time unpack =
              ctx.dst_costs.unpack_page.scaled(1.0 / dst_speed) *
                  static_cast<std::int64_t>(result.pages_transferred) +
              extra_unpack.scaled(1.0 / dst_speed) +
              ctx.dst_costs.restore_setup.scaled(1.0 / dst_speed);
          ctx.sim.schedule_at(delivered_at + unpack,
                              [ctx, done = std::move(done), result]() mutable {
                                result.resume_at = ctx.sim.now();
                                finish_resume(ctx, result, done);
                              });
        },
        /*on_lost=*/
        [ctx, done, result](const ReliableTransferStats& st) mutable {
          result.chunk_retransmits = st.chunk_retransmits;
          result.pages_retransmitted = st.pages_retransmitted;
          result.pages_sent_total += st.pages_retransmitted;
          result.bytes_transferred += st.bytes_retransmitted;
          abort_unfreeze(ctx, result, MigrationOutcome::kDestinationLost, done);
        });
  });
}

void ThreePageEngine::execute(MigrationContext ctx, std::function<void(MigrationResult)> done) {
  std::vector<mem::PageId> carried = select_carried(ctx);
  run_freeze(std::move(ctx), std::move(carried), 0, sim::Time::zero(), sim::Time::zero(),
             std::move(done));
}

void AmpomEngine::execute(MigrationContext ctx, std::function<void(MigrationResult)> done) {
  std::vector<mem::PageId> carried = select_carried(ctx);
  const auto page_count = static_cast<std::int64_t>(ctx.process.aspace().page_count());
  // The MPT: 6 bytes per page on the wire, plus per-entry serialize /
  // install CPU — the linear component of AMPoM's freeze time (Fig. 5).
  const sim::Bytes mpt_bytes = ctx.process.aspace().page_count() * mem::kMptEntryBytes;
  const sim::Time mpt_pack = ctx.src_costs.mpt_pack_entry * page_count;
  const sim::Time mpt_unpack = ctx.dst_costs.mpt_unpack_entry * page_count;
  run_freeze(std::move(ctx), std::move(carried), mpt_bytes, mpt_pack, mpt_unpack,
             std::move(done));
}

}  // namespace ampom::migration
