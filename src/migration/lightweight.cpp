#include "migration/lightweight.hpp"

#include <algorithm>

namespace ampom::migration {

LightweightEngineBase::Prepared LightweightEngineBase::prepare_address_space(
    MigrationContext& ctx) {
  mem::AddressSpace& aspace = ctx.process.aspace();
  mem::PageTable& hpt = ctx.deputy.hpt();

  const std::array<mem::PageId, 3> current = ctx.process.current_pages();
  Prepared prepared;
  prepared.carried.assign(current.begin(), current.end());
  std::sort(prepared.carried.begin(), prepared.carried.end());
  prepared.carried.erase(std::unique(prepared.carried.begin(), prepared.carried.end()),
                         prepared.carried.end());
  // Only pages that exist can be carried.
  std::erase_if(prepared.carried, [&](mem::PageId p) {
    return aspace.state(p) != mem::PageState::Local;
  });

  auto is_carried = [&](mem::PageId p) {
    return std::find(prepared.carried.begin(), prepared.carried.end(), p) !=
           prepared.carried.end();
  };

  for (mem::PageId page = 0; page < aspace.page_count(); ++page) {
    switch (aspace.state(page)) {
      case mem::PageState::Local:
        if (is_carried(page)) {
          aspace.carry_over(page);
          hpt.set_loc(page, mem::PageTable::Loc::Remote);
          if (ctx.ledger != nullptr) {
            ctx.ledger->transfer(page, ctx.src, ctx.dst);
          }
        } else {
          aspace.demote_to_remote(page);
          hpt.set_loc(page, mem::PageTable::Loc::Here);
          ++prepared.left_behind;
        }
        break;
      case mem::PageState::Unallocated:
        break;  // stays Absent in the HPT
      default:
        throw std::logic_error("LightweightEngineBase: unexpected page state at freeze");
    }
  }
  return prepared;
}

void LightweightEngineBase::run_freeze(MigrationContext ctx, Prepared prepared,
                                       sim::Bytes extra_bytes, sim::Time extra_pack,
                                       sim::Time extra_unpack,
                                       std::function<void(MigrationResult)> done) {
  MigrationResult result;
  result.initiated_at = ctx.sim.now();
  result.freeze_begin = ctx.sim.now();
  result.pages_transferred = prepared.carried.size();
  result.pages_sent_total = prepared.carried.size();

  const double src_speed = ctx.src_costs.cpu_speed;
  const sim::Time setup = ctx.src_costs.freeze_setup.scaled(1.0 / src_speed);
  const sim::Time pack = ctx.src_costs.pack_page.scaled(1.0 / src_speed) *
                             static_cast<std::int64_t>(prepared.carried.size()) +
                         extra_pack.scaled(1.0 / src_speed);
  const sim::Time send_at = ctx.sim.now() + setup + pack;

  const sim::Bytes page_bytes =
      static_cast<sim::Bytes>(prepared.carried.size()) * ctx.wire.page_message_bytes();
  result.bytes_transferred = ctx.wire.pcb_bytes + page_bytes + extra_bytes;

  ctx.sim.schedule_at(send_at, [ctx, done = std::move(done), result, extra_bytes, extra_unpack,
                                page_bytes]() mutable {
    const std::uint64_t pid = ctx.process.pid();
    ctx.fabric.send(net::Message{
        ctx.src, ctx.dst, ctx.wire.pcb_bytes,
        net::MigrationChunk{pid, net::MigrationChunk::Kind::Pcb, 1, false}});
    sim::Time last_arrival = ctx.fabric.send(net::Message{
        ctx.src, ctx.dst, page_bytes,
        net::MigrationChunk{pid, net::MigrationChunk::Kind::CurrentPages,
                            result.pages_transferred, extra_bytes == 0}});
    if (extra_bytes > 0) {
      last_arrival = ctx.fabric.send(net::Message{
          ctx.src, ctx.dst, extra_bytes,
          net::MigrationChunk{pid, net::MigrationChunk::Kind::MasterPageTable, 1, true}});
    }

    const double dst_speed = ctx.dst_costs.cpu_speed;
    const sim::Time unpack =
        ctx.dst_costs.unpack_page.scaled(1.0 / dst_speed) *
            static_cast<std::int64_t>(result.pages_transferred) +
        extra_unpack.scaled(1.0 / dst_speed) +
        ctx.dst_costs.restore_setup.scaled(1.0 / dst_speed);
    ctx.sim.schedule_at(last_arrival + unpack, [ctx, done = std::move(done), result]() mutable {
      result.resume_at = ctx.sim.now();
      finish_resume(ctx, result, done);
    });
  });
}

void ThreePageEngine::execute(MigrationContext ctx, std::function<void(MigrationResult)> done) {
  Prepared prepared = prepare_address_space(ctx);
  run_freeze(std::move(ctx), std::move(prepared), 0, sim::Time::zero(), sim::Time::zero(),
             std::move(done));
}

void AmpomEngine::execute(MigrationContext ctx, std::function<void(MigrationResult)> done) {
  Prepared prepared = prepare_address_space(ctx);
  const auto page_count = static_cast<std::int64_t>(ctx.process.aspace().page_count());
  // The MPT: 6 bytes per page on the wire, plus per-entry serialize /
  // install CPU — the linear component of AMPoM's freeze time (Fig. 5).
  const sim::Bytes mpt_bytes = ctx.process.aspace().page_count() * mem::kMptEntryBytes;
  const sim::Time mpt_pack = ctx.src_costs.mpt_pack_entry * page_count;
  const sim::Time mpt_unpack = ctx.dst_costs.mpt_unpack_entry * page_count;
  run_freeze(std::move(ctx), std::move(prepared), mpt_bytes, mpt_pack, mpt_unpack,
             std::move(done));
}

}  // namespace ampom::migration
