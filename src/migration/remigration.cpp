#include "migration/remigration.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <set>
#include <stdexcept>
#include <vector>

#include "cluster/node.hpp"
#include "trace/trace.hpp"

namespace ampom::migration {

namespace {

// Reliable flush: tracks the background B -> H flush stream page-by-page
// against the deputy's FlushAcks and re-flushes whatever is still unacked
// after a timeout round. Self-owning; dissolves when every page is acked or
// the retry budget is spent (home presumed dead — failure detection and
// deputy-side recovery take over from there).
class FlushTracker : public std::enable_shared_from_this<FlushTracker> {
 public:
  static std::shared_ptr<FlushTracker> create(const MigrationContext& ctx, net::NodeId home,
                                              const std::vector<mem::PageId>& pages,
                                              RemigrationEngine::FlushStats* sink,
                                              std::uint64_t chunk_count) {
    auto t = std::shared_ptr<FlushTracker>(
        new FlushTracker(ctx, home, pages, sink, chunk_count));
    t->self_ = t;
    t->src_node_->set_flush_ack_handler(
        t->pid_, [t](const net::FlushAck& ack) { t->on_ack(ack); });
    return t;
  }

  // Called by each flush-chunk send event with the predicted arrival of its
  // last page; the round timer arms once the final chunk is on the wire.
  void chunk_sent(sim::Time predicted_last) {
    if (done_) {
      return;
    }
    last_predicted_ = std::max(last_predicted_, predicted_last);
    if (++chunks_sent_ == chunk_count_) {
      arm();
    }
  }

 private:
  FlushTracker(const MigrationContext& ctx, net::NodeId home,
               const std::vector<mem::PageId>& pages, RemigrationEngine::FlushStats* sink,
               std::uint64_t chunk_count)
      : sim_{ctx.sim},
        fabric_{ctx.fabric},
        wire_{ctx.wire},
        src_{ctx.src},
        home_{home},
        pid_{ctx.process.pid()},
        src_node_{ctx.src_node},
        config_{ctx.reliability},
        trace_{ctx.trace},
        sink_{sink},
        chunk_count_{chunk_count},
        outstanding_(pages.begin(), pages.end()) {}

  void on_ack(const net::FlushAck& ack) {
    const auto it = outstanding_.find(ack.page);
    if (it == outstanding_.end()) {
      return;
    }
    outstanding_.erase(it);
    ++sink_->pages_flushed;
    if (outstanding_.empty()) {
      sim_.cancel(timer_);
      cleanup();
    }
  }

  void arm() {
    const sim::Time grace = config_.ack_grace.scaled(
        std::pow(config_.backoff_factor, static_cast<double>(rounds_)));
    timer_ = sim_.schedule_at(std::max(last_predicted_, sim_.now()) + grace,
                              [self = shared_from_this()] { self->on_timeout(); });
  }

  void on_timeout() {
    if (done_) {
      return;
    }
    ++sink_->timeout_rounds;
    ++rounds_;
    if (rounds_ > config_.max_retries) {
      sink_->abandoned += outstanding_.size();
      cleanup();
      return;
    }
    for (const mem::PageId page : outstanding_) {
      last_predicted_ = std::max(
          last_predicted_, fabric_.send(net::Message{src_, home_, wire_.page_message_bytes(),
                                                     net::FlushPage{pid_, page}, page}));
      ++sink_->retransmits;
      if (trace_ != nullptr) {
        trace_->instant(trace::Category::kMigration, "flush_retransmit", sim_.now(), src_, page,
                        rounds_);
      }
    }
    arm();
  }

  void cleanup() {
    done_ = true;
    src_node_->set_flush_ack_handler(pid_, nullptr);
    self_.reset();
  }

  sim::Simulator& sim_;
  net::Fabric& fabric_;
  proc::WireCosts wire_;
  net::NodeId src_;
  net::NodeId home_;
  std::uint64_t pid_;
  cluster::Node* src_node_;
  MigrationReliability config_;
  trace::TraceRecorder* trace_;
  RemigrationEngine::FlushStats* sink_;
  std::uint64_t chunk_count_;
  std::uint64_t chunks_sent_{0};
  std::uint32_t rounds_{0};
  bool done_{false};
  sim::Time last_predicted_{};
  sim::Simulator::EventId timer_;
  std::set<mem::PageId> outstanding_;
  std::shared_ptr<FlushTracker> self_;
};

}  // namespace

RemigrationEngine::RemigrationEngine(Config config) : config_{config} {
  if (config.flush_chunk_pages == 0) {
    throw std::invalid_argument("RemigrationEngine: flush_chunk_pages must be positive");
  }
}

void RemigrationEngine::execute(MigrationContext ctx,
                                std::function<void(MigrationResult)> done) {
  // Outstanding prefetches (H -> B) must land before the address space can
  // be repartitioned; the process is already frozen, so they drain quickly.
  if (ctx.process.aspace().count(mem::PageState::InFlight) > 0) {
    ctx.sim.schedule_after(sim::Time::from_us(500),
                           [this, ctx = std::move(ctx), done = std::move(done)]() mutable {
                             execute(std::move(ctx), std::move(done));
                           });
    return;
  }
  execute_drained(std::move(ctx), std::move(done));
}

void RemigrationEngine::execute_drained(MigrationContext ctx,
                                        std::function<void(MigrationResult)> done) {
  mem::AddressSpace& aspace = ctx.process.aspace();
  mem::PageTable& hpt = ctx.deputy.hpt();
  const net::NodeId home = ctx.process.home_node();
  if (ctx.src == home) {
    throw std::logic_error("RemigrationEngine: process is at home; use a first-hop engine");
  }

  MigrationResult result;
  result.initiated_at = ctx.sim.now();
  result.freeze_begin = ctx.sim.now();

  // Pages parked in the lookaside buffer are physically at B: map them so
  // they join the flushable set.
  const std::uint64_t mapped = aspace.map_all_arrived();

  // Select the three currently-accessed pages among B's local ones.
  const std::array<mem::PageId, 3> current = ctx.process.current_pages();
  std::vector<mem::PageId> carried(current.begin(), current.end());
  std::sort(carried.begin(), carried.end());
  carried.erase(std::unique(carried.begin(), carried.end()), carried.end());
  std::erase_if(carried, [&](mem::PageId p) {
    return aspace.state(p) != mem::PageState::Local;
  });

  auto is_carried = [&](mem::PageId p) {
    return std::find(carried.begin(), carried.end(), p) != carried.end();
  };

  // Repartition: carried pages move with the process; every other B-local
  // page is flushed home (HPT: Incoming until it lands).
  std::vector<mem::PageId> to_flush;
  for (mem::PageId page = 0; page < aspace.page_count(); ++page) {
    switch (aspace.state(page)) {
      case mem::PageState::Local:
        if (is_carried(page)) {
          aspace.carry_over(page);
          if (ctx.ledger != nullptr) {
            ctx.ledger->transfer(page, ctx.src, ctx.dst);
          }
        } else {
          aspace.demote_to_remote(page);
          hpt.set_loc(page, mem::PageTable::Loc::Incoming);
          to_flush.push_back(page);
        }
        break;
      case mem::PageState::Remote:
      case mem::PageState::Unallocated:
        break;  // stays at home / nonexistent
      default:
        throw std::logic_error("RemigrationEngine: undrained page state at freeze");
    }
  }
  result.pages_transferred = carried.size();
  result.pages_sent_total = carried.size();

  // --- freeze-time transfer B -> C -----------------------------------------
  const double src_speed = ctx.src_costs.cpu_speed;
  const auto page_count = static_cast<std::int64_t>(aspace.page_count());
  const sim::Time setup = ctx.src_costs.freeze_setup.scaled(1.0 / src_speed) +
                          ctx.src_costs.map_page.scaled(1.0 / src_speed) *
                              static_cast<std::int64_t>(mapped);
  sim::Time pack = ctx.src_costs.pack_page.scaled(1.0 / src_speed) *
                   static_cast<std::int64_t>(carried.size());
  sim::Bytes mpt_bytes = 0;
  sim::Time mpt_unpack = sim::Time::zero();
  if (config_.ship_mpt) {
    mpt_bytes = aspace.page_count() * mem::kMptEntryBytes;
    pack += ctx.src_costs.mpt_pack_entry.scaled(1.0 / src_speed) * page_count;
    mpt_unpack = ctx.dst_costs.mpt_unpack_entry.scaled(1.0 / ctx.dst_costs.cpu_speed) *
                 page_count;
  }
  const sim::Bytes page_bytes =
      static_cast<sim::Bytes>(carried.size()) * ctx.wire.page_message_bytes();
  result.bytes_transferred = ctx.wire.pcb_bytes + page_bytes + mpt_bytes;

  const sim::Time send_at = ctx.sim.now() + setup + pack;
  ctx.sim.schedule_at(send_at, [ctx, done = std::move(done), result, page_bytes, mpt_bytes,
                                mpt_unpack, to_flush = std::move(to_flush),
                                flush_chunk = config_.flush_chunk_pages, home,
                                sink = &flush_stats_]() mutable {
    const std::uint64_t pid = ctx.process.pid();
    ctx.fabric.send(net::Message{
        ctx.src, ctx.dst, ctx.wire.pcb_bytes,
        net::MigrationChunk{pid, net::MigrationChunk::Kind::Pcb, 1, false}});
    sim::Time last_arrival = ctx.fabric.send(net::Message{
        ctx.src, ctx.dst, page_bytes,
        net::MigrationChunk{pid, net::MigrationChunk::Kind::CurrentPages,
                            result.pages_transferred, mpt_bytes == 0}});
    if (mpt_bytes > 0) {
      last_arrival = ctx.fabric.send(net::Message{
          ctx.src, ctx.dst, mpt_bytes,
          net::MigrationChunk{pid, net::MigrationChunk::Kind::MasterPageTable, 1, true}});
    }

    const sim::Time unpack =
        ctx.dst_costs.unpack_page.scaled(1.0 / ctx.dst_costs.cpu_speed) *
            static_cast<std::int64_t>(result.pages_transferred) +
        mpt_unpack + ctx.dst_costs.restore_setup.scaled(1.0 / ctx.dst_costs.cpu_speed);

    // --- background flush B -> H, after the freeze transfer -----------------
    // B's kernel streams the left-behind pages home; they ride behind the
    // freeze chunks on B's TX port. In reliable mode a FlushTracker follows
    // the stream against the deputy's acks and re-flushes losses.
    std::shared_ptr<FlushTracker> tracker;
    if (ctx.reliable() && !to_flush.empty()) {
      const std::uint64_t chunk_count =
          (to_flush.size() + flush_chunk - 1) / flush_chunk;
      tracker = FlushTracker::create(ctx, home, to_flush, sink, chunk_count);
    }
    sim::Time flush_pack_done = ctx.sim.now();
    const sim::Time pack_per_page =
        ctx.src_costs.pack_page.scaled(1.0 / ctx.src_costs.cpu_speed);
    for (std::uint64_t first = 0; first < to_flush.size(); first += flush_chunk) {
      const std::uint64_t count =
          std::min<std::uint64_t>(flush_chunk, to_flush.size() - first);
      flush_pack_done += pack_per_page * static_cast<std::int64_t>(count);
      std::vector<mem::PageId> chunk(to_flush.begin() + static_cast<std::ptrdiff_t>(first),
                                     to_flush.begin() +
                                         static_cast<std::ptrdiff_t>(first + count));
      ctx.sim.schedule_at(flush_pack_done,
                          [&fabric = ctx.fabric, src = ctx.src, home, pid,
                           wire = ctx.wire, chunk = std::move(chunk), tracker] {
                            sim::Time last{};
                            for (const mem::PageId page : chunk) {
                              last = std::max(
                                  last,
                                  fabric.send(net::Message{src, home,
                                                           wire.page_message_bytes(),
                                                           net::FlushPage{pid, page}, page}));
                            }
                            if (tracker != nullptr) {
                              tracker->chunk_sent(last);
                            }
                          });
    }

    ctx.sim.schedule_at(last_arrival + unpack, [ctx, done = std::move(done), result]() mutable {
      result.resume_at = ctx.sim.now();
      MigrationEngine::finish_resume(ctx, result, done);
    });
  });
}

}  // namespace ampom::migration
