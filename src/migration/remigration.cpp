#include "migration/remigration.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace ampom::migration {

RemigrationEngine::RemigrationEngine(Config config) : config_{config} {
  if (config.flush_chunk_pages == 0) {
    throw std::invalid_argument("RemigrationEngine: flush_chunk_pages must be positive");
  }
}

void RemigrationEngine::execute(MigrationContext ctx,
                                std::function<void(MigrationResult)> done) {
  // Outstanding prefetches (H -> B) must land before the address space can
  // be repartitioned; the process is already frozen, so they drain quickly.
  if (ctx.process.aspace().count(mem::PageState::InFlight) > 0) {
    ctx.sim.schedule_after(sim::Time::from_us(500),
                           [this, ctx = std::move(ctx), done = std::move(done)]() mutable {
                             execute(std::move(ctx), std::move(done));
                           });
    return;
  }
  execute_drained(std::move(ctx), std::move(done));
}

void RemigrationEngine::execute_drained(MigrationContext ctx,
                                        std::function<void(MigrationResult)> done) {
  mem::AddressSpace& aspace = ctx.process.aspace();
  mem::PageTable& hpt = ctx.deputy.hpt();
  const net::NodeId home = ctx.process.home_node();
  if (ctx.src == home) {
    throw std::logic_error("RemigrationEngine: process is at home; use a first-hop engine");
  }

  MigrationResult result;
  result.initiated_at = ctx.sim.now();
  result.freeze_begin = ctx.sim.now();

  // Pages parked in the lookaside buffer are physically at B: map them so
  // they join the flushable set.
  const std::uint64_t mapped = aspace.map_all_arrived();

  // Select the three currently-accessed pages among B's local ones.
  const std::array<mem::PageId, 3> current = ctx.process.current_pages();
  std::vector<mem::PageId> carried(current.begin(), current.end());
  std::sort(carried.begin(), carried.end());
  carried.erase(std::unique(carried.begin(), carried.end()), carried.end());
  std::erase_if(carried, [&](mem::PageId p) {
    return aspace.state(p) != mem::PageState::Local;
  });

  auto is_carried = [&](mem::PageId p) {
    return std::find(carried.begin(), carried.end(), p) != carried.end();
  };

  // Repartition: carried pages move with the process; every other B-local
  // page is flushed home (HPT: Incoming until it lands).
  std::vector<mem::PageId> to_flush;
  for (mem::PageId page = 0; page < aspace.page_count(); ++page) {
    switch (aspace.state(page)) {
      case mem::PageState::Local:
        if (is_carried(page)) {
          aspace.carry_over(page);
          if (ctx.ledger != nullptr) {
            ctx.ledger->transfer(page, ctx.src, ctx.dst);
          }
        } else {
          aspace.demote_to_remote(page);
          hpt.set_loc(page, mem::PageTable::Loc::Incoming);
          to_flush.push_back(page);
        }
        break;
      case mem::PageState::Remote:
      case mem::PageState::Unallocated:
        break;  // stays at home / nonexistent
      default:
        throw std::logic_error("RemigrationEngine: undrained page state at freeze");
    }
  }
  result.pages_transferred = carried.size();
  result.pages_sent_total = carried.size();

  // --- freeze-time transfer B -> C -----------------------------------------
  const double src_speed = ctx.src_costs.cpu_speed;
  const auto page_count = static_cast<std::int64_t>(aspace.page_count());
  const sim::Time setup = ctx.src_costs.freeze_setup.scaled(1.0 / src_speed) +
                          ctx.src_costs.map_page.scaled(1.0 / src_speed) *
                              static_cast<std::int64_t>(mapped);
  sim::Time pack = ctx.src_costs.pack_page.scaled(1.0 / src_speed) *
                   static_cast<std::int64_t>(carried.size());
  sim::Bytes mpt_bytes = 0;
  sim::Time mpt_unpack = sim::Time::zero();
  if (config_.ship_mpt) {
    mpt_bytes = aspace.page_count() * mem::kMptEntryBytes;
    pack += ctx.src_costs.mpt_pack_entry.scaled(1.0 / src_speed) * page_count;
    mpt_unpack = ctx.dst_costs.mpt_unpack_entry.scaled(1.0 / ctx.dst_costs.cpu_speed) *
                 page_count;
  }
  const sim::Bytes page_bytes =
      static_cast<sim::Bytes>(carried.size()) * ctx.wire.page_message_bytes();
  result.bytes_transferred = ctx.wire.pcb_bytes + page_bytes + mpt_bytes;

  const sim::Time send_at = ctx.sim.now() + setup + pack;
  ctx.sim.schedule_at(send_at, [ctx, done = std::move(done), result, page_bytes, mpt_bytes,
                                mpt_unpack, to_flush = std::move(to_flush),
                                flush_chunk = config_.flush_chunk_pages, home]() mutable {
    const std::uint64_t pid = ctx.process.pid();
    ctx.fabric.send(net::Message{
        ctx.src, ctx.dst, ctx.wire.pcb_bytes,
        net::MigrationChunk{pid, net::MigrationChunk::Kind::Pcb, 1, false}});
    sim::Time last_arrival = ctx.fabric.send(net::Message{
        ctx.src, ctx.dst, page_bytes,
        net::MigrationChunk{pid, net::MigrationChunk::Kind::CurrentPages,
                            result.pages_transferred, mpt_bytes == 0}});
    if (mpt_bytes > 0) {
      last_arrival = ctx.fabric.send(net::Message{
          ctx.src, ctx.dst, mpt_bytes,
          net::MigrationChunk{pid, net::MigrationChunk::Kind::MasterPageTable, 1, true}});
    }

    const sim::Time unpack =
        ctx.dst_costs.unpack_page.scaled(1.0 / ctx.dst_costs.cpu_speed) *
            static_cast<std::int64_t>(result.pages_transferred) +
        mpt_unpack + ctx.dst_costs.restore_setup.scaled(1.0 / ctx.dst_costs.cpu_speed);

    // --- background flush B -> H, after the freeze transfer -----------------
    // B's kernel streams the left-behind pages home; they ride behind the
    // freeze chunks on B's TX port.
    sim::Time flush_pack_done = ctx.sim.now();
    const sim::Time pack_per_page =
        ctx.src_costs.pack_page.scaled(1.0 / ctx.src_costs.cpu_speed);
    for (std::uint64_t first = 0; first < to_flush.size(); first += flush_chunk) {
      const std::uint64_t count =
          std::min<std::uint64_t>(flush_chunk, to_flush.size() - first);
      flush_pack_done += pack_per_page * static_cast<std::int64_t>(count);
      std::vector<mem::PageId> chunk(to_flush.begin() + static_cast<std::ptrdiff_t>(first),
                                     to_flush.begin() +
                                         static_cast<std::ptrdiff_t>(first + count));
      ctx.sim.schedule_at(flush_pack_done,
                          [&fabric = ctx.fabric, src = ctx.src, home, pid,
                           wire = ctx.wire, chunk = std::move(chunk)] {
                            for (const mem::PageId page : chunk) {
                              fabric.send(net::Message{src, home, wire.page_message_bytes(),
                                                       net::FlushPage{pid, page}});
                            }
                          });
    }

    ctx.sim.schedule_at(last_arrival + unpack, [ctx, done = std::move(done), result]() mutable {
      result.resume_at = ctx.sim.now();
      MigrationEngine::finish_resume(ctx, result, done);
    });
  });
}

}  // namespace ampom::migration
