#pragma once
// Lightweight migration engines (paper §2.1, Fig. 2 middle/right panels).
//
// Both ship only the PCB and the three currently-accessed pages (code,
// data/heap, stack) during the freeze, leaving every other page at the
// home node for the deputy to serve. The AMPoM variant additionally ships
// the master page table (6 bytes per page), which is what makes its freeze
// time grow linearly with the address-space size in Fig. 5.
//
// In reliable mode (MigrationContext::reliable()) the freeze chunks travel
// over the ack'd ReliableTransfer protocol and the destructive repartition
// (demotions, HPT population, ledger transfers) is deferred until the
// destination has actually received every chunk — so a transfer aborted by
// a dead destination leaves the source image intact and the process simply
// unfreezes in place.

#include <vector>

#include "migration/engine.hpp"

namespace ampom::migration {

class LightweightEngineBase : public MigrationEngine {
 protected:
  struct Prepared {
    std::vector<mem::PageId> carried;  // the pages shipped in the freeze
    std::uint64_t left_behind{0};
  };

  // The pages that travel with the process: the current three, deduplicated,
  // restricted to Local ones. Pure — no address-space mutation.
  static std::vector<mem::PageId> select_carried(MigrationContext& ctx);

  // Demote all local pages except the carried ones; populate the HPT and
  // the ledger accordingly. The destructive half of the freeze.
  static Prepared apply_partition(MigrationContext& ctx,
                                  const std::vector<mem::PageId>& carried);

  // Run the common freeze timeline:
  //   setup -> pack(3 pages) -> [extra_pack] -> send PCB + pages [+ extra]
  //   -> last arrival -> unpack(3 pages) -> [extra_unpack] -> restore -> resume
  // `extra_bytes` is the AMPoM MPT payload (0 for NoPrefetch). Classic mode
  // partitions up front and times the resume off predicted arrivals;
  // reliable mode partitions at verified delivery and can abort.
  static void run_freeze(MigrationContext ctx, std::vector<mem::PageId> carried,
                         sim::Bytes extra_bytes, sim::Time extra_pack,
                         sim::Time extra_unpack, std::function<void(MigrationResult)> done);
};

// The paper's "NoPrefetch" baseline: three pages, demand paging afterwards.
class ThreePageEngine final : public LightweightEngineBase {
 public:
  [[nodiscard]] const char* name() const override { return "NoPrefetch"; }
  void execute(MigrationContext ctx, std::function<void(MigrationResult)> done) override;
};

// AMPoM's mechanism: three pages plus the master page table.
class AmpomEngine final : public LightweightEngineBase {
 public:
  [[nodiscard]] const char* name() const override { return "AMPoM"; }
  void execute(MigrationContext ctx, std::function<void(MigrationResult)> done) override;
};

}  // namespace ampom::migration
