#pragma once
// Dependent-zone sizing and page selection (paper §3.3-§3.4).
//
// N = (c'/c) * S * r * t   with   t = 2*t0 + td + 1/r        (Eq. 3)
//
// which expands to N = (c'/c) * S * (r * (2*t0 + td) + 1): the number of
// pages the process will consume during one prefetch round trip, scaled by
// how strongly it is striding (S) and how much faster it could run (c'/c).
//
// Page selection: N/m pages after each of the m outstanding-stream pivots;
// quota saved on pages already selected by another stream extends that
// stream further. With no outstanding stream, the N pages after the last
// reference are selected (Linux-style read-ahead).

#include <cstdint>
#include <vector>

#include "core/config.hpp"
#include "core/locality.hpp"
#include "core/lookback_window.hpp"
#include "simcore/time.hpp"

namespace ampom::core {

struct ZoneInputs {
  double locality_score{0.0};  // S
  double paging_rate_hz{0.0};  // r
  double cpu_mean{1.0};        // c  (average C_i over W)
  double cpu_next{1.0};        // c' (expected share over the next period)
  sim::Time rtt_one_way{};     // t0
  sim::Time page_transfer{};   // td
};

// Number of pages in the dependent zone (Eq. 3), clamped to
// [0, config.zone_cap]; returns config.fallback_zone when the paging rate is
// not yet measurable.
[[nodiscard]] std::uint64_t zone_size(const ZoneInputs& in, const AmpomConfig& config);

// Which pages form the zone. `total_pages` clips at the end of the address
// space. The result preserves stream order and contains no duplicates.
[[nodiscard]] std::vector<mem::PageId> select_zone(const LookbackWindow& window,
                                                   const std::vector<StrideStream>& streams,
                                                   std::uint64_t zone_pages,
                                                   std::uint64_t total_pages);

}  // namespace ampom::core
