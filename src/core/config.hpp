#pragma once
// Tunables of the AMPoM algorithm. Defaults are the paper's implementation
// choices (§4): lookback window of 20, strides up to dmax = 4. The remaining
// knobs bound and ablate the design (bench/ablation_*).

#include <cstddef>
#include <cstdint>

#include "simcore/time.hpp"

namespace ampom::core {

struct AmpomConfig {
  // Length l of the lookback window W (paper: 20; must be <= 64 because the
  // stride analysis uses 64-bit participation masks).
  std::size_t lookback_length{20};

  // Maximum stride analyzed (paper: 4 — "most programs perform at most
  // two-level indirect memory references").
  std::size_t dmax{4};

  // Hard clamp on the dependent-zone size N; bounds worst-case prefetch
  // burstiness (Eq. 3 is unbounded when the paging rate spikes).
  std::uint64_t zone_cap{256};

  // Floor on N: the fixed-size read-ahead baseline the paper observes even
  // when the access pattern is unclear (§5.3: the scheme "serves as a
  // 'baseline' of prefetching aggressiveness"). This is what keeps
  // RandomAccess partially prefetched.
  std::uint64_t min_zone{8};

  // Zone size used while the window holds fewer than two entries (no paging
  // rate measurable yet) — the initial read-ahead.
  std::uint64_t fallback_zone{8};

  // Send one batched request per fault (paper's design). Off = one request
  // per page, for the ablation of batching.
  bool batch_requests{true};

  // §7 extension ("a tailored AMPoM for migrating virtual machines whose
  // memory references are consisted of access streams from multiple
  // processes"): partition the address space into this many regions, each
  // with its own lookback window, so interleaved per-process streams do not
  // drown each other's stride patterns. 1 = the paper's single window.
  std::size_t window_partitions{1};

  // Analysis cost charged per fault: base + per_slot * l * dmax. Calibrated
  // so the total stays within the paper's Fig. 11 envelope (< 0.6 % of
  // runtime).
  sim::Time analysis_base{sim::Time::from_ns(600)};
  sim::Time analysis_per_slot{sim::Time::from_ns(12)};

  [[nodiscard]] sim::Time analysis_cost() const {
    return analysis_base +
           analysis_per_slot * static_cast<std::int64_t>(lookback_length * dmax);
  }
};

}  // namespace ampom::core
