#include "core/ampom_policy.hpp"

#include <algorithm>
#include <stdexcept>

namespace ampom::core {

AmpomPolicy::AmpomPolicy(sim::Simulator& simulator, proc::Executor& executor,
                         proc::PagingClient& client, AmpomConfig config,
                         ResourceProvider resources)
    : sim_{simulator},
      executor_{executor},
      client_{client},
      config_{config},
      resources_{std::move(resources)},
      analyzer_{config.dmax} {
  if (!resources_) {
    throw std::invalid_argument("AmpomPolicy requires a resource provider");
  }
  if (config_.window_partitions == 0) {
    throw std::invalid_argument("AmpomPolicy: window_partitions must be >= 1");
  }
  windows_.reserve(config_.window_partitions);
  for (std::size_t i = 0; i < config_.window_partitions; ++i) {
    windows_.emplace_back(config_.lookback_length);
  }
  if (config_.window_partitions > 1) {
    global_window_.emplace(config_.lookback_length);
  }
}

LookbackWindow& AmpomPolicy::partition_of(mem::PageId page) {
  if (windows_.size() == 1) {
    return windows_.front();
  }
  const std::uint64_t total = executor_.process().aspace().page_count();
  const std::uint64_t span = (total + windows_.size() - 1) / windows_.size();
  const std::size_t idx = static_cast<std::size_t>(page / span);
  return windows_[std::min(idx, windows_.size() - 1)];
}

const LookbackWindow& AmpomPolicy::window_for(mem::PageId page) const {
  return const_cast<AmpomPolicy*>(this)->partition_of(page);
}

void AmpomPolicy::on_fault(proc::Process& process, mem::PageId page, mem::AccessKind kind) {
  mem::AddressSpace& aspace = process.aspace();
  ++stats_.faults_seen;

  // 1. Pages prefetched earlier have arrived: copy them into the address
  //    space (lookaside buffer drain).
  const std::uint64_t mapped = aspace.map_all_arrived();
  if (mapped > 0) {
    executor_.charge_handler(executor_.costs().map_page * static_cast<std::int64_t>(mapped));
  }

  // 2. Record the fault (in the page's partition window, and in the global
  //    window that tracks the process-wide paging rate).
  LookbackWindow& window = partition_of(page);
  if (window.record(page, sim_.now(), executor_.recent_cpu_fraction())) {
    ++stats_.window_records;
  }
  LookbackWindow& rate_window = global_window_ ? *global_window_ : window;
  if (global_window_) {
    global_window_->record(page, sim_.now(), executor_.recent_cpu_fraction());
  }

  // 3.-5. Score, zone size, zone pages.
  const sim::Time analysis = config_.analysis_cost();
  executor_.charge_handler(analysis);
  stats_.analysis_time += analysis;

  const double score = analyzer_.score(window);
  const ResourceEstimates res = resources_();
  ZoneInputs inputs;
  inputs.locality_score = score;
  inputs.paging_rate_hz = rate_window.paging_rate_hz();
  inputs.cpu_mean = rate_window.mean_cpu();
  inputs.cpu_next = res.expected_cpu_share;
  inputs.rtt_one_way = res.rtt_one_way;
  inputs.page_transfer = res.page_transfer;
  const std::uint64_t n = zone_size(inputs, config_);
  const std::vector<StrideStream> streams = analyzer_.outstanding_streams(window);
  if (trace_) {
    trace_(inputs, n, streams.size());
  }
  const std::vector<mem::PageId> zone =
      select_zone(window, streams, n, aspace.page_count());
  stats_.last_score = score;
  stats_.last_zone_size = n;
  stats_.zone_pages_considered += zone.size();

  // 6. Record the pages that are "not stored locally" in the request.
  std::vector<mem::PageId> missing;
  missing.reserve(zone.size());
  for (const mem::PageId z : zone) {
    if (z != page && aspace.state(z) == mem::PageState::Remote) {
      missing.push_back(z);
    }
  }

  // 7. Resolve the faulted page itself.
  const mem::AccessKind now_kind =
      kind == mem::AccessKind::SoftFault ? aspace.classify(page) : kind;
  switch (now_kind) {
    case mem::AccessKind::Hit: {
      // The faulted page was in the lookaside buffer and step 1 mapped it.
      send_requests(std::move(missing), mem::kInvalidPage);
      executor_.complete_fault(page);
      return;
    }
    case mem::AccessKind::HardFault: {
      blocked_page_ = page;
      aspace.mark_in_flight(page);
      std::vector<mem::PageId> batch;
      batch.reserve(missing.size() + 1);
      batch.push_back(page);
      batch.insert(batch.end(), missing.begin(), missing.end());
      send_requests(std::move(batch), page);
      return;  // resumes when the urgent page arrives
    }
    case mem::AccessKind::InFlightWait: {
      // Already requested as a prefetch; wait for it, but still issue the
      // new prefetches the analysis found.
      blocked_page_ = page;
      send_requests(std::move(missing), mem::kInvalidPage);
      return;
    }
    default:
      throw std::logic_error("AmpomPolicy::on_fault: unexpected access kind");
  }
}

void AmpomPolicy::send_requests(std::vector<mem::PageId> pages, mem::PageId urgent) {
  if (pages.empty()) {
    return;
  }
  mem::AddressSpace& aspace = executor_.process().aspace();
  for (const mem::PageId p : pages) {
    if (p == urgent) {
      continue;  // already marked InFlight by the caller
    }
    aspace.mark_in_flight(p);
    ++stats_.prefetch_pages_issued;
  }

  const sim::Time build = executor_.costs().request_build;
  if (config_.batch_requests) {
    ++stats_.requests_sent;
    sim_.schedule_after(build, [this, batch = std::move(pages), urgent] {
      client_.request_pages(batch, urgent);
    });
    return;
  }
  // Ablation: one request per page (no batching).
  std::int64_t i = 0;
  for (const mem::PageId p : pages) {
    ++stats_.requests_sent;
    sim_.schedule_after(build * (i + 1), [this, p, urgent] {
      client_.request_pages({p}, p == urgent ? p : mem::kInvalidPage);
    });
    ++i;
  }
}

void AmpomPolicy::on_arrival(mem::PageId page, bool /*urgent*/) {
  proc::Process& process = executor_.process();
  mem::AddressSpace& aspace = process.aspace();
  aspace.mark_arrived(page);
  if (page == blocked_page_) {
    blocked_page_ = mem::kInvalidPage;
    aspace.map_arrived_page(page);
    executor_.charge_handler(executor_.costs().map_page);
    executor_.complete_fault(page);
  }
}

}  // namespace ampom::core
