#pragma once
// The lookback window W with its companion arrays T and C (paper §3.1).
//
// W records the addresses of recently faulted pages; T their access times;
// C the CPU utilization at each record. Consecutive repeated references to
// the same page are temporal locality and collapse into a single entry
// (r_p != r_{p+1} for all p).

#include <cstddef>
#include <stdexcept>
#include <vector>

#include "mem/page.hpp"
#include "simcore/time.hpp"

namespace ampom::core {

class LookbackWindow {
 public:
  struct Entry {
    mem::PageId page{mem::kInvalidPage};
    sim::Time when{};
    double cpu{0.0};
  };

  explicit LookbackWindow(std::size_t capacity) : ring_(capacity) {
    if (capacity < 2 || capacity > 64) {
      throw std::invalid_argument("LookbackWindow capacity must be in [2, 64]");
    }
  }

  // Record fault `page` at `when` with CPU utilization `cpu`. Returns false
  // when collapsed into the previous entry (consecutive repeat).
  bool record(mem::PageId page, sim::Time when, double cpu) {
    if (size_ > 0 && last_page() == page) {
      return false;
    }
    ring_[(head_ + size_) % ring_.size()] = Entry{page, when, cpu};
    if (size_ < ring_.size()) {
      ++size_;
    } else {
      head_ = (head_ + 1) % ring_.size();
    }
    return true;
  }

  [[nodiscard]] std::size_t capacity() const { return ring_.size(); }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool full() const { return size_ == ring_.size(); }

  // i = 0 is the oldest entry (r_1 in the paper); i = size()-1 the newest.
  [[nodiscard]] const Entry& at(std::size_t i) const {
    if (i >= size_) {
      throw std::out_of_range("LookbackWindow::at");
    }
    return ring_[(head_ + i) % ring_.size()];
  }

  [[nodiscard]] mem::PageId page(std::size_t i) const { return at(i).page; }
  [[nodiscard]] mem::PageId last_page() const { return at(size_ - 1).page; }
  [[nodiscard]] sim::Time first_time() const { return at(0).when; }
  [[nodiscard]] sim::Time last_time() const { return at(size_ - 1).when; }

  // c  — mean CPU utilization over the window (sum C_i / l).
  [[nodiscard]] double mean_cpu() const {
    double sum = 0.0;
    for (std::size_t i = 0; i < size_; ++i) {
      sum += at(i).cpu;
    }
    return size_ == 0 ? 0.0 : sum / static_cast<double>(size_);
  }
  // C_l — the utilization at the newest record (the paper's estimate of c').
  [[nodiscard]] double last_cpu() const { return at(size_ - 1).cpu; }

  // r — average paging rate over the window, in faults per second.
  // Defined only with >= 2 entries and a positive time span.
  [[nodiscard]] double paging_rate_hz() const {
    if (size_ < 2) {
      return 0.0;
    }
    const sim::Time span = last_time() - first_time();
    if (span <= sim::Time::zero()) {
      return 0.0;
    }
    return static_cast<double>(size_) / span.sec();
  }

  void clear() {
    head_ = 0;
    size_ = 0;
  }

 private:
  std::vector<Entry> ring_;
  std::size_t head_{0};
  std::size_t size_{0};
};

}  // namespace ampom::core
