#pragma once
// Spatial-locality analysis over the lookback window (paper §3.2 and §3.4).
//
// Stride construct: the stride of a reference r_p is the minimum forward
// distance d at which page r_p + 1 appears in W (d <= dmax). stride_d counts
// the window positions participating as endpoints of stride-d links — this
// reproduces both worked examples in §3.2:
//   {1,99,2,45,3,78,4}  -> stride_2 = 4 (pages 1,2,3,4)
//   {10,99,11,34,12,85} -> stride_2 = 3, S = 3/(6*2) = 0.25
// and a purely sequential window scores S = 1.
//
// Outstanding streams (§3.4): a stride-d stream ending at index e is
// outstanding when e + d >= l (its continuation would still land inside the
// window); its prefetch pivot is the page after the stream's end.

#include <cstdint>
#include <vector>

#include "core/lookback_window.hpp"

namespace ampom::core {

struct StrideStream {
  std::size_t d{0};          // stride of the stream
  std::size_t end_index{0};  // window index of the stream's last element
  mem::PageId pivot{mem::kInvalidPage};  // first page to prefetch
};

class LocalityAnalyzer {
 public:
  explicit LocalityAnalyzer(std::size_t dmax) : dmax_{dmax} {}

  [[nodiscard]] std::size_t dmax() const { return dmax_; }

  // stride_d for d = 1..dmax; index 0 of the result is stride_1.
  [[nodiscard]] std::vector<std::uint64_t> stride_counts(const LookbackWindow& w) const;

  // The spatial locality score S (Eq. 1), in [0, 1].
  [[nodiscard]] double score(const LookbackWindow& w) const;

  // All outstanding stride streams, ordered by end index (oldest first),
  // de-duplicated by pivot.
  [[nodiscard]] std::vector<StrideStream> outstanding_streams(const LookbackWindow& w) const;

 private:
  // Minimum forward stride of position p, or 0 if none within dmax.
  [[nodiscard]] std::size_t stride_of(const LookbackWindow& w, std::size_t p) const;

  std::size_t dmax_;
};

}  // namespace ampom::core
