#pragma once
// AMPoM's fault-time prefetching loop — Algorithm 1 of the paper.
//
// On every page fault:
//   1. map the prefetched pages that arrived since the last fault
//      (the lookaside buffer),
//   2. record the fault in the lookback window,
//   3. compute the spatial-locality score S,
//   4. size the dependent zone (Eq. 3) from S, the paging rate, the CPU
//      utilization and the monitored network round-trip/transfer times,
//   5. identify the zone pages from the outstanding-stream pivots,
//   6. batch one remote request for the zone pages not stored locally,
//   7. block only if the faulted page itself is still remote.

#include <cstdint>
#include <functional>
#include <optional>

#include "core/config.hpp"
#include "core/dependent_zone.hpp"
#include "core/locality.hpp"
#include "core/lookback_window.hpp"
#include "proc/executor.hpp"
#include "proc/fault_policy.hpp"
#include "proc/paging_client.hpp"

namespace ampom::core {

// Monitoring inputs at fault time; supplied by the InfoDaemon adapter.
struct ResourceEstimates {
  sim::Time rtt_one_way{};       // t0: half the measured load-update RTT
  sim::Time page_transfer{};     // td: one page at the available bandwidth
  double expected_cpu_share{1.0};  // c': CPU the process can use next period
};
using ResourceProvider = std::function<ResourceEstimates()>;

struct AmpomStats {
  std::uint64_t faults_seen{0};           // Algorithm 1 invocations
  std::uint64_t window_records{0};        // non-collapsed records
  std::uint64_t zone_pages_considered{0};  // sum of zone sizes
  std::uint64_t prefetch_pages_issued{0};  // missing zone pages requested
  std::uint64_t requests_sent{0};
  sim::Time analysis_time{};  // total dependent-zone analysis cost (Fig. 11)
  double last_score{0.0};
  std::uint64_t last_zone_size{0};
};

class AmpomPolicy final : public proc::FaultPolicy {
 public:
  AmpomPolicy(sim::Simulator& simulator, proc::Executor& executor, proc::PagingClient& client,
              AmpomConfig config, ResourceProvider resources);

  void on_fault(proc::Process& process, mem::PageId page, mem::AccessKind kind) override;

  // Wired to PagingClient::set_arrival_handler by the scenario builder.
  void on_arrival(mem::PageId page, bool urgent);

  [[nodiscard]] const AmpomStats& stats() const { return stats_; }
  // The lookback window a given page's faults are recorded in (with the
  // default single partition, every page maps to window 0).
  [[nodiscard]] const LookbackWindow& window_for(mem::PageId page) const;
  [[nodiscard]] const LookbackWindow& window() const { return windows_.front(); }
  [[nodiscard]] std::size_t partition_count() const { return windows_.size(); }
  [[nodiscard]] const AmpomConfig& config() const { return config_; }

  // Observability: called after every per-fault analysis with the Eq.-3
  // inputs, the zone size and the outstanding-stream count.
  using TraceHook = std::function<void(const ZoneInputs&, std::uint64_t zone,
                                       std::size_t streams)>;
  void set_trace(TraceHook hook) { trace_ = std::move(hook); }

 private:
  void send_requests(std::vector<mem::PageId> missing, mem::PageId urgent);
  [[nodiscard]] LookbackWindow& partition_of(mem::PageId page);

  sim::Simulator& sim_;
  proc::Executor& executor_;
  proc::PagingClient& client_;
  AmpomConfig config_;
  ResourceProvider resources_;
  std::vector<LookbackWindow> windows_;  // one per address-space partition
  // With partitions > 1, the paging rate r and utilization c are process-
  // wide properties and come from a global window; per-partition windows
  // supply the locality score and the stream pivots.
  std::optional<LookbackWindow> global_window_;
  LocalityAnalyzer analyzer_;
  AmpomStats stats_;
  TraceHook trace_;
  mem::PageId blocked_page_{mem::kInvalidPage};
};

}  // namespace ampom::core
