#include "core/dependent_zone.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace ampom::core {

std::uint64_t zone_size(const ZoneInputs& in, const AmpomConfig& config) {
  if (in.paging_rate_hz <= 0.0) {
    return std::min(config.fallback_zone, config.zone_cap);
  }
  const double c = in.cpu_mean <= 0.0 ? 0.01 : in.cpu_mean;
  const double c_ratio = in.cpu_next / c;
  const double round_trip_sec = (in.rtt_one_way * 2 + in.page_transfer).sec();
  // N = (c'/c) * S * (r*(2t0+td) + 1)
  const double n = c_ratio * in.locality_score * (in.paging_rate_hz * round_trip_sec + 1.0);
  const auto rounded = n <= 0.0 ? 0 : static_cast<std::uint64_t>(std::llround(n));
  // Floor: the Linux-style read-ahead baseline (§5.3); cap: burst bound.
  return std::min(std::max(rounded, config.min_zone), config.zone_cap);
}

std::vector<mem::PageId> select_zone(const LookbackWindow& window,
                                     const std::vector<StrideStream>& streams,
                                     std::uint64_t zone_pages, std::uint64_t total_pages) {
  std::vector<mem::PageId> zone;
  if (zone_pages == 0 || window.size() == 0 || total_pages == 0) {
    return zone;
  }
  zone.reserve(zone_pages);
  // ampom-lint: ordered-safe(membership test only; zone order comes from the stream walk below)
  std::unordered_set<mem::PageId> chosen;
  chosen.reserve(zone_pages * 2);

  auto take_from = [&](mem::PageId start, std::uint64_t quota) {
    // Pages already chosen by another stream do not consume quota: the
    // "saved quota" extends this stream with further pages (§3.4).
    mem::PageId page = start;
    while (quota > 0 && page < total_pages) {
      if (chosen.insert(page).second) {
        zone.push_back(page);
        --quota;
      }
      ++page;
    }
  };

  if (streams.empty()) {
    // Read-ahead after the most recent reference.
    take_from(window.last_page() + 1, zone_pages);
    return zone;
  }

  const auto m = static_cast<std::uint64_t>(streams.size());
  const std::uint64_t base = zone_pages / m;
  std::uint64_t remainder = zone_pages % m;
  for (const StrideStream& stream : streams) {
    std::uint64_t quota = base;
    if (remainder > 0) {
      ++quota;
      --remainder;
    }
    if (quota > 0) {
      take_from(stream.pivot, quota);
    }
  }
  return zone;
}

}  // namespace ampom::core
