#include "core/locality.hpp"

#include <bit>

namespace ampom::core {

std::size_t LocalityAnalyzer::stride_of(const LookbackWindow& w, std::size_t p) const {
  const mem::PageId wanted = w.page(p) + 1;
  const std::size_t n = w.size();
  const std::size_t limit = std::min(n - 1 - p, dmax_);
  for (std::size_t d = 1; d <= limit; ++d) {
    if (w.page(p + d) == wanted) {
      return d;
    }
  }
  return 0;
}

std::vector<std::uint64_t> LocalityAnalyzer::stride_counts(const LookbackWindow& w) const {
  // Participation masks per stride; capacity <= 64 is enforced by the window.
  std::vector<std::uint64_t> masks(dmax_ + 1, 0);
  const std::size_t n = w.size();
  for (std::size_t p = 0; p + 1 < n; ++p) {
    const std::size_t d = stride_of(w, p);
    if (d != 0) {
      masks[d] |= (std::uint64_t{1} << p) | (std::uint64_t{1} << (p + d));
    }
  }
  std::vector<std::uint64_t> counts(dmax_, 0);
  for (std::size_t d = 1; d <= dmax_; ++d) {
    counts[d - 1] = static_cast<std::uint64_t>(std::popcount(masks[d]));
  }
  return counts;
}

double LocalityAnalyzer::score(const LookbackWindow& w) const {
  const std::size_t n = w.size();
  if (n < 2) {
    return 0.0;
  }
  const std::vector<std::uint64_t> counts = stride_counts(w);
  double s = 0.0;
  for (std::size_t d = 1; d <= dmax_; ++d) {
    s += static_cast<double>(counts[d - 1]) / (static_cast<double>(n) * static_cast<double>(d));
  }
  return s > 1.0 ? 1.0 : s;
}

std::vector<StrideStream> LocalityAnalyzer::outstanding_streams(const LookbackWindow& w) const {
  std::vector<StrideStream> streams;
  const std::size_t n = w.size();
  if (n < 2) {
    return streams;
  }
  for (std::size_t p = 0; p + 1 < n; ++p) {
    const std::size_t d = stride_of(w, p);
    if (d == 0) {
      continue;
    }
    const std::size_t end = p + d;
    if (end + d < n) {
      continue;  // not outstanding: the stream ended too long ago
    }
    const mem::PageId pivot = w.page(end) + 1;
    bool duplicate = false;
    for (const StrideStream& s : streams) {
      if (s.pivot == pivot) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) {
      streams.push_back(StrideStream{d, end, pivot});
    }
  }
  return streams;
}

}  // namespace ampom::core
