#include "cluster/node.hpp"

#include <stdexcept>
#include <string>
#include <variant>

namespace ampom::cluster {

Node::Node(sim::Simulator& simulator, net::Fabric& fabric, net::NodeId id, proc::NodeCosts costs)
    : sim_{simulator}, fabric_{fabric}, id_{id}, costs_{costs} {
  fabric_.set_handler(id_, [this](const net::Message& msg) { dispatch(msg); });
}

void Node::set_background_load(double load) {
  if (load < 0.0 || load >= 1.0) {
    throw std::invalid_argument("Node background load must be in [0, 1)");
  }
  background_load_ = load;
}

template <typename T>
T* Node::lookup(const std::map<std::uint64_t, T*>& components, std::uint64_t pid,
                const char* what) const {
  const auto it = components.find(pid);
  if (it == components.end() || it->second == nullptr) {
    throw std::logic_error(std::string("Node: no ") + what + " registered for pid " +
                           std::to_string(pid));
  }
  return it->second;
}

void Node::dispatch(const net::Message& msg) {
  std::visit(
      [&](const auto& payload) {
        using T = std::decay_t<decltype(payload)>;
        if constexpr (std::is_same_v<T, net::PageRequest>) {
          lookup(deputies_, payload.pid, "deputy")->on_page_request(payload);
        } else if constexpr (std::is_same_v<T, net::PageData>) {
          lookup(paging_clients_, payload.pid, "paging client")->on_page_data(payload);
        } else if constexpr (std::is_same_v<T, net::LoadPing>) {
          if (infod_ != nullptr) {
            infod_->on_ping(msg.src, payload);
          }
        } else if constexpr (std::is_same_v<T, net::LoadAck>) {
          if (infod_ != nullptr) {
            infod_->on_ack(msg.src, payload);
          }
        } else if constexpr (std::is_same_v<T, net::GossipPing>) {
          if (infod_ != nullptr) {
            infod_->on_gossip_ping(msg.src, payload);
          }
        } else if constexpr (std::is_same_v<T, net::GossipAck>) {
          if (infod_ != nullptr) {
            infod_->on_gossip_ack(msg.src, payload);
          }
        } else if constexpr (std::is_same_v<T, net::SyscallRequest>) {
          lookup(deputies_, payload.pid, "deputy")->on_syscall_request(payload);
        } else if constexpr (std::is_same_v<T, net::SyscallReply>) {
          lookup(syscall_executors_, payload.pid, "syscall executor")
              ->complete_syscall(payload.seq);
        } else if constexpr (std::is_same_v<T, net::FlushPage>) {
          lookup(deputies_, payload.pid, "deputy")->on_flush_page(msg.src, payload);
        } else if constexpr (std::is_same_v<T, net::FlushAck>) {
          const auto it = flush_ack_handlers_.find(payload.pid);
          if (it != flush_ack_handlers_.end() && it->second) {
            it->second(payload);
          }
        } else if constexpr (std::is_same_v<T, net::MigrationChunk>) {
          // Timing-only for the classic engines (they track arrivals via the
          // fabric's predicted delivery times); the reliable protocol
          // registers a handler to count real arrivals and send acks.
          const auto it = chunk_handlers_.find(payload.pid);
          if (it != chunk_handlers_.end() && it->second) {
            it->second(msg.src, payload);
          }
        } else if constexpr (std::is_same_v<T, net::MigrationAck>) {
          const auto it = ack_handlers_.find(payload.pid);
          if (it != ack_handlers_.end() && it->second) {
            it->second(msg.src, payload);
          }
        } else if constexpr (std::is_same_v<T, net::Background>) {
          // Competing traffic: consumes bandwidth, nothing to do.
        }
      },
      msg.payload);
}

}  // namespace ampom::cluster
