#pragma once
// Chaos campaigns: correlated fault schedules on top of the per-message
// FaultInjector.
//
// PR 1's injector models *independent* faults — each message rolls its own
// drop/duplicate/delay dice. What actually kills clusters (and what the
// openMosix farm reports describe) is correlated failure: a rack loses
// power, a switch partitions the fabric, crashes cascade as load shifts, a
// flaky transceiver flaps. A ChaosPlan declares those campaigns; the
// orchestrator expands them — deterministically, from the plan's own seed —
// into the primitive crash/outage schedule the harness already knows how to
// apply (ClusterSim::set_fault_plan, run_experiment). The expansion draws
// nothing from the run's message RNG, so adding a campaign never perturbs
// which messages the probabilistic faults hit.

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/cluster_view.hpp"
#include "net/message.hpp"
#include "simcore/time.hpp"

namespace ampom::cluster {

// A rack/zone power event: every listed node crashes at `at` and (optionally)
// restarts together at `restore_at` (zero = stays down). Either an explicit
// node list, or (zone >= 0) a topology zone index resolved at expansion time
// against the world's zone layout.
struct ZoneOutage {
  std::vector<net::NodeId> nodes;
  sim::Time at{};
  sim::Time restore_at{};
  std::int32_t zone{-1};  // >= 0: crash topology zone `zone`; nodes ignored
};

// A network partition: nodes in `group_a` cannot reach the rest of the
// cluster in [at, heal_at). Both sides keep running — the split-brain shape.
struct Partition {
  std::vector<net::NodeId> group_a;
  sim::Time at{};
  sim::Time heal_at{};
};

// A cascading crash wave: `crashes` distinct victims picked from the plan's
// seeded RNG, one every `spacing` starting at `start`, each down for
// `downtime` (zero = stays down). spare_node0 keeps node 0 (where homes and
// deputies usually live) out of the victim pool.
struct CrashWave {
  std::uint32_t crashes{1};
  sim::Time start{};
  sim::Time spacing{};
  sim::Time downtime{};
  bool spare_node0{true};
};

// A flapping link: a<->b cycles down/up with period `period` and down
// fraction `duty`, from `start` until `stop`.
struct LinkFlap {
  net::NodeId a{0};
  net::NodeId b{0};
  sim::Time start{};
  sim::Time stop{};
  sim::Time period{};
  double duty{0.5};
};

struct ChaosPlan {
  std::uint64_t seed{1};  // victim selection only; never the message RNG
  std::vector<ZoneOutage> zone_outages;
  std::vector<Partition> partitions;
  std::vector<CrashWave> crash_waves;
  std::vector<LinkFlap> link_flaps;

  [[nodiscard]] bool active() const {
    return !zone_outages.empty() || !partitions.empty() || !crash_waves.empty() ||
           !link_flaps.empty();
  }
  [[nodiscard]] std::size_t campaign_count() const {
    return zone_outages.size() + partitions.size() + crash_waves.size() + link_flaps.size();
  }
};

// The primitive schedule a plan expands to. `heal_marks` are the instants a
// campaign's fault pressure ends (partition heals, zone restores, flap
// stops) — recovery tracking measures view convergence from them.
struct ExpandedChaos {
  struct Crash {
    net::NodeId node{0};
    sim::Time at{};
    sim::Time restore_at{};  // zero = stays down
  };
  struct Outage {
    net::NodeId a{0};
    net::NodeId b{0};
    sim::Time down_at{};
    sim::Time up_at{};
  };
  std::vector<Crash> crashes;
  std::vector<Outage> outages;
  std::vector<sim::Time> heal_marks;
  // Latest instant the fault state still changes; after it the cluster is
  // quiescent and the heartbeat views must converge.
  sim::Time last_fault_at{};

  [[nodiscard]] std::size_t fault_count() const { return crashes.size() + outages.size(); }
};

// Structural validation independent of cluster size. Empty string = sound;
// otherwise the first problem, phrased in terms of the offending campaign.
[[nodiscard]] std::string validate_chaos(const ChaosPlan& plan);

// Deterministic expansion: campaigns are expanded in declaration order
// (zone outages, partitions, crash waves, link flaps) with one Rng seeded
// from plan.seed, so the same (plan, topology) always yields the same
// schedule. Zone-indexed outages resolve against `topology`. Throws
// std::invalid_argument on validate_chaos failures, node ids outside
// [0, node_count), or zone indices outside [0, zones).
[[nodiscard]] ExpandedChaos expand_chaos(const ChaosPlan& plan, const Topology& topology);
// Single-zone convenience: expand against Topology::flat(node_count).
[[nodiscard]] ExpandedChaos expand_chaos(const ChaosPlan& plan, std::size_t node_count);

}  // namespace ampom::cluster
