#pragma once
// The read-side cluster API.
//
// Everything that *consumes* cluster state — the load balancer, the
// invariant auditor, chaos expansion, benches — reads it through this
// interface instead of poking individual InfoDaemons. The split matters at
// scale: consumers see one coherent view (ground-truth load counts, zone
// membership, consensus health) while the daemons underneath gossip among
// themselves with bounded fan-out. ClusterSim implements the interface;
// a 10k-node world and the 2-node unit fixture expose the same surface.

#include <cstdint>

#include "net/message.hpp"
#include "simcore/time.hpp"

namespace ampom::cluster {

enum class PeerHealth : std::uint8_t { kAlive, kSuspected, kDead };

// Zone layout: `zones` contiguous blocks of `nodes_per_zone` ids each, so
// zone z is [z * nodes_per_zone, (z + 1) * nodes_per_zone). Contiguity is a
// deliberate constraint — it makes every per-zone structure a dense array
// slice instead of an id set, which is what keeps a 10k-node world's
// memory linear in (nodes x zone size) rather than quadratic in nodes.
struct Topology {
  std::uint32_t zones{1};
  std::uint32_t nodes_per_zone{0};  // 0 = unset (single-process worlds)

  [[nodiscard]] static Topology flat(std::size_t nodes) {
    return Topology{1, static_cast<std::uint32_t>(nodes)};
  }

  [[nodiscard]] bool set() const { return nodes_per_zone > 0; }
  [[nodiscard]] std::size_t node_count() const {
    return static_cast<std::size_t>(zones) * nodes_per_zone;
  }
  [[nodiscard]] std::uint32_t zone_of(net::NodeId id) const { return id / nodes_per_zone; }
  [[nodiscard]] net::NodeId zone_begin(std::uint32_t zone) const {
    return zone * nodes_per_zone;
  }
  [[nodiscard]] net::NodeId zone_end(std::uint32_t zone) const {
    return (zone + 1) * nodes_per_zone;
  }
};

class ClusterView {
 public:
  virtual ~ClusterView() = default;

  [[nodiscard]] virtual const Topology& topology() const = 0;
  // Ground-truth load of `node` (unfinished processes placed there).
  [[nodiscard]] virtual double load(net::NodeId node) const = 0;
  // Majority-vote health of `node` among its zone's daemons. Always kAlive
  // while failure detection is disabled.
  [[nodiscard]] virtual PeerHealth health(net::NodeId node) const = 0;
  // `from`'s measured one-way latency to `to` (a prior until measured).
  [[nodiscard]] virtual sim::Time rtt_one_way(net::NodeId from, net::NodeId to) const = 0;
  // Mean load per node over one zone (the global balancing tier's signal).
  [[nodiscard]] virtual double zone_load(std::uint32_t zone) const = 0;
  // Ground-truth cache pressure of `node`: resident working-set bytes over
  // LLC capacity (mem/hierarchy.hpp). 0.0 — the default — when the world
  // carries no memory-hierarchy model, so existing views need no change.
  [[nodiscard]] virtual double cache_pressure(net::NodeId /*node*/) const { return 0.0; }

  // --- membership iteration (non-virtual; derived from the topology) -------
  [[nodiscard]] std::size_t node_count() const { return topology().node_count(); }
  [[nodiscard]] std::uint32_t zone_count() const { return topology().zones; }
  [[nodiscard]] std::uint32_t zone_of(net::NodeId id) const { return topology().zone_of(id); }
  [[nodiscard]] net::NodeId zone_begin(std::uint32_t zone) const {
    return topology().zone_begin(zone);
  }
  [[nodiscard]] net::NodeId zone_end(std::uint32_t zone) const {
    return topology().zone_end(zone);
  }
};

}  // namespace ampom::cluster
