#pragma once
// A cluster node: CPU description, background load, and the message router
// that dispatches fabric deliveries to the protocol components living on
// the node (deputy, paging client, info daemon, executor syscall channel).

#include <cstdint>
#include <functional>
#include <map>

#include "cluster/infod.hpp"
#include "net/fabric.hpp"
#include "proc/costs.hpp"
#include "proc/deputy.hpp"
#include "proc/executor.hpp"
#include "proc/paging_client.hpp"

namespace ampom::cluster {

class Node {
 public:
  Node(sim::Simulator& simulator, net::Fabric& fabric, net::NodeId id, proc::NodeCosts costs);

  [[nodiscard]] net::NodeId id() const { return id_; }
  [[nodiscard]] const proc::NodeCosts& costs() const { return costs_; }
  [[nodiscard]] proc::NodeCosts& costs() { return costs_; }

  // CPU share available to a migrant on this node.
  [[nodiscard]] double cpu_share() const { return 1.0 - background_load_; }
  [[nodiscard]] double background_load() const { return background_load_; }
  void set_background_load(double load);

  // Component registration, demultiplexed by pid (a node hosts one deputy
  // per locally-homed process and one paging client per migrant).
  void set_deputy(std::uint64_t pid, proc::Deputy* deputy) { deputies_[pid] = deputy; }
  void set_paging_client(std::uint64_t pid, proc::PagingClient* client) {
    paging_clients_[pid] = client;
  }
  void set_syscall_executor(std::uint64_t pid, proc::Executor* executor) {
    syscall_executors_[pid] = executor;
  }
  void set_infod(InfoDaemon* infod) { infod_ = infod; }

  // Reliable-migration hooks: the engine registers these on the destination
  // (chunks) and source (acks) for the duration of a transfer. Unregistered
  // chunk/ack arrivals are ignored — the classic engines track arrivals via
  // the fabric's predicted delivery times and never register.
  using ChunkHandler = std::function<void(net::NodeId, const net::MigrationChunk&)>;
  using AckHandler = std::function<void(net::NodeId, const net::MigrationAck&)>;
  using FlushAckHandler = std::function<void(const net::FlushAck&)>;
  void set_migration_chunk_handler(std::uint64_t pid, ChunkHandler fn) {
    chunk_handlers_[pid] = std::move(fn);
  }
  void set_migration_ack_handler(std::uint64_t pid, AckHandler fn) {
    ack_handlers_[pid] = std::move(fn);
  }
  void set_flush_ack_handler(std::uint64_t pid, FlushAckHandler fn) {
    flush_ack_handlers_[pid] = std::move(fn);
  }
  void clear_migration_handlers(std::uint64_t pid) {
    chunk_handlers_.erase(pid);
    ack_handlers_.erase(pid);
  }

  // Single-process convenience overloads (pid 1), used by the experiment
  // driver and most tests.
  void set_deputy(proc::Deputy* deputy) { set_deputy(1, deputy); }
  void set_paging_client(proc::PagingClient* client) { set_paging_client(1, client); }
  void set_syscall_executor(proc::Executor* executor) { set_syscall_executor(1, executor); }

  [[nodiscard]] InfoDaemon* infod() { return infod_; }

 private:
  void dispatch(const net::Message& msg);

  sim::Simulator& sim_;
  net::Fabric& fabric_;
  net::NodeId id_;
  proc::NodeCosts costs_;
  double background_load_{0.0};

  template <typename T>
  [[nodiscard]] T* lookup(const std::map<std::uint64_t, T*>& components, std::uint64_t pid,
                          const char* what) const;

  std::map<std::uint64_t, proc::Deputy*> deputies_;
  std::map<std::uint64_t, proc::PagingClient*> paging_clients_;
  std::map<std::uint64_t, proc::Executor*> syscall_executors_;
  std::map<std::uint64_t, ChunkHandler> chunk_handlers_;
  std::map<std::uint64_t, AckHandler> ack_handlers_;
  std::map<std::uint64_t, FlushAckHandler> flush_ack_handlers_;
  InfoDaemon* infod_{nullptr};
};

}  // namespace ampom::cluster
