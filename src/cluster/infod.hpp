#pragma once
// The resource discovery and monitoring daemon — our oM_infoD (paper §2.4,
// §4). It measures, exactly the way the paper describes:
//   t0 — half the time to receive an acknowledgement after a load update
//        is sent to a peer (EWMA over pings);
//   available bandwidth — by diffing the node's RX/TX byte counters
//        (the /sbin/ifconfig method) each sampling period;
//   CPU load — the node's current utilization, exchanged in load updates.

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "net/fabric.hpp"
#include "simcore/simulator.hpp"

namespace ampom::cluster {

// Heartbeat-based failure detection thresholds, as multiples of the gossip
// period: a peer silent for suspect_periods is Suspected (skip it for new
// placements), for dead_periods it is Dead (reclaim its migrants). Health
// is computed lazily from the last-heard timestamp — detection adds no
// events and no wire traffic, so it is free on the happy path.
struct FailureDetection {
  bool enabled{false};
  double suspect_periods{3.0};
  double dead_periods{8.0};
};

enum class PeerHealth : std::uint8_t { kAlive, kSuspected, kDead };

class InfoDaemon {
 public:
  InfoDaemon(sim::Simulator& simulator, net::Fabric& fabric, net::NodeId self,
             sim::Time period = sim::Time::from_ms(250));

  void add_peer(net::NodeId peer);
  void start();
  void stop() { running_ = false; }

  // Local CPU load reported to peers (wired to the node's utilization).
  void set_local_load_source(std::function<double()> fn) { local_load_ = std::move(fn); }

  // --- measurements ---------------------------------------------------------
  // Measured one-way latency to `peer` (RTT/2); a prior until the first ack.
  [[nodiscard]] sim::Time rtt_one_way(net::NodeId peer) const;
  // Available bandwidth on this node's link: nominal minus observed use.
  [[nodiscard]] sim::Bandwidth available_bandwidth() const;
  // Last load reported by a peer (for scheduling policies), NaN-free.
  [[nodiscard]] double peer_load(net::NodeId peer) const;
  [[nodiscard]] const std::vector<net::NodeId>& peers() const { return peers_; }

  // --- failure detection ----------------------------------------------------
  void set_failure_detection(FailureDetection config) { detection_ = config; }
  [[nodiscard]] const FailureDetection& failure_detection() const { return detection_; }
  // Health judged from the silence since the peer was last heard (ping or
  // ack). Always kAlive while detection is disabled or before start().
  [[nodiscard]] PeerHealth peer_health(net::NodeId peer) const;
  // Fresh-boot semantics after a crash+restore: forget every pre-crash
  // last-heard timestamp and restart the silence clocks from now. Without
  // this a restored node votes with stale clocks and condemns peers that
  // were alive the whole time it was down.
  void note_rebooted();
  [[nodiscard]] sim::Time last_heard(net::NodeId peer) const;
  [[nodiscard]] std::uint64_t dead_peers() const;

  // Node router entry points.
  void on_ping(net::NodeId src, const net::LoadPing& ping);
  void on_ack(net::NodeId src, const net::LoadAck& ack);

  [[nodiscard]] std::uint64_t pings_sent() const { return pings_sent_; }
  [[nodiscard]] std::uint64_t acks_received() const { return acks_received_; }

 private:
  void tick();
  void sample_bandwidth();

  sim::Simulator& sim_;
  net::Fabric& fabric_;
  net::NodeId self_;
  sim::Time period_;
  std::vector<net::NodeId> peers_;
  std::function<double()> local_load_;
  bool running_{false};

  struct PeerState {
    sim::Time rtt_ewma{sim::Time::from_us(300)};  // prior until measured
    bool measured{false};
    double load{0.0};
    sim::Time last_heard{};  // latest ping or ack arrival from this peer
    bool heard{false};
  };
  std::map<net::NodeId, PeerState> peer_state_;

  FailureDetection detection_;
  sim::Time started_at_{};
  bool started_{false};

  std::uint64_t pings_sent_{0};
  std::uint64_t acks_received_{0};
  std::uint64_t seq_{0};

  // Bandwidth estimation (ifconfig counter diffs).
  std::uint64_t last_bytes_{0};
  sim::Time last_sample_{};
  sim::Bandwidth available_{};
  bool bandwidth_sampled_{false};
};

}  // namespace ampom::cluster
