#pragma once
// The resource discovery and monitoring daemon — our oM_infoD (paper §2.4,
// §4). It measures, exactly the way the paper describes:
//   t0 — half the time to receive an acknowledgement after a load update
//        is sent to a peer (EWMA over pings);
//   available bandwidth — by diffing the node's RX/TX byte counters
//        (the /sbin/ifconfig method) each sampling period;
//   CPU load — the node's current utilization, exchanged in load updates.
//
// Two dissemination modes share the daemon:
//   all-pairs mesh (default) — every tick pings every peer, the paper's
//        shape; cost O(peers) per node per period.
//   epidemic gossip — every tick pings a bounded fan-out of deterministic
//        pseudo-random peers and piggybacks a digest of recently-changed
//        load entries with per-origin version counters; cost O(fan_out).
//        When fan_out >= peer count the gossip tick degenerates to the
//        exact all-pairs tick, so small clusters stay bit-identical to the
//        mesh (the equivalence the tests pin).

#include <cstdint>
#include <functional>
#include <vector>

#include "cluster/cluster_view.hpp"
#include "net/fabric.hpp"
#include "simcore/simulator.hpp"

namespace ampom::cluster {

// Heartbeat-based failure detection thresholds, as multiples of the gossip
// period: a peer silent for suspect_periods is Suspected (skip it for new
// placements), for dead_periods it is Dead (reclaim its migrants). Health
// is computed lazily from the last-heard timestamp — detection adds no
// events and no wire traffic, so it is free on the happy path. Under
// gossip, "heard" means the peer's version counter advanced (directly or
// through a relayed digest entry), so the same thresholds apply unchanged.
struct FailureDetection {
  bool enabled{false};
  double suspect_periods{3.0};
  double dead_periods{8.0};
};

// Epidemic dissemination knobs. `seed` feeds the per-(node, tick) peer
// selection only — never the message RNG — so enabling gossip on one node
// cannot perturb any other stochastic element of a run.
struct GossipConfig {
  bool enabled{false};
  std::uint32_t fan_out{2};
  sim::Time period{};  // zero = keep the daemon's own period
  // Digest aging: an entry whose version last advanced more than
  // digest_age_periods ago is stale and no longer relayed (a dead node's
  // entry ages out instead of circulating forever).
  double digest_age_periods{8.0};
  std::uint32_t digest_cap{32};  // max relayed entries per ping (own excluded)
  std::uint64_t seed{0x9E3779B97F4A7C15ULL};
  // Carry per-node cache pressure in digests (kGossipFormatCache framing:
  // 32 wire bytes per entry instead of 24). Off by default so existing
  // gossip runs stay bit-identical; the degenerate full-fan-out tick keeps
  // gossiping (instead of falling back to LoadPing) when this is on, since
  // LoadPing cannot carry pressure.
  bool cache_digest{false};
};

class InfoDaemon {
 public:
  InfoDaemon(sim::Simulator& simulator, net::Fabric& fabric, net::NodeId self,
             sim::Time period = sim::Time::from_ms(250));

  void add_peer(net::NodeId peer);
  // Configure epidemic dissemination; call before start(). A nonzero
  // config period overrides the daemon's tick period.
  void set_gossip(const GossipConfig& config);
  [[nodiscard]] const GossipConfig& gossip() const { return gossip_; }
  void start();
  void stop() { running_ = false; }

  // Local CPU load reported to peers (wired to the node's utilization).
  void set_local_load_source(std::function<double()> fn) { local_load_ = std::move(fn); }
  // Local cache pressure reported in cache-format digests (wired to the
  // memory-hierarchy model). Only consulted when gossip.cache_digest is on.
  void set_local_cache_pressure_source(std::function<double()> fn) {
    local_cache_pressure_ = std::move(fn);
  }

  // --- measurements ---------------------------------------------------------
  // Measured one-way latency to `peer` (RTT/2); a prior until the first ack.
  [[nodiscard]] sim::Time rtt_one_way(net::NodeId peer) const;
  // Available bandwidth on this node's link: nominal minus observed use.
  [[nodiscard]] sim::Bandwidth available_bandwidth() const;
  // Last load learned for a peer (directly or via gossip), NaN-free.
  [[nodiscard]] double known_load(net::NodeId peer) const;
  // Last cache pressure learned for a peer via cache-format gossip; 0.0
  // until heard (including entries migrated from load-format senders).
  [[nodiscard]] double known_cache_pressure(net::NodeId peer) const;
  // Highest version counter seen from a peer (0 = never heard).
  [[nodiscard]] std::uint64_t peer_version(net::NodeId peer) const;

  // --- failure detection ----------------------------------------------------
  void set_failure_detection(FailureDetection config) { detection_ = config; }
  [[nodiscard]] const FailureDetection& failure_detection() const { return detection_; }
  // Health judged from the silence since the peer was last heard (ping,
  // ack, or gossip version advance). Always kAlive while detection is
  // disabled or before start().
  [[nodiscard]] PeerHealth peer_health(net::NodeId peer) const;
  // Fresh-boot semantics after a crash+restore: forget every pre-crash
  // last-heard timestamp and restart the silence clocks from now. Without
  // this a restored node votes with stale clocks and condemns peers that
  // were alive the whole time it was down. Version counters survive — they
  // are monotone per origin, and resetting them would make the rebooted
  // node ignore fresh gossip until the counters caught up.
  void note_rebooted();
  [[nodiscard]] sim::Time last_heard(net::NodeId peer) const;
  [[nodiscard]] std::uint64_t dead_peers() const;

  // Node router entry points.
  void on_ping(net::NodeId src, const net::LoadPing& ping);
  void on_ack(net::NodeId src, const net::LoadAck& ack);
  void on_gossip_ping(net::NodeId src, const net::GossipPing& ping);
  void on_gossip_ack(net::NodeId src, const net::GossipAck& ack);

  [[nodiscard]] std::uint64_t pings_sent() const { return pings_sent_; }
  [[nodiscard]] std::uint64_t acks_received() const { return acks_received_; }
  // Digest entries relayed across all gossip pings (the piggyback volume).
  [[nodiscard]] std::uint64_t digest_entries_sent() const { return digest_entries_sent_; }

 private:
  struct PeerState {
    sim::Time rtt_ewma{sim::Time::from_us(300)};  // prior until measured
    bool measured{false};
    double load{0.0};
    double cache_pressure{0.0};  // cache-format gossip only; 0.0 otherwise
    std::uint64_t version{0};  // highest origin version seen
    sim::Time last_heard{};    // latest contact or gossip version advance
    bool heard{false};
  };

  // One dissemination round; reschedules itself on this node's partition.
  // ampom: partition-entry
  void tick();
  void legacy_tick(double load);
  void gossip_tick(double load);
  void sample_bandwidth();
  void merge_entry(net::NodeId origin, std::uint64_t version, double load,
                   double cache_pressure);
  [[nodiscard]] std::vector<net::GossipEntry> build_digest(double load) const;
  [[nodiscard]] double local_cache_pressure() const {
    return local_cache_pressure_ ? local_cache_pressure_() : 0.0;
  }

  // Dense peer-state arena indexed by (id - base_). Peers are registered at
  // construction time from a contiguous id range (the node's zone), so the
  // arena is exactly zone-sized; the old std::map cost a pointer chase per
  // lookup on the hottest read path in the simulator.
  [[nodiscard]] const PeerState* find_state(net::NodeId peer) const;
  PeerState& ensure_state(net::NodeId peer);

  sim::Simulator& sim_;
  net::Fabric& fabric_;
  net::NodeId self_;
  sim::Time period_;
  std::vector<net::NodeId> peers_;  // insertion order (legacy send order)
  std::function<double()> local_load_;
  std::function<double()> local_cache_pressure_;
  bool running_{false};

  std::vector<PeerState> state_;  // arena over [base_, base_ + state_.size())
  net::NodeId base_{0};

  GossipConfig gossip_;
  std::uint64_t self_version_{0};  // bumped each gossip tick (the heartbeat)
  std::uint64_t tick_index_{0};

  FailureDetection detection_;
  sim::Time started_at_{};
  bool started_{false};

  std::uint64_t pings_sent_{0};
  std::uint64_t acks_received_{0};
  std::uint64_t digest_entries_sent_{0};
  std::uint64_t seq_{0};

  // Bandwidth estimation (ifconfig counter diffs).
  std::uint64_t last_bytes_{0};
  sim::Time last_sample_{};
  sim::Bandwidth available_{};
  bool bandwidth_sampled_{false};
};

}  // namespace ampom::cluster
