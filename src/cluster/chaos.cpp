#include "cluster/chaos.hpp"

#include <algorithm>
#include <stdexcept>

#include "simcore/fmt.hpp"
#include "simcore/rng.hpp"

namespace ampom::cluster {

namespace {

void note_fault_edge(ExpandedChaos& out, sim::Time at) {
  out.last_fault_at = std::max(out.last_fault_at, at);
}

}  // namespace

std::string validate_chaos(const ChaosPlan& plan) {
  for (const ZoneOutage& zone : plan.zone_outages) {
    if (zone.nodes.empty() && zone.zone < 0) {
      return "chaos: zone outage with no nodes";
    }
    if (zone.restore_at > sim::Time::zero() && zone.restore_at <= zone.at) {
      return "chaos: zone outage restores before it strikes";
    }
  }
  for (const Partition& part : plan.partitions) {
    if (part.group_a.empty()) {
      return "chaos: partition with an empty group";
    }
    if (part.heal_at <= part.at) {
      return "chaos: partition heals before it strikes";
    }
  }
  for (const CrashWave& wave : plan.crash_waves) {
    if (wave.crashes == 0) {
      return "chaos: crash wave with zero crashes";
    }
  }
  for (const LinkFlap& flap : plan.link_flaps) {
    if (flap.a == flap.b) {
      return "chaos: link flap needs two distinct endpoints";
    }
    if (flap.period <= sim::Time::zero()) {
      return "chaos: link flap period must be positive";
    }
    if (flap.duty <= 0.0 || flap.duty >= 1.0) {
      return "chaos: link flap duty must be a fraction in (0, 1)";
    }
    if (flap.stop <= flap.start) {
      return "chaos: link flap stops before it starts";
    }
  }
  return {};
}

ExpandedChaos expand_chaos(const ChaosPlan& plan, std::size_t node_count) {
  return expand_chaos(plan, Topology::flat(node_count));
}

ExpandedChaos expand_chaos(const ChaosPlan& plan, const Topology& topology) {
  const std::string problem = validate_chaos(plan);
  if (!problem.empty()) {
    throw std::invalid_argument(problem);
  }
  const std::size_t node_count = topology.node_count();
  const auto check_node = [node_count](net::NodeId id) {
    if (id >= node_count) {
      throw std::invalid_argument(sim::strfmt(
          "chaos: campaign names node %llu but the cluster has %llu nodes",
          static_cast<unsigned long long>(id), static_cast<unsigned long long>(node_count)));
    }
  };

  ExpandedChaos out;
  sim::Rng rng{plan.seed};

  for (const ZoneOutage& zone : plan.zone_outages) {
    std::vector<net::NodeId> victims = zone.nodes;
    if (zone.zone >= 0) {
      const auto z = static_cast<std::uint32_t>(zone.zone);
      if (z >= topology.zones) {
        throw std::invalid_argument(sim::strfmt(
            "chaos: zone outage names zone %u but the topology has %u zones", z,
            topology.zones));
      }
      victims.clear();
      for (net::NodeId node = topology.zone_begin(z); node < topology.zone_end(z); ++node) {
        victims.push_back(node);
      }
    }
    for (const net::NodeId node : victims) {
      check_node(node);
      out.crashes.push_back({node, zone.at, zone.restore_at});
      note_fault_edge(out, zone.at);
      if (zone.restore_at > sim::Time::zero()) {
        note_fault_edge(out, zone.restore_at);
      }
    }
    if (zone.restore_at > sim::Time::zero()) {
      out.heal_marks.push_back(zone.restore_at);
    }
  }

  for (const Partition& part : plan.partitions) {
    std::vector<bool> in_a(node_count, false);
    for (const net::NodeId node : part.group_a) {
      check_node(node);
      in_a[node] = true;
    }
    for (net::NodeId a = 0; a < node_count; ++a) {
      if (!in_a[a]) {
        continue;
      }
      for (net::NodeId b = 0; b < node_count; ++b) {
        if (!in_a[b]) {
          out.outages.push_back({a, b, part.at, part.heal_at});
        }
      }
    }
    note_fault_edge(out, part.at);
    note_fault_edge(out, part.heal_at);
    out.heal_marks.push_back(part.heal_at);
  }

  for (const CrashWave& wave : plan.crash_waves) {
    const net::NodeId first = wave.spare_node0 ? 1 : 0;
    if (first >= node_count) {
      throw std::invalid_argument("chaos: crash wave has no eligible victims");
    }
    std::vector<net::NodeId> pool;
    for (net::NodeId node = first; node < node_count; ++node) {
      pool.push_back(node);
    }
    sim::Time at = wave.start;
    const std::uint32_t count =
        std::min<std::uint32_t>(wave.crashes, static_cast<std::uint32_t>(pool.size()));
    for (std::uint32_t i = 0; i < count; ++i) {
      // Victims are drawn without replacement so one wave never crashes the
      // same node twice mid-downtime.
      const std::uint64_t pick = rng.uniform(pool.size());
      const net::NodeId victim = pool[pick];
      pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(pick));
      const sim::Time restore_at =
          wave.downtime > sim::Time::zero() ? at + wave.downtime : sim::Time::zero();
      out.crashes.push_back({victim, at, restore_at});
      note_fault_edge(out, at);
      if (restore_at > sim::Time::zero()) {
        note_fault_edge(out, restore_at);
        out.heal_marks.push_back(restore_at);
      }
      at = at + wave.spacing;
    }
  }

  for (const LinkFlap& flap : plan.link_flaps) {
    check_node(flap.a);
    check_node(flap.b);
    for (sim::Time t = flap.start; t < flap.stop; t = t + flap.period) {
      const sim::Time down_until = std::min(t + flap.period.scaled(flap.duty), flap.stop);
      out.outages.push_back({flap.a, flap.b, t, down_until});
      note_fault_edge(out, t);
      note_fault_edge(out, down_until);
    }
    out.heal_marks.push_back(flap.stop);
  }

  std::sort(out.heal_marks.begin(), out.heal_marks.end());
  return out;
}

}  // namespace ampom::cluster
