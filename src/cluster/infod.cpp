#include "cluster/infod.hpp"

#include <algorithm>

namespace ampom::cluster {

InfoDaemon::InfoDaemon(sim::Simulator& simulator, net::Fabric& fabric, net::NodeId self,
                       sim::Time period)
    : sim_{simulator}, fabric_{fabric}, self_{self}, period_{period} {}

void InfoDaemon::add_peer(net::NodeId peer) {
  peers_.push_back(peer);
  peer_state_.emplace(peer, PeerState{});
}

void InfoDaemon::start() {
  if (running_) {
    return;
  }
  running_ = true;
  started_ = true;
  started_at_ = sim_.now();
  const net::NicCounters& c = fabric_.counters(self_);
  last_bytes_ = c.tx_bytes + c.rx_bytes;
  last_sample_ = sim_.now();
  sim_.schedule_after(period_, [this] { tick(); });
}

void InfoDaemon::tick() {
  if (!running_) {
    return;
  }
  sample_bandwidth();
  const double load = local_load_ ? local_load_() : 0.0;
  for (const net::NodeId peer : peers_) {
    net::LoadPing ping;
    ping.seq = ++seq_;
    ping.sent_at = sim_.now();
    ping.cpu_load = load;
    fabric_.send(net::Message{self_, peer, /*wire_bytes=*/64, ping});
    ++pings_sent_;
  }
  sim_.schedule_after(period_, [this] { tick(); });
}

void InfoDaemon::sample_bandwidth() {
  const net::NicCounters& c = fabric_.counters(self_);
  const std::uint64_t bytes = c.tx_bytes + c.rx_bytes;
  const sim::Time now = sim_.now();
  const sim::Time span = now - last_sample_;
  if (span > sim::Time::zero()) {
    const double used_bps = static_cast<double>(bytes - last_bytes_) * 8.0 / span.sec();
    const double nominal = static_cast<double>(fabric_.default_link().bandwidth.bps());
    // Keep a floor: a fully loaded link still moves some prefetch traffic.
    const double avail = std::max(nominal - used_bps, nominal * 0.05);
    available_ = sim::Bandwidth::bits_per_sec(static_cast<std::uint64_t>(avail));
    bandwidth_sampled_ = true;
  }
  last_bytes_ = bytes;
  last_sample_ = now;
}

sim::Bandwidth InfoDaemon::available_bandwidth() const {
  if (!bandwidth_sampled_) {
    return fabric_.default_link().bandwidth;
  }
  return available_;
}

sim::Time InfoDaemon::rtt_one_way(net::NodeId peer) const {
  const auto it = peer_state_.find(peer);
  if (it == peer_state_.end()) {
    return sim::Time::from_us(300);
  }
  return it->second.rtt_ewma / 2;
}

double InfoDaemon::peer_load(net::NodeId peer) const {
  const auto it = peer_state_.find(peer);
  return it == peer_state_.end() ? 0.0 : it->second.load;
}

PeerHealth InfoDaemon::peer_health(net::NodeId peer) const {
  if (!detection_.enabled || !started_) {
    return PeerHealth::kAlive;
  }
  const auto it = peer_state_.find(peer);
  // Silence measured from the later of daemon start and last contact, so a
  // freshly-started cluster gets a full grace window before judging anyone.
  sim::Time baseline = started_at_;
  if (it != peer_state_.end() && it->second.heard && it->second.last_heard > baseline) {
    baseline = it->second.last_heard;
  }
  const sim::Time silence = sim_.now() - baseline;
  if (silence >= period_.scaled(detection_.dead_periods)) {
    return PeerHealth::kDead;
  }
  if (silence >= period_.scaled(detection_.suspect_periods)) {
    return PeerHealth::kSuspected;
  }
  return PeerHealth::kAlive;
}

void InfoDaemon::note_rebooted() {
  if (started_) {
    started_at_ = sim_.now();
  }
  for (auto& [peer, state] : peer_state_) {
    state.heard = false;
    state.last_heard = sim::Time::zero();
  }
}

sim::Time InfoDaemon::last_heard(net::NodeId peer) const {
  const auto it = peer_state_.find(peer);
  return it != peer_state_.end() && it->second.heard ? it->second.last_heard
                                                     : sim::Time::zero();
}

std::uint64_t InfoDaemon::dead_peers() const {
  std::uint64_t dead = 0;
  for (const net::NodeId peer : peers_) {
    if (peer_health(peer) == PeerHealth::kDead) {
      ++dead;
    }
  }
  return dead;
}

void InfoDaemon::on_ping(net::NodeId src, const net::LoadPing& ping) {
  // Record the peer's advertised load and acknowledge so it can measure RTT.
  auto it = peer_state_.find(src);
  if (it == peer_state_.end()) {
    it = peer_state_.emplace(src, PeerState{}).first;
  }
  it->second.load = ping.cpu_load;
  it->second.last_heard = sim_.now();
  it->second.heard = true;
  net::LoadAck ack;
  ack.seq = ping.seq;
  ack.ping_sent_at = ping.sent_at;
  ack.cpu_load = local_load_ ? local_load_() : 0.0;
  fabric_.send(net::Message{self_, src, /*wire_bytes=*/64, ack});
}

void InfoDaemon::on_ack(net::NodeId src, const net::LoadAck& ack) {
  ++acks_received_;
  const sim::Time rtt = sim_.now() - ack.ping_sent_at;
  auto it = peer_state_.find(src);
  if (it == peer_state_.end()) {
    it = peer_state_.emplace(src, PeerState{}).first;
  }
  PeerState& peer = it->second;
  peer.load = ack.cpu_load;
  peer.last_heard = sim_.now();
  peer.heard = true;
  if (!peer.measured) {
    peer.rtt_ewma = rtt;
    peer.measured = true;
  } else {
    // EWMA with alpha = 0.3; Time's integer operators keep it exact.
    peer.rtt_ewma = (peer.rtt_ewma * 7 + rtt * 3) / 10;
  }
}

}  // namespace ampom::cluster
