#include "cluster/infod.hpp"

#include <algorithm>

#include "simcore/rng.hpp"

namespace ampom::cluster {

namespace {

// splitmix64 finalizer: folds (seed, self, tick) into an Rng seed so the
// peer pick for a tick depends only on those three values — never on event
// history — which is what keeps gossip runs bit-identical under any event
// interleaving (and across jobs=1 vs jobs=4 sweeps).
std::uint64_t mix64(std::uint64_t z) {
  z += 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

InfoDaemon::InfoDaemon(sim::Simulator& simulator, net::Fabric& fabric, net::NodeId self,
                       sim::Time period)
    : sim_{simulator}, fabric_{fabric}, self_{self}, period_{period} {}

void InfoDaemon::add_peer(net::NodeId peer) {
  peers_.push_back(peer);
  ensure_state(peer);
}

void InfoDaemon::set_gossip(const GossipConfig& config) {
  gossip_ = config;
  if (config.period > sim::Time::zero()) {
    period_ = config.period;
  }
}

const InfoDaemon::PeerState* InfoDaemon::find_state(net::NodeId peer) const {
  if (state_.empty() || peer < base_ || peer >= base_ + state_.size()) {
    return nullptr;
  }
  return &state_[peer - base_];
}

InfoDaemon::PeerState& InfoDaemon::ensure_state(net::NodeId peer) {
  if (state_.empty()) {
    base_ = peer;
    state_.resize(1);
  } else if (peer < base_) {
    state_.insert(state_.begin(), base_ - peer, PeerState{});
    base_ = peer;
  } else if (peer >= base_ + state_.size()) {
    state_.resize(peer - base_ + 1);
  }
  return state_[peer - base_];
}

void InfoDaemon::start() {
  if (running_) {
    return;
  }
  running_ = true;
  started_ = true;
  started_at_ = sim_.now();
  const net::NicCounters& c = fabric_.counters(self_);
  last_bytes_ = c.tx_bytes + c.rx_bytes;
  last_sample_ = sim_.now();
  // Pin the tick chain to this node's partition: daemons then tick
  // concurrently in partitioned runs instead of serializing through the
  // scheduling context that called start() (usually the root).
  sim_.schedule_on_node(self_, sim_.now() + period_, [this] { tick(); });
}

void InfoDaemon::tick() {
  if (!running_) {
    return;
  }
  sample_bandwidth();
  const double load = local_load_ ? local_load_() : 0.0;
  ++tick_index_;
  if (gossip_.enabled) {
    // The version counter is this node's heartbeat: it advances once per
    // tick whether the tick degenerates to all-pairs or not.
    ++self_version_;
  }
  // Full fan-out degenerates to the all-pairs LoadPing tick (bit-identical
  // to the mesh) — unless cache digests are on: LoadPing has no pressure
  // field, so the cache format keeps the gossip framing at any fan-out.
  if (!gossip_.enabled || (gossip_.fan_out >= peers_.size() && !gossip_.cache_digest)) {
    legacy_tick(load);
  } else {
    gossip_tick(load);
  }
  sim_.schedule_on_node(self_, sim_.now() + period_, [this] { tick(); });
}

void InfoDaemon::legacy_tick(double load) {
  for (const net::NodeId peer : peers_) {
    net::LoadPing ping;
    ping.seq = ++seq_;
    ping.sent_at = sim_.now();
    ping.cpu_load = load;
    fabric_.send(net::Message{self_, peer, /*wire_bytes=*/64, ping});
    ++pings_sent_;
  }
}

void InfoDaemon::gossip_tick(double load) {
  const std::vector<net::GossipEntry> digest = build_digest(load);
  sim::Rng rng{mix64(mix64(gossip_.seed ^ (static_cast<std::uint64_t>(self_) + 1)) ^
                     tick_index_)};
  // fan_out distinct peers, drawn with rejection (fan_out << peer count on
  // the gossip path, so redraws are rare and the loop is bounded). The
  // cache-digest mode can reach here with fan_out >= peers (no LoadPing
  // fallback), so the draw count is clamped to the peer count.
  const std::size_t fan_out = std::min<std::size_t>(gossip_.fan_out, peers_.size());
  std::vector<std::uint32_t> picked;
  picked.reserve(fan_out);
  while (picked.size() < fan_out) {
    const auto idx = static_cast<std::uint32_t>(rng.uniform(peers_.size()));
    if (std::find(picked.begin(), picked.end(), idx) == picked.end()) {
      picked.push_back(idx);
    }
  }
  const bool cache = gossip_.cache_digest;
  const double pressure = cache ? local_cache_pressure() : 0.0;
  for (const std::uint32_t idx : picked) {
    net::GossipPing ping;
    ping.seq = ++seq_;
    ping.sent_at = sim_.now();
    ping.cpu_load = load;
    ping.sender_version = self_version_;
    ping.digest = digest;
    ping.format = cache ? net::kGossipFormatCache : net::kGossipFormatLoad;
    ping.cache_pressure = pressure;
    // Framing as LoadPing (64 bytes) plus 24 wire bytes per digest entry
    // (node id + version + load, padded); the cache format spends 8 more
    // bytes per entry and 8 on the sender's own pressure.
    const auto wire = cache ? static_cast<sim::Bytes>(72 + 32 * digest.size())
                            : static_cast<sim::Bytes>(64 + 24 * digest.size());
    fabric_.send(net::Message{self_, peers_[idx], wire, ping});
    ++pings_sent_;
    digest_entries_sent_ += digest.size();
  }
}

std::vector<net::GossipEntry> InfoDaemon::build_digest(double /*load*/) const {
  // Relay up to digest_cap recently-advanced entries. The scan starts at a
  // tick-rotated offset so a full digest under churn does not starve
  // high-id peers; staleness ages entries out (a dead origin's version
  // stops advancing, so its entry drops from circulation after
  // digest_age_periods and the silence-based detector takes over).
  std::vector<net::GossipEntry> digest;
  if (peers_.empty()) {
    return digest;
  }
  const sim::Time age_limit = period_.scaled(gossip_.digest_age_periods);
  const sim::Time now = sim_.now();
  const std::size_t start = static_cast<std::size_t>(tick_index_) % peers_.size();
  for (std::size_t i = 0; i < peers_.size() && digest.size() < gossip_.digest_cap; ++i) {
    const net::NodeId peer = peers_[(start + i) % peers_.size()];
    const PeerState* st = find_state(peer);
    if (st == nullptr || !st->heard || st->version == 0) {
      continue;
    }
    if (now - st->last_heard > age_limit) {
      continue;
    }
    digest.push_back(net::GossipEntry{peer, st->version, st->load, st->cache_pressure});
  }
  return digest;
}

void InfoDaemon::merge_entry(net::NodeId origin, std::uint64_t version, double load,
                             double cache_pressure) {
  if (origin == self_) {
    return;
  }
  PeerState& st = ensure_state(origin);
  if (version > st.version) {
    st.version = version;
    st.load = load;
    st.cache_pressure = cache_pressure;
    st.last_heard = sim_.now();
    st.heard = true;
  }
}

void InfoDaemon::sample_bandwidth() {
  const net::NicCounters& c = fabric_.counters(self_);
  const std::uint64_t bytes = c.tx_bytes + c.rx_bytes;
  const sim::Time now = sim_.now();
  const sim::Time span = now - last_sample_;
  if (span > sim::Time::zero()) {
    const double used_bps = static_cast<double>(bytes - last_bytes_) * 8.0 / span.sec();
    const double nominal = static_cast<double>(fabric_.default_link().bandwidth.bps());
    // Keep a floor: a fully loaded link still moves some prefetch traffic.
    const double avail = std::max(nominal - used_bps, nominal * 0.05);
    available_ = sim::Bandwidth::bits_per_sec(static_cast<std::uint64_t>(avail));
    bandwidth_sampled_ = true;
  }
  last_bytes_ = bytes;
  last_sample_ = now;
}

sim::Bandwidth InfoDaemon::available_bandwidth() const {
  if (!bandwidth_sampled_) {
    return fabric_.default_link().bandwidth;
  }
  return available_;
}

sim::Time InfoDaemon::rtt_one_way(net::NodeId peer) const {
  const PeerState* st = find_state(peer);
  if (st == nullptr) {
    return sim::Time::from_us(300);
  }
  return st->rtt_ewma / 2;
}

double InfoDaemon::known_load(net::NodeId peer) const {
  const PeerState* st = find_state(peer);
  return st == nullptr ? 0.0 : st->load;
}

double InfoDaemon::known_cache_pressure(net::NodeId peer) const {
  const PeerState* st = find_state(peer);
  return st == nullptr ? 0.0 : st->cache_pressure;
}

std::uint64_t InfoDaemon::peer_version(net::NodeId peer) const {
  const PeerState* st = find_state(peer);
  return st == nullptr ? 0 : st->version;
}

PeerHealth InfoDaemon::peer_health(net::NodeId peer) const {
  if (!detection_.enabled || !started_) {
    return PeerHealth::kAlive;
  }
  const PeerState* st = find_state(peer);
  // Silence measured from the later of daemon start and last contact, so a
  // freshly-started cluster gets a full grace window before judging anyone.
  sim::Time baseline = started_at_;
  if (st != nullptr && st->heard && st->last_heard > baseline) {
    baseline = st->last_heard;
  }
  const sim::Time silence = sim_.now() - baseline;
  if (silence >= period_.scaled(detection_.dead_periods)) {
    return PeerHealth::kDead;
  }
  if (silence >= period_.scaled(detection_.suspect_periods)) {
    return PeerHealth::kSuspected;
  }
  return PeerHealth::kAlive;
}

void InfoDaemon::note_rebooted() {
  if (started_) {
    started_at_ = sim_.now();
  }
  for (PeerState& state : state_) {
    state.heard = false;
    state.last_heard = sim::Time::zero();
  }
}

sim::Time InfoDaemon::last_heard(net::NodeId peer) const {
  const PeerState* st = find_state(peer);
  return st != nullptr && st->heard ? st->last_heard : sim::Time::zero();
}

std::uint64_t InfoDaemon::dead_peers() const {
  std::uint64_t dead = 0;
  for (const net::NodeId peer : peers_) {
    if (peer_health(peer) == PeerHealth::kDead) {
      ++dead;
    }
  }
  return dead;
}

void InfoDaemon::on_ping(net::NodeId src, const net::LoadPing& ping) {
  // Record the peer's advertised load and acknowledge so it can measure RTT.
  PeerState& st = ensure_state(src);
  st.load = ping.cpu_load;
  st.last_heard = sim_.now();
  st.heard = true;
  net::LoadAck ack;
  ack.seq = ping.seq;
  ack.ping_sent_at = ping.sent_at;
  ack.cpu_load = local_load_ ? local_load_() : 0.0;
  fabric_.send(net::Message{self_, src, /*wire_bytes=*/64, ack});
}

void InfoDaemon::on_ack(net::NodeId src, const net::LoadAck& ack) {
  ++acks_received_;
  const sim::Time rtt = sim_.now() - ack.ping_sent_at;
  PeerState& peer = ensure_state(src);
  peer.load = ack.cpu_load;
  peer.last_heard = sim_.now();
  peer.heard = true;
  if (!peer.measured) {
    peer.rtt_ewma = rtt;
    peer.measured = true;
  } else {
    // EWMA with alpha = 0.3; Time's integer operators keep it exact.
    peer.rtt_ewma = (peer.rtt_ewma * 7 + rtt * 3) / 10;
  }
}

void InfoDaemon::on_gossip_ping(net::NodeId src, const net::GossipPing& ping) {
  // Format migration: a message stamped older than kGossipFormatCache has
  // no pressure fields on the wire, so they deterministically read as 0.0
  // — never a rejection, so mixed-format clusters keep converging on load
  // and liveness (the version/heartbeat semantics are format-independent).
  const bool has_pressure = ping.format >= net::kGossipFormatCache;
  merge_entry(src, ping.sender_version, ping.cpu_load,
              has_pressure ? ping.cache_pressure : 0.0);
  for (const net::GossipEntry& entry : ping.digest) {
    merge_entry(entry.node, entry.version, entry.load,
                has_pressure ? entry.cache_pressure : 0.0);
  }
  net::GossipAck ack;
  ack.seq = ping.seq;
  ack.ping_sent_at = ping.sent_at;
  ack.cpu_load = local_load_ ? local_load_() : 0.0;
  ack.sender_version = self_version_;
  if (gossip_.cache_digest) {
    ack.format = net::kGossipFormatCache;
    ack.cache_pressure = local_cache_pressure();
  }
  const auto wire = static_cast<sim::Bytes>(gossip_.cache_digest ? 72 : 64);
  fabric_.send(net::Message{self_, src, wire, ack});
}

void InfoDaemon::on_gossip_ack(net::NodeId src, const net::GossipAck& ack) {
  ++acks_received_;
  const sim::Time rtt = sim_.now() - ack.ping_sent_at;
  merge_entry(src, ack.sender_version, ack.cpu_load,
              ack.format >= net::kGossipFormatCache ? ack.cache_pressure : 0.0);
  PeerState& peer = ensure_state(src);
  if (!peer.measured) {
    peer.rtt_ewma = rtt;
    peer.measured = true;
  } else {
    peer.rtt_ewma = (peer.rtt_ewma * 7 + rtt * 3) / 10;
  }
}

}  // namespace ampom::cluster
