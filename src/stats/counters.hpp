#pragma once
// Named monotonic counters, the lowest-level metric sink.

#include <cstdint>
#include <map>
#include <string>

namespace ampom::stats {

class Counters {
 public:
  void add(const std::string& name, std::uint64_t delta = 1) { values_[name] += delta; }

  [[nodiscard]] std::uint64_t get(const std::string& name) const {
    const auto it = values_.find(name);
    return it == values_.end() ? 0 : it->second;
  }

  [[nodiscard]] const std::map<std::string, std::uint64_t>& all() const { return values_; }

  // Accumulate another counter set (per-run reliability counters roll up
  // into a sweep-wide summary this way).
  void merge(const Counters& other) {
    for (const auto& [name, value] : other.values_) {
      values_[name] += value;
    }
  }

  void reset() { values_.clear(); }

  [[nodiscard]] bool operator==(const Counters&) const = default;

 private:
  std::map<std::string, std::uint64_t> values_;
};

}  // namespace ampom::stats
