#pragma once
// Order statistics over a sample of doubles.

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

namespace ampom::stats {

class Summary {
 public:
  void add(double v) {
    values_.push_back(v);
    sorted_ = false;
  }

  [[nodiscard]] std::size_t count() const { return values_.size(); }
  [[nodiscard]] bool empty() const { return values_.empty(); }

  [[nodiscard]] double sum() const {
    double s = 0.0;
    for (const double v : values_) {
      s += v;
    }
    return s;
  }

  [[nodiscard]] double mean() const { return empty() ? 0.0 : sum() / static_cast<double>(count()); }

  // Order statistics of an empty sample are undefined; they return NaN
  // rather than assert so a Release build never indexes into an empty
  // vector (callers that "know" the sample is non-empty have been wrong —
  // a fault-free run hands fill_recovery_metrics zero-count summaries).
  [[nodiscard]] double min() const {
    if (empty()) {
      return std::numeric_limits<double>::quiet_NaN();
    }
    return *std::min_element(values_.begin(), values_.end());
  }

  [[nodiscard]] double max() const {
    if (empty()) {
      return std::numeric_limits<double>::quiet_NaN();
    }
    return *std::max_element(values_.begin(), values_.end());
  }

  // Linear-interpolated percentile, q in [0, 1]. NaN on an empty sample.
  [[nodiscard]] double percentile(double q) const {
    assert(q >= 0.0 && q <= 1.0);
    if (empty()) {
      return std::numeric_limits<double>::quiet_NaN();
    }
    sort();
    const double pos = q * static_cast<double>(values_.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, values_.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return values_[lo] * (1.0 - frac) + values_[hi] * frac;
  }

  [[nodiscard]] double median() const { return percentile(0.5); }

  [[nodiscard]] double stddev() const {
    if (count() < 2) {
      return 0.0;
    }
    const double m = mean();
    double acc = 0.0;
    for (const double v : values_) {
      acc += (v - m) * (v - m);
    }
    return std::sqrt(acc / static_cast<double>(count() - 1));
  }

 private:
  void sort() const {
    if (!sorted_) {
      std::sort(values_.begin(), values_.end());
      sorted_ = true;
    }
  }
  mutable std::vector<double> values_;
  mutable bool sorted_{true};
};

}  // namespace ampom::stats
