#pragma once
// A named (x, y) series — one plotted line of a paper figure.

#include <string>
#include <utility>
#include <vector>

namespace ampom::stats {

class Series {
 public:
  explicit Series(std::string name) : name_{std::move(name)} {}

  void add(double x, double y) { points_.emplace_back(x, y); }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<std::pair<double, double>>& points() const { return points_; }
  [[nodiscard]] std::size_t size() const { return points_.size(); }
  [[nodiscard]] bool empty() const { return points_.empty(); }

  // y value at the largest x (the "largest run" the paper often quotes).
  [[nodiscard]] double last_y() const { return points_.empty() ? 0.0 : points_.back().second; }

 private:
  std::string name_;
  std::vector<std::pair<double, double>> points_;
};

}  // namespace ampom::stats
