#include "stats/table.hpp"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <ostream>

#include "simcore/fmt.hpp"

namespace ampom::stats {

Table::Table(std::string title, std::vector<std::string> columns)
    : title_{std::move(title)}, columns_{std::move(columns)} {
  assert(!columns_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  assert(cells.size() == columns_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  os << "== " << title_ << " ==\n";
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os << cells[c];
      os << std::string(widths[c] - cells[c].size(), ' ');
    }
    os << "\n";
  };
  print_row(columns_);
  std::size_t total = columns_.size() > 0 ? 2 * (columns_.size() - 1) : 0;
  for (const auto w : widths) {
    total += w;
  }
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) {
    print_row(row);
  }
  os << "\n";
}

void Table::write_csv(std::ostream& os) const {
  auto csv_escape = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) {
      return s;
    }
    std::string out = "\"";
    for (const char ch : s) {
      if (ch == '"') {
        out += "\"\"";
      } else {
        out += ch;
      }
    }
    out += '"';
    return out;
  };
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    os << (c == 0 ? "" : ",") << csv_escape(columns_[c]);
  }
  os << "\n";
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : ",") << csv_escape(row[c]);
    }
    os << "\n";
  }
}

std::string Table::num(double v, int precision) {
  return sim::strfmt("%.*f", precision, v);
}

std::string Table::integer(std::uint64_t v) {
  return sim::strfmt("%llu", static_cast<unsigned long long>(v));
}

std::string Table::percent(double fraction, int precision) {
  return sim::strfmt("%.*f%%", precision, fraction * 100.0);
}

}  // namespace ampom::stats
