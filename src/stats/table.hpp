#pragma once
// Aligned ASCII tables and CSV output for the benchmark harness.
//
// Every bench binary prints one table per paper figure: a header row, then
// one row per (kernel, size, scheme) cell, matching the series the paper
// plots. print() renders aligned text; write_csv() emits the same data for
// external plotting.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace ampom::stats {

class Table {
 public:
  Table(std::string title, std::vector<std::string> columns);

  // All values are carried as strings; use cell helpers for numbers.
  void add_row(std::vector<std::string> cells);

  [[nodiscard]] const std::string& title() const { return title_; }
  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  [[nodiscard]] const std::vector<std::string>& row(std::size_t i) const { return rows_[i]; }

  void print(std::ostream& os) const;
  void write_csv(std::ostream& os) const;

  // Numeric cell formatting helpers.
  [[nodiscard]] static std::string num(double v, int precision = 3);
  [[nodiscard]] static std::string integer(std::uint64_t v);
  [[nodiscard]] static std::string percent(double fraction, int precision = 1);

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ampom::stats
