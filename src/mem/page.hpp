#pragma once
// Page-granularity memory primitives.
//
// The simulator never stores page *contents* — every metric in the paper
// (freeze time, fault counts, prefetch counts, runtimes) depends only on
// page identity, location and timing — so a page is an index plus state.

#include <cstdint>

#include "simcore/units.hpp"

namespace ampom::mem {

using PageId = std::uint64_t;
inline constexpr PageId kInvalidPage = static_cast<PageId>(-1);

inline constexpr sim::Bytes kPageBytes = 4096;

// Size of one master-page-table entry on the wire (paper §5.2: "the size of
// an MPT is 6 bytes per page").
inline constexpr sim::Bytes kMptEntryBytes = 6;

[[nodiscard]] constexpr std::uint64_t pages_for_bytes(sim::Bytes bytes) {
  return (bytes + kPageBytes - 1) / kPageBytes;
}
[[nodiscard]] constexpr sim::Bytes bytes_for_pages(std::uint64_t pages) {
  return pages * kPageBytes;
}
[[nodiscard]] constexpr std::uint64_t pages_for_mib(std::uint64_t mib) {
  return pages_for_bytes(mib * sim::kMiB);
}

// State of a page as seen by the process instance that is executing.
enum class PageState : std::uint8_t {
  Unallocated,  // never touched; first touch creates it locally (MPT-only update)
  Local,        // mapped in the local address space
  Remote,       // lives at the home node; access causes a remote page fault
  InFlight,     // requested from the home node, not yet arrived
  Arrived,      // in the lookaside buffer; mapped at the next fault (soft fault)
  Swapped,      // evicted to local swap (optional RAM-limit extension)
};

[[nodiscard]] constexpr const char* page_state_name(PageState s) {
  switch (s) {
    case PageState::Unallocated:
      return "unallocated";
    case PageState::Local:
      return "local";
    case PageState::Remote:
      return "remote";
    case PageState::InFlight:
      return "inflight";
    case PageState::Arrived:
      return "arrived";
    case PageState::Swapped:
      return "swapped";
  }
  return "?";
}

}  // namespace ampom::mem
