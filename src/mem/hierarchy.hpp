#pragma once
// Per-node memory-hierarchy model: a shared last-level cache plus a small
// number of NUMA domains per node, with capacity/occupancy tracked per
// resident process (ROADMAP item 1, after Brandenburg's cpmd-experiments
// and Jeongseob's LLC-miss-driven scheduler).
//
// The model is deliberately coarse: a process occupies its working-set
// bytes in the node's LLC and is pinned to one NUMA domain (the emptier
// one at arrival, ties to the lower domain id — a deterministic stand-in
// for first-touch allocation). Two derived signals feed the balancer and
// the CPMD charge (migration/cpmd.hpp):
//   cache_pressure(node) — resident WSS bytes over LLC capacity. Above 1.0
//        the cache is oversubscribed and every resident's warm-up slows.
//   numa_contention(node) — occupancy fraction of the domain a new arrival
//        would land in (its share of DRAM bandwidth is already spoken for).
//
// Determinism: the model is default-off (HierarchyConfig{} disables it and
// ClusterSim then never constructs one), and when on it adds no simulator
// events — it is pure bookkeeping driven by the existing activation /
// deactivation notifications. Partitioned runs: per-node occupancy is
// touched only from that node's partition (the same call sites that
// maintain the per-node load counts), so the state shards by node exactly
// like active_count_.

#include <cstdint>
#include <map>
#include <stdexcept>
#include <vector>

#include "net/message.hpp"
#include "simcore/units.hpp"

namespace ampom::mem {

struct HierarchyConfig {
  bool enabled{false};
  sim::Bytes llc_bytes{32ull << 20};  // shared LLC capacity per node
  std::uint32_t numa_domains{2};      // domains per node (>= 1)
};

class MemoryHierarchy {
 public:
  MemoryHierarchy(HierarchyConfig config, std::size_t node_count) : config_{config} {
    if (config.numa_domains < 1) {
      throw std::invalid_argument("MemoryHierarchy: numa_domains must be >= 1");
    }
    if (config.llc_bytes == 0) {
      throw std::invalid_argument("MemoryHierarchy: llc_bytes must be positive");
    }
    nodes_.resize(node_count);
    for (NodeState& node : nodes_) {
      node.domain_bytes.assign(config.numa_domains, 0);
    }
  }

  // A process became resident on `node` (start, migration commit, rehome).
  // Lands in the emptiest NUMA domain (ties to the lower id).
  // ampom: partition-local
  void place(net::NodeId node, std::uint64_t pid, sim::Bytes wss) {
    NodeState& st = nodes_.at(node);
    std::uint32_t domain = 0;
    for (std::uint32_t d = 1; d < st.domain_bytes.size(); ++d) {
      if (st.domain_bytes[d] < st.domain_bytes[domain]) {
        domain = d;
      }
    }
    st.residents.emplace(pid, Resident{wss, domain});
    st.total_bytes += wss;
    st.domain_bytes[domain] += wss;
  }

  // The process left `node` (finish, migration commit away, crash rehome).
  // ampom: partition-local
  void remove(net::NodeId node, std::uint64_t pid) {
    NodeState& st = nodes_.at(node);
    const auto it = st.residents.find(pid);
    if (it == st.residents.end()) {
      return;
    }
    st.total_bytes -= it->second.wss;
    st.domain_bytes[it->second.domain] -= it->second.wss;
    st.residents.erase(it);
  }

  // Resident WSS over LLC capacity; exceeds 1.0 when oversubscribed.
  [[nodiscard]] double cache_pressure(net::NodeId node) const {
    const NodeState& st = nodes_.at(node);
    return static_cast<double>(st.total_bytes) / static_cast<double>(config_.llc_bytes);
  }

  // Pressure as a new arrival would see it: the residents it must warm up
  // against. Excludes `pid` so a just-committed migrant is not charged for
  // displacing itself.
  [[nodiscard]] double pressure_excluding(net::NodeId node, std::uint64_t pid) const {
    const NodeState& st = nodes_.at(node);
    sim::Bytes total = st.total_bytes;
    const auto it = st.residents.find(pid);
    if (it != st.residents.end()) {
      total -= it->second.wss;
    }
    return static_cast<double>(total) / static_cast<double>(config_.llc_bytes);
  }

  // Occupancy fraction of the domain a new arrival would land in — the
  // memory-bandwidth contention it would face. Normalized by the per-domain
  // capacity share so one saturated domain reads 1.0.
  [[nodiscard]] double numa_contention(net::NodeId node) const {
    const NodeState& st = nodes_.at(node);
    sim::Bytes emptiest = st.domain_bytes[0];
    for (const sim::Bytes bytes : st.domain_bytes) {
      if (bytes < emptiest) {
        emptiest = bytes;
      }
    }
    const double share =
        static_cast<double>(config_.llc_bytes) / static_cast<double>(st.domain_bytes.size());
    return static_cast<double>(emptiest) / share;
  }

  // The domain `pid` was pinned to on `node`, or numa_domains if absent
  // (introspection for tests/auditors).
  [[nodiscard]] std::uint32_t domain_of(net::NodeId node, std::uint64_t pid) const {
    const NodeState& st = nodes_.at(node);
    const auto it = st.residents.find(pid);
    return it == st.residents.end() ? config_.numa_domains : it->second.domain;
  }

  [[nodiscard]] sim::Bytes resident_bytes(net::NodeId node) const {
    return nodes_.at(node).total_bytes;
  }
  [[nodiscard]] const HierarchyConfig& config() const { return config_; }

 private:
  struct Resident {
    sim::Bytes wss{0};
    std::uint32_t domain{0};
  };
  struct NodeState {
    // Ordered by pid so iteration (if ever added) is deterministic.
    std::map<std::uint64_t, Resident> residents;
    sim::Bytes total_bytes{0};
    std::vector<sim::Bytes> domain_bytes;
  };

  HierarchyConfig config_;
  // Per-node occupancy, written only from that node's partition (the
  // activation/deactivation call sites) and read by the balancer in the
  // barrier context — the same sharding discipline as the load counts.
  std::vector<NodeState> nodes_;
};

}  // namespace ampom::mem
