#pragma once
// The master/home page-table pair (paper §2.2).
//
// When a process migrates, its Linux page table is shipped to the
// destination and becomes the MPT; the original becomes the HPT, owned by
// the deputy. Both are instances of this class tracking, per page, where
// the authoritative copy lives. The update protocol follows §2.2:
//   - page transferred to migrant: delete home copy, update HPT (and MPT);
//   - page created by migrant:     update only the MPT;
//   - page unmapped:               update MPT, and HPT only if the page was
//                                  still stored at home.

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "mem/page.hpp"

namespace ampom::mem {

class PageTable {
 public:
  enum class Loc : std::uint8_t {
    Absent,    // not materialized anywhere (unallocated or unmapped)
    Here,      // on the node owning this table
    Remote,    // on the peer node (home from the migrant's view, or vice versa)
    Incoming,  // being flushed back to this node (re-migration); not yet servable
  };

  explicit PageTable(std::uint64_t page_count) : loc_(page_count, Loc::Absent) {}

  [[nodiscard]] std::uint64_t page_count() const { return loc_.size(); }

  [[nodiscard]] Loc loc(PageId page) const { return loc_.at(page); }

  void set_loc(PageId page, Loc loc) {
    Loc& slot = loc_.at(page);
    adjust(slot, -1);
    slot = loc;
    adjust(slot, +1);
  }

  [[nodiscard]] std::uint64_t count_here() const { return here_; }
  [[nodiscard]] std::uint64_t count_remote() const { return remote_; }
  [[nodiscard]] std::uint64_t count_incoming() const { return incoming_; }
  [[nodiscard]] std::uint64_t count_absent() const {
    return page_count() - here_ - remote_ - incoming_;
  }

  // Wire size of the table when migrated with the process (paper: 6 B/page).
  [[nodiscard]] sim::Bytes wire_bytes() const { return page_count() * kMptEntryBytes; }

 private:
  void adjust(Loc loc, int delta) {
    const auto d = static_cast<std::int64_t>(delta);
    if (loc == Loc::Here) {
      here_ = static_cast<std::uint64_t>(static_cast<std::int64_t>(here_) + d);
    } else if (loc == Loc::Remote) {
      remote_ = static_cast<std::uint64_t>(static_cast<std::int64_t>(remote_) + d);
    } else if (loc == Loc::Incoming) {
      incoming_ = static_cast<std::uint64_t>(static_cast<std::int64_t>(incoming_) + d);
    }
  }

  std::vector<Loc> loc_;
  std::uint64_t here_{0};
  std::uint64_t remote_{0};
  std::uint64_t incoming_{0};
};

}  // namespace ampom::mem
