#pragma once
// Page-ownership ledger: the conservation invariant behind the protocol.
//
// Every page of a process's address space has exactly one authoritative
// copy. A migration or remote-paging transfer moves it; the paper's §2.2
// protocol deletes the home copy when a page is shipped, so a page can
// cross the wire at most once per migration. The ledger records transfers
// and throws on any violation — it runs in every build (cheap) and is the
// backbone of the property tests.

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "mem/page.hpp"
#include "net/message.hpp"
#include "simcore/fmt.hpp"

namespace ampom::mem {

class PageLedger {
 public:
  PageLedger(std::uint64_t page_count, net::NodeId initial_owner)
      : owner_(page_count, initial_owner), transfers_(page_count, 0) {}

  [[nodiscard]] std::uint64_t page_count() const { return owner_.size(); }
  [[nodiscard]] net::NodeId owner(PageId page) const { return owner_.at(page); }
  [[nodiscard]] std::uint32_t transfer_count(PageId page) const { return transfers_.at(page); }

  // Record a transfer of `page` from `from` to `to`.
  void transfer(PageId page, net::NodeId from, net::NodeId to) {
    net::NodeId& cur = owner_.at(page);
    if (cur != from) {
      throw std::logic_error(sim::strfmt(
          "PageLedger: page %llu transferred from node %u but owned by node %u",
          static_cast<unsigned long long>(page), from, cur));
    }
    if (from == to) {
      throw std::logic_error("PageLedger: self-transfer");
    }
    cur = to;
    ++transfers_.at(page);
  }

  [[nodiscard]] std::uint64_t total_transfers() const {
    std::uint64_t sum = 0;
    for (const auto t : transfers_) {
      sum += t;
    }
    return sum;
  }

  // Invariant for a single-migration run: no page moved more than once.
  [[nodiscard]] bool at_most_one_transfer_each() const {
    for (const auto t : transfers_) {
      if (t > 1) {
        return false;
      }
    }
    return true;
  }

 private:
  std::vector<net::NodeId> owner_;
  std::vector<std::uint32_t> transfers_;
};

}  // namespace ampom::mem
