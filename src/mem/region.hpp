#pragma once
// Address-space region layout (code / data / heap / stack).
//
// The migration engines need region structure: FFA-style migration ships
// "the currently-accessed code, stack, and data pages" (paper §2.1), which
// requires knowing which region a page belongs to.

#include <array>
#include <cassert>
#include <cstdint>
#include <stdexcept>

#include "mem/page.hpp"

namespace ampom::mem {

enum class Region : std::uint8_t { Code, Data, Heap, Stack };
inline constexpr std::size_t kRegionCount = 4;

[[nodiscard]] constexpr const char* region_name(Region r) {
  switch (r) {
    case Region::Code:
      return "code";
    case Region::Data:
      return "data";
    case Region::Heap:
      return "heap";
    case Region::Stack:
      return "stack";
  }
  return "?";
}

// Contiguous page ranges, laid out code | data | heap | stack.
class RegionLayout {
 public:
  RegionLayout(std::uint64_t code_pages, std::uint64_t data_pages, std::uint64_t heap_pages,
               std::uint64_t stack_pages) {
    if (code_pages == 0 || stack_pages == 0) {
      throw std::invalid_argument("RegionLayout: code and stack must be non-empty");
    }
    bounds_[0] = code_pages;
    bounds_[1] = bounds_[0] + data_pages;
    bounds_[2] = bounds_[1] + heap_pages;
    bounds_[3] = bounds_[2] + stack_pages;
  }

  // A typical large HPC process: a few code pages, a small data segment,
  // nearly everything in the heap, a handful of stack pages.
  [[nodiscard]] static RegionLayout for_total_bytes(sim::Bytes total) {
    const std::uint64_t total_pages = pages_for_bytes(total);
    constexpr std::uint64_t kCode = 64;   // 256 KiB of text
    constexpr std::uint64_t kData = 128;  // 512 KiB of globals
    constexpr std::uint64_t kStack = 16;  // 64 KiB of stack
    const std::uint64_t fixed = kCode + kData + kStack;
    const std::uint64_t heap = total_pages > fixed ? total_pages - fixed : 1;
    return RegionLayout{kCode, kData, heap, kStack};
  }

  [[nodiscard]] std::uint64_t total_pages() const { return bounds_[3]; }

  [[nodiscard]] PageId begin(Region r) const {
    const auto i = static_cast<std::size_t>(r);
    return i == 0 ? 0 : bounds_[i - 1];
  }
  [[nodiscard]] PageId end(Region r) const { return bounds_[static_cast<std::size_t>(r)]; }
  [[nodiscard]] std::uint64_t pages(Region r) const { return end(r) - begin(r); }

  [[nodiscard]] Region region_of(PageId page) const {
    assert(page < total_pages());
    for (std::size_t i = 0; i < kRegionCount; ++i) {
      if (page < bounds_[i]) {
        return static_cast<Region>(i);
      }
    }
    return Region::Stack;
  }

  [[nodiscard]] bool contains(PageId page) const { return page < total_pages(); }

 private:
  std::array<std::uint64_t, kRegionCount> bounds_{};
};

}  // namespace ampom::mem
