#include "mem/address_space.hpp"

#include "simcore/fmt.hpp"

namespace ampom::mem {

AddressSpace::AddressSpace(RegionLayout layout)
    : layout_{layout},
      states_(layout.total_pages(), PageState::Unallocated),
      dirty_(layout.total_pages(), false) {
  counts_[static_cast<std::size_t>(PageState::Unallocated)] = layout.total_pages();
}

void AddressSpace::set_state_unchecked(PageId page, PageState to) {
  PageState& slot = states_.at(page);
  --counts_[static_cast<std::size_t>(slot)];
  slot = to;
  ++counts_[static_cast<std::size_t>(to)];
}

void AddressSpace::transition(PageId page, PageState from, PageState to) {
  const PageState current = states_.at(page);
  if (current != from) {
    throw std::logic_error(sim::strfmt(
        "AddressSpace: page %llu is %s, expected %s (target %s)",
        static_cast<unsigned long long>(page), page_state_name(current), page_state_name(from),
        page_state_name(to)));
  }
  set_state_unchecked(page, to);
}

void AddressSpace::populate_all_dirty() { populate_range(0, page_count(), /*mark_dirty=*/true); }

void AddressSpace::populate_range(PageId begin, PageId end, bool mark_dirty_flag) {
  if (end > page_count() || begin > end) {
    throw std::out_of_range("AddressSpace::populate_range");
  }
  for (PageId p = begin; p < end; ++p) {
    if (states_[p] == PageState::Unallocated) {
      set_state_unchecked(p, PageState::Local);
    }
    if (mark_dirty_flag && !dirty_[p]) {
      dirty_[p] = true;
      ++dirty_count_;
    }
  }
}

void AddressSpace::demote_to_remote(PageId page) {
  transition(page, PageState::Local, PageState::Remote);
}

void AddressSpace::carry_over(PageId page) {
  // No state change needed — the page was Local at home and stays Local at
  // the destination after the freeze-time transfer; the call exists so the
  // engines document intent and we can assert the precondition.
  const PageState current = states_.at(page);
  if (current != PageState::Local) {
    throw std::logic_error("AddressSpace::carry_over on a non-local page");
  }
}

AccessKind AddressSpace::classify(PageId page) const {
  switch (states_.at(page)) {
    case PageState::Local:
      return AccessKind::Hit;
    case PageState::Unallocated:
      return AccessKind::FirstTouch;
    case PageState::Arrived:
      return AccessKind::SoftFault;
    case PageState::Remote:
      return AccessKind::HardFault;
    case PageState::InFlight:
      return AccessKind::InFlightWait;
    case PageState::Swapped:
      return AccessKind::SwapFault;
  }
  throw std::logic_error("AddressSpace::classify: corrupt state");
}

void AddressSpace::create_on_touch(PageId page) {
  transition(page, PageState::Unallocated, PageState::Local);
  if (!dirty_[page]) {
    dirty_[page] = true;
    ++dirty_count_;
  }
}

void AddressSpace::mark_in_flight(PageId page) {
  transition(page, PageState::Remote, PageState::InFlight);
}

void AddressSpace::mark_arrived(PageId page) {
  transition(page, PageState::InFlight, PageState::Arrived);
  arrived_.push_back(page);
}

std::uint64_t AddressSpace::map_all_arrived() {
  const auto mapped = static_cast<std::uint64_t>(arrived_.size());
  for (const PageId page : arrived_) {
    transition(page, PageState::Arrived, PageState::Local);
  }
  arrived_.clear();
  return mapped;
}

void AddressSpace::map_arrived_page(PageId page) {
  transition(page, PageState::Arrived, PageState::Local);
  for (auto it = arrived_.begin(); it != arrived_.end(); ++it) {
    if (*it == page) {
      arrived_.erase(it);
      return;
    }
  }
  throw std::logic_error("AddressSpace::map_arrived_page: page missing from lookaside buffer");
}

void AddressSpace::evict_to_swap(PageId page) {
  transition(page, PageState::Local, PageState::Swapped);
}

void AddressSpace::load_from_swap(PageId page) {
  transition(page, PageState::Swapped, PageState::Local);
}

std::uint64_t AddressSpace::recover_all_local() {
  std::uint64_t changed = 0;
  for (PageId p = 0; p < page_count(); ++p) {
    const PageState s = states_[p];
    if (s == PageState::Remote || s == PageState::InFlight || s == PageState::Arrived ||
        s == PageState::Swapped) {
      set_state_unchecked(p, PageState::Local);
      ++changed;
    }
  }
  arrived_.clear();
  return changed;
}

std::vector<PageId> AddressSpace::pages_in_state(PageState s) const {
  std::vector<PageId> out;
  out.reserve(count(s));
  for (PageId p = 0; p < page_count(); ++p) {
    if (states_[p] == s) {
      out.push_back(p);
    }
  }
  return out;
}

}  // namespace ampom::mem
