#pragma once
// The migrating process's address-space image.
//
// One AddressSpace describes the distributed state of a process's pages:
// mapped locally at the current node, left behind at the home node, in
// flight, parked in the lookaside buffer, or swapped out. The executor
// classifies every reference against it; the migration engines and the
// remote-paging protocol drive the state transitions.

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "mem/page.hpp"
#include "mem/region.hpp"

namespace ampom::mem {

// Classification of a memory reference (what the MMU + fault handler see).
enum class AccessKind : std::uint8_t {
  Hit,         // page is Local: no fault
  FirstTouch,  // page was Unallocated: minor fault, created locally
  SoftFault,   // page is Arrived: fault served from the lookaside buffer
  HardFault,   // page is Remote: fault requiring a remote paging request
  InFlightWait,  // page is InFlight: fault that blocks until the reply lands
  SwapFault,   // page is Swapped: fault served from local swap
};

class AddressSpace {
 public:
  explicit AddressSpace(RegionLayout layout);

  [[nodiscard]] const RegionLayout& layout() const { return layout_; }
  [[nodiscard]] std::uint64_t page_count() const { return states_.size(); }

  [[nodiscard]] PageState state(PageId page) const { return states_.at(page); }
  [[nodiscard]] bool dirty(PageId page) const { return dirty_.at(page); }

  // --- setup -------------------------------------------------------------
  // Materialize every page locally and mark it dirty: the paper migrates
  // "right after a kernel has finished allocating the required memory", at
  // which point the whole address space is dirty.
  void populate_all_dirty();

  // Materialize a page range (initialized data/code at process start).
  void populate_range(PageId begin, PageId end, bool mark_dirty);

  // --- migration-time transitions -----------------------------------------
  // Page stays at the home node; the migrant will fault on it.
  void demote_to_remote(PageId page);
  // Page was shipped during the freeze; it is mapped at the destination.
  void carry_over(PageId page);

  // --- runtime transitions -------------------------------------------------
  [[nodiscard]] AccessKind classify(PageId page) const;

  // First touch of an Unallocated page: created locally, dirty (MPT-only
  // update per paper §2.2).
  void create_on_touch(PageId page);

  void mark_in_flight(PageId page);
  // A PageData message landed: page goes to the lookaside buffer.
  void mark_arrived(PageId page);
  // Map every Arrived page (Algorithm 1: "copy these pages to the migrant's
  // address space" at the next fault). Returns how many were mapped.
  std::uint64_t map_all_arrived();
  // Map one specific Arrived page now (the urgent page a fault blocks on).
  void map_arrived_page(PageId page);

  // RAM-limit extension: evict/load a Local page to/from local swap.
  void evict_to_swap(PageId page);
  void load_from_swap(PageId page);

  // Crash recovery: the process restarts at its home node from the deputy's
  // image, so every materialized page (Remote, InFlight, Arrived, Swapped)
  // becomes Local again; Unallocated pages stay untouched. Returns how many
  // pages changed state.
  std::uint64_t recover_all_local();

  void mark_dirty(PageId page) { dirty_.at(page) = true; }

  // --- counters ------------------------------------------------------------
  [[nodiscard]] std::uint64_t count(PageState s) const {
    return counts_[static_cast<std::size_t>(s)];
  }
  [[nodiscard]] std::uint64_t local_pages() const { return count(PageState::Local); }
  [[nodiscard]] std::uint64_t remote_pages() const { return count(PageState::Remote); }
  [[nodiscard]] std::uint64_t dirty_pages() const { return dirty_count_; }
  [[nodiscard]] sim::Bytes dirty_bytes() const { return bytes_for_pages(dirty_count_); }

  // All pages currently in the given state (used by migration engines).
  [[nodiscard]] std::vector<PageId> pages_in_state(PageState s) const;

 private:
  void transition(PageId page, PageState from, PageState to);
  void set_state_unchecked(PageId page, PageState to);

  RegionLayout layout_;
  std::vector<PageState> states_;
  std::vector<bool> dirty_;
  std::uint64_t counts_[6]{};
  std::uint64_t dirty_count_{0};
  std::vector<PageId> arrived_;  // lookaside buffer contents
};

}  // namespace ampom::mem
