#pragma once
// RunContext: everything observability-related that belongs to ONE run.
//
// Before this existed, per-run state was split between a process-wide
// Logger singleton (concurrent runs raced on its level and sink) and
// driver::Runner (which held the trace recorder of "the last run"). A
// RunContext gathers all of it behind one object with no global fallback:
//
//   - the Logger the harness writes through (AMPOM_LOG takes a Logger&),
//     optionally captured into an in-memory buffer instead of stderr;
//   - the TraceRecorder built from Scenario::trace, alive as long as the
//     context so the timeline can be exported after the run;
//   - the metric sinks notified when the run finishes.
//
// Two runs never share a context, which is what makes SweepExecutor's
// parallelism safe: run_scenario touches nothing outside the Scenario it
// was given and the RunContext it was handed.

#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "driver/metrics.hpp"
#include "driver/scenario.hpp"
#include "simcore/log.hpp"
#include "trace/trace.hpp"

namespace ampom::driver {

class RunContext {
 public:
  struct Options {
    sim::LogLevel log_level{sim::LogLevel::Warn};
    // Where log lines go. Ignored when capture_log is set; nullptr means
    // stderr (pass capture_log=true and never read the buffer to discard).
    std::ostream* log_sink{nullptr};
    // Route the run's log into an internal buffer (captured_log()) instead
    // of a shared stream — the log-capture API tests use, and the only
    // stderr-safe choice when runs execute concurrently.
    bool capture_log{false};
  };

  // The recorder is configured from scenario.trace; the scenario itself is
  // not retained.
  explicit RunContext(const Scenario& scenario) : RunContext{scenario, Options{}} {}
  RunContext(const Scenario& scenario, Options options);

  [[nodiscard]] sim::Logger& log() { return logger_; }
  [[nodiscard]] const sim::Logger& log() const { return logger_; }

  [[nodiscard]] trace::TraceRecorder& trace() { return *recorder_; }
  [[nodiscard]] const trace::TraceRecorder& trace() const { return *recorder_; }

  // The scenario's execution policy (jobs / workers), captured at
  // construction so whoever drives the run reads one authoritative copy.
  [[nodiscard]] const ExecPolicy& exec() const { return exec_; }

  // Everything the run logged, when Options::capture_log was set.
  [[nodiscard]] std::string captured_log() const { return capture_.str(); }

  // Observers of the finished run; notify_sinks is called once by whoever
  // drives the run (Runner / SweepExecutor).
  void add_metric_sink(std::function<void(const RunMetrics&)> sink) {
    sinks_.push_back(std::move(sink));
  }
  void notify_sinks(const RunMetrics& metrics) const {
    for (const auto& sink : sinks_) {
      sink(metrics);
    }
  }

  // Exports the run's events as Chrome trace_event JSON (chrome://tracing,
  // Perfetto). Returns false when tracing was off or the file cannot be
  // opened.
  [[nodiscard]] bool write_trace_json(const std::string& path) const;

 private:
  std::ostringstream capture_;
  sim::Logger logger_;
  // Heap-allocated so the context stays movable-in-place for containers
  // even though instrumented components hold TraceRecorder*.
  std::unique_ptr<trace::TraceRecorder> recorder_;
  ExecPolicy exec_{};
  std::vector<std::function<void(const RunMetrics&)>> sinks_;
};

}  // namespace ampom::driver
