#include "driver/experiment.hpp"

#include <optional>
#include <stdexcept>

#include "cluster/infod.hpp"
#include "cluster/node.hpp"
#include "core/ampom_policy.hpp"
#include "mem/ledger.hpp"
#include "migration/full_copy.hpp"
#include "migration/lightweight.hpp"
#include "migration/checkpoint.hpp"
#include "migration/precopy.hpp"
#include "migration/remigration.hpp"
#include "net/background_traffic.hpp"
#include "net/fault_injector.hpp"
#include "net/traffic_shaper.hpp"
#include "driver/run_context.hpp"
#include "driver/runner.hpp"
#include "proc/demand_paging.hpp"
#include "proc/executor.hpp"
#include "proc/paging_client.hpp"
#include "simcore/log.hpp"
#include "simcore/simulator.hpp"
#include "trace/trace.hpp"

namespace ampom::driver {

namespace {
constexpr net::NodeId kHome = 0;
constexpr net::NodeId kDest = 1;
constexpr net::NodeId kThird = 2;  // background-traffic source / re-migration target
}  // namespace

RunMetrics run_experiment(const Scenario& scenario) { return Runner{}.run(scenario); }

RunMetrics detail::run_scenario(const Scenario& scenario, RunContext& run_ctx) {
  if (!scenario.make_workload) {
    throw std::invalid_argument("run_experiment: scenario has no workload factory");
  }
  trace::TraceRecorder* recorder = &run_ctx.trace();
  sim::Logger& log = run_ctx.log();

  sim::Simulator sim;
  net::Fabric fabric{sim, 3, scenario.profile.link};
  fabric.set_trace(recorder);
  net::TrafficShaper shaper{fabric};
  if (scenario.shape_migrant_link) {
    shaper.shape_pair(kHome, kDest, scenario.shaped_link);
  }

  // Fault injection: composed into the fabric only when the plan asks for
  // anything — an absent injector keeps the run bit-identical to the seed.
  std::optional<net::FaultInjector> injector;
  if (scenario.faults.active()) {
    injector.emplace(sim, scenario.faults.seed);
    scenario.faults.apply_faults(*injector);
    for (const auto& crash : scenario.faults.crashes) {
      injector->schedule_node_crash(crash.node, crash.at, crash.restore_at);
    }
    if (scenario.faults.chaos.active()) {
      // Campaigns expand to the same primitives the plan carries explicitly.
      // This single-process world has no balancer to rehome a stranded
      // migrant, so campaigns here model outage pressure the reliable
      // protocols must ride out, not crash recovery.
      const cluster::ExpandedChaos expanded =
          cluster::expand_chaos(scenario.faults.chaos, /*node_count=*/3);
      for (const auto& outage : expanded.outages) {
        injector->schedule_link_outage(outage.a, outage.b, outage.down_at, outage.up_at);
      }
      for (const auto& crash : expanded.crashes) {
        injector->schedule_node_crash(crash.node, crash.at, crash.restore_at);
      }
    }
    fabric.set_fault_injector(&*injector);
  }

  const bool remigrates = scenario.remigrate_after > sim::Time::zero();
  if (remigrates && scenario.background_traffic > 0.0) {
    throw std::invalid_argument(
        "run_experiment: remigrate_after and background_traffic are mutually exclusive "
        "(the third node plays both roles)");
  }
  if (remigrates && scenario.scheme == Scheme::Checkpoint) {
    throw std::invalid_argument(
        "run_experiment: checkpoint placement uses the third node as its file server; "
        "re-migration is not supported with it");
  }

  cluster::Node home{sim, fabric, kHome, scenario.profile.costs};
  cluster::Node dest{sim, fabric, kDest, scenario.profile.costs};
  cluster::Node third{sim, fabric, kThird, scenario.profile.costs};
  dest.set_background_load(scenario.dest_background_load);

  // Resource discovery / monitoring daemons on both endpoints.
  cluster::InfoDaemon infod_home{sim, fabric, kHome, scenario.profile.infod_period};
  cluster::InfoDaemon infod_dest{sim, fabric, kDest, scenario.profile.infod_period};
  infod_home.add_peer(kDest);
  infod_dest.add_peer(kHome);
  infod_home.set_local_load_source([] { return 0.9; });  // busy home: why we migrate
  infod_dest.set_local_load_source([&dest] { return dest.background_load(); });
  home.set_infod(&infod_home);
  dest.set_infod(&infod_dest);
  infod_home.start();
  infod_dest.start();

  cluster::InfoDaemon infod_third{sim, fabric, kThird, scenario.profile.infod_period};
  if (remigrates) {
    infod_third.add_peer(kHome);
    infod_home.add_peer(kThird);
    infod_third.set_local_load_source([] { return 0.0; });
    third.set_infod(&infod_third);
    infod_third.start();
  }

  std::optional<net::BackgroundTraffic> background;
  if (scenario.background_traffic > 0.0) {
    background.emplace(sim, fabric, kThird, kDest, scenario.background_traffic);
    background->start();
  }

  // The process, born at the home node with its whole image dirty (the
  // paper migrates right after allocation completes).
  proc::Process process{/*pid=*/1, scenario.make_workload(), kHome};
  process.aspace().populate_all_dirty();
  mem::PageLedger ledger{process.aspace().page_count(), kHome};

  proc::Executor executor{sim, process, scenario.profile.costs};
  executor.set_cpu_share_source([&process, &home, &dest] {
    return process.current_node() == kDest ? dest.cpu_share() : home.cpu_share();
  });
  if (scenario.ram_limit_pages > 0) {
    executor.set_ram_limit_pages(scenario.ram_limit_pages);
  }

  proc::Deputy deputy{sim,   fabric, scenario.profile.wire,        scenario.profile.costs,
                      kHome, 1,      process.aspace().page_count(), &ledger};
  home.set_deputy(&deputy);
  deputy.set_trace(recorder);

  proc::PagingClient client{sim, fabric, scenario.profile.wire, kDest, kHome, 1};
  dest.set_paging_client(&client);
  proc::PagingClient client2{sim, fabric, scenario.profile.wire, kThird, kHome, 1};
  client.set_trace(recorder);
  client2.set_trace(recorder);

  const ReliabilityConfig& rel = scenario.reliability;
  if (rel.enabled) {
    deputy.set_reliability(true);
    if (rel.paging.enabled) {
      client.set_retry_config(rel.paging);
      client.set_rtt_provider([&infod_dest] { return infod_dest.rtt_one_way(kHome); });
      client2.set_retry_config(rel.paging);
      client2.set_rtt_provider([&infod_third] { return infod_third.rtt_one_way(kHome); });
    }
    infod_home.set_failure_detection(rel.detection);
    infod_dest.set_failure_detection(rel.detection);
    infod_third.set_failure_detection(rel.detection);
  }

  // Policies (constructed for every scheme; installed only when used).
  proc::DemandPagingPolicy demand_policy{sim, executor, client};
  core::AmpomPolicy ampom_policy{
      sim, executor, client, scenario.ampom,
      [&infod_dest, &dest, wire = scenario.profile.wire] {
        core::ResourceEstimates est;
        est.rtt_one_way = infod_dest.rtt_one_way(kHome);
        est.page_transfer =
            infod_dest.available_bandwidth().transfer_time(wire.page_message_bytes());
        est.expected_cpu_share = dest.cpu_share();
        return est;
      }};
  if (scenario.ampom_trace) {
    ampom_policy.set_trace(scenario.ampom_trace);
  }
  // Second-hop policies (only installed when re-migrating).
  proc::DemandPagingPolicy demand_policy2{sim, executor, client2};
  core::AmpomPolicy ampom_policy2{
      sim, executor, client2, scenario.ampom,
      [&infod_third, &third, wire = scenario.profile.wire] {
        core::ResourceEstimates est;
        est.rtt_one_way = infod_third.rtt_one_way(kHome);
        est.page_transfer =
            infod_third.available_bandwidth().transfer_time(wire.page_message_bytes());
        est.expected_cpu_share = third.cpu_share();
        return est;
      }};

  migration::FullCopyEngine full_copy;
  migration::ThreePageEngine three_page;
  migration::AmpomEngine ampom_engine;
  migration::PreCopyEngine precopy_engine;
  migration::CheckpointRestartEngine checkpoint_engine{
      migration::CheckpointRestartEngine::Config{kThird}};
  migration::MigrationEngine* engine = nullptr;
  switch (scenario.scheme) {
    case Scheme::OpenMosix:
      engine = &full_copy;
      break;
    case Scheme::NoPrefetch:
      engine = &three_page;
      break;
    case Scheme::Ampom:
      engine = &ampom_engine;
      break;
    case Scheme::PreCopy:
      engine = &precopy_engine;
      break;
    case Scheme::Checkpoint:
      engine = &checkpoint_engine;
      break;
  }

  migration::MigrationContext ctx{sim,
                                  fabric,
                                  scenario.profile.wire,
                                  process,
                                  executor,
                                  deputy,
                                  kHome,
                                  kDest,
                                  scenario.profile.costs,
                                  scenario.profile.costs,
                                  &ledger,
                                  /*on_before_resume=*/{},
                                  /*src_node=*/nullptr,
                                  /*dst_node=*/nullptr,
                                  /*reliability=*/{},
                                  /*trace=*/recorder};
  if (rel.enabled && rel.migration.enabled) {
    ctx.src_node = &home;
    ctx.dst_node = &dest;
    ctx.reliability = rel.migration;
  }
  ctx.on_before_resume = [&] {
    switch (scenario.scheme) {
      case Scheme::OpenMosix:
      case Scheme::PreCopy:
      case Scheme::Checkpoint:
        break;  // no remote pages, no fault policy needed
      case Scheme::NoPrefetch:
        executor.set_policy(&demand_policy);
        client.set_arrival_handler(
            [&demand_policy](mem::PageId p, bool urgent) { demand_policy.on_arrival(p, urgent); });
        break;
      case Scheme::Ampom:
        executor.set_policy(&ampom_policy);
        client.set_arrival_handler(
            [&ampom_policy](mem::PageId p, bool urgent) { ampom_policy.on_arrival(p, urgent); });
        break;
    }
    if (scenario.home_dependency) {
      dest.set_syscall_executor(&executor);
      executor.set_syscall_transport([&sim, &fabric, wire = scenario.profile.wire](
                                         std::uint64_t seq) {
        fabric.send(net::Message{kDest, kHome, wire.control_message, net::SyscallRequest{1, seq}});
        (void)sim;
      });
    }
  };

  if (scenario.on_setup) {
    scenario.on_setup(sim, fabric);
  }

  // Second hop: B (kDest) -> C (kThird), same mechanism family.
  migration::RemigrationEngine remigrate_ampom{
      migration::RemigrationEngine::Config{/*ship_mpt=*/true}};
  migration::RemigrationEngine remigrate_noprefetch{
      migration::RemigrationEngine::Config{/*ship_mpt=*/false}};
  migration::MigrationEngine* engine2 = nullptr;
  switch (scenario.scheme) {
    case Scheme::OpenMosix:
    case Scheme::Checkpoint:  // unreachable (validated above)
      engine2 = &full_copy;
      break;
    case Scheme::PreCopy:
      engine2 = &precopy_engine;
      break;
    case Scheme::NoPrefetch:
      engine2 = &remigrate_noprefetch;
      break;
    case Scheme::Ampom:
      engine2 = &remigrate_ampom;
      break;
  }
  migration::MigrationContext ctx2 = ctx;
  ctx2.src = kDest;
  ctx2.dst = kThird;
  if (rel.enabled && rel.migration.enabled) {
    ctx2.src_node = &dest;
    ctx2.dst_node = &third;
  }
  ctx2.on_before_resume = [&] {
    switch (scenario.scheme) {
      case Scheme::OpenMosix:
      case Scheme::PreCopy:
      case Scheme::Checkpoint:
        break;
      case Scheme::NoPrefetch:
        executor.set_policy(&demand_policy2);
        client2.set_arrival_handler([&demand_policy2](mem::PageId p, bool urgent) {
          demand_policy2.on_arrival(p, urgent);
        });
        third.set_paging_client(&client2);
        break;
      case Scheme::Ampom:
        executor.set_policy(&ampom_policy2);
        client2.set_arrival_handler([&ampom_policy2](mem::PageId p, bool urgent) {
          ampom_policy2.on_arrival(p, urgent);
        });
        third.set_paging_client(&client2);
        break;
    }
    if (scenario.home_dependency) {
      third.set_syscall_executor(&executor);
      executor.set_syscall_transport([&fabric, wire = scenario.profile.wire](
                                         std::uint64_t seq) {
        fabric.send(
            net::Message{kThird, kHome, wire.control_message, net::SyscallRequest{1, seq}});
      });
    }
  };

  std::optional<migration::MigrationResult> migration_result;
  std::optional<migration::MigrationResult> remigration_result;
  const sim::Time process_start = scenario.warmup;
  AMPOM_LOG(log, sim::LogLevel::Debug, sim.now(), "driver", "run start: %s %llu MiB, scheme %s",
            scenario.workload_label.c_str(),
            static_cast<unsigned long long>(scenario.memory_mib), scheme_name(scenario.scheme));
  sim.schedule_at(process_start, [&executor] { executor.start(); });
  sim.schedule_at(process_start + scenario.migrate_after, [&] {
    migration::migrate_process(ctx, *engine,
                               [&](migration::MigrationResult r) {
                                 migration_result = r;
                                 AMPOM_LOG(log, sim::LogLevel::Info, sim.now(), "migration",
                                           "hop 1 %s: freeze %s, %llu pages moved",
                                           r.completed() ? "completed" : "aborted",
                                           r.freeze_time().str().c_str(),
                                           static_cast<unsigned long long>(r.pages_transferred));
                                 if (remigrates && r.completed()) {
                                   sim.schedule_after(scenario.remigrate_after, [&] {
                                     if (process.state() == proc::ProcState::Finished) {
                                       return;  // too late to re-migrate
                                     }
                                     migration::migrate_process(
                                         ctx2, *engine2, [&](migration::MigrationResult r2) {
                                           remigration_result = r2;
                                           AMPOM_LOG(log, sim::LogLevel::Info, sim.now(),
                                                     "migration", "hop 2 %s: freeze %s",
                                                     r2.completed() ? "completed" : "aborted",
                                                     r2.freeze_time().str().c_str());
                                         });
                                   });
                                 }
                               });
  });

  executor.set_on_finished([&sim] { sim.halt(); });
  if (recorder != nullptr) {
    recorder->attach_scheduler_probe(sim);
  }
  sim.run();

  if (!executor.stats().finished) {
    throw std::runtime_error("run_experiment: simulation drained before the process finished");
  }
  AMPOM_LOG(log, sim::LogLevel::Info, executor.stats().finished_at, "driver",
            "run finished: %s/%s, %llu refs",
            scenario.workload_label.c_str(), scheme_name(scenario.scheme),
            static_cast<unsigned long long>(executor.stats().refs_consumed));

  // --- assemble metrics -------------------------------------------------------
  RunMetrics m;
  m.workload = scenario.workload_label;
  m.scheme = scheme_name(scenario.scheme);
  m.memory_mib = scenario.memory_mib;
  m.page_count = process.aspace().page_count();

  const proc::ExecStats& es = executor.stats();
  m.total_time = es.finished_at - process_start;
  if (migration_result) {
    m.freeze_time = migration_result->freeze_time();
    m.pages_migrated = migration_result->pages_transferred;
    m.pages_resent = migration_result->pages_resent();
    m.migration_span = migration_result->migration_span();
    m.bytes_freeze = migration_result->bytes_transferred;
    m.migration_completed = migration_result->completed();
    m.migration_chunk_retransmits = migration_result->chunk_retransmits;
    m.migration_pages_retransmitted = migration_result->pages_retransmitted;
  }
  if (remigration_result) {
    m.freeze_time_2 = remigration_result->freeze_time();
    m.bytes_freeze += remigration_result->bytes_transferred;
    m.pages_resent += remigration_result->pages_resent();
    m.migration_chunk_retransmits += remigration_result->chunk_retransmits;
    m.migration_pages_retransmitted += remigration_result->pages_retransmitted;
  }
  m.flush_retransmits = remigrate_ampom.flush_stats().retransmits +
                        remigrate_noprefetch.flush_stats().retransmits;
  m.flush_pages = deputy.stats().flush_pages_received;
  m.requests_stalled_on_flush = deputy.stats().requests_stalled_on_flush;
  m.exec_time = m.total_time - m.freeze_time - m.freeze_time_2;
  m.cpu_time = es.cpu_time;
  m.stall_time = es.stall_time;
  m.handler_time = es.handler_time;
  m.hard_faults = es.hard_faults;
  m.soft_faults = es.soft_faults;
  m.inflight_waits = es.inflight_waits;
  m.first_touches = es.first_touches;
  m.refs_consumed = es.refs_consumed;
  m.syscalls_local = es.syscalls_local;
  m.syscalls_redirected = es.syscalls_redirected;
  if (!es.fault_latency_us.empty()) {
    m.fault_latency_p50_us = es.fault_latency_us.percentile(0.5);
    m.fault_latency_p95_us = es.fault_latency_us.percentile(0.95);
    m.fault_latency_max_us = es.fault_latency_us.max();
  }

  const proc::PagingClientStats& cs = client.stats();
  m.remote_fault_requests = cs.fault_requests;
  m.prefetch_requests = cs.prefetch_requests;
  m.prefetch_pages_issued = cs.prefetch_pages_requested;
  m.pages_arrived = cs.pages_arrived;
  m.bytes_paging = cs.pages_arrived * scenario.profile.wire.page_message_bytes() +
                   cs.fault_requests * scenario.profile.wire.request_bytes(1);

  const proc::PagingClientStats& cs2 = client2.stats();
  m.paging_retransmits = cs.retransmits + cs2.retransmits;
  m.paging_timeouts = cs.timeouts + cs2.timeouts;
  m.paging_duplicates_dropped = cs.duplicates_dropped + cs2.duplicates_dropped;
  m.deputy_pages_replayed = deputy.stats().pages_replayed;
  if (injector) {
    m.net_messages_dropped = injector->stats().dropped;
    m.net_messages_duplicated = injector->stats().duplicated;
    m.net_crash_drops = injector->stats().crash_drops;
  }
  m.dead_nodes_detected = infod_home.dead_peers();

  if (scenario.scheme == Scheme::Ampom) {
    m.ampom_analysis_time = ampom_policy.stats().analysis_time;
    m.last_locality_score = ampom_policy.stats().last_score;
    m.ampom_faults_seen = ampom_policy.stats().faults_seen;
    m.ampom_zone_considered = ampom_policy.stats().zone_pages_considered;
  }

  // With a second hop, pages legitimately move more than once (B -> C, and
  // flushes B -> H); the per-transfer owner checks inside PageLedger still
  // guarded every move.
  m.ledger_ok = remigrates || ledger.at_most_one_transfer_each();

  if (recorder != nullptr && recorder->enabled()) {
    m.trace_summary = recorder->summary();
  }
  return m;
}

}  // namespace ampom::driver
