#pragma once
// Everything one experiment run reports — the superset of the quantities
// behind the paper's Figs. 5-11.

#include <cstdint>
#include <string>

#include "simcore/time.hpp"
#include "simcore/units.hpp"

namespace ampom::driver {

struct RunMetrics {
  std::string workload;
  std::string scheme;
  std::uint64_t memory_mib{0};
  std::uint64_t page_count{0};

  // --- timing ---------------------------------------------------------------
  sim::Time freeze_time{};  // Fig. 5
  sim::Time total_time{};   // process start -> finish, includes the freeze (Fig. 6)
  sim::Time exec_time{};    // total_time - freeze_time
  sim::Time cpu_time{};
  sim::Time stall_time{};
  sim::Time handler_time{};

  // --- re-migration (second hop), when Scenario::remigrate_after > 0 --------
  sim::Time freeze_time_2{};
  std::uint64_t flush_pages{0};            // pages flushed back to the home node
  std::uint64_t requests_stalled_on_flush{0};

  // --- fault traffic ----------------------------------------------------------
  std::uint64_t remote_fault_requests{0};  // Fig. 7: requests carrying an urgent page
  std::uint64_t prefetch_requests{0};      // urgent-free requests (batch count)
  std::uint64_t hard_faults{0};
  std::uint64_t soft_faults{0};    // prevented: served from the lookaside buffer
  std::uint64_t inflight_waits{0};
  std::uint64_t first_touches{0};
  std::uint64_t refs_consumed{0};
  std::uint64_t syscalls_local{0};
  std::uint64_t syscalls_redirected{0};
  // Blocking-fault latency distribution (microseconds).
  double fault_latency_p50_us{0.0};
  double fault_latency_p95_us{0.0};
  double fault_latency_max_us{0.0};

  // --- prefetching -------------------------------------------------------------
  std::uint64_t prefetch_pages_issued{0};
  std::uint64_t pages_arrived{0};
  std::uint64_t ampom_faults_seen{0};
  std::uint64_t ampom_zone_considered{0};  // sum of dependent-zone sizes
  sim::Time ampom_analysis_time{};  // Fig. 11 numerator
  double last_locality_score{0.0};

  // --- transfers ----------------------------------------------------------------
  std::uint64_t pages_migrated{0};   // living at the destination after resume
  std::uint64_t pages_resent{0};     // pre-copy re-dirties copied again
  sim::Time migration_span{};        // mechanism start -> resume (pre-copy >> freeze)
  sim::Bytes bytes_freeze{0};
  sim::Bytes bytes_paging{0};

  bool ledger_ok{true};  // conservation invariant held throughout

  // Fig. 7's prevented fraction: of all pages that had to come from the
  // home node, how many arrived without the process blocking on a fault
  // request for them. (NoPrefetch sends one request per remotely-fetched
  // page, so this is exactly 1 - requests/NoPrefetch-requests.)
  [[nodiscard]] double prevented_fault_fraction() const {
    if (pages_arrived == 0) {
      return 0.0;
    }
    return static_cast<double>(pages_arrived - remote_fault_requests) /
           static_cast<double>(pages_arrived);
  }

  // Fig. 8: prefetched pages per page fault — the dependent-zone size the
  // algorithm settles on, averaged over all Algorithm-1 invocations.
  [[nodiscard]] double prefetched_per_fault() const {
    if (ampom_faults_seen == 0) {
      return 0.0;
    }
    return static_cast<double>(ampom_zone_considered) /
           static_cast<double>(ampom_faults_seen);
  }

  // Fig. 11: analysis overhead as a fraction of execution time.
  [[nodiscard]] double analysis_overhead_fraction() const {
    if (exec_time <= sim::Time::zero()) {
      return 0.0;
    }
    return ampom_analysis_time / exec_time;
  }
};

}  // namespace ampom::driver
