#pragma once
// Everything one experiment run reports — the superset of the quantities
// behind the paper's Figs. 5-11.

#include <cstdint>
#include <string>

#include "simcore/time.hpp"
#include "simcore/units.hpp"
#include "stats/counters.hpp"

namespace ampom::driver {

struct RunMetrics {
  std::string workload;
  std::string scheme;
  std::uint64_t memory_mib{0};
  std::uint64_t page_count{0};

  // --- timing ---------------------------------------------------------------
  sim::Time freeze_time{};  // Fig. 5
  sim::Time total_time{};   // process start -> finish, includes the freeze (Fig. 6)
  sim::Time exec_time{};    // total_time - freeze_time
  sim::Time cpu_time{};
  sim::Time stall_time{};
  sim::Time handler_time{};

  // --- re-migration (second hop), when Scenario::remigrate_after > 0 --------
  sim::Time freeze_time_2{};
  std::uint64_t flush_pages{0};            // pages flushed back to the home node
  std::uint64_t requests_stalled_on_flush{0};

  // --- fault traffic ----------------------------------------------------------
  std::uint64_t remote_fault_requests{0};  // Fig. 7: requests carrying an urgent page
  std::uint64_t prefetch_requests{0};      // urgent-free requests (batch count)
  std::uint64_t hard_faults{0};
  std::uint64_t soft_faults{0};    // prevented: served from the lookaside buffer
  std::uint64_t inflight_waits{0};
  std::uint64_t first_touches{0};
  std::uint64_t refs_consumed{0};
  std::uint64_t syscalls_local{0};
  std::uint64_t syscalls_redirected{0};
  // Blocking-fault latency distribution (microseconds).
  double fault_latency_p50_us{0.0};
  double fault_latency_p95_us{0.0};
  double fault_latency_max_us{0.0};

  // --- prefetching -------------------------------------------------------------
  std::uint64_t prefetch_pages_issued{0};
  std::uint64_t pages_arrived{0};
  std::uint64_t ampom_faults_seen{0};
  std::uint64_t ampom_zone_considered{0};  // sum of dependent-zone sizes
  sim::Time ampom_analysis_time{};  // Fig. 11 numerator
  double last_locality_score{0.0};

  // --- transfers ----------------------------------------------------------------
  std::uint64_t pages_migrated{0};   // living at the destination after resume
  std::uint64_t pages_resent{0};     // pre-copy re-dirties copied again
  sim::Time migration_span{};        // mechanism start -> resume (pre-copy >> freeze)
  sim::Bytes bytes_freeze{0};
  sim::Bytes bytes_paging{0};

  bool ledger_ok{true};  // conservation invariant held throughout

  // --- tracing (empty unless Scenario::trace.enabled) --------------------------
  // Per-category event counts ("trace.<category>.<name>" -> occurrences),
  // taken from the run's TraceRecorder summary.
  stats::Counters trace_summary{};

  // --- reliability & fault injection (all zero when both are off) -------------
  bool migration_completed{true};                   // first hop reached its destination
  std::uint64_t paging_retransmits{0};              // page requests re-sent on timeout
  std::uint64_t paging_timeouts{0};                 // request timer expiries
  std::uint64_t paging_duplicates_dropped{0};       // PageData already satisfied
  std::uint64_t deputy_pages_replayed{0};           // idempotent request replays
  std::uint64_t migration_chunk_retransmits{0};     // freeze chunks re-sent
  std::uint64_t migration_pages_retransmitted{0};   // pages inside those chunks
  std::uint64_t flush_retransmits{0};               // re-migration flush re-sends
  std::uint64_t net_messages_dropped{0};            // injector: lost to loss prob.
  std::uint64_t net_messages_duplicated{0};
  std::uint64_t net_crash_drops{0};                 // suppressed by a crashed node
  std::uint64_t dead_nodes_detected{0};             // peers the observer called dead

  // --- recovery (zero unless ClusterSim::enable_recovery_tracking) -------------
  // Percentile pairs, milliseconds, in the fault_latency_*_us idiom so
  // RunMetrics keeps its field-for-field equality.
  std::uint64_t crashes_injected{0};   // crash events the harness applied
  std::uint64_t migrants_rehomed{0};   // stranded migrants re-established at home
  std::uint64_t heals_observed{0};     // campaign heal marks that reached quiescence
  double detect_p50_ms{0.0};  // crash -> surviving-majority heartbeat consensus
  double detect_p95_ms{0.0};
  double rehome_p50_ms{0.0};  // crash -> stranded migrant re-homed
  double rehome_p95_ms{0.0};
  double heal_p50_ms{0.0};    // heal mark -> every survivor sees every survivor alive
  double heal_p95_ms{0.0};

  // Fig. 7's prevented fraction: of all pages that had to come from the
  // home node, how many arrived without the process blocking on a fault
  // request for them. (NoPrefetch sends one request per remotely-fetched
  // page, so this is exactly 1 - requests/NoPrefetch-requests.)
  [[nodiscard]] double prevented_fault_fraction() const {
    if (pages_arrived == 0) {
      return 0.0;
    }
    return static_cast<double>(pages_arrived - remote_fault_requests) /
           static_cast<double>(pages_arrived);
  }

  // Fig. 8: prefetched pages per page fault — the dependent-zone size the
  // algorithm settles on, averaged over all Algorithm-1 invocations.
  [[nodiscard]] double prefetched_per_fault() const {
    if (ampom_faults_seen == 0) {
      return 0.0;
    }
    return static_cast<double>(ampom_zone_considered) /
           static_cast<double>(ampom_faults_seen);
  }

  // Fig. 11: analysis overhead as a fraction of execution time.
  [[nodiscard]] double analysis_overhead_fraction() const {
    if (exec_time <= sim::Time::zero()) {
      return 0.0;
    }
    return ampom_analysis_time / exec_time;
  }

  // Field-for-field equality — the "parallel sweep is bit-identical to the
  // serial one" guarantee is stated (and tested) in terms of this.
  [[nodiscard]] bool operator==(const RunMetrics&) const = default;

  // The reliability/fault counters as a named counter set, so benches and
  // sweep summaries can roll them up with stats::Counters::merge.
  [[nodiscard]] stats::Counters reliability_counters() const {
    stats::Counters c;
    c.add("paging.retransmits", paging_retransmits);
    c.add("paging.timeouts", paging_timeouts);
    c.add("paging.duplicates_dropped", paging_duplicates_dropped);
    c.add("deputy.pages_replayed", deputy_pages_replayed);
    c.add("migration.chunk_retransmits", migration_chunk_retransmits);
    c.add("migration.pages_retransmitted", migration_pages_retransmitted);
    c.add("migration.flush_retransmits", flush_retransmits);
    c.add("net.dropped", net_messages_dropped);
    c.add("net.duplicated", net_messages_duplicated);
    c.add("net.crash_drops", net_crash_drops);
    c.add("cluster.dead_nodes_detected", dead_nodes_detected);
    c.add("recovery.crashes_injected", crashes_injected);
    c.add("recovery.migrants_rehomed", migrants_rehomed);
    c.add("recovery.heals_observed", heals_observed);
    return c;
  }
};

}  // namespace ampom::driver
