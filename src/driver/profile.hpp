#pragma once
// Calibrated cluster profiles.
//
// gideon300_profile() models the paper's testbed (HKU Gideon 300: Pentium 4
// 2 GHz, 512 MB RAM, Fast Ethernet, Linux 2.4 + openMosix 2.4.26-1). The
// constants land the two anchoring measurements of the paper:
//   - openMosix full-copy of a 575 MB process ~ 53.9 s (Fig. 5a),
//   - AMPoM freeze of the same process        ~ 0.6 s,
//   - NoPrefetch freeze                       ~ 0.07 s.

#include "net/fabric.hpp"
#include "proc/costs.hpp"
#include "simcore/time.hpp"

namespace ampom::driver {

struct ClusterProfile {
  net::LinkParams link;
  proc::NodeCosts costs;
  proc::WireCosts wire;
  sim::Time infod_period{sim::Time::from_ms(250)};
};

[[nodiscard]] inline ClusterProfile gideon300_profile() {
  ClusterProfile p;
  p.link.bandwidth = sim::Bandwidth::mbits_per_sec(100);
  p.link.latency = sim::Time::from_us(75);
  // NodeCosts/WireCosts defaults are the calibrated values (proc/costs.hpp).
  return p;
}

// The paper's §5.5 broadband emulation (tc: 6 Mb/s, 2 ms latency).
[[nodiscard]] inline net::LinkParams broadband_link() {
  return net::LinkParams{sim::Bandwidth::mbits_per_sec(6), sim::Time::from_ms(2)};
}

}  // namespace ampom::driver
