#include "driver/builder.hpp"

#include <stdexcept>

namespace ampom::driver {

std::string ScenarioBuilder::validate() const {
  const Scenario& s = scenario_;
  const bool cluster_mode = s.topology.set();
  if (!s.make_workload && !cluster_mode) {
    return "ScenarioBuilder: no workload set — call workload() or hpcc_workload()";
  }
  if (cluster_mode && (s.topology.zones < 1 || s.topology.nodes_per_zone < 1)) {
    return "ScenarioBuilder: topology() needs zones >= 1 and nodes_per_zone >= 1";
  }
  if (s.gossip.enabled) {
    if (s.gossip.fan_out < 1) {
      return "ScenarioBuilder: gossip() needs fan_out >= 1 — a zero fan-out daemon would "
             "never disseminate load and every peer would look dead";
    }
    if (!cluster_mode) {
      return "ScenarioBuilder: gossip() requires topology() — gossip is a cluster-world "
             "dissemination mode";
    }
    if (s.topology.node_count() < 2) {
      return "ScenarioBuilder: gossip() on a single-node cluster is meaningless — there is "
             "no peer to gossip with; grow the topology or drop gossip()";
    }
  }
  for (const auto& outage : s.faults.chaos.zone_outages) {
    if (outage.zone >= 0 &&
        (!cluster_mode || static_cast<std::uint32_t>(outage.zone) >= s.topology.zones)) {
      return "ScenarioBuilder: zone_outage(zone) names a topology zone the scenario does "
             "not have";
    }
  }
  if (s.faults.active() && !s.reliability.enabled) {
    return "ScenarioBuilder: fault plan is active but reliability is off — lost messages "
           "would never be retransmitted and the run would hang; set "
           "reliability(ReliabilityConfig::all_on()) or clear the fault plan";
  }
  const bool remigrates = s.remigrate_after > sim::Time::zero();
  if (remigrates && s.background_traffic > 0.0) {
    return "ScenarioBuilder: remigrate_after and background_traffic are mutually exclusive "
           "(the third node plays both roles)";
  }
  if (remigrates && s.scheme == Scheme::Checkpoint) {
    return "ScenarioBuilder: checkpoint placement uses the third node as its file server; "
           "re-migration is not supported with it";
  }
  if (s.background_traffic < 0.0 || s.background_traffic > 1.0) {
    return "ScenarioBuilder: background_traffic must be a fraction in [0, 1]";
  }
  if (s.dest_background_load < 0.0 || s.dest_background_load >= 1.0) {
    return "ScenarioBuilder: dest_background_load must be a fraction in [0, 1)";
  }
  if (s.exec.parallel_run()) {
    if (!cluster_mode) {
      return "ScenarioBuilder: workers() requires topology() — intra-run parallelism "
             "partitions the cluster world by zone; single-process experiments are serial";
    }
    if (s.topology.zones < 2) {
      return "ScenarioBuilder: workers() needs a topology with at least two zones — the "
             "zone is the partition, and one partition has nothing to run in parallel";
    }
  }
  if (s.hierarchy.enabled) {
    if (!cluster_mode) {
      return "ScenarioBuilder: cache_model() requires topology() — the memory hierarchy "
             "is per-node state of a cluster world";
    }
    if (s.hierarchy.numa_domains < 1) {
      return "ScenarioBuilder: cache_model() needs numa_domains >= 1";
    }
    if (s.hierarchy.llc_bytes == 0) {
      return "ScenarioBuilder: cache_model() needs a positive LLC capacity";
    }
  }
  if (s.placement != Placement::kLoad && !cluster_mode) {
    return "ScenarioBuilder: placement() is a cluster-world balancer knob — it requires "
           "topology()";
  }
  if (s.placement == Placement::kCacheAware && !s.hierarchy.enabled) {
    return "ScenarioBuilder: placement(kCacheAware) scores destinations against the "
           "memory-hierarchy model — enable cache_model() too";
  }
  if (!s.cpmd_calibration.empty() && !s.hierarchy.enabled) {
    return "ScenarioBuilder: cpmd_calibration() is only read when cache_model() is "
           "enabled — enable it or drop the calibration path";
  }
  if (s.trace.enabled && s.trace.max_events == 0) {
    return "ScenarioBuilder: tracing is enabled with max_events == 0 — every event would "
           "be dropped; raise the cap or disable tracing";
  }
  if (s.faults.chaos.active()) {
    std::string chaos_problem = cluster::validate_chaos(s.faults.chaos);
    if (!chaos_problem.empty()) {
      return "ScenarioBuilder: " + chaos_problem;
    }
  }
  return {};
}

Scenario ScenarioBuilder::build() const {
  std::string problem = validate();
  if (!problem.empty()) {
    throw std::invalid_argument(problem);
  }
  return scenario_;
}

}  // namespace ampom::driver
