#include "driver/builder.hpp"

#include <stdexcept>

namespace ampom::driver {

std::string ScenarioBuilder::validate() const {
  const Scenario& s = scenario_;
  if (!s.make_workload) {
    return "ScenarioBuilder: no workload set — call workload() or hpcc_workload()";
  }
  if (s.faults.active() && !s.reliability.enabled) {
    return "ScenarioBuilder: fault plan is active but reliability is off — lost messages "
           "would never be retransmitted and the run would hang; set "
           "reliability(ReliabilityConfig::all_on()) or clear the fault plan";
  }
  const bool remigrates = s.remigrate_after > sim::Time::zero();
  if (remigrates && s.background_traffic > 0.0) {
    return "ScenarioBuilder: remigrate_after and background_traffic are mutually exclusive "
           "(the third node plays both roles)";
  }
  if (remigrates && s.scheme == Scheme::Checkpoint) {
    return "ScenarioBuilder: checkpoint placement uses the third node as its file server; "
           "re-migration is not supported with it";
  }
  if (s.background_traffic < 0.0 || s.background_traffic > 1.0) {
    return "ScenarioBuilder: background_traffic must be a fraction in [0, 1]";
  }
  if (s.dest_background_load < 0.0 || s.dest_background_load >= 1.0) {
    return "ScenarioBuilder: dest_background_load must be a fraction in [0, 1)";
  }
  if (s.trace.enabled && s.trace.max_events == 0) {
    return "ScenarioBuilder: tracing is enabled with max_events == 0 — every event would "
           "be dropped; raise the cap or disable tracing";
  }
  if (s.faults.chaos.active()) {
    std::string chaos_problem = cluster::validate_chaos(s.faults.chaos);
    if (!chaos_problem.empty()) {
      return "ScenarioBuilder: " + chaos_problem;
    }
  }
  return {};
}

Scenario ScenarioBuilder::build() const {
  std::string problem = validate();
  if (!problem.empty()) {
    throw std::invalid_argument(problem);
  }
  return scenario_;
}

}  // namespace ampom::driver
