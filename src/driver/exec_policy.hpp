#pragma once
// ExecPolicy: the one knob block for how much hardware a run may use.
//
// Two independent axes, historically spread over ad-hoc per-binary flags:
//   jobs    — inter-run parallelism: how many scenarios a sweep pool runs
//             concurrently (SweepExecutor, bench harness --jobs=N).
//   workers — intra-run parallelism: how many OS threads one partitioned
//             simulation uses (Simulator::configure_partitions, --workers=N).
//             0 selects the exact legacy single-queue engine; >= 1 selects
//             the partitioned conservative engine, whose schedule is a pure
//             function of the scenario — workers=1 and workers=N runs are
//             bit-identical (DESIGN.md §15).
//
// The two compose: a sweep can run 4 scenarios at once, each on 4 workers.
// Both engines are deterministic, so neither axis changes any result.

#include <cstddef>
#include <cstdlib>
#include <string>

namespace ampom::driver {

struct ExecPolicy {
  std::size_t jobs{1};     // sweep pool width; 0 = one per hardware thread
  std::size_t workers{0};  // simulator threads; 0 = legacy serial engine

  // Whether a run under this policy uses the partitioned engine at all.
  [[nodiscard]] bool parallel_run() const { return workers >= 1; }

  // Parses "--jobs=N" / "--workers=N" into the policy. Returns false when
  // `arg` is neither flag (the caller keeps handling its own options).
  bool parse_flag(const std::string& arg) {
    if (arg.rfind("--jobs=", 0) == 0) {
      jobs = static_cast<std::size_t>(std::strtoull(arg.c_str() + 7, nullptr, 10));
      return true;
    }
    if (arg.rfind("--workers=", 0) == 0) {
      workers = static_cast<std::size_t>(std::strtoull(arg.c_str() + 10, nullptr, 10));
      return true;
    }
    return false;
  }
};

}  // namespace ampom::driver
