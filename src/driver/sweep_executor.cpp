#include "driver/sweep_executor.hpp"

#include <atomic>
#include <thread>

#include "driver/experiment.hpp"

namespace ampom::driver {

void SweepExecutor::parallel_for(std::size_t jobs, std::size_t n,
                                 const std::function<void(std::size_t)>& fn) {
  if (jobs == 0) {
    jobs = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  jobs = std::min(jobs, n);
  if (jobs <= 1) {
    for (std::size_t i = 0; i < n; ++i) {
      fn(i);
    }
    return;
  }
  // Dynamic claiming: workers pull the next unclaimed index, so one slow
  // case (a 575 MB DGEMM cell) cannot idle the rest of the pool behind a
  // static partition.
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> workers;
  workers.reserve(jobs);
  for (std::size_t w = 0; w < jobs; ++w) {
    workers.emplace_back([&next, n, &fn] {
      for (std::size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
        fn(i);
      }
    });
  }
  for (std::thread& worker : workers) {
    worker.join();
  }
}

std::vector<SweepExecutor::Outcome> SweepExecutor::run_all(
    const std::vector<ScenarioFactory>& cases) {
  std::vector<Outcome> outcomes(cases.size());
  RunContext::Options ctx_options;
  ctx_options.log_level = options_.log_level;
  ctx_options.capture_log = options_.capture_logs;
  parallel_for(options_.exec.jobs, cases.size(), [&](std::size_t i) {
    Outcome& out = outcomes[i];
    try {
      Scenario scenario = cases[i]();
      if (options_.exec.workers != 0 && scenario.exec.workers == 0) {
        scenario.exec.workers = options_.exec.workers;
      }
      out.context = std::make_unique<RunContext>(scenario, ctx_options);
      out.metrics = detail::run_scenario(scenario, *out.context);
      out.context->notify_sinks(out.metrics);
    } catch (...) {
      out.error = std::current_exception();
    }
  });
  return outcomes;
}

std::vector<RunMetrics> SweepExecutor::run_scenarios(const std::vector<Scenario>& cases) {
  std::vector<ScenarioFactory> factories;
  factories.reserve(cases.size());
  for (const Scenario& scenario : cases) {
    factories.push_back([&scenario] { return scenario; });
  }
  std::vector<Outcome> outcomes = run_all(factories);
  std::vector<RunMetrics> metrics;
  metrics.reserve(outcomes.size());
  for (Outcome& out : outcomes) {
    if (!out.ok()) {
      std::rethrow_exception(out.error);
    }
    metrics.push_back(std::move(out.metrics));
  }
  return metrics;
}

}  // namespace ampom::driver
