#pragma once
// Runner: the per-run observability facade.
//
// run_experiment's historical contract is "scenario in, metrics out" with
// every knob global (the process-wide Logger) or lost (the trace recorder
// died with the harness stack frame). A Runner owns that per-run state
// instead: it applies a scoped log level for the duration of the run,
// constructs the TraceRecorder from Scenario::trace and keeps it alive so
// the caller can export the timeline afterwards, and fans the finished
// RunMetrics out to any registered sinks (CSV emitters, aggregators).
//
// run_experiment(s) remains a thin wrapper over Runner{}.run(s).

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "driver/metrics.hpp"
#include "driver/scenario.hpp"
#include "simcore/log.hpp"
#include "trace/trace.hpp"

namespace ampom::driver {

class Runner {
 public:
  struct Options {
    // Applied to the global Logger for the duration of each run() and
    // restored afterwards; nullopt leaves the level alone.
    std::optional<sim::LogLevel> log_level;
  };

  Runner() = default;
  explicit Runner(Options options) : options_{options} {}

  // Observers of every finished run, invoked in registration order.
  void add_metric_sink(std::function<void(const RunMetrics&)> sink) {
    sinks_.push_back(std::move(sink));
  }

  // Runs one scenario to completion. The recorder from the previous run is
  // replaced, so trace() / write_trace_json() always describe the last run.
  RunMetrics run(const Scenario& scenario);

  // Last run's recorder (null before the first run). Disabled tracing still
  // yields a recorder — an empty one.
  [[nodiscard]] const trace::TraceRecorder* trace() const { return recorder_.get(); }

  // Exports the last run's events as Chrome trace_event JSON
  // (chrome://tracing, Perfetto). Returns false when there is nothing to
  // write (no run yet or tracing was off) or the file cannot be opened.
  [[nodiscard]] bool write_trace_json(const std::string& path) const;

 private:
  Options options_;
  std::unique_ptr<trace::TraceRecorder> recorder_;
  std::vector<std::function<void(const RunMetrics&)>> sinks_;
};

}  // namespace ampom::driver
