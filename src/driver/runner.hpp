#pragma once
// Runner: the one-at-a-time experiment facade.
//
// run_experiment's historical contract is "scenario in, metrics out". A
// Runner adds the observability around that: each run() constructs a fresh
// RunContext (per-run logger at the configured level, trace recorder built
// from Scenario::trace, the registered metric sinks) and keeps the finished
// context alive so the caller can export the timeline or read the captured
// log afterwards. Nothing is process-wide — two Runners on two threads
// never interact (see driver/sweep_executor.hpp for the pooled version).
//
// run_experiment(s) remains a thin wrapper over Runner{}.run(s).

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "driver/metrics.hpp"
#include "driver/run_context.hpp"
#include "driver/scenario.hpp"
#include "simcore/log.hpp"

namespace ampom::driver {

class Runner {
 public:
  struct Options {
    // Log level of each run's Logger; nullopt keeps the default (Warn).
    std::optional<sim::LogLevel> log_level;
    // Capture each run's log into its RunContext (read it back with
    // context()->captured_log()) instead of writing to stderr.
    bool capture_log{false};
  };

  Runner() = default;
  explicit Runner(Options options) : options_{options} {}

  // Observers of every finished run, invoked in registration order.
  void add_metric_sink(std::function<void(const RunMetrics&)> sink) {
    sinks_.push_back(std::move(sink));
  }

  // Runs one scenario to completion. The context from the previous run is
  // replaced, so context() / trace() / write_trace_json() always describe
  // the last run.
  RunMetrics run(const Scenario& scenario);

  // Last run's context (null before the first run).
  [[nodiscard]] const RunContext* context() const { return context_.get(); }

  // Last run's recorder (null before the first run). Disabled tracing still
  // yields a recorder — an empty one.
  [[nodiscard]] const trace::TraceRecorder* trace() const {
    return context_ ? &context_->trace() : nullptr;
  }

  // Exports the last run's events as Chrome trace_event JSON
  // (chrome://tracing, Perfetto). Returns false when there is nothing to
  // write (no run yet or tracing was off) or the file cannot be opened.
  [[nodiscard]] bool write_trace_json(const std::string& path) const;

 private:
  Options options_;
  std::unique_ptr<RunContext> context_;
  std::vector<std::function<void(const RunMetrics&)>> sinks_;
};

}  // namespace ampom::driver
