#pragma once
// Builds the two-node (plus background) cluster, runs one scenario to
// completion, and returns the full metric set.

#include "driver/metrics.hpp"
#include "driver/scenario.hpp"

namespace ampom::trace {
class TraceRecorder;
}

namespace ampom::driver {

// Convenience wrapper: equivalent to Runner{}.run(scenario) (see runner.hpp),
// which is the full-featured entry point (trace export, metric sinks,
// scoped log level).
[[nodiscard]] RunMetrics run_experiment(const Scenario& scenario);

namespace detail {
// The harness itself: builds the cluster, wires the (possibly disabled)
// trace recorder into every instrumented layer, runs to completion.
// `recorder` may be null; Runner always passes one.
[[nodiscard]] RunMetrics run_scenario(const Scenario& scenario,
                                      trace::TraceRecorder* recorder);
}  // namespace detail

}  // namespace ampom::driver
