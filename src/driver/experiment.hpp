#pragma once
// Builds the two-node (plus background) cluster, runs one scenario to
// completion, and returns the full metric set.

#include "driver/metrics.hpp"
#include "driver/scenario.hpp"

namespace ampom::driver {

[[nodiscard]] RunMetrics run_experiment(const Scenario& scenario);

}  // namespace ampom::driver
