#pragma once
// Builds the two-node (plus background) cluster, runs one scenario to
// completion, and returns the full metric set.

#include "driver/metrics.hpp"
#include "driver/scenario.hpp"

namespace ampom::driver {

class RunContext;

// Convenience wrapper: equivalent to Runner{}.run(scenario) (see runner.hpp),
// which is the full-featured entry point (trace export, metric sinks,
// per-run log level). For parameter sweeps use driver::SweepExecutor.
[[nodiscard]] RunMetrics run_experiment(const Scenario& scenario);

namespace detail {
// The harness itself: builds the cluster, wires the run's trace recorder
// into every instrumented layer, logs through the run's Logger, runs to
// completion. Touches nothing outside `scenario` and `ctx`, so concurrent
// calls with distinct contexts are safe.
[[nodiscard]] RunMetrics run_scenario(const Scenario& scenario, RunContext& ctx);
}  // namespace detail

}  // namespace ampom::driver
