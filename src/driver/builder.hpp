#pragma once
// ScenarioBuilder: a fluent, validating front door for Scenario.
//
// Scenario stays a plain aggregate — every existing brace-initialized call
// site keeps working — but hand-assembling one silently accepts
// combinations the harness then rejects deep inside run_experiment (or
// worse, runs into a hung simulation: a fault plan with the reliability
// protocols off loses messages nobody retransmits). The builder centralizes
// those rules at build() time with errors that name the offending knobs.
//
//   auto s = ScenarioBuilder{}
//                .scheme(Scheme::Ampom)
//                .hpcc_workload(workload::HpccKernel::Stream, 129)
//                .reliability(ReliabilityConfig::all_on())
//                .tracing()
//                .build();  // throws std::invalid_argument on bad combos

#include <cstdint>
#include <string>

#include "driver/scenario.hpp"
#include "workload/hpcc.hpp"

namespace ampom::driver {

class ScenarioBuilder {
 public:
  ScenarioBuilder& scheme(Scheme value) {
    scenario_.scheme = value;
    return *this;
  }

  // Arbitrary workload: label + factory (+ nominal size, reporting only).
  ScenarioBuilder& workload(std::string label,
                            std::function<std::unique_ptr<proc::ReferenceStream>()> factory,
                            std::uint64_t memory_mib = 0) {
    scenario_.workload_label = std::move(label);
    scenario_.make_workload = std::move(factory);
    scenario_.memory_mib = memory_mib;
    return *this;
  }

  // The paper's HPCC kernels (Table 1): label, factory and size in one call.
  ScenarioBuilder& hpcc_workload(workload::HpccKernel kernel, std::uint64_t memory_mib) {
    scenario_.workload_label = workload::hpcc_kernel_name(kernel);
    scenario_.make_workload = [kernel, memory_mib] {
      return workload::make_hpcc_kernel(kernel, memory_mib);
    };
    scenario_.memory_mib = memory_mib;
    return *this;
  }

  ScenarioBuilder& profile(ClusterProfile value) {
    scenario_.profile = value;
    return *this;
  }

  // --- cluster-world shape (ClusterSim scenarios) ---------------------------
  // Zone layout: `zones` contiguous blocks of `nodes_per_zone` node ids.
  // Setting a topology marks the scenario as a cluster world, where a
  // workload factory is optional (jobs are spawned per ProcessHost).
  ScenarioBuilder& topology(std::uint32_t zones, std::uint32_t nodes_per_zone) {
    scenario_.topology = cluster::Topology{zones, nodes_per_zone};
    return *this;
  }

  // Epidemic load dissemination: each InfoDaemon tick gossips with
  // `fan_out` deterministic pseudo-random zone peers instead of pinging
  // all of them. A nonzero `period` overrides the profile's infod period.
  ScenarioBuilder& gossip(std::uint32_t fan_out, sim::Time period = {}) {
    scenario_.gossip.enabled = true;
    scenario_.gossip.fan_out = fan_out;
    scenario_.gossip.period = period;
    return *this;
  }

  ScenarioBuilder& ampom_config(core::AmpomConfig value) {
    scenario_.ampom = value;
    return *this;
  }

  // --- memory hierarchy / placement policy ----------------------------------
  // Attach the per-node memory-hierarchy model (mem/hierarchy.hpp); enables
  // cache-pressure tracking and CPMD warm-up charges on every migration.
  // The overload with a config tweaks LLC capacity / NUMA domain count.
  ScenarioBuilder& cache_model() {
    scenario_.hierarchy.enabled = true;
    return *this;
  }
  ScenarioBuilder& cache_model(mem::HierarchyConfig value) {
    scenario_.hierarchy = value;
    scenario_.hierarchy.enabled = true;
    return *this;
  }

  // Balancer destination-scoring policy; kCacheAware requires cache_model().
  ScenarioBuilder& placement(Placement value) {
    scenario_.placement = value;
    return *this;
  }

  // CPMD calibration file (data/cpmd_calibration.txt format); empty keeps
  // the built-in curve. Only read when the cache model is enabled.
  ScenarioBuilder& cpmd_calibration(std::string path) {
    scenario_.cpmd_calibration = std::move(path);
    return *this;
  }

  // Shapes the home/destination link (e.g. broadband_link() for Fig. 9).
  ScenarioBuilder& shaped_link(net::LinkParams value) {
    scenario_.shape_migrant_link = true;
    scenario_.shaped_link = value;
    return *this;
  }

  ScenarioBuilder& dest_background_load(double fraction) {
    scenario_.dest_background_load = fraction;
    return *this;
  }

  ScenarioBuilder& background_traffic(double fraction) {
    scenario_.background_traffic = fraction;
    return *this;
  }

  ScenarioBuilder& ram_limit_pages(std::uint64_t pages) {
    scenario_.ram_limit_pages = pages;
    return *this;
  }

  ScenarioBuilder& home_dependency(bool enabled) {
    scenario_.home_dependency = enabled;
    return *this;
  }

  ScenarioBuilder& warmup(sim::Time value) {
    scenario_.warmup = value;
    return *this;
  }

  ScenarioBuilder& migrate_after(sim::Time value) {
    scenario_.migrate_after = value;
    return *this;
  }

  ScenarioBuilder& remigrate_after(sim::Time value) {
    scenario_.remigrate_after = value;
    return *this;
  }

  ScenarioBuilder& seed(std::uint64_t value) {
    scenario_.seed = value;
    return *this;
  }

  ScenarioBuilder& faults(FaultPlan plan) {
    scenario_.faults = std::move(plan);
    return *this;
  }

  // --- chaos campaigns (appended to the fault plan's ChaosPlan) -------------
  // Correlated fault shapes on top of the per-message faults; expanded
  // deterministically by the harness (see cluster/chaos.hpp). Like the rest
  // of the fault plan, campaigns require reliability to be enabled.
  ScenarioBuilder& chaos_seed(std::uint64_t value) {
    scenario_.faults.chaos.seed = value;
    return *this;
  }

  // Every node in `nodes` crashes at `at`; restore_at zero = stays down.
  ScenarioBuilder& zone_outage(std::vector<net::NodeId> nodes, sim::Time at,
                               sim::Time restore_at = {}) {
    scenario_.faults.chaos.zone_outages.push_back({std::move(nodes), at, restore_at});
    return *this;
  }

  // Topology-indexed form: crash every node of zone `zone` (resolved at
  // expansion time against the scenario's topology).
  ScenarioBuilder& zone_outage(std::uint32_t zone, sim::Time at, sim::Time restore_at = {}) {
    scenario_.faults.chaos.zone_outages.push_back(
        {{}, at, restore_at, static_cast<std::int32_t>(zone)});
    return *this;
  }

  // group_a cannot reach the rest of the cluster in [at, heal_at).
  ScenarioBuilder& partition(std::vector<net::NodeId> group_a, sim::Time at,
                             sim::Time heal_at) {
    scenario_.faults.chaos.partitions.push_back({std::move(group_a), at, heal_at});
    return *this;
  }

  // `crashes` seeded victims, one every `spacing` from `start`, each down
  // for `downtime` (zero = stays down); node 0 is spared by default.
  ScenarioBuilder& crash_wave(std::uint32_t crashes, sim::Time start, sim::Time spacing,
                              sim::Time downtime = {}, bool spare_node0 = true) {
    scenario_.faults.chaos.crash_waves.push_back(
        {crashes, start, spacing, downtime, spare_node0});
    return *this;
  }

  // Link a<->b cycles down/up with `period` and down fraction `duty` over
  // [start, stop).
  ScenarioBuilder& flapping_link(net::NodeId a, net::NodeId b, sim::Time start,
                                 sim::Time stop, sim::Time period, double duty = 0.5) {
    scenario_.faults.chaos.link_flaps.push_back({a, b, start, stop, period, duty});
    return *this;
  }

  ScenarioBuilder& reliability(ReliabilityConfig value) {
    scenario_.reliability = value;
    return *this;
  }

  // --- execution policy ------------------------------------------------------
  // Sweep-pool width for batch drivers that consume this scenario's policy.
  ScenarioBuilder& jobs(std::size_t value) {
    scenario_.exec.jobs = value;
    return *this;
  }

  // Intra-run parallelism: run the cluster simulation on `value` worker
  // threads over zone-partitioned event queues. Requires a topology with at
  // least two zones (the zone is the partition). Any value >= 1 selects the
  // partitioned engine; the result is bit-identical for every worker count.
  ScenarioBuilder& workers(std::size_t value) {
    scenario_.exec.workers = value;
    return *this;
  }

  ScenarioBuilder& exec_policy(ExecPolicy value) {
    scenario_.exec = value;
    return *this;
  }

  // Full trace configuration, or just the switch: tracing() turns the
  // default config on.
  ScenarioBuilder& trace(trace::TraceConfig value) {
    scenario_.trace = value;
    return *this;
  }
  ScenarioBuilder& tracing(bool enabled = true) {
    scenario_.trace.enabled = enabled;
    return *this;
  }

  ScenarioBuilder& ampom_trace(core::AmpomPolicy::TraceHook hook) {
    scenario_.ampom_trace = std::move(hook);
    return *this;
  }

  ScenarioBuilder& on_setup(std::function<void(sim::Simulator&, net::Fabric&)> hook) {
    scenario_.on_setup = std::move(hook);
    return *this;
  }

  // Empty string = consistent; otherwise the first problem found, phrased
  // in terms of the knobs that conflict. build() throws exactly this text.
  [[nodiscard]] std::string validate() const;

  // Validates and returns the finished scenario (leaves the builder
  // reusable). Throws std::invalid_argument with validate()'s message.
  [[nodiscard]] Scenario build() const;

 private:
  Scenario scenario_;
};

}  // namespace ampom::driver
