#pragma once
// One experiment: a workload, a migration scheme, and the environment.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cluster/chaos.hpp"
#include "cluster/infod.hpp"
#include "core/ampom_policy.hpp"
#include "core/config.hpp"
#include "driver/exec_policy.hpp"
#include "driver/profile.hpp"
#include "mem/hierarchy.hpp"
#include "migration/engine.hpp"
#include "net/fault_injector.hpp"
#include "proc/paging_client.hpp"
#include "proc/reference_stream.hpp"
#include "trace/trace.hpp"

namespace ampom::driver {

// A scripted fault schedule for one run: probabilistic per-link faults plus
// declarative outage/crash windows. The harness (run_experiment or
// ClusterSim) constructs a FaultInjector from it only when the plan is
// active, so the default plan leaves every run byte-identical to the
// fault-free fabric.
struct FaultPlan {
  std::uint64_t seed{1};
  net::LinkFaults default_faults{};

  struct LinkOverride {
    net::NodeId a{0};
    net::NodeId b{0};
    net::LinkFaults faults{};
  };
  std::vector<LinkOverride> link_overrides;

  struct LinkOutage {
    net::NodeId a{0};
    net::NodeId b{0};
    sim::Time down_at{};
    sim::Time up_at{};
  };
  std::vector<LinkOutage> outages;

  struct NodeCrash {
    net::NodeId node{0};
    sim::Time at{};
    sim::Time restore_at{};  // zero = stays down
  };
  std::vector<NodeCrash> crashes;

  // Correlated campaigns (zone outages, partitions, crash waves, link
  // flaps); expanded deterministically into the primitives above by the
  // harness once it knows the node count. See cluster/chaos.hpp.
  cluster::ChaosPlan chaos{};

  [[nodiscard]] bool active() const {
    if (chaos.active()) {
      return true;
    }
    const auto nonzero = [](const net::LinkFaults& f) {
      return f.drop_probability > 0.0 || f.duplicate_probability > 0.0 ||
             f.max_extra_delay > sim::Time::zero();
    };
    if (nonzero(default_faults) || !outages.empty() || !crashes.empty()) {
      return true;
    }
    for (const auto& o : link_overrides) {
      if (nonzero(o.faults)) {
        return true;
      }
    }
    return false;
  }

  // Installs the probabilistic faults and outage windows. Crashes are NOT
  // scheduled here — the harness owns them, because crashing a node also
  // means interrupting the executors and paging clients living on it.
  void apply_faults(net::FaultInjector& injector) const {
    injector.set_default_faults(default_faults);
    for (const auto& o : link_overrides) {
      injector.set_link_faults(o.a, o.b, o.faults);
    }
    for (const auto& o : outages) {
      injector.schedule_link_outage(o.a, o.b, o.down_at, o.up_at);
    }
  }
};

// Reliability knobs for every protocol layer at once. Everything defaults
// off: the classic fire-and-forget protocols remain event-exact with the
// seed. `all_on()` is the chaos-scenario preset.
struct ReliabilityConfig {
  bool enabled{false};
  proc::PagingRetryConfig paging{};             // request timers + retransmits
  migration::MigrationReliability migration{};  // ack'd freeze chunks
  cluster::FailureDetection detection{};        // heartbeat-silence health

  [[nodiscard]] static ReliabilityConfig all_on() {
    ReliabilityConfig r;
    r.enabled = true;
    r.paging.enabled = true;
    // Chaos preset: survive long partitions instead of throwing when the
    // legacy retry budget (~0.7 s of cumulative backoff) runs out before the
    // 2 s dead-consensus threshold can trigger rehoming. The ceiling keeps
    // the client probing at a bounded rate; the jitter decorrelates the
    // heal-time probe burst across clients.
    r.paging.backoff_ceiling = sim::Time::from_ms(500);
    r.paging.jitter_fraction = 0.1;
    r.paging.max_retries = 12;
    r.migration.enabled = true;
    r.detection.enabled = true;
    return r;
  }
};

// Balancer destination-scoring policy (ROADMAP item 1). kLoad is the
// classic greedy least-loaded pick; kEq3 adds the paper's Eq.-3 flat
// transfer-cost term (measured one-way latency amortized over the
// balancing horizon); kCacheAware additionally discounts destinations by
// the predicted CPMD warm-up cost and NUMA-domain contention read from the
// memory-hierarchy model (requires hierarchy.enabled).
enum class Placement : std::uint8_t { kLoad, kEq3, kCacheAware };

[[nodiscard]] constexpr const char* placement_name(Placement p) {
  switch (p) {
    case Placement::kLoad:
      return "load";
    case Placement::kEq3:
      return "eq3";
    case Placement::kCacheAware:
      return "cache";
  }
  return "?";
}

enum class Scheme : std::uint8_t {
  OpenMosix,   // full dirty-page copy during the freeze
  NoPrefetch,  // three pages + demand paging (the FFA variant)
  Ampom,       // three pages + MPT + adaptive prefetching
  PreCopy,     // V-System iterative pre-copy (related work §6)
  Checkpoint,  // checkpoint/restart through a file server (§1's alternative)
};

[[nodiscard]] constexpr const char* scheme_name(Scheme s) {
  switch (s) {
    case Scheme::OpenMosix:
      return "openMosix";
    case Scheme::NoPrefetch:
      return "NoPrefetch";
    case Scheme::Ampom:
      return "AMPoM";
    case Scheme::PreCopy:
      return "PreCopy";
    case Scheme::Checkpoint:
      return "Checkpoint";
  }
  return "?";
}

struct Scenario {
  Scheme scheme{Scheme::Ampom};
  // Factory, so a scenario can be re-run (e.g. across schemes).
  std::function<std::unique_ptr<proc::ReferenceStream>()> make_workload;
  std::string workload_label{"workload"};
  std::uint64_t memory_mib{0};  // for reporting only

  ClusterProfile profile{gideon300_profile()};
  core::AmpomConfig ampom{};

  // Cluster-world shape (ClusterSim scenarios): zone layout and the
  // InfoDaemon dissemination mode. An unset topology means the scenario is
  // a single-process experiment (run_experiment) and these are ignored.
  cluster::Topology topology{};
  cluster::GossipConfig gossip{};

  // Memory-hierarchy model + placement policy (cluster worlds). Defaults
  // keep the model off and the balancer on the classic load-greedy pick,
  // bit-identical to runs predating the cost model.
  mem::HierarchyConfig hierarchy{};
  Placement placement{Placement::kLoad};
  std::string cpmd_calibration{};  // calibration file path; empty = built-in

  // Environment knobs.
  bool shape_migrant_link{false};      // apply `shaped_link` between home/dest
  net::LinkParams shaped_link{};       // e.g. broadband_link() for Fig. 9
  double dest_background_load{0.0};    // CPU contention at the destination
  double background_traffic{0.0};      // competing flow into the dest (0..1)
  std::uint64_t ram_limit_pages{0};    // destination RAM cap (0 = unlimited)
  bool home_dependency{true};          // redirect syscalls to the home node

  // Process placement / timing.
  sim::Time warmup{sim::Time::from_sec(1.0)};  // InfoDaemon warm-up before start
  sim::Time migrate_after{sim::Time::from_ms(1)};  // after process start
  // Second hop (paper §1's "suboptimal decision" case): re-migrate the
  // process from the first destination to a third node this long after the
  // first migration completes. Zero = single migration. Unsupported
  // together with background_traffic (the third node generates it).
  sim::Time remigrate_after{sim::Time::zero()};
  std::uint64_t seed{1};

  // Fault injection + protocol reliability (both default off, leaving the
  // run identical to the fault-free, fire-and-forget original).
  FaultPlan faults{};
  ReliabilityConfig reliability{};

  // Execution policy: sweep-pool width (jobs) and intra-run simulator
  // threads (workers). workers >= 1 selects the partitioned engine for
  // cluster worlds — requires a multi-zone topology; the zone is the
  // partition (builder-validated). Default keeps the legacy serial engine.
  ExecPolicy exec{};

  // Observability: per-fault trace of the AMPoM analysis (Ampom scheme only).
  core::AmpomPolicy::TraceHook ampom_trace;
  // Structured event tracing (off by default: bit-identical run, see
  // trace/trace.hpp). The Runner owns the recorder; RunMetrics carries the
  // per-category summary and Runner::write_trace_json the full timeline.
  trace::TraceConfig trace{};

  // Called once after the cluster is wired, before the simulation runs —
  // for scheduling mid-run events (e.g. reshaping the network, injecting
  // load). The fabric reference stays valid for the whole run.
  std::function<void(sim::Simulator&, net::Fabric&)> on_setup;
};

}  // namespace ampom::driver
