#include "driver/run_context.hpp"

#include <fstream>

#include "trace/chrome_export.hpp"

namespace ampom::driver {

RunContext::RunContext(const Scenario& scenario, Options options)
    : logger_{options.log_level,
              options.capture_log ? static_cast<std::ostream*>(&capture_) : options.log_sink},
      recorder_{std::make_unique<trace::TraceRecorder>(scenario.trace)},
      exec_{scenario.exec} {
  if (!options.capture_log && options.log_sink == nullptr) {
    logger_ = sim::Logger{options.log_level};  // default sink: stderr
  }
  // A partitioned run records trace events from several worker threads; give
  // the recorder one shard per zone partition up front so no two partitions
  // ever share a buffer (trace/trace.hpp).
  if (exec_.parallel_run() && scenario.topology.set() && scenario.topology.zones >= 2) {
    recorder_->enable_partition_shards(scenario.topology.zones);
  }
}

bool RunContext::write_trace_json(const std::string& path) const {
  if (!recorder_->enabled()) {
    return false;
  }
  std::ofstream out{path};
  if (!out) {
    return false;
  }
  trace::write_chrome_trace(*recorder_, out);
  return out.good();
}

}  // namespace ampom::driver
