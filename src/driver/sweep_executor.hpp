#pragma once
// SweepExecutor: run a batch of scenarios on a fixed-size worker pool.
//
// Every result in the paper is a parameter sweep, and the simulations are
// deterministic and independent — embarrassingly parallel once no run
// touches process-wide state. Each worker builds the scenario (factories
// run inside the pool, so build()-time validation errors are per-case
// outcomes, not batch aborts), creates a private RunContext, and runs to
// completion. Results come back in submission order regardless of which
// worker finished first, and a parallel sweep is bit-identical to running
// the same batch serially: there is nothing shared for the schedule to
// perturb (tests/sweep_test.cpp pins this down under TSan in CI).
//
//   driver::SweepExecutor pool{{.exec = {.jobs = 4}}};
//   auto outcomes = pool.run_all({[...]{ return builder.build(); }, ...});
//   outcomes[i].metrics / .context->trace() / .error

#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "driver/exec_policy.hpp"
#include "driver/metrics.hpp"
#include "driver/run_context.hpp"
#include "driver/scenario.hpp"
#include "simcore/log.hpp"

namespace ampom::driver {

class SweepExecutor {
 public:
  struct Options {
    // exec.jobs is the pool width: 1 (the default) runs inline on the
    // calling thread; 0 means "one per hardware thread". exec.workers, when
    // nonzero, is stamped into every scenario that did not set its own
    // intra-run worker count — one flag block drives both axes.
    ExecPolicy exec{};
    // Log level for every run's Logger.
    sim::LogLevel log_level{sim::LogLevel::Warn};
    // Capture each run's log in its RunContext. Default on: concurrent
    // runs interleaving on stderr are useless, and the captured text is
    // still available per-outcome.
    bool capture_logs{true};
  };

  using ScenarioFactory = std::function<Scenario()>;

  struct Outcome {
    RunMetrics metrics{};
    // Trace recorder + captured log of the run; null when the case failed
    // before a context existed (factory/validation threw).
    std::unique_ptr<RunContext> context;
    // Set when the factory or the run threw; metrics are default-initialized.
    std::exception_ptr error;
    [[nodiscard]] bool ok() const { return error == nullptr; }
  };

  SweepExecutor() = default;
  explicit SweepExecutor(Options options) : options_{options} {}

  [[nodiscard]] const Options& options() const { return options_; }

  // Runs every case; outcome i belongs to cases[i]. A throwing case does
  // not stop the batch — the remaining cases still run, and the error is
  // reported in that case's outcome.
  [[nodiscard]] std::vector<Outcome> run_all(const std::vector<ScenarioFactory>& cases);

  // Convenience for pre-built scenarios when only metrics matter. Throws
  // the first failed case's exception (by submission order, after the
  // whole batch drained).
  [[nodiscard]] std::vector<RunMetrics> run_scenarios(const std::vector<Scenario>& cases);

  // The pool primitive run_all is built on: invokes fn(0..n-1), each index
  // exactly once, spread over min(jobs, n) workers. fn must confine itself
  // to per-index state; exceptions must not escape fn.
  static void parallel_for(std::size_t jobs, std::size_t n,
                           const std::function<void(std::size_t)>& fn);

 private:
  Options options_;
};

}  // namespace ampom::driver
