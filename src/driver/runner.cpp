#include "driver/runner.hpp"

#include <fstream>

#include "driver/experiment.hpp"
#include "trace/chrome_export.hpp"

namespace ampom::driver {

namespace {

// Restores the global log level on scope exit (including exceptions).
class ScopedLogLevel {
 public:
  explicit ScopedLogLevel(std::optional<sim::LogLevel> level)
      : saved_{sim::Logger::instance().level()} {
    if (level) {
      sim::Logger::instance().set_level(*level);
    }
  }
  ~ScopedLogLevel() { sim::Logger::instance().set_level(saved_); }
  ScopedLogLevel(const ScopedLogLevel&) = delete;
  ScopedLogLevel& operator=(const ScopedLogLevel&) = delete;

 private:
  sim::LogLevel saved_;
};

}  // namespace

RunMetrics Runner::run(const Scenario& scenario) {
  ScopedLogLevel scoped_level{options_.log_level};
  recorder_ = std::make_unique<trace::TraceRecorder>(scenario.trace);
  RunMetrics metrics = detail::run_scenario(scenario, recorder_.get());
  for (const auto& sink : sinks_) {
    sink(metrics);
  }
  return metrics;
}

bool Runner::write_trace_json(const std::string& path) const {
  if (recorder_ == nullptr || !recorder_->enabled()) {
    return false;
  }
  std::ofstream out{path};
  if (!out) {
    return false;
  }
  trace::write_chrome_trace(*recorder_, out);
  return out.good();
}

}  // namespace ampom::driver
