#include "driver/runner.hpp"

#include "driver/experiment.hpp"

namespace ampom::driver {

RunMetrics Runner::run(const Scenario& scenario) {
  RunContext::Options ctx_options;
  if (options_.log_level) {
    ctx_options.log_level = *options_.log_level;
  }
  ctx_options.capture_log = options_.capture_log;
  context_ = std::make_unique<RunContext>(scenario, ctx_options);
  for (const auto& sink : sinks_) {
    context_->add_metric_sink(sink);
  }
  RunMetrics metrics = detail::run_scenario(scenario, *context_);
  context_->notify_sinks(metrics);
  return metrics;
}

bool Runner::write_trace_json(const std::string& path) const {
  return context_ != nullptr && context_->write_trace_json(path);
}

}  // namespace ampom::driver
