#pragma once
// Chrome trace_event exporter: serializes a TraceRecorder's event stream
// into the JSON Object Format understood by chrome://tracing and Perfetto.
//
// Mapping:
//   node id            -> "pid" (one track group per simulated node, named
//                         by process_name metadata)
//   category           -> "tid" within the node, plus "cat"
//   kInstant           -> ph "i" (scope "t": thread-local tick)
//   kAsyncBegin / End  -> ph "b" / "e", "id" = correlation id (Perfetto
//                         joins them by (cat, id, name))
//   kCounter           -> ph "C", args {"value": v}
//
// Timestamps are microseconds with fixed three-decimal formatting computed
// from the integer nanosecond tick, so the same event stream always
// serializes to the same bytes (the determinism the trace tests pin down).

#include <iosfwd>

#include "trace/trace.hpp"

namespace ampom::trace {

void write_chrome_trace(const TraceRecorder& recorder, std::ostream& out);

}  // namespace ampom::trace
