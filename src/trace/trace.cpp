#include "trace/trace.hpp"

#include <map>
#include <string>
#include <utility>

namespace ampom::trace {

stats::Counters TraceRecorder::summary() const {
  // Group by the name *pointer* first: names are literals, so the handful
  // of distinct (category, pointer) pairs stand in for the string keys and
  // the per-event work is one map bump instead of a heap-allocating
  // concatenation. (Equal literals from different TUs would merely split a
  // pair; Counters::add re-merges them by value below.)
  std::map<std::pair<Category, const char*>, std::uint64_t> by_site;
  for (const Shard& shard : shards_) {
    for (const Event& e : shard.events) {
      ++by_site[{e.cat, e.name}];
    }
  }
  stats::Counters c;
  for (const auto& [site, count] : by_site) {
    c.add(std::string{"trace."} + category_name(site.first) + "." + site.second, count);
  }
  if (events_dropped() > 0) {
    c.add("trace.dropped", events_dropped());
  }
  return c;
}

void TraceRecorder::attach_scheduler_probe(sim::Simulator& simulator) {
  if (!config_.enabled || config_.sched_sample_period <= sim::Time::zero()) {
    return;
  }
  probe_last_processed_ = simulator.events_processed();
  probe_last_at_ = simulator.now();
  simulator.start_probe(
      config_.sched_sample_period,
      [this](sim::Time now, std::size_t pending, std::uint64_t processed) {
        counter(Category::kSched, "queue_depth", now, 0, static_cast<double>(pending));
        const sim::Time span = now - probe_last_at_;
        if (span > sim::Time::zero()) {
          const double events = static_cast<double>(processed - probe_last_processed_);
          counter(Category::kSched, "events_per_vms", now, 0, events / span.ms());
        }
        probe_last_processed_ = processed;
        probe_last_at_ = now;
      });
}

}  // namespace ampom::trace
