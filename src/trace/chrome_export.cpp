#include "trace/chrome_export.hpp"

#include <algorithm>
#include <cinttypes>
#include <ostream>
#include <set>
#include <utility>
#include <vector>

#include "simcore/fmt.hpp"

namespace ampom::trace {

namespace {

// Fixed-point microseconds from the integer nanosecond tick: deterministic
// bytes, no floating-point formatting in the timeline.
std::string ts_us(sim::Time t) {
  const std::int64_t ns = t.ns();
  return sim::strfmt("%" PRId64 ".%03" PRId64, ns / 1000, ns % 1000);
}

const char* phase(Event::Kind kind) {
  switch (kind) {
    case Event::Kind::kInstant:
      return "i";
    case Event::Kind::kAsyncBegin:
      return "b";
    case Event::Kind::kAsyncEnd:
      return "e";
    case Event::Kind::kCounter:
      return "C";
  }
  return "i";
}

}  // namespace

void write_chrome_trace(const TraceRecorder& recorder, std::ostream& out) {
  // Span ends are emitted at their (known) future timestamp the moment the
  // outcome is decided, so the raw stream is not time-ordered. Sort stably:
  // ties keep emission order, which is itself deterministic.
  std::vector<const Event*> ordered;
  ordered.reserve(recorder.events().size());
  for (const Event& e : recorder.events()) {
    ordered.push_back(&e);
  }
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const Event* a, const Event* b) { return a->ts < b->ts; });

  std::set<std::uint32_t> nodes;
  std::set<std::pair<std::uint32_t, std::uint8_t>> tracks;
  for (const Event* e : ordered) {
    nodes.insert(e->node);
    tracks.emplace(e->node, static_cast<std::uint8_t>(e->cat));
  }

  out << "{\"traceEvents\":[";
  bool first = true;
  const auto sep = [&] {
    if (!first) {
      out << ",\n";
    }
    first = false;
  };

  for (const std::uint32_t node : nodes) {
    sep();
    out << sim::strfmt(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%u,\"tid\":0,"
        "\"args\":{\"name\":\"node%u\"}}",
        node, node);
  }
  for (const auto& [node, cat] : tracks) {
    sep();
    out << sim::strfmt(
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%u,\"tid\":%u,"
        "\"args\":{\"name\":\"%s\"}}",
        node, static_cast<unsigned>(cat) + 1,
        category_name(static_cast<Category>(cat)));
  }

  for (const Event* e : ordered) {
    sep();
    const unsigned tid = static_cast<unsigned>(e->cat) + 1;
    out << sim::strfmt("{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%s\",\"pid\":%u,\"tid\":%u,"
                       "\"ts\":%s",
                       e->name, category_name(e->cat), phase(e->kind), e->node, tid,
                       ts_us(e->ts).c_str());
    switch (e->kind) {
      case Event::Kind::kInstant:
        out << ",\"s\":\"t\"";
        if (e->corr != 0 || e->arg0 != 0 || e->arg1 != 0) {
          out << sim::strfmt(",\"args\":{\"corr\":%" PRIu64 ",\"a0\":%" PRIu64
                             ",\"a1\":%" PRIu64 "}",
                             e->corr, e->arg0, e->arg1);
        }
        break;
      case Event::Kind::kAsyncBegin:
      case Event::Kind::kAsyncEnd:
        out << sim::strfmt(",\"id\":\"0x%" PRIx64 "\"", e->corr);
        if (e->arg0 != 0 || e->arg1 != 0) {
          out << sim::strfmt(",\"args\":{\"a0\":%" PRIu64 ",\"a1\":%" PRIu64 "}", e->arg0,
                             e->arg1);
        }
        break;
      case Event::Kind::kCounter:
        out << sim::strfmt(",\"args\":{\"value\":%.3f}", e->value());
        break;
    }
    out << "}";
  }

  out << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

}  // namespace ampom::trace
