#pragma once
// Structured simulation tracing: typed, timestamped events collected by a
// per-run TraceRecorder and exported as Chrome trace_event JSON
// (chrome://tracing, Perfetto) plus a per-category counter summary.
//
// Discipline (same as the fault injector's): tracing off means *nothing*
// happens — no allocation, no RNG draws, no extra simulator events — so a
// run with TraceConfig{} is bit-identical to one without the subsystem.
// Instrumented components hold a nullable TraceRecorder* and emit through
// the inline wrappers below, which reduce to one pointer test when off.
//
// Events carry the simulated timestamp, the node they happened on, and a
// correlation id (threaded through net::Message::corr) so one request can
// be followed across fabric, deputy and paging client. Span pairs share a
// (category, name, correlation id) key; the exporter matches them into
// Chrome async spans.
//
// Names passed to the recorder must be string literals (or otherwise
// outlive the recorder): events store the pointer, not a copy.
//
// Partitioned runs: enable_partition_shards() gives every simulator
// partition its own event buffer, routed by the executing partition (so no
// two worker threads ever write one buffer), and events()/summary() merge
// the shards in deterministic (timestamp, partition, intra-shard order) —
// a function of the schedule, not of thread timing. Merging readers must
// run outside partition windows (driver code after run(), barrier events).

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "simcore/simulator.hpp"
#include "simcore/time.hpp"
#include "stats/counters.hpp"

namespace ampom::trace {

enum class Category : std::uint8_t {
  kNet,        // fabric: send / deliver / drop / duplicate
  kPaging,     // page-fault spans, page arrivals, deputy service
  kPrefetch,   // prefetch-batch spans
  kMigration,  // freeze phases, chunk rounds, flush traffic
  kSched,      // event-queue depth, events per virtual millisecond
  kProc,       // executor-level markers
};
inline constexpr std::size_t kCategoryCount = 6;

[[nodiscard]] constexpr const char* category_name(Category c) {
  switch (c) {
    case Category::kNet:
      return "net";
    case Category::kPaging:
      return "paging";
    case Category::kPrefetch:
      return "prefetch";
    case Category::kMigration:
      return "migration";
    case Category::kSched:
      return "sched";
    case Category::kProc:
      return "proc";
  }
  return "?";
}

// Scenario-level switch. Default-constructed = tracing off = zero overhead.
struct TraceConfig {
  bool enabled{false};
  // Scheduler sampling period (queue depth, event rate). Zero disables the
  // sampler even when tracing is on, leaving the event stream untouched.
  sim::Time sched_sample_period{sim::Time::from_ms(10)};
  // Hard cap on recorded events; beyond it events are counted but dropped,
  // so a runaway scenario cannot exhaust memory.
  std::size_t max_events{1u << 22};
};

struct Event {
  enum class Kind : std::uint8_t {
    kInstant,     // point event        -> ph "i"
    kAsyncBegin,  // span open by corr  -> ph "b"
    kAsyncEnd,    // span close by corr -> ph "e"
    kCounter,     // sampled value      -> ph "C"
  };
  sim::Time ts{};
  const char* name{""};
  Category cat{Category::kNet};
  Kind kind{Kind::kInstant};
  std::uint32_t node{0};
  std::uint64_t corr{0};
  // kCounter stores its double bit-pattern in arg0 (see value()); keeping
  // the struct at 48 bytes matters — recording a few hundred thousand
  // events per run, the buffer write traffic IS the tracing overhead.
  std::uint64_t arg0{0};
  std::uint64_t arg1{0};

  [[nodiscard]] double value() const { return std::bit_cast<double>(arg0); }
};

class TraceRecorder {
 public:
  explicit TraceRecorder(TraceConfig config = {}) : config_{config}, shards_(1) {
    if (config_.enabled) {
      // Reserve generously up front: growth reallocations would copy the
      // whole (large) buffer mid-run, the single place the recorder could
      // cost real wall-clock time. Virtual memory is committed on touch,
      // so an under-filled reservation costs address space, not RAM.
      shards_[0].events.reserve(std::min<std::size_t>(config_.max_events, 1u << 20));
    }
  }
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  [[nodiscard]] bool enabled() const { return config_.enabled; }
  [[nodiscard]] const TraceConfig& config() const { return config_; }

  // One buffer per simulator partition (plus the global shard 0). Call
  // before the run starts; the max_events cap then applies per shard.
  void enable_partition_shards(std::uint32_t partitions) {
    shards_.resize(partitions + 1);
    if (config_.enabled) {
      for (std::uint32_t s = 1; s < shards_.size(); ++s) {
        shards_[s].events.reserve(std::min<std::size_t>(config_.max_events, 1u << 16));
      }
    }
  }

  void instant(Category cat, const char* name, sim::Time ts, std::uint32_t node,
               std::uint64_t corr = 0, std::uint64_t arg0 = 0, std::uint64_t arg1 = 0) {
    push(Event{ts, name, cat, Event::Kind::kInstant, node, corr, arg0, arg1});
  }
  void async_begin(Category cat, const char* name, sim::Time ts, std::uint32_t node,
                   std::uint64_t corr, std::uint64_t arg0 = 0, std::uint64_t arg1 = 0) {
    push(Event{ts, name, cat, Event::Kind::kAsyncBegin, node, corr, arg0, arg1});
  }
  void async_end(Category cat, const char* name, sim::Time ts, std::uint32_t node,
                 std::uint64_t corr, std::uint64_t arg0 = 0, std::uint64_t arg1 = 0) {
    push(Event{ts, name, cat, Event::Kind::kAsyncEnd, node, corr, arg0, arg1});
  }
  void counter(Category cat, const char* name, sim::Time ts, std::uint32_t node, double value) {
    push(Event{ts, name, cat, Event::Kind::kCounter, node, 0, std::bit_cast<std::uint64_t>(value), 0});
  }

  // Single-shard mode: the buffer itself. Sharded: the deterministic merge
  // (rebuilt lazily; see the header comment for when reading is legal).
  [[nodiscard]] const std::vector<Event>& events() const {
    if (shards_.size() == 1) {
      return shards_[0].events;
    }
    std::size_t total = 0;
    for (const Shard& s : shards_) {
      total += s.events.size();
    }
    if (merged_.size() != total) {
      merged_.clear();
      merged_.reserve(total);
      for (const Shard& s : shards_) {
        merged_.insert(merged_.end(), s.events.begin(), s.events.end());
      }
      // Stable: ties keep (shard, intra-shard) order — the canonical key.
      std::stable_sort(merged_.begin(), merged_.end(),
                       [](const Event& a, const Event& b) { return a.ts < b.ts; });
    }
    return merged_;
  }
  [[nodiscard]] std::uint64_t events_dropped() const {
    std::uint64_t total = 0;
    for (const Shard& s : shards_) {
      total += s.dropped;
    }
    return total;
  }

  // Per-category event counts ("trace.<category>.<name>" -> count), merged
  // into RunMetrics::trace_summary by the driver.
  [[nodiscard]] stats::Counters summary() const;

  // Start the scheduler sampler on `simulator` (no-op when tracing is off
  // or sched_sample_period is zero). Emits kSched counters for the event
  // queue depth and the event rate since the previous sample.
  void attach_scheduler_probe(sim::Simulator& simulator);

 private:
  struct Shard {
    std::vector<Event> events;
    std::uint64_t dropped{0};
  };

  void push(const Event& e) {
    if (!config_.enabled) {
      return;
    }
    Shard& shard = shards_.size() == 1 ? shards_[0] : shard_for_context();
    if (shard.events.size() >= config_.max_events) {
      ++shard.dropped;
      return;
    }
    shard.events.push_back(e);
  }

  [[nodiscard]] Shard& shard_for_context() {
    const std::uint32_t part = sim::Simulator::current_partition_hint();
    return shards_[part < shards_.size() ? part : 0];
  }

  TraceConfig config_;
  std::vector<Shard> shards_;            // [0] = global/serial buffer
  mutable std::vector<Event> merged_;    // lazy deterministic merge cache
  std::uint64_t probe_last_processed_{0};
  sim::Time probe_last_at_{};
};

}  // namespace ampom::trace
