// Integration tests: whole experiments through driver::run_experiment,
// checking the cross-scheme relationships the paper's evaluation rests on.

#include <gtest/gtest.h>

#include "driver/experiment.hpp"
#include "workload/hpcc.hpp"
#include "workload/synthetic.hpp"

namespace ampom::driver {
namespace {

using sim::Time;

Scenario base_scenario(Scheme scheme, std::uint64_t memory_mib = 16) {
  Scenario s;
  s.scheme = scheme;
  s.memory_mib = memory_mib;
  s.workload_label = "STREAM";
  s.make_workload = [memory_mib] {
    return workload::make_hpcc_kernel(workload::HpccKernel::Stream, memory_mib);
  };
  return s;
}

RunMetrics run(Scheme scheme, std::uint64_t memory_mib = 16) {
  return run_experiment(base_scenario(scheme, memory_mib));
}

TEST(Integration, MissingWorkloadFactoryRejected) {
  Scenario s;
  EXPECT_THROW(run_experiment(s), std::invalid_argument);
}

TEST(Integration, AllSchemesFinishAndConserve) {
  for (const Scheme scheme : {Scheme::OpenMosix, Scheme::NoPrefetch, Scheme::Ampom}) {
    const RunMetrics m = run(scheme);
    EXPECT_TRUE(m.ledger_ok) << scheme_name(scheme);
    EXPECT_GT(m.refs_consumed, 0u) << scheme_name(scheme);
    EXPECT_GT(m.total_time, Time::zero()) << scheme_name(scheme);
  }
}

TEST(Integration, SchemesConsumeIdenticalReferenceStreams) {
  const RunMetrics a = run(Scheme::OpenMosix);
  const RunMetrics b = run(Scheme::NoPrefetch);
  const RunMetrics c = run(Scheme::Ampom);
  EXPECT_EQ(a.refs_consumed, b.refs_consumed);
  EXPECT_EQ(a.refs_consumed, c.refs_consumed);
  EXPECT_EQ(a.page_count, c.page_count);
}

TEST(Integration, FreezeTimeOrderingMatchesFig5) {
  const RunMetrics om = run(Scheme::OpenMosix);
  const RunMetrics np = run(Scheme::NoPrefetch);
  const RunMetrics am = run(Scheme::Ampom);
  // openMosix >> AMPoM > NoPrefetch.
  EXPECT_GT(om.freeze_time, am.freeze_time * 5);
  EXPECT_GT(am.freeze_time, np.freeze_time);
}

TEST(Integration, OpenMosixNeverFaultsRemotely) {
  const RunMetrics m = run(Scheme::OpenMosix);
  EXPECT_EQ(m.remote_fault_requests, 0u);
  EXPECT_EQ(m.hard_faults, 0u);
  EXPECT_EQ(m.pages_arrived, 0u);
  EXPECT_EQ(m.pages_migrated, m.page_count);
}

TEST(Integration, NoPrefetchFaultsOncePerTouchedRemotePage) {
  const RunMetrics m = run(Scheme::NoPrefetch);
  EXPECT_EQ(m.remote_fault_requests, m.hard_faults);
  EXPECT_EQ(m.pages_arrived, m.hard_faults);
  EXPECT_EQ(m.soft_faults, 0u);
  EXPECT_EQ(m.prefetch_pages_issued, 0u);
  // Touched pages = migrated 3 + faulted; untouched pages stay home.
  EXPECT_LE(m.pages_arrived + m.pages_migrated, m.page_count);
}

TEST(Integration, AmpomPreventsMostFaultRequests) {
  const RunMetrics np = run(Scheme::NoPrefetch);
  const RunMetrics am = run(Scheme::Ampom);
  EXPECT_LT(am.remote_fault_requests, np.remote_fault_requests / 20);
  EXPECT_GT(am.prevented_fault_fraction(), 0.9);
  // Same pages cross the wire either way (STREAM touches everything).
  EXPECT_NEAR(static_cast<double>(am.pages_arrived),
              static_cast<double>(np.pages_arrived),
              static_cast<double>(np.pages_arrived) * 0.02);
}

TEST(Integration, RuntimeOrderingMatchesFig6) {
  const RunMetrics om = run(Scheme::OpenMosix);
  const RunMetrics np = run(Scheme::NoPrefetch);
  const RunMetrics am = run(Scheme::Ampom);
  EXPECT_GT(np.total_time, om.total_time);            // NoPrefetch lags
  EXPECT_LT(am.total_time, np.total_time);            // AMPoM beats NoPrefetch
  const double ratio = am.total_time / om.total_time;
  EXPECT_GT(ratio, 0.85);                             // ...and tracks openMosix
  EXPECT_LT(ratio, 1.10);
}

TEST(Integration, DeterministicAcrossRuns) {
  const RunMetrics a = run(Scheme::Ampom);
  const RunMetrics b = run(Scheme::Ampom);
  EXPECT_EQ(a.total_time, b.total_time);
  EXPECT_EQ(a.freeze_time, b.freeze_time);
  EXPECT_EQ(a.remote_fault_requests, b.remote_fault_requests);
  EXPECT_EQ(a.prefetch_pages_issued, b.prefetch_pages_issued);
}

TEST(Integration, BroadbandShapingSlowsEverything) {
  Scenario fast = base_scenario(Scheme::Ampom);
  Scenario slow = base_scenario(Scheme::Ampom);
  slow.shape_migrant_link = true;
  slow.shaped_link = broadband_link();
  const RunMetrics f = run_experiment(fast);
  const RunMetrics s = run_experiment(slow);
  EXPECT_GT(s.total_time, f.total_time * 2);
  EXPECT_GT(s.freeze_time, f.freeze_time);  // MPT crosses the slow link too
}

TEST(Integration, BackgroundLoadSlowsTheMigrant) {
  Scenario idle = base_scenario(Scheme::OpenMosix);
  Scenario busy = base_scenario(Scheme::OpenMosix);
  busy.dest_background_load = 0.5;
  const RunMetrics i = run_experiment(idle);
  const RunMetrics b = run_experiment(busy);
  // Post-migration compute runs at half speed.
  EXPECT_GT(b.total_time, i.total_time);
  EXPECT_GT(b.cpu_time, i.cpu_time.scaled(1.5));
}

TEST(Integration, SmallWorkingSetTransfersLessUnderAmpom) {
  Scenario s = base_scenario(Scheme::Ampom, 64);
  s.workload_label = "DGEMM-ws";
  s.make_workload = [] { return workload::make_small_ws_dgemm(64, 16); };
  const RunMetrics am = run_experiment(s);
  s.scheme = Scheme::OpenMosix;
  const RunMetrics om = run_experiment(s);
  // §5.6: AMPoM moves only the working set; openMosix moves everything.
  EXPECT_EQ(om.pages_migrated, om.page_count);
  EXPECT_LT(am.pages_arrived + am.pages_migrated, om.pages_migrated / 2);
  EXPECT_LT(am.total_time, om.total_time);
}

TEST(Integration, RamLimitCausesEvictionsAndStillFinishes) {
  Scenario s = base_scenario(Scheme::Ampom);
  s.ram_limit_pages = 1024;  // far below the 16 MiB working set
  const RunMetrics m = run_experiment(s);
  EXPECT_GT(m.refs_consumed, 0u);
  EXPECT_TRUE(m.ledger_ok);
}

TEST(Integration, InteractiveWorkloadWithHomeDependency) {
  Scenario s = base_scenario(Scheme::Ampom, 8);
  s.workload_label = "interactive";
  s.make_workload = [] {
    return std::make_unique<workload::InteractiveStream>(8 * sim::kMiB, 50, 40, 2,
                                                         Time::from_us(20));
  };
  const RunMetrics with_home = run_experiment(s);
  s.home_dependency = false;
  const RunMetrics zap_style = run_experiment(s);
  // §7: removing the home dependency speeds up syscall-heavy migrants.
  EXPECT_LT(zap_style.total_time, with_home.total_time);
}

TEST(Integration, AmpomAnalysisOverheadWithinFig11Envelope) {
  const RunMetrics m = run(Scheme::Ampom, 33);
  EXPECT_GT(m.ampom_analysis_time, Time::zero());
  EXPECT_LT(m.analysis_overhead_fraction(), 0.006);  // < 0.6 % of runtime
}

TEST(Integration, ExecTimeExcludesFreeze) {
  const RunMetrics m = run(Scheme::OpenMosix);
  EXPECT_EQ(m.exec_time + m.freeze_time, m.total_time);
}

TEST(Integration, BackgroundTrafficInflatesZoneEstimates) {
  Scenario quiet = base_scenario(Scheme::Ampom);
  Scenario noisy = base_scenario(Scheme::Ampom);
  noisy.background_traffic = 0.5;
  const RunMetrics q = run_experiment(quiet);
  const RunMetrics n = run_experiment(noisy);
  // §3.5: a busier network means a longer pipeline to hide, so AMPoM
  // prefetches at least as aggressively.
  EXPECT_GE(n.prefetched_per_fault(), q.prefetched_per_fault() * 0.9);
  EXPECT_TRUE(n.ledger_ok);
}

}  // namespace
}  // namespace ampom::driver
