// SweepExecutor: the parallel sweep must be bit-identical to the serial
// one, in submission order, with per-case error isolation and per-run log
// capture. These tests are the contract the bench harness and the CLI's
// --jobs flag rely on; CI additionally runs them under ThreadSanitizer.

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "driver/builder.hpp"
#include "driver/run_context.hpp"
#include "driver/sweep_executor.hpp"
#include "trace/chrome_export.hpp"
#include "workload/hpcc.hpp"
#include "workload/synthetic.hpp"

namespace {

using namespace ampom;

driver::Scenario cell(workload::HpccKernel kernel, std::uint64_t mib, driver::Scheme scheme) {
  return driver::ScenarioBuilder{}.scheme(scheme).hpcc_workload(kernel, mib).build();
}

// A small but representative matrix: every scheme, two kernels, a chaos run
// with the reliability stack (the configuration most sensitive to a stray
// RNG draw), a re-migration, and a traced run.
std::vector<driver::SweepExecutor::ScenarioFactory> representative_matrix() {
  std::vector<driver::SweepExecutor::ScenarioFactory> cases;
  for (const auto scheme :
       {driver::Scheme::OpenMosix, driver::Scheme::NoPrefetch, driver::Scheme::Ampom}) {
    cases.push_back([scheme] { return cell(workload::HpccKernel::Stream, 9, scheme); });
    cases.push_back([scheme] { return cell(workload::HpccKernel::RandomAccess, 9, scheme); });
  }
  cases.push_back([] {
    driver::FaultPlan plan;
    plan.seed = 17;
    plan.default_faults.drop_probability = 0.02;
    return driver::ScenarioBuilder{}
        .scheme(driver::Scheme::Ampom)
        .hpcc_workload(workload::HpccKernel::Stream, 9)
        .faults(plan)
        .reliability(driver::ReliabilityConfig::all_on())
        .build();
  });
  cases.push_back([] {
    driver::Scenario s = cell(workload::HpccKernel::Dgemm, 9, driver::Scheme::Ampom);
    s.remigrate_after = sim::Time::from_ms(200);
    return s;
  });
  cases.push_back([] {
    return driver::ScenarioBuilder{}
        .scheme(driver::Scheme::Ampom)
        .hpcc_workload(workload::HpccKernel::Fft, 9)
        .tracing()
        .build();
  });
  return cases;
}

std::string export_json(const trace::TraceRecorder& recorder) {
  std::ostringstream out;
  trace::write_chrome_trace(recorder, out);
  return out.str();
}

TEST(SweepExecutor, ParallelIsBitIdenticalToSerial) {
  const auto cases = representative_matrix();
  driver::SweepExecutor serial{{.exec = {.jobs = 1}}};
  driver::SweepExecutor parallel{{.exec = {.jobs = 4}}};
  const auto a = serial.run_all(cases);
  const auto b = parallel.run_all(cases);
  ASSERT_EQ(a.size(), cases.size());
  ASSERT_EQ(b.size(), cases.size());
  for (std::size_t i = 0; i < cases.size(); ++i) {
    ASSERT_TRUE(a[i].ok()) << "serial case " << i;
    ASSERT_TRUE(b[i].ok()) << "parallel case " << i;
    // Field-for-field, including every counter and the trace summary.
    EXPECT_EQ(a[i].metrics, b[i].metrics) << "case " << i;
    // The exported trace must match byte for byte too.
    ASSERT_NE(a[i].context, nullptr);
    ASSERT_NE(b[i].context, nullptr);
    EXPECT_EQ(export_json(a[i].context->trace()), export_json(b[i].context->trace()))
        << "case " << i;
  }
}

TEST(SweepExecutor, ResultsComeBackInSubmissionOrder) {
  // Workloads of very different lengths: with 4 workers the short ones
  // finish long before the big one, but outcome i must stay cases[i].
  std::vector<driver::SweepExecutor::ScenarioFactory> cases;
  const std::uint64_t sizes[] = {33, 5, 9, 5, 17, 5};
  for (const std::uint64_t mib : sizes) {
    cases.push_back([mib] {
      return cell(workload::HpccKernel::Stream, mib, driver::Scheme::Ampom);
    });
  }
  driver::SweepExecutor pool{{.exec = {.jobs = 4}}};
  const auto outcomes = pool.run_all(cases);
  ASSERT_EQ(outcomes.size(), std::size(sizes));
  for (std::size_t i = 0; i < std::size(sizes); ++i) {
    ASSERT_TRUE(outcomes[i].ok());
    EXPECT_EQ(outcomes[i].metrics.memory_mib, sizes[i]) << "case " << i;
  }
}

TEST(SweepExecutor, MoreJobsThanCases) {
  std::vector<driver::SweepExecutor::ScenarioFactory> cases;
  cases.push_back([] { return cell(workload::HpccKernel::Stream, 5, driver::Scheme::Ampom); });
  cases.push_back(
      [] { return cell(workload::HpccKernel::Stream, 5, driver::Scheme::OpenMosix); });
  driver::SweepExecutor pool{{.exec = {.jobs = 16}}};
  const auto outcomes = pool.run_all(cases);
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_TRUE(outcomes[0].ok());
  EXPECT_TRUE(outcomes[1].ok());
  EXPECT_EQ(outcomes[0].metrics.scheme, "AMPoM");
}

TEST(SweepExecutor, EmptyBatch) {
  driver::SweepExecutor pool{{.exec = {.jobs = 4}}};
  EXPECT_TRUE(pool.run_all({}).empty());
}

TEST(SweepExecutor, ThrowingFactoryMidBatchIsIsolated) {
  std::vector<driver::SweepExecutor::ScenarioFactory> cases;
  cases.push_back([] { return cell(workload::HpccKernel::Stream, 5, driver::Scheme::Ampom); });
  cases.push_back([]() -> driver::Scenario { throw std::runtime_error("bad scenario"); });
  cases.push_back([] { return cell(workload::HpccKernel::Stream, 5, driver::Scheme::Ampom); });
  driver::SweepExecutor pool{{.exec = {.jobs = 4}}};
  const auto outcomes = pool.run_all(cases);
  ASSERT_EQ(outcomes.size(), 3u);
  EXPECT_TRUE(outcomes[0].ok());
  EXPECT_FALSE(outcomes[1].ok());
  EXPECT_TRUE(outcomes[2].ok());
  // The failed case never got a context; the survivors are intact.
  EXPECT_EQ(outcomes[1].context, nullptr);
  EXPECT_GT(outcomes[0].metrics.refs_consumed, 0u);
  EXPECT_GT(outcomes[2].metrics.refs_consumed, 0u);
  // run_scenarios-style rethrow: the first error in submission order.
  try {
    std::rethrow_exception(outcomes[1].error);
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "bad scenario");
  }
}

TEST(SweepExecutor, RunScenariosThrowsFirstErrorInSubmissionOrder) {
  // An invalid scenario (no workload) fails inside build/run; the helper
  // must surface it even though other cases succeeded.
  std::vector<driver::Scenario> cases;
  cases.push_back(cell(workload::HpccKernel::Stream, 5, driver::Scheme::Ampom));
  driver::Scenario broken;
  broken.memory_mib = 5;  // no make_workload
  cases.push_back(broken);
  driver::SweepExecutor pool{{.exec = {.jobs = 2}}};
  EXPECT_THROW((void)pool.run_scenarios(cases), std::exception);

  cases.pop_back();
  const auto metrics = pool.run_scenarios(cases);
  ASSERT_EQ(metrics.size(), 1u);
  EXPECT_GT(metrics[0].refs_consumed, 0u);
}

TEST(SweepExecutor, CapturedLogsArePerRun) {
  std::vector<driver::SweepExecutor::ScenarioFactory> cases;
  cases.push_back([] { return cell(workload::HpccKernel::Stream, 5, driver::Scheme::Ampom); });
  cases.push_back([] { return cell(workload::HpccKernel::Dgemm, 9, driver::Scheme::Ampom); });
  driver::SweepExecutor pool{{.exec = {.jobs = 2}, .log_level = sim::LogLevel::Debug}};
  const auto outcomes = pool.run_all(cases);
  ASSERT_EQ(outcomes.size(), 2u);
  for (const auto& outcome : outcomes) {
    ASSERT_TRUE(outcome.ok());
    ASSERT_NE(outcome.context, nullptr);
    const std::string log = outcome.context->captured_log();
    EXPECT_NE(log.find("run start"), std::string::npos);
    EXPECT_NE(log.find("run finished"), std::string::npos);
  }
  // Each capture names only its own run.
  EXPECT_NE(outcomes[0].context->captured_log().find("STREAM"), std::string::npos);
  EXPECT_EQ(outcomes[0].context->captured_log().find("DGEMM"), std::string::npos);
  EXPECT_NE(outcomes[1].context->captured_log().find("DGEMM"), std::string::npos);
}

TEST(SweepExecutor, ParallelForCoversEveryIndexExactlyOnce) {
  for (const std::size_t jobs : {1u, 3u, 8u}) {
    std::vector<int> hits(100, 0);
    driver::SweepExecutor::parallel_for(jobs, hits.size(),
                                        [&hits](std::size_t i) { hits[i] += 1; });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i], 1) << "index " << i << " jobs " << jobs;
    }
  }
}

}  // namespace
