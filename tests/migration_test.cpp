// Tests of the three migration engines: freeze-time composition, page
// bookkeeping (address space + HPT + ledger), wire accounting and the
// resume protocol.

#include <gtest/gtest.h>

#include <memory>

#include "mem/ledger.hpp"
#include "migration/cpmd.hpp"
#include "migration/engine.hpp"
#include "migration/full_copy.hpp"
#include "migration/lightweight.hpp"
#include "net/fabric.hpp"
#include "proc/deputy.hpp"
#include "proc/executor.hpp"
#include "simcore/simulator.hpp"

namespace ampom::migration {
namespace {

using proc::Ref;
using sim::Time;

struct MigrationFixture : ::testing::Test {
  static constexpr net::NodeId kHome = 0;
  static constexpr net::NodeId kDest = 1;

  sim::Simulator simulator;
  net::Fabric fabric{simulator, 2};
  proc::WireCosts wire;
  proc::NodeCosts costs;

  std::unique_ptr<proc::Process> process;
  std::unique_ptr<proc::Executor> executor;
  std::unique_ptr<proc::Deputy> deputy;
  std::unique_ptr<mem::PageLedger> ledger;

  std::optional<MigrationResult> result;
  bool before_resume_called{false};

  void make_process(sim::Bytes memory, std::vector<Ref> refs = {}) {
    if (refs.empty()) {
      // Keep the process busy long enough for the freeze to land.
      for (int i = 0; i < 1000; ++i) {
        refs.push_back(Ref{300 + static_cast<mem::PageId>(i % 16), Time::from_ms(1),
                           Ref::Kind::Memory});
      }
    }
    process = std::make_unique<proc::Process>(
        1, std::make_unique<proc::TraceStream>(std::move(refs), memory), kHome);
    process->aspace().populate_all_dirty();
    executor = std::make_unique<proc::Executor>(simulator, *process, costs);
    executor->set_max_burst(Time::from_us(200));  // frequent freeze safe-points
    deputy = std::make_unique<proc::Deputy>(simulator, fabric, wire, costs, kHome, 1,
                                            process->aspace().page_count(), ledger_init());
  }

  mem::PageLedger* ledger_init() {
    ledger = std::make_unique<mem::PageLedger>(
        mem::pages_for_bytes(pending_memory_), kHome);
    return ledger.get();
  }

  sim::Bytes pending_memory_{0};

  MigrationContext context() {
    return MigrationContext{simulator, fabric,   wire,  *process, *executor,
                            *deputy,   kHome,    kDest, costs,    costs,
                            ledger.get(),
                            [this] { before_resume_called = true; },
                            /*src_node=*/nullptr, /*dst_node=*/nullptr,
                            /*reliability=*/{}};
  }

  // Runs until the migration completes (the sim halts at resume so that
  // lightweight schemes do not fault without a policy). Tests that need the
  // process to finish call simulator.run() again afterwards.
  void run_migration(MigrationEngine& engine, sim::Bytes memory,
                     std::vector<Ref> refs = {}) {
    pending_memory_ = memory;
    make_process(memory, std::move(refs));
    executor->start();
    simulator.schedule_at(Time::from_ms(1), [&, this] {
      migrate_process(context(), engine, [this](MigrationResult r) {
        result = r;
        simulator.halt();
      });
    });
    simulator.run();
    ASSERT_TRUE(result.has_value());
  }
};

TEST_F(MigrationFixture, FullCopyTransfersAllDirtyPages) {
  FullCopyEngine engine;
  run_migration(engine, 8 * sim::kMiB);
  const auto pages = process->aspace().page_count();
  EXPECT_EQ(result->pages_transferred, pages);
  EXPECT_TRUE(before_resume_called);
  // Everything stays Local at the destination; no remote pages remain.
  EXPECT_EQ(process->aspace().local_pages(), pages);
  EXPECT_EQ(process->aspace().remote_pages(), 0u);
  EXPECT_EQ(deputy->hpt().count_remote(), pages);
  EXPECT_EQ(deputy->hpt().count_here(), 0u);
  EXPECT_EQ(ledger->total_transfers(), pages);
  EXPECT_TRUE(ledger->at_most_one_transfer_each());
  EXPECT_EQ(process->current_node(), kDest);
}

TEST_F(MigrationFixture, FullCopyFreezeDominatedByWireTime) {
  FullCopyEngine engine;
  run_migration(engine, 8 * sim::kMiB);
  const auto pages = static_cast<std::int64_t>(process->aspace().page_count());
  const Time wire_time =
      fabric.default_link().bandwidth.transfer_time(wire.page_message_bytes()) * pages;
  EXPECT_GE(result->freeze_time(), wire_time);
  EXPECT_LE(result->freeze_time(), wire_time + Time::from_ms(200));
}

TEST_F(MigrationFixture, FullCopyBytesAccountPcbAndPages) {
  FullCopyEngine engine;
  run_migration(engine, 4 * sim::kMiB);
  const auto pages = process->aspace().page_count();
  EXPECT_EQ(result->bytes_transferred,
            wire.pcb_bytes + pages * wire.page_message_bytes());
}

TEST_F(MigrationFixture, ThreePageLeavesRestAtHome) {
  ThreePageEngine engine;
  // Touch some pages first so "current pages" are meaningful.
  std::vector<Ref> refs;
  for (int i = 0; i < 500; ++i) {
    refs.push_back(Ref{300 + static_cast<mem::PageId>(i % 50), Time::from_us(20),
                       Ref::Kind::Memory});
  }
  run_migration(engine, 8 * sim::kMiB, std::move(refs));
  EXPECT_LE(result->pages_transferred, 3u);
  EXPECT_GE(result->pages_transferred, 1u);
  const auto pages = process->aspace().page_count();
  EXPECT_EQ(process->aspace().local_pages(), result->pages_transferred);
  EXPECT_EQ(process->aspace().remote_pages(), pages - result->pages_transferred);
  EXPECT_EQ(deputy->hpt().count_here(), pages - result->pages_transferred);
  EXPECT_EQ(ledger->total_transfers(), result->pages_transferred);
}

TEST_F(MigrationFixture, ThreePageFreezeIsTiny) {
  ThreePageEngine engine;
  run_migration(engine, 64 * sim::kMiB);
  // Paper Fig. 5: ~0.07 s regardless of process size.
  EXPECT_LT(result->freeze_time(), Time::from_ms(150));
  EXPECT_GT(result->freeze_time(), Time::from_ms(40));
}

TEST_F(MigrationFixture, AmpomShipsMasterPageTable) {
  AmpomEngine engine;
  run_migration(engine, 8 * sim::kMiB);
  const auto pages = process->aspace().page_count();
  // Bytes = PCB + carried pages + MPT (6 B per page).
  EXPECT_EQ(result->bytes_transferred,
            wire.pcb_bytes + result->pages_transferred * wire.page_message_bytes() +
                pages * mem::kMptEntryBytes);
}

TEST_F(MigrationFixture, AmpomFreezeGrowsWithPageCount) {
  AmpomEngine engine;
  run_migration(engine, 8 * sim::kMiB);
  const auto pages = static_cast<std::int64_t>(process->aspace().page_count());
  // Freeze must include the per-entry MPT pack + unpack costs.
  const Time mpt_cost = costs.mpt_pack_entry * pages + costs.mpt_unpack_entry * pages;
  EXPECT_GE(result->freeze_time(), mpt_cost);
  // ...but stays far below a full copy.
  const Time full_copy =
      fabric.default_link().bandwidth.transfer_time(wire.page_message_bytes()) * pages;
  EXPECT_LT(result->freeze_time(), full_copy / 4);
}

TEST_F(MigrationFixture, ExecutionResumesAfterMigration) {
  // Refs keep flowing after the freeze; with FullCopy everything is local.
  std::vector<Ref> refs;
  for (int i = 0; i < 500; ++i) {
    refs.push_back(Ref{300 + static_cast<mem::PageId>(i % 64), Time::from_us(20),
                       Ref::Kind::Memory});
  }
  FullCopyEngine engine;
  run_migration(engine, 4 * sim::kMiB, std::move(refs));
  simulator.run();  // continue to completion
  EXPECT_TRUE(executor->stats().finished);
  EXPECT_EQ(executor->stats().refs_consumed, 500u);
  EXPECT_EQ(executor->stats().hard_faults, 0u);  // openMosix: no remote faults
}

TEST_F(MigrationFixture, MigrateToSelfRejected) {
  pending_memory_ = sim::kMiB;
  make_process(sim::kMiB);
  FullCopyEngine engine;
  MigrationContext ctx = context();
  ctx.dst = kHome;
  EXPECT_THROW(migrate_process(std::move(ctx), engine, {}), std::invalid_argument);
}

TEST_F(MigrationFixture, EngineNamesMatchPaperSchemes) {
  EXPECT_STREQ(FullCopyEngine{}.name(), "openMosix");
  EXPECT_STREQ(ThreePageEngine{}.name(), "NoPrefetch");
  EXPECT_STREQ(AmpomEngine{}.name(), "AMPoM");
}

TEST_F(MigrationFixture, ChunkSizeValidation) {
  EXPECT_THROW(FullCopyEngine{0}, std::invalid_argument);
}

// ---------------------------------------------------------------------------
// CPMD calibration table (warm-up delay after a migration, DESIGN.md §17)
// ---------------------------------------------------------------------------

TEST(CpmdTable, InterpolatesBetweenCalibrationPoints) {
  const CpmdTable table = CpmdTable::parse("100 1000\n200 3000\n");
  // Exactly on a point.
  EXPECT_EQ(table.warmup_delay(100 * 1024), Time::from_us(1000));
  EXPECT_EQ(table.warmup_delay(200 * 1024), Time::from_us(3000));
  // Halfway: linear in WSS.
  EXPECT_EQ(table.warmup_delay(150 * 1024), Time::from_us(2000));
}

TEST(CpmdTable, ClampsAtBothEnds) {
  const CpmdTable table = CpmdTable::parse("100 1000\n200 3000\n");
  EXPECT_EQ(table.warmup_delay(0), Time::from_us(1000));
  EXPECT_EQ(table.warmup_delay(1024), Time::from_us(1000));
  EXPECT_EQ(table.warmup_delay(1 * sim::kGiB), Time::from_us(3000));
}

TEST(CpmdTable, BuiltinCurveIsMonotone) {
  const CpmdTable table = CpmdTable::builtin();
  ASSERT_FALSE(table.empty());
  for (std::size_t i = 1; i < table.points().size(); ++i) {
    EXPECT_GT(table.points()[i].wss_kib, table.points()[i - 1].wss_kib);
    EXPECT_GT(table.points()[i].delay_us, table.points()[i - 1].delay_us);
  }
}

TEST(CpmdTable, ParseSkipsCommentsAndBlankLines) {
  const CpmdTable table = CpmdTable::parse(
      "# CPMD calibration\n"
      "\n"
      "4 18   # one hot page\n"
      "64 95\n");
  ASSERT_EQ(table.points().size(), 2u);
  EXPECT_DOUBLE_EQ(table.points()[0].wss_kib, 4.0);
  EXPECT_DOUBLE_EQ(table.points()[1].delay_us, 95.0);
}

TEST(CpmdTable, ParseErrorsNameTheLine) {
  const auto message_of = [](const std::string& text) {
    try {
      (void)CpmdTable::parse(text);
    } catch (const std::invalid_argument& e) {
      return std::string{e.what()};
    }
    return std::string{};
  };
  EXPECT_NE(message_of("4 18\n64\n").find("line 2"), std::string::npos);
  EXPECT_NE(message_of("4 18 junk\n").find("trailing tokens"), std::string::npos);
  EXPECT_NE(message_of("0 18\n").find("must be positive"), std::string::npos);
  EXPECT_NE(message_of("4 -1\n").find("non-negative"), std::string::npos);
  EXPECT_NE(message_of("4 18\n4 20\n").find("strictly increasing"), std::string::npos);
  EXPECT_NE(message_of("# only comments\n").find("no data points"), std::string::npos);
}

TEST(CpmdTable, CommittedCalibrationFileMatchesTheBuiltinCurve) {
  // data/cpmd_calibration.txt ships the built-in curve as a starting point;
  // the two must agree so a run with or without the file is identical.
  const CpmdTable file = CpmdTable::load_file(AMPOM_SOURCE_DIR "/data/cpmd_calibration.txt");
  const CpmdTable built = CpmdTable::builtin();
  ASSERT_EQ(file.points().size(), built.points().size());
  for (std::size_t i = 0; i < file.points().size(); ++i) {
    EXPECT_DOUBLE_EQ(file.points()[i].wss_kib, built.points()[i].wss_kib) << "point " << i;
    EXPECT_DOUBLE_EQ(file.points()[i].delay_us, built.points()[i].delay_us) << "point " << i;
  }
}

TEST(CpmdTable, LoadFileRejectsMissingPath) {
  EXPECT_THROW((void)CpmdTable::load_file("/nonexistent/cpmd.txt"), std::invalid_argument);
}

}  // namespace
}  // namespace ampom::migration
