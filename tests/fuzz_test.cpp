// ampom_fuzz internals: deterministic generation, exact repro round-trips,
// clean runs on healthy seeds, and the acceptance check for the shrinker —
// a seeded mutation case must reduce to a handful of nodes and faults.

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "ampom_fuzz/fuzz.hpp"

namespace ampom::fuzz {
namespace {

TEST(FuzzGenerate, DeterministicPerSeed) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const FuzzCase a = generate_case(seed);
    const FuzzCase b = generate_case(seed);
    EXPECT_EQ(serialize_case(a), serialize_case(b)) << "seed " << seed;
    EXPECT_GE(a.nodes, 3u);
    EXPECT_LE(a.nodes, 7u);
    EXPECT_GE(a.jobs.size(), 1u);
    EXPECT_LE(a.drop_pct, 15u);
    EXPECT_TRUE(a.chaos.active());
    for (const FuzzJob& job : a.jobs) {
      EXPECT_EQ(job.home, 0u);  // homes always survive by construction
      if (job.migrate_at > sim::Time::zero()) {
        EXPECT_GE(job.migrate_dst, 1u);
        EXPECT_LT(job.migrate_dst, a.nodes);
      }
    }
  }
  // Different seeds explore different scenarios.
  EXPECT_NE(serialize_case(generate_case(1)), serialize_case(generate_case(2)));
}

TEST(FuzzRepro, SerializeParseRoundTripsExactly) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const std::string text = serialize_case(generate_case(seed));
    EXPECT_EQ(serialize_case(parse_case(text)), text) << "seed " << seed;
  }
}

TEST(FuzzRepro, ParseRejectsMalformedInput) {
  EXPECT_THROW((void)parse_case(""), std::invalid_argument);
  EXPECT_THROW((void)parse_case("not a repro file\n"), std::invalid_argument);
  EXPECT_THROW((void)parse_case("# ampom_fuzz repro v1\nnodes 4\n"),
               std::invalid_argument);  // no seed
  EXPECT_THROW((void)parse_case("# ampom_fuzz repro v1\nseed 1\nnodes 1\n"),
               std::invalid_argument);  // cluster too small
  EXPECT_THROW((void)parse_case("# ampom_fuzz repro v1\nseed 1\nnodes four\n"),
               std::invalid_argument);  // non-numeric scalar
  EXPECT_THROW(
      (void)parse_case("# ampom_fuzz repro v1\nseed 1\nnodes 4\n"
                       "job home=0 memory_mib=4 hot_pages=64 touches=notanint "
                       "cold_pct=5 migrate_at_ms=0 migrate_dst=0\n"),
      std::invalid_argument);
}

TEST(FuzzRun, HealthySeedsPassUnderAuditor) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const FuzzCase fuzz_case = generate_case(seed);
    const FuzzResult result = run_case(fuzz_case);
    EXPECT_TRUE(result.ok) << "seed " << seed << ": " << result.failure;
    EXPECT_TRUE(result.finished) << "seed " << seed;
    EXPECT_EQ(result.violations, 0u) << "seed " << seed;
  }
}

TEST(FuzzRun, CachePolicyCaseRunsCleanAndRoundTrips) {
  // Force the cache-aware placement + hierarchy path regardless of what the
  // seed sampled: CPMD charges under chaos must not trip any invariant.
  FuzzCase fuzz_case = generate_case(3);
  fuzz_case.cache_policy = true;
  const FuzzResult result = run_case(fuzz_case);
  EXPECT_TRUE(result.ok) << result.failure;
  EXPECT_TRUE(result.finished);
  const FuzzCase parsed = parse_case(serialize_case(fuzz_case));
  EXPECT_TRUE(parsed.cache_policy);
}

// The fuzzer's own determinism: a failing case fails the same way twice.
// (Uses the mutation so a failure is guaranteed without hunting seeds.)
FuzzCase mutation_case() {
  FuzzCase fuzz_case;
  fuzz_case.seed = 11;
  fuzz_case.nodes = 5;
  fuzz_case.mutate_skip_abort_rollback = true;
  FuzzJob job;
  job.memory_mib = 4;
  job.hot_pages = 64;
  job.touches = 40000;
  job.migrate_at = sim::Time::from_ms(1500);
  job.migrate_dst = 2;
  fuzz_case.jobs.push_back(job);
  // The destination dies mid-transfer: the mutated engine commits the page
  // repartition early and skips the abort rollback.
  fuzz_case.chaos.zone_outages.push_back(
      {{2}, sim::Time::from_ms(1400), sim::Time::from_ms(3000)});
  return fuzz_case;
}

TEST(FuzzRun, MutationCaseFailsDeterministically) {
  const FuzzResult first = run_case(mutation_case());
  const FuzzResult second = run_case(mutation_case());
  ASSERT_FALSE(first.ok);
  EXPECT_EQ(first.failure, second.failure);
  EXPECT_NE(first.failure.find("owned by the lost destination"), std::string::npos)
      << first.failure;
  EXPECT_NE(first.trail, "");
}

// Acceptance: the shrinker reduces the mutation case to a minimal repro —
// few nodes, few faults — that still fails for the same reason.
TEST(FuzzShrink, ReducesMutationCaseToMinimalRepro) {
  ShrinkStats stats;
  const FuzzCase shrunk = shrink_case(mutation_case(), &stats);
  EXPECT_GT(stats.attempts, 0u);
  EXPECT_GT(stats.accepted, 0u);

  EXPECT_LE(shrunk.nodes, 4u);
  EXPECT_LE(shrunk.fault_count(), 8u);
  EXPECT_EQ(shrunk.jobs.size(), 1u);
  EXPECT_LE(shrunk.jobs[0].touches, mutation_case().jobs[0].touches);

  // The shrunken case still fails identically, and survives a repro
  // round-trip: parse(serialize(shrunk)) reproduces the same violation.
  const FuzzResult direct = run_case(shrunk);
  ASSERT_FALSE(direct.ok);
  EXPECT_NE(direct.failure.find("owned by the lost destination"), std::string::npos);
  const FuzzResult replayed = run_case(parse_case(serialize_case(shrunk)));
  ASSERT_FALSE(replayed.ok);
  EXPECT_EQ(replayed.failure, direct.failure);
}

// A case whose every job sits behind a permanently dead home can never
// finish; run_case must convert that hang into a reportable failure.
TEST(FuzzRun, LivelockBecomesReportableFailure) {
  FuzzCase fuzz_case;
  fuzz_case.seed = 5;
  fuzz_case.nodes = 3;
  fuzz_case.deadline = sim::Time::from_sec(5);
  FuzzJob job;
  job.touches = 40000;
  fuzz_case.jobs.push_back(job);
  // Node 0 is the home of every job; killing it wedges the run. Generated
  // campaigns never do this — only a hand-built case can.
  fuzz_case.chaos.zone_outages.push_back({{0}, sim::Time::from_ms(1200), {}});

  const FuzzResult result = run_case(fuzz_case);
  EXPECT_FALSE(result.ok);
  EXPECT_FALSE(result.finished);
  EXPECT_NE(result.failure.find("livelock"), std::string::npos) << result.failure;
}

}  // namespace
}  // namespace ampom::fuzz
