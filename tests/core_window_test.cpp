// Unit tests for the lookback window W and its T/C companion arrays.

#include <gtest/gtest.h>

#include "core/lookback_window.hpp"

namespace ampom::core {
namespace {

using sim::Time;

TEST(LookbackWindow, CapacityBounds) {
  EXPECT_THROW(LookbackWindow{1}, std::invalid_argument);
  EXPECT_THROW(LookbackWindow{65}, std::invalid_argument);
  EXPECT_NO_THROW(LookbackWindow{2});
  EXPECT_NO_THROW(LookbackWindow{64});
}

TEST(LookbackWindow, RecordsInOrder) {
  LookbackWindow w{4};
  EXPECT_TRUE(w.record(10, Time::from_ms(1), 0.5));
  EXPECT_TRUE(w.record(20, Time::from_ms(2), 0.6));
  EXPECT_EQ(w.size(), 2u);
  EXPECT_FALSE(w.full());
  EXPECT_EQ(w.page(0), 10u);
  EXPECT_EQ(w.page(1), 20u);
  EXPECT_EQ(w.last_page(), 20u);
  EXPECT_EQ(w.at(1).cpu, 0.6);
}

TEST(LookbackWindow, ConsecutiveRepeatsCollapse) {
  // Paper §3.1: consecutive repeated references are temporal locality and
  // count as a single page reference.
  LookbackWindow w{4};
  EXPECT_TRUE(w.record(10, Time::from_ms(1), 1.0));
  EXPECT_FALSE(w.record(10, Time::from_ms(2), 1.0));
  EXPECT_FALSE(w.record(10, Time::from_ms(3), 1.0));
  EXPECT_EQ(w.size(), 1u);
  EXPECT_TRUE(w.record(11, Time::from_ms(4), 1.0));
  EXPECT_TRUE(w.record(10, Time::from_ms(5), 1.0));  // non-consecutive repeat is fine
  EXPECT_EQ(w.size(), 3u);
}

TEST(LookbackWindow, OldestIsDiscardedWhenFull) {
  LookbackWindow w{3};
  for (mem::PageId p = 1; p <= 5; ++p) {
    w.record(p, Time::from_ms(static_cast<std::int64_t>(p)), 1.0);
  }
  EXPECT_TRUE(w.full());
  EXPECT_EQ(w.page(0), 3u);
  EXPECT_EQ(w.page(1), 4u);
  EXPECT_EQ(w.page(2), 5u);
}

TEST(LookbackWindow, TimesTrackOldestAndNewest) {
  LookbackWindow w{3};
  w.record(1, Time::from_ms(10), 1.0);
  w.record(2, Time::from_ms(20), 1.0);
  w.record(3, Time::from_ms(30), 1.0);
  w.record(4, Time::from_ms(40), 1.0);
  EXPECT_EQ(w.first_time(), Time::from_ms(20));
  EXPECT_EQ(w.last_time(), Time::from_ms(40));
}

TEST(LookbackWindow, PagingRateFromWindowSpan) {
  // r = l / (T_l - T_1): 3 entries over 20 ms.
  LookbackWindow w{8};
  w.record(1, Time::from_ms(0), 1.0);
  w.record(2, Time::from_ms(10), 1.0);
  w.record(3, Time::from_ms(20), 1.0);
  EXPECT_NEAR(w.paging_rate_hz(), 3.0 / 0.020, 1e-9);
}

TEST(LookbackWindow, PagingRateDegenerateCases) {
  LookbackWindow w{8};
  EXPECT_EQ(w.paging_rate_hz(), 0.0);
  w.record(1, Time::from_ms(5), 1.0);
  EXPECT_EQ(w.paging_rate_hz(), 0.0);  // single entry
  w.record(2, Time::from_ms(5), 1.0);
  EXPECT_EQ(w.paging_rate_hz(), 0.0);  // zero span
}

TEST(LookbackWindow, CpuStatistics) {
  LookbackWindow w{4};
  w.record(1, Time::from_ms(1), 0.2);
  w.record(2, Time::from_ms(2), 0.4);
  w.record(3, Time::from_ms(3), 0.9);
  EXPECT_NEAR(w.mean_cpu(), 0.5, 1e-12);
  EXPECT_NEAR(w.last_cpu(), 0.9, 1e-12);
}

TEST(LookbackWindow, OutOfRangeAtThrows) {
  LookbackWindow w{4};
  w.record(1, Time::from_ms(1), 1.0);
  EXPECT_THROW(static_cast<void>(w.at(1)), std::out_of_range);
}

TEST(LookbackWindow, ClearResets) {
  LookbackWindow w{4};
  w.record(1, Time::from_ms(1), 1.0);
  w.record(2, Time::from_ms(2), 1.0);
  w.clear();
  EXPECT_EQ(w.size(), 0u);
  EXPECT_TRUE(w.record(1, Time::from_ms(3), 1.0));  // no collapse after clear
}

TEST(LookbackWindow, RingWrapsManyTimes) {
  LookbackWindow w{5};
  for (mem::PageId p = 0; p < 1000; p += 2) {  // +2: avoid consecutive repeats
    w.record(p, Time::from_ms(static_cast<std::int64_t>(p)), 1.0);
  }
  EXPECT_EQ(w.size(), 5u);
  EXPECT_EQ(w.page(4), 998u);
  EXPECT_EQ(w.page(0), 990u);
}

}  // namespace
}  // namespace ampom::core
