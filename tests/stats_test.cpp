// Unit tests for the stats layer (tables, summaries, series, counters) and
// the simcore formatting/logging helpers.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "simcore/fmt.hpp"
#include "simcore/log.hpp"
#include "stats/counters.hpp"
#include "stats/series.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"

namespace ampom {
namespace {

TEST(Strfmt, FormatsLikePrintf) {
  EXPECT_EQ(sim::strfmt("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(sim::strfmt("%.2f", 3.14159), "3.14");
  EXPECT_EQ(sim::strfmt("empty"), "empty");
  // Long output beyond any small-string buffer.
  const std::string long_out = sim::strfmt("%0200d", 7);
  EXPECT_EQ(long_out.size(), 200u);
}

TEST(TimeStr, HumanReadableUnits) {
  EXPECT_EQ(sim::Time::zero().str(), "0s");
  EXPECT_EQ(sim::Time::from_sec(1.5).str(), "1.500s");
  EXPECT_EQ(sim::Time::from_ms(12).str(), "12.000ms");
  EXPECT_EQ(sim::Time::from_us(7).str(), "7.000us");
}

TEST(Logger, RespectsLevelAndSink) {
  std::ostringstream sink;
  sim::Logger logger{sim::LogLevel::Info, &sink};
  AMPOM_LOG(logger, sim::LogLevel::Debug, sim::Time::zero(), "test", "hidden %d", 1);
  AMPOM_LOG(logger, sim::LogLevel::Warn, sim::Time::from_sec(2.0), "test", "visible %d", 2);
  const std::string out = sink.str();
  EXPECT_EQ(out.find("hidden"), std::string::npos);
  EXPECT_NE(out.find("visible 2"), std::string::npos);
  EXPECT_NE(out.find("WARN"), std::string::npos);
}

TEST(Logger, IndependentLoggersDoNotShareState) {
  // Loggers are per-run values now (the process-wide singleton is gone);
  // two of them never observe each other's level or sink.
  std::ostringstream a_sink;
  std::ostringstream b_sink;
  sim::Logger a{sim::LogLevel::Debug, &a_sink};
  sim::Logger b{sim::LogLevel::Error, &b_sink};
  AMPOM_LOG(a, sim::LogLevel::Debug, sim::Time::zero(), "test", "a says %d", 1);
  AMPOM_LOG(b, sim::LogLevel::Debug, sim::Time::zero(), "test", "b says %d", 2);
  EXPECT_NE(a_sink.str().find("a says 1"), std::string::npos);
  EXPECT_TRUE(b_sink.str().empty());
}

TEST(Summary, OrderStatistics) {
  stats::Summary s;
  for (const double v : {5.0, 1.0, 3.0, 2.0, 4.0}) {
    s.add(v);
  }
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.sum(), 15.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.25), 2.0);
}

TEST(Summary, PercentileInterpolates) {
  stats::Summary s;
  s.add(0.0);
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.9), 9.0);
}

TEST(Summary, StddevOfConstantIsZero) {
  stats::Summary s;
  s.add(4.0);
  s.add(4.0);
  s.add(4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Summary, EmptySampleOrderStatisticsAreNaN) {
  // Order statistics of an empty sample are undefined; they must come back
  // as NaN, never index into the empty vector (UB that a Release build
  // happily "survives" by reading garbage — this pins the fix).
  const stats::Summary s;
  EXPECT_TRUE(s.empty());
  EXPECT_TRUE(std::isnan(s.min()));
  EXPECT_TRUE(std::isnan(s.max()));
  EXPECT_TRUE(std::isnan(s.median()));
  EXPECT_TRUE(std::isnan(s.percentile(0.0)));
  EXPECT_TRUE(std::isnan(s.percentile(0.5)));
  EXPECT_TRUE(std::isnan(s.percentile(1.0)));
}

TEST(Summary, AddAfterSortStaysCorrect) {
  stats::Summary s;
  s.add(3.0);
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.median(), 2.0);
  s.add(100.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
}

TEST(Series, CollectsPoints) {
  stats::Series series{"AMPoM"};
  EXPECT_TRUE(series.empty());
  series.add(115, 0.19);
  series.add(575, 0.68);
  EXPECT_EQ(series.name(), "AMPoM");
  EXPECT_EQ(series.size(), 2u);
  EXPECT_DOUBLE_EQ(series.last_y(), 0.68);
  EXPECT_DOUBLE_EQ(series.points()[0].second, 0.19);
}

TEST(Counters, AccumulateAndReset) {
  stats::Counters c;
  c.add("faults");
  c.add("faults", 4);
  c.add("pages", 10);
  EXPECT_EQ(c.get("faults"), 5u);
  EXPECT_EQ(c.get("pages"), 10u);
  EXPECT_EQ(c.get("missing"), 0u);
  EXPECT_EQ(c.all().size(), 2u);
  c.reset();
  EXPECT_EQ(c.get("faults"), 0u);
}

TEST(Table, PrintsAlignedColumns) {
  stats::Table t{"demo", {"name", "value"}};
  t.add_row({"short", "1"});
  t.add_row({"a-much-longer-name", "22"});
  std::ostringstream out;
  t.print(out);
  const std::string s = out.str();
  EXPECT_NE(s.find("== demo =="), std::string::npos);
  EXPECT_NE(s.find("a-much-longer-name"), std::string::npos);
  // Both value cells start at the same column.
  const auto line_with = [&](const std::string& needle) {
    const auto pos = s.find(needle);
    const auto start = s.rfind('\n', pos) + 1;
    return s.substr(start, s.find('\n', pos) - start);
  };
  EXPECT_EQ(line_with("short").find('1'), line_with("a-much-longer-name").find("22"));
}

TEST(Table, CsvEscapesSpecialCharacters) {
  stats::Table t{"demo", {"a", "b"}};
  t.add_row({"plain", "with,comma"});
  t.add_row({"with\"quote", "x"});
  std::ostringstream out;
  t.write_csv(out);
  const std::string s = out.str();
  EXPECT_NE(s.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(s.find("\"with\"\"quote\""), std::string::npos);
}

TEST(Table, NumericHelpers) {
  EXPECT_EQ(stats::Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(stats::Table::integer(42), "42");
  EXPECT_EQ(stats::Table::percent(0.1234), "12.3%");
  EXPECT_EQ(stats::Table::percent(0.5, 0), "50%");
}

TEST(Table, RowAccess) {
  stats::Table t{"demo", {"a"}};
  t.add_row({"x"});
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_EQ(t.row(0)[0], "x");
  EXPECT_EQ(t.title(), "demo");
}

}  // namespace
}  // namespace ampom
