// Tests of the cluster layer: the InfoDaemon's three measurements (RTT,
// available bandwidth, peer load) and the node message router.

#include <gtest/gtest.h>

#include "cluster/infod.hpp"
#include "cluster/node.hpp"
#include "net/background_traffic.hpp"
#include "simcore/simulator.hpp"

namespace ampom::cluster {
namespace {

using sim::Time;

struct ClusterFixture : ::testing::Test {
  sim::Simulator simulator;
  net::Fabric fabric{simulator, 3};
  proc::NodeCosts costs;
  Node node0{simulator, fabric, 0, costs};
  Node node1{simulator, fabric, 1, costs};
  InfoDaemon infod0{simulator, fabric, 0, Time::from_ms(100)};
  InfoDaemon infod1{simulator, fabric, 1, Time::from_ms(100)};

  void wire_daemons() {
    infod0.add_peer(1);
    infod1.add_peer(0);
    node0.set_infod(&infod0);
    node1.set_infod(&infod1);
    infod0.start();
    infod1.start();
  }
};

TEST_F(ClusterFixture, RttPriorBeforeMeasurement) {
  infod0.add_peer(1);
  EXPECT_EQ(infod0.rtt_one_way(1), Time::from_us(150));   // half the 300 us prior
  EXPECT_EQ(infod0.rtt_one_way(99), Time::from_us(300));  // unknown peer
}

TEST_F(ClusterFixture, RttMeasuredFromPingAcks) {
  wire_daemons();
  simulator.run_until(Time::from_sec(2));
  // One-way on an idle link: latency + control serialization ~ 80 us.
  const Time t0 = infod1.rtt_one_way(0);
  EXPECT_GT(t0, Time::from_us(60));
  EXPECT_LT(t0, Time::from_us(120));
  EXPECT_GT(infod1.acks_received(), 10u);
  EXPECT_GT(infod0.pings_sent(), 10u);
}

TEST_F(ClusterFixture, RttReflectsSlowLink) {
  fabric.set_link(0, 1, net::LinkParams{sim::Bandwidth::mbits_per_sec(6), Time::from_ms(2)});
  wire_daemons();
  simulator.run_until(Time::from_sec(2));
  const Time t0 = infod1.rtt_one_way(0);
  EXPECT_GT(t0, Time::from_ms(1));  // ~2 ms one-way
  EXPECT_LT(t0, Time::from_ms(4));
}

TEST_F(ClusterFixture, AvailableBandwidthNominalWhenIdle) {
  wire_daemons();
  simulator.run_until(Time::from_sec(1));
  // Only ping traffic: nearly the nominal 100 Mb/s.
  EXPECT_GT(infod1.available_bandwidth().bps(), 95'000'000u);
}

TEST_F(ClusterFixture, AvailableBandwidthDropsUnderLoad) {
  wire_daemons();
  net::BackgroundTraffic traffic{simulator, fabric, 2, 1, /*load=*/0.6};
  traffic.start();
  simulator.run_until(Time::from_sec(5));
  const auto avail = infod1.available_bandwidth().bps();
  EXPECT_LT(avail, 70'000'000u);
  EXPECT_GE(avail, 5'000'000u);  // the 5% floor holds
}

TEST_F(ClusterFixture, PeerLoadPropagatesThroughPings) {
  infod0.set_local_load_source([] { return 0.75; });
  wire_daemons();
  simulator.run_until(Time::from_sec(1));
  EXPECT_DOUBLE_EQ(infod1.known_load(0), 0.75);
  EXPECT_DOUBLE_EQ(infod0.known_load(1), 0.0);
}

TEST_F(ClusterFixture, NodeBackgroundLoadAndCpuShare) {
  node0.set_background_load(0.3);
  EXPECT_DOUBLE_EQ(node0.cpu_share(), 0.7);
  EXPECT_THROW(node0.set_background_load(1.0), std::invalid_argument);
  EXPECT_THROW(node0.set_background_load(-0.1), std::invalid_argument);
}

TEST_F(ClusterFixture, DispatchWithoutComponentThrows) {
  fabric.send(net::Message{0, 1, 5000, net::PageRequest{1, 1, {5}, 5}});
  EXPECT_THROW(simulator.run(), std::logic_error);
}

TEST_F(ClusterFixture, BackgroundAndMigrationChunksIgnoredGracefully) {
  fabric.send(net::Message{0, 1, 5000, net::Background{}});
  fabric.send(net::Message{
      0, 1, 5000, net::MigrationChunk{1, net::MigrationChunk::Kind::Pcb, 1, true}});
  EXPECT_NO_THROW(simulator.run());
}

TEST_F(ClusterFixture, StopHaltsPings) {
  wire_daemons();
  simulator.run_until(Time::from_sec(1));
  infod0.stop();
  const auto sent = infod0.pings_sent();
  simulator.run_until(Time::from_sec(2));
  EXPECT_EQ(infod0.pings_sent(), sent);
}

}  // namespace
}  // namespace ampom::cluster
