// Tests of the dependent-zone sizing (Eq. 3) and page selection (§3.4).

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>

#include "core/dependent_zone.hpp"

namespace ampom::core {
namespace {

using sim::Time;

LookbackWindow make_window(const std::vector<mem::PageId>& pages) {
  LookbackWindow w{std::max<std::size_t>(pages.size(), 2)};
  std::int64_t t = 0;
  for (const mem::PageId p : pages) {
    w.record(p, Time::from_us(++t), 1.0);
  }
  return w;
}

AmpomConfig no_floor_config() {
  AmpomConfig cfg;
  cfg.min_zone = 0;
  return cfg;
}

TEST(ZoneSize, MatchesEquationThree) {
  // N = (c'/c) * S * (r*(2t0+td) + 1)
  ZoneInputs in;
  in.locality_score = 0.5;
  in.paging_rate_hz = 1000.0;
  in.cpu_mean = 0.5;
  in.cpu_next = 1.0;
  in.rtt_one_way = Time::from_us(100);   // 2t0 = 200 us
  in.page_transfer = Time::from_us(300);  // t0*2 + td = 500 us
  // N = 2 * 0.5 * (1000*0.0005 + 1) = 1.5 -> rounds to 2.
  EXPECT_EQ(zone_size(in, no_floor_config()), 2u);
}

TEST(ZoneSize, GrowsWithPagingRate) {
  ZoneInputs in;
  in.locality_score = 1.0;
  in.cpu_mean = 1.0;
  in.cpu_next = 1.0;
  in.rtt_one_way = Time::from_us(100);
  in.page_transfer = Time::from_us(300);
  in.paging_rate_hz = 1000.0;
  const auto slow = zone_size(in, no_floor_config());
  in.paging_rate_hz = 10000.0;
  const auto fast = zone_size(in, no_floor_config());
  EXPECT_GT(fast, slow);
}

TEST(ZoneSize, GrowsWithLocality) {
  ZoneInputs in;
  in.paging_rate_hz = 5000.0;
  in.cpu_mean = 1.0;
  in.cpu_next = 1.0;
  in.rtt_one_way = Time::from_us(100);
  in.page_transfer = Time::from_us(300);
  in.locality_score = 0.2;
  const auto low = zone_size(in, no_floor_config());
  in.locality_score = 0.9;
  EXPECT_GT(zone_size(in, no_floor_config()), low);
}

TEST(ZoneSize, GrowsWhenNetworkIsBusy) {
  // Busier network -> larger td -> longer pipeline to hide (§3.5).
  ZoneInputs in;
  in.locality_score = 1.0;
  in.paging_rate_hz = 5000.0;
  in.cpu_mean = 1.0;
  in.cpu_next = 1.0;
  in.rtt_one_way = Time::from_us(100);
  in.page_transfer = Time::from_us(300);
  const auto idle = zone_size(in, no_floor_config());
  in.page_transfer = Time::from_ms(3);  // available bandwidth collapsed
  EXPECT_GT(zone_size(in, no_floor_config()), idle);
}

TEST(ZoneSize, GrowsWithExpectedCpuHeadroom) {
  // c'/c > 1: the process could consume faster than it recently did.
  ZoneInputs in;
  in.locality_score = 1.0;
  in.paging_rate_hz = 2000.0;
  in.rtt_one_way = Time::from_us(100);
  in.page_transfer = Time::from_us(300);
  in.cpu_mean = 1.0;
  in.cpu_next = 1.0;
  const auto flat = zone_size(in, no_floor_config());
  in.cpu_mean = 0.1;  // it was starved...
  in.cpu_next = 1.0;  // ...but will have a full CPU
  EXPECT_GT(zone_size(in, no_floor_config()), flat);
}

TEST(ZoneSize, ZeroLocalityFallsToFloor) {
  ZoneInputs in;
  in.locality_score = 0.0;
  in.paging_rate_hz = 5000.0;
  in.cpu_mean = 1.0;
  in.cpu_next = 1.0;
  AmpomConfig cfg;
  cfg.min_zone = 8;
  EXPECT_EQ(zone_size(in, cfg), 8u);  // the Linux-read-ahead baseline (§5.3)
  cfg.min_zone = 0;
  EXPECT_EQ(zone_size(in, cfg), 0u);
}

TEST(ZoneSize, CapBoundsTheResult) {
  ZoneInputs in;
  in.locality_score = 1.0;
  in.paging_rate_hz = 1e6;
  in.cpu_mean = 0.01;
  in.cpu_next = 1.0;
  in.rtt_one_way = Time::from_ms(10);
  in.page_transfer = Time::from_ms(10);
  AmpomConfig cfg;
  cfg.zone_cap = 64;
  EXPECT_EQ(zone_size(in, cfg), 64u);
}

TEST(ZoneSize, UnmeasurableRateUsesFallback) {
  ZoneInputs in;
  in.paging_rate_hz = 0.0;
  AmpomConfig cfg;
  cfg.fallback_zone = 5;
  EXPECT_EQ(zone_size(in, cfg), 5u);
}

TEST(SelectZone, ReadAheadWhenNoStreams) {
  // §3.4: no outstanding stream -> the N pages after r_l.
  const LookbackWindow w = make_window({40, 7, 90});
  const auto zone = select_zone(w, {}, 4, 1000);
  EXPECT_EQ(zone, (std::vector<mem::PageId>{91, 92, 93, 94}));
}

TEST(SelectZone, QuotaSplitsAcrossStreams) {
  const LookbackWindow w = make_window({1, 2, 3});
  const std::vector<StrideStream> streams{{1, 9, 100}, {2, 8, 200}};
  const auto zone = select_zone(w, streams, 6, 1000);
  ASSERT_EQ(zone.size(), 6u);
  EXPECT_EQ(std::count(zone.begin(), zone.end(), 100), 1);
  EXPECT_EQ(std::count(zone.begin(), zone.end(), 102), 1);
  EXPECT_EQ(std::count(zone.begin(), zone.end(), 200), 1);
  EXPECT_EQ(std::count(zone.begin(), zone.end(), 202), 1);
}

TEST(SelectZone, RemainderGoesToEarlierStreams) {
  const LookbackWindow w = make_window({1, 2});
  const std::vector<StrideStream> streams{{1, 9, 100}, {2, 8, 200}, {3, 7, 300}};
  const auto zone = select_zone(w, streams, 7, 1000);  // 3 + 2 + 2
  EXPECT_EQ(std::count(zone.begin(), zone.end(), 102), 1);
  EXPECT_EQ(std::count(zone.begin(), zone.end(), 103), 0);
  EXPECT_EQ(zone.size(), 7u);
}

TEST(SelectZone, SavedQuotaExtendsOverlappingStreams) {
  // §3.4: a page already dependent in another stream does not consume
  // quota; the stream extends further instead.
  const LookbackWindow w = make_window({1, 2});
  const std::vector<StrideStream> streams{{1, 9, 100}, {1, 8, 100}};
  const auto zone = select_zone(w, streams, 6, 1000);
  // Both streams share pivot 100; the second stream's quota extends past
  // the first stream's pages: 100,101,102 then 103,104,105.
  EXPECT_EQ(zone, (std::vector<mem::PageId>{100, 101, 102, 103, 104, 105}));
}

TEST(SelectZone, NoDuplicatesEver) {
  const LookbackWindow w = make_window({1, 2});
  const std::vector<StrideStream> streams{{1, 9, 10}, {2, 8, 12}, {3, 7, 11}};
  const auto zone = select_zone(w, streams, 9, 1000);
  std::unordered_set<mem::PageId> unique(zone.begin(), zone.end());
  EXPECT_EQ(unique.size(), zone.size());
}

TEST(SelectZone, ClipsAtAddressSpaceEnd) {
  const LookbackWindow w = make_window({1, 2});
  const std::vector<StrideStream> streams{{1, 9, 98}};
  const auto zone = select_zone(w, streams, 10, 100);
  EXPECT_EQ(zone, (std::vector<mem::PageId>{98, 99}));
}

TEST(SelectZone, ReadAheadClipsAtAddressSpaceEnd) {
  const LookbackWindow w = make_window({7, 97});
  const auto zone = select_zone(w, {}, 10, 100);
  EXPECT_EQ(zone, (std::vector<mem::PageId>{98, 99}));
}

TEST(SelectZone, ZeroZoneOrEmptyWindowYieldsNothing) {
  const LookbackWindow w = make_window({1, 2});
  EXPECT_TRUE(select_zone(w, {}, 0, 100).empty());
  LookbackWindow empty{4};
  EXPECT_TRUE(select_zone(empty, {}, 5, 100).empty());
}

TEST(SelectZone, PaperPivotsProduceExpectedZone) {
  // The §3.4 example's pivots are 16, 5, 6. With N = 3 and m = 3, each
  // stream contributes its pivot; pivot 6 of the third stream is fresh
  // (5's stream took page 5 only).
  const LookbackWindow w = make_window({13, 27, 7, 8, 14, 8, 3, 15, 4, 5});
  const std::vector<StrideStream> streams{{3, 7, 16}, {2, 8, 5}, {1, 9, 6}};
  const auto zone = select_zone(w, streams, 3, 1000);
  EXPECT_EQ(zone, (std::vector<mem::PageId>{16, 5, 6}));
}

}  // namespace
}  // namespace ampom::core
