// Tests of the spatial-locality score and outstanding-stream detection,
// anchored on the paper's own worked examples (§3.2 and §3.4).

#include <gtest/gtest.h>

#include <vector>

#include "core/locality.hpp"

namespace ampom::core {
namespace {

using sim::Time;

LookbackWindow make_window(const std::vector<mem::PageId>& pages, std::size_t capacity = 0) {
  LookbackWindow w{capacity == 0 ? std::max<std::size_t>(pages.size(), 2) : capacity};
  std::int64_t t = 0;
  for (const mem::PageId p : pages) {
    w.record(p, Time::from_us(++t), 1.0);
  }
  return w;
}

TEST(Locality, PaperExampleStride2Count) {
  // §3.2: {1,99,2,45,3,78,4} contains three stride-2 references and
  // stride_2 = 4 (pages 1, 2, 3, 4).
  const LookbackWindow w = make_window({1, 99, 2, 45, 3, 78, 4});
  LocalityAnalyzer analyzer{4};
  const auto counts = analyzer.stride_counts(w);
  EXPECT_EQ(counts[0], 0u);  // stride-1
  EXPECT_EQ(counts[1], 4u);  // stride-2
  EXPECT_EQ(counts[2], 0u);
  EXPECT_EQ(counts[3], 0u);
}

TEST(Locality, PaperExampleScoreQuarter) {
  // §3.2: {10,99,11,34,12,85} -> stride_2 = 3, S = 3/(6*2) = 0.25.
  const LookbackWindow w = make_window({10, 99, 11, 34, 12, 85});
  LocalityAnalyzer analyzer{4};
  const auto counts = analyzer.stride_counts(w);
  EXPECT_EQ(counts[1], 3u);
  EXPECT_DOUBLE_EQ(analyzer.score(w), 0.25);
}

TEST(Locality, PureSequentialScoresOne) {
  // §3.2: a process doing only sequential access has S = 1.
  const LookbackWindow w = make_window({1, 2, 3, 4, 5, 6, 7, 8});
  LocalityAnalyzer analyzer{4};
  EXPECT_DOUBLE_EQ(analyzer.score(w), 1.0);
}

TEST(Locality, ScatteredPagesScoreZero) {
  const LookbackWindow w = make_window({100, 7, 912, 55, 3000, 42});
  LocalityAnalyzer analyzer{4};
  EXPECT_DOUBLE_EQ(analyzer.score(w), 0.0);
}

TEST(Locality, ScoreAlwaysWithinUnitInterval) {
  // Interleaved ascending runs can mark positions at several strides; the
  // score is clamped to 1.
  const LookbackWindow w = make_window({1, 2, 3, 4, 1, 2, 3, 4});
  LocalityAnalyzer analyzer{4};
  EXPECT_LE(analyzer.score(w), 1.0);
  EXPECT_GT(analyzer.score(w), 0.0);
}

TEST(Locality, StrideBeyondDmaxIgnored) {
  // Page+1 appears 5 positions later; with dmax = 4 it is invisible.
  const LookbackWindow w = make_window({10, 50, 51, 52, 53, 11});
  LocalityAnalyzer analyzer{4};
  const auto counts = analyzer.stride_counts(w);
  std::uint64_t stride10 = counts[0];
  EXPECT_EQ(stride10, 4u);  // the 50..53 run
  // Page 10 -> 11 at distance 5: not counted anywhere.
  double expected = 4.0 / (6.0 * 1.0);
  EXPECT_DOUBLE_EQ(analyzer.score(w), expected);
}

TEST(Locality, MinimumDistanceWins) {
  // Page 8 appears twice after 7; the stride is the minimum distance (1).
  const LookbackWindow w = make_window({7, 8, 99, 8});
  LocalityAnalyzer analyzer{4};
  const auto counts = analyzer.stride_counts(w);
  EXPECT_EQ(counts[0], 2u);  // {7,8} at stride 1
  EXPECT_EQ(counts[2], 0u);  // the second 8 is not the chosen link
}

TEST(Locality, InterleavedStreamsScoreByStride) {
  // Two interleaved sequential streams: a,b,a+1,b+1,... -> stride-2 links.
  const LookbackWindow w = make_window({100, 500, 101, 501, 102, 502});
  LocalityAnalyzer analyzer{4};
  const auto counts = analyzer.stride_counts(w);
  EXPECT_EQ(counts[1], 6u);  // every position participates
  EXPECT_DOUBLE_EQ(analyzer.score(w), 6.0 / (6.0 * 2.0));
}

TEST(Locality, PaperOutstandingStreamExample) {
  // §3.4: l = 10, pages {13,27,7,8,14,8,3,15,4,5}: outstanding streams are
  // {14,15} (stride-3, pivot 16), {3,4} (stride-2, pivot 5), {4,5}
  // (stride-1, pivot 6); {7,8} is not outstanding any more.
  const LookbackWindow w = make_window({13, 27, 7, 8, 14, 8, 3, 15, 4, 5});
  LocalityAnalyzer analyzer{4};
  const auto streams = analyzer.outstanding_streams(w);
  ASSERT_EQ(streams.size(), 3u);
  EXPECT_EQ(streams[0].d, 3u);
  EXPECT_EQ(streams[0].pivot, 16u);
  EXPECT_EQ(streams[1].d, 2u);
  EXPECT_EQ(streams[1].pivot, 5u);
  EXPECT_EQ(streams[2].d, 1u);
  EXPECT_EQ(streams[2].pivot, 6u);
}

TEST(Locality, SequentialTailIsOneOutstandingStream) {
  const LookbackWindow w = make_window({1, 2, 3, 4, 5});
  LocalityAnalyzer analyzer{4};
  const auto streams = analyzer.outstanding_streams(w);
  ASSERT_EQ(streams.size(), 1u);
  EXPECT_EQ(streams[0].d, 1u);
  EXPECT_EQ(streams[0].pivot, 6u);
}

TEST(Locality, StaleStreamIsNotOutstanding) {
  // The {1,2} run ended long ago relative to its stride.
  const LookbackWindow w = make_window({1, 2, 50, 60, 70, 80, 90, 95});
  LocalityAnalyzer analyzer{4};
  EXPECT_TRUE(analyzer.outstanding_streams(w).empty());
}

TEST(Locality, DuplicatePivotsAreMerged) {
  // Two links producing the same pivot yield one stream.
  const LookbackWindow w = make_window({5, 6, 5, 6});
  LocalityAnalyzer analyzer{4};
  const auto streams = analyzer.outstanding_streams(w);
  ASSERT_EQ(streams.size(), 1u);
  EXPECT_EQ(streams[0].pivot, 7u);
}

TEST(Locality, EmptyAndTinyWindows) {
  LookbackWindow w{4};
  LocalityAnalyzer analyzer{4};
  EXPECT_DOUBLE_EQ(analyzer.score(w), 0.0);
  EXPECT_TRUE(analyzer.outstanding_streams(w).empty());
  w.record(9, Time::from_us(1), 1.0);
  EXPECT_DOUBLE_EQ(analyzer.score(w), 0.0);
  EXPECT_TRUE(analyzer.outstanding_streams(w).empty());
}

TEST(Locality, DescendingSequenceScoresZero) {
  // Forward-stride analysis: reverse-sequential access is not prefetchable
  // by a +1 read-ahead and scores 0 (documented deviation from the paper's
  // ambiguous "absolute distance" wording).
  const LookbackWindow w = make_window({9, 8, 7, 6, 5});
  LocalityAnalyzer analyzer{4};
  EXPECT_DOUBLE_EQ(analyzer.score(w), 0.0);
}

TEST(Locality, PartiallyFilledWindowNormalizesByCurrentSize) {
  LookbackWindow w{20};
  std::int64_t t = 0;
  for (const mem::PageId p : {1u, 2u, 3u, 4u}) {
    w.record(p, Time::from_us(++t), 1.0);
  }
  LocalityAnalyzer analyzer{4};
  EXPECT_DOUBLE_EQ(analyzer.score(w), 1.0);  // 4/(4*1)
}

}  // namespace
}  // namespace ampom::core
