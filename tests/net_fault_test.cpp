// Tests of the deterministic fault injector and its composition into the
// fabric: seeded reproducibility, zero-fault transparency, loss/duplication/
// jitter semantics, link outage windows and node crash suppression.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "net/fabric.hpp"
#include "net/fault_injector.hpp"
#include "simcore/simulator.hpp"

namespace ampom::net {
namespace {

using sim::Time;

constexpr sim::Bytes kBulkBytes = 4096 + 64;  // a page message: queues on ports

struct World {
  sim::Simulator sim;
  Fabric fabric{sim, 3};
  FaultInjector injector;
  std::vector<std::pair<Time, NodeId>> deliveries;  // (when, receiver)

  explicit World(std::uint64_t seed) : injector{sim, seed} {
    fabric.set_fault_injector(&injector);
    for (NodeId n = 0; n < 3; ++n) {
      fabric.set_handler(n, [this, n](const Message&) {
        deliveries.emplace_back(sim.now(), n);
      });
    }
  }

  // A fixed traffic pattern: bursts between all pairs at staggered times.
  void drive(int messages) {
    for (int i = 0; i < messages; ++i) {
      const auto src = static_cast<NodeId>(i % 3);
      const auto dst = static_cast<NodeId>((i + 1) % 3);
      sim.schedule_at(Time::from_us(50 * (i + 1)), [this, src, dst] {
        fabric.send(Message{src, dst, kBulkBytes, PageData{1, 1, 7, false}});
      });
    }
    sim.run();
  }
};

TEST(FaultInjector, SameSeedProducesIdenticalTrace) {
  auto run = [](std::uint64_t seed) {
    World w{seed};
    LinkFaults faults;
    faults.drop_probability = 0.2;
    faults.duplicate_probability = 0.1;
    faults.max_extra_delay = Time::from_us(80);
    w.injector.set_default_faults(faults);
    w.drive(200);
    return std::pair{std::string{w.injector.trace()}, w.deliveries};
  };
  const auto [trace_a, deliveries_a] = run(42);
  const auto [trace_b, deliveries_b] = run(42);
  EXPECT_EQ(trace_a, trace_b);
  EXPECT_EQ(deliveries_a, deliveries_b);  // identical times AND receivers
  EXPECT_EQ(trace_a.size(), 200u);

  const auto [trace_c, deliveries_c] = run(43);
  EXPECT_NE(trace_a, trace_c);  // a different seed reshuffles the fault pattern
}

TEST(FaultInjector, ZeroFaultInjectorIsTransparent) {
  // Same traffic through a bare fabric and a zero-fault-injected fabric:
  // every delivery lands at the identical instant.
  std::vector<std::pair<Time, NodeId>> bare;
  {
    sim::Simulator sim;
    Fabric fabric{sim, 3};
    for (NodeId n = 0; n < 3; ++n) {
      fabric.set_handler(n, [&sim, &bare, n](const Message&) {
        bare.emplace_back(sim.now(), n);
      });
    }
    for (int i = 0; i < 100; ++i) {
      const auto src = static_cast<NodeId>(i % 3);
      const auto dst = static_cast<NodeId>((i + 1) % 3);
      sim.schedule_at(Time::from_us(50 * (i + 1)), [&fabric, src, dst] {
        fabric.send(Message{src, dst, kBulkBytes, PageData{1, 1, 7, false}});
      });
    }
    sim.run();
  }

  World w{99};  // all fault knobs left at zero
  w.drive(100);
  EXPECT_EQ(w.deliveries, bare);
  EXPECT_EQ(w.injector.stats().messages_seen, 100u);
  EXPECT_EQ(w.injector.stats().dropped, 0u);
  EXPECT_EQ(w.injector.trace(), std::string(100, '.'));
}

TEST(FaultInjector, DropProbabilityOneLosesEverything) {
  World w{7};
  LinkFaults faults;
  faults.drop_probability = 1.0;
  w.injector.set_default_faults(faults);
  w.drive(20);
  EXPECT_TRUE(w.deliveries.empty());
  EXPECT_EQ(w.injector.stats().dropped, 20u);
  EXPECT_EQ(w.injector.trace(), std::string(20, 'D'));
}

TEST(FaultInjector, DuplicateProbabilityOneDeliversTwice) {
  World w{7};
  LinkFaults faults;
  faults.duplicate_probability = 1.0;
  w.injector.set_default_faults(faults);
  w.drive(10);
  EXPECT_EQ(w.deliveries.size(), 20u);
  EXPECT_EQ(w.injector.stats().duplicated, 10u);
}

// Regression: the fabric used to schedule the duplicate's delivery before
// the original's, so whenever the copy's trailing delay was zero the
// engine's same-time FIFO handed the receiver the duplicate first and the
// real message was the one counted (and dropped) as the dup. The original
// must always be the first delivery the receiver observes, at exactly the
// arrival send() returns, with the copy strictly trailing it.
TEST(FaultInjector, OriginalIsDeliveredBeforeItsDuplicate) {
  World w{5};
  LinkFaults faults;
  faults.duplicate_probability = 1.0;  // no jitter: the copy trails by 1 us
  w.injector.set_default_faults(faults);
  Time arrival{};
  w.sim.schedule_at(Time::from_us(10), [&] {
    arrival = w.fabric.send(Message{0, 1, kBulkBytes, PageData{1, 1, 7, false}});
  });
  w.sim.run();
  ASSERT_EQ(w.deliveries.size(), 2u);
  EXPECT_EQ(w.deliveries[0].first, arrival);  // the original, as predicted
  EXPECT_EQ(w.deliveries[1].first, arrival + Time::from_us(1));
  EXPECT_GT(w.deliveries[1].first, w.deliveries[0].first);
}

TEST(FaultInjector, JitterDelaysButNeverDropsOrReorders) {
  World w{11};
  LinkFaults faults;
  faults.max_extra_delay = Time::from_us(40);
  w.injector.set_default_faults(faults);
  w.drive(50);
  EXPECT_EQ(w.deliveries.size(), 50u);
  EXPECT_GT(w.injector.stats().delayed, 0u);
  EXPECT_EQ(w.injector.stats().dropped, 0u);
}

TEST(FaultInjector, PerLinkOverrideOnlyAffectsThatPair) {
  World w{5};
  LinkFaults lossy;
  lossy.drop_probability = 1.0;
  w.injector.set_link_faults(0, 1, lossy);
  w.drive(30);  // traffic on 0->1, 1->2, 2->0; only 0->1 messages die
  EXPECT_EQ(w.injector.stats().dropped, 10u);
  EXPECT_EQ(w.deliveries.size(), 20u);
  for (const auto& [when, receiver] : w.deliveries) {
    EXPECT_NE(receiver, 1u);  // nothing reaches node 1 (its only sender is 0)
  }
}

TEST(FaultInjector, LinkOutageWindowDropsDuringAndDeliversAfter) {
  World w{3};
  w.injector.schedule_link_outage(0, 1, Time::from_ms(1), Time::from_ms(3));
  // One message before, one during, one after the [1ms, 3ms) window.
  auto send = [&w](Time at) {
    w.sim.schedule_at(at, [&w] {
      w.fabric.send(Message{0, 1, kBulkBytes, PageData{1, 1, 7, false}});
    });
  };
  send(Time::from_us(500));
  send(Time::from_ms(2));
  send(Time::from_ms(4));
  w.sim.run();
  EXPECT_EQ(w.deliveries.size(), 2u);
  EXPECT_EQ(w.injector.stats().link_down_drops, 1u);
  EXPECT_EQ(w.injector.trace(), ".L.");
}

TEST(FaultInjector, CrashedNodeNeitherSendsNorReceives) {
  World w{3};
  w.injector.crash_node(1);
  w.sim.schedule_at(Time::from_us(100), [&w] {
    w.fabric.send(Message{0, 1, kBulkBytes, PageData{1, 1, 7, false}});  // into the crash
    w.fabric.send(Message{1, 2, kBulkBytes, PageData{1, 1, 8, false}});  // from the crash
    w.fabric.send(Message{0, 2, kBulkBytes, PageData{1, 1, 9, false}});  // unaffected
  });
  w.sim.run();
  ASSERT_EQ(w.deliveries.size(), 1u);
  EXPECT_EQ(w.deliveries[0].second, 2u);
  EXPECT_EQ(w.injector.stats().crash_drops, 2u);
  EXPECT_EQ(w.injector.trace(), "XX.");
}

TEST(FaultInjector, MessageInFlightToCrashingNodeIsDiscardedAtDelivery) {
  World w{3};
  w.sim.schedule_at(Time::from_us(10), [&w] {
    w.fabric.send(Message{0, 1, kBulkBytes, PageData{1, 1, 7, false}});
  });
  // The crash lands before the ~400us delivery completes.
  w.sim.schedule_at(Time::from_us(50), [&w] { w.injector.crash_node(1); });
  w.sim.run();
  EXPECT_TRUE(w.deliveries.empty());
  EXPECT_EQ(w.injector.stats().crash_drops, 1u);
}

TEST(FaultInjector, RestoreNodeResumesDelivery) {
  World w{3};
  w.injector.schedule_node_crash(1, Time::from_us(10), /*restore_at=*/Time::from_ms(2));
  auto send = [&w](Time at) {
    w.sim.schedule_at(at, [&w] {
      w.fabric.send(Message{0, 1, kBulkBytes, PageData{1, 1, 7, false}});
    });
  };
  send(Time::from_ms(1));  // while down
  send(Time::from_ms(3));  // after restore
  w.sim.run();
  EXPECT_EQ(w.deliveries.size(), 1u);
  EXPECT_EQ(w.injector.stats().crash_drops, 1u);
}

TEST(FaultInjector, CrashSuppressedMessagesConsumeNoRandomness) {
  // A message swallowed by a crash makes no RNG draws, so interleaving a
  // crashed node's (suppressed) traffic must not shift the fault pattern
  // the healthy 0->1 stream experiences.
  auto run = [](bool with_crashed_traffic) {
    World w{77};
    LinkFaults faults;
    faults.drop_probability = 0.3;
    w.injector.set_default_faults(faults);
    if (with_crashed_traffic) {
      w.injector.crash_node(2);
    }
    for (int i = 0; i < 100; ++i) {
      w.sim.schedule_at(Time::from_us(50 * (i + 1)), [&w] {
        w.fabric.send(Message{0, 1, kBulkBytes, PageData{1, 1, 7, false}});
      });
      if (with_crashed_traffic) {
        w.sim.schedule_at(Time::from_us(50 * (i + 1) + 10), [&w] {
          w.fabric.send(Message{2, 0, kBulkBytes, PageData{1, 1, 8, false}});
        });
      }
    }
    w.sim.run();
    // Keep only the healthy stream's trace characters.
    std::string zero_one;
    for (const char c : w.injector.trace()) {
      if (c != 'X') {
        zero_one += c;
      }
    }
    return zero_one;
  };
  EXPECT_EQ(run(false), run(true));
}

}  // namespace
}  // namespace ampom::net
