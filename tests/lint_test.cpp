// ampom_lint rule engine: every determinism rule D1–D5 has a positive case
// (fires at the expected line), a negative case (idiomatic code stays
// clean), and a suppression case (a well-formed annotation silences it).
// The JSON report schema is pinned so CI consumers can rely on it.
//
// Snippets are fed through lint_source() with a synthetic path whose first
// segment selects the rule scope, exactly as the CLI does.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ampom_lint/lint.hpp"

namespace {

using ampom::lint::Diagnostic;
using ampom::lint::lint_source;
using ampom::lint::Report;
using ampom::lint::Severity;

std::vector<Diagnostic> run(const std::string& path, const std::string& src) {
  return lint_source(path, src);
}

// Count diagnostics for `rule`; line < 0 matches any line.
int count_rule(const std::vector<Diagnostic>& diags, const std::string& rule,
               int line = -1) {
  int n = 0;
  for (const Diagnostic& d : diags) {
    if (d.rule == rule && (line < 0 || d.line == line)) {
      ++n;
    }
  }
  return n;
}

// --- D1: nondeterminism sources --------------------------------------------

TEST(LintD1, FlagsWallClocksAndUnseededRngs) {
  const auto diags = run("src/x/clock_user.cpp", R"lint(
#include <chrono>
void f() {
  auto t = std::chrono::steady_clock::now();
  auto u = std::chrono::system_clock::now();
  std::random_device rd;
}
)lint");
  EXPECT_EQ(count_rule(diags, "D1-nondet-source", 4), 1);
  EXPECT_EQ(count_rule(diags, "D1-nondet-source", 5), 1);
  EXPECT_EQ(count_rule(diags, "D1-nondet-source", 6), 1);
}

TEST(LintD1, FlagsCTimeAndGetenvCalls) {
  const auto diags = run("src/x/ctime_user.cpp", R"lint(
void f() {
  auto t = std::time(nullptr);
  srand(42);
  int r = rand();
  const char* home = getenv("HOME");
}
)lint");
  EXPECT_EQ(count_rule(diags, "D1-nondet-source", 3), 1);
  EXPECT_EQ(count_rule(diags, "D1-nondet-source", 4), 1);
  EXPECT_EQ(count_rule(diags, "D1-nondet-source", 5), 1);
  EXPECT_EQ(count_rule(diags, "D1-nondet-source", 6), 1);
}

TEST(LintD1, SeededRngAndTimeTypedIdentifiersAreClean) {
  const auto diags = run("src/x/rng_user.cpp", R"lint(
#include "simcore/rng.hpp"
#include "simcore/time.hpp"
void f(ampom::sim::Rng& rng) {
  auto draw = rng.uniform(10);
  ampom::sim::Time time(ampom::sim::Time::zero());
  auto frozen = freeze_time(time);
}
)lint");
  EXPECT_EQ(count_rule(diags, "D1-nondet-source"), 0);
}

TEST(LintD1, AnnotationSuppresses) {
  const auto diags = run("bench/wallclock_bench.cpp", R"lint(
void f() {
  // ampom-lint: nondet-ok(measures wall-clock overhead on purpose)
  auto t = std::chrono::steady_clock::now();
}
)lint");
  EXPECT_EQ(count_rule(diags, "D1-nondet-source"), 0);
}

// --- D2: unordered container iteration -------------------------------------

TEST(LintD2, FlagsDeclarationAndIterationSites) {
  const auto diags = run("src/x/hashy.cpp", R"lint(
#include <unordered_map>
struct S {
  std::unordered_map<int, int> scores;
  int sum() {
    int total = 0;
    for (const auto& kv : scores) {
      total += kv.second;
    }
    return total;
  }
  auto first() { return scores.begin(); }
};
)lint");
  EXPECT_EQ(count_rule(diags, "D2-unordered-iter", 4), 1);   // declaration
  EXPECT_EQ(count_rule(diags, "D2-unordered-iter", 7), 1);   // range-for
  EXPECT_EQ(count_rule(diags, "D2-unordered-iter", 12), 1);  // .begin()
}

TEST(LintD2, OrderedContainersAndIncludesAreClean) {
  const auto diags = run("src/x/ordered.cpp", R"lint(
#include <unordered_map>
#include <map>
#include <vector>
void f() {
  std::map<int, int> m;
  std::vector<int> v;
  for (const auto& kv : m) {
    v.push_back(kv.first);
  }
}
)lint");
  EXPECT_EQ(count_rule(diags, "D2-unordered-iter"), 0);
}

TEST(LintD2, AnnotationSuppressesDeclarationButNotIteration) {
  const auto diags = run("src/x/annotated.cpp", R"lint(
#include <unordered_set>
struct S {
  // ampom-lint: ordered-safe(membership test only)
  std::unordered_set<int> seen;
  bool drain() {
    for (int v : seen) {
      use(v);
    }
    return true;
  }
};
)lint");
  EXPECT_EQ(count_rule(diags, "D2-unordered-iter", 5), 0);
  EXPECT_EQ(count_rule(diags, "D2-unordered-iter", 7), 1);
}

TEST(LintD2, AliasedUnorderedTypesAreTrackedToIterationSites) {
  // A per-partition shard table behind a `using` alias iterates in hash
  // order just the same — the alias chain (two hops here) must not launder
  // the container past the rule.
  const auto diags = run("src/x/sharded.cpp", R"lint(
#include <unordered_map>
using ShardMap = std::unordered_map<int, long>;
using PartitionShards = ShardMap;
struct S {
  PartitionShards by_partition;
  long total() {
    long sum = 0;
    for (const auto& kv : by_partition) {
      sum += kv.second;
    }
    return sum;
  }
  auto begin_it() { return by_partition.begin(); }
};
)lint");
  EXPECT_EQ(count_rule(diags, "D2-unordered-iter", 3), 1);   // alias definition
  EXPECT_EQ(count_rule(diags, "D2-unordered-iter", 9), 1);   // range-for
  EXPECT_EQ(count_rule(diags, "D2-unordered-iter", 14), 1);  // .begin()
}

TEST(LintD2, TestsAreExemptBenchIsNot) {
  const std::string snippet = R"lint(
#include <unordered_set>
void f() {
  std::unordered_set<int> s;
}
)lint";
  EXPECT_EQ(count_rule(run("tests/foo_test.cpp", snippet), "D2-unordered-iter"), 0);
  EXPECT_EQ(count_rule(run("bench/foo_bench.cpp", snippet), "D2-unordered-iter"), 1);
}

// --- D3: mutable statics and singletons ------------------------------------

TEST(LintD3, FlagsMutableStaticsAndInstanceAccessors) {
  const auto diags = run("src/x/singleton.cpp", R"lint(
struct Logger {
  static Logger& instance();
};
static int call_count = 0;
void f() {
  static bool warned{false};
  Logger::instance();
}
)lint");
  EXPECT_EQ(count_rule(diags, "D3-mutable-static", 3), 1);  // instance() decl
  EXPECT_EQ(count_rule(diags, "D3-mutable-static", 5), 1);  // namespace static
  EXPECT_EQ(count_rule(diags, "D3-mutable-static", 7), 1);  // function-local static
  EXPECT_EQ(count_rule(diags, "D3-mutable-static", 8), 1);  // instance() call
}

TEST(LintD3, ImmutableStaticsAndStaticFunctionsAreClean) {
  const auto diags = run("src/x/static_ok.cpp", R"lint(
struct Time {
  static constexpr int kTicks = 7;
  static Time zero() { return Time{}; }
  [[nodiscard]] static std::string render(double v, int precision = 3);
};
static const char* kName = "ampom";
static void helper(int x);
int g(long v) { return static_cast<int>(v); }
)lint");
  EXPECT_EQ(count_rule(diags, "D3-mutable-static"), 0);
}

TEST(LintD3, AnnotationSuppresses) {
  const auto diags = run("src/x/annotated_static.cpp", R"lint(
// ampom-lint: static-ok(write-once table built before any worker starts)
static int lookup_table[256] = {};
)lint");
  EXPECT_EQ(count_rule(diags, "D3-mutable-static"), 0);
}

// --- D4: raw I/O in library code -------------------------------------------

TEST(LintD4, FlagsStreamsAndPrintfInSrc) {
  const auto diags = run("src/x/chatty.cpp", R"lint(
#include <cstdio>
#include <iostream>
void f() {
  std::cout << "hello";
  std::cerr << "oops";
  printf("%d", 42);
}
)lint");
  EXPECT_EQ(count_rule(diags, "D4-raw-io", 5), 1);
  EXPECT_EQ(count_rule(diags, "D4-raw-io", 6), 1);
  EXPECT_EQ(count_rule(diags, "D4-raw-io", 7), 1);
}

TEST(LintD4, AmpomLogAndNonSrcRootsAreClean) {
  const auto clean = run("src/x/quiet.cpp", R"lint(
void f(ampom::sim::Logger& log) {
  AMPOM_LOG(log, LogLevel::Info, now, "exec", "resumed pid=%d", 7);
  std::string sprintf_name = "not_a_call";
}
)lint");
  EXPECT_EQ(count_rule(clean, "D4-raw-io"), 0);
  const auto bench = run("bench/report.cpp", R"lint(
#include <iostream>
int main() { std::cout << "csv goes to stdout by design\n"; }
)lint");
  EXPECT_EQ(count_rule(bench, "D4-raw-io"), 0);
}

TEST(LintD4, FormatAttributeIsNotACall) {
  const auto diags = run("src/x/fmt.hpp", R"lint(
std::string strfmt(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
)lint");
  EXPECT_EQ(count_rule(diags, "D4-raw-io"), 0);
}

// --- D5: raw sim-time tick arithmetic --------------------------------------

TEST(LintD5, FlagsTickRoundTripsAndUnitNamedIntegers) {
  const auto diags = run("src/x/ticks.cpp", R"lint(
void f(ampom::sim::Time a, ampom::sim::Time b) {
  auto ewma = ampom::sim::Time::from_ns((a.ns() * 7 + b.ns() * 3) / 10);
  std::int64_t timeout_ms = 250;
  uint64_t lag_us = 3;
}
)lint");
  EXPECT_EQ(count_rule(diags, "D5-raw-ticks", 3), 1);
  EXPECT_EQ(count_rule(diags, "D5-raw-ticks", 4), 1);
  EXPECT_EQ(count_rule(diags, "D5-raw-ticks", 5), 1);
}

TEST(LintD5, TypedTimeArithmeticIsClean) {
  const auto diags = run("src/x/typed_ticks.cpp", R"lint(
void f(ampom::sim::Time a, ampom::sim::Time b) {
  auto ewma = (a * 7 + b * 3) / 10;
  auto plain = ampom::sim::Time::from_ms(250);
  double window_sec = a.sec();
  const std::int64_t ns = a.ns();
}
)lint");
  EXPECT_EQ(count_rule(diags, "D5-raw-ticks"), 0);
}

TEST(LintD5, WarningSeverityAndSuppression) {
  const auto diags = run("src/x/ticks2.cpp", R"lint(
void f() {
  // ampom-lint: raw-ticks-ok(interop with the kernel ABI struct)
  std::int64_t deadline_ns = 5;
}
)lint");
  EXPECT_EQ(count_rule(diags, "D5-raw-ticks"), 0);

  const auto fired = run("src/x/ticks3.cpp", "void f() { std::int64_t lag_ns = 5; }");
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].severity, Severity::Warning);
}

// --- annotations, comments, strings ----------------------------------------

TEST(LintAnnotations, MalformedAnnotationIsAViolation) {
  const auto no_reason = run("src/x/bad1.cpp", R"lint(
// ampom-lint: ordered-safe()
)lint");
  EXPECT_EQ(count_rule(no_reason, "A0-bad-annotation", 2), 1);
  const auto no_tag = run("src/x/bad2.cpp", R"lint(
// ampom-lint:
)lint");
  EXPECT_EQ(count_rule(no_tag, "A0-bad-annotation", 2), 1);
}

TEST(LintAnnotations, WrongTagDoesNotSuppress) {
  const auto diags = run("src/x/wrong_tag.cpp", R"lint(
// ampom-lint: nondet-ok(not the tag this rule wants)
static int counter = 0;
)lint");
  EXPECT_EQ(count_rule(diags, "D3-mutable-static", 3), 1);
}

TEST(LintLexer, CommentsAndStringsNeverTrigger) {
  const auto diags = run("src/x/benign.cpp", R"lint(
// rand() and std::cout in a comment are fine
/* so is getenv("HOME") in a block comment,
   and std::unordered_map<int,int> too */
const char* doc = "call rand() then print via std::cout";
)lint");
  EXPECT_TRUE(diags.empty());
}

// --- report rendering -------------------------------------------------------

TEST(LintReport, JsonSchemaIsStable) {
  Report report;
  report.files_scanned = 2;
  report.diagnostics = run("src/x/one.cpp", "static int hits = 0;");
  ASSERT_EQ(report.diagnostics.size(), 1u);
  const std::string json = ampom::lint::render_json(report);
  EXPECT_NE(json.find("\"tool\":\"ampom_lint\""), std::string::npos);
  EXPECT_NE(json.find("\"schema_version\":1"), std::string::npos);
  EXPECT_NE(json.find("\"files_scanned\":2"), std::string::npos);
  EXPECT_NE(json.find("\"counts\":{\"error\":1,\"warning\":0}"), std::string::npos);
  EXPECT_NE(json.find("\"file\":\"src/x/one.cpp\""), std::string::npos);
  EXPECT_NE(json.find("\"line\":1"), std::string::npos);
  EXPECT_NE(json.find("\"rule\":\"D3-mutable-static\""), std::string::npos);
  EXPECT_NE(json.find("\"severity\":\"error\""), std::string::npos);
  EXPECT_NE(json.find("\"suppression\":\"static-ok\""), std::string::npos);
}

TEST(LintReport, CleanTreeRendersEmptyViolations) {
  Report report;
  report.files_scanned = 5;
  const std::string json = ampom::lint::render_json(report);
  EXPECT_NE(json.find("\"violations\":[]"), std::string::npos);
  const std::string text = ampom::lint::render_text(report);
  EXPECT_NE(text.find("5 files, 0 error(s), 0 warning(s)"), std::string::npos);
}

TEST(LintReport, TextNamesTheSuppressionTag) {
  Report report;
  report.files_scanned = 1;
  report.diagnostics = run("src/x/one.cpp", "static int hits = 0;");
  const std::string text = ampom::lint::render_text(report);
  EXPECT_NE(text.find("src/x/one.cpp:1: error: [D3-mutable-static]"), std::string::npos);
  EXPECT_NE(text.find("static-ok(<reason>)"), std::string::npos);
}

// One finding per line+rule even when begin() and end() share the line.
TEST(LintReport, DuplicateFindingsOnOneLineCollapse) {
  const auto diags = run("src/x/dup.cpp", R"lint(
#include <unordered_set>
void f() {
  std::unordered_set<int> s;
  std::vector<int> v(s.begin(), s.end());
}
)lint");
  EXPECT_EQ(count_rule(diags, "D2-unordered-iter", 5), 1);
}

}  // namespace
