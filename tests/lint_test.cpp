// ampom_lint rule engine: every determinism rule D1–D5 has a positive case
// (fires at the expected line), a negative case (idiomatic code stays
// clean), and a suppression case (a well-formed annotation silences it).
// The same triple is covered for the cross-TU semantic rules (P1–P3 partition
// safety, T1–T4 nondeterminism taint) through analyze(), which builds the
// whole-repo symbol index over multiple in-memory files. The JSON report
// schema, the SARIF output, the call-chain text format and the baseline
// format are pinned so CI consumers can rely on them.
//
// Snippets are fed through lint_source() with a synthetic path whose first
// segment selects the rule scope, exactly as the CLI does.

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "ampom_lint/lint.hpp"

namespace {

using ampom::lint::Diagnostic;
using ampom::lint::lint_source;
using ampom::lint::Report;
using ampom::lint::Severity;

std::vector<Diagnostic> run(const std::string& path, const std::string& src) {
  return lint_source(path, src);
}

// Whole-repo analysis over in-memory files (the cross-TU entry point).
Report analyze_files(const std::vector<std::pair<std::string, std::string>>& files,
                     int jobs = 1) {
  std::vector<ampom::lint::SourceFile> input;
  input.reserve(files.size());
  for (const auto& [path, content] : files) {
    input.push_back(ampom::lint::SourceFile{path, content});
  }
  ampom::lint::AnalyzeOptions opts;
  opts.jobs = jobs;
  return ampom::lint::analyze(input, opts);
}

// Count diagnostics for `rule`; line < 0 matches any line.
int count_rule(const std::vector<Diagnostic>& diags, const std::string& rule,
               int line = -1) {
  int n = 0;
  for (const Diagnostic& d : diags) {
    if (d.rule == rule && (line < 0 || d.line == line)) {
      ++n;
    }
  }
  return n;
}

// --- D1: nondeterminism sources --------------------------------------------

TEST(LintD1, FlagsWallClocksAndUnseededRngs) {
  const auto diags = run("src/x/clock_user.cpp", R"lint(
#include <chrono>
void f() {
  auto t = std::chrono::steady_clock::now();
  auto u = std::chrono::system_clock::now();
  std::random_device rd;
}
)lint");
  EXPECT_EQ(count_rule(diags, "D1-nondet-source", 4), 1);
  EXPECT_EQ(count_rule(diags, "D1-nondet-source", 5), 1);
  EXPECT_EQ(count_rule(diags, "D1-nondet-source", 6), 1);
}

TEST(LintD1, FlagsCTimeAndGetenvCalls) {
  const auto diags = run("src/x/ctime_user.cpp", R"lint(
void f() {
  auto t = std::time(nullptr);
  srand(42);
  int r = rand();
  const char* home = getenv("HOME");
}
)lint");
  EXPECT_EQ(count_rule(diags, "D1-nondet-source", 3), 1);
  EXPECT_EQ(count_rule(diags, "D1-nondet-source", 4), 1);
  EXPECT_EQ(count_rule(diags, "D1-nondet-source", 5), 1);
  EXPECT_EQ(count_rule(diags, "D1-nondet-source", 6), 1);
}

TEST(LintD1, SeededRngAndTimeTypedIdentifiersAreClean) {
  const auto diags = run("src/x/rng_user.cpp", R"lint(
#include "simcore/rng.hpp"
#include "simcore/time.hpp"
void f(ampom::sim::Rng& rng) {
  auto draw = rng.uniform(10);
  ampom::sim::Time time(ampom::sim::Time::zero());
  auto frozen = freeze_time(time);
}
)lint");
  EXPECT_EQ(count_rule(diags, "D1-nondet-source"), 0);
}

TEST(LintD1, AnnotationSuppresses) {
  const auto diags = run("bench/wallclock_bench.cpp", R"lint(
void f() {
  // ampom-lint: nondet-ok(measures wall-clock overhead on purpose)
  auto t = std::chrono::steady_clock::now();
}
)lint");
  EXPECT_EQ(count_rule(diags, "D1-nondet-source"), 0);
}

// --- D2: unordered container iteration -------------------------------------

TEST(LintD2, FlagsDeclarationAndIterationSites) {
  const auto diags = run("src/x/hashy.cpp", R"lint(
#include <unordered_map>
struct S {
  std::unordered_map<int, int> scores;
  int sum() {
    int total = 0;
    for (const auto& kv : scores) {
      total += kv.second;
    }
    return total;
  }
  auto first() { return scores.begin(); }
};
)lint");
  EXPECT_EQ(count_rule(diags, "D2-unordered-iter", 4), 1);   // declaration
  EXPECT_EQ(count_rule(diags, "D2-unordered-iter", 7), 1);   // range-for
  EXPECT_EQ(count_rule(diags, "D2-unordered-iter", 12), 1);  // .begin()
}

TEST(LintD2, OrderedContainersAndIncludesAreClean) {
  const auto diags = run("src/x/ordered.cpp", R"lint(
#include <unordered_map>
#include <map>
#include <vector>
void f() {
  std::map<int, int> m;
  std::vector<int> v;
  for (const auto& kv : m) {
    v.push_back(kv.first);
  }
}
)lint");
  EXPECT_EQ(count_rule(diags, "D2-unordered-iter"), 0);
}

TEST(LintD2, AnnotationSuppressesDeclarationButNotIteration) {
  const auto diags = run("src/x/annotated.cpp", R"lint(
#include <unordered_set>
struct S {
  // ampom-lint: ordered-safe(membership test only)
  std::unordered_set<int> seen;
  bool drain() {
    for (int v : seen) {
      use(v);
    }
    return true;
  }
};
)lint");
  EXPECT_EQ(count_rule(diags, "D2-unordered-iter", 5), 0);
  EXPECT_EQ(count_rule(diags, "D2-unordered-iter", 7), 1);
}

TEST(LintD2, AliasedUnorderedTypesAreTrackedToIterationSites) {
  // A per-partition shard table behind a `using` alias iterates in hash
  // order just the same — the alias chain (two hops here) must not launder
  // the container past the rule.
  const auto diags = run("src/x/sharded.cpp", R"lint(
#include <unordered_map>
using ShardMap = std::unordered_map<int, long>;
using PartitionShards = ShardMap;
struct S {
  PartitionShards by_partition;
  long total() {
    long sum = 0;
    for (const auto& kv : by_partition) {
      sum += kv.second;
    }
    return sum;
  }
  auto begin_it() { return by_partition.begin(); }
};
)lint");
  EXPECT_EQ(count_rule(diags, "D2-unordered-iter", 3), 1);   // alias definition
  EXPECT_EQ(count_rule(diags, "D2-unordered-iter", 9), 1);   // range-for
  EXPECT_EQ(count_rule(diags, "D2-unordered-iter", 14), 1);  // .begin()
}

TEST(LintD2, TestsAreExemptBenchIsNot) {
  const std::string snippet = R"lint(
#include <unordered_set>
void f() {
  std::unordered_set<int> s;
}
)lint";
  EXPECT_EQ(count_rule(run("tests/foo_test.cpp", snippet), "D2-unordered-iter"), 0);
  EXPECT_EQ(count_rule(run("bench/foo_bench.cpp", snippet), "D2-unordered-iter"), 1);
}

// --- D3: mutable statics and singletons ------------------------------------

TEST(LintD3, FlagsMutableStaticsAndInstanceAccessors) {
  const auto diags = run("src/x/singleton.cpp", R"lint(
struct Logger {
  static Logger& instance();
};
static int call_count = 0;
void f() {
  static bool warned{false};
  Logger::instance();
}
)lint");
  EXPECT_EQ(count_rule(diags, "D3-mutable-static", 3), 1);  // instance() decl
  EXPECT_EQ(count_rule(diags, "D3-mutable-static", 5), 1);  // namespace static
  EXPECT_EQ(count_rule(diags, "D3-mutable-static", 7), 1);  // function-local static
  EXPECT_EQ(count_rule(diags, "D3-mutable-static", 8), 1);  // instance() call
}

TEST(LintD3, ImmutableStaticsAndStaticFunctionsAreClean) {
  const auto diags = run("src/x/static_ok.cpp", R"lint(
struct Time {
  static constexpr int kTicks = 7;
  static Time zero() { return Time{}; }
  [[nodiscard]] static std::string render(double v, int precision = 3);
};
static const char* kName = "ampom";
static void helper(int x);
int g(long v) { return static_cast<int>(v); }
)lint");
  EXPECT_EQ(count_rule(diags, "D3-mutable-static"), 0);
}

TEST(LintD3, AnnotationSuppresses) {
  const auto diags = run("src/x/annotated_static.cpp", R"lint(
// ampom-lint: static-ok(write-once table built before any worker starts)
static int lookup_table[256] = {};
)lint");
  EXPECT_EQ(count_rule(diags, "D3-mutable-static"), 0);
}

// --- D4: raw I/O in library code -------------------------------------------

TEST(LintD4, FlagsStreamsAndPrintfInSrc) {
  const auto diags = run("src/x/chatty.cpp", R"lint(
#include <cstdio>
#include <iostream>
void f() {
  std::cout << "hello";
  std::cerr << "oops";
  printf("%d", 42);
}
)lint");
  EXPECT_EQ(count_rule(diags, "D4-raw-io", 5), 1);
  EXPECT_EQ(count_rule(diags, "D4-raw-io", 6), 1);
  EXPECT_EQ(count_rule(diags, "D4-raw-io", 7), 1);
}

TEST(LintD4, AmpomLogAndNonSrcRootsAreClean) {
  const auto clean = run("src/x/quiet.cpp", R"lint(
void f(ampom::sim::Logger& log) {
  AMPOM_LOG(log, LogLevel::Info, now, "exec", "resumed pid=%d", 7);
  std::string sprintf_name = "not_a_call";
}
)lint");
  EXPECT_EQ(count_rule(clean, "D4-raw-io"), 0);
  const auto bench = run("bench/report.cpp", R"lint(
#include <iostream>
int main() { std::cout << "csv goes to stdout by design\n"; }
)lint");
  EXPECT_EQ(count_rule(bench, "D4-raw-io"), 0);
}

TEST(LintD4, FormatAttributeIsNotACall) {
  const auto diags = run("src/x/fmt.hpp", R"lint(
std::string strfmt(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
)lint");
  EXPECT_EQ(count_rule(diags, "D4-raw-io"), 0);
}

// --- D5: raw sim-time tick arithmetic --------------------------------------

TEST(LintD5, FlagsTickRoundTripsAndUnitNamedIntegers) {
  const auto diags = run("src/x/ticks.cpp", R"lint(
void f(ampom::sim::Time a, ampom::sim::Time b) {
  auto ewma = ampom::sim::Time::from_ns((a.ns() * 7 + b.ns() * 3) / 10);
  std::int64_t timeout_ms = 250;
  uint64_t lag_us = 3;
}
)lint");
  EXPECT_EQ(count_rule(diags, "D5-raw-ticks", 3), 1);
  EXPECT_EQ(count_rule(diags, "D5-raw-ticks", 4), 1);
  EXPECT_EQ(count_rule(diags, "D5-raw-ticks", 5), 1);
}

TEST(LintD5, TypedTimeArithmeticIsClean) {
  const auto diags = run("src/x/typed_ticks.cpp", R"lint(
void f(ampom::sim::Time a, ampom::sim::Time b) {
  auto ewma = (a * 7 + b * 3) / 10;
  auto plain = ampom::sim::Time::from_ms(250);
  double window_sec = a.sec();
  const std::int64_t ns = a.ns();
}
)lint");
  EXPECT_EQ(count_rule(diags, "D5-raw-ticks"), 0);
}

TEST(LintD5, WarningSeverityAndSuppression) {
  const auto diags = run("src/x/ticks2.cpp", R"lint(
void f() {
  // ampom-lint: raw-ticks-ok(interop with the kernel ABI struct)
  std::int64_t deadline_ns = 5;
}
)lint");
  EXPECT_EQ(count_rule(diags, "D5-raw-ticks"), 0);

  const auto fired = run("src/x/ticks3.cpp", "void f() { std::int64_t lag_ns = 5; }");
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].severity, Severity::Warning);
}

// --- annotations, comments, strings ----------------------------------------

TEST(LintAnnotations, MalformedAnnotationIsAViolation) {
  const auto no_reason = run("src/x/bad1.cpp", R"lint(
// ampom-lint: ordered-safe()
)lint");
  EXPECT_EQ(count_rule(no_reason, "A0-bad-annotation", 2), 1);
  const auto no_tag = run("src/x/bad2.cpp", R"lint(
// ampom-lint:
)lint");
  EXPECT_EQ(count_rule(no_tag, "A0-bad-annotation", 2), 1);
}

TEST(LintAnnotations, WrongTagDoesNotSuppress) {
  const auto diags = run("src/x/wrong_tag.cpp", R"lint(
// ampom-lint: nondet-ok(not the tag this rule wants)
static int counter = 0;
)lint");
  EXPECT_EQ(count_rule(diags, "D3-mutable-static", 3), 1);
}

TEST(LintLexer, CommentsAndStringsNeverTrigger) {
  const auto diags = run("src/x/benign.cpp", R"lint(
// rand() and std::cout in a comment are fine
/* so is getenv("HOME") in a block comment,
   and std::unordered_map<int,int> too */
const char* doc = "call rand() then print via std::cout";
)lint");
  EXPECT_TRUE(diags.empty());
}

// --- report rendering -------------------------------------------------------

TEST(LintReport, JsonSchemaIsStable) {
  Report report;
  report.files_scanned = 2;
  report.diagnostics = run("src/x/one.cpp", "static int hits = 0;");
  ASSERT_EQ(report.diagnostics.size(), 1u);
  const std::string json = ampom::lint::render_json(report);
  EXPECT_NE(json.find("\"tool\":\"ampom_lint\""), std::string::npos);
  EXPECT_NE(json.find("\"schema_version\":2"), std::string::npos);
  EXPECT_NE(json.find("\"files_scanned\":2"), std::string::npos);
  EXPECT_NE(json.find("\"counts\":{\"error\":1,\"warning\":0}"), std::string::npos);
  EXPECT_NE(json.find("\"file\":\"src/x/one.cpp\""), std::string::npos);
  EXPECT_NE(json.find("\"line\":1"), std::string::npos);
  EXPECT_NE(json.find("\"rule\":\"D3-mutable-static\""), std::string::npos);
  EXPECT_NE(json.find("\"severity\":\"error\""), std::string::npos);
  EXPECT_NE(json.find("\"suppression\":\"static-ok\""), std::string::npos);
  // v2 additions: a stable fingerprint and the (empty, for D-rules) chain.
  EXPECT_NE(json.find("\"fingerprint\":\""), std::string::npos);
  EXPECT_NE(json.find("\"chain\":[]"), std::string::npos);
}

TEST(LintReport, CleanTreeRendersEmptyViolations) {
  Report report;
  report.files_scanned = 5;
  const std::string json = ampom::lint::render_json(report);
  EXPECT_NE(json.find("\"violations\":[]"), std::string::npos);
  const std::string text = ampom::lint::render_text(report);
  EXPECT_NE(text.find("5 files, 0 error(s), 0 warning(s)"), std::string::npos);
}

TEST(LintReport, TextNamesTheSuppressionTag) {
  Report report;
  report.files_scanned = 1;
  report.diagnostics = run("src/x/one.cpp", "static int hits = 0;");
  const std::string text = ampom::lint::render_text(report);
  EXPECT_NE(text.find("src/x/one.cpp:1: error: [D3-mutable-static]"), std::string::npos);
  EXPECT_NE(text.find("static-ok(<reason>)"), std::string::npos);
}

// One finding per line+rule even when begin() and end() share the line.
TEST(LintReport, DuplicateFindingsOnOneLineCollapse) {
  const auto diags = run("src/x/dup.cpp", R"lint(
#include <unordered_set>
void f() {
  std::unordered_set<int> s;
  std::vector<int> v(s.begin(), s.end());
}
)lint");
  EXPECT_EQ(count_rule(diags, "D2-unordered-iter", 5), 1);
}

// --- P1: partition-reachable code calling global-only functions -------------

// The shared scaffolding: a balancer whose mutators are declared global-only
// in the "header", implemented in one .cpp, and (mis)used from a partition
// callback in another — three files, so every edge in the chain is cross-TU.
const char* kBalHeader = R"lint(
struct Balancer {
  // ampom: global-only
  void rebalance();
  void observe(int load);
};
struct Sim {
  template <class F> void schedule_on_node(unsigned n, long at, F cb);
  template <class F> void schedule_at(long at, F cb);
  template <class F> void post_global(F cb);
};
)lint";

const char* kBalImpl = R"lint(
#include "bal.hpp"
void Balancer::rebalance() { }
void Balancer::observe(int load) { }
void poke(Balancer& b) { b.rebalance(); }
)lint";

TEST(LintP1, CrossTuCallChainIsReported) {
  const Report report = analyze_files({
      {"src/bal/bal.hpp", kBalHeader},
      {"src/bal/bal.cpp", kBalImpl},
      {"src/drv/drv.cpp", R"lint(
#include "bal.hpp"
void drive(Sim& sim, Balancer& bal) {
  sim.schedule_on_node(3, 100, [&] { poke(bal); });
}
)lint"},
  });
  ASSERT_EQ(count_rule(report.diagnostics, "P1-partition-calls-global"), 1);
  const Diagnostic* d = nullptr;
  for (const Diagnostic& diag : report.diagnostics) {
    if (diag.rule == "P1-partition-calls-global") {
      d = &diag;
    }
  }
  ASSERT_NE(d, nullptr);
  // The violation is reported where the global-only call happens (the helper
  // in bal.cpp), with the chain walking entry -> helper -> target.
  EXPECT_EQ(d->file, "src/bal/bal.cpp");
  EXPECT_EQ(d->suppression, "partition-ok");
  ASSERT_GE(d->chain.size(), 3u);
  EXPECT_NE(d->chain.front().note.find("schedule_on_node callback"), std::string::npos);
  EXPECT_EQ(d->chain.front().file, "src/drv/drv.cpp");
  EXPECT_NE(d->chain.back().note.find("Balancer::rebalance"), std::string::npos);
}

TEST(LintP1, PostGlobalEscapeIsClean) {
  const Report report = analyze_files({
      {"src/bal/bal.hpp", kBalHeader},
      {"src/bal/bal.cpp", kBalImpl},
      {"src/drv/drv.cpp", R"lint(
#include "bal.hpp"
void drive(Sim& sim, Balancer& bal) {
  sim.schedule_on_node(3, 100, [&] {
    bal.observe(7);
    sim.post_global([&] { bal.rebalance(); });
  });
}
)lint"},
  });
  EXPECT_EQ(count_rule(report.diagnostics, "P1-partition-calls-global"), 0);
}

TEST(LintP1, NamedPartitionEntryRootIsChecked) {
  const Report report = analyze_files({
      {"src/bal/bal.hpp", kBalHeader},
      {"src/drv/drv.cpp", R"lint(
#include "bal.hpp"
struct Daemon {
  // ampom: partition-entry
  void tick();
  Balancer* bal_;
};
void Daemon::tick() { bal_->rebalance(); }
)lint"},
  });
  ASSERT_EQ(count_rule(report.diagnostics, "P1-partition-calls-global"), 1);
  for (const Diagnostic& d : report.diagnostics) {
    if (d.rule == "P1-partition-calls-global") {
      EXPECT_EQ(count_rule({d}, d.rule, 8), 1);  // the bal_->rebalance() line
    }
  }
}

TEST(LintP1, PartitionOkAnnotationSuppresses) {
  const Report report = analyze_files({
      {"src/bal/bal.hpp", kBalHeader},
      {"src/drv/drv.cpp", R"lint(
#include "bal.hpp"
void drive(Sim& sim, Balancer& bal) {
  sim.schedule_on_node(3, 100, [&] {
    // ampom-lint: partition-ok(single-process run; reviewed in PR 9)
    bal.rebalance();
  });
}
)lint"},
  });
  EXPECT_EQ(count_rule(report.diagnostics, "P1-partition-calls-global"), 0);
}

TEST(LintP1, TestsRootIsExcludedFromTheIndex) {
  const Report report = analyze_files({
      {"src/bal/bal.hpp", kBalHeader},
      {"tests/drv_test.cpp", R"lint(
#include "bal.hpp"
void drive(Sim& sim, Balancer& bal) {
  sim.schedule_on_node(3, 100, [&] { bal.rebalance(); });
}
)lint"},
  });
  EXPECT_EQ(count_rule(report.diagnostics, "P1-partition-calls-global"), 0);
}

// --- P2: locks and threads in partition-reachable code ----------------------

TEST(LintP2, LockInReachableHelperIsFlaggedWithChain) {
  const Report report = analyze_files({
      {"src/drv/drv.cpp", R"lint(
#include <mutex>
struct Sim {
  template <class F> void schedule_on_node(unsigned n, long at, F cb);
};
void guard_it() {
  static std::mutex mu;
  std::lock_guard<std::mutex> g(mu);
}
void drive(Sim& sim) {
  sim.schedule_on_node(1, 50, [] { guard_it(); });
}
)lint"},
  });
  EXPECT_GE(count_rule(report.diagnostics, "P2-partition-locks", 8), 1);
  for (const Diagnostic& d : report.diagnostics) {
    if (d.rule == "P2-partition-locks") {
      ASSERT_GE(d.chain.size(), 2u);
      EXPECT_NE(d.chain.front().note.find("schedule_on_node callback"),
                std::string::npos);
    }
  }
}

TEST(LintP2, ThreadSpawnIsFlagged) {
  const Report report = analyze_files({
      {"src/drv/drv.cpp", R"lint(
#include <thread>
struct Sim {
  template <class F> void schedule_on_node(unsigned n, long at, F cb);
};
void drive(Sim& sim) {
  sim.schedule_on_node(1, 50, [] {
    std::thread t([] {});
    t.join();
  });
}
)lint"},
  });
  EXPECT_EQ(count_rule(report.diagnostics, "P2-partition-locks", 8), 1);
}

TEST(LintP2, EngineBoundaryClassesAreNotTraversed) {
  // Simulator implements the partition contract with a worker pool; calling
  // into it from a partition callback is the sanctioned API, not a violation.
  const Report report = analyze_files({
      {"src/simx/sim.cpp", R"lint(
#include <mutex>
struct Simulator {
  template <class F> void schedule_on_node(unsigned n, long at, F cb);
  void wake() { std::lock_guard<std::mutex> g(pool_mu_); }
  std::mutex pool_mu_;
};
void drive(Simulator& sim) {
  sim.schedule_on_node(1, 50, [&] { sim.wake(); });
}
)lint"},
  });
  EXPECT_EQ(count_rule(report.diagnostics, "P2-partition-locks"), 0);
}

TEST(LintP2, PostGlobalBodyIsExemptInsideCallback) {
  const Report report = analyze_files({
      {"src/drv/drv.cpp", R"lint(
#include <mutex>
struct Sim {
  template <class F> void schedule_on_node(unsigned n, long at, F cb);
  template <class F> void post_global(F cb);
};
void drive(Sim& sim) {
  sim.schedule_on_node(1, 50, [&] {
    sim.post_global([] { std::mutex mu; });
  });
}
)lint"},
  });
  EXPECT_EQ(count_rule(report.diagnostics, "P2-partition-locks"), 0);
}

// --- P3: globally-owned member fields ---------------------------------------

TEST(LintP3, GlobalFieldTouchIsFlaggedCrossTu) {
  const Report report = analyze_files({
      {"src/bal/bal.hpp", R"lint(
struct Balancer {
  // Written only by the barrier-context commit path.
  // ampom: global-only
  int pending_moves_{0};
  int local_hint_{0};
};
struct Sim {
  template <class F> void schedule_on_node(unsigned n, long at, F cb);
};
)lint"},
      {"src/drv/drv.cpp", R"lint(
#include "bal.hpp"
void drive(Sim& sim, Balancer& bal) {
  sim.schedule_on_node(2, 10, [&] {
    bal.pending_moves_ += 1;
    bal.local_hint_ = 4;
  });
}
)lint"},
  });
  EXPECT_EQ(count_rule(report.diagnostics, "P3-partition-global-state", 5), 1);
  EXPECT_EQ(count_rule(report.diagnostics, "P3-partition-global-state", 6), 0);
}

TEST(LintP3, SuppressionAndBarrierWritesAreClean) {
  const Report report = analyze_files({
      {"src/bal/bal.hpp", R"lint(
struct Balancer {
  // ampom: global-only
  int pending_moves_{0};
};
struct Sim {
  template <class F> void schedule_on_node(unsigned n, long at, F cb);
  template <class F> void post_global(F cb);
};
)lint"},
      {"src/drv/drv.cpp", R"lint(
#include "bal.hpp"
void commit(Balancer& bal) { bal.pending_moves_ -= 1; }
void drive(Sim& sim, Balancer& bal) {
  sim.schedule_on_node(2, 10, [&] {
    // ampom-lint: partition-ok(read-only damping probe; reviewed)
    int probe = bal.pending_moves_;
    sim.post_global([&] { bal.pending_moves_ += 1; });
  });
}
)lint"},
  });
  // commit() is not partition-reachable, the probe is suppressed, and the
  // post_global body is the sanctioned escape.
  EXPECT_EQ(count_rule(report.diagnostics, "P3-partition-global-state"), 0);
}

// --- T1: nondeterministic values reaching event-schedule times --------------

// Acceptance mutation from the issue: a wall-clock read flowing into an
// event time must be caught.
TEST(LintT1, WallClockReachesScheduleTime) {
  const Report report = analyze_files({
      {"src/drv/drv.cpp", R"lint(
#include <chrono>
struct Sim {
  template <class F> void schedule_at(long at, F cb);
};
void drive(Sim& sim) {
  auto now = std::chrono::steady_clock::now().time_since_epoch().count();
  long jitter = now % 100;
  sim.schedule_at(jitter, 0);
}
)lint"},
  });
  ASSERT_EQ(count_rule(report.diagnostics, "T1-taint-schedule-time", 9), 1);
  for (const Diagnostic& d : report.diagnostics) {
    if (d.rule == "T1-taint-schedule-time") {
      ASSERT_EQ(d.chain.size(), 2u);
      EXPECT_EQ(d.chain[0].line, 7);  // the steady_clock read
      EXPECT_NE(d.chain[0].note.find("taint source"), std::string::npos);
      EXPECT_EQ(d.suppression, "taint-ok");
    }
  }
}

TEST(LintT1, ScheduleOnNodeTimeIsArgumentOne) {
  const Report report = analyze_files({
      {"src/drv/drv.cpp", R"lint(
struct Sim {
  template <class F> void schedule_on_node(unsigned n, long at, F cb);
};
long now_ticks();
void drive(Sim& sim) {
  long base = rand();
  sim.schedule_on_node(base, 100, 0);
  sim.schedule_on_node(3, base, 0);
}
)lint"},
  });
  // Tainted node id (arg 0) is not the time sink; tainted time (arg 1) is.
  EXPECT_EQ(count_rule(report.diagnostics, "T1-taint-schedule-time", 8), 0);
  EXPECT_EQ(count_rule(report.diagnostics, "T1-taint-schedule-time", 9), 1);
}

TEST(LintT1, TaintFlowsThroughHelperReturnContextSensitively) {
  const Report report = analyze_files({
      {"src/drv/drv.cpp", R"lint(
struct Sim {
  template <class F> void schedule_at(long at, F cb);
};
long wrap(long v) { return v + 1; }
void tainted(Sim& sim) {
  long base = rand();
  sim.schedule_at(wrap(base), 0);
}
void clean(Sim& sim) {
  sim.schedule_at(wrap(500), 0);
}
)lint"},
  });
  // wrap() is summary-based: it forwards taint at the tainted call site only
  // — the clean() caller must NOT inherit tainted()'s argument.
  EXPECT_EQ(count_rule(report.diagnostics, "T1-taint-schedule-time", 8), 1);
  EXPECT_EQ(count_rule(report.diagnostics, "T1-taint-schedule-time", 11), 0);
}

TEST(LintT1, HashOrderIterationTaintsTheLoopVariable) {
  const Report report = analyze_files({
      {"src/drv/drv.cpp", R"lint(
#include <unordered_map>
struct Sim {
  template <class F> void schedule_at(long at, F cb);
};
void drive(Sim& sim, std::unordered_map<int, long>& backlog) {
  for (auto& kv : backlog) {
    sim.schedule_at(kv.second, 0);
  }
}
)lint"},
  });
  EXPECT_EQ(count_rule(report.diagnostics, "T1-taint-schedule-time", 8), 1);
}

TEST(LintT1, TaintOkAnnotationSuppresses) {
  const Report report = analyze_files({
      {"src/drv/drv.cpp", R"lint(
struct Sim {
  template <class F> void schedule_at(long at, F cb);
};
void drive(Sim& sim) {
  long base = rand();
  // ampom-lint: taint-ok(latency experiment; results discarded)
  sim.schedule_at(base, 0);
}
)lint"},
  });
  EXPECT_EQ(count_rule(report.diagnostics, "T1-taint-schedule-time"), 0);
}

// --- T2/T3/T4: RNG seeds, fate keys, trace emissions ------------------------

TEST(LintT2, TaintedRngSeedIsFlaggedParenAndBrace) {
  const Report report = analyze_files({
      {"src/drv/drv.cpp", R"lint(
struct Rng { explicit Rng(unsigned long long seed); void reseed(unsigned long long s); };
void f() {
  unsigned long long wall = clock();
  Rng a(wall);
  Rng b{wall};
  Rng ok{12345};
  a.reseed(wall);
}
)lint"},
  });
  EXPECT_EQ(count_rule(report.diagnostics, "T2-taint-rng-seed", 5), 1);
  EXPECT_EQ(count_rule(report.diagnostics, "T2-taint-rng-seed", 6), 1);
  EXPECT_EQ(count_rule(report.diagnostics, "T2-taint-rng-seed", 7), 0);
  EXPECT_EQ(count_rule(report.diagnostics, "T2-taint-rng-seed", 8), 1);
}

TEST(LintT3, TaintedFateKeyIsFlagged) {
  const Report report = analyze_files({
      {"src/net/fate.cpp", R"lint(
unsigned long long mix(unsigned long long h, unsigned long long v);
void f(char* p) {
  auto addr = reinterpret_cast<unsigned long>(p);
  auto fate = mix(17, addr);
  auto fine = mix(17, 23);
}
)lint"},
  });
  EXPECT_EQ(count_rule(report.diagnostics, "T3-taint-fate-key", 5), 1);
  EXPECT_EQ(count_rule(report.diagnostics, "T3-taint-fate-key", 6), 0);
}

TEST(LintT4, TaintedTraceEmissionIsFlagged) {
  const Report report = analyze_files({
      {"src/trace/emit.cpp", R"lint(
struct Recorder { void instant(int cat, long value); void counter(int cat, long v); };
void f(Recorder& tr) {
  long wall = time(0);
  tr.instant(3, wall);
  tr.counter(3, 42);
}
)lint"},
  });
  EXPECT_EQ(count_rule(report.diagnostics, "T4-taint-trace-emit", 5), 1);
  EXPECT_EQ(count_rule(report.diagnostics, "T4-taint-trace-emit", 6), 0);
}

// --- acceptance mutation: partition callback mutating balancer state --------

TEST(LintAcceptance, ScheduleOnNodeCallbackMutatingGlobalBalancerState) {
  // The seeded mutation from the issue: a schedule_on_node callback writing
  // the balancer's globally-owned damping counter. Both the field touch (P3)
  // and the mutator call (P1) are caught.
  const Report report = analyze_files({
      {"src/bal/bal.hpp", R"lint(
struct Balancer {
  // ampom: global-only
  void note_migration_started(unsigned src, unsigned dst);
  // ampom: global-only
  unsigned migrating_total_{0};
};
struct Sim {
  template <class F> void schedule_on_node(unsigned n, long at, F cb);
};
)lint"},
      {"src/bal/bal.cpp", R"lint(
#include "bal.hpp"
void Balancer::note_migration_started(unsigned src, unsigned dst) {
  migrating_total_ += 1;
}
)lint"},
      {"src/drv/drv.cpp", R"lint(
#include "bal.hpp"
void drive(Sim& sim, Balancer& bal) {
  sim.schedule_on_node(4, 200, [&] {
    bal.migrating_total_ += 1;
    bal.note_migration_started(4, 5);
  });
}
)lint"},
  });
  EXPECT_EQ(count_rule(report.diagnostics, "P3-partition-global-state", 5), 1);
  EXPECT_EQ(count_rule(report.diagnostics, "P1-partition-calls-global", 6), 1);
}

// --- A1: ownership marker validation ----------------------------------------

TEST(LintA1, UnknownAndUnboundMarkersAreFlagged) {
  const Report report = analyze_files({
      {"src/x/own.cpp", R"lint(
// ampom: partition-sticky
void f();

// ampom: global-only
int not_a_field_or_function;
)lint"},
  });
  EXPECT_EQ(count_rule(report.diagnostics, "A1-bad-ownership", 2), 1);
  EXPECT_EQ(count_rule(report.diagnostics, "A1-bad-ownership", 5), 1);
}

TEST(LintA1, DocCommentsQuotingTheVocabularyDoNotBind) {
  const Report report = analyze_files({
      {"src/x/doc.cpp", R"lint(
// The vocabulary is:
//   // ampom: global-only
//   // ampom-lint: partition-ok(reason)
void f() {}
)lint"},
  });
  EXPECT_EQ(count_rule(report.diagnostics, "A1-bad-ownership"), 0);
  EXPECT_TRUE(report.suppressions.empty());
}

// --- S0: stale suppressions -------------------------------------------------

TEST(LintS0, StaleSuppressionIsReportedUsedOneIsNot) {
  const Report report = analyze_files({
      {"src/x/supp.cpp", R"lint(
// ampom-lint: static-ok(write-once table)
static int lookup[16] = {};
// ampom-lint: nondet-ok(nothing nondeterministic on the next line)
int plain = 4;
)lint"},
  });
  const auto stale = ampom::lint::stale_suppressions(report);
  ASSERT_EQ(stale.size(), 1u);
  EXPECT_EQ(stale[0].rule, "S0-stale-suppression");
  EXPECT_EQ(stale[0].line, 4);
  EXPECT_NE(stale[0].message.find("nondet-ok"), std::string::npos);
}

// --- report rendering: chains, SARIF, fingerprints --------------------------

Report one_semantic_finding() {
  return analyze_files({
      {"src/bal/bal.hpp", kBalHeader},
      {"src/drv/drv.cpp", R"lint(
#include "bal.hpp"
void drive(Sim& sim, Balancer& bal) {
  sim.schedule_on_node(3, 100, [&] { bal.rebalance(); });
}
)lint"},
  });
}

TEST(LintReport, TextChainFormatIsPinned) {
  const Report report = one_semantic_finding();
  const std::string text = ampom::lint::render_text(report);
  EXPECT_NE(text.find("src/drv/drv.cpp:4: error: [P1-partition-calls-global]"),
            std::string::npos);
  EXPECT_NE(text.find("      chain:\n        -> schedule_on_node callback at "
                      "src/drv/drv.cpp:4 (src/drv/drv.cpp:4)\n"),
            std::string::npos);
  EXPECT_NE(text.find("      suppress with: // ampom-lint: partition-ok(<reason>)"),
            std::string::npos);
}

TEST(LintReport, SarifOutputIsPinned) {
  const Report report = one_semantic_finding();
  const std::string sarif = ampom::lint::render_sarif(report);
  EXPECT_NE(sarif.find("\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\""),
            std::string::npos);
  EXPECT_NE(sarif.find("\"version\":\"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"name\":\"ampom_lint\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\":\"P1-partition-calls-global\""), std::string::npos);
  EXPECT_NE(sarif.find("\"uri\":\"src/drv/drv.cpp\""), std::string::npos);
  EXPECT_NE(sarif.find("\"relatedLocations\":["), std::string::npos);
  EXPECT_NE(sarif.find("\"partialFingerprints\":{\"ampomLint/v1\":\""),
            std::string::npos);
  EXPECT_NE(sarif.find("\"level\":\"error\""), std::string::npos);
}

TEST(LintReport, FingerprintIgnoresLineMotion) {
  // The same finding pushed down by unrelated edits keeps its fingerprint,
  // so baselines survive code motion.
  const auto a = run("src/x/one.cpp", "static int hits = 0;");
  const auto b = run("src/x/one.cpp", "\n\n\nstatic int hits = 0;");
  ASSERT_EQ(a.size(), 1u);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_NE(a[0].line, b[0].line);
  EXPECT_EQ(ampom::lint::fingerprint(a[0]), ampom::lint::fingerprint(b[0]));
}

// --- baseline ----------------------------------------------------------------

TEST(LintBaseline, RoundTripSplitsFreshAndStale) {
  Report report;
  report.diagnostics = run("src/x/one.cpp", "static int hits = 0;");
  ASSERT_EQ(report.diagnostics.size(), 1u);

  const std::string rendered = ampom::lint::render_baseline(report);
  const ampom::lint::Baseline baseline = ampom::lint::parse_baseline(rendered);
  ASSERT_EQ(baseline.entries.size(), 1u);
  EXPECT_EQ(baseline.entries[0].rule, "D3-mutable-static");
  EXPECT_EQ(baseline.entries[0].fingerprint,
            ampom::lint::fingerprint(report.diagnostics[0]));

  // Same report against its own baseline: nothing fresh, nothing stale.
  const auto same = ampom::lint::apply_baseline(report, baseline);
  EXPECT_TRUE(same.fresh.empty());
  EXPECT_TRUE(same.stale.empty());

  // A new finding is fresh; the fixed finding leaves a stale entry.
  Report next;
  next.diagnostics = run("src/x/two.cpp", "static int other = 0;");
  const auto delta = ampom::lint::apply_baseline(next, baseline);
  ASSERT_EQ(delta.fresh.size(), 1u);
  EXPECT_EQ(delta.fresh[0].file, "src/x/two.cpp");
  ASSERT_EQ(delta.stale.size(), 1u);
  EXPECT_EQ(delta.stale[0].file, "src/x/one.cpp");
}

TEST(LintBaseline, MalformedBaselineThrows) {
  EXPECT_THROW((void)ampom::lint::parse_baseline("{\"entries\":[]}"),
               std::runtime_error);
  EXPECT_THROW((void)ampom::lint::parse_baseline(
                   "{\"tool\":\"ampom_lint\",\"baseline_version\":1,"
                   "\"entries\":[{\"fingerprint\":\"abc"),
               std::runtime_error);
}

// --- parallel indexing -------------------------------------------------------

TEST(LintJobs, ParallelAnalysisIsDeterministic) {
  std::vector<std::pair<std::string, std::string>> files;
  files.emplace_back("src/bal/bal.hpp", kBalHeader);
  files.emplace_back("src/bal/bal.cpp", kBalImpl);
  for (int i = 0; i < 6; ++i) {
    const std::string tag = std::to_string(i);
    files.emplace_back("src/drv/drv" + tag + ".cpp",
                       "#include \"bal.hpp\"\n"
                       "void drive" + tag + "(Sim& sim, Balancer& bal) {\n"
                       "  long base" + tag + " = rand();\n"
                       "  sim.schedule_at(base" + tag + ", 0);\n"
                       "  sim.schedule_on_node(3, 100, [&] { poke(bal); });\n"
                       "}\n");
  }
  const Report serial = analyze_files(files, 1);
  const Report parallel = analyze_files(files, 4);
  EXPECT_FALSE(serial.diagnostics.empty());
  EXPECT_EQ(ampom::lint::render_json(serial), ampom::lint::render_json(parallel));
}

}  // namespace
