// Chaos tests: migration and remote paging under injected faults.
//
// The reliable protocol stack (paging retransmission, ack'd migration
// chunks, heartbeat failure detection, deputy-side recovery) must carry a
// process through lossy links and a mid-run destination crash — and because
// every fault comes from one seeded RNG, reruns with the same seed must be
// bit-identical.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "balancer/cluster_sim.hpp"
#include "balancer/load_balancer.hpp"
#include "workload/synthetic.hpp"

namespace ampom::balancer {
namespace {

using sim::Time;

JobSpec paging_job(net::NodeId home, std::uint64_t touches = 120000) {
  JobSpec job;
  job.home = home;
  job.label = "chaos";
  job.make_workload = [touches] {
    return std::make_unique<workload::HotColdStream>(8 * sim::kMiB, /*hot_pages=*/256, touches,
                                                     /*cold_fraction=*/0.05,
                                                     Time::from_us(100));
  };
  return job;
}

driver::FaultPlan lossy_plan(double drop, std::uint64_t seed) {
  driver::FaultPlan plan;
  plan.seed = seed;
  plan.default_faults.drop_probability = drop;
  return plan;
}

TEST(Chaos, MigrationAndPagingCompleteUnderLoss) {
  // 1% and 5% message loss: the migration still commits, the migrant still
  // pages from its home node, and the ledger still accounts for every page.
  for (const double drop : {0.01, 0.05}) {
    ClusterSim world{3, driver::Scheme::Ampom};
    world.set_reliability(driver::ReliabilityConfig::all_on());
    world.set_fault_plan(lossy_plan(drop, /*seed=*/11));
    ProcessHost& host = world.spawn(paging_job(0));
    world.simulator().schedule_at(Time::from_sec(0.4), [&host] { host.migrate_to(1); });
    world.run();

    EXPECT_TRUE(host.finished()) << "drop=" << drop;
    EXPECT_EQ(host.migrations(), 1u) << "drop=" << drop;
    EXPECT_EQ(host.current_node(), 1u) << "drop=" << drop;
    // Final ownership: every page is either still home or at the migrant's
    // node — loss-driven retransmission never forked or leaked a page.
    const mem::PageLedger& ledger = host.ledger();
    for (mem::PageId page = 0; page < ledger.page_count(); ++page) {
      const net::NodeId owner = ledger.owner(page);
      EXPECT_TRUE(owner == 0u || owner == 1u) << "page " << page << " at " << owner;
    }
    // The faults really happened and the protocol really recovered.
    EXPECT_GT(world.fault_injector()->stats().dropped, 0u);
    const proc::PagingClientStats* paging = host.paging_stats(1);
    ASSERT_NE(paging, nullptr);
    if (drop >= 0.05) {
      EXPECT_GT(paging->retransmits, 0u);
    }
  }
}

TEST(Chaos, DeadDestinationAbortsMigrationAndUnfreezesAtSource) {
  ClusterSim world{3, driver::Scheme::Ampom};
  world.set_reliability(driver::ReliabilityConfig::all_on());
  world.crash_node(2);
  ProcessHost& host = world.spawn(paging_job(0, /*touches=*/40000));
  world.simulator().schedule_at(Time::from_sec(0.4), [&host] { host.migrate_to(2); });
  world.run();

  EXPECT_TRUE(host.finished());
  EXPECT_EQ(host.current_node(), 0u);  // never left home
  EXPECT_EQ(host.migrations(), 0u);
  EXPECT_EQ(host.failed_migrations(), 1u);
  // Nothing moved: the repartition is deferred until verified delivery.
  const mem::PageLedger& ledger = host.ledger();
  for (mem::PageId page = 0; page < ledger.page_count(); ++page) {
    EXPECT_EQ(ledger.owner(page), 0u);
  }
}

// The ISSUE's scripted chaos scenario: 2% loss everywhere, and the node the
// migrant runs on dies mid-run. Failure detection must notice the silence,
// the balancer must reclaim the stranded process, and the deputy must
// reconstruct page ownership from the HPT/ledger.
struct ChaosOutcome {
  double makespan_sec{0.0};
  std::uint64_t recoveries{0};
  std::uint64_t rehomes{0};
  std::uint64_t pages_recovered{0};
  std::uint64_t injected_drops{0};
  std::string trace;
  bool all_pages_home{true};
};

ChaosOutcome run_crash_scenario(std::uint64_t seed) {
  ChaosOutcome out;
  ClusterSim world{3, driver::Scheme::Ampom};
  world.set_reliability(driver::ReliabilityConfig::all_on());
  driver::FaultPlan plan = lossy_plan(0.02, seed);
  plan.crashes.push_back({/*node=*/1, /*at=*/Time::from_sec(1.2), /*restore_at=*/{}});
  world.set_fault_plan(plan);

  ProcessHost& host = world.spawn(paging_job(0));
  world.simulator().schedule_at(Time::from_sec(0.4), [&host] { host.migrate_to(1); });

  // The balancer acts purely as the failure handler here: a prohibitive
  // imbalance threshold disables load-driven moves.
  LoadBalancer::Config cfg;
  cfg.period = Time::from_ms(250);
  cfg.imbalance_threshold = 1e9;
  LoadBalancer balancer{world, cfg};
  balancer.start();
  world.run();
  balancer.stop();

  out.makespan_sec = world.makespan().sec();
  out.recoveries = host.recoveries();
  out.rehomes = balancer.rehomes();
  out.pages_recovered = host.deputy().stats().pages_recovered;
  out.injected_drops = world.fault_injector()->stats().dropped;
  out.trace = world.fault_injector()->trace();
  const mem::PageLedger& ledger = host.ledger();
  for (mem::PageId page = 0; page < ledger.page_count(); ++page) {
    out.all_pages_home = out.all_pages_home && ledger.owner(page) == 0u;
  }
  EXPECT_TRUE(host.finished());
  EXPECT_EQ(host.current_node(), 0u);  // reclaimed to home after the crash
  return out;
}

TEST(Chaos, CrashedHostIsDetectedAndMigrantRehomed) {
  const ChaosOutcome out = run_crash_scenario(/*seed=*/23);
  EXPECT_EQ(out.recoveries, 1u);
  EXPECT_EQ(out.rehomes, 1u);
  EXPECT_GT(out.pages_recovered, 0u);  // the deputy reclaimed the lost pages
  EXPECT_GT(out.injected_drops, 0u);   // the 2% loss was really in effect
  EXPECT_TRUE(out.all_pages_home);     // ledger fully reconstructed
}

TEST(Chaos, CrashScenarioIsDeterministic) {
  const ChaosOutcome a = run_crash_scenario(/*seed=*/23);
  const ChaosOutcome b = run_crash_scenario(/*seed=*/23);
  EXPECT_EQ(a.makespan_sec, b.makespan_sec);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.injected_drops, b.injected_drops);
  EXPECT_EQ(a.recoveries, b.recoveries);
}

TEST(Chaos, BalancerSkipsDeadNodesWhenPlacing) {
  // Four nodes, one dead: the balancer spreads load but never picks the
  // dead node as a destination.
  ClusterSim world{4, driver::Scheme::Ampom};
  world.set_reliability(driver::ReliabilityConfig::all_on());
  for (int i = 0; i < 4; ++i) {
    world.spawn(paging_job(0, /*touches=*/60000));
  }
  world.simulator().schedule_at(Time::from_ms(100), [&world] { world.crash_node(3); });
  LoadBalancer balancer{world, LoadBalancer::Config{}};
  balancer.start();
  world.run();

  EXPECT_GT(balancer.decisions(), 0u);
  for (const auto& host : world.hosts()) {
    EXPECT_TRUE(host->finished());
    EXPECT_NE(host->current_node(), 3u);
  }
}

}  // namespace
}  // namespace ampom::balancer
