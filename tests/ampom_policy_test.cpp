// End-to-end tests of the AMPoM fault policy (Algorithm 1) over the real
// fabric + deputy, with trace-stream workloads isolating each behaviour.

#include <gtest/gtest.h>

#include <memory>

#include "core/ampom_policy.hpp"
#include "mem/ledger.hpp"
#include "net/fabric.hpp"
#include "proc/deputy.hpp"
#include "proc/executor.hpp"
#include "proc/paging_client.hpp"
#include "simcore/simulator.hpp"

namespace ampom::core {
namespace {

using proc::Ref;
using sim::Time;

struct AmpomFixture : ::testing::Test {
  static constexpr net::NodeId kHome = 0;
  static constexpr net::NodeId kDest = 1;

  sim::Simulator simulator;
  net::Fabric fabric{simulator, 2};
  proc::WireCosts wire;
  proc::NodeCosts costs;
  AmpomConfig config;

  std::unique_ptr<proc::Process> process;
  std::unique_ptr<proc::Executor> executor;
  std::unique_ptr<proc::Deputy> deputy;
  std::unique_ptr<proc::PagingClient> client;
  std::unique_ptr<mem::PageLedger> ledger;
  std::unique_ptr<AmpomPolicy> policy;

  ResourceEstimates estimates{Time::from_us(100), Time::from_us(360), 1.0};

  void wire_up(std::vector<Ref> refs, std::uint64_t carried_pages = 1,
               sim::Bytes memory = 4 * sim::kMiB) {
    process = std::make_unique<proc::Process>(
        1, std::make_unique<proc::TraceStream>(std::move(refs), memory), kHome);
    auto& aspace = process->aspace();
    aspace.populate_all_dirty();
    ledger = std::make_unique<mem::PageLedger>(aspace.page_count(), kHome);

    executor = std::make_unique<proc::Executor>(simulator, *process, costs);
    deputy = std::make_unique<proc::Deputy>(simulator, fabric, wire, costs, kHome, 1,
                                            aspace.page_count(), ledger.get());
    client = std::make_unique<proc::PagingClient>(simulator, fabric, wire, kDest, kHome, 1);
    policy = std::make_unique<AmpomPolicy>(simulator, *executor, *client, config,
                                           [this] { return estimates; });
    executor->set_policy(policy.get());
    client->set_arrival_handler(
        [this](mem::PageId p, bool urgent) { policy->on_arrival(p, urgent); });

    std::uint64_t kept = 0;
    for (mem::PageId p = 0; p < aspace.page_count(); ++p) {
      if (kept < carried_pages) {
        deputy->hpt().set_loc(p, mem::PageTable::Loc::Remote);
        ledger->transfer(p, kHome, kDest);
        ++kept;
      } else {
        aspace.demote_to_remote(p);
        deputy->hpt().set_loc(p, mem::PageTable::Loc::Here);
      }
    }
    process->set_current_node(kDest);
    deputy->begin_service(kDest);

    fabric.set_handler(kHome, [this](const net::Message& m) {
      deputy->on_page_request(std::get<net::PageRequest>(m.payload));
    });
    fabric.set_handler(kDest, [this](const net::Message& m) {
      client->on_page_data(std::get<net::PageData>(m.payload));
    });
  }

  static std::vector<Ref> sequential_refs(mem::PageId first, std::uint64_t count,
                                          std::int64_t cpu_us = 10) {
    std::vector<Ref> refs;
    for (std::uint64_t i = 0; i < count; ++i) {
      refs.push_back(Ref{first + i, Time::from_us(cpu_us), Ref::Kind::Memory});
    }
    return refs;
  }
};

TEST_F(AmpomFixture, RequiresResourceProvider) {
  wire_up(sequential_refs(10, 1));
  EXPECT_THROW(AmpomPolicy(simulator, *executor, *client, config, nullptr),
               std::invalid_argument);
}

TEST_F(AmpomFixture, SequentialRunFinishesWithFewFaultRequests) {
  wire_up(sequential_refs(300, 200));
  executor->start();
  simulator.run();
  ASSERT_TRUE(executor->stats().finished);
  // Prefetching turns almost all faults into lookaside hits.
  EXPECT_LT(client->stats().fault_requests, 30u);
  EXPECT_GT(policy->stats().prefetch_pages_issued, 100u);
}

TEST_F(AmpomFixture, EveryRequestedPageArrivesExactlyOnce) {
  wire_up(sequential_refs(300, 150));
  executor->start();
  simulator.run();
  EXPECT_EQ(client->stats().pages_arrived, client->stats().pages_requested);
  EXPECT_TRUE(ledger->at_most_one_transfer_each());
}

TEST_F(AmpomFixture, WindowRecordsFaultsNotHits) {
  wire_up(sequential_refs(300, 50));
  executor->start();
  simulator.run();
  EXPECT_EQ(policy->stats().faults_seen,
            executor->stats().hard_faults + executor->stats().soft_faults +
                executor->stats().inflight_waits);
  EXPECT_GT(policy->stats().window_records, 0u);
}

TEST_F(AmpomFixture, SoftFaultResolvesWithoutNewRequestForThatPage) {
  // One hard fault on page 300; its batch prefetches 301+. The touch of 301
  // should be a soft fault (or hit) with no second fault request if the gap
  // is long enough for the batch to land.
  std::vector<Ref> refs = sequential_refs(300, 1, 10);
  refs.push_back(Ref{301, Time::from_ms(50), Ref::Kind::Memory});
  wire_up(std::move(refs));
  executor->start();
  simulator.run();
  EXPECT_EQ(client->stats().fault_requests, 1u);
  EXPECT_TRUE(executor->stats().finished);
}

TEST_F(AmpomFixture, AnalysisTimeAccruesPerFault) {
  wire_up(sequential_refs(300, 100));
  executor->start();
  simulator.run();
  const auto& stats = policy->stats();
  EXPECT_EQ(stats.analysis_time,
            config.analysis_cost() * static_cast<std::int64_t>(stats.faults_seen));
}

TEST_F(AmpomFixture, ZoneRespectsConfigCap) {
  config.zone_cap = 4;
  wire_up(sequential_refs(300, 100));
  executor->start();
  simulator.run();
  EXPECT_LE(policy->stats().last_zone_size, 4u);
  EXPECT_TRUE(executor->stats().finished);
}

TEST_F(AmpomFixture, UnbatchedModeSendsOneRequestPerPage) {
  config.batch_requests = false;
  wire_up(sequential_refs(300, 60));
  executor->start();
  simulator.run();
  EXPECT_TRUE(executor->stats().finished);
  // Every requested page went in its own message.
  EXPECT_EQ(client->stats().fault_requests + client->stats().prefetch_requests,
            client->stats().pages_requested);
}

TEST_F(AmpomFixture, TraceHookSeesEveryAnalysis) {
  wire_up(sequential_refs(300, 80));
  std::uint64_t calls = 0;
  double max_score = 0.0;
  policy->set_trace([&](const ZoneInputs& in, std::uint64_t, std::size_t) {
    ++calls;
    max_score = std::max(max_score, in.locality_score);
  });
  executor->start();
  simulator.run();
  EXPECT_EQ(calls, policy->stats().faults_seen);
  EXPECT_GT(max_score, 0.9);  // sequential stream -> S near 1
}

TEST_F(AmpomFixture, RandomPatternFallsBackToReadAheadFloor) {
  // Pseudo-random pages: S ~ 0, N = min_zone.
  std::vector<Ref> refs;
  std::uint64_t x = 12345;
  for (int i = 0; i < 120; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    refs.push_back(Ref{300 + (x >> 33) % 500, Time::from_us(50), Ref::Kind::Memory});
  }
  wire_up(std::move(refs));
  std::uint64_t floor_hits = 0;
  std::uint64_t analyses = 0;
  policy->set_trace([&](const ZoneInputs&, std::uint64_t n, std::size_t) {
    ++analyses;
    floor_hits += (n == config.min_zone) ? 1 : 0;
  });
  executor->start();
  simulator.run();
  EXPECT_TRUE(executor->stats().finished);
  EXPECT_GT(analyses, 0u);
  // Most analyses bottom out at the read-ahead floor.
  EXPECT_GT(static_cast<double>(floor_hits) / static_cast<double>(analyses), 0.7);
}

TEST_F(AmpomFixture, StatsCountZoneAndRequests) {
  wire_up(sequential_refs(300, 100));
  executor->start();
  simulator.run();
  const auto& s = policy->stats();
  EXPECT_GT(s.zone_pages_considered, 0u);
  EXPECT_GE(s.zone_pages_considered, s.prefetch_pages_issued);
  EXPECT_GT(s.requests_sent, 0u);
  EXPECT_LE(s.last_score, 1.0);
}

}  // namespace
}  // namespace ampom::core
