// Epidemic gossip dissemination and the zone-sharded balancer.
//
// Three claims are pinned here: (1) a load change reaches every daemon
// within a bounded number of gossip rounds while each daemon sends only
// O(fan_out) messages per period; (2) fan_out >= n-1 degenerates to the
// exact all-pairs ping mesh, bit-identical to a pre-gossip world; (3) the
// auditor's failure-detection invariants (I5) hold when heartbeats travel
// by gossip and a whole zone goes down and comes back.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "balancer/cluster_sim.hpp"
#include "balancer/load_balancer.hpp"
#include "cluster/infod.hpp"
#include "cluster/node.hpp"
#include "driver/builder.hpp"
#include "simcore/simulator.hpp"
#include "verify/invariant_auditor.hpp"
#include "workload/synthetic.hpp"

namespace ampom {
namespace {

using sim::Time;

// A 16-node gossip mesh of bare daemons (no processes): every daemon knows
// every other as a peer, but only contacts `fan_out` of them per tick.
struct GossipMesh {
  static constexpr std::size_t kNodes = 16;
  sim::Simulator simulator;
  net::Fabric fabric{simulator, kNodes};
  proc::NodeCosts costs;
  std::vector<std::unique_ptr<cluster::Node>> nodes;
  std::vector<std::unique_ptr<cluster::InfoDaemon>> infods;

  explicit GossipMesh(std::uint32_t fan_out, Time period = Time::from_ms(100)) {
    for (net::NodeId id = 0; id < kNodes; ++id) {
      nodes.push_back(std::make_unique<cluster::Node>(simulator, fabric, id, costs));
      infods.push_back(std::make_unique<cluster::InfoDaemon>(simulator, fabric, id, period));
      nodes[id]->set_infod(infods[id].get());
    }
    cluster::GossipConfig gossip;
    gossip.enabled = true;
    gossip.fan_out = fan_out;
    for (net::NodeId id = 0; id < kNodes; ++id) {
      for (net::NodeId peer = 0; peer < kNodes; ++peer) {
        if (peer != id) {
          infods[id]->add_peer(peer);
        }
      }
      infods[id]->set_gossip(gossip);
      infods[id]->set_failure_detection({/*enabled=*/true, 3.0, 8.0});
    }
  }

  void start_all() {
    for (auto& d : infods) {
      d->start();
    }
  }
};

TEST(Gossip, LoadConvergesWithinBoundedRounds) {
  GossipMesh mesh{/*fan_out=*/2};
  mesh.infods[0]->set_local_load_source([] { return 0.75; });
  mesh.start_all();
  // Push gossip with fan-out 2 infects 16 nodes in O(log n) expected
  // rounds; 20 rounds (2 s at 100 ms) is a generous deterministic bound —
  // the peer picks are seeded, so this either always passes or never does.
  mesh.simulator.run_until(Time::from_sec(2));
  for (net::NodeId id = 1; id < GossipMesh::kNodes; ++id) {
    EXPECT_DOUBLE_EQ(mesh.infods[id]->known_load(0), 0.75) << "daemon " << id;
  }
}

TEST(Gossip, PerNodeTrafficIsFanOutNotClusterSize) {
  GossipMesh mesh{/*fan_out=*/2};
  mesh.start_all();
  mesh.simulator.run_until(Time::from_sec(2));
  // 100 ms period over 2 s = at most 20 ticks started; each tick sends
  // exactly fan_out pings regardless of the 15 known peers.
  for (const auto& d : mesh.infods) {
    EXPECT_GT(d->pings_sent(), 0u);
    EXPECT_LE(d->pings_sent(), 2u * 20u);
  }
  // And the digest piggybacking actually carries third-party state.
  std::uint64_t relayed = 0;
  for (const auto& d : mesh.infods) {
    relayed += d->digest_entries_sent();
  }
  EXPECT_GT(relayed, 0u);
}

TEST(Gossip, SuspicionFollowsGossipSilence) {
  GossipMesh mesh{/*fan_out=*/3};
  mesh.start_all();
  mesh.simulator.run_until(Time::from_sec(2));
  // All alive while everyone gossips...
  EXPECT_EQ(mesh.infods[5]->peer_health(0), cluster::PeerHealth::kAlive);
  // ...then node 0 goes silent: no new versions originate, so every other
  // daemon's last_heard for node 0 ages past the dead threshold even though
  // gossip keeps flowing among the survivors.
  mesh.infods[0]->stop();
  mesh.simulator.run_until(Time::from_sec(4));
  for (net::NodeId id = 1; id < GossipMesh::kNodes; ++id) {
    EXPECT_EQ(mesh.infods[id]->peer_health(0), cluster::PeerHealth::kDead)
        << "daemon " << id;
  }
}

balancer::JobSpec burst_job(net::NodeId home, std::uint64_t touches, int index) {
  balancer::JobSpec job;
  job.home = home;
  job.label = "burst";
  job.start = Time::from_ms(50 * index);
  job.make_workload = [touches] {
    return std::make_unique<workload::HotColdStream>(8 * sim::kMiB, /*hot_pages=*/256,
                                                     touches, /*cold_fraction=*/0.05,
                                                     Time::from_us(90));
  };
  return job;
}

TEST(Gossip, FullFanOutIsBitIdenticalToLegacyMesh) {
  // fan_out = n-1 takes the exact legacy all-pairs code path: same wire
  // messages in the same order, so the whole run — balancer decisions,
  // migrations, event count — must match a pre-gossip world exactly.
  const auto run_world = [](bool gossip) {
    std::unique_ptr<balancer::ClusterSim> world;
    if (gossip) {
      const driver::Scenario scenario = driver::ScenarioBuilder{}
                                            .scheme(driver::Scheme::Ampom)
                                            .topology(1, 16)
                                            .gossip(/*fan_out=*/15)
                                            .build();
      world = std::make_unique<balancer::ClusterSim>(scenario);
    } else {
      world = std::make_unique<balancer::ClusterSim>(16, driver::Scheme::Ampom);
    }
    for (int i = 0; i < 6; ++i) {
      world->spawn(burst_job(0, 30000, i));
    }
    balancer::LoadBalancer::Config cfg;
    cfg.assumed_freeze_seconds = 0.2;
    balancer::LoadBalancer balancer{*world, cfg};
    balancer.start();
    world->run();

    struct Result {
      sim::Time makespan;
      std::uint64_t events;
      std::uint64_t migrations{0};
      std::uint64_t pings{0};
      std::vector<net::NodeId> placement;
    } result{world->makespan(), world->simulator().events_processed(), 0, 0, {}};
    for (const auto& host : world->hosts()) {
      result.migrations += host->migrations();
      result.placement.push_back(host->current_node());
    }
    for (net::NodeId id = 0; id < 16; ++id) {
      result.pings += world->infod(id).pings_sent();
    }
    return result;
  };

  const auto legacy = run_world(false);
  const auto gossip = run_world(true);
  EXPECT_EQ(gossip.makespan, legacy.makespan);
  EXPECT_EQ(gossip.events, legacy.events);
  EXPECT_EQ(gossip.migrations, legacy.migrations);
  EXPECT_EQ(gossip.pings, legacy.pings);
  EXPECT_EQ(gossip.placement, legacy.placement);
  EXPECT_GT(legacy.migrations, 0u);  // the comparison is not vacuous
}

// ---------------------------------------------------------------------------
// Digest wire-format versioning (kGossipFormatLoad -> kGossipFormatCache)
// ---------------------------------------------------------------------------

TEST(GossipVersioning, LoadFormatPingIsMigratedWithZeroPressure) {
  GossipMesh mesh{/*fan_out=*/2};
  net::GossipPing ping;
  ping.seq = 1;
  ping.sent_at = mesh.simulator.now();
  ping.cpu_load = 0.5;
  ping.sender_version = 7;
  ping.format = net::kGossipFormatLoad;
  // A stray pressure value on an old-format message must be ignored: the
  // field exists in memory, but the 24-byte entry framing never put it on
  // the wire, so receivers gate on the format stamp.
  ping.cache_pressure = 0.7;
  ping.digest.push_back({/*node=*/2, /*version=*/3, /*load=*/0.9, /*cache_pressure=*/0.8});
  mesh.infods[0]->on_gossip_ping(1, ping);
  EXPECT_DOUBLE_EQ(mesh.infods[0]->known_load(1), 0.5);
  EXPECT_DOUBLE_EQ(mesh.infods[0]->known_load(2), 0.9);
  EXPECT_EQ(mesh.infods[0]->peer_version(1), 7u);
  EXPECT_EQ(mesh.infods[0]->peer_version(2), 3u);
  EXPECT_DOUBLE_EQ(mesh.infods[0]->known_cache_pressure(1), 0.0);
  EXPECT_DOUBLE_EQ(mesh.infods[0]->known_cache_pressure(2), 0.0);
}

TEST(GossipVersioning, CacheFormatPingCarriesPressure) {
  GossipMesh mesh{/*fan_out=*/2};
  net::GossipPing ping;
  ping.seq = 1;
  ping.sent_at = mesh.simulator.now();
  ping.cpu_load = 0.5;
  ping.sender_version = 7;
  ping.format = net::kGossipFormatCache;
  ping.cache_pressure = 0.7;
  ping.digest.push_back({/*node=*/2, /*version=*/3, /*load=*/0.9, /*cache_pressure=*/0.8});
  mesh.infods[0]->on_gossip_ping(1, ping);
  EXPECT_DOUBLE_EQ(mesh.infods[0]->known_load(1), 0.5);
  EXPECT_DOUBLE_EQ(mesh.infods[0]->known_cache_pressure(1), 0.7);
  EXPECT_DOUBLE_EQ(mesh.infods[0]->known_cache_pressure(2), 0.8);
}

TEST(GossipVersioning, AckFormatIsGatedTheSameWay) {
  GossipMesh mesh{/*fan_out=*/2};
  net::GossipAck ack;
  ack.seq = 1;
  ack.ping_sent_at = mesh.simulator.now();
  ack.cpu_load = 0.4;
  ack.sender_version = 5;
  ack.format = net::kGossipFormatLoad;
  ack.cache_pressure = 0.9;
  mesh.infods[0]->on_gossip_ack(3, ack);
  EXPECT_DOUBLE_EQ(mesh.infods[0]->known_load(3), 0.4);
  EXPECT_DOUBLE_EQ(mesh.infods[0]->known_cache_pressure(3), 0.0);
  // The same peer upgraded: a newer-version cache-format ack takes effect.
  ack.sender_version = 6;
  ack.format = net::kGossipFormatCache;
  mesh.infods[0]->on_gossip_ack(3, ack);
  EXPECT_DOUBLE_EQ(mesh.infods[0]->known_cache_pressure(3), 0.9);
}

TEST(GossipVersioning, MixedFormatClusterStillConvergesOnLoadAndLiveness) {
  // Half the daemons speak the cache format, half the old load format; the
  // version/heartbeat semantics are format-independent, so load and
  // liveness converge exactly as in a single-format mesh.
  GossipMesh mesh{/*fan_out=*/3};
  for (net::NodeId id = 0; id < GossipMesh::kNodes; ++id) {
    cluster::GossipConfig config = mesh.infods[id]->gossip();
    config.cache_digest = id < GossipMesh::kNodes / 2;
    mesh.infods[id]->set_gossip(config);
  }
  mesh.infods[0]->set_local_load_source([] { return 0.75; });
  mesh.infods[0]->set_local_cache_pressure_source([] { return 0.6; });
  mesh.start_all();
  mesh.simulator.run_until(Time::from_sec(2));
  for (net::NodeId id = 1; id < GossipMesh::kNodes; ++id) {
    EXPECT_DOUBLE_EQ(mesh.infods[id]->known_load(0), 0.75) << "daemon " << id;
    EXPECT_EQ(mesh.infods[id]->peer_health(0), cluster::PeerHealth::kAlive)
        << "daemon " << id;
    // Pressure for node 0 is either still unheard (every relay on the path
    // spoke the old format) or exactly node 0's value — never garbage.
    const double pressure = mesh.infods[id]->known_cache_pressure(0);
    EXPECT_TRUE(pressure == 0.0 || pressure == 0.6) << "daemon " << id << ": " << pressure;
  }
}

TEST(GossipVersioning, CacheDigestMeshConvergesOnPressure) {
  // Full fan-out with the cache digest on: the degenerate tick keeps
  // gossiping (LoadPing cannot carry pressure), so every peer learns node
  // 0's pressure directly from its pings.
  GossipMesh mesh{/*fan_out=*/GossipMesh::kNodes - 1};
  for (net::NodeId id = 0; id < GossipMesh::kNodes; ++id) {
    cluster::GossipConfig config = mesh.infods[id]->gossip();
    config.cache_digest = true;
    mesh.infods[id]->set_gossip(config);
  }
  mesh.infods[0]->set_local_cache_pressure_source([] { return 0.6; });
  mesh.start_all();
  mesh.simulator.run_until(Time::from_sec(2));
  for (net::NodeId id = 1; id < GossipMesh::kNodes; ++id) {
    EXPECT_DOUBLE_EQ(mesh.infods[id]->known_cache_pressure(0), 0.6) << "daemon " << id;
  }
}

TEST(GossipVersioning, HierarchyPressureRidesTheDigest) {
  // End to end: a cache-model world wires the memory hierarchy into the
  // daemons' pressure source and flips the digests to the cache format, so
  // remote daemons see the loaded node's LLC pressure mid-run.
  const driver::Scenario scenario = driver::ScenarioBuilder{}
                                        .scheme(driver::Scheme::Ampom)
                                        .topology(/*zones=*/1, /*nodes_per_zone=*/4)
                                        .gossip(/*fan_out=*/3)
                                        .cache_model()
                                        .build();
  balancer::ClusterSim world{scenario};
  for (int i = 0; i < 3; ++i) {
    world.spawn(burst_job(0, 40000, i));
  }
  double seen = -1.0;
  world.simulator().schedule_at(Time::from_sec(1.0), [&] {
    seen = world.infod(1).known_cache_pressure(0);
  });
  world.run();
  EXPECT_GT(seen, 0.0);
}

TEST(ZonedBalancer, SheddsLoadWithinAndAcrossZones) {
  // Two zones of four; a 12-job burst lands entirely on node 0. The zoned
  // balancer first spreads within zone 0, and once that zone is internally
  // level but still towers over zone 1, the global tier moves jobs across.
  const driver::Scenario scenario = driver::ScenarioBuilder{}
                                        .scheme(driver::Scheme::Ampom)
                                        .topology(/*zones=*/2, /*nodes_per_zone=*/4)
                                        .gossip(/*fan_out=*/2)
                                        .build();
  balancer::ClusterSim world{scenario};
  for (int i = 0; i < 12; ++i) {
    world.spawn(burst_job(0, 40000, i));
  }
  balancer::LoadBalancer::Config cfg;
  cfg.assumed_freeze_seconds = 0.2;
  balancer::LoadBalancer balancer{world, cfg};
  balancer.start();
  world.run();

  for (const auto& host : world.hosts()) {
    EXPECT_TRUE(host->finished());
  }
  EXPECT_GT(balancer.intra_zone_moves(), 0u);
  EXPECT_GT(balancer.cross_zone_moves(), 0u);
  EXPECT_EQ(balancer.decisions(), balancer.intra_zone_moves() + balancer.cross_zone_moves());
}

TEST(ZonedBalancer, AuditorCleanUnderGossipAndZoneOutage) {
  // I5 under gossip: zone 1 crashes whole and comes back; heartbeat
  // counters travel by gossip digest, and the auditor's per-zone majority
  // checks must stay violation-free through outage, detection and heal.
  const driver::Scenario scenario = driver::ScenarioBuilder{}
                                        .scheme(driver::Scheme::Ampom)
                                        .topology(/*zones=*/2, /*nodes_per_zone=*/3)
                                        .gossip(/*fan_out=*/2)
                                        .reliability(driver::ReliabilityConfig::all_on())
                                        .zone_outage(/*zone=*/1u, Time::from_sec(1.5),
                                                     /*restore_at=*/Time::from_sec(4))
                                        .build();
  balancer::ClusterSim world{scenario};
  verify::InvariantAuditor auditor{world};
  for (int i = 0; i < 6; ++i) {
    world.spawn(burst_job(/*home=*/static_cast<net::NodeId>(i % 3), 40000, i));
  }
  balancer::LoadBalancer::Config cfg;
  cfg.assumed_freeze_seconds = 0.2;
  balancer::LoadBalancer balancer{world, cfg};
  balancer.start();
  world.run();

  for (const auto& host : world.hosts()) {
    EXPECT_TRUE(host->finished());
  }
  EXPECT_EQ(auditor.violations(), 0u) << auditor.first_violation();
  EXPECT_GT(auditor.epochs_run(), 0u);
}

}  // namespace
}  // namespace ampom
