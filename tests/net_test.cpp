// Unit tests for the network fabric: serialization, queueing, RX sharing,
// control-message bypass, counters, link overrides, traffic shaping and
// background traffic.

#include <gtest/gtest.h>

#include <vector>

#include "net/background_traffic.hpp"
#include "net/fabric.hpp"
#include "net/traffic_shaper.hpp"
#include "simcore/simulator.hpp"

namespace ampom::net {
namespace {

using namespace ampom::sim::literals;
using sim::Time;

struct FabricFixture : ::testing::Test {
  sim::Simulator simulator;
  Fabric fabric{simulator, 4};

  Message data(NodeId src, NodeId dst, sim::Bytes bytes) {
    return Message{src, dst, bytes, Background{}};
  }
};

TEST_F(FabricFixture, NeedsAtLeastTwoNodes) {
  EXPECT_THROW((Fabric{simulator, 1}), std::invalid_argument);
  EXPECT_THROW((Fabric{simulator, 0}), std::invalid_argument);
}

TEST_F(FabricFixture, SelfSendRejected) {
  EXPECT_THROW(fabric.send(data(1, 1, 100)), std::logic_error);
}

TEST_F(FabricFixture, SingleMessageDelayIsSerializationPlusLatency) {
  // 12500 bytes at 100 Mb/s = 1 ms serialization; latency 75 us.
  const Time arrival = fabric.send(data(0, 1, 12500));
  EXPECT_EQ(arrival, Time::from_us(1075));
}

TEST_F(FabricFixture, BackToBackMessagesQueueOnTxPort) {
  const Time first = fabric.send(data(0, 1, 12500));
  const Time second = fabric.send(data(0, 1, 12500));
  EXPECT_EQ(first, Time::from_us(1075));
  EXPECT_EQ(second, Time::from_us(2075));  // waited 1 ms behind the first
}

TEST_F(FabricFixture, TwoSendersShareTheReceiverRxPort) {
  const Time a = fabric.send(data(0, 2, 12500));
  const Time b = fabric.send(data(1, 2, 12500));
  EXPECT_EQ(a, Time::from_us(1075));
  // Different TX ports, same RX port: the second message serializes after
  // the first on RX.
  EXPECT_EQ(b, Time::from_us(2075));
}

TEST_F(FabricFixture, DistinctReceiversDoNotInterfere) {
  const Time a = fabric.send(data(0, 2, 12500));
  const Time b = fabric.send(data(1, 3, 12500));
  EXPECT_EQ(a, b);
}

TEST_F(FabricFixture, ControlMessageBypassesIdleQueueEntirely) {
  // 64 bytes at 100 Mb/s = 5.12 us; idle path, no frame wait.
  const Time arrival = fabric.send(data(0, 1, 64));
  EXPECT_EQ(arrival.ns(), Time::from_us(75).ns() + 5120);
}

TEST_F(FabricFixture, ControlMessageWaitsOneFrameOnBusyPath) {
  fabric.send(data(0, 1, 1'000'000));  // saturate the 0->1 path
  const Time arrival = fabric.send(data(0, 1, 64));
  // frame (1500 B = 120 us) + own serialization + latency, NOT the full queue.
  const Time expected = Time::from_ns(120'000 + 5'120 + 75'000);
  EXPECT_EQ(arrival, expected);
}

TEST_F(FabricFixture, BulkMessageDoesNotBypass) {
  fabric.send(data(0, 1, 1'000'000));
  const Time arrival = fabric.send(data(0, 1, 5000));
  // 1 MB at 12.5 MB/s = 80 ms, then 0.4 ms, then latency.
  EXPECT_EQ(arrival, Time::from_us(80'000 + 400 + 75));
}

TEST_F(FabricFixture, HandlerReceivesPayloadAndCounters) {
  std::vector<sim::Bytes> seen;
  fabric.set_handler(1, [&](const Message& m) { seen.push_back(m.wire_bytes); });
  fabric.send(data(0, 1, 1000));
  fabric.send(data(0, 1, 2000));
  simulator.run();
  EXPECT_EQ(seen, (std::vector<sim::Bytes>{1000, 2000}));
  EXPECT_EQ(fabric.counters(0).tx_bytes, 3000u);
  EXPECT_EQ(fabric.counters(0).tx_messages, 2u);
  EXPECT_EQ(fabric.counters(1).rx_bytes, 3000u);
  EXPECT_EQ(fabric.counters(1).rx_messages, 2u);
  EXPECT_EQ(fabric.counters(2).rx_bytes, 0u);
}

TEST_F(FabricFixture, RxCountersUpdateOnlyAtArrival) {
  fabric.set_handler(1, [](const Message&) {});
  fabric.send(data(0, 1, 1000));
  EXPECT_EQ(fabric.counters(1).rx_bytes, 0u);
  simulator.run();
  EXPECT_EQ(fabric.counters(1).rx_bytes, 1000u);
}

TEST_F(FabricFixture, PairOverrideChangesDelay) {
  fabric.set_link(0, 1, LinkParams{sim::Bandwidth::mbits_per_sec(10), Time::from_ms(1)});
  const Time slow = fabric.send(data(0, 1, 12500));
  EXPECT_EQ(slow, Time::from_ms(11));  // 10 ms serialization + 1 ms latency
  const Time fast = fabric.send(data(3, 2, 12500));
  EXPECT_EQ(fast, Time::from_us(1075));  // other pairs keep the default
}

TEST_F(FabricFixture, PairOverrideIsSymmetric) {
  fabric.set_link(1, 0, LinkParams{sim::Bandwidth::mbits_per_sec(10), Time::from_ms(1)});
  EXPECT_EQ(fabric.link(0, 1).latency, Time::from_ms(1));
  EXPECT_EQ(fabric.link(1, 0).latency, Time::from_ms(1));
}

TEST_F(FabricFixture, ShaperAppliesAndRestoresPair) {
  TrafficShaper shaper{fabric};
  const LinkParams before = fabric.link(0, 1);
  shaper.shape_pair(0, 1, TrafficShaper::broadband());
  EXPECT_EQ(fabric.link(0, 1).bandwidth.bps(), 6'000'000u);
  EXPECT_EQ(fabric.link(0, 1).latency, Time::from_ms(2));
  shaper.restore();
  EXPECT_EQ(fabric.link(0, 1).bandwidth, before.bandwidth);
  EXPECT_EQ(fabric.link(0, 1).latency, before.latency);
}

TEST_F(FabricFixture, ShaperShapeAllAffectsEveryPair) {
  TrafficShaper shaper{fabric};
  shaper.shape_all(TrafficShaper::broadband());
  EXPECT_EQ(fabric.link(2, 3).bandwidth.bps(), 6'000'000u);
  shaper.restore();
  EXPECT_EQ(fabric.link(2, 3).bandwidth.bps(), 100'000'000u);
}

TEST_F(FabricFixture, BackgroundTrafficApproximatesTargetLoad) {
  BackgroundTraffic traffic{simulator, fabric, 0, 1, /*load=*/0.4, /*chunk=*/16384};
  traffic.start();
  simulator.run_until(Time::from_sec(20));
  traffic.stop();
  const double bytes = static_cast<double>(fabric.counters(0).tx_bytes);
  const double load = bytes * 8.0 / (20.0 * 100e6);
  EXPECT_NEAR(load, 0.4, 0.08);
}

TEST_F(FabricFixture, BackgroundTrafficValidatesArguments) {
  EXPECT_THROW((BackgroundTraffic{simulator, fabric, 0, 1, 0.0}), std::invalid_argument);
  EXPECT_THROW((BackgroundTraffic{simulator, fabric, 0, 1, 1.0}), std::invalid_argument);
  EXPECT_THROW((BackgroundTraffic{simulator, fabric, 0, 1, 0.5, 0}), std::invalid_argument);
}

TEST_F(FabricFixture, BackgroundTrafficStopsCleanly) {
  BackgroundTraffic traffic{simulator, fabric, 0, 1, 0.3};
  traffic.start();
  simulator.run_until(Time::from_sec(1));
  traffic.stop();
  const auto sent = traffic.chunks_sent();
  EXPECT_GT(sent, 0u);
  simulator.run_until(Time::from_sec(2));
  EXPECT_EQ(traffic.chunks_sent(), sent);
}

}  // namespace
}  // namespace ampom::net
