// Tests of the workload generators: bounds, coverage, determinism, phase
// structure and the locality each kernel is supposed to exhibit.

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "core/locality.hpp"
#include "workload/dgemm.hpp"
#include "workload/fft.hpp"
#include "workload/hpcc.hpp"
#include "workload/hpl.hpp"
#include "workload/ptrans.hpp"
#include "workload/random_access.hpp"
#include "workload/stream_triad.hpp"
#include "workload/synthetic.hpp"

namespace ampom::workload {
namespace {

using proc::Ref;

struct Drained {
  std::uint64_t count{0};
  std::set<mem::PageId> pages;
  sim::Time cpu{};
};

Drained drain(proc::ReferenceStream& stream, std::uint64_t limit = 50'000'000) {
  Drained d;
  while (d.count < limit) {
    const auto ref = stream.next();
    if (!ref) {
      break;
    }
    ++d.count;
    if (ref->kind == Ref::Kind::Memory) {
      d.pages.insert(ref->page);
    }
    d.cpu += ref->cpu;
  }
  return d;
}

// Pages needed to cover `fraction` of a stream's heap.
std::uint64_t heap_fraction(const BufferedStream& stream, double fraction) {
  return static_cast<std::uint64_t>(
      static_cast<double>(stream.layout().pages(mem::Region::Heap)) * fraction);
}

// Feed a stream's first-touch sequence (deduplicated prefix of heap pages)
// into the locality analyzer and return the mean score, approximating the
// post-migration fault stream the kernel produces.
double fault_stream_score(proc::ReferenceStream& stream, std::size_t samples = 500) {
  core::LookbackWindow window{20};
  core::LocalityAnalyzer analyzer{4};
  std::unordered_set<mem::PageId> seen;
  double total = 0.0;
  std::size_t scored = 0;
  std::int64_t t = 0;
  while (scored < samples) {
    const auto ref = stream.next();
    if (!ref) {
      break;
    }
    if (ref->kind != Ref::Kind::Memory || !seen.insert(ref->page).second) {
      continue;  // only first touches fault
    }
    window.record(ref->page, sim::Time::from_us(++t), 1.0);
    if (window.full()) {
      total += analyzer.score(window);
      ++scored;
    }
  }
  return scored == 0 ? 0.0 : total / static_cast<double>(scored);
}

TEST(StreamTriad, TouchesAllThreeArrays) {
  StreamTriadConfig cfg;
  cfg.memory = 8 * sim::kMiB;
  cfg.iterations = 1;
  StreamTriad stream{cfg};
  const Drained d = drain(stream);
  EXPECT_GT(d.count, 0u);
  // Nearly the whole heap gets touched (3 equal arrays).
  const auto heap = stream.layout().pages(mem::Region::Heap);
  EXPECT_GT(d.pages.size(), heap * 9 / 10);
}

TEST(StreamTriad, RefCountMatchesPassStructure) {
  StreamTriadConfig cfg;
  cfg.memory = 4 * sim::kMiB;
  cfg.iterations = 2;
  StreamTriad stream{cfg};
  const Drained d = drain(stream);
  const std::uint64_t n = stream.layout().pages(mem::Region::Heap) / 3;
  // init(3n) + iters * (2n+2n+3n+3n) plus sparse aux touches.
  const std::uint64_t expected = 3 * n + cfg.iterations * 10 * n;
  EXPECT_GE(d.count, expected);
  EXPECT_LE(d.count, expected + expected / 100 + 8);
}

TEST(StreamTriad, HighSpatialLocalityFaultStream) {
  StreamTriadConfig cfg;
  cfg.memory = 16 * sim::kMiB;
  StreamTriad stream{cfg};
  EXPECT_GT(fault_stream_score(stream), 0.8);  // paper Fig. 4: high spatial
}

TEST(Dgemm, CoversWorkingSetOnly) {
  DgemmConfig cfg;
  cfg.memory = 32 * sim::kMiB;
  cfg.working_set = 8 * sim::kMiB;
  Dgemm stream{cfg};
  const Drained d = drain(stream);
  const mem::PageId heap_begin = stream.layout().begin(mem::Region::Heap);
  const std::uint64_t ws_pages = mem::pages_for_bytes(cfg.working_set);
  for (const mem::PageId p : d.pages) {
    if (stream.layout().region_of(p) == mem::Region::Heap) {
      EXPECT_LT(p - heap_begin, ws_pages);
    }
  }
  // §5.6: pages beyond the working set are never referenced.
  EXPECT_LT(d.pages.size(), ws_pages + 300);
}

TEST(Dgemm, WorkingSetLargerThanMemoryRejected) {
  DgemmConfig cfg;
  cfg.memory = 8 * sim::kMiB;
  cfg.working_set = 16 * sim::kMiB;
  EXPECT_THROW(Dgemm{cfg}, std::invalid_argument);
}

TEST(Dgemm, BlockRevisitsGiveTemporalLocality) {
  DgemmConfig cfg;
  cfg.memory = 16 * sim::kMiB;
  Dgemm stream{cfg};
  const Drained d = drain(stream);
  // Many more references than distinct pages: blocks are revisited.
  EXPECT_GT(d.count, d.pages.size() * 3);
}

TEST(Dgemm, GridIsSquare) {
  DgemmConfig cfg;
  cfg.memory = 64 * sim::kMiB;
  Dgemm stream{cfg};
  EXPECT_GE(stream.grid(), 2u);
}

TEST(Dgemm, HighSpatialLocalityFaultStream) {
  DgemmConfig cfg;
  cfg.memory = 16 * sim::kMiB;
  Dgemm stream{cfg};
  EXPECT_GT(fault_stream_score(stream), 0.8);
}

TEST(RandomAccess, UpdateCountMatchesConfig) {
  RandomAccessConfig cfg;
  cfg.memory = 8 * sim::kMiB;
  cfg.updates_per_page = 2.0;
  RandomAccess stream{cfg};
  const Drained d = drain(stream);
  const std::uint64_t table = stream.layout().pages(mem::Region::Heap);
  EXPECT_EQ(stream.total_updates(), static_cast<std::uint64_t>(2.0 * static_cast<double>(table)));
  // updates + bookkeeping + verification sweep.
  EXPECT_GT(d.count, stream.total_updates() + table);
}

TEST(RandomAccess, LowSpatialLocalityFaultStream) {
  RandomAccessConfig cfg;
  cfg.memory = 16 * sim::kMiB;
  RandomAccess stream{cfg};
  EXPECT_LT(fault_stream_score(stream), 0.4);  // paper Fig. 4: low spatial
}

TEST(RandomAccess, DeterministicForSameSeed) {
  RandomAccessConfig cfg;
  cfg.memory = 4 * sim::kMiB;
  cfg.updates_per_page = 1.0;
  RandomAccess a{cfg};
  RandomAccess b{cfg};
  for (int i = 0; i < 5000; ++i) {
    const auto ra = a.next();
    const auto rb = b.next();
    ASSERT_EQ(ra.has_value(), rb.has_value());
    if (!ra) {
      break;
    }
    ASSERT_EQ(ra->page, rb->page);
  }
}

TEST(RandomAccess, DifferentSeedsDiffer) {
  RandomAccessConfig cfg;
  cfg.memory = 4 * sim::kMiB;
  RandomAccessConfig cfg2 = cfg;
  cfg2.seed ^= 0xDEAD;
  RandomAccess a{cfg};
  RandomAccess b{cfg2};
  int diff = 0;
  for (int i = 0; i < 1000; ++i) {
    const auto ra = a.next();
    const auto rb = b.next();
    if (ra && rb && ra->page != rb->page) {
      ++diff;
    }
  }
  EXPECT_GT(diff, 500);
}

TEST(Fft, StagesBoundedByVectorSize) {
  FftConfig cfg;
  cfg.memory = 8 * sim::kMiB;
  cfg.max_stages = 30;
  Fft stream{cfg};
  EXPECT_LE(stream.stages(), 11u);  // log2(~2k pages)
  EXPECT_GT(stream.stages(), 5u);
}

TEST(Fft, TouchesWholeVectorRepeatedly) {
  FftConfig cfg;
  cfg.memory = 8 * sim::kMiB;
  Fft stream{cfg};
  const Drained d = drain(stream);
  const auto heap = stream.layout().pages(mem::Region::Heap);
  EXPECT_GT(d.pages.size(), heap * 9 / 10);
  EXPECT_GT(d.count, heap * (stream.stages() + 1));
}

TEST(Fft, ModerateSpatialLocalityFaultStream) {
  FftConfig cfg;
  cfg.memory = 16 * sim::kMiB;
  Fft stream{cfg};
  const double s = fault_stream_score(stream);
  EXPECT_GT(s, 0.5);  // init sweep is sequential
}

TEST(Hpl, TouchesWholeMatrixWithHeavyReuse) {
  HplConfig cfg;
  cfg.memory = 16 * sim::kMiB;
  Hpl stream{cfg};
  const Drained d = drain(stream);
  const std::uint64_t matrix = stream.grid() * stream.grid();
  EXPECT_GE(stream.grid(), 2u);
  // Every block touched; trailing updates revisit blocks O(grid) times.
  EXPECT_GT(d.pages.size(), heap_fraction(stream, 0.9));
  EXPECT_GT(d.count, d.pages.size() * 2);
  (void)matrix;
}

TEST(Hpl, HighSpatialLocalityFaultStream) {
  HplConfig cfg;
  cfg.memory = 16 * sim::kMiB;
  Hpl stream{cfg};
  EXPECT_GT(fault_stream_score(stream), 0.8);
}

TEST(Ptrans, TouchesBothMatricesOnce) {
  PtransConfig cfg;
  cfg.memory = 16 * sim::kMiB;
  Ptrans stream{cfg};
  const Drained d = drain(stream);
  EXPECT_GT(d.pages.size(), heap_fraction(stream, 0.9));
  // One transpose pass: roughly init (2m) + 3 touches per destination page.
  const std::uint64_t m = stream.layout().pages(mem::Region::Heap) / 2;
  EXPECT_LT(d.count, m * 6);
}

TEST(Ptrans, ModerateSpatialLocality) {
  PtransConfig cfg;
  cfg.memory = 16 * sim::kMiB;
  Ptrans stream{cfg};
  const double s = fault_stream_score(stream);
  EXPECT_GT(s, 0.4);  // sequential init + interleaved transpose streams
}

TEST(Hpcc, FactoryProducesEveryKernel) {
  for (const HpccKernel k : {HpccKernel::Dgemm, HpccKernel::Stream, HpccKernel::RandomAccess,
                             HpccKernel::Fft}) {
    const auto stream = make_hpcc_kernel(k, 65);
    ASSERT_NE(stream, nullptr);
    EXPECT_EQ(stream->memory_bytes(), 65 * sim::kMiB);
    EXPECT_STREQ(stream->name(), hpcc_kernel_name(k));
  }
}

TEST(Hpcc, Table1SizesMatchThePaper) {
  EXPECT_EQ(kDgemmCases.size(), 5u);
  EXPECT_EQ(kDgemmCases.front().memory_mib, 115u);
  EXPECT_EQ(kDgemmCases.back().memory_mib, 575u);
  EXPECT_EQ(kDgemmCases.back().problem_size, 17350u);
  EXPECT_EQ(kStreamCases[2].problem_size, 13450u);
  EXPECT_EQ(kRandomAccessCases.back().memory_mib, 513u);
  EXPECT_EQ(kFftCases.front().memory_mib, 65u);
}

TEST(Hpcc, SmallWorkingSetFactory) {
  const auto stream = make_small_ws_dgemm(64, 16);
  EXPECT_EQ(stream->memory_bytes(), 64 * sim::kMiB);
}

TEST(Synthetic, SequentialCoversHeapPerPass) {
  SequentialStream stream{4 * sim::kMiB, 2, sim::Time::from_us(1)};
  const Drained d = drain(stream);
  const auto heap = stream.layout().pages(mem::Region::Heap);
  EXPECT_GE(d.count, heap * 2);
  EXPECT_GE(d.pages.size(), heap);
}

TEST(Synthetic, RandomStaysInHeap) {
  UniformRandomStream stream{4 * sim::kMiB, 5000, sim::Time::from_us(1)};
  const Drained d = drain(stream);
  EXPECT_GE(d.count, 5000u);  // 5000 + a few aux touches
  EXPECT_LE(d.count, 5012u);
  const auto& layout = stream.layout();
  for (const mem::PageId p : d.pages) {
    const auto region = layout.region_of(p);
    EXPECT_TRUE(region == mem::Region::Heap || region == mem::Region::Code ||
                region == mem::Region::Stack);
  }
}

TEST(Synthetic, InterleavedProducesStridePatterns) {
  InterleavedStream stream{8 * sim::kMiB, 3, sim::Time::from_us(1)};
  core::LookbackWindow window{20};
  core::LocalityAnalyzer analyzer{4};
  std::int64_t t = 0;
  for (int i = 0; i < 60; ++i) {
    const auto ref = stream.next();
    ASSERT_TRUE(ref.has_value());
    window.record(ref->page, sim::Time::from_us(++t), 1.0);
  }
  const auto counts = analyzer.stride_counts(window);
  EXPECT_GT(counts[2], 10u);  // stride-3 links from 3 interleaved cursors
}

TEST(Synthetic, HotColdMostlyHitsHotSet) {
  HotColdStream stream{8 * sim::kMiB, /*hot=*/16, /*touches=*/10000, /*cold=*/0.1,
                       sim::Time::from_us(1)};
  const Drained d = drain(stream);
  EXPECT_GT(d.count, 10000u - 1);
  // Distinct pages: 16 hot + ~10% cold excursions, far below touch count.
  EXPECT_LT(d.pages.size(), 1600u);
}

TEST(Synthetic, InteractiveEmitsSyscalls) {
  InteractiveStream stream{4 * sim::kMiB, /*bursts=*/10, /*pages=*/20, /*syscalls=*/3,
                           sim::Time::from_us(5)};
  std::uint64_t syscalls = 0;
  std::uint64_t memory = 0;
  while (const auto ref = stream.next()) {
    (ref->kind == Ref::Kind::Syscall ? syscalls : memory) += 1;
  }
  EXPECT_EQ(syscalls, 30u);
  EXPECT_GE(memory, 200u);
}

TEST(Synthetic, AuxTouchesHitCodeAndStack) {
  SequentialStream stream{16 * sim::kMiB, 1, sim::Time::from_us(1)};
  const Drained d = drain(stream);
  bool saw_code = false;
  bool saw_stack = false;
  for (const mem::PageId p : d.pages) {
    const auto region = stream.layout().region_of(p);
    saw_code |= region == mem::Region::Code;
    saw_stack |= region == mem::Region::Stack;
  }
  EXPECT_TRUE(saw_code);
  EXPECT_TRUE(saw_stack);
}

}  // namespace
}  // namespace ampom::workload
