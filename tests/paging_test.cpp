// Tests of the remote-paging protocol: deputy service, paging client
// transport, and the NoPrefetch demand-paging policy end to end over the
// fabric.

#include <gtest/gtest.h>

#include <memory>

#include "mem/ledger.hpp"
#include "net/fabric.hpp"
#include "net/fault_injector.hpp"
#include "proc/demand_paging.hpp"
#include "proc/deputy.hpp"
#include "proc/executor.hpp"
#include "proc/paging_client.hpp"
#include "simcore/simulator.hpp"

namespace ampom::proc {
namespace {

using sim::Time;

struct PagingFixture : ::testing::Test {
  static constexpr net::NodeId kHome = 0;
  static constexpr net::NodeId kDest = 1;

  sim::Simulator simulator;
  net::Fabric fabric{simulator, 2};
  WireCosts wire;
  NodeCosts costs;

  std::unique_ptr<Process> process;
  std::unique_ptr<Executor> executor;
  std::unique_ptr<Deputy> deputy;
  std::unique_ptr<PagingClient> client;
  std::unique_ptr<mem::PageLedger> ledger;

  // Build a migrated process whose pages beyond the first `local` are at home.
  void wire_up(std::vector<Ref> refs, std::uint64_t local_pages) {
    process = std::make_unique<Process>(
        1, std::make_unique<TraceStream>(std::move(refs), 2 * sim::kMiB), kHome);
    auto& aspace = process->aspace();
    aspace.populate_all_dirty();
    ledger = std::make_unique<mem::PageLedger>(aspace.page_count(), kHome);

    executor = std::make_unique<Executor>(simulator, *process, costs);
    deputy = std::make_unique<Deputy>(simulator, fabric, wire, costs, kHome, 1,
                                      aspace.page_count(), ledger.get());
    client = std::make_unique<PagingClient>(simulator, fabric, wire, kDest, kHome, 1);

    std::uint64_t kept = 0;
    for (mem::PageId p = 0; p < aspace.page_count(); ++p) {
      if (kept < local_pages) {
        deputy->hpt().set_loc(p, mem::PageTable::Loc::Remote);
        ledger->transfer(p, kHome, kDest);
        ++kept;
      } else {
        aspace.demote_to_remote(p);
        deputy->hpt().set_loc(p, mem::PageTable::Loc::Here);
      }
    }
    process->set_current_node(kDest);
    deputy->begin_service(kDest);

    fabric.set_handler(kHome, [this](const net::Message& m) {
      deputy->on_page_request(std::get<net::PageRequest>(m.payload));
    });
    fabric.set_handler(kDest, [this](const net::Message& m) {
      client->on_page_data(std::get<net::PageData>(m.payload));
    });
  }
};

TEST_F(PagingFixture, SinglePageRoundTrip) {
  wire_up({}, 1);
  mem::PageId arrived = mem::kInvalidPage;
  bool urgent_flag = false;
  client->set_arrival_handler([&](mem::PageId p, bool urgent) {
    arrived = p;
    urgent_flag = urgent;
  });
  const mem::PageId target = 10;
  process->aspace().mark_in_flight(target);
  client->request_pages({target}, target);
  simulator.run();
  EXPECT_EQ(arrived, target);
  EXPECT_TRUE(urgent_flag);
  EXPECT_EQ(deputy->stats().pages_served, 1u);
  EXPECT_EQ(deputy->stats().urgent_pages_served, 1u);
  EXPECT_EQ(deputy->hpt().loc(target), mem::PageTable::Loc::Remote);
  EXPECT_EQ(ledger->owner(target), kDest);
}

TEST_F(PagingFixture, BatchStreamsUrgentFirst) {
  wire_up({}, 1);
  std::vector<mem::PageId> order;
  client->set_arrival_handler([&](mem::PageId p, bool) { order.push_back(p); });
  for (mem::PageId p : {mem::PageId{20}, mem::PageId{21}, mem::PageId{22}}) {
    process->aspace().mark_in_flight(p);
  }
  client->request_pages({20, 21, 22}, 20);
  simulator.run();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 20u);  // urgent page leads the stream
  EXPECT_EQ(client->stats().pages_arrived, 3u);
  EXPECT_EQ(client->stats().fault_requests, 1u);
  EXPECT_EQ(client->stats().prefetch_pages_requested, 2u);
}

TEST_F(PagingFixture, PrefetchOnlyRequestHasNoUrgent) {
  wire_up({}, 1);
  int urgent_count = 0;
  client->set_arrival_handler([&](mem::PageId, bool urgent) { urgent_count += urgent; });
  for (mem::PageId p : {mem::PageId{30}, mem::PageId{31}}) {
    process->aspace().mark_in_flight(p);
  }
  client->request_pages({30, 31}, mem::kInvalidPage);
  simulator.run();
  EXPECT_EQ(urgent_count, 0);
  EXPECT_EQ(client->stats().fault_requests, 0u);
  EXPECT_EQ(client->stats().prefetch_requests, 1u);
}

TEST_F(PagingFixture, EmptyOrMisorderedRequestThrows) {
  wire_up({}, 1);
  EXPECT_THROW(client->request_pages({}, mem::kInvalidPage), std::logic_error);
  EXPECT_THROW(client->request_pages({5, 6}, 6), std::logic_error);
}

TEST_F(PagingFixture, DeputyRejectsPageNotAtHome) {
  wire_up({}, 1);
  // Page 0 was carried with the migrant; requesting it is a protocol bug.
  client->request_pages({0}, 0);
  EXPECT_THROW(simulator.run(), std::logic_error);
}

TEST_F(PagingFixture, DeputyRejectsDoubleServe) {
  wire_up({}, 1);
  client->set_arrival_handler([](mem::PageId, bool) {});
  process->aspace().mark_in_flight(10);
  client->request_pages({10}, 10);
  simulator.run();
  client->request_pages({10}, 10);  // served already: HPT says Remote
  EXPECT_THROW(simulator.run(), std::logic_error);
}

TEST_F(PagingFixture, DeputyRejectsWrongPid) {
  wire_up({}, 1);
  net::PageRequest req;
  req.pid = 99;
  req.pages = {10};
  EXPECT_THROW(deputy->on_page_request(req), std::logic_error);
}

TEST_F(PagingFixture, DeputySerializesServiceTime) {
  wire_up({}, 1);
  std::vector<Time> arrivals;
  client->set_arrival_handler([&](mem::PageId, bool) { arrivals.push_back(simulator.now()); });
  for (mem::PageId p = 10; p < 14; ++p) {
    process->aspace().mark_in_flight(p);
  }
  client->request_pages({10, 11, 12, 13}, 10);
  simulator.run();
  ASSERT_EQ(arrivals.size(), 4u);
  // Pages arrive spaced by at least the wire serialization of one page.
  const Time page_wire =
      fabric.default_link().bandwidth.transfer_time(wire.page_message_bytes());
  for (std::size_t i = 1; i < arrivals.size(); ++i) {
    EXPECT_GE((arrivals[i] - arrivals[i - 1]).ns(), page_wire.ns() - 1000);
  }
}

TEST_F(PagingFixture, DemandPagingPolicyEndToEnd) {
  // Three refs: one local page, two remote pages -> two full fault cycles.
  std::vector<Ref> refs{{0, Time::from_us(10), Ref::Kind::Memory},
                        {10, Time::from_us(10), Ref::Kind::Memory},
                        {11, Time::from_us(10), Ref::Kind::Memory}};
  wire_up(std::move(refs), 1);
  DemandPagingPolicy policy{simulator, *executor, *client};
  executor->set_policy(&policy);
  client->set_arrival_handler([&](mem::PageId p, bool u) { policy.on_arrival(p, u); });
  executor->start();
  simulator.run();
  EXPECT_TRUE(executor->stats().finished);
  EXPECT_EQ(executor->stats().hard_faults, 2u);
  EXPECT_EQ(policy.faults_handled(), 2u);
  EXPECT_EQ(client->stats().fault_requests, 2u);
  EXPECT_EQ(client->stats().pages_requested, 2u);  // never more than faulted
  EXPECT_EQ(process->aspace().classify(10), mem::AccessKind::Hit);
  // Fault latency: at least RTT + page transfer each.
  EXPECT_GE(executor->stats().stall_time.us(), 2 * (150 + 360));
}

TEST_F(PagingFixture, SyscallRedirectionRoundTrip) {
  std::vector<Ref> refs{{mem::kInvalidPage, Time::from_us(10), Ref::Kind::Syscall}};
  wire_up(std::move(refs), 1);
  fabric.set_handler(kHome, [this](const net::Message& m) {
    deputy->on_syscall_request(std::get<net::SyscallRequest>(m.payload));
  });
  fabric.set_handler(kDest, [this](const net::Message& m) {
    executor->complete_syscall(std::get<net::SyscallReply>(m.payload).seq);
  });
  executor->set_syscall_transport([this](std::uint64_t seq) {
    fabric.send(net::Message{kDest, kHome, wire.control_message, net::SyscallRequest{1, seq}});
  });
  executor->start();
  simulator.run();
  EXPECT_TRUE(executor->stats().finished);
  EXPECT_EQ(executor->stats().syscalls_redirected, 1u);
  EXPECT_EQ(deputy->stats().syscalls_served, 1u);
  // Round trip: two control messages + service time.
  EXPECT_GE(executor->stats().finished_at.us(), 150 + costs.syscall_service.us());
}

// --- reliable-paging backoff: ceiling and jitter --------------------------

// Legacy config (no ceiling): a request that outlives its retry budget is a
// hard error — the pre-ceiling behavior, pinned so the default stays
// bit-compatible.
TEST_F(PagingFixture, RetryBudgetExhaustionThrowsWithoutCeiling) {
  wire_up({}, 1);
  net::FaultInjector injector{simulator, 1};
  fabric.set_fault_injector(&injector);
  injector.set_link_down(kHome, kDest, true);

  PagingRetryConfig retry;
  retry.enabled = true;
  retry.max_retries = 4;
  client->set_retry_config(retry);
  client->set_arrival_handler([](mem::PageId, bool) {});
  process->aspace().mark_in_flight(10);
  client->request_pages({10}, 10);
  EXPECT_THROW(simulator.run(), std::runtime_error);
  EXPECT_EQ(client->stats().retransmits, 4u);
  EXPECT_EQ(client->stats().timeouts, 5u);  // the fatal expiry still counts
  fabric.set_fault_injector(nullptr);
}

// With a ceiling the client outlasts an outage longer than its whole legacy
// retry budget: it keeps probing at the capped rate and completes after the
// heal, with the probe count bounded by outage/ceiling (not one per
// max_retries step).
TEST_F(PagingFixture, BackoffCeilingSurvivesOutageAndProbesBounded) {
  wire_up({}, 1);
  net::FaultInjector injector{simulator, 1};
  fabric.set_fault_injector(&injector);
  injector.set_link_down(kHome, kDest, true);
  simulator.schedule_at(Time::from_ms(40),
                        [&injector] { injector.set_link_down(kHome, kDest, false); });

  PagingRetryConfig retry;
  retry.enabled = true;
  retry.max_retries = 3;
  retry.min_timeout = Time::from_ms(1);
  retry.backoff_ceiling = Time::from_ms(4);
  client->set_retry_config(retry);
  mem::PageId arrived = mem::kInvalidPage;
  client->set_arrival_handler([&](mem::PageId p, bool) { arrived = p; });
  process->aspace().mark_in_flight(10);
  client->request_pages({10}, 10);
  simulator.run();

  EXPECT_EQ(arrived, 10u);
  EXPECT_EQ(client->outstanding_requests(), 0u);
  // Probing continued well past the legacy budget...
  EXPECT_GT(client->stats().retransmits, std::uint64_t{retry.max_retries});
  // ...but at the ceiling rate: spacing grows to ~4.5 ms (ceiling + one-page
  // service allowance), so a 40 ms outage costs far fewer than 40 probes.
  EXPECT_LT(client->stats().timeouts, 20u);
  fabric.set_fault_injector(nullptr);
}

// Deterministic jitter: two clients stuck behind the same outage with the
// same config probe at *different* instants (their (node, pid) identities
// feed the jitter hash), yet a rerun reproduces both schedules exactly.
TEST(PagingRetryJitter, DecorrelatesClientsDeterministically) {
  const auto probe_counts = [] {
    sim::Simulator simulator;
    net::Fabric fabric{simulator, 2};
    net::FaultInjector injector{simulator, 1};
    fabric.set_fault_injector(&injector);
    injector.set_link_down(0, 1, true);  // nothing is ever delivered

    PagingRetryConfig retry;
    retry.enabled = true;
    retry.max_retries = 2;
    retry.min_timeout = Time::from_ms(1);
    retry.backoff_ceiling = Time::from_ms(1);
    retry.jitter_fraction = 0.5;
    WireCosts wire;
    PagingClient first{simulator, fabric, wire, 1, 0, /*pid=*/1};
    PagingClient second{simulator, fabric, wire, 1, 0, /*pid=*/2};
    first.set_retry_config(retry);
    second.set_retry_config(retry);
    first.request_pages({10}, 10);
    second.request_pages({10}, 10);
    // Long window: after the short backoff ramp each client probes with its
    // own fixed jittered period, so the count difference grows linearly.
    (void)simulator.run_until(Time::from_ms(1000));
    return std::pair{first.stats().timeouts, second.stats().timeouts};
  };
  const auto [a1, b1] = probe_counts();
  EXPECT_NE(a1, b1);  // decorrelated: same config, different probe schedule
  const auto [a2, b2] = probe_counts();
  EXPECT_EQ(a1, a2);  // but fully deterministic across reruns
  EXPECT_EQ(b1, b2);
}

}  // namespace
}  // namespace ampom::proc
