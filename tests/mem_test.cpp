// Unit tests for the memory substrate: regions, address-space state
// machine, page tables and the ownership ledger.

#include <gtest/gtest.h>

#include "mem/address_space.hpp"
#include "mem/hierarchy.hpp"
#include "mem/ledger.hpp"
#include "mem/page.hpp"
#include "mem/page_table.hpp"
#include "mem/region.hpp"

namespace ampom::mem {
namespace {

TEST(Page, SizeArithmetic) {
  EXPECT_EQ(pages_for_bytes(4096), 1u);
  EXPECT_EQ(pages_for_bytes(4097), 2u);
  EXPECT_EQ(pages_for_bytes(0), 0u);
  EXPECT_EQ(pages_for_mib(1), 256u);
  EXPECT_EQ(pages_for_mib(575), 147200u);  // the paper's largest process
  EXPECT_EQ(bytes_for_pages(2), 8192u);
}

TEST(RegionLayout, DefaultLayoutCoversAllRegions) {
  const RegionLayout layout = RegionLayout::for_total_bytes(10 * sim::kMiB);
  EXPECT_EQ(layout.pages(Region::Code), 64u);
  EXPECT_EQ(layout.pages(Region::Data), 128u);
  EXPECT_EQ(layout.pages(Region::Stack), 16u);
  EXPECT_EQ(layout.total_pages(), 2560u);
  EXPECT_EQ(layout.pages(Region::Heap), 2560u - 64 - 128 - 16);
}

TEST(RegionLayout, RegionsAreContiguousAndOrdered) {
  const RegionLayout layout{10, 20, 30, 5};
  EXPECT_EQ(layout.begin(Region::Code), 0u);
  EXPECT_EQ(layout.end(Region::Code), 10u);
  EXPECT_EQ(layout.begin(Region::Data), 10u);
  EXPECT_EQ(layout.end(Region::Data), 30u);
  EXPECT_EQ(layout.begin(Region::Heap), 30u);
  EXPECT_EQ(layout.end(Region::Heap), 60u);
  EXPECT_EQ(layout.begin(Region::Stack), 60u);
  EXPECT_EQ(layout.end(Region::Stack), 65u);
  EXPECT_EQ(layout.total_pages(), 65u);
}

TEST(RegionLayout, RegionOfClassifiesEveryPage) {
  const RegionLayout layout{10, 20, 30, 5};
  EXPECT_EQ(layout.region_of(0), Region::Code);
  EXPECT_EQ(layout.region_of(9), Region::Code);
  EXPECT_EQ(layout.region_of(10), Region::Data);
  EXPECT_EQ(layout.region_of(29), Region::Data);
  EXPECT_EQ(layout.region_of(30), Region::Heap);
  EXPECT_EQ(layout.region_of(59), Region::Heap);
  EXPECT_EQ(layout.region_of(60), Region::Stack);
  EXPECT_EQ(layout.region_of(64), Region::Stack);
}

TEST(RegionLayout, EmptyCodeOrStackRejected) {
  EXPECT_THROW((RegionLayout{0, 1, 1, 1}), std::invalid_argument);
  EXPECT_THROW((RegionLayout{1, 1, 1, 0}), std::invalid_argument);
}

TEST(RegionLayout, RegionNames) {
  EXPECT_STREQ(region_name(Region::Code), "code");
  EXPECT_STREQ(region_name(Region::Heap), "heap");
}

struct AddressSpaceFixture : ::testing::Test {
  RegionLayout layout{4, 4, 100, 4};
  AddressSpace aspace{layout};
};

TEST_F(AddressSpaceFixture, StartsFullyUnallocated) {
  EXPECT_EQ(aspace.page_count(), 112u);
  EXPECT_EQ(aspace.count(PageState::Unallocated), 112u);
  EXPECT_EQ(aspace.dirty_pages(), 0u);
  EXPECT_EQ(aspace.classify(0), AccessKind::FirstTouch);
}

TEST_F(AddressSpaceFixture, PopulateAllDirtyMakesEverythingLocal) {
  aspace.populate_all_dirty();
  EXPECT_EQ(aspace.local_pages(), 112u);
  EXPECT_EQ(aspace.dirty_pages(), 112u);
  EXPECT_EQ(aspace.dirty_bytes(), 112u * kPageBytes);
  EXPECT_EQ(aspace.classify(50), AccessKind::Hit);
}

TEST_F(AddressSpaceFixture, PopulateRangeIsIdempotent) {
  aspace.populate_range(0, 10, true);
  aspace.populate_range(5, 15, true);
  EXPECT_EQ(aspace.local_pages(), 15u);
  EXPECT_EQ(aspace.dirty_pages(), 15u);
}

TEST_F(AddressSpaceFixture, PopulateRangeBoundsChecked) {
  EXPECT_THROW(aspace.populate_range(0, 200, true), std::out_of_range);
  EXPECT_THROW(aspace.populate_range(20, 10, true), std::out_of_range);
}

TEST_F(AddressSpaceFixture, RemotePagingLifecycle) {
  aspace.populate_all_dirty();
  aspace.demote_to_remote(50);
  EXPECT_EQ(aspace.classify(50), AccessKind::HardFault);
  aspace.mark_in_flight(50);
  EXPECT_EQ(aspace.classify(50), AccessKind::InFlightWait);
  aspace.mark_arrived(50);
  EXPECT_EQ(aspace.classify(50), AccessKind::SoftFault);
  EXPECT_EQ(aspace.count(PageState::Arrived), 1u);
  EXPECT_EQ(aspace.map_all_arrived(), 1u);
  EXPECT_EQ(aspace.classify(50), AccessKind::Hit);
}

TEST_F(AddressSpaceFixture, MapArrivedPageTargetsOnePage) {
  aspace.populate_all_dirty();
  for (PageId p : {PageId{10}, PageId{11}, PageId{12}}) {
    aspace.demote_to_remote(p);
    aspace.mark_in_flight(p);
    aspace.mark_arrived(p);
  }
  aspace.map_arrived_page(11);
  EXPECT_EQ(aspace.classify(11), AccessKind::Hit);
  EXPECT_EQ(aspace.classify(10), AccessKind::SoftFault);
  EXPECT_EQ(aspace.count(PageState::Arrived), 2u);
  EXPECT_EQ(aspace.map_all_arrived(), 2u);
  EXPECT_EQ(aspace.count(PageState::Arrived), 0u);
}

TEST_F(AddressSpaceFixture, MapArrivedPageOnUnarrivedThrows) {
  aspace.populate_all_dirty();
  EXPECT_THROW(aspace.map_arrived_page(10), std::logic_error);
}

TEST_F(AddressSpaceFixture, IllegalTransitionsThrow) {
  aspace.populate_all_dirty();
  EXPECT_THROW(aspace.mark_in_flight(5), std::logic_error);   // Local, not Remote
  EXPECT_THROW(aspace.mark_arrived(5), std::logic_error);     // not InFlight
  EXPECT_THROW(aspace.create_on_touch(5), std::logic_error);  // already Local
  aspace.demote_to_remote(5);
  EXPECT_THROW(aspace.demote_to_remote(5), std::logic_error);  // already Remote
  EXPECT_THROW(aspace.carry_over(5), std::logic_error);        // Remote
}

TEST_F(AddressSpaceFixture, CreateOnTouchMarksDirtyAndLocal) {
  aspace.create_on_touch(30);
  EXPECT_EQ(aspace.classify(30), AccessKind::Hit);
  EXPECT_TRUE(aspace.dirty(30));
  EXPECT_EQ(aspace.dirty_pages(), 1u);
}

TEST_F(AddressSpaceFixture, SwapLifecycle) {
  aspace.populate_all_dirty();
  aspace.evict_to_swap(42);
  EXPECT_EQ(aspace.classify(42), AccessKind::SwapFault);
  EXPECT_EQ(aspace.count(PageState::Swapped), 1u);
  aspace.load_from_swap(42);
  EXPECT_EQ(aspace.classify(42), AccessKind::Hit);
}

TEST_F(AddressSpaceFixture, CountersTrackEveryTransition) {
  aspace.populate_all_dirty();
  aspace.demote_to_remote(1);
  aspace.demote_to_remote(2);
  aspace.mark_in_flight(1);
  EXPECT_EQ(aspace.count(PageState::Local), 110u);
  EXPECT_EQ(aspace.count(PageState::Remote), 1u);
  EXPECT_EQ(aspace.count(PageState::InFlight), 1u);
}

TEST_F(AddressSpaceFixture, PagesInStateEnumerates) {
  aspace.populate_all_dirty();
  aspace.demote_to_remote(7);
  aspace.demote_to_remote(9);
  const auto remote = aspace.pages_in_state(PageState::Remote);
  EXPECT_EQ(remote, (std::vector<PageId>{7, 9}));
}

TEST(PageTable, LocationBookkeeping) {
  PageTable table{100};
  EXPECT_EQ(table.page_count(), 100u);
  EXPECT_EQ(table.count_absent(), 100u);
  table.set_loc(3, PageTable::Loc::Here);
  table.set_loc(4, PageTable::Loc::Here);
  table.set_loc(5, PageTable::Loc::Remote);
  EXPECT_EQ(table.count_here(), 2u);
  EXPECT_EQ(table.count_remote(), 1u);
  EXPECT_EQ(table.count_absent(), 97u);
  table.set_loc(3, PageTable::Loc::Remote);  // page shipped to the migrant
  EXPECT_EQ(table.count_here(), 1u);
  EXPECT_EQ(table.count_remote(), 2u);
}

TEST(PageTable, WireSizeIsSixBytesPerPage) {
  // Paper §5.2: "the size of an MPT is 6 bytes per page".
  PageTable table{147200};  // the 575 MB process
  EXPECT_EQ(table.wire_bytes(), 147200u * 6);
}

TEST(PageTable, OutOfRangeThrows) {
  PageTable table{10};
  EXPECT_THROW(static_cast<void>(table.loc(10)), std::out_of_range);
  EXPECT_THROW(table.set_loc(10, PageTable::Loc::Here), std::out_of_range);
}

TEST(PageLedger, TransfersMoveOwnership) {
  PageLedger ledger{10, 0};
  EXPECT_EQ(ledger.owner(3), 0u);
  ledger.transfer(3, 0, 1);
  EXPECT_EQ(ledger.owner(3), 1u);
  EXPECT_EQ(ledger.transfer_count(3), 1u);
  EXPECT_EQ(ledger.total_transfers(), 1u);
  EXPECT_TRUE(ledger.at_most_one_transfer_each());
}

TEST(PageLedger, WrongOwnerThrows) {
  PageLedger ledger{10, 0};
  EXPECT_THROW(ledger.transfer(3, 1, 2), std::logic_error);
  ledger.transfer(3, 0, 1);
  EXPECT_THROW(ledger.transfer(3, 0, 2), std::logic_error);  // already moved
}

TEST(PageLedger, SelfTransferThrows) {
  PageLedger ledger{10, 0};
  EXPECT_THROW(ledger.transfer(3, 0, 0), std::logic_error);
}

TEST(PageLedger, DetectsDoubleTransfer) {
  PageLedger ledger{10, 0};
  ledger.transfer(3, 0, 1);
  ledger.transfer(3, 1, 0);  // legal round trip...
  EXPECT_FALSE(ledger.at_most_one_transfer_each());  // ...but flagged
}

TEST(PageState, NamesAreStable) {
  EXPECT_STREQ(page_state_name(PageState::Arrived), "arrived");
  EXPECT_STREQ(page_state_name(PageState::Remote), "remote");
}

// ---------------------------------------------------------------------------
// Memory hierarchy (shared LLC + NUMA domains, DESIGN.md §17)
// ---------------------------------------------------------------------------

HierarchyConfig small_hierarchy() {
  HierarchyConfig config;
  config.enabled = true;
  config.llc_bytes = 8 * sim::kMiB;
  config.numa_domains = 2;
  return config;
}

TEST(MemoryHierarchy, RejectsDegenerateConfigs) {
  HierarchyConfig no_domains = small_hierarchy();
  no_domains.numa_domains = 0;
  EXPECT_THROW((MemoryHierarchy{no_domains, 2}), std::invalid_argument);
  HierarchyConfig no_llc = small_hierarchy();
  no_llc.llc_bytes = 0;
  EXPECT_THROW((MemoryHierarchy{no_llc, 2}), std::invalid_argument);
}

TEST(MemoryHierarchy, PressureIsResidentBytesOverLlc) {
  MemoryHierarchy h{small_hierarchy(), 2};
  EXPECT_DOUBLE_EQ(h.cache_pressure(0), 0.0);
  h.place(0, /*pid=*/1, 2 * sim::kMiB);
  h.place(0, /*pid=*/2, 2 * sim::kMiB);
  EXPECT_DOUBLE_EQ(h.cache_pressure(0), 0.5);
  EXPECT_EQ(h.resident_bytes(0), 4 * sim::kMiB);
  EXPECT_DOUBLE_EQ(h.cache_pressure(1), 0.0);  // other nodes untouched
  // Oversubscription reads above 1.0 instead of clamping.
  h.place(0, /*pid=*/3, 8 * sim::kMiB);
  EXPECT_DOUBLE_EQ(h.cache_pressure(0), 1.5);
  h.remove(0, 3);
  EXPECT_DOUBLE_EQ(h.cache_pressure(0), 0.5);
}

TEST(MemoryHierarchy, PressureExcludingSkipsTheMigrantItself) {
  MemoryHierarchy h{small_hierarchy(), 2};
  h.place(0, /*pid=*/1, 4 * sim::kMiB);
  h.place(0, /*pid=*/2, 2 * sim::kMiB);
  // Pid 1 just committed here: it warms up against pid 2 only.
  EXPECT_DOUBLE_EQ(h.pressure_excluding(0, 1), 0.25);
  // A pid not resident changes nothing.
  EXPECT_DOUBLE_EQ(h.pressure_excluding(0, 99), 0.75);
}

TEST(MemoryHierarchy, PlacementFillsTheEmptierDomainTiesToLowerId) {
  MemoryHierarchy h{small_hierarchy(), 1};
  h.place(0, /*pid=*/1, 2 * sim::kMiB);  // both empty: domain 0
  EXPECT_EQ(h.domain_of(0, 1), 0u);
  h.place(0, /*pid=*/2, 1 * sim::kMiB);  // domain 1 now emptier
  EXPECT_EQ(h.domain_of(0, 2), 1u);
  h.place(0, /*pid=*/3, 1 * sim::kMiB);  // 2 MiB vs 1 MiB: domain 1 again
  EXPECT_EQ(h.domain_of(0, 3), 1u);
  h.place(0, /*pid=*/4, 1 * sim::kMiB);  // tie at 2 MiB: lower id wins
  EXPECT_EQ(h.domain_of(0, 4), 0u);
  // Absent pid reads as the one-past-the-end domain.
  EXPECT_EQ(h.domain_of(0, 99), 2u);
}

TEST(MemoryHierarchy, NumaContentionIsTheEmptiestDomainsOccupancy) {
  MemoryHierarchy h{small_hierarchy(), 1};
  EXPECT_DOUBLE_EQ(h.numa_contention(0), 0.0);
  // Domain share is 4 MiB each (8 MiB LLC over 2 domains). One resident
  // fills domain 0; a new arrival would land in the empty domain 1.
  h.place(0, /*pid=*/1, 4 * sim::kMiB);
  EXPECT_DOUBLE_EQ(h.numa_contention(0), 0.0);
  // Second resident lands in domain 1 (2 MiB of its 4 MiB share = 0.5).
  h.place(0, /*pid=*/2, 2 * sim::kMiB);
  EXPECT_DOUBLE_EQ(h.numa_contention(0), 0.5);
  h.remove(0, 2);
  EXPECT_DOUBLE_EQ(h.numa_contention(0), 0.0);
}

TEST(MemoryHierarchy, RemoveOfUnknownPidIsANoOp) {
  MemoryHierarchy h{small_hierarchy(), 1};
  h.place(0, /*pid=*/1, 2 * sim::kMiB);
  h.remove(0, /*pid=*/42);
  EXPECT_DOUBLE_EQ(h.cache_pressure(0), 0.25);
}

}  // namespace
}  // namespace ampom::mem
