// Property-based tests: parameterized sweeps over schemes, kernels, sizes
// and randomized inputs, asserting the invariants that must hold for every
// configuration (conservation, determinism, score bounds, zone sanity).

#include <gtest/gtest.h>

#include <tuple>
#include <unordered_set>

#include "core/dependent_zone.hpp"
#include "core/locality.hpp"
#include "driver/experiment.hpp"
#include "simcore/rng.hpp"
#include "workload/hpcc.hpp"

namespace ampom {
namespace {

using driver::RunMetrics;
using driver::Scenario;
using driver::Scheme;
using sim::Time;

// ---------------------------------------------------------------------------
// Scheme x kernel sweep: every combination must finish, conserve pages and
// keep the metric algebra consistent.
// ---------------------------------------------------------------------------

using SchemeKernel = std::tuple<Scheme, workload::HpccKernel>;

class SchemeKernelProperty : public ::testing::TestWithParam<SchemeKernel> {};

RunMetrics run_small(Scheme scheme, workload::HpccKernel kernel, std::uint64_t seed = 1) {
  Scenario s;
  s.scheme = scheme;
  s.memory_mib = 12;
  s.workload_label = workload::hpcc_kernel_name(kernel);
  s.seed = seed;
  s.make_workload = [kernel, seed] { return workload::make_hpcc_kernel(kernel, 12, seed); };
  return run_experiment(s);
}

TEST_P(SchemeKernelProperty, FinishesWithLedgerIntact) {
  const auto [scheme, kernel] = GetParam();
  const RunMetrics m = run_small(scheme, kernel);
  EXPECT_TRUE(m.ledger_ok);
  EXPECT_GT(m.refs_consumed, 0u);
}

TEST_P(SchemeKernelProperty, EveryRequestedPageArrives) {
  const auto [scheme, kernel] = GetParam();
  const RunMetrics m = run_small(scheme, kernel);
  // Pages over the paging channel plus pages moved in the freeze never
  // exceed the address space, and nothing is lost in flight.
  EXPECT_LE(m.pages_arrived + m.pages_migrated, m.page_count);
  if (scheme == Scheme::OpenMosix) {
    EXPECT_EQ(m.pages_arrived, 0u);
  }
}

TEST_P(SchemeKernelProperty, TimingAlgebraHolds) {
  const auto [scheme, kernel] = GetParam();
  const RunMetrics m = run_small(scheme, kernel);
  EXPECT_EQ(m.exec_time + m.freeze_time, m.total_time);
  EXPECT_LE(m.cpu_time, m.total_time);
  EXPECT_LE(m.freeze_time, m.total_time);
  EXPECT_GE(m.stall_time, Time::zero());
}

TEST_P(SchemeKernelProperty, DeterministicAcrossIdenticalRuns) {
  const auto [scheme, kernel] = GetParam();
  const RunMetrics a = run_small(scheme, kernel);
  const RunMetrics b = run_small(scheme, kernel);
  EXPECT_EQ(a.total_time, b.total_time);
  EXPECT_EQ(a.remote_fault_requests, b.remote_fault_requests);
  EXPECT_EQ(a.refs_consumed, b.refs_consumed);
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, SchemeKernelProperty,
    ::testing::Combine(::testing::Values(Scheme::OpenMosix, Scheme::NoPrefetch, Scheme::Ampom),
                       ::testing::Values(workload::HpccKernel::Dgemm,
                                         workload::HpccKernel::Stream,
                                         workload::HpccKernel::RandomAccess,
                                         workload::HpccKernel::Fft)),
    [](const ::testing::TestParamInfo<SchemeKernel>& param_info) {
      return std::string(driver::scheme_name(std::get<0>(param_info.param))) + "_" +
             workload::hpcc_kernel_name(std::get<1>(param_info.param));
    });

// ---------------------------------------------------------------------------
// Freeze-time scaling: AMPoM's freeze grows linearly with the page count;
// NoPrefetch's stays flat; openMosix's grows with the dirty set (Fig. 5).
// ---------------------------------------------------------------------------

class FreezeScalingProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FreezeScalingProperty, OrderingHoldsAtEverySize) {
  const std::uint64_t mib = GetParam();
  Scenario s;
  s.memory_mib = mib;
  s.workload_label = "STREAM";
  s.make_workload = [mib] { return workload::make_hpcc_kernel(workload::HpccKernel::Stream, mib); };
  s.scheme = Scheme::OpenMosix;
  const auto om = run_experiment(s);
  s.scheme = Scheme::NoPrefetch;
  const auto np = run_experiment(s);
  s.scheme = Scheme::Ampom;
  const auto am = run_experiment(s);
  EXPECT_GT(om.freeze_time, am.freeze_time);
  EXPECT_GT(am.freeze_time, np.freeze_time);
  // openMosix's freeze is roughly wire-rate linear in the address space.
  const double per_page_us = om.freeze_time.us() / static_cast<double>(om.page_count);
  EXPECT_GT(per_page_us, 250.0);
  EXPECT_LT(per_page_us, 500.0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, FreezeScalingProperty, ::testing::Values(8u, 16u, 32u, 48u));

// ---------------------------------------------------------------------------
// Locality score: bounded and monotone under randomized windows.
// ---------------------------------------------------------------------------

class LocalityScoreProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LocalityScoreProperty, ScoreStaysInUnitInterval) {
  sim::Rng rng{GetParam()};
  core::LookbackWindow w{20};
  core::LocalityAnalyzer analyzer{4};
  std::int64_t t = 0;
  for (int i = 0; i < 500; ++i) {
    w.record(rng.uniform(64), Time::from_us(++t), rng.uniform_real());
    const double s = analyzer.score(w);
    ASSERT_GE(s, 0.0);
    ASSERT_LE(s, 1.0);
  }
}

TEST_P(LocalityScoreProperty, OutstandingStreamPivotsFollowWindowPages) {
  sim::Rng rng{GetParam() ^ 0xABCD};
  core::LookbackWindow w{20};
  core::LocalityAnalyzer analyzer{4};
  std::int64_t t = 0;
  for (int i = 0; i < 300; ++i) {
    w.record(rng.uniform(32), Time::from_us(++t), 1.0);
    for (const auto& stream : analyzer.outstanding_streams(w)) {
      ASSERT_GE(stream.d, 1u);
      ASSERT_LE(stream.d, 4u);
      // The pivot is the successor of some page in the window.
      bool found = false;
      for (std::size_t j = 0; j < w.size(); ++j) {
        found |= w.page(j) + 1 == stream.pivot;
      }
      ASSERT_TRUE(found);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LocalityScoreProperty,
                         ::testing::Values(1u, 7u, 42u, 1234u, 99999u));

// ---------------------------------------------------------------------------
// Zone selection: no duplicates, within bounds, exact quota when room.
// ---------------------------------------------------------------------------

class ZoneSelectionProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ZoneSelectionProperty, SelectionIsSaneForRandomWindows) {
  sim::Rng rng{GetParam()};
  core::LocalityAnalyzer analyzer{4};
  for (int round = 0; round < 200; ++round) {
    core::LookbackWindow w{20};
    std::int64_t t = 0;
    const std::uint64_t universe = 200 + rng.uniform(2000);
    for (int i = 0; i < 20; ++i) {
      w.record(rng.uniform(universe / 2), Time::from_us(++t), 1.0);
    }
    const auto streams = analyzer.outstanding_streams(w);
    const std::uint64_t n = rng.uniform(64);
    const auto zone = core::select_zone(w, streams, n, universe);
    ASSERT_LE(zone.size(), n);
    std::unordered_set<mem::PageId> unique(zone.begin(), zone.end());
    ASSERT_EQ(unique.size(), zone.size());  // no duplicates
    for (const mem::PageId p : zone) {
      ASSERT_LT(p, universe);  // within the address space
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ZoneSelectionProperty, ::testing::Values(3u, 17u, 2025u));

// ---------------------------------------------------------------------------
// Eq. 3 monotonicity over randomized inputs.
// ---------------------------------------------------------------------------

class ZoneSizeProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ZoneSizeProperty, MonotoneInScoreAndRate) {
  sim::Rng rng{GetParam()};
  core::AmpomConfig cfg;
  cfg.min_zone = 0;
  cfg.zone_cap = 1u << 20;  // effectively uncapped for this test
  for (int i = 0; i < 300; ++i) {
    core::ZoneInputs in;
    in.locality_score = rng.uniform_real();
    in.paging_rate_hz = rng.uniform_real(10.0, 50000.0);
    in.cpu_mean = rng.uniform_real(0.05, 1.0);
    in.cpu_next = rng.uniform_real(0.05, 1.0);
    in.rtt_one_way = Time::from_us(static_cast<std::int64_t>(rng.uniform(3000)) + 10);
    in.page_transfer = Time::from_us(static_cast<std::int64_t>(rng.uniform(3000)) + 10);

    const auto base = core::zone_size(in, cfg);
    core::ZoneInputs more = in;
    more.locality_score = std::min(1.0, in.locality_score + 0.3);
    ASSERT_GE(core::zone_size(more, cfg), base);
    more = in;
    more.paging_rate_hz *= 2.0;
    ASSERT_GE(core::zone_size(more, cfg), base);
    more = in;
    more.page_transfer = in.page_transfer * 3;
    ASSERT_GE(core::zone_size(more, cfg), base);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ZoneSizeProperty, ::testing::Values(11u, 222u, 3333u));

// ---------------------------------------------------------------------------
// Seed variation: RandomAccess runs differ across seeds but every invariant
// still holds.
// ---------------------------------------------------------------------------

class SeedProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedProperty, RandomAccessInvariantsAcrossSeeds) {
  const RunMetrics m =
      run_small(Scheme::Ampom, workload::HpccKernel::RandomAccess, GetParam());
  EXPECT_TRUE(m.ledger_ok);
  EXPECT_LE(m.pages_arrived + m.pages_migrated, m.page_count);
  EXPECT_GT(m.prevented_fault_fraction(), 0.3);  // the read-ahead floor works
  EXPECT_LE(m.prevented_fault_fraction(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedProperty, ::testing::Values(1u, 2u, 3u, 5u, 8u));

}  // namespace
}  // namespace ampom
