// Tests of the second-hop (re-migration) support: the paper's §1 scenario
// of correcting a suboptimal placement decision.

#include <gtest/gtest.h>

#include <fstream>
#include <memory>

#include "balancer/cluster_sim.hpp"
#include "driver/experiment.hpp"
#include "workload/hpcc.hpp"
#include "workload/synthetic.hpp"

namespace ampom::driver {
namespace {

using sim::Time;

Scenario two_hop(Scheme scheme, std::uint64_t memory_mib = 16,
                 Time second_after = Time::from_sec(2.0)) {
  Scenario s;
  s.scheme = scheme;
  s.memory_mib = memory_mib;
  s.workload_label = "STREAM";
  s.make_workload = [memory_mib] {
    return workload::make_hpcc_kernel(workload::HpccKernel::Stream, memory_mib);
  };
  s.remigrate_after = second_after;
  return s;
}

TEST(Remigration, RejectsBackgroundTrafficCombination) {
  Scenario s = two_hop(Scheme::Ampom);
  s.background_traffic = 0.3;
  EXPECT_THROW(run_experiment(s), std::invalid_argument);
}

TEST(Remigration, AmpomTwoHopFinishes) {
  const RunMetrics m = run_experiment(two_hop(Scheme::Ampom));
  EXPECT_TRUE(m.ledger_ok);
  EXPECT_GT(m.freeze_time, Time::zero());
  EXPECT_GT(m.freeze_time_2, Time::zero());
  // Both freezes are lightweight.
  EXPECT_LT(m.freeze_time_2, Time::from_sec(1.0));
  EXPECT_GT(m.refs_consumed, 0u);
}

TEST(Remigration, FlushReturnsPagesToHome) {
  const RunMetrics m = run_experiment(two_hop(Scheme::Ampom));
  // Pages fetched to B before the second hop went back to the home node.
  EXPECT_GT(m.flush_pages, 0u);
}

TEST(Remigration, StalledRequestsAreServedAfterFlush) {
  // Re-migrate quickly so the process at C races the flush from B.
  const RunMetrics m = run_experiment(two_hop(Scheme::Ampom, 33, Time::from_ms(500)));
  EXPECT_GT(m.requests_stalled_on_flush, 0u);
  EXPECT_TRUE(m.ledger_ok);
  EXPECT_GT(m.refs_consumed, 0u);  // the run still completed
}

TEST(Remigration, OpenMosixTwoHopPaysTwoFullFreezes) {
  const RunMetrics m = run_experiment(two_hop(Scheme::OpenMosix, 65, Time::from_ms(500)));
  EXPECT_GT(m.freeze_time, Time::from_sec(1.0));
  EXPECT_GT(m.freeze_time_2, Time::from_sec(1.0));
  EXPECT_EQ(m.flush_pages, 0u);  // everything travels with the process
}

TEST(Remigration, NoPrefetchTwoHopFinishes) {
  const RunMetrics m = run_experiment(two_hop(Scheme::NoPrefetch));
  EXPECT_GT(m.freeze_time_2, Time::zero());
  EXPECT_LT(m.freeze_time_2, Time::from_ms(500));
  EXPECT_GT(m.refs_consumed, 0u);
}

TEST(Remigration, SecondHopSkippedIfProcessFinishes) {
  // Re-migration scheduled long after the workload ends: single-hop run.
  const RunMetrics m = run_experiment(two_hop(Scheme::Ampom, 8, Time::from_sec(3600)));
  EXPECT_EQ(m.freeze_time_2, Time::zero());
  EXPECT_GT(m.refs_consumed, 0u);
}

TEST(Remigration, TwoHopCostMuchLowerUnderAmpom) {
  const RunMetrics am = run_experiment(two_hop(Scheme::Ampom, 65, Time::from_ms(500)));
  const RunMetrics om = run_experiment(two_hop(Scheme::OpenMosix, 65, Time::from_ms(500)));
  const double am_frozen = (am.freeze_time + am.freeze_time_2).sec();
  const double om_frozen = (om.freeze_time + om.freeze_time_2).sec();
  EXPECT_LT(am_frozen, om_frozen / 5);
}

// ---------------------------------------------------------------------------
// CPMD warm-up charges across re-migration (cache model, DESIGN.md §17)
// ---------------------------------------------------------------------------

balancer::JobSpec cpmd_job(net::NodeId home, std::uint64_t touches) {
  balancer::JobSpec job;
  job.home = home;
  job.label = "cpmd";
  job.make_workload = [touches] {
    return std::make_unique<workload::HotColdStream>(8 * sim::kMiB, /*hot_pages=*/256,
                                                     touches, /*cold_fraction=*/0.05,
                                                     Time::from_us(100));
  };
  return job;
}

balancer::WorldConfig cache_world(const std::string& calibration = {}) {
  balancer::WorldConfig config;
  config.scheme = Scheme::Ampom;
  config.topology = cluster::Topology::flat(4);
  config.hierarchy.enabled = true;
  config.cpmd_calibration = calibration;
  return config;
}

// A calibration whose warm-up dwarfs every timing jitter in the run: 5 s at
// any WSS (the single point clamps flat in both directions).
std::string slow_calibration_path() {
  const std::string path = testing::TempDir() + "cpmd_slow_calibration.txt";
  std::ofstream out{path};
  out << "# constant 5 s warm-up at every WSS\n1 5000000\n";
  return path;
}

TEST(RemigrationCpmd, FirstHopChargesTheCalibratedWarmup) {
  balancer::ClusterSim world{cache_world()};
  balancer::ProcessHost& host = world.spawn(cpmd_job(0, 20000));
  world.simulator().schedule_at(Time::from_ms(500), [&host] { host.migrate_to(1); });
  world.run();
  EXPECT_TRUE(host.finished());
  EXPECT_EQ(host.migrations(), 1u);
  // The only process in the world displaces nobody: the charge is exactly
  // the calibration curve at its working-set size, and it is fully paid by
  // the end of the run.
  const sim::Time expected = migration::CpmdTable::builtin().warmup_delay(host.wss_bytes());
  EXPECT_GT(expected, Time::zero());
  EXPECT_EQ(host.stats().warmup_charges, 1u);
  EXPECT_EQ(host.stats().warmup_charged, expected);
  EXPECT_EQ(host.stats().warmup_paid, expected);
}

TEST(RemigrationCpmd, RemigrationBeforePayoffCarriesTheBalanceNotAFreshCharge) {
  // The double-charge bug this pins: a process re-migrated before its first
  // warm-up was fully paid used to be billed the full CPMD again on the
  // second hop. The outstanding balance must carry instead — one charge,
  // paid once.
  balancer::ClusterSim world{cache_world(slow_calibration_path())};
  balancer::ProcessHost& host = world.spawn(cpmd_job(0, 20000));
  world.simulator().schedule_at(Time::from_ms(500), [&host] { host.migrate_to(1); });
  // 1.5 s into a 5 s warm-up, hop again: the balance is far from paid.
  world.simulator().schedule_at(Time::from_sec(2.0), [&host] { host.migrate_to(2); });
  world.run();
  EXPECT_TRUE(host.finished());
  EXPECT_EQ(host.migrations(), 2u);
  EXPECT_EQ(host.stats().warmup_charges, 1u);
  EXPECT_EQ(host.stats().warmup_charged, Time::from_sec(5.0));
  EXPECT_EQ(host.stats().warmup_paid, host.stats().warmup_charged);
}

TEST(RemigrationCpmd, RemigrationAfterPayoffPaysASecondFullCharge) {
  // Once the first warm-up is fully paid the caches are warm; hopping again
  // legitimately costs a second full charge.
  balancer::ClusterSim world{cache_world(slow_calibration_path())};
  balancer::ProcessHost& host = world.spawn(cpmd_job(0, 60000));
  world.simulator().schedule_at(Time::from_ms(500), [&host] { host.migrate_to(1); });
  // The 5 s balance is paid off by ~5.6 s; hop well after that.
  world.simulator().schedule_at(Time::from_sec(8.0), [&host] { host.migrate_to(2); });
  world.run();
  EXPECT_TRUE(host.finished());
  EXPECT_EQ(host.migrations(), 2u);
  EXPECT_EQ(host.stats().warmup_charges, 2u);
  EXPECT_EQ(host.stats().warmup_charged, Time::from_sec(10.0));
  EXPECT_EQ(host.stats().warmup_paid, host.stats().warmup_charged);
}

TEST(RemigrationCpmd, CacheModelOffChargesNothing) {
  balancer::WorldConfig config;
  config.scheme = Scheme::Ampom;
  config.topology = cluster::Topology::flat(4);
  balancer::ClusterSim world{config};
  balancer::ProcessHost& host = world.spawn(cpmd_job(0, 20000));
  world.simulator().schedule_at(Time::from_ms(500), [&host] { host.migrate_to(1); });
  world.run();
  EXPECT_TRUE(host.finished());
  EXPECT_EQ(host.stats().warmup_charges, 0u);
  EXPECT_EQ(host.stats().warmup_charged, Time::zero());
  EXPECT_EQ(host.stats().warmup_paid, Time::zero());
}

}  // namespace
}  // namespace ampom::driver
