// Tests of the second-hop (re-migration) support: the paper's §1 scenario
// of correcting a suboptimal placement decision.

#include <gtest/gtest.h>

#include "driver/experiment.hpp"
#include "workload/hpcc.hpp"
#include "workload/synthetic.hpp"

namespace ampom::driver {
namespace {

using sim::Time;

Scenario two_hop(Scheme scheme, std::uint64_t memory_mib = 16,
                 Time second_after = Time::from_sec(2.0)) {
  Scenario s;
  s.scheme = scheme;
  s.memory_mib = memory_mib;
  s.workload_label = "STREAM";
  s.make_workload = [memory_mib] {
    return workload::make_hpcc_kernel(workload::HpccKernel::Stream, memory_mib);
  };
  s.remigrate_after = second_after;
  return s;
}

TEST(Remigration, RejectsBackgroundTrafficCombination) {
  Scenario s = two_hop(Scheme::Ampom);
  s.background_traffic = 0.3;
  EXPECT_THROW(run_experiment(s), std::invalid_argument);
}

TEST(Remigration, AmpomTwoHopFinishes) {
  const RunMetrics m = run_experiment(two_hop(Scheme::Ampom));
  EXPECT_TRUE(m.ledger_ok);
  EXPECT_GT(m.freeze_time, Time::zero());
  EXPECT_GT(m.freeze_time_2, Time::zero());
  // Both freezes are lightweight.
  EXPECT_LT(m.freeze_time_2, Time::from_sec(1.0));
  EXPECT_GT(m.refs_consumed, 0u);
}

TEST(Remigration, FlushReturnsPagesToHome) {
  const RunMetrics m = run_experiment(two_hop(Scheme::Ampom));
  // Pages fetched to B before the second hop went back to the home node.
  EXPECT_GT(m.flush_pages, 0u);
}

TEST(Remigration, StalledRequestsAreServedAfterFlush) {
  // Re-migrate quickly so the process at C races the flush from B.
  const RunMetrics m = run_experiment(two_hop(Scheme::Ampom, 33, Time::from_ms(500)));
  EXPECT_GT(m.requests_stalled_on_flush, 0u);
  EXPECT_TRUE(m.ledger_ok);
  EXPECT_GT(m.refs_consumed, 0u);  // the run still completed
}

TEST(Remigration, OpenMosixTwoHopPaysTwoFullFreezes) {
  const RunMetrics m = run_experiment(two_hop(Scheme::OpenMosix, 65, Time::from_ms(500)));
  EXPECT_GT(m.freeze_time, Time::from_sec(1.0));
  EXPECT_GT(m.freeze_time_2, Time::from_sec(1.0));
  EXPECT_EQ(m.flush_pages, 0u);  // everything travels with the process
}

TEST(Remigration, NoPrefetchTwoHopFinishes) {
  const RunMetrics m = run_experiment(two_hop(Scheme::NoPrefetch));
  EXPECT_GT(m.freeze_time_2, Time::zero());
  EXPECT_LT(m.freeze_time_2, Time::from_ms(500));
  EXPECT_GT(m.refs_consumed, 0u);
}

TEST(Remigration, SecondHopSkippedIfProcessFinishes) {
  // Re-migration scheduled long after the workload ends: single-hop run.
  const RunMetrics m = run_experiment(two_hop(Scheme::Ampom, 8, Time::from_sec(3600)));
  EXPECT_EQ(m.freeze_time_2, Time::zero());
  EXPECT_GT(m.refs_consumed, 0u);
}

TEST(Remigration, TwoHopCostMuchLowerUnderAmpom) {
  const RunMetrics am = run_experiment(two_hop(Scheme::Ampom, 65, Time::from_ms(500)));
  const RunMetrics om = run_experiment(two_hop(Scheme::OpenMosix, 65, Time::from_ms(500)));
  const double am_frozen = (am.freeze_time + am.freeze_time_2).sec();
  const double om_frozen = (om.freeze_time + om.freeze_time_2).sec();
  EXPECT_LT(am_frozen, om_frozen / 5);
}

}  // namespace
}  // namespace ampom::driver
