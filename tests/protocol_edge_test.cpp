// Edge-case tests of the flush-back protocol, the re-migration engine's
// preconditions, and assorted substrate corners not covered elsewhere.

#include <gtest/gtest.h>

#include <memory>

#include "mem/ledger.hpp"
#include "migration/remigration.hpp"
#include "net/fabric.hpp"
#include "proc/deputy.hpp"
#include "proc/executor.hpp"
#include "simcore/simulator.hpp"

namespace ampom {
namespace {

using proc::Ref;
using sim::Time;

struct FlushFixture : ::testing::Test {
  static constexpr net::NodeId kHome = 0;
  static constexpr net::NodeId kB = 1;
  static constexpr net::NodeId kC = 2;

  sim::Simulator simulator;
  net::Fabric fabric{simulator, 3};
  proc::WireCosts wire;
  proc::NodeCosts costs;
  mem::PageLedger ledger{100, kHome};
  proc::Deputy deputy{simulator, fabric, wire, costs, kHome, 1, 100, &ledger};
  std::vector<std::pair<mem::PageId, bool>> deliveries;

  FlushFixture() {
    deputy.begin_service(kC);
    fabric.set_handler(kC, [this](const net::Message& m) {
      const auto& data = std::get<net::PageData>(m.payload);
      deliveries.emplace_back(data.page, data.urgent);
    });
  }
};

TEST_F(FlushFixture, FlushArrivalMakesPageServable) {
  deputy.hpt().set_loc(7, mem::PageTable::Loc::Incoming);
  ledger.transfer(7, kHome, kB);  // the page had moved to B earlier
  deputy.on_flush_page(kB, net::FlushPage{1, 7});
  EXPECT_EQ(deputy.hpt().loc(7), mem::PageTable::Loc::Here);
  EXPECT_EQ(ledger.owner(7), kHome);
  EXPECT_EQ(deputy.stats().flush_pages_received, 1u);

  net::PageRequest req;
  req.pid = 1;
  req.request_id = 9;
  req.pages = {7};
  req.urgent = 7;
  deputy.on_page_request(req);
  simulator.run();
  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_EQ(deliveries[0].first, 7u);
  EXPECT_TRUE(deliveries[0].second);
}

TEST_F(FlushFixture, RequestForIncomingPageWaitsForTheFlush) {
  deputy.hpt().set_loc(7, mem::PageTable::Loc::Incoming);
  ledger.transfer(7, kHome, kB);

  net::PageRequest req;
  req.pid = 1;
  req.request_id = 9;
  req.pages = {7};
  req.urgent = 7;
  deputy.on_page_request(req);
  simulator.run();
  EXPECT_TRUE(deliveries.empty());  // parked
  EXPECT_EQ(deputy.stats().requests_stalled_on_flush, 1u);

  deputy.on_flush_page(kB, net::FlushPage{1, 7});
  simulator.run();
  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_EQ(deliveries[0].first, 7u);
  EXPECT_TRUE(deliveries[0].second);  // urgency preserved across the wait
  EXPECT_EQ(deputy.hpt().loc(7), mem::PageTable::Loc::Remote);
  EXPECT_EQ(ledger.owner(7), kC);
}

TEST_F(FlushFixture, FlushForNonIncomingPageThrows) {
  deputy.hpt().set_loc(7, mem::PageTable::Loc::Here);
  EXPECT_THROW(deputy.on_flush_page(kB, net::FlushPage{1, 7}), std::logic_error);
}

TEST_F(FlushFixture, FlushForWrongPidThrows) {
  deputy.hpt().set_loc(7, mem::PageTable::Loc::Incoming);
  EXPECT_THROW(deputy.on_flush_page(kB, net::FlushPage{2, 7}), std::logic_error);
}

TEST_F(FlushFixture, MixedRequestServesHerePagesAndParksIncoming) {
  deputy.hpt().set_loc(1, mem::PageTable::Loc::Here);
  deputy.hpt().set_loc(2, mem::PageTable::Loc::Incoming);
  ledger.transfer(2, kHome, kB);

  net::PageRequest req;
  req.pid = 1;
  req.request_id = 5;
  req.pages = {1, 2};
  req.urgent = net::kNoPage;
  deputy.on_page_request(req);
  simulator.run();
  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_EQ(deliveries[0].first, 1u);
  deputy.on_flush_page(kB, net::FlushPage{1, 2});
  simulator.run();
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_EQ(deliveries[1].first, 2u);
}

TEST(PageTableIncoming, CountersTrackIncoming) {
  mem::PageTable table{10};
  table.set_loc(3, mem::PageTable::Loc::Incoming);
  table.set_loc(4, mem::PageTable::Loc::Incoming);
  EXPECT_EQ(table.count_incoming(), 2u);
  EXPECT_EQ(table.count_absent(), 8u);
  table.set_loc(3, mem::PageTable::Loc::Here);
  EXPECT_EQ(table.count_incoming(), 1u);
  EXPECT_EQ(table.count_here(), 1u);
}

TEST(RemigrationEngineUnit, ConfigValidationAndAtHomeRejection) {
  EXPECT_THROW(
      migration::RemigrationEngine(migration::RemigrationEngine::Config{true, 0}),
      std::invalid_argument);

  sim::Simulator simulator;
  net::Fabric fabric{simulator, 3};
  proc::WireCosts wire;
  proc::NodeCosts costs;
  std::vector<Ref> refs(100, Ref{300, Time::from_ms(1), Ref::Kind::Memory});
  proc::Process process{1, std::make_unique<proc::TraceStream>(refs, 4 * sim::kMiB), 0};
  process.aspace().populate_all_dirty();
  proc::Executor executor{simulator, process, costs};
  mem::PageLedger ledger{process.aspace().page_count(), 0};
  proc::Deputy deputy{simulator, fabric, wire, costs, 0, 1, process.aspace().page_count(),
                      &ledger};

  migration::RemigrationEngine engine;
  migration::MigrationContext ctx{simulator, fabric, wire, process, executor, deputy,
                                  /*src=*/0,  /*dst=*/2, costs,   costs,    &ledger,
                                  {},        /*src_node=*/nullptr, /*dst_node=*/nullptr,
                                  /*reliability=*/{}};
  executor.start();
  executor.request_freeze([&] {
    // The process never left home: a re-migration engine is the wrong tool.
    EXPECT_THROW(engine.execute(ctx, {}), std::logic_error);
    simulator.halt();
  });
  simulator.run();
}

TEST(RemigrationEngineUnit, EngineNamesReflectVariant) {
  EXPECT_STREQ(migration::RemigrationEngine{}.name(), "AMPoM-remigrate");
  EXPECT_STREQ(migration::RemigrationEngine(
                   migration::RemigrationEngine::Config{/*ship_mpt=*/false, 64})
                   .name(),
               "NoPrefetch-remigrate");
}

}  // namespace
}  // namespace ampom
