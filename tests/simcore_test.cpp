// Unit tests for the discrete-event engine, time arithmetic and the RNG.

#include <gtest/gtest.h>

#include <vector>

#include "simcore/rng.hpp"
#include "simcore/simulator.hpp"
#include "simcore/units.hpp"

namespace ampom::sim {
namespace {

using namespace ampom::sim::literals;

TEST(Time, ConstructionAndConversion) {
  EXPECT_EQ(Time::from_us(5).ns(), 5000);
  EXPECT_EQ(Time::from_ms(3).ns(), 3'000'000);
  EXPECT_DOUBLE_EQ(Time::from_sec(1.5).sec(), 1.5);
  EXPECT_EQ(Time::zero().ns(), 0);
  EXPECT_EQ((2.5_s).ns(), 2'500'000'000);
  EXPECT_EQ((10_us).ns(), 10'000);
}

TEST(Time, Arithmetic) {
  const Time a = 10_ms;
  const Time b = 4_ms;
  EXPECT_EQ((a + b).ns(), Time::from_ms(14).ns());
  EXPECT_EQ((a - b).ns(), Time::from_ms(6).ns());
  EXPECT_EQ((a * 3).ns(), Time::from_ms(30).ns());
  EXPECT_EQ((a / 2).ns(), Time::from_ms(5).ns());
  EXPECT_DOUBLE_EQ(a / b, 2.5);
  EXPECT_LT(b, a);
}

TEST(Time, ScaledByFactor) {
  EXPECT_EQ((10_ms).scaled(0.5).ns(), Time::from_ms(5).ns());
  EXPECT_EQ((10_ms).scaled(2.0).ns(), Time::from_ms(20).ns());
}

TEST(Bandwidth, TransferTime) {
  const Bandwidth fe = Bandwidth::mbits_per_sec(100);
  // 4096 bytes at 100 Mb/s = 327.68 us.
  EXPECT_NEAR(fe.transfer_time(4096).us(), 327.68, 0.01);
  EXPECT_EQ(Bandwidth::bytes_per_sec(1000).bps(), 8000);
  EXPECT_EQ(Bandwidth{}.transfer_time(100), Time::max());
}

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(3_ms, [&] { order.push_back(3); });
  sim.schedule_at(1_ms, [&] { order.push_back(1); });
  sim.schedule_at(2_ms, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 3_ms);
  EXPECT_EQ(sim.events_processed(), 3u);
}

TEST(Simulator, SameTimeFifoBySchedulingOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(1_ms, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(Simulator, ScheduleAfterUsesCurrentTime) {
  Simulator sim;
  Time inner{};
  sim.schedule_at(5_ms, [&] {
    sim.schedule_after(2_ms, [&] { inner = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(inner, 7_ms);
}

TEST(Simulator, SchedulingInThePastThrows) {
  Simulator sim;
  sim.schedule_at(5_ms, [&] {
    EXPECT_THROW(sim.schedule_at(1_ms, [] {}), std::logic_error);
  });
  sim.run();
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const auto id = sim.schedule_at(1_ms, [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));  // second cancel is a no-op
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelAfterFireReturnsFalse) {
  Simulator sim;
  const auto id = sim.schedule_at(1_ms, [] {});
  sim.run();
  EXPECT_FALSE(sim.cancel(id));
}

TEST(Simulator, RunUntilStopsAtLimit) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(1_ms, [&] { ++count; });
  sim.schedule_at(5_ms, [&] { ++count; });
  sim.run_until(2_ms);
  EXPECT_EQ(count, 1);
  EXPECT_EQ(sim.now(), 2_ms);
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_EQ(count, 2);
}

TEST(Simulator, HaltStopsTheLoop) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(1_ms, [&] {
    ++count;
    sim.halt();
  });
  sim.schedule_at(2_ms, [&] { ++count; });
  sim.run();
  EXPECT_EQ(count, 1);
  sim.run();
  EXPECT_EQ(count, 2);
}

TEST(Simulator, PendingCountsLiveEvents) {
  Simulator sim;
  const auto a = sim.schedule_at(1_ms, [] {});
  sim.schedule_at(2_ms, [] {});
  EXPECT_EQ(sim.pending(), 2u);
  sim.cancel(a);
  EXPECT_EQ(sim.pending(), 1u);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a{42};
  Rng b{42};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a{1};
  Rng b{2};
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += a.next() == b.next() ? 1 : 0;
  }
  EXPECT_LT(same, 4);
}

TEST(Rng, UniformWithinBound) {
  Rng rng{7};
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.uniform(17), 17u);
  }
}

TEST(Rng, UniformRealInUnitInterval) {
  Rng rng{7};
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform_real();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng{11};
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += rng.exponential(3.0);
  }
  EXPECT_NEAR(sum / n, 3.0, 0.15);
}

}  // namespace
}  // namespace ampom::sim
