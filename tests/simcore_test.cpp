// Unit tests for the discrete-event engine, time arithmetic and the RNG.

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "simcore/event_queue.hpp"
#include "simcore/inplace_function.hpp"
#include "simcore/rng.hpp"
#include "simcore/simulator.hpp"
#include "simcore/units.hpp"

namespace ampom::sim {
namespace {

using namespace ampom::sim::literals;

TEST(Time, ConstructionAndConversion) {
  EXPECT_EQ(Time::from_us(5).ns(), 5000);
  EXPECT_EQ(Time::from_ms(3).ns(), 3'000'000);
  EXPECT_DOUBLE_EQ(Time::from_sec(1.5).sec(), 1.5);
  EXPECT_EQ(Time::zero().ns(), 0);
  EXPECT_EQ((2.5_s).ns(), 2'500'000'000);
  EXPECT_EQ((10_us).ns(), 10'000);
}

TEST(Time, Arithmetic) {
  const Time a = 10_ms;
  const Time b = 4_ms;
  EXPECT_EQ((a + b).ns(), Time::from_ms(14).ns());
  EXPECT_EQ((a - b).ns(), Time::from_ms(6).ns());
  EXPECT_EQ((a * 3).ns(), Time::from_ms(30).ns());
  EXPECT_EQ((a / 2).ns(), Time::from_ms(5).ns());
  EXPECT_DOUBLE_EQ(a / b, 2.5);
  EXPECT_LT(b, a);
}

TEST(Time, ScaledByFactor) {
  EXPECT_EQ((10_ms).scaled(0.5).ns(), Time::from_ms(5).ns());
  EXPECT_EQ((10_ms).scaled(2.0).ns(), Time::from_ms(20).ns());
}

TEST(Bandwidth, TransferTime) {
  const Bandwidth fe = Bandwidth::mbits_per_sec(100);
  // 4096 bytes at 100 Mb/s = 327.68 us.
  EXPECT_NEAR(fe.transfer_time(4096).us(), 327.68, 0.01);
  EXPECT_EQ(Bandwidth::bytes_per_sec(1000).bps(), 8000);
  EXPECT_EQ(Bandwidth{}.transfer_time(100), Time::max());
}

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(3_ms, [&] { order.push_back(3); });
  sim.schedule_at(1_ms, [&] { order.push_back(1); });
  sim.schedule_at(2_ms, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 3_ms);
  EXPECT_EQ(sim.events_processed(), 3u);
}

TEST(Simulator, SameTimeFifoBySchedulingOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(1_ms, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(Simulator, ScheduleAfterUsesCurrentTime) {
  Simulator sim;
  Time inner{};
  sim.schedule_at(5_ms, [&] {
    sim.schedule_after(2_ms, [&] { inner = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(inner, 7_ms);
}

TEST(Simulator, SchedulingInThePastThrows) {
  Simulator sim;
  sim.schedule_at(5_ms, [&] {
    EXPECT_THROW(sim.schedule_at(1_ms, [] {}), std::logic_error);
  });
  sim.run();
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const auto id = sim.schedule_at(1_ms, [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));  // second cancel is a no-op
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelAfterFireReturnsFalse) {
  Simulator sim;
  const auto id = sim.schedule_at(1_ms, [] {});
  sim.run();
  EXPECT_FALSE(sim.cancel(id));
}

TEST(Simulator, RunUntilStopsAtLimit) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(1_ms, [&] { ++count; });
  sim.schedule_at(5_ms, [&] { ++count; });
  sim.run_until(2_ms);
  EXPECT_EQ(count, 1);
  EXPECT_EQ(sim.now(), 2_ms);
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_EQ(count, 2);
}

TEST(Simulator, HaltStopsTheLoop) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(1_ms, [&] {
    ++count;
    sim.halt();
  });
  sim.schedule_at(2_ms, [&] { ++count; });
  sim.run();
  EXPECT_EQ(count, 1);
  sim.run();
  EXPECT_EQ(count, 2);
}

TEST(Simulator, PendingCountsLiveEvents) {
  Simulator sim;
  const auto a = sim.schedule_at(1_ms, [] {});
  sim.schedule_at(2_ms, [] {});
  EXPECT_EQ(sim.pending(), 2u);
  sim.cancel(a);
  EXPECT_EQ(sim.pending(), 1u);
}

// Regression: run_until used to fast-forward now() to the limit even when a
// callback halted the run mid-window, so delays armed after an early halt
// were measured from a point in time the run never reached.
TEST(Simulator, RunUntilHaltedMidWindowKeepsClockAtHaltPoint) {
  Simulator sim;
  sim.schedule_at(1_ms, [&] { sim.halt(); });
  sim.schedule_at(5_ms, [] {});
  EXPECT_EQ(sim.run_until(10_ms), 1u);
  EXPECT_EQ(sim.now(), 1_ms);  // not 10 ms
  Time fired{};
  sim.schedule_after(2_ms, [&] { fired = sim.now(); });
  sim.run_until(10_ms);
  EXPECT_EQ(fired, 3_ms);  // 1 ms halt point + 2 ms delay
  EXPECT_EQ(sim.now(), 10_ms);
}

// Regression: run()/run_until() used to reset the halt flag on entry,
// silently discarding a halt() issued between runs. The pinned semantics: a
// pending halt makes the next run a no-op and is consumed by it.
TEST(Simulator, PendingHaltMakesNextRunANoOp) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(1_ms, [&] { ++count; });
  sim.halt();
  EXPECT_TRUE(sim.halted());
  EXPECT_EQ(sim.run(), 0u);
  EXPECT_EQ(count, 0);
  EXPECT_FALSE(sim.halted());  // consumed by the run it stopped
  EXPECT_EQ(sim.run(), 1u);    // a subsequent run proceeds normally
  EXPECT_EQ(count, 1);
}

TEST(Simulator, PendingHaltMakesNextRunUntilANoOp) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(1_ms, [&] { ++count; });
  sim.halt();
  EXPECT_EQ(sim.run_until(5_ms), 0u);
  EXPECT_EQ(sim.now(), Time::zero());  // a no-op run leaves the clock alone
  EXPECT_FALSE(sim.halted());
  sim.run_until(5_ms);
  EXPECT_EQ(count, 1);
  EXPECT_EQ(sim.now(), 5_ms);
}

TEST(Simulator, CancelledEventsLeaveTheQueueImmediately) {
  Simulator sim;
  std::vector<Simulator::EventId> ids;
  ids.reserve(1000);
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(sim.schedule_at(Time::from_us(i + 1), [] {}));
  }
  EXPECT_EQ(sim.queued_entries(), 1000u);
  for (const auto id : ids) {
    EXPECT_TRUE(sim.cancel(id));
  }
  // No lazy-deleted carcasses: the storage empties with the live set.
  EXPECT_EQ(sim.pending(), 0u);
  EXPECT_EQ(sim.queued_entries(), 0u);
  EXPECT_EQ(sim.run(), 0u);
}

TEST(EventQueue, PopsInTimeThenFifoOrder) {
  EventQueue q;
  std::vector<int> order;
  q.push(2_ms, [&] { order.push_back(2); });
  q.push(1_ms, [&] { order.push_back(1); });
  q.push(1_ms, [&] { order.push_back(11); });
  q.push(3_ms, [&] { order.push_back(3); });
  Time at{};
  EventQueue::Callback cb;
  EXPECT_EQ(q.top_time(), 1_ms);
  while (q.pop(at, cb)) {
    cb();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 11, 2, 3}));
  EXPECT_EQ(at, 3_ms);
}

TEST(EventQueue, CancelDestroysTheCallbackImmediately) {
  EventQueue q;
  auto token = std::make_shared<int>(7);
  const auto h = q.push(1_ms, [token] {});
  EXPECT_EQ(token.use_count(), 2);
  EXPECT_TRUE(q.cancel(h));
  // The closure died at cancel time, not when its deadline bubbled out.
  EXPECT_EQ(token.use_count(), 1);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.queued_entries(), 0u);
}

TEST(EventQueue, StaleHandleForAReusedSlotIsRejected) {
  EventQueue q;
  const auto a = q.push(1_ms, [] {});
  EXPECT_TRUE(q.cancel(a));
  const auto b = q.push(1_ms, [] {});  // recycles a's slot
  EXPECT_NE(a, b);
  EXPECT_FALSE(q.cancel(a));  // stale generation
  EXPECT_TRUE(q.cancel(b));
  EXPECT_FALSE(q.cancel(0));  // the null handle is never valid
}

TEST(EventQueue, CancelDoesNotPerturbSurvivorOrder) {
  EventQueue q;
  std::vector<EventQueue::Handle> handles;
  std::vector<int> order;
  // Same-instant block plus a spread of later times; cancel a scattered
  // third of them and require the survivors to fire in schedule order.
  for (int i = 0; i < 90; ++i) {
    const Time at = Time::from_ms(1 + i / 30);
    handles.push_back(q.push(at, [&order, i] { order.push_back(i); }));
  }
  for (std::size_t i = 0; i < handles.size(); i += 3) {
    EXPECT_TRUE(q.cancel(handles[i]));
  }
  Time at{};
  EventQueue::Callback cb;
  while (q.pop(at, cb)) {
    cb();
  }
  std::vector<int> expected;
  for (int i = 0; i < 90; ++i) {
    if (i % 3 != 0) {
      expected.push_back(i);
    }
  }
  EXPECT_EQ(order, expected);
}

TEST(EventQueue, SlotsAreRecycled) {
  EventQueue q;
  Time at{};
  EventQueue::Callback cb;
  for (int round = 0; round < 1000; ++round) {
    const auto keep = q.push(Time::from_us(round + 1), [] {});
    const auto drop = q.push(Time::from_us(round + 2), [] {});
    EXPECT_TRUE(q.cancel(drop));
    EXPECT_TRUE(q.pop(at, cb));
    (void)keep;
  }
  // Two events were ever live at once; the arena never grew past that.
  EXPECT_LE(q.slot_high_water(), 2u);
}

TEST(InplaceFunction, InlineAndBoxedClosuresBothInvoke) {
  int hits = 0;
  auto small_lambda = [&hits] { ++hits; };
  static_assert(InplaceFunction<void()>::fits_inline<decltype(small_lambda)>(),
                "a one-pointer capture must stay in the small buffer");
  InplaceFunction<void()> small{small_lambda};
  std::array<std::uint64_t, 16> payload{};
  payload[3] = 5;
  auto big_lambda = [&hits, payload] { hits += static_cast<int>(payload[3]); };
  static_assert(!InplaceFunction<void()>::fits_inline<decltype(big_lambda)>(),
                "a 128-byte capture must take the boxed path");
  InplaceFunction<void()> big{big_lambda};
  ASSERT_TRUE(small);
  ASSERT_TRUE(big);
  small();
  big();
  EXPECT_EQ(hits, 6);
}

TEST(InplaceFunction, MoveTransfersOwnershipWithoutCopying) {
  auto token = std::make_shared<int>(1);
  InplaceFunction<int()> f{[token] { return *token; }};
  EXPECT_EQ(token.use_count(), 2);
  InplaceFunction<int()> g{std::move(f)};
  EXPECT_EQ(token.use_count(), 2);  // moved, never copied
  EXPECT_FALSE(f);                  // NOLINT(bugprone-use-after-move) — pinned moved-from state
  EXPECT_TRUE(g);
  EXPECT_EQ(g(), 1);
  g = nullptr;
  EXPECT_EQ(token.use_count(), 1);
}

TEST(InplaceFunction, TakesArgumentsAndReturnsValues) {
  InplaceFunction<int(int, int)> add{[](int a, int b) { return a + b; }};
  EXPECT_EQ(add(2, 3), 5);
  InplaceFunction<int(int, int)> other;
  EXPECT_TRUE(other == nullptr);
  other = std::move(add);
  EXPECT_EQ(other(4, 4), 8);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a{42};
  Rng b{42};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a{1};
  Rng b{2};
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += a.next() == b.next() ? 1 : 0;
  }
  EXPECT_LT(same, 4);
}

TEST(Rng, UniformWithinBound) {
  Rng rng{7};
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.uniform(17), 17u);
  }
}

TEST(Rng, UniformRealInUnitInterval) {
  Rng rng{7};
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform_real();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng{11};
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += rng.exponential(3.0);
  }
  EXPECT_NEAR(sum / n, 3.0, 0.15);
}

}  // namespace
}  // namespace ampom::sim
