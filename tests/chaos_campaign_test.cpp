// Chaos campaigns: deterministic expansion, structural validation through
// the builder, a full campaign run through the experiment harness, and the
// split-brain scenario — a partition falling mid-migration must still yield
// exactly-once execution once it heals.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "balancer/cluster_sim.hpp"
#include "balancer/load_balancer.hpp"
#include "cluster/chaos.hpp"
#include "driver/builder.hpp"
#include "driver/experiment.hpp"
#include "verify/invariant_auditor.hpp"
#include "workload/synthetic.hpp"

namespace ampom::cluster {
namespace {

using sim::Time;

ChaosPlan mixed_plan() {
  ChaosPlan plan;
  plan.seed = 99;
  plan.zone_outages.push_back({{2, 3}, Time::from_ms(1000), Time::from_ms(2500)});
  plan.partitions.push_back({{0, 1}, Time::from_ms(1200), Time::from_ms(1900)});
  plan.crash_waves.push_back({/*crashes=*/2, Time::from_ms(1500), Time::from_ms(300),
                              /*downtime=*/Time::from_ms(1000), /*spare_node0=*/true});
  plan.link_flaps.push_back({0, 4, Time::from_ms(1000), Time::from_ms(2000),
                             Time::from_ms(200), /*duty=*/0.5});
  return plan;
}

TEST(ChaosExpansion, DeterministicAndShapedAsDeclared) {
  const ChaosPlan plan = mixed_plan();
  const ExpandedChaos a = expand_chaos(plan, 6);
  const ExpandedChaos b = expand_chaos(plan, 6);

  // Same (plan, node_count) -> same schedule, event for event.
  ASSERT_EQ(a.crashes.size(), b.crashes.size());
  for (std::size_t i = 0; i < a.crashes.size(); ++i) {
    EXPECT_EQ(a.crashes[i].node, b.crashes[i].node);
    EXPECT_EQ(a.crashes[i].at, b.crashes[i].at);
    EXPECT_EQ(a.crashes[i].restore_at, b.crashes[i].restore_at);
  }
  ASSERT_EQ(a.outages.size(), b.outages.size());
  for (std::size_t i = 0; i < a.outages.size(); ++i) {
    EXPECT_EQ(a.outages[i].a, b.outages[i].a);
    EXPECT_EQ(a.outages[i].b, b.outages[i].b);
    EXPECT_EQ(a.outages[i].down_at, b.outages[i].down_at);
    EXPECT_EQ(a.outages[i].up_at, b.outages[i].up_at);
  }

  // Zone outage: one crash per zone member. Crash wave: two more victims,
  // node 0 spared, no victim repeated within the wave.
  EXPECT_EQ(a.crashes.size(), 4u);  // 2 zone + 2 wave
  for (std::size_t i = 2; i < 4; ++i) {
    EXPECT_NE(a.crashes[i].node, 0u);
    EXPECT_LT(a.crashes[i].node, 6u);
    EXPECT_EQ(a.crashes[i].restore_at, a.crashes[i].at + Time::from_ms(1000));
  }
  EXPECT_NE(a.crashes[2].node, a.crashes[3].node);
  EXPECT_EQ(a.crashes[3].at - a.crashes[2].at, Time::from_ms(300));

  // Partition {0,1} of 6 nodes: every cross pair goes down, |A|*|B| links.
  // (Match on the full [at, heal) window — a flap window may share the start
  // instant but never the partition's heal time.)
  const auto is_partition_outage = [](const ExpandedChaos::Outage& o) {
    return o.down_at == Time::from_ms(1200) && o.up_at == Time::from_ms(1900);
  };
  EXPECT_EQ(std::count_if(a.outages.begin(), a.outages.end(), is_partition_outage), 2 * 4);

  // Flap windows stay inside [start, stop) and each is shorter than a period.
  for (const auto& o : a.outages) {
    if (is_partition_outage(o)) {
      continue;
    }
    EXPECT_GE(o.down_at, Time::from_ms(1000));
    EXPECT_LE(o.up_at, Time::from_ms(2000));
    EXPECT_LE(o.up_at - o.down_at, Time::from_ms(200));
  }

  // Heal marks cover partition heal, zone restore and flap stop, sorted.
  EXPECT_TRUE(std::is_sorted(a.heal_marks.begin(), a.heal_marks.end()));
  EXPECT_GE(a.heal_marks.size(), 3u);
  EXPECT_GE(a.last_fault_at, Time::from_ms(2500));
}

TEST(ChaosExpansion, ValidationRejectsMalformedCampaigns) {
  {
    ChaosPlan plan;
    plan.zone_outages.push_back({{}, Time::from_ms(100), {}});
    EXPECT_NE(validate_chaos(plan), "");
    EXPECT_THROW((void)expand_chaos(plan, 4), std::invalid_argument);
  }
  {
    ChaosPlan plan;  // heal before the partition begins
    plan.partitions.push_back({{1}, Time::from_ms(500), Time::from_ms(400)});
    EXPECT_NE(validate_chaos(plan), "");
  }
  {
    ChaosPlan plan;  // flap with a degenerate duty cycle
    plan.link_flaps.push_back({0, 1, Time::from_ms(100), Time::from_ms(500),
                               Time::from_ms(100), /*duty=*/1.5});
    EXPECT_NE(validate_chaos(plan), "");
  }
  {
    ChaosPlan plan;  // node id outside the cluster: caught at expansion
    plan.zone_outages.push_back({{9}, Time::from_ms(100), {}});
    EXPECT_EQ(validate_chaos(plan), "");  // size-independent checks pass...
    EXPECT_THROW((void)expand_chaos(plan, 4), std::invalid_argument);
  }
  // The builder front door rejects the same plans at build() time.
  EXPECT_THROW(
      (void)driver::ScenarioBuilder{}
          .workload("w", [] {
            return std::make_unique<workload::HotColdStream>(
                2 * sim::kMiB, 32, 1000, 0.05, Time::from_us(100));
          })
          .reliability(driver::ReliabilityConfig::all_on())
          .partition({1}, Time::from_ms(500), Time::from_ms(400))
          .build(),
      std::invalid_argument);
}

// A declared campaign flows through ScenarioBuilder -> run_experiment and
// the run still completes with the full stream consumed.
TEST(ChaosCampaign, RunsThroughExperimentHarness) {
  const driver::Scenario scenario =
      driver::ScenarioBuilder{}
          .scheme(driver::Scheme::Ampom)
          .workload("hotcold", [] {
            return std::make_unique<workload::HotColdStream>(
                4 * sim::kMiB, 64, 30000, 0.05, Time::from_us(100));
          })
          .reliability(driver::ReliabilityConfig::all_on())
          .chaos_seed(7)
          .flapping_link(0, 1, Time::from_ms(1100), Time::from_ms(1900),
                         Time::from_ms(150), 0.4)
          .build();
  const driver::RunMetrics metrics = driver::run_experiment(scenario);
  EXPECT_TRUE(metrics.migration_completed);
  EXPECT_TRUE(metrics.ledger_ok);
  EXPECT_GT(metrics.refs_consumed, 0u);
  EXPECT_GT(metrics.paging_retransmits, 0u);  // the flap actually bit
}

// Split-brain: the fabric partitions {0,1} | {2,3} while a process is
// migrating from node 0 to node 2. Neither side may run (or re-create) the
// process twice: after the heal the auditor must have seen exactly-once
// execution, the whole stream consumed once, and every page owned by either
// the home or the current node — never by a node on the losing side.
TEST(ChaosCampaign, SplitBrainMigrationIsExactlyOnce) {
  balancer::ClusterSim world{4, driver::Scheme::Ampom};
  verify::InvariantAuditor auditor{world};
  world.set_reliability(driver::ReliabilityConfig::all_on());

  driver::FaultPlan plan;
  plan.chaos.seed = 3;
  plan.chaos.partitions.push_back(
      {{0, 1}, Time::from_ms(1450), Time::from_ms(2600)});
  world.set_fault_plan(plan);

  balancer::JobSpec job;
  job.home = 0;
  job.label = "split-brain";
  job.start = Time::from_sec(1.0);
  job.make_workload = [] {
    return std::make_unique<workload::HotColdStream>(4 * sim::kMiB, 64, 40000, 0.05,
                                                     Time::from_us(100));
  };
  balancer::ProcessHost& host = world.spawn(job);
  world.simulator().schedule_at(Time::from_ms(1400), [&host] { host.migrate_to(2); });

  balancer::LoadBalancer::Config config;
  config.period = Time::from_ms(250);
  config.imbalance_threshold = 1e9;
  balancer::LoadBalancer balancer{world, config};
  balancer.start();

  ASSERT_TRUE(world.run_until(Time::from_sec(30)));

  EXPECT_TRUE(host.finished());
  EXPECT_EQ(auditor.violations(), 0u);
  // Exactly-once: the stream was consumed in full, once — no reference was
  // lost to the partition and none was replayed by a second incarnation.
  EXPECT_EQ(host.stats().refs_consumed, host.process().stream().emitted());
  // Ownership never leaked to a third party: every page sits with the home
  // node or wherever the process ended up.
  const mem::PageLedger& ledger = host.ledger();
  for (mem::PageId p = 0; p < ledger.page_count(); ++p) {
    const net::NodeId owner = ledger.owner(p);
    EXPECT_TRUE(owner == host.home_node() || owner == host.current_node())
        << "page " << p << " owned by node " << owner;
  }
}

}  // namespace
}  // namespace ampom::cluster
