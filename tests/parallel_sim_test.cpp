// The partitioned parallel engine behind ScenarioBuilder::workers(N).
//
// The headline claim is bit-identity: the partitioned schedule (zone
// sub-queues, conservative lookahead windows, barrier-merged cross-zone
// messages) is a pure function of the scenario, and the worker count only
// decides how many OS threads execute it. So workers(1) and workers(4) must
// agree on *everything* — makespan, event count, every migration, every
// final placement, every recorded trace event — even on a faulty world
// where message fates are drawn per message. The second claim is that the
// engine stays honest under chaos: a zone outage with the invariant auditor
// attached runs violation-free on a workers(4) scenario.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "balancer/cluster_sim.hpp"
#include "balancer/load_balancer.hpp"
#include "cluster/infod.hpp"
#include "driver/builder.hpp"
#include "simcore/simulator.hpp"
#include "trace/trace.hpp"
#include "verify/invariant_auditor.hpp"
#include "workload/synthetic.hpp"

namespace ampom {
namespace {

using sim::Time;

balancer::JobSpec burst_job(net::NodeId home, std::uint64_t touches, int index) {
  balancer::JobSpec job;
  job.home = home;
  job.label = "burst";
  job.start = Time::from_ms(40 * (index % 8));
  job.make_workload = [touches] {
    return std::make_unique<workload::HotColdStream>(8 * sim::kMiB, /*hot_pages=*/256,
                                                     touches, /*cold_fraction=*/0.05,
                                                     Time::from_us(90));
  };
  return job;
}

// Everything observable about one finished run, trace stream included.
struct RunResult {
  Time makespan{};
  std::uint64_t events{0};
  std::uint64_t migrations{0};
  std::uint64_t failed_migrations{0};
  std::uint64_t pings{0};
  std::vector<net::NodeId> placement;
  std::vector<trace::Event> trace_events;
};

void expect_identical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.migrations, b.migrations);
  EXPECT_EQ(a.failed_migrations, b.failed_migrations);
  EXPECT_EQ(a.pings, b.pings);
  EXPECT_EQ(a.placement, b.placement);
  ASSERT_EQ(a.trace_events.size(), b.trace_events.size());
  for (std::size_t i = 0; i < a.trace_events.size(); ++i) {
    const trace::Event& x = a.trace_events[i];
    const trace::Event& y = b.trace_events[i];
    ASSERT_EQ(x.ts, y.ts) << "trace event " << i;
    ASSERT_STREQ(x.name, y.name) << "trace event " << i;
    ASSERT_EQ(x.cat, y.cat) << "trace event " << i;
    ASSERT_EQ(x.kind, y.kind) << "trace event " << i;
    ASSERT_EQ(x.node, y.node) << "trace event " << i;
    ASSERT_EQ(x.corr, y.corr) << "trace event " << i;
    ASSERT_EQ(x.arg0, y.arg0) << "trace event " << i;
    ASSERT_EQ(x.arg1, y.arg1) << "trace event " << i;
  }
}

// A 2000-node (20 zones x 100) gossip world with per-message faults and a
// mid-run crash+restore, hot-spotted so the balancer has real migrations to
// make. `workers` is the only knob that varies between compared runs.
RunResult run_faulty_world(std::size_t workers) {
  driver::FaultPlan faults;
  faults.seed = 7;
  faults.default_faults.drop_probability = 0.004;
  faults.default_faults.duplicate_probability = 0.002;
  faults.crashes.push_back({/*node=*/150, Time::from_ms(900), Time::from_ms(2500)});

  const driver::Scenario scenario = driver::ScenarioBuilder{}
                                        .scheme(driver::Scheme::Ampom)
                                        .topology(/*zones=*/20, /*nodes_per_zone=*/100)
                                        .gossip(/*fan_out=*/3)
                                        .reliability(driver::ReliabilityConfig::all_on())
                                        .faults(std::move(faults))
                                        .workers(workers)
                                        .build();
  balancer::ClusterSim world{scenario};

  trace::TraceConfig trace_config;
  trace_config.enabled = true;
  trace_config.sched_sample_period = Time::zero();  // no sampler; events only
  trace::TraceRecorder recorder{trace_config};
  world.set_trace(&recorder);

  // Two hot nodes per even zone plus a pile-up on node 0: intra-zone spread
  // and cross-zone sheds both happen, some of them through the faulty epoch.
  int index = 0;
  for (std::uint32_t zone = 0; zone < 20; zone += 2) {
    const auto hot = static_cast<net::NodeId>(zone * 100);
    world.spawn(burst_job(hot, 20000, index++));
    world.spawn(burst_job(hot, 20000, index++));
  }
  for (int i = 0; i < 6; ++i) {
    world.spawn(burst_job(0, 20000, index++));
  }

  balancer::LoadBalancer::Config cfg;
  cfg.assumed_freeze_seconds = 0.2;
  balancer::LoadBalancer balancer{world, cfg};
  balancer.start();
  world.run();

  RunResult result;
  result.makespan = world.makespan();
  result.events = world.simulator().events_processed();
  for (const auto& host : world.hosts()) {
    result.migrations += host->migrations();
    result.failed_migrations += host->failed_migrations();
    result.placement.push_back(host->current_node());
  }
  for (net::NodeId id = 0; id < world.node_count(); ++id) {
    result.pings += world.infod(id).pings_sent();
  }
  result.trace_events = recorder.events();  // deterministic shard merge
  return result;
}

TEST(ParallelSim, FourWorkersBitIdenticalToOneOnFaultyWorld) {
  const RunResult one = run_faulty_world(1);
  const RunResult four = run_faulty_world(4);
  expect_identical(one, four);
  // The comparison is not vacuous: the run migrates, gossips and records.
  EXPECT_GT(one.migrations, 0u);
  EXPECT_GT(one.pings, 0u);
  EXPECT_GT(one.trace_events.size(), 0u);
}

TEST(ParallelSim, WorkersRequireMultiZoneTopology) {
  EXPECT_THROW((void)driver::ScenarioBuilder{}
                   .scheme(driver::Scheme::Ampom)
                   .topology(/*zones=*/1, /*nodes_per_zone=*/16)
                   .workers(4)
                   .build(),
               std::invalid_argument);
  EXPECT_THROW(
      (void)driver::ScenarioBuilder{}.scheme(driver::Scheme::Ampom).workers(2).build(),
      std::invalid_argument);
}

TEST(ParallelSim, AuditorStaysCleanUnderChaosWithWorkers) {
  // Zone 1 crashes whole and comes back while four workers are configured.
  // Attaching an observer serializes execution onto one thread (the auditor
  // reads world state from partition callbacks), but the *partitioned
  // schedule* is unchanged — so this pins the engine's event ordering, not
  // just its happy path, under detection, outage and heal.
  const driver::Scenario scenario = driver::ScenarioBuilder{}
                                        .scheme(driver::Scheme::Ampom)
                                        .topology(/*zones=*/4, /*nodes_per_zone=*/25)
                                        .gossip(/*fan_out=*/3)
                                        .reliability(driver::ReliabilityConfig::all_on())
                                        .zone_outage(/*zone=*/1u, Time::from_sec(1),
                                                     /*restore_at=*/Time::from_sec(3))
                                        .workers(4)
                                        .build();
  balancer::ClusterSim world{scenario};
  verify::InvariantAuditor auditor{world};
  // Homes stay out of zone 1: a process frozen at home by its own node's
  // crash has no thaw path (same rule the other chaos worlds follow) —
  // zone 1 participates as gossip peers, crash victims and heal subjects.
  constexpr std::uint32_t kSafeZones[] = {0, 2, 3};
  for (int i = 0; i < 12; ++i) {
    const auto u = static_cast<std::uint32_t>(i);
    const auto home = static_cast<net::NodeId>(kSafeZones[u % 3] * 25 + (u * 7) % 25);
    world.spawn(burst_job(home, 30000, i));
  }
  balancer::LoadBalancer::Config cfg;
  cfg.assumed_freeze_seconds = 0.2;
  balancer::LoadBalancer balancer{world, cfg};
  balancer.start();
  world.run();

  for (const auto& host : world.hosts()) {
    EXPECT_TRUE(host->finished());
  }
  EXPECT_EQ(auditor.violations(), 0u) << auditor.first_violation();
  EXPECT_GT(auditor.epochs_run(), 0u);
}

}  // namespace
}  // namespace ampom
