// Structured tracing: recorder semantics, zero-overhead-off transparency,
// deterministic export, and the reconstructed migration timeline.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <sstream>
#include <tuple>

#include "driver/builder.hpp"
#include "driver/experiment.hpp"
#include "driver/run_context.hpp"
#include "driver/runner.hpp"
#include "trace/chrome_export.hpp"
#include "trace/trace.hpp"
#include "workload/hpcc.hpp"

namespace {

using namespace ampom;

driver::ScenarioBuilder small_ampom() {
  return driver::ScenarioBuilder{}
      .scheme(driver::Scheme::Ampom)
      .hpcc_workload(workload::HpccKernel::Stream, 9);
}

// Chaos variant: faults + the full reliability stack, the configuration
// most sensitive to a stray RNG draw or event reordering.
driver::ScenarioBuilder small_chaos() {
  driver::FaultPlan plan;
  plan.seed = 17;
  plan.default_faults.drop_probability = 0.02;
  return small_ampom().faults(plan).reliability(driver::ReliabilityConfig::all_on());
}

std::string export_json(const trace::TraceRecorder& recorder) {
  std::ostringstream out;
  trace::write_chrome_trace(recorder, out);
  return out.str();
}

std::size_t count_occurrences(const std::string& haystack, const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

// --- recorder unit behavior -------------------------------------------------

// The unit tests heap-allocate their recorders: GCC 12's -Wstringop-overflow
// misfires on the fully inlined stack-local push_back path.
TEST(TraceRecorder, DisabledRecordsNothing) {
  const auto rec = std::make_unique<trace::TraceRecorder>();  // default config: off
  rec->instant(trace::Category::kNet, "send", sim::Time::from_ms(1), 0, 7);
  rec->async_begin(trace::Category::kPaging, "fault", sim::Time::from_ms(1), 0, 7);
  rec->counter(trace::Category::kSched, "queue_depth", sim::Time::from_ms(1), 0, 3.0);
  EXPECT_FALSE(rec->enabled());
  EXPECT_TRUE(rec->events().empty());
  EXPECT_EQ(rec->events_dropped(), 0u);
  EXPECT_TRUE(rec->summary().all().empty());
}

TEST(TraceRecorder, CapDropsBeyondMaxEvents) {
  trace::TraceConfig cfg;
  cfg.enabled = true;
  cfg.max_events = 2;
  const auto rec = std::make_unique<trace::TraceRecorder>(cfg);
  for (int i = 0; i < 5; ++i) {
    rec->instant(trace::Category::kNet, "send", sim::Time::from_us(i), 0);
  }
  EXPECT_EQ(rec->events().size(), 2u);
  EXPECT_EQ(rec->events_dropped(), 3u);
  EXPECT_EQ(rec->summary().get("trace.dropped"), 3u);
}

TEST(TraceRecorder, SummaryCountsPerCategoryAndName) {
  trace::TraceConfig cfg;
  cfg.enabled = true;
  const auto rec = std::make_unique<trace::TraceRecorder>(cfg);
  const struct {
    trace::Category cat;
    const char* name;
    std::uint32_t node;
  } emits[] = {{trace::Category::kNet, "deliver", 0},
               {trace::Category::kNet, "deliver", 1},
               {trace::Category::kMigration, "frozen", 0}};
  std::int64_t us = 0;
  for (const auto& e : emits) {
    rec->instant(e.cat, e.name, sim::Time::from_us(++us), e.node);
  }
  const stats::Counters s = rec->summary();
  EXPECT_EQ(s.get("trace.net.deliver"), 2u);
  EXPECT_EQ(s.get("trace.migration.frozen"), 1u);
}

// --- transparency: tracing must never steer the simulation ------------------

void expect_same_results(const driver::RunMetrics& a, const driver::RunMetrics& b) {
  EXPECT_EQ(a.total_time, b.total_time);
  EXPECT_EQ(a.freeze_time, b.freeze_time);
  EXPECT_EQ(a.cpu_time, b.cpu_time);
  EXPECT_EQ(a.stall_time, b.stall_time);
  EXPECT_EQ(a.hard_faults, b.hard_faults);
  EXPECT_EQ(a.soft_faults, b.soft_faults);
  EXPECT_EQ(a.pages_arrived, b.pages_arrived);
  EXPECT_EQ(a.pages_migrated, b.pages_migrated);
  EXPECT_EQ(a.remote_fault_requests, b.remote_fault_requests);
  EXPECT_EQ(a.bytes_freeze, b.bytes_freeze);
  EXPECT_EQ(a.bytes_paging, b.bytes_paging);
  EXPECT_EQ(a.paging_retransmits, b.paging_retransmits);
  EXPECT_EQ(a.net_messages_dropped, b.net_messages_dropped);
  EXPECT_EQ(a.refs_consumed, b.refs_consumed);
}

TEST(TraceTransparency, DisabledConfigMatchesFreshContext) {
  // Runner wires a (disabled) recorder through a RunContext it owns; a
  // hand-built context must produce the same run.
  const driver::Scenario s = small_ampom().build();
  driver::RunContext ctx{s, driver::RunContext::Options{.capture_log = true}};
  const driver::RunMetrics with_own_ctx = driver::detail::run_scenario(s, ctx);
  const driver::RunMetrics with_disabled = driver::run_experiment(s);
  expect_same_results(with_own_ctx, with_disabled);
}

TEST(TraceTransparency, EnablingTracingKeepsChaosRunBitIdentical) {
  const driver::RunMetrics off = driver::run_experiment(small_chaos().build());
  const driver::RunMetrics on = driver::run_experiment(small_chaos().tracing().build());
  expect_same_results(off, on);
  EXPECT_TRUE(off.trace_summary.all().empty());
  EXPECT_FALSE(on.trace_summary.all().empty());
}

// --- determinism of the exported file ---------------------------------------

TEST(TraceExport, SameSeedSameBytes) {
  const driver::Scenario s = small_chaos().tracing().build();
  driver::Runner first;
  driver::Runner second;
  (void)first.run(s);
  (void)second.run(s);
  const std::string a = export_json(*first.trace());
  const std::string b = export_json(*second.trace());
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

// --- Chrome trace_event schema sanity ----------------------------------------

TEST(TraceExport, ChromeJsonShape) {
  const driver::Scenario s = small_ampom().tracing().build();
  driver::Runner runner;
  (void)runner.run(s);
  const std::string json = export_json(*runner.trace());

  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u) << json.substr(0, 40);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  // Async begins and ends must pair up.
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"b\""), count_occurrences(json, "\"ph\":\"e\""));
  // Metadata names the node processes and category tracks.
  EXPECT_NE(json.find("\"name\":\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"node0\""), std::string::npos);
  // Timestamps are fixed-point microseconds, never scientific notation.
  EXPECT_EQ(json.find("e+"), std::string::npos);

  // The timeline must be time-ordered after export.
  std::int64_t prev_ts_thousandths = -1;
  std::size_t pos = 0;
  while ((pos = json.find("\"ts\":", pos)) != std::string::npos) {
    pos += 5;
    const std::size_t dot = json.find('.', pos);
    const std::int64_t whole = std::stoll(json.substr(pos, dot - pos));
    const std::int64_t frac = std::stoll(json.substr(dot + 1, 3));
    const std::int64_t t = whole * 1000 + frac;
    EXPECT_GE(t, prev_ts_thousandths);
    prev_ts_thousandths = t;
  }
}

// --- the reconstructed migration timeline ------------------------------------

TEST(TraceTimeline, AmpomMigrationPhases) {
  const driver::Scenario s = small_ampom().tracing().build();
  driver::Runner runner;
  (void)runner.run(s);
  const auto& events = runner.trace()->events();
  ASSERT_FALSE(events.empty());

  using Key = std::tuple<trace::Category, std::string, trace::Event::Kind>;
  std::map<Key, sim::Time> first_at;
  for (const trace::Event& e : events) {
    const Key k{e.cat, e.name, e.kind};
    if (first_at.count(k) == 0) {
      first_at[k] = e.ts;
    }
  }
  const auto at = [&](trace::Category cat, const char* name,
                      trace::Event::Kind kind) -> sim::Time {
    const auto it = first_at.find(Key{cat, name, kind});
    EXPECT_NE(it, first_at.end()) << "missing event " << name;
    return it == first_at.end() ? sim::Time::zero() : it->second;
  };

  using K = trace::Event::Kind;
  using C = trace::Category;
  const sim::Time mig_begin = at(C::kMigration, "migration", K::kAsyncBegin);
  const sim::Time frozen = at(C::kMigration, "frozen", K::kInstant);
  const sim::Time pack_begin = at(C::kMigration, "freeze_pack", K::kAsyncBegin);
  const sim::Time pack_end = at(C::kMigration, "freeze_pack", K::kAsyncEnd);
  const sim::Time xfer_end = at(C::kMigration, "transfer", K::kAsyncEnd);
  const sim::Time unpack_end = at(C::kMigration, "unpack_restore", K::kAsyncEnd);
  const sim::Time resume = at(C::kMigration, "resume", K::kInstant);
  const sim::Time mig_end = at(C::kMigration, "migration", K::kAsyncEnd);

  // freeze -> pack -> transfer -> unpack -> resume, inside the outer span.
  EXPECT_LE(mig_begin, frozen);
  EXPECT_LE(frozen, pack_begin);
  EXPECT_LT(pack_begin, pack_end);
  EXPECT_LE(pack_end, xfer_end);
  EXPECT_LE(xfer_end, unpack_end);
  EXPECT_LE(unpack_end, resume);
  EXPECT_EQ(resume, mig_end);

  // Demand paging produced fault spans and arrivals once the process resumed.
  EXPECT_GE(at(C::kPaging, "fault", K::kAsyncBegin), resume);
  EXPECT_NE(first_at.find(Key{C::kPaging, "page_arrival", K::kInstant}), first_at.end());
  EXPECT_NE(first_at.find(Key{C::kPrefetch, "prefetch_batch", K::kAsyncBegin}),
            first_at.end());
  EXPECT_NE(first_at.find(Key{C::kNet, "deliver", K::kInstant}), first_at.end());
  EXPECT_NE(first_at.find(Key{C::kSched, "queue_depth", K::kCounter}), first_at.end());

  // Every async span that opened also closed.
  std::map<std::tuple<trace::Category, std::string, std::uint64_t>, std::int64_t> open;
  for (const trace::Event& e : events) {
    if (e.kind == K::kAsyncBegin) {
      ++open[{e.cat, e.name, e.corr}];
    } else if (e.kind == K::kAsyncEnd) {
      --open[{e.cat, e.name, e.corr}];
    }
  }
  for (const auto& [key, balance] : open) {
    EXPECT_EQ(balance, 0) << "unbalanced span " << std::get<1>(key) << " corr "
                          << std::get<2>(key);
  }
}

TEST(TraceTimeline, SchedulerSamplerCanBeDisabled) {
  trace::TraceConfig cfg;
  cfg.enabled = true;
  cfg.sched_sample_period = sim::Time::zero();
  const driver::Scenario s = small_ampom().trace(cfg).build();
  driver::Runner runner;
  (void)runner.run(s);
  const auto& events = runner.trace()->events();
  ASSERT_FALSE(events.empty());
  EXPECT_TRUE(std::none_of(events.begin(), events.end(), [](const trace::Event& e) {
    return e.cat == trace::Category::kSched;
  }));
}

TEST(TraceTimeline, ChaosRunRecordsDropsAndRetries) {
  const driver::RunMetrics m = driver::run_experiment(small_chaos().tracing().build());
  ASSERT_GT(m.net_messages_dropped, 0u) << "chaos scenario produced no loss";
  EXPECT_EQ(m.trace_summary.get("trace.net.drop"), m.net_messages_dropped);
  // The reliable pager retried; the trace saw every retransmission.
  EXPECT_EQ(m.trace_summary.get("trace.paging.retransmit"), m.paging_retransmits);
}

// --- Runner facade ------------------------------------------------------------

TEST(Runner, MetricSinksSeeEveryRun) {
  driver::Runner runner;
  int calls = 0;
  runner.add_metric_sink([&calls](const driver::RunMetrics&) { ++calls; });
  const driver::Scenario s = small_ampom().build();
  (void)runner.run(s);
  (void)runner.run(s);
  EXPECT_EQ(calls, 2);
}

TEST(Runner, WriteTraceJsonRefusesWhenTracingOff) {
  driver::Runner runner;
  EXPECT_FALSE(runner.write_trace_json("/tmp/ampom_should_not_exist.json"));
  (void)runner.run(small_ampom().build());
  EXPECT_FALSE(runner.write_trace_json("/tmp/ampom_should_not_exist.json"));
}

TEST(Runner, PerRunLogLevelAndCapture) {
  // The log level is per run now, not a scoped mutation of global state:
  // a verbose captured run and a quiet one can coexist in one process.
  driver::Runner verbose{driver::Runner::Options{sim::LogLevel::Debug, /*capture_log=*/true}};
  (void)verbose.run(small_ampom().build());
  ASSERT_NE(verbose.context(), nullptr);
  const std::string log = verbose.context()->captured_log();
  EXPECT_NE(log.find("run start"), std::string::npos);
  EXPECT_NE(log.find("run finished"), std::string::npos);

  driver::Runner quiet{driver::Runner::Options{sim::LogLevel::Error, /*capture_log=*/true}};
  (void)quiet.run(small_ampom().build());
  ASSERT_NE(quiet.context(), nullptr);
  EXPECT_TRUE(quiet.context()->captured_log().empty());
}

}  // namespace
