// Tests of the perf_gate comparator: JSON parsing, normalization of raw
// google-benchmark output, the committed-schema round trip, and the gate
// rules (SBO zero-alloc invariant, cancel-heavy speedup floor, baseline
// trajectory tolerance).

#include <gtest/gtest.h>

#include <string>

#include "perf_gate/gate.hpp"

namespace ampom::perfgate {
namespace {

JsonValue parse_ok(const std::string& text) {
  std::string error;
  auto doc = parse_json(text, &error);
  EXPECT_TRUE(doc.has_value()) << error;
  return doc ? *doc : JsonValue{};
}

TEST(PerfGateJson, ParsesScalarsArraysAndNestedObjects) {
  const JsonValue doc = parse_ok(
      R"({"name": "x", "n": -2.5e3, "flag": true, "none": null,
          "list": [1, 2, 3], "inner": {"k": "v\n\"q\""}})");
  ASSERT_EQ(doc.kind, JsonValue::Kind::Object);
  EXPECT_EQ(doc.find("name")->string, "x");
  EXPECT_DOUBLE_EQ(doc.find("n")->number, -2500.0);
  EXPECT_TRUE(doc.find("flag")->boolean);
  EXPECT_EQ(doc.find("none")->kind, JsonValue::Kind::Null);
  ASSERT_EQ(doc.find("list")->array.size(), 3u);
  EXPECT_DOUBLE_EQ(doc.find("list")->array[2].number, 3.0);
  EXPECT_EQ(doc.find("inner")->find("k")->string, "v\n\"q\"");
  EXPECT_EQ(doc.find("absent"), nullptr);
}

TEST(PerfGateJson, RejectsMalformedInput) {
  for (const char* bad : {"{", "[1,]", "{\"a\" 1}", "{\"a\": 1} x", "\"unterminated",
                          "{\"a\": nope}", ""}) {
    std::string error;
    EXPECT_FALSE(parse_json(bad, &error).has_value()) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }
}

// A raw google-benchmark document with the six profile benches (extra
// benches and fields present, as in real output).
std::string raw_run(double indexed_cancel_rate, double indexed_cancel_allocs) {
  auto bench = [](const std::string& name, double rate, double allocs, double peak) {
    return R"({"name": ")" + name + R"(", "run_type": "iteration",
               "real_time": 1.0, "events_per_sec": )" + std::to_string(rate) +
           R"(, "allocs_per_op": )" + std::to_string(allocs) +
           R"(, "peak_queued": )" + std::to_string(peak) + "}";
  };
  return R"({"context": {"num_cpus": 8}, "benchmarks": [)" +
         bench("BM_ScheduleHeavy_Indexed", 11.0e6, 0.0, 65536) + "," +
         bench("BM_ScheduleHeavy_Lazy", 7.0e6, 1.0, 65536) + "," +
         bench("BM_CancelHeavy_Indexed", indexed_cancel_rate, indexed_cancel_allocs, 1) + "," +
         bench("BM_CancelHeavy_Lazy", 15.0e6, 0.75, 1000) + "," +
         bench("BM_Mixed_Indexed", 36.0e6, 0.0, 2048) + "," +
         bench("BM_Mixed_Lazy", 12.0e6, 1.0, 4096) + "," +
         bench("BM_ScheduleAndRun/1000", 1.0e6, 0.0, 0) + "]}";
}

TEST(PerfGateSummary, NormalizesRawBenchmarkOutput) {
  std::string error;
  const auto summary = summarize_raw(parse_ok(raw_run(73.0e6, 0.0)), &error);
  ASSERT_TRUE(summary.has_value()) << error;
  ASSERT_EQ(summary->profiles.size(), 3u);
  const EngineProfile& cancel = summary->profiles.at("cancel_heavy");
  EXPECT_DOUBLE_EQ(cancel.indexed.events_per_sec, 73.0e6);
  EXPECT_DOUBLE_EQ(cancel.lazy.peak_queued, 1000.0);
  EXPECT_NEAR(cancel.speedup_vs_lazy, 73.0 / 15.0, 1e-9);
  EXPECT_NEAR(summary->profiles.at("mixed").speedup_vs_lazy, 3.0, 1e-9);
}

TEST(PerfGateSummary, MissingBenchmarkOrCounterIsAnErrorNotAPass) {
  std::string error;
  EXPECT_FALSE(summarize_raw(parse_ok(R"({"benchmarks": []})"), &error).has_value());
  EXPECT_NE(error.find("BM_ScheduleHeavy_Indexed"), std::string::npos) << error;

  // Drop one counter from one bench: still an error.
  std::string raw = raw_run(73.0e6, 0.0);
  const auto pos = raw.find("\"peak_queued\"");
  ASSERT_NE(pos, std::string::npos);
  raw.replace(pos, 13, "\"renamed\"");
  EXPECT_FALSE(summarize_raw(parse_ok(raw), &error).has_value());
  EXPECT_NE(error.find("peak_queued"), std::string::npos) << error;
}

TEST(PerfGateSummary, RenderedSummaryRoundTripsThroughLoad) {
  std::string error;
  const auto summary = summarize_raw(parse_ok(raw_run(73.0e6, 0.0)), &error);
  ASSERT_TRUE(summary.has_value()) << error;
  const std::string rendered = render_summary(*summary);
  const auto reloaded = load_summary(parse_ok(rendered), &error);
  ASSERT_TRUE(reloaded.has_value()) << error;
  ASSERT_EQ(reloaded->profiles.size(), 3u);
  EXPECT_NEAR(reloaded->profiles.at("cancel_heavy").speedup_vs_lazy, 73.0 / 15.0, 1e-4);
  EXPECT_DOUBLE_EQ(reloaded->profiles.at("mixed").indexed.allocs_per_op, 0.0);
  // Rendering is deterministic: same summary, same bytes.
  EXPECT_EQ(rendered, render_summary(*summary));
}

Summary summary_of(double cancel_rate, double cancel_allocs) {
  std::string error;
  const auto summary = summarize_raw(parse_ok(raw_run(cancel_rate, cancel_allocs)), &error);
  EXPECT_TRUE(summary.has_value()) << error;
  return summary ? *summary : Summary{};
}

TEST(PerfGateGate, PassesAHealthyRunWithoutABaseline) {
  const Summary current = summary_of(73.0e6, 0.0);
  const GateResult result = gate(current, nullptr, GateOptions{});
  EXPECT_TRUE(result.pass) << (result.failures.empty() ? "" : result.failures.front());
  EXPECT_TRUE(result.failures.empty());
  EXPECT_EQ(result.notes.size(), 3u);  // one throughput line per profile
}

TEST(PerfGateGate, AnySingleIndexedAllocationFailsTheSboInvariant) {
  const Summary current = summary_of(73.0e6, 1e-6);  // one alloc per million ops
  const GateResult result = gate(current, nullptr, GateOptions{});
  EXPECT_FALSE(result.pass);
  ASSERT_EQ(result.failures.size(), 1u);
  EXPECT_NE(result.failures[0].find("allocs_per_op"), std::string::npos);
}

TEST(PerfGateGate, CancelHeavySpeedupBelowTheFloorFails) {
  const Summary current = summary_of(20.0e6, 0.0);  // 1.33x < the 1.5x floor
  const GateResult result = gate(current, nullptr, GateOptions{});
  EXPECT_FALSE(result.pass);
  ASSERT_EQ(result.failures.size(), 1u);
  EXPECT_NE(result.failures[0].find("1.5x floor"), std::string::npos);
}

TEST(PerfGateGate, BaselineTrajectoryIsEnforcedWithTolerance) {
  const Summary baseline = summary_of(73.0e6, 0.0);  // speedup 4.87x
  // 30% tolerance: floor is 3.41x. A run at 3.5x passes, a run at 3.0x fails.
  EXPECT_TRUE(gate(summary_of(3.5 * 15.0e6, 0.0), &baseline, GateOptions{}).pass);
  const GateResult slow = gate(summary_of(3.0 * 15.0e6, 0.0), &baseline, GateOptions{});
  EXPECT_FALSE(slow.pass);
  ASSERT_EQ(slow.failures.size(), 1u);
  EXPECT_NE(slow.failures[0].find("regressed"), std::string::npos);
  // A tighter tolerance flips the 3.5x run to a failure too.
  EXPECT_FALSE(gate(summary_of(3.5 * 15.0e6, 0.0), &baseline,
                    GateOptions{.tolerance = 0.05, .min_speedup = 1.5})
                   .pass);
}

TEST(PerfGateGate, PeakQueuedGrowthPastBaselineFails) {
  const Summary baseline = summary_of(73.0e6, 0.0);
  Summary current = summary_of(73.0e6, 0.0);
  // A leak-shaped regression: cancelled entries pile up again.
  current.profiles.at("cancel_heavy").indexed.peak_queued = 500.0;
  const GateResult result = gate(current, &baseline, GateOptions{});
  EXPECT_FALSE(result.pass);
  ASSERT_EQ(result.failures.size(), 1u);
  EXPECT_NE(result.failures[0].find("peak_queued"), std::string::npos);
}

TEST(PerfGateGate, ProfileMissingFromCurrentRunFails) {
  const Summary baseline = summary_of(73.0e6, 0.0);
  Summary current = summary_of(73.0e6, 0.0);
  current.profiles.erase("mixed");
  const GateResult result = gate(current, &baseline, GateOptions{});
  EXPECT_FALSE(result.pass);
  ASSERT_EQ(result.failures.size(), 1u);
  EXPECT_NE(result.failures[0].find("missing from this run"), std::string::npos);
}

TEST(PerfGateLoad, RejectsDocumentsWithoutSchemaOrProfiles) {
  std::string error;
  EXPECT_FALSE(load_summary(parse_ok(R"({"profiles": {}})"), &error).has_value());
  EXPECT_NE(error.find("schema"), std::string::npos);
  EXPECT_FALSE(load_summary(parse_ok(R"({"schema": 1})"), &error).has_value());
  EXPECT_NE(error.find("profiles"), std::string::npos);
}

// --- scale-sweep mode -------------------------------------------------------

ScaleCase scale_case(double nodes, double msgs, double events, double wall) {
  ScaleCase c;
  c.nodes = nodes;
  c.zones = nodes / 8.0;
  c.fan_out = 3.0;
  c.procs = nodes * 10.0;
  c.events = events;
  c.sim_sec = 10.0;
  c.msgs_per_node_period = msgs;
  c.wall_sec = wall;
  c.events_per_sec = wall > 0.0 ? events / wall : 0.0;
  return c;
}

ScaleSummary healthy_scale() {
  ScaleSummary s;
  s.cases.emplace("n64", scale_case(64, 5.97, 1.0e6, 0.5));
  s.cases.emplace("n256", scale_case(256, 5.91, 4.0e6, 3.6));
  s.cases.emplace("n1024", scale_case(1024, 6.00, 16.0e6, 19.0));
  return s;
}

TEST(PerfGateScale, RoundTripsAndPassesWithoutBaseline) {
  const ScaleSummary summary = healthy_scale();
  std::string error;
  const auto reloaded = load_scale_summary(parse_ok(render_scale_summary(summary)), &error);
  ASSERT_TRUE(reloaded.has_value()) << error;
  EXPECT_EQ(reloaded->cases.size(), 3u);
  EXPECT_DOUBLE_EQ(reloaded->cases.at("n1024").msgs_per_node_period, 6.00);

  const GateResult result = gate_scale(*reloaded, nullptr, GateOptions{});
  EXPECT_TRUE(result.pass) << (result.failures.empty() ? "" : result.failures[0]);
}

TEST(PerfGateScale, PerNodeTrafficAboveFanOutCeilingFails) {
  ScaleSummary current = healthy_scale();
  // An all-pairs regression: traffic scales with cluster size again.
  current.cases.at("n1024").msgs_per_node_period = 2.0 * 1023.0;
  const GateResult result = gate_scale(current, nullptr, GateOptions{});
  EXPECT_FALSE(result.pass);
  bool found = false;
  for (const std::string& f : result.failures) {
    found = found || f.find("O(fan_out) ceiling") != std::string::npos;
  }
  EXPECT_TRUE(found);
}

TEST(PerfGateScale, TrafficTrendingWithClusterSizeFails) {
  ScaleSummary current = healthy_scale();
  // Below the 3x-fan_out ceiling but clearly growing with n: the
  // size-independence spread check must object.
  current.cases.at("n64").msgs_per_node_period = 4.0;
  current.cases.at("n256").msgs_per_node_period = 6.0;
  current.cases.at("n1024").msgs_per_node_period = 8.5;
  const GateResult result = gate_scale(current, nullptr, GateOptions{});
  EXPECT_FALSE(result.pass);
  bool found = false;
  for (const std::string& f : result.failures) {
    found = found || f.find("depends on cluster size") != std::string::npos;
  }
  EXPECT_TRUE(found);
}

TEST(PerfGateScale, BaselineOnlyCaseFailsByDefaultNamingTheCase) {
  // A case silently dropped from the run must not gate green: nothing
  // compared it. The failure names the case so the fix is obvious.
  const ScaleSummary baseline = healthy_scale();
  ScaleSummary current = healthy_scale();
  current.cases.erase("n1024");
  const GateResult result = gate_scale(current, &baseline, GateOptions{});
  EXPECT_FALSE(result.pass);
  bool found = false;
  for (const std::string& f : result.failures) {
    found = found || (f.find("n1024") != std::string::npos &&
                      f.find("was not run") != std::string::npos);
  }
  EXPECT_TRUE(found);
}

TEST(PerfGateScale, AllowCaseSubsetWaivesBaselineOnlyMisses) {
  // The committed baseline carries the --full grid; a CI --quick run with a
  // subset of cases gates cleanly only under the explicit waiver.
  const ScaleSummary baseline = healthy_scale();
  ScaleSummary current = healthy_scale();
  current.cases.erase("n1024");
  GateOptions options;
  options.allow_case_subset = true;
  const GateResult result = gate_scale(current, &baseline, options);
  EXPECT_TRUE(result.pass) << (result.failures.empty() ? "" : result.failures[0]);
}

TEST(PerfGateScale, CurrentOnlyCaseFailsEvenWithTheSubsetWaiver) {
  // The inverse mismatch — a case the baseline has never seen — is never
  // waivable: until the baseline is refreshed, nothing gates that case.
  const ScaleSummary baseline = healthy_scale();
  ScaleSummary current = healthy_scale();
  ScaleCase extra = current.cases.at("n1024");
  extra.nodes = 4096.0;
  current.cases.emplace("n4096", extra);
  GateOptions options;
  options.allow_case_subset = true;
  const GateResult result = gate_scale(current, &baseline, options);
  EXPECT_FALSE(result.pass);
  bool found = false;
  for (const std::string& f : result.failures) {
    found = found || (f.find("n4096") != std::string::npos &&
                      f.find("missing from the baseline") != std::string::npos);
  }
  EXPECT_TRUE(found);
}

TEST(PerfGateScale, EventDriftPastToleranceFails) {
  const ScaleSummary baseline = healthy_scale();
  ScaleSummary current = healthy_scale();
  current.cases.at("n256").events = baseline.cases.at("n256").events * 1.5;
  const GateResult result = gate_scale(current, &baseline, GateOptions{});
  EXPECT_FALSE(result.pass);
  bool found = false;
  for (const std::string& f : result.failures) {
    found = found || f.find("outside baseline") != std::string::npos;
  }
  EXPECT_TRUE(found);
}

TEST(PerfGateScale, WallTimeTrajectoryRegressionFails) {
  // Same machine speed at the anchor, but the big case takes 3x the
  // baseline's relative wall time: the scaling shape regressed even though
  // every absolute number alone could be blamed on a slower machine.
  const ScaleSummary baseline = healthy_scale();
  ScaleSummary current = healthy_scale();
  current.cases.at("n1024").wall_sec = baseline.cases.at("n1024").wall_sec * 3.0;
  const GateResult result = gate_scale(current, &baseline, GateOptions{});
  EXPECT_FALSE(result.pass);
  bool found = false;
  for (const std::string& f : result.failures) {
    found = found || f.find("scaling shape regressed") != std::string::npos;
  }
  EXPECT_TRUE(found);
}

TEST(PerfGateScale, RejectsNonScaleDocuments) {
  std::string error;
  EXPECT_FALSE(load_scale_summary(parse_ok(R"({"schema": 1, "tool": "perf_gate"})"), &error)
                   .has_value());
  EXPECT_NE(error.find("scale_sweep"), std::string::npos);
  EXPECT_FALSE(load_scale_summary(
                   parse_ok(R"({"schema": 1, "tool": "scale_sweep", "cases": {}})"), &error)
                   .has_value());
  EXPECT_NE(error.find("cases"), std::string::npos);
}

// --- parallel-sweep mode ----------------------------------------------------

ParallelCase parallel_case(double nodes, double events, double w1_wall,
                           double w4_wall) {
  ParallelCase c;
  c.nodes = nodes;
  c.zones = nodes / 100.0;
  c.procs = nodes * 10.0;
  const auto run = [&](double workers, double wall) {
    ParallelRun r;
    r.workers = workers;
    r.events = events;
    r.sim_sec = 10.0;
    r.wall_sec = wall;
    r.events_per_sec = wall > 0.0 ? events / wall : 0.0;
    return r;
  };
  c.runs.emplace("w1", run(1, w1_wall));
  c.runs.emplace("w4", run(4, w4_wall));
  return c;
}

// An 8-CPU recording: the big case clears the 2x floor, the small one is
// exempt from it (< 2000 nodes) and establishes the trajectory anchor.
ParallelSummary healthy_parallel() {
  ParallelSummary s;
  s.host_cpus = 8.0;
  s.cases.emplace("n256", parallel_case(256, 4013613.0, 4.0, 2.2));
  s.cases.emplace("n2000", parallel_case(2000, 3.1e7, 40.0, 15.0));
  return s;
}

TEST(PerfGateParallel, RoundTripsExactCountersAndPassesWithoutBaseline) {
  const ParallelSummary summary = healthy_parallel();
  std::string error;
  const auto reloaded =
      load_parallel_summary(parse_ok(render_parallel_summary(summary)), &error);
  ASSERT_TRUE(reloaded.has_value()) << error;
  EXPECT_DOUBLE_EQ(reloaded->host_cpus, 8.0);
  // Exact, not approximate: a "%.6g" render would round the event counter
  // and turn the next bit-identity check into noise.
  EXPECT_EQ(reloaded->cases.at("n256").runs.at("w4").events, 4013613.0);

  const GateResult result = gate_parallel(*reloaded, nullptr, GateOptions{});
  EXPECT_TRUE(result.pass) << (result.failures.empty() ? "" : result.failures[0]);
}

TEST(PerfGateParallel, AnyScheduleDriftAcrossWorkerCountsFails) {
  ParallelSummary current = healthy_parallel();
  current.cases.at("n2000").runs.at("w4").events += 1.0;
  GateResult result = gate_parallel(current, nullptr, GateOptions{});
  EXPECT_FALSE(result.pass);
  ASSERT_FALSE(result.failures.empty());
  EXPECT_NE(result.failures[0].find("depends on the worker count"), std::string::npos);

  current = healthy_parallel();
  current.cases.at("n256").runs.at("w4").sim_sec += 1e-9;
  result = gate_parallel(current, nullptr, GateOptions{});
  EXPECT_FALSE(result.pass);
}

TEST(PerfGateParallel, SpeedupFloorBindsOnlyWhenTheHostHasTheCpus) {
  ParallelSummary current = healthy_parallel();
  current.cases.at("n2000").runs.at("w4").wall_sec = 35.0;  // 1.14x, floor is 2x
  const GateResult failed = gate_parallel(current, nullptr, GateOptions{});
  EXPECT_FALSE(failed.pass);
  bool found = false;
  for (const std::string& f : failed.failures) {
    found = found || f.find("below the") != std::string::npos;
  }
  EXPECT_TRUE(found);

  // The same numbers from a 1-CPU container: no parallelism was available,
  // so only bit-identity and trajectory gate.
  current.host_cpus = 1.0;
  const GateResult skipped = gate_parallel(current, nullptr, GateOptions{});
  EXPECT_TRUE(skipped.pass) << (skipped.failures.empty() ? "" : skipped.failures[0]);
}

TEST(PerfGateParallel, SmallCasesAreExemptFromTheSpeedupFloor) {
  ParallelSummary current = healthy_parallel();
  current.cases.at("n256").runs.at("w4").wall_sec = 6.0;  // slower than w1
  const GateResult result = gate_parallel(current, nullptr, GateOptions{});
  EXPECT_TRUE(result.pass) << (result.failures.empty() ? "" : result.failures[0]);
}

TEST(PerfGateParallel, BaselineOnlyCaseFailsByDefaultNamingTheCase) {
  const ParallelSummary baseline = healthy_parallel();
  ParallelSummary current = healthy_parallel();
  current.cases.erase("n2000");
  const GateResult result = gate_parallel(current, &baseline, GateOptions{});
  EXPECT_FALSE(result.pass);
  bool found = false;
  for (const std::string& f : result.failures) {
    found = found || (f.find("n2000") != std::string::npos &&
                      f.find("was not run") != std::string::npos);
  }
  EXPECT_TRUE(found);
}

TEST(PerfGateParallel, AllowCaseSubsetWaivesBaselineOnlyMisses) {
  const ParallelSummary baseline = healthy_parallel();
  ParallelSummary current = healthy_parallel();
  current.cases.erase("n2000");
  GateOptions options;
  options.allow_case_subset = true;
  const GateResult result = gate_parallel(current, &baseline, options);
  EXPECT_TRUE(result.pass) << (result.failures.empty() ? "" : result.failures[0]);
}

TEST(PerfGateParallel, BaselineEventDriftPastToleranceFails) {
  const ParallelSummary baseline = healthy_parallel();
  ParallelSummary current = healthy_parallel();
  for (auto& [name, run] : current.cases.at("n2000").runs) {
    (void)name;
    run.events *= 1.5;  // consistent across workers, so bit-identity holds
  }
  const GateResult result = gate_parallel(current, &baseline, GateOptions{});
  EXPECT_FALSE(result.pass);
  bool found = false;
  for (const std::string& f : result.failures) {
    found = found || f.find("outside baseline") != std::string::npos;
  }
  EXPECT_TRUE(found);
}

TEST(PerfGateParallel, WallTimeTrajectoryRegressionFails) {
  const ParallelSummary baseline = healthy_parallel();
  ParallelSummary current = healthy_parallel();
  // w1 on the big case takes 3x the baseline's relative wall time while the
  // anchor is unchanged — the serial engine's scaling shape regressed.
  current.cases.at("n2000").runs.at("w1").wall_sec =
      baseline.cases.at("n2000").runs.at("w1").wall_sec * 3.0;
  current.cases.at("n2000").runs.at("w4").wall_sec =
      baseline.cases.at("n2000").runs.at("w4").wall_sec * 3.0;
  const GateResult result = gate_parallel(current, &baseline, GateOptions{});
  EXPECT_FALSE(result.pass);
  bool found = false;
  for (const std::string& f : result.failures) {
    found = found || f.find("scaling shape regressed") != std::string::npos;
  }
  EXPECT_TRUE(found);
}

TEST(PerfGateParallel, RejectsNonParallelAndIncompleteDocuments) {
  std::string error;
  EXPECT_FALSE(load_parallel_summary(
                   parse_ok(R"({"schema": 1, "tool": "scale_sweep"})"), &error)
                   .has_value());
  EXPECT_NE(error.find("parallel_sweep"), std::string::npos);
  EXPECT_FALSE(load_parallel_summary(
                   parse_ok(R"({"schema": 1, "tool": "parallel_sweep", "cases": {}})"),
                   &error)
                   .has_value());
  EXPECT_NE(error.find("host_cpus"), std::string::npos);
  // A case whose runs lack the w1 reference cannot be gated.
  EXPECT_FALSE(
      load_parallel_summary(
          parse_ok(
              R"({"schema": 1, "tool": "parallel_sweep", "host_cpus": 4, "cases": {
                   "n256": {"nodes": 256, "zones": 16, "procs": 2560, "runs": {
                     "w4": {"workers": 4, "events": 10, "sim_sec": 1,
                            "wall_sec": 1, "events_per_sec": 10}}}}})"),
          &error)
          .has_value());
  EXPECT_NE(error.find("w1"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Cache-ablation mode (BENCH_cache.json)
// ---------------------------------------------------------------------------

CachePolicyRun cache_run(double migrations, double charged_ms) {
  CachePolicyRun run;
  run.migrations = migrations;
  run.warmup_charged_ms = charged_ms;
  run.warmup_paid_ms = charged_ms;
  run.makespan_sec = 30.0;
  return run;
}

CacheSummary healthy_cache() {
  CacheSummary summary;
  const struct {
    const char* name;
    double wss_kib;
    double load_ms;
    double cache_ms;
  } kCases[] = {
      {"wss1024k", 1024.0, 40.0, 25.0},
      {"wss4096k", 4096.0, 160.0, 95.0},
  };
  for (const auto& spec : kCases) {
    CacheCase c;
    c.wss_kib = spec.wss_kib;
    c.nodes = 4.0;
    c.procs = 9.0;
    c.policies.emplace("load", cache_run(4.0, spec.load_ms));
    c.policies.emplace("eq3", cache_run(4.0, spec.load_ms * 0.9));
    c.policies.emplace("cache", cache_run(4.0, spec.cache_ms));
    summary.cases.emplace(spec.name, std::move(c));
  }
  return summary;
}

TEST(PerfGateCache, HealthyAblationPasses) {
  const GateResult result = gate_cache(healthy_cache(), nullptr, GateOptions{});
  EXPECT_TRUE(result.pass) << (result.failures.empty() ? "" : result.failures[0]);
}

TEST(PerfGateCache, MissingPolicyFailsNamingCaseAndPolicy) {
  CacheSummary current = healthy_cache();
  current.cases.at("wss4096k").policies.erase("eq3");
  const GateResult result = gate_cache(current, nullptr, GateOptions{});
  EXPECT_FALSE(result.pass);
  bool found = false;
  for (const std::string& f : result.failures) {
    found = found || (f.find("wss4096k") != std::string::npos &&
                      f.find("eq3") != std::string::npos);
  }
  EXPECT_TRUE(found);
}

TEST(PerfGateCache, CacheAwareNotBeatingLoadFails) {
  // The acceptance invariant: under contention, cache-aware placement must
  // strictly reduce the total warm-up charge vs the load-greedy pick.
  CacheSummary current = healthy_cache();
  for (auto& [name, c] : current.cases) {
    (void)name;
    c.policies.at("cache").warmup_charged_ms = c.policies.at("load").warmup_charged_ms;
  }
  const GateResult result = gate_cache(current, nullptr, GateOptions{});
  EXPECT_FALSE(result.pass);
  bool found = false;
  for (const std::string& f : result.failures) {
    found = found || f.find("not strictly below") != std::string::npos;
  }
  EXPECT_TRUE(found);
}

TEST(PerfGateCache, RoundTripsThroughRenderAndLoad) {
  const CacheSummary summary = healthy_cache();
  std::string error;
  const auto reloaded = load_cache_summary(parse_ok(render_cache_summary(summary)), &error);
  ASSERT_TRUE(reloaded.has_value()) << error;
  ASSERT_EQ(reloaded->cases.size(), summary.cases.size());
  const CacheCase& original = summary.cases.at("wss4096k");
  const CacheCase& round = reloaded->cases.at("wss4096k");
  EXPECT_DOUBLE_EQ(round.wss_kib, original.wss_kib);
  EXPECT_DOUBLE_EQ(round.policies.at("cache").warmup_charged_ms,
                   original.policies.at("cache").warmup_charged_ms);
  EXPECT_DOUBLE_EQ(round.policies.at("load").migrations,
                   original.policies.at("load").migrations);
}

TEST(PerfGateCache, BaselineChargeRegressionFails) {
  const CacheSummary baseline = healthy_cache();
  CacheSummary current = healthy_cache();
  current.cases.at("wss4096k").policies.at("cache").warmup_charged_ms *= 2.0;
  const GateResult result = gate_cache(current, &baseline, GateOptions{});
  EXPECT_FALSE(result.pass);
  bool found = false;
  for (const std::string& f : result.failures) {
    found = found || (f.find("wss4096k.cache") != std::string::npos &&
                      f.find("warmup_charged_ms") != std::string::npos);
  }
  EXPECT_TRUE(found);
}

TEST(PerfGateCache, CaseMismatchFollowsTheFailByDefaultRule) {
  const CacheSummary baseline = healthy_cache();
  CacheSummary current = healthy_cache();
  current.cases.erase("wss1024k");
  EXPECT_FALSE(gate_cache(current, &baseline, GateOptions{}).pass);
  GateOptions waived;
  waived.allow_case_subset = true;
  const GateResult result = gate_cache(current, &baseline, waived);
  EXPECT_TRUE(result.pass) << (result.failures.empty() ? "" : result.failures[0]);
}

TEST(PerfGateCache, RejectsForeignAndIncompleteDocuments) {
  std::string error;
  EXPECT_FALSE(load_cache_summary(
                   parse_ok(R"({"schema": 1, "tool": "scale_sweep"})"), &error)
                   .has_value());
  EXPECT_NE(error.find("cache_ablation"), std::string::npos);
  EXPECT_FALSE(
      load_cache_summary(
          parse_ok(R"({"schema": 1, "tool": "cache_ablation", "cases": {
                        "wss64k": {"wss_kib": 64, "nodes": 4, "procs": 9}}})"),
          &error)
          .has_value());
  EXPECT_NE(error.find("policies"), std::string::npos);
}

}  // namespace
}  // namespace ampom::perfgate
