// InvariantAuditor tests: the auditor stays silent on healthy chaos runs,
// perturbs nothing it observes, and catches a deliberately reintroduced
// protocol bug (the skipped abort rollback) at the exact trigger event.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "balancer/cluster_sim.hpp"
#include "balancer/load_balancer.hpp"
#include "verify/invariant_auditor.hpp"
#include "workload/synthetic.hpp"

namespace ampom::verify {
namespace {

using balancer::ClusterSim;
using balancer::ProcessHost;
using sim::Time;

balancer::JobSpec crash_job(net::NodeId home, std::uint64_t touches = 40000) {
  balancer::JobSpec job;
  job.home = home;
  job.label = "verify";
  job.start = Time::from_sec(1.0);
  job.make_workload = [touches] {
    return std::make_unique<workload::HotColdStream>(4 * sim::kMiB, /*hot_pages=*/64, touches,
                                                     /*cold_fraction=*/0.05, Time::from_us(100));
  };
  return job;
}

balancer::LoadBalancer::Config failure_handler_config() {
  balancer::LoadBalancer::Config config;
  config.period = Time::from_ms(250);
  config.imbalance_threshold = 1e9;  // never act on load, only on failures
  return config;
}

// A migrant's host crashes and stays down: detection condemns it, the
// balancer re-homes the migrant, the run finishes — and the auditor, having
// swept every epoch and trigger, found nothing to object to.
TEST(InvariantAuditor, CleanOnCrashRecoveryRun) {
  ClusterSim world{4, driver::Scheme::Ampom};
  InvariantAuditor auditor{world};
  world.set_reliability(driver::ReliabilityConfig::all_on());
  world.enable_recovery_tracking();

  driver::FaultPlan plan;
  plan.crashes.push_back({/*node=*/1, /*at=*/Time::from_sec(1.8), /*restore_at=*/{}});
  world.set_fault_plan(plan);

  ProcessHost& host = world.spawn(crash_job(0));
  world.simulator().schedule_at(Time::from_sec(1.3), [&host] { host.migrate_to(1); });
  balancer::LoadBalancer balancer{world, failure_handler_config()};
  balancer.start();
  world.run();

  EXPECT_TRUE(host.finished());
  EXPECT_EQ(host.current_node(), 0u);  // re-homed after the crash
  EXPECT_EQ(host.recoveries(), 1u);
  EXPECT_EQ(auditor.violations(), 0u);
  EXPECT_GT(auditor.epochs_run(), 0u);
  EXPECT_GT(auditor.checks_run(), 0u);
  EXPECT_EQ(auditor.first_violation(), "");

  // Recovery observability rode along: the crash was detected and the
  // migrant's re-homing latency measured.
  const ClusterSim::RecoveryStats& recovery = world.recovery_stats();
  EXPECT_EQ(recovery.crashes, 1u);
  EXPECT_EQ(recovery.rehomes, 1u);
  EXPECT_EQ(recovery.detect_ms.count(), 1u);
  EXPECT_GT(recovery.detect_ms.mean(), 0.0);
  EXPECT_EQ(recovery.rehome_ms.count(), 1u);
  // The reboot-reclaim fast path: a Frozen migrant on a node not yet
  // condemned by consensus is reclaimed at the next balancer tick, well
  // before the heartbeat-silence threshold declares the node dead.
  EXPECT_LT(recovery.rehome_ms.mean(), recovery.detect_ms.mean());

  driver::RunMetrics metrics;
  world.fill_recovery_metrics(metrics);
  EXPECT_EQ(metrics.crashes_injected, 1u);
  EXPECT_EQ(metrics.migrants_rehomed, 1u);
  EXPECT_GT(metrics.detect_p50_ms, 0.0);
  EXPECT_GT(metrics.rehome_p95_ms, 0.0);
}

// The auditor is an observer, not a participant: the same scenario with and
// without it produces identical application-visible results.
TEST(InvariantAuditor, ObserverChangesNothing) {
  const auto run = [](bool with_auditor) {
    ClusterSim world{3, driver::Scheme::Ampom};
    std::unique_ptr<InvariantAuditor> auditor;
    if (with_auditor) {
      auditor = std::make_unique<InvariantAuditor>(world);
    }
    world.set_reliability(driver::ReliabilityConfig::all_on());
    driver::FaultPlan plan;
    plan.seed = 17;
    plan.default_faults.drop_probability = 0.02;
    world.set_fault_plan(plan);
    ProcessHost& host = world.spawn(crash_job(0, /*touches=*/30000));
    world.simulator().schedule_at(Time::from_sec(1.3), [&host] { host.migrate_to(1); });
    world.run();
    EXPECT_TRUE(host.finished());
    return std::tuple{host.stats().refs_consumed, host.stats().finished_at,
                      host.stats().hard_faults, host.ledger().total_transfers(),
                      host.migrations()};
  };
  EXPECT_EQ(run(false), run(true));
  EXPECT_EQ(run(false), run(false));  // and the baseline itself is stable
}

// Mutation check: re-enable the "skip the abort rollback" bug. Migrating
// into a node that is already down forces the reliable transfer to abort;
// the mutated engine leaves the carried pages owned by the dead destination
// and the auditor's abort trigger must name exactly that.
TEST(InvariantAuditor, CatchesSkippedAbortRollback) {
  ClusterSim world{3, driver::Scheme::Ampom};
  InvariantAuditor auditor{world};
  driver::ReliabilityConfig reliability = driver::ReliabilityConfig::all_on();
  reliability.migration.mutate_skip_abort_rollback = true;
  world.set_reliability(reliability);

  driver::FaultPlan plan;
  plan.crashes.push_back({/*node=*/2, /*at=*/Time::from_sec(1.2), /*restore_at=*/{}});
  world.set_fault_plan(plan);

  ProcessHost& host = world.spawn(crash_job(0));
  world.simulator().schedule_at(Time::from_sec(1.5), [&host] { host.migrate_to(2); });
  balancer::LoadBalancer balancer{world, failure_handler_config()};
  balancer.start();

  try {
    world.run();
    FAIL() << "expected InvariantViolation";
  } catch (const InvariantViolation& violation) {
    const std::string what = violation.what();
    EXPECT_NE(what.find("owned by the lost destination"), std::string::npos) << what;
    EXPECT_NE(what.find("audit trail"), std::string::npos) << what;
  }
  EXPECT_GE(auditor.violations(), 1u);
  EXPECT_NE(auditor.first_violation().find("owned by the lost destination"),
            std::string::npos);

  // The exact same run with the mutation off completes clean — the finding
  // is the mutation's, not the scenario's.
  ClusterSim control{3, driver::Scheme::Ampom};
  InvariantAuditor control_auditor{control};
  control.set_reliability(driver::ReliabilityConfig::all_on());
  driver::FaultPlan control_plan;
  control_plan.crashes.push_back({/*node=*/2, /*at=*/Time::from_sec(1.2), /*restore_at=*/{}});
  control.set_fault_plan(control_plan);
  ProcessHost& control_host = control.spawn(crash_job(0));
  control.simulator().schedule_at(Time::from_sec(1.5),
                                  [&control_host] { control_host.migrate_to(2); });
  balancer::LoadBalancer control_balancer{control, failure_handler_config()};
  control_balancer.start();
  control.run();
  EXPECT_TRUE(control_host.finished());
  EXPECT_EQ(control_host.failed_migrations(), 1u);  // the abort still happened
  EXPECT_EQ(control_auditor.violations(), 0u);
}

// Regression for a fuzzer find (seed 8398): two nodes crash and later
// restore with their pre-crash heartbeat clocks intact. At the next
// balancer tick the restored pair outvotes the survivors, condemns the
// (perfectly alive) host of a running migrant, and the false recovery
// tears down the deputy mid-service. With fresh-boot detection semantics
// the restored nodes grant the full grace window instead, and nothing is
// reclaimed.
TEST(InvariantAuditor, RestoredNodesDoNotCondemnSurvivors) {
  ClusterSim world{4, driver::Scheme::Ampom};
  InvariantAuditor auditor{world};
  world.set_reliability(driver::ReliabilityConfig::all_on());
  world.enable_recovery_tracking();

  driver::FaultPlan plan;
  // Down long enough for the survivors to look (falsely) silent for the
  // whole dead threshold from the crashed nodes' stale point of view.
  plan.crashes.push_back(
      {/*node=*/1, /*at=*/Time::from_ms(1800), /*restore_at=*/Time::from_ms(4050)});
  plan.crashes.push_back(
      {/*node=*/2, /*at=*/Time::from_ms(1800), /*restore_at=*/Time::from_ms(4050)});
  world.set_fault_plan(plan);

  // A migrant running on node 3 well past the restore instant.
  ProcessHost& host = world.spawn(crash_job(0, /*touches=*/45000));
  world.simulator().schedule_at(Time::from_sec(1.3), [&host] { host.migrate_to(3); });
  balancer::LoadBalancer balancer{world, failure_handler_config()};
  balancer.start();
  world.run();

  EXPECT_TRUE(host.finished());
  EXPECT_EQ(host.current_node(), 3u);  // never falsely re-homed
  EXPECT_EQ(host.recoveries(), 0u);
  EXPECT_EQ(world.recovery_stats().rehomes, 0u);
  EXPECT_EQ(auditor.violations(), 0u);
}

// With throw_on_violation off the auditor records instead of aborting, so a
// whole campaign's violations can be collected in one pass.
TEST(InvariantAuditor, RecordingModeCollectsInsteadOfThrowing) {
  ClusterSim world{3, driver::Scheme::Ampom};
  AuditorConfig config;
  config.throw_on_violation = false;
  InvariantAuditor auditor{world, config};
  driver::ReliabilityConfig reliability = driver::ReliabilityConfig::all_on();
  reliability.migration.mutate_skip_abort_rollback = true;
  world.set_reliability(reliability);

  driver::FaultPlan plan;
  plan.crashes.push_back({/*node=*/2, /*at=*/Time::from_sec(1.2), /*restore_at=*/{}});
  world.set_fault_plan(plan);
  ProcessHost& host = world.spawn(crash_job(0));
  world.simulator().schedule_at(Time::from_sec(1.5), [&host] { host.migrate_to(2); });
  balancer::LoadBalancer balancer{world, failure_handler_config()};
  balancer.start();
  try {
    world.run();
  } catch (const std::exception&) {
    // The mutation's corruption is real: once the auditor declines to abort,
    // downstream structures (ledger, paging stacks) may still throw their
    // own errors. The auditor's record survives either way.
  }
  EXPECT_GE(auditor.violations(), 1u);
  EXPECT_NE(auditor.trail().find("VIOLATION"), std::string::npos);
}

}  // namespace
}  // namespace ampom::verify
