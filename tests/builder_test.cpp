// ScenarioBuilder: fluent construction and build()-time validation.

#include <gtest/gtest.h>

#include "driver/builder.hpp"
#include "driver/experiment.hpp"
#include "workload/hpcc.hpp"

namespace {

using namespace ampom;

driver::ScenarioBuilder minimal() {
  return driver::ScenarioBuilder{}.hpcc_workload(workload::HpccKernel::Stream, 9);
}

TEST(ScenarioBuilder, BuildsARunnableScenario) {
  const driver::Scenario s = minimal().scheme(driver::Scheme::Ampom).build();
  EXPECT_EQ(s.scheme, driver::Scheme::Ampom);
  EXPECT_EQ(s.memory_mib, 9u);
  EXPECT_EQ(s.workload_label, workload::hpcc_kernel_name(workload::HpccKernel::Stream));
  ASSERT_TRUE(static_cast<bool>(s.make_workload));

  const driver::RunMetrics m = driver::run_experiment(s);
  EXPECT_GT(m.total_time, sim::Time::zero());
  EXPECT_TRUE(m.ledger_ok);
}

TEST(ScenarioBuilder, MatchesHandRolledScenario) {
  // The builder is sugar, not semantics: same knobs, same simulation.
  driver::Scenario by_hand;
  by_hand.scheme = driver::Scheme::NoPrefetch;
  by_hand.memory_mib = 9;
  by_hand.workload_label = workload::hpcc_kernel_name(workload::HpccKernel::Stream);
  by_hand.make_workload = [] {
    return workload::make_hpcc_kernel(workload::HpccKernel::Stream, 9);
  };

  const driver::Scenario built = minimal().scheme(driver::Scheme::NoPrefetch).build();

  const driver::RunMetrics a = driver::run_experiment(by_hand);
  const driver::RunMetrics b = driver::run_experiment(built);
  EXPECT_EQ(a.total_time, b.total_time);
  EXPECT_EQ(a.freeze_time, b.freeze_time);
  EXPECT_EQ(a.hard_faults, b.hard_faults);
  EXPECT_EQ(a.pages_arrived, b.pages_arrived);
}

TEST(ScenarioBuilder, RejectsMissingWorkload) {
  driver::ScenarioBuilder empty;
  EXPECT_FALSE(empty.validate().empty());
  EXPECT_THROW((void)empty.build(), std::invalid_argument);
}

TEST(ScenarioBuilder, RejectsFaultsWithoutReliability) {
  driver::FaultPlan plan;
  plan.default_faults.drop_probability = 0.05;
  auto b = minimal().faults(plan);
  const std::string problem = b.validate();
  // The message must name both sides of the conflict.
  EXPECT_NE(problem.find("fault plan"), std::string::npos) << problem;
  EXPECT_NE(problem.find("reliability"), std::string::npos) << problem;
  EXPECT_THROW((void)b.build(), std::invalid_argument);

  // Turning reliability on resolves it.
  b.reliability(driver::ReliabilityConfig::all_on());
  EXPECT_TRUE(b.validate().empty());
}

TEST(ScenarioBuilder, InactiveFaultPlanNeedsNoReliability) {
  // A default (inactive) plan with a custom seed is not "faults on".
  driver::FaultPlan plan;
  plan.seed = 99;
  EXPECT_TRUE(minimal().faults(plan).validate().empty());
}

TEST(ScenarioBuilder, RejectsRemigrationWithBackgroundTraffic) {
  auto b = minimal()
               .remigrate_after(sim::Time::from_ms(100))
               .background_traffic(0.3);
  EXPECT_NE(b.validate().find("mutually exclusive"), std::string::npos);
  EXPECT_THROW((void)b.build(), std::invalid_argument);
}

TEST(ScenarioBuilder, RejectsRemigrationOfCheckpoint) {
  auto b = minimal()
               .scheme(driver::Scheme::Checkpoint)
               .remigrate_after(sim::Time::from_ms(100));
  EXPECT_FALSE(b.validate().empty());
  EXPECT_THROW((void)b.build(), std::invalid_argument);
}

TEST(ScenarioBuilder, RejectsOutOfRangeFractions) {
  EXPECT_THROW((void)minimal().background_traffic(1.5).build(), std::invalid_argument);
  EXPECT_THROW((void)minimal().background_traffic(-0.1).build(), std::invalid_argument);
  EXPECT_THROW((void)minimal().dest_background_load(1.0).build(), std::invalid_argument);
}

TEST(ScenarioBuilder, RejectsTracingWithZeroCap) {
  trace::TraceConfig cfg;
  cfg.enabled = true;
  cfg.max_events = 0;
  EXPECT_THROW((void)minimal().trace(cfg).build(), std::invalid_argument);
}

TEST(ScenarioBuilder, TracingTogglesTheDefaultConfig) {
  const driver::Scenario s = minimal().tracing().build();
  EXPECT_TRUE(s.trace.enabled);
  EXPECT_GT(s.trace.max_events, 0u);
  const driver::Scenario off = minimal().tracing(false).build();
  EXPECT_FALSE(off.trace.enabled);
}

TEST(ScenarioBuilder, ClusterTopologyMakesWorkloadOptional) {
  // A topology marks the scenario as a cluster world: jobs come from
  // spawn(), so the per-process workload factory is no longer required.
  const driver::Scenario s =
      driver::ScenarioBuilder{}.scheme(driver::Scheme::Ampom).topology(2, 4).build();
  EXPECT_TRUE(s.topology.set());
  EXPECT_EQ(s.topology.node_count(), 8u);
  EXPECT_EQ(s.topology.zone_of(5), 1u);
  EXPECT_FALSE(s.gossip.enabled);
}

TEST(ScenarioBuilder, RejectsDegenerateTopologyAndGossip) {
  EXPECT_THROW((void)driver::ScenarioBuilder{}.topology(0, 4).build(),
               std::invalid_argument);
  EXPECT_THROW((void)driver::ScenarioBuilder{}.topology(2, 0).build(),
               std::invalid_argument);
  // fan_out 0 would disseminate nothing and every peer would look dead.
  EXPECT_THROW((void)driver::ScenarioBuilder{}.topology(2, 4).gossip(0).build(),
               std::invalid_argument);
  // Gossip is a cluster-world dissemination mode: it needs a topology...
  EXPECT_THROW((void)minimal().gossip(2).build(), std::invalid_argument);
  // ...with someone to gossip with.
  EXPECT_THROW((void)driver::ScenarioBuilder{}.topology(1, 1).gossip(1).build(),
               std::invalid_argument);
}

TEST(ScenarioBuilder, RejectsZoneOutageBeyondTopology) {
  EXPECT_THROW((void)driver::ScenarioBuilder{}
                   .topology(2, 3)
                   .reliability(driver::ReliabilityConfig::all_on())
                   .zone_outage(/*zone=*/2u, sim::Time::from_sec(1))
                   .build(),
               std::invalid_argument);
  const driver::Scenario ok = driver::ScenarioBuilder{}
                                  .topology(2, 3)
                                  .reliability(driver::ReliabilityConfig::all_on())
                                  .zone_outage(/*zone=*/1u, sim::Time::from_sec(1))
                                  .build();
  EXPECT_EQ(ok.faults.chaos.zone_outages.size(), 1u);
  EXPECT_EQ(ok.faults.chaos.zone_outages[0].zone, 1);
}

TEST(ScenarioBuilder, BuilderIsReusable) {
  auto b = minimal();
  const driver::Scenario first = b.scheme(driver::Scheme::Ampom).build();
  const driver::Scenario second = b.scheme(driver::Scheme::OpenMosix).build();
  EXPECT_EQ(first.scheme, driver::Scheme::Ampom);
  EXPECT_EQ(second.scheme, driver::Scheme::OpenMosix);
}

}  // namespace
