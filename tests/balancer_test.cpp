// Tests of the multi-process cluster world and the load balancer.

#include <gtest/gtest.h>

#include <memory>

#include "balancer/cluster_sim.hpp"
#include "balancer/load_balancer.hpp"
#include "workload/synthetic.hpp"

namespace ampom::balancer {
namespace {

using sim::Time;

JobSpec sequential_job(net::NodeId home, std::uint64_t touches = 20000,
                       std::int64_t cpu_us = 100) {
  JobSpec job;
  job.home = home;
  job.label = "seq";
  job.make_workload = [touches, cpu_us] {
    return std::make_unique<workload::HotColdStream>(8 * sim::kMiB, /*hot_pages=*/256, touches,
                                                     /*cold_fraction=*/0.05,
                                                     Time::from_us(cpu_us));
  };
  return job;
}

TEST(ClusterSim, ValidatesConstruction) {
  EXPECT_THROW(ClusterSim(1, driver::Scheme::Ampom), std::invalid_argument);
}

TEST(ClusterSim, SpawnValidatesJobs) {
  ClusterSim world{2, driver::Scheme::Ampom};
  JobSpec bad;
  EXPECT_THROW(world.spawn(bad), std::invalid_argument);
  JobSpec out_of_range = sequential_job(0);
  out_of_range.home = 9;
  EXPECT_THROW(world.spawn(out_of_range), std::invalid_argument);
  EXPECT_THROW(world.run(), std::logic_error);  // nothing spawned
}

TEST(ClusterSim, SingleJobRunsToCompletion) {
  ClusterSim world{2, driver::Scheme::Ampom};
  ProcessHost& host = world.spawn(sequential_job(0));
  world.run();
  EXPECT_TRUE(host.finished());
  EXPECT_EQ(host.migrations(), 0u);
  EXPECT_GT(host.stats().refs_consumed, 0u);
}

TEST(ClusterSim, TwoJobsOnOneNodeTimeShare) {
  ClusterSim solo{2, driver::Scheme::Ampom};
  ProcessHost& alone = solo.spawn(sequential_job(0));
  solo.run();
  const double alone_sec = alone.finished_at().sec();

  ClusterSim crowd{2, driver::Scheme::Ampom};
  crowd.spawn(sequential_job(0));
  crowd.spawn(sequential_job(0));
  crowd.run();
  // Two CPU-bound processes sharing one node take roughly twice as long.
  EXPECT_GT(crowd.makespan().sec(), alone_sec * 1.6);
}

TEST(ClusterSim, ManualMigrationMovesTheProcess) {
  ClusterSim world{3, driver::Scheme::Ampom};
  ProcessHost& host = world.spawn(sequential_job(0, 60000));
  world.simulator().schedule_at(Time::from_sec(0.5), [&host] { host.migrate_to(2); });
  world.run();
  EXPECT_TRUE(host.finished());
  EXPECT_EQ(host.current_node(), 2u);
  EXPECT_EQ(host.migrations(), 1u);
  EXPECT_GT(host.freeze_total(), Time::zero());
  EXPECT_TRUE(host.ledger().at_most_one_transfer_each());
}

TEST(ClusterSim, TwoMigrantsPageConcurrentlyViaPidDemux) {
  ClusterSim world{3, driver::Scheme::Ampom};
  ProcessHost& a = world.spawn(sequential_job(0, 60000));
  ProcessHost& b = world.spawn(sequential_job(0, 60000));
  world.simulator().schedule_at(Time::from_sec(0.4), [&a] { a.migrate_to(1); });
  world.simulator().schedule_at(Time::from_sec(0.5), [&b] { b.migrate_to(2); });
  world.run();
  EXPECT_EQ(a.current_node(), 1u);
  EXPECT_EQ(b.current_node(), 2u);
  EXPECT_GT(a.stats().soft_faults + a.stats().hard_faults, 0u);
  EXPECT_GT(b.stats().soft_faults + b.stats().hard_faults, 0u);
}

TEST(ClusterSim, SecondHopUsesRemigration) {
  ClusterSim world{3, driver::Scheme::Ampom};
  ProcessHost& host = world.spawn(sequential_job(0, 120000));
  world.simulator().schedule_at(Time::from_sec(0.4), [&host] { host.migrate_to(1); });
  world.simulator().schedule_at(Time::from_sec(1.5), [&host] { host.migrate_to(2); });
  world.run();
  EXPECT_TRUE(host.finished());
  EXPECT_EQ(host.migrations(), 2u);
  EXPECT_EQ(host.current_node(), 2u);
}

TEST(ClusterSim, MigrationRequestsAreIdempotentWhileMigrating) {
  ClusterSim world{3, driver::Scheme::OpenMosix};
  ProcessHost& host = world.spawn(sequential_job(0, 120000));
  world.simulator().schedule_at(Time::from_sec(0.4), [&host] {
    host.migrate_to(1);
    host.migrate_to(2);  // ignored: migration already in flight
  });
  world.run();
  EXPECT_EQ(host.migrations(), 1u);
  EXPECT_EQ(host.current_node(), 1u);
}

TEST(LoadBalancerTest, ConfigValidation) {
  ClusterSim world{2, driver::Scheme::Ampom};
  LoadBalancer::Config cfg;
  cfg.imbalance_threshold = 0.0;
  EXPECT_THROW(LoadBalancer(world, cfg), std::invalid_argument);
}

TEST(LoadBalancerTest, SpreadsJobsAcrossIdleNodes) {
  ClusterSim world{4, driver::Scheme::Ampom};
  for (int i = 0; i < 4; ++i) {
    world.spawn(sequential_job(0, 60000));
  }
  LoadBalancer balancer{world, LoadBalancer::Config{}};
  balancer.start();
  world.run();
  EXPECT_GT(balancer.decisions(), 0u);
  // At least some jobs moved off the overloaded home node.
  std::uint64_t moved = 0;
  for (const auto& host : world.hosts()) {
    moved += host->migrations() > 0 ? 1u : 0u;
  }
  EXPECT_GE(moved, 2u);
}

TEST(LoadBalancerTest, BalancingImprovesMakespan) {
  auto build = [](bool balance) {
    auto world = std::make_unique<ClusterSim>(4, driver::Scheme::Ampom);
    for (int i = 0; i < 6; ++i) {
      world->spawn(sequential_job(0, 40000));
    }
    std::unique_ptr<LoadBalancer> balancer;
    if (balance) {
      balancer = std::make_unique<LoadBalancer>(*world, LoadBalancer::Config{});
      balancer->start();
    }
    world->run();
    return world->makespan().sec();
  };
  const double unbalanced = build(false);
  const double balanced = build(true);
  EXPECT_LT(balanced, unbalanced * 0.7);
}

TEST(LoadBalancerTest, FreezeCostGatesDecisions) {
  // With an assumed multi-second freeze, small imbalances are not worth it.
  ClusterSim world{3, driver::Scheme::OpenMosix};
  world.spawn(sequential_job(0, 20000));
  world.spawn(sequential_job(0, 20000));
  LoadBalancer::Config cfg;
  cfg.assumed_freeze_seconds = 1e9;  // prohibitive
  LoadBalancer balancer{world, cfg};
  balancer.start();
  world.run();
  EXPECT_EQ(balancer.decisions(), 0u);
  EXPECT_GT(balancer.ticks(), 0u);
}

}  // namespace
}  // namespace ampom::balancer
