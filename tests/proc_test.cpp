// Unit tests for the process substrate: the executor's burst/fault
// semantics, freeze safe-points, CPU scaling, syscalls and LRU eviction,
// plus Process bookkeeping.

#include <gtest/gtest.h>

#include <memory>

#include "proc/executor.hpp"
#include "proc/process.hpp"
#include "simcore/simulator.hpp"

namespace ampom::proc {
namespace {

using sim::Time;

std::unique_ptr<TraceStream> trace(std::vector<Ref> refs, sim::Bytes memory = 4 * sim::kMiB) {
  return std::make_unique<TraceStream>(std::move(refs), memory);
}

Ref touch(mem::PageId page, std::int64_t cpu_us = 10) {
  return Ref{page, Time::from_us(cpu_us), Ref::Kind::Memory};
}

// A policy that resolves every hard fault locally after a fixed delay,
// standing in for the network path.
class InstantPolicy final : public FaultPolicy {
 public:
  InstantPolicy(sim::Simulator& simulator, Executor& executor, Time delay)
      : sim_{simulator}, executor_{executor}, delay_{delay} {}

  void on_fault(Process& process, mem::PageId page, mem::AccessKind kind) override {
    ++faults;
    last_kind = kind;
    sim_.schedule_after(delay_, [this, &process, page] {
      auto& aspace = process.aspace();
      aspace.mark_in_flight(page);
      aspace.mark_arrived(page);
      aspace.map_arrived_page(page);
      executor_.complete_fault(page);
    });
  }

  int faults{0};
  mem::AccessKind last_kind{};

 private:
  sim::Simulator& sim_;
  Executor& executor_;
  Time delay_;
};

struct ExecutorFixture : ::testing::Test {
  sim::Simulator simulator;
  NodeCosts costs;
};

TEST_F(ExecutorFixture, ProcessRequiresStream) {
  EXPECT_THROW(Process(1, nullptr, 0), std::invalid_argument);
}

TEST_F(ExecutorFixture, ConsumesLocalRefsAccumulatingCpu) {
  Process process{1, trace({touch(300, 10), touch(301, 20), touch(302, 30)}), 0};
  process.aspace().populate_all_dirty();
  Executor executor{simulator, process, costs};
  executor.start();
  simulator.run();
  EXPECT_TRUE(executor.stats().finished);
  EXPECT_EQ(executor.stats().refs_consumed, 3u);
  EXPECT_EQ(executor.stats().hits, 3u);
  EXPECT_EQ(executor.stats().cpu_time, Time::from_us(60));
  EXPECT_EQ(executor.stats().finished_at, Time::from_us(60));
  EXPECT_EQ(process.state(), ProcState::Finished);
}

TEST_F(ExecutorFixture, FirstTouchCreatesPagesWithMinorFaultCost) {
  Process process{1, trace({touch(300, 10), touch(301, 10)}), 0};
  Executor executor{simulator, process, costs};
  executor.start();
  simulator.run();
  EXPECT_EQ(executor.stats().first_touches, 2u);
  EXPECT_EQ(process.aspace().local_pages(), 2u);
  EXPECT_TRUE(process.aspace().dirty(300));
  // finished_at = cpu + 2 minor faults
  EXPECT_EQ(executor.stats().finished_at, Time::from_us(20) + costs.minor_fault * 2);
}

TEST_F(ExecutorFixture, HardFaultInvokesPolicyAndBlocks) {
  Process process{1, trace({touch(300, 10), touch(301, 10)}), 0};
  process.aspace().populate_all_dirty();
  process.aspace().demote_to_remote(301);
  Executor executor{simulator, process, costs};
  InstantPolicy policy{simulator, executor, Time::from_ms(1)};
  executor.set_policy(&policy);
  executor.start();
  simulator.run();
  EXPECT_EQ(policy.faults, 1);
  EXPECT_EQ(policy.last_kind, mem::AccessKind::HardFault);
  EXPECT_EQ(executor.stats().hard_faults, 1u);
  EXPECT_TRUE(executor.stats().finished);
  EXPECT_GE(executor.stats().stall_time, Time::from_ms(1));
}

TEST_F(ExecutorFixture, FaultWithoutPolicyThrows) {
  Process process{1, trace({touch(300, 10)}), 0};
  process.aspace().populate_all_dirty();
  process.aspace().demote_to_remote(300);
  Executor executor{simulator, process, costs};
  executor.start();
  EXPECT_THROW(simulator.run(), std::logic_error);
}

TEST_F(ExecutorFixture, StartTwiceThrows) {
  Process process{1, trace({touch(300)}), 0};
  Executor executor{simulator, process, costs};
  executor.start();
  EXPECT_THROW(executor.start(), std::logic_error);
}

TEST_F(ExecutorFixture, CpuSpeedScalesRuntime) {
  Process process{1, trace({touch(300, 100)}), 0};
  process.aspace().populate_all_dirty();
  NodeCosts fast = costs;
  fast.cpu_speed = 2.0;
  Executor executor{simulator, process, fast};
  executor.start();
  simulator.run();
  EXPECT_EQ(executor.stats().finished_at, Time::from_us(50));
}

TEST_F(ExecutorFixture, CpuShareScalesRuntime) {
  Process process{1, trace({touch(300, 100)}), 0};
  process.aspace().populate_all_dirty();
  Executor executor{simulator, process, costs};
  executor.set_cpu_share_source([] { return 0.5; });
  executor.start();
  simulator.run();
  EXPECT_EQ(executor.stats().finished_at, Time::from_us(200));
}

TEST_F(ExecutorFixture, FreezeAtBurstBoundaryThenResume) {
  std::vector<Ref> refs;
  for (int i = 0; i < 2000; ++i) {
    refs.push_back(touch(300 + static_cast<mem::PageId>(i % 8), 50));
  }
  Process process{1, trace(std::move(refs)), 0};
  process.aspace().populate_all_dirty();
  Executor executor{simulator, process, costs};
  executor.set_max_burst(Time::from_ms(10));
  executor.start();

  bool frozen = false;
  simulator.schedule_at(Time::from_ms(25), [&] {
    executor.request_freeze([&] { frozen = true; });
  });
  simulator.run_until(Time::from_ms(200));
  EXPECT_TRUE(frozen);
  EXPECT_EQ(process.state(), ProcState::Frozen);
  const auto consumed = executor.stats().refs_consumed;
  EXPECT_GT(consumed, 0u);
  EXPECT_LT(consumed, 2000u);

  process.set_current_node(1);
  executor.resume_migrated(costs);
  simulator.run();
  EXPECT_TRUE(executor.stats().finished);
  EXPECT_EQ(executor.stats().refs_consumed, 2000u);
  // No reference was double-counted across the freeze.
  EXPECT_EQ(executor.stats().cpu_time, Time::from_us(50) * 2000);
}

TEST_F(ExecutorFixture, DoubleFreezeRequestThrows) {
  Process process{1, trace({touch(300, 1000)}), 0};
  process.aspace().populate_all_dirty();
  Executor executor{simulator, process, costs};
  executor.start();
  executor.request_freeze([] {});
  EXPECT_THROW(executor.request_freeze([] {}), std::logic_error);
}

TEST_F(ExecutorFixture, FreezeRequestAfterFinishIsRejected) {
  Process process{1, trace({touch(300, 1)}), 0};
  process.aspace().populate_all_dirty();
  Executor executor{simulator, process, costs};
  executor.start();
  simulator.run();
  EXPECT_THROW(executor.request_freeze([] {}), std::logic_error);
}

TEST_F(ExecutorFixture, FreezeRequestDroppedIfProcessFinishesFirst) {
  Process process{1, trace({touch(300, 1)}), 0};
  process.aspace().populate_all_dirty();
  Executor executor{simulator, process, costs};
  executor.start();
  bool frozen = false;
  executor.request_freeze([&] { frozen = true; });  // before the first burst
  // The freeze request lands before the burst, so it is honored first.
  simulator.run();
  EXPECT_TRUE(frozen);
  executor.resume_migrated(costs);
  simulator.run();
  EXPECT_TRUE(executor.stats().finished);
}

TEST_F(ExecutorFixture, ResumeWithoutFreezeThrows) {
  Process process{1, trace({touch(300, 1)}), 0};
  Executor executor{simulator, process, costs};
  EXPECT_THROW(executor.resume_migrated(costs), std::logic_error);
}

TEST_F(ExecutorFixture, LocalSyscallCostsServiceTime) {
  Process process{1,
                  trace({touch(300, 10),
                         Ref{mem::kInvalidPage, Time::from_us(5), Ref::Kind::Syscall}}),
                  0};
  process.aspace().populate_all_dirty();
  Executor executor{simulator, process, costs};
  executor.start();
  simulator.run();
  EXPECT_EQ(executor.stats().syscalls_local, 1u);
  EXPECT_EQ(executor.stats().finished_at,
            Time::from_us(15) + costs.syscall_service);
}

TEST_F(ExecutorFixture, RedirectedSyscallBlocksUntilReply) {
  Process process{1,
                  trace({Ref{mem::kInvalidPage, Time::from_us(5), Ref::Kind::Syscall}}),
                  0};
  process.aspace().populate_all_dirty();
  process.set_current_node(1);  // migrated
  Executor executor{simulator, process, costs};
  std::uint64_t seen_seq = 0;
  executor.set_syscall_transport([&](std::uint64_t seq) {
    seen_seq = seq;
    simulator.schedule_after(Time::from_ms(2), [&executor, seq] {
      executor.complete_syscall(seq);
    });
  });
  executor.start();
  simulator.run();
  EXPECT_EQ(seen_seq, 1u);
  EXPECT_EQ(executor.stats().syscalls_redirected, 1u);
  EXPECT_GE(executor.stats().finished_at, Time::from_ms(2));
}

TEST_F(ExecutorFixture, WrongSyscallSequenceThrows) {
  Process process{1,
                  trace({Ref{mem::kInvalidPage, Time::from_us(5), Ref::Kind::Syscall}}),
                  0};
  process.aspace().populate_all_dirty();
  process.set_current_node(1);
  Executor executor{simulator, process, costs};
  executor.set_syscall_transport([&](std::uint64_t) {
    EXPECT_THROW(executor.complete_syscall(99), std::logic_error);
    executor.complete_syscall(1);
  });
  executor.start();
  simulator.run();
  EXPECT_TRUE(executor.stats().finished);
}

TEST_F(ExecutorFixture, RamLimitEvictsLru) {
  // Touch 6 distinct pages with a limit of 4: the 2 oldest get evicted.
  Process process{1,
                  trace({touch(300), touch(301), touch(302), touch(303), touch(304),
                         touch(305), touch(300)}),  // re-touch 300: swap fault
                  0};
  Executor executor{simulator, process, costs};
  executor.set_ram_limit_pages(4);
  executor.start();
  simulator.run();
  EXPECT_GE(executor.stats().evictions, 2u);
  EXPECT_EQ(executor.stats().swap_faults, 1u);
  EXPECT_TRUE(executor.stats().finished);
}

TEST_F(ExecutorFixture, RecentCpuFractionReflectsStalls) {
  // 100 us compute then a 900 us fault stall: at the next fault the C_i
  // snapshot covers the full interval -> approximately 0.1.
  Process process{1, trace({touch(300, 100), touch(301, 100), touch(302, 100)}), 0};
  process.aspace().populate_all_dirty();
  process.aspace().demote_to_remote(301);
  process.aspace().demote_to_remote(302);
  Executor executor{simulator, process, costs};
  InstantPolicy policy{simulator, executor, Time::from_us(900)};
  executor.set_policy(&policy);
  executor.start();
  simulator.run();
  // After the second fault's handling, the snapshot covers fault-1 stall.
  const double c = executor.recent_cpu_fraction();
  EXPECT_GT(c, 0.05);
  EXPECT_LT(c, 0.35);
}

TEST(ProcessTest, CurrentPagesTracksRegions) {
  auto stream = std::make_unique<TraceStream>(std::vector<Ref>{}, 4 * sim::kMiB);
  Process process{7, std::move(stream), 0};
  const auto& layout = process.aspace().layout();
  // Untouched: falls back to region starts.
  auto pages = process.current_pages();
  EXPECT_EQ(pages[0], layout.begin(mem::Region::Code));
  EXPECT_EQ(pages[2], layout.begin(mem::Region::Stack));

  process.note_touch(layout.begin(mem::Region::Code) + 3);
  process.note_touch(layout.begin(mem::Region::Heap) + 17);
  process.note_touch(layout.begin(mem::Region::Stack) + 2);
  pages = process.current_pages();
  EXPECT_EQ(pages[0], layout.begin(mem::Region::Code) + 3);
  EXPECT_EQ(pages[1], layout.begin(mem::Region::Heap) + 17);
  EXPECT_EQ(pages[2], layout.begin(mem::Region::Stack) + 2);
}

TEST(ProcessTest, MigratedFlagFollowsCurrentNode) {
  auto stream = std::make_unique<TraceStream>(std::vector<Ref>{}, sim::kMiB);
  Process process{7, std::move(stream), 3};
  EXPECT_EQ(process.home_node(), 3u);
  EXPECT_FALSE(process.migrated());
  process.set_current_node(5);
  EXPECT_TRUE(process.migrated());
}

}  // namespace
}  // namespace ampom::proc
