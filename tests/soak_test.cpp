// Cancel-heavy soak of the event engine, shaped like the reliable-paging
// protocol's hottest pattern: every page arrival cancels and re-arms a
// silence timer whose timeout is orders of magnitude longer than the
// inter-page gap. The retired lazy-delete engine stranded one dead heap
// entry (plus its closure) per arrival until the timer's deadline bubbled
// out — O(timeout / page-gap) garbage per in-flight request. The indexed
// heap must keep storage exactly at the live-event count for over a million
// arrivals, and the parallel chaos sweep that drives this pattern through
// the full stack must stay bit-identical across worker counts.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <vector>

#include "driver/builder.hpp"
#include "driver/sweep_executor.hpp"
#include "simcore/simulator.hpp"
#include "trace/chrome_export.hpp"
#include "workload/hpcc.hpp"

namespace {

using namespace ampom;
using sim::Time;

// One in-flight "request": a chained page-arrival stream re-arming its
// silence timer on every arrival, exactly as proc::PagingClient does.
struct RequestChurn {
  sim::Simulator& sim;
  int remaining;
  Time gap;
  Time timeout;
  sim::Simulator::EventId timer{};
  std::uint64_t rearms{0};
  std::uint64_t timer_fires{0};

  void start() {
    sim.schedule_after(gap, [this] { on_page_arrival(); });
  }

  void on_page_arrival() {
    if (timer.valid()) {
      ASSERT_TRUE(sim.cancel(timer));  // the timer must still be pending
    }
    timer = sim.schedule_after(timeout, [this] { ++timer_fires; });
    ++rearms;
    if (--remaining > 0) {
      sim.schedule_after(gap, [this] { on_page_arrival(); });
    }
  }
};

TEST(Soak, SilenceTimerChurnKeepsQueuedEntriesAtLiveCount) {
  sim::Simulator simulator;
  // 32 concurrent requests, >1e6 page arrivals combined, 1 us page gap vs
  // 10 ms silence timeout: the lazy-delete engine would strand ~10,000 dead
  // entries per request at steady state.
  constexpr int kRequests = 32;
  constexpr int kArrivalsPerRequest = 32'768;  // 32 * 32768 = 1,048,576 total
  std::vector<RequestChurn> requests;
  requests.reserve(kRequests);
  for (int r = 0; r < kRequests; ++r) {
    requests.push_back(RequestChurn{simulator, kArrivalsPerRequest,
                                    Time::from_ns(1000 + r), Time::from_ms(10)});
    requests.back().start();
  }

  std::size_t max_queued = 0;
  std::size_t checks = 0;
  simulator.start_probe(Time::from_us(100), [&](Time, std::size_t, std::uint64_t) {
    max_queued = std::max(max_queued, simulator.queued_entries());
    ASSERT_EQ(simulator.queued_entries(), simulator.pending());
    ++checks;
  });
  simulator.run();

  std::uint64_t total_rearms = 0;
  for (const RequestChurn& r : requests) {
    EXPECT_EQ(r.rearms, static_cast<std::uint64_t>(kArrivalsPerRequest));
    EXPECT_EQ(r.timer_fires, 1u);  // only the final arming ever fires
    total_rearms += r.rearms;
  }
  EXPECT_GE(total_rearms, 1'000'000u);
  EXPECT_GT(checks, 100u);
  // Live events: one arrival + one timer per request, plus the probe.
  // Queued storage must track that, not the million-cancel history.
  EXPECT_LE(max_queued, static_cast<std::size_t>(2 * kRequests + 1));
  EXPECT_LE(simulator.slot_high_water(), static_cast<std::size_t>(2 * kRequests + 2));
  EXPECT_EQ(simulator.queued_entries(), 0u);
}

std::string export_json(const trace::TraceRecorder& recorder) {
  std::ostringstream out;
  trace::write_chrome_trace(recorder, out);
  return out.str();
}

// The full-stack flavor of the same pattern: lossy links force the reliable
// paging protocol through retransmits and per-page timer churn. The sweep
// must come back bit-identical (metrics and trace) no matter how many
// workers ran it — pinned here on top of the engine swap because this is
// the configuration most sensitive to event-order drift.
TEST(Soak, ReliablePagingChurnSweepIsBitIdenticalAcrossJobs) {
  std::vector<driver::SweepExecutor::ScenarioFactory> cases;
  for (const double drop : {0.01, 0.05, 0.10}) {
    cases.push_back([drop] {
      driver::FaultPlan plan;
      plan.seed = 29;
      plan.default_faults.drop_probability = drop;
      return driver::ScenarioBuilder{}
          .scheme(driver::Scheme::Ampom)
          .hpcc_workload(workload::HpccKernel::Stream, 9)
          .faults(plan)
          .reliability(driver::ReliabilityConfig::all_on())
          .tracing()
          .build();
    });
  }
  driver::SweepExecutor serial{{.exec = {.jobs = 1}}};
  driver::SweepExecutor parallel{{.exec = {.jobs = 4}}};
  const auto a = serial.run_all(cases);
  const auto b = parallel.run_all(cases);
  ASSERT_EQ(a.size(), cases.size());
  ASSERT_EQ(b.size(), cases.size());
  for (std::size_t i = 0; i < cases.size(); ++i) {
    ASSERT_TRUE(a[i].ok()) << "serial case " << i;
    ASSERT_TRUE(b[i].ok()) << "parallel case " << i;
    EXPECT_EQ(a[i].metrics, b[i].metrics) << "case " << i;
    ASSERT_NE(a[i].context, nullptr);
    ASSERT_NE(b[i].context, nullptr);
    EXPECT_EQ(export_json(a[i].context->trace()), export_json(b[i].context->trace()))
        << "case " << i;
  }
}

}  // namespace
