// Tests of the pre-copy (V System) engine: convergence, re-dirty traffic,
// abort-on-finish, and its place among the other mechanisms.

#include <gtest/gtest.h>

#include <memory>

#include "driver/experiment.hpp"
#include "migration/precopy.hpp"
#include "workload/hpcc.hpp"
#include "workload/synthetic.hpp"

namespace ampom::driver {
namespace {

using sim::Time;

Scenario hot_cold_scenario(Scheme scheme) {
  Scenario s;
  s.scheme = scheme;
  s.memory_mib = 33;
  s.workload_label = "hotcold";
  s.make_workload = [] {
    return std::make_unique<workload::HotColdStream>(33 * sim::kMiB, /*hot_pages=*/512,
                                                     /*touches=*/300000, /*cold_fraction=*/0.01,
                                                     Time::from_us(50));
  };
  return s;
}

TEST(PreCopy, ConfigValidation) {
  migration::PreCopyEngine::Config cfg;
  cfg.chunk_pages = 0;
  EXPECT_THROW(migration::PreCopyEngine{cfg}, std::invalid_argument);
  cfg = {};
  cfg.max_rounds = 0;
  EXPECT_THROW(migration::PreCopyEngine{cfg}, std::invalid_argument);
  cfg = {};
  cfg.stop_fraction = 1.0;
  EXPECT_THROW(migration::PreCopyEngine{cfg}, std::invalid_argument);
}

TEST(PreCopy, HotColdProcessConvergesWithShortFreeze) {
  const RunMetrics m = run_experiment(hot_cold_scenario(Scheme::PreCopy));
  EXPECT_TRUE(m.ledger_ok);
  EXPECT_EQ(m.pages_migrated, m.page_count);  // everything ends up at the dest
  // The freeze only carries the residue of the hot set, far below a full
  // stop-and-copy.
  const RunMetrics om = run_experiment(hot_cold_scenario(Scheme::OpenMosix));
  EXPECT_LT(m.freeze_time, om.freeze_time / 4);
  // ...but the copied-while-dirty pages were resent.
  EXPECT_GT(m.pages_resent, 0u);
  EXPECT_EQ(m.hard_faults, 0u);  // nothing left remote after resume
}

TEST(PreCopy, MigrationSpanExceedsFreeze) {
  const RunMetrics m = run_experiment(hot_cold_scenario(Scheme::PreCopy));
  EXPECT_GT(m.migration_span, m.freeze_time * 3);
}

TEST(PreCopy, WriteHeavyProcessResendsHeavily) {
  // A long-lived process rewriting its whole address space every pass:
  // every pre-copy round re-dirties everything, rounds exhaust, and the
  // engine ships large parts of memory repeatedly (§6's criticism).
  Scenario s;
  s.scheme = Scheme::PreCopy;
  s.memory_mib = 33;
  s.workload_label = "rewriter";
  s.make_workload = [] {
    return std::make_unique<workload::SequentialStream>(33 * sim::kMiB, /*passes=*/60,
                                                        Time::from_us(50));
  };
  const RunMetrics m = run_experiment(s);
  ASSERT_GT(m.pages_migrated, 0u);  // the migration completed
  EXPECT_GT(m.pages_resent, m.page_count);  // several full re-copies
  EXPECT_GT(m.freeze_time, Time::from_ms(500));  // the residue stayed large
  EXPECT_TRUE(m.ledger_ok);
}

TEST(PreCopy, ShortLivedProcessOutrunsTheMigration) {
  // A process that finishes before round 1 completes: the migration aborts,
  // the run still finishes cleanly at the home node.
  Scenario s;
  s.scheme = Scheme::PreCopy;
  s.memory_mib = 33;
  s.workload_label = "short";
  s.make_workload = [] {
    return std::make_unique<workload::SequentialStream>(33 * sim::kMiB, 1, Time::from_us(2));
  };
  const RunMetrics m = run_experiment(s);
  EXPECT_EQ(m.pages_migrated, 0u);
  EXPECT_EQ(m.freeze_time, Time::zero());
  EXPECT_GT(m.refs_consumed, 0u);
}

TEST(PreCopy, FreezeShorterThanOpenMosixButMoreBytes) {
  const RunMetrics pc = run_experiment(hot_cold_scenario(Scheme::PreCopy));
  const RunMetrics om = run_experiment(hot_cold_scenario(Scheme::OpenMosix));
  EXPECT_LT(pc.freeze_time, om.freeze_time);
  EXPECT_GT(pc.bytes_freeze, om.bytes_freeze);  // the §6 trade-off
}

TEST(Checkpoint, FreezeIsWorstOfAllMechanisms) {
  // §1: checkpointing pays the image transfer twice (through the file
  // server) plus disk, making migration — even full-copy — look fast.
  const RunMetrics cp = run_experiment(hot_cold_scenario(Scheme::Checkpoint));
  const RunMetrics om = run_experiment(hot_cold_scenario(Scheme::OpenMosix));
  EXPECT_GT(cp.freeze_time, om.freeze_time.scaled(1.5));
  EXPECT_EQ(cp.pages_migrated, cp.page_count);
  EXPECT_EQ(cp.pages_resent, cp.page_count);  // image crossed the wire twice
  EXPECT_TRUE(cp.ledger_ok);
  EXPECT_EQ(cp.hard_faults, 0u);  // full image at the destination
}

TEST(Checkpoint, IncompatibleWithRemigration) {
  Scenario s = hot_cold_scenario(Scheme::Checkpoint);
  s.remigrate_after = sim::Time::from_sec(1.0);
  EXPECT_THROW(run_experiment(s), std::invalid_argument);
}

}  // namespace
}  // namespace ampom::driver
