// Tests of the §7 extension: partitioned lookback windows for migrants
// whose reference stream interleaves several independent sequential
// streams (the virtual-machine scenario the paper sketches as future work).

#include <gtest/gtest.h>

#include "driver/experiment.hpp"
#include "workload/synthetic.hpp"

namespace ampom::driver {
namespace {

using sim::Time;

// `cursors` interleaved sequential walks, far enough apart that each lands
// in its own address-space partition.
Scenario interleaved_scenario(std::uint64_t cursors, std::size_t partitions) {
  Scenario s;
  s.scheme = Scheme::Ampom;
  s.memory_mib = 16;
  s.workload_label = "interleaved";
  s.make_workload = [cursors] {
    return std::make_unique<workload::InterleavedStream>(16 * sim::kMiB, cursors,
                                                         Time::from_us(15));
  };
  s.ampom.window_partitions = partitions;
  return s;
}

TEST(MultiStream, ZeroPartitionsRejected) {
  Scenario s = interleaved_scenario(2, 0);
  EXPECT_THROW(run_experiment(s), std::invalid_argument);
}

TEST(MultiStream, SinglePartitionHandlesFewStreams) {
  // 3 interleaved cursors produce stride-3 patterns: within dmax = 4, the
  // single-window paper algorithm already prefetches well.
  const RunMetrics m = run_experiment(interleaved_scenario(3, 1));
  EXPECT_GT(m.prevented_fault_fraction(), 0.9);
}

TEST(MultiStream, ManyStreamsDefeatTheSingleWindow) {
  // 8 interleaved cursors -> stride-8 patterns, invisible at dmax = 4. The
  // single window falls back to the read-ahead floor.
  const RunMetrics single = run_experiment(interleaved_scenario(8, 1));
  const RunMetrics split = run_experiment(interleaved_scenario(8, 8));
  EXPECT_GT(split.prevented_fault_fraction(), single.prevented_fault_fraction());
  EXPECT_LT(split.remote_fault_requests, single.remote_fault_requests);
  EXPECT_LE(split.total_time, single.total_time);
}

TEST(MultiStream, PartitioningIsHarmlessOnSequentialWorkloads) {
  Scenario seq;
  seq.scheme = Scheme::Ampom;
  seq.memory_mib = 16;
  seq.workload_label = "sequential";
  seq.make_workload = [] {
    return std::make_unique<workload::SequentialStream>(16 * sim::kMiB, 2, Time::from_us(15));
  };
  const RunMetrics one = run_experiment(seq);
  seq.ampom.window_partitions = 4;
  const RunMetrics four = run_experiment(seq);
  // A single sequential stream crosses partition boundaries only 3 times;
  // both configurations prevent nearly everything.
  EXPECT_GT(one.prevented_fault_fraction(), 0.95);
  EXPECT_GT(four.prevented_fault_fraction(), 0.95);
}

TEST(MultiStream, LedgerIntactUnderPartitioning) {
  const RunMetrics m = run_experiment(interleaved_scenario(6, 6));
  EXPECT_TRUE(m.ledger_ok);
  EXPECT_LE(m.pages_arrived + m.pages_migrated, m.page_count);
}

}  // namespace
}  // namespace ampom::driver
