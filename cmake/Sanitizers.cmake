# Sanitizer presets: configure with -DAMPOM_SANITIZE=<list>, where <list> is
# a comma- or semicolon-separated subset of {address, undefined, leak,
# thread}. address/undefined/leak compose; thread excludes the others.
#
#   cmake -B build-asan -S . -DAMPOM_SANITIZE=address,undefined
#   cmake -B build-tsan -S . -DAMPOM_SANITIZE=thread
#
# Flags are applied globally (compile + link) so every target — libraries,
# tests, benches, tools — runs instrumented; UBSan is configured
# no-recover so ctest fails on the first report.

if(NOT AMPOM_SANITIZE)
  return()
endif()

string(REPLACE "," ";" _ampom_san_requested "${AMPOM_SANITIZE}")
set(_ampom_san_list "")
foreach(_san IN LISTS _ampom_san_requested)
  string(TOLOWER "${_san}" _san)
  string(STRIP "${_san}" _san)
  if(NOT _san MATCHES "^(address|undefined|leak|thread)$")
    message(FATAL_ERROR
      "AMPOM_SANITIZE: unknown sanitizer '${_san}' "
      "(expected address, undefined, leak, or thread)")
  endif()
  list(APPEND _ampom_san_list "${_san}")
endforeach()
list(REMOVE_DUPLICATES _ampom_san_list)

if("thread" IN_LIST _ampom_san_list AND NOT _ampom_san_list STREQUAL "thread")
  message(FATAL_ERROR
    "AMPOM_SANITIZE: 'thread' cannot be combined with address/leak/undefined")
endif()

list(JOIN _ampom_san_list "," _ampom_san_joined)
set(_ampom_san_flags -fsanitize=${_ampom_san_joined} -fno-omit-frame-pointer -g)
if("undefined" IN_LIST _ampom_san_list)
  list(APPEND _ampom_san_flags -fno-sanitize-recover=all)
endif()

message(STATUS "AMPoM sanitizers enabled: ${_ampom_san_joined}")
add_compile_options(${_ampom_san_flags})
add_link_options(${_ampom_san_flags})
