// The paper's §5.6/§7 motivation case: a large interactive application —
// big address space, small hot working set, frequent system calls — being
// migrated off a workstation. openMosix ships all of its (mostly cold)
// memory during the freeze; AMPoM ships three pages plus the page table and
// then fetches only what the session actually touches.
//
// Also demonstrates the home-dependency knob: with openMosix-style syscall
// redirection every I/O call round-trips to the home node; the Zap-style
// variant (paper §7) executes them locally after migration.

#include <iostream>
#include <memory>

#include "driver/builder.hpp"
#include "driver/experiment.hpp"
#include "stats/table.hpp"
#include "workload/synthetic.hpp"

int main() {
  using namespace ampom;
  using sim::Time;

  // 256 MB allocated; the session loop touches a ~6 MB hot set with rare
  // cold excursions and issues a syscall burst per interaction.
  static constexpr sim::Bytes kMemory = 256 * sim::kMiB;
  auto make_session = [] {
    return std::make_unique<workload::HotColdStream>(
        kMemory, /*hot_pages=*/1536, /*touches=*/120000, /*cold_fraction=*/0.02,
        Time::from_us(40));
  };

  stats::Table table{"Interactive app (256 MB allocated, ~6 MB hot set): migration cost",
                     {"scheme", "freeze", "total (s)", "pages moved", "MB moved"}};
  for (const auto scheme :
       {driver::Scheme::OpenMosix, driver::Scheme::NoPrefetch, driver::Scheme::Ampom}) {
    const driver::Scenario s = driver::ScenarioBuilder{}
                                   .scheme(scheme)
                                   .workload("interactive", make_session, kMemory / sim::kMiB)
                                   .build();
    const auto m = driver::run_experiment(s);
    const std::uint64_t moved = m.pages_migrated + m.pages_arrived;
    table.add_row({m.scheme, m.freeze_time.str(), stats::Table::num(m.total_time.sec(), 2),
                   stats::Table::integer(moved),
                   stats::Table::integer(moved * mem::kPageBytes / sim::kMiB)});
  }
  table.print(std::cout);
  std::cout << "AMPoM moves only the hot set; openMosix ships all 256 MB for a\n"
               "session that will never touch most of it (paper section 5.6).\n\n";

  // Home dependency: the same session with syscall bursts.
  // Compute-bound bursts so the syscall round trips are not hidden under
  // the page-fetch stream.
  auto make_syscall_session = [] {
    return std::make_unique<workload::InteractiveStream>(kMemory, /*bursts=*/400,
                                                         /*pages_per_burst=*/10,
                                                         /*syscalls_per_burst=*/6,
                                                         Time::from_us(300));
  };
  stats::Table home{"Syscall-heavy session: home dependency (openMosix) vs local (Zap-style)",
                    {"syscall handling", "total (s)", "redirected calls"}};
  for (const bool home_dep : {true, false}) {
    const driver::Scenario s =
        driver::ScenarioBuilder{}
            .scheme(driver::Scheme::Ampom)
            .workload("interactive-syscalls", make_syscall_session, kMemory / sim::kMiB)
            .home_dependency(home_dep)
            .build();
    const auto m = driver::run_experiment(s);
    home.add_row({home_dep ? "redirected to home" : "executed locally",
                  stats::Table::num(m.total_time.sec(), 2),
                  stats::Table::integer(m.syscalls_redirected)});
  }
  home.print(std::cout);
  std::cout << "Removing the home dependency (the paper's section-7 future work)\n"
               "eliminates one WAN round trip per system call.\n";
  return 0;
}
