// The system-level view: an eight-node openMosix-style cluster where a
// burst of jobs lands on one node and the load balancer spreads them out
// through live process migrations (paper §7's "new scheduling policies"
// direction). The world shape comes from a builder-validated Scenario:
// two zones of four nodes whose daemons disseminate load by epidemic
// gossip (fan-out 2) instead of the all-pairs ping mesh, and a
// zone-sharded balancer that moves jobs across zones only when the hot
// zone cannot balance internally.

#include <iostream>
#include <memory>

#include "balancer/cluster_sim.hpp"
#include "balancer/load_balancer.hpp"
#include "driver/builder.hpp"
#include "stats/table.hpp"
#include "workload/synthetic.hpp"

int main() {
  using namespace ampom;

  const driver::Scenario scenario = driver::ScenarioBuilder{}
                                        .scheme(driver::Scheme::Ampom)
                                        .topology(/*zones=*/2, /*nodes_per_zone=*/4)
                                        .gossip(/*fan_out=*/2)
                                        .build();
  balancer::ClusterSim world{scenario};

  // Ten jobs, all submitted to node 0 within half a second.
  for (int i = 0; i < 10; ++i) {
    balancer::JobSpec job;
    job.home = 0;
    job.label = "job-" + std::to_string(i);
    job.start = sim::Time::from_ms(50 * i);
    job.make_workload = [i] {
      return std::make_unique<workload::HotColdStream>(
          32 * sim::kMiB, /*hot_pages=*/1024,
          /*touches=*/60000 + 5000u * static_cast<std::uint64_t>(i),
          /*cold_fraction=*/0.03, sim::Time::from_us(90));
    };
    world.spawn(std::move(job));
  }

  balancer::LoadBalancer::Config cfg;
  cfg.assumed_freeze_seconds = 0.2;  // AMPoM freezes are cheap: be aggressive
  balancer::LoadBalancer lb{world, cfg};
  lb.start();

  world.run();

  stats::Table table{"Cluster run: 10 jobs on node 0, AMPoM migration, greedy balancer",
                     {"job", "home", "final node", "migrations", "freeze total",
                      "finished (s)"}};
  for (const auto& host : world.hosts()) {
    table.add_row({host->label(), stats::Table::integer(host->home_node()),
                   stats::Table::integer(host->current_node()),
                   stats::Table::integer(host->migrations()), host->freeze_total().str(),
                   stats::Table::num(host->finished_at().sec(), 2)});
  }
  table.print(std::cout);
  std::cout << "Makespan " << world.makespan().str() << " with " << lb.decisions()
            << " balancer decisions (" << lb.intra_zone_moves() << " intra-zone, "
            << lb.cross_zone_moves() << " cross-zone) across " << lb.ticks() << " ticks.\n"
            << "With AMPoM's sub-second freezes, spreading a job burst across the\n"
               "cluster costs almost nothing (paper section 7).\n";
  return 0;
}
