// Scheduling-policy study (the paper's §7: "new scheduling policies can
// make use of AMPoM ... to perform more aggressive migrations since the
// performance penalty of suboptimal decisions has been dramatically
// decreased").
//
// A batch of jobs lands on an overloaded node (70 % background load). For
// each job a simple balancer decides whether to migrate it to an idle node,
// comparing the predicted migration cost against the predicted slowdown of
// staying. We run the same decision procedure under two cost models:
// openMosix full-copy (expensive freezes -> conservative decisions) and
// AMPoM (cheap freezes -> aggressive migration), then report per-job and
// total completion times.

#include <iostream>
#include <vector>

#include "driver/builder.hpp"
#include "driver/experiment.hpp"
#include "stats/table.hpp"
#include "workload/hpcc.hpp"

namespace {

using namespace ampom;

struct Job {
  workload::HpccKernel kernel;
  std::uint64_t memory_mib;
  std::uint64_t working_set_mib{0};  // 0 = touches everything
  [[nodiscard]] std::string label() const {
    std::string name = workload::hpcc_kernel_name(kernel);
    if (working_set_mib != 0) {
      name += "(ws " + std::to_string(working_set_mib) + "MB)";
    }
    return name;
  }
};

// Run one job either in place (busy node, no migration) or migrated away.
driver::RunMetrics run_job(const Job& job, bool migrate, driver::Scheme scheme) {
  // Staying: the job keeps running on the loaded node. Emulated by a
  // migration whose destination carries the same background load.
  const driver::Scenario s =
      driver::ScenarioBuilder{}
          .scheme(scheme)
          .workload(job.label(),
                    [job] {
                      if (job.working_set_mib != 0) {
                        return workload::make_small_ws_dgemm(job.memory_mib,
                                                             job.working_set_mib);
                      }
                      return workload::make_hpcc_kernel(job.kernel, job.memory_mib);
                    },
                    job.memory_mib)
          .dest_background_load(migrate ? 0.0 : 0.7)
          .build();
  return driver::run_experiment(s);
}

}  // namespace

int main() {
  const std::vector<Job> jobs = {
      {workload::HpccKernel::Stream, 65, 0},
      {workload::HpccKernel::RandomAccess, 65, 0},
      {workload::HpccKernel::Fft, 65, 0},
      {workload::HpccKernel::Dgemm, 129, 0},
      // Sparse jobs: big allocations, small working sets (paper §5.6) —
      // exactly where the cost models disagree.
      {workload::HpccKernel::Dgemm, 129, 33},
      {workload::HpccKernel::Dgemm, 257, 65},
      {workload::HpccKernel::Dgemm, 257, 33},
  };

  stats::Table table{"Load balancer: migrate-or-stay decisions per cost model",
                     {"job", "size (MB)", "stay (s)", "openMosix move (s)", "AMPoM move (s)",
                      "openMosix verdict", "AMPoM verdict"}};

  double total_om = 0.0;
  double total_am = 0.0;
  for (const Job& job : jobs) {
    // Staying pays no freeze: only the slowed-down execution.
    const double stay = run_job(job, false, driver::Scheme::OpenMosix).exec_time.sec();
    const double om_move = run_job(job, true, driver::Scheme::OpenMosix).total_time.sec();
    const double am_move = run_job(job, true, driver::Scheme::Ampom).total_time.sec();

    const bool om_migrates = om_move < stay;
    const bool am_migrates = am_move < stay;
    total_om += om_migrates ? om_move : stay;
    total_am += am_migrates ? am_move : stay;

    table.add_row({job.label(), stats::Table::integer(job.memory_mib),
                   stats::Table::num(stay, 1),
                   stats::Table::num(om_move, 1), stats::Table::num(am_move, 1),
                   om_migrates ? "migrate" : "stay", am_migrates ? "migrate" : "stay"});
  }
  table.print(std::cout);

  std::cout << "Aggregate job time with openMosix decisions: " << total_om << " s\n"
            << "Aggregate job time with AMPoM decisions:     " << total_am << " s\n"
            << "AMPoM's cheap freezes make migration the winning move more often,\n"
               "cutting aggregate completion time by "
            << stats::Table::percent(1.0 - total_am / total_om) << ".\n";
  return 0;
}
