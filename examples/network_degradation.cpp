// Live adaptation to network performance: while a migrated STREAM process
// is still pulling its pages, the link between the home and destination
// nodes degrades to the paper's broadband profile (6 Mb/s, 2 ms) and later
// recovers. The per-fault trace hook shows the dependent-zone size reacting
// to the measured round-trip time and available bandwidth — the adaptivity
// claims of paper §3.5 and §5.5, live.

#include <iostream>

#include "driver/builder.hpp"
#include "driver/experiment.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"
#include "workload/hpcc.hpp"

int main() {
  using namespace ampom;
  using sim::Time;

  driver::ScenarioBuilder builder;
  builder.scheme(driver::Scheme::Ampom).hpcc_workload(workload::HpccKernel::Stream, 129);

  // Bucket the zone-size trace per second of simulated time.
  struct Bucket {
    stats::Summary zone;
    stats::Summary t0_us;
    stats::Summary td_us;
  };
  std::vector<Bucket> buckets(30);
  // The trace runs inside the simulation; we need the current time, so the
  // setup hook also smuggles out the simulator pointer.
  sim::Simulator* sim_ptr = nullptr;

  // Degrade the migrant/home link 6 s into the run (the paper's broadband
  // profile); restore the testbed link at 14 s.
  const net::LinkParams healthy = driver::gideon300_profile().link;
  builder.on_setup([&sim_ptr, healthy](sim::Simulator& simulator, net::Fabric& fabric) {
    sim_ptr = &simulator;
    simulator.schedule_at(Time::from_sec(6.0), [&fabric] {
      fabric.set_link(0, 1, driver::broadband_link());
    });
    simulator.schedule_at(Time::from_sec(14.0), [&fabric, healthy] {
      fabric.set_link(0, 1, healthy);
    });
  });
  builder.ampom_trace([&](const core::ZoneInputs& in, std::uint64_t n, std::size_t) {
    if (sim_ptr == nullptr) {
      return;
    }
    const auto sec = static_cast<std::size_t>(sim_ptr->now().sec());
    if (sec < buckets.size()) {
      buckets[sec].zone.add(static_cast<double>(n));
      buckets[sec].t0_us.add(in.rtt_one_way.us());
      buckets[sec].td_us.add(in.page_transfer.us());
    }
  });

  const auto m = driver::run_experiment(builder.build());

  stats::Table table{"Dependent-zone size under a mid-run network degradation "
                     "(6 Mb/s + 2 ms between t=6 s and t=14 s)",
                     {"t (s)", "faults", "mean zone N", "mean t0 (us)", "mean td (us)"}};
  for (std::size_t sec = 0; sec < buckets.size(); ++sec) {
    if (buckets[sec].zone.empty()) {
      continue;
    }
    table.add_row({stats::Table::integer(sec), stats::Table::integer(buckets[sec].zone.count()),
                   stats::Table::num(buckets[sec].zone.mean(), 1),
                   stats::Table::num(buckets[sec].t0_us.mean(), 1),
                   stats::Table::num(buckets[sec].td_us.mean(), 1)});
  }
  table.print(std::cout);
  std::cout << "Total time " << m.total_time.str() << ", prevented "
            << stats::Table::percent(m.prevented_fault_fraction())
            << " of fault requests. When the link degrades, the measured t0/td\n"
               "grow and AMPoM sizes the dependent zone for the longer pipeline\n"
               "(paper sections 3.5 and 5.5); when the link recovers, it backs off.\n";
  return 0;
}
