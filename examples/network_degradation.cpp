// Live adaptation to network performance: while a migrated STREAM process
// is still pulling its pages, the link between the home and destination
// nodes degrades to the paper's broadband profile (6 Mb/s, 2 ms) and later
// recovers. The per-fault trace hook shows the dependent-zone size reacting
// to the measured round-trip time and available bandwidth — the adaptivity
// claims of paper §3.5 and §5.5, live.

#include <iostream>

#include "driver/experiment.hpp"
#include "net/traffic_shaper.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"
#include "workload/hpcc.hpp"

int main() {
  using namespace ampom;
  using sim::Time;

  driver::Scenario s;
  s.scheme = driver::Scheme::Ampom;
  s.memory_mib = 129;
  s.workload_label = "STREAM";
  s.make_workload = [] {
    return workload::make_hpcc_kernel(workload::HpccKernel::Stream, 129);
  };

  // Degrade the migrant/home link 6 s into the run; restore at 14 s.
  s.on_setup = [](sim::Simulator& simulator, net::Fabric& fabric) {
    simulator.schedule_at(Time::from_sec(6.0), [&fabric] {
      fabric.set_link(0, 1, net::TrafficShaper::broadband());
    });
    simulator.schedule_at(Time::from_sec(14.0), [&fabric] {
      fabric.set_link(0, 1, net::LinkParams{});
    });
  };

  // Bucket the zone-size trace per second of simulated time.
  struct Bucket {
    stats::Summary zone;
    stats::Summary t0_us;
    stats::Summary td_us;
  };
  std::vector<Bucket> buckets(30);
  // The trace runs inside the simulation; we need the current time, so we
  // capture it via a second hook around the provider inputs.
  sim::Simulator* sim_ptr = nullptr;
  s.on_setup = [&, degrade = s.on_setup](sim::Simulator& simulator, net::Fabric& fabric) {
    sim_ptr = &simulator;
    degrade(simulator, fabric);
  };
  s.ampom_trace = [&](const core::ZoneInputs& in, std::uint64_t n, std::size_t) {
    if (sim_ptr == nullptr) {
      return;
    }
    const auto sec = static_cast<std::size_t>(sim_ptr->now().sec());
    if (sec < buckets.size()) {
      buckets[sec].zone.add(static_cast<double>(n));
      buckets[sec].t0_us.add(in.rtt_one_way.us());
      buckets[sec].td_us.add(in.page_transfer.us());
    }
  };

  const auto m = driver::run_experiment(s);

  stats::Table table{"Dependent-zone size under a mid-run network degradation "
                     "(6 Mb/s + 2 ms between t=6 s and t=14 s)",
                     {"t (s)", "faults", "mean zone N", "mean t0 (us)", "mean td (us)"}};
  for (std::size_t sec = 0; sec < buckets.size(); ++sec) {
    if (buckets[sec].zone.empty()) {
      continue;
    }
    table.add_row({stats::Table::integer(sec), stats::Table::integer(buckets[sec].zone.count()),
                   stats::Table::num(buckets[sec].zone.mean(), 1),
                   stats::Table::num(buckets[sec].t0_us.mean(), 1),
                   stats::Table::num(buckets[sec].td_us.mean(), 1)});
  }
  table.print(std::cout);
  std::cout << "Total time " << m.total_time.str() << ", prevented "
            << stats::Table::percent(m.prevented_fault_fraction())
            << " of fault requests. When the link degrades, the measured t0/td\n"
               "grow and AMPoM sizes the dependent zone for the longer pipeline\n"
               "(paper sections 3.5 and 5.5); when the link recovers, it backs off.\n";
  return 0;
}
