// Quickstart: migrate one 128 MB STREAM-like process with each of the three
// mechanisms and compare freeze time, runtime and fault traffic.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <iostream>

#include "driver/builder.hpp"
#include "driver/experiment.hpp"
#include "stats/table.hpp"
#include "workload/hpcc.hpp"

int main() {
  using namespace ampom;

  stats::Table table{"AMPoM quickstart: migrating a 129 MB STREAM process",
                     {"scheme", "freeze", "total", "fault reqs", "prevented"}};

  for (const driver::Scheme scheme :
       {driver::Scheme::OpenMosix, driver::Scheme::NoPrefetch, driver::Scheme::Ampom}) {
    const driver::Scenario scenario =
        driver::ScenarioBuilder{}
            .scheme(scheme)
            .hpcc_workload(workload::HpccKernel::Stream, 129)
            .build();

    const driver::RunMetrics m = driver::run_experiment(scenario);
    table.add_row({m.scheme, m.freeze_time.str(), m.total_time.str(),
                   stats::Table::integer(m.remote_fault_requests),
                   stats::Table::percent(m.prevented_fault_fraction())});
  }

  table.print(std::cout);
  std::cout << "AMPoM's freeze is near-instant like NoPrefetch, while its runtime\n"
               "stays close to openMosix (which never takes a remote fault).\n";
  return 0;
}
