// Table 1 of the paper: HPCC problem sizes and the resulting process
// memory sizes, plus the page counts our models derive from them.

#include "bench/common.hpp"
#include "mem/page.hpp"

int main(int argc, char** argv) {
  using namespace ampom;
  const bench::Options opts = bench::parse_options(argc, argv);
  bench::SweepRunner runner{opts};

  stats::Table table{"Table 1: problem and memory sizes of HPCC",
                     {"kernel", "problem size", "memory (MB)", "pages", "modeled refs name"}};

  auto add = [&](workload::HpccKernel k, const auto& cases) {
    for (const workload::HpccCase& c : cases) {
      const auto stream = workload::make_hpcc_kernel(k, c.memory_mib);
      table.add_row({workload::hpcc_kernel_name(k), stats::Table::integer(c.problem_size),
                     stats::Table::integer(c.memory_mib),
                     stats::Table::integer(mem::pages_for_mib(c.memory_mib)), stream->name()});
    }
  };
  add(workload::HpccKernel::Dgemm, workload::kDgemmCases);
  add(workload::HpccKernel::Stream, workload::kStreamCases);
  add(workload::HpccKernel::RandomAccess, workload::kRandomAccessCases);
  add(workload::HpccKernel::Fft, workload::kFftCases);

  runner.emit(table);
  return 0;
}
