// Cache ablation: what does cache-aware placement buy over load-only and
// Eq.-3 scoring when destinations tie on load but not on LLC pressure?
//
// Each case builds a 3-node world with the memory hierarchy on and a
// deliberate pressure asymmetry: node 1 hosts a big-WSS resident (~3/4 of
// the LLC), node 2 a small one, so the two destinations tie on load while
// their warm-up costs differ sharply. A 3-job burst on node 0 then forces
// exactly one balancing move (imbalance 2 before, 1 after, threshold 1.5):
//   load   — classic least-loaded pick; the tie breaks to node 1, the
//            pressured cache, and the migrant pays the inflated warm-up;
//   eq3    — the paper's Eq.-3 transfer-cost score; RTTs are symmetric
//            here, so it ties and picks node 1 exactly like load;
//   cache  — the CPMD-aware score sees the pressure and sends the migrant
//            to node 2, so total warm-up charged is strictly lower.
// The sweep varies the migrant's WSS, scaling the absolute CPMD cost the
// policy avoids (migration/cpmd.hpp's calibration curve).
//
// tools/perf_gate --cache-input consumes the --json output, checks the
// strict cache < load warm-up reduction and gates migrations/charges
// against the committed BENCH_cache.json. Grids:
//
//   --quick    1 MiB and 4 MiB migrant WSS   (CI smoke)
//   (default)  quick + 16 MiB
//   --full     default + 64 MiB

#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "balancer/cluster_sim.hpp"
#include "balancer/load_balancer.hpp"
#include "driver/scenario.hpp"
#include "workload/synthetic.hpp"

namespace {

using namespace ampom;

struct PolicyResult {
  std::uint64_t migrations{0};
  double warmup_charged_ms{0.0};
  double warmup_paid_ms{0.0};
  double makespan_sec{0.0};
};

struct CaseResult {
  std::uint64_t wss_kib{0};
  std::uint32_t nodes{0};
  std::uint64_t procs{0};
  std::vector<std::pair<std::string, PolicyResult>> policies;
};

balancer::JobSpec job(const char* label, net::NodeId home, std::uint64_t memory_bytes,
                      std::uint64_t touches, sim::Time start) {
  balancer::JobSpec spec;
  spec.home = home;
  spec.label = label;
  spec.start = start;
  // Hot set: 32 pages keeps even the smallest (1 MiB) sweep point valid —
  // the hot+cold split must fit inside the image's heap pages (a 1 MiB
  // image keeps only ~48 of its 256 pages after code/data/stack).
  spec.make_workload = [memory_bytes, touches] {
    return std::make_unique<workload::HotColdStream>(memory_bytes, /*hot_pages=*/32,
                                                     touches, /*cold_fraction=*/0.05,
                                                     sim::Time::from_us(100));
  };
  return spec;
}

PolicyResult run_policy(std::uint64_t wss_kib, driver::Placement placement) {
  balancer::WorldConfig config;
  config.scheme = driver::Scheme::Ampom;
  config.topology = cluster::Topology::flat(3);
  config.hierarchy.enabled = true;
  balancer::ClusterSim world{config};

  // The contention: a big resident fills most of node 1's LLC, a small one
  // barely touches node 2's. Both run long enough to outlive the burst, so
  // the two destinations stay tied at load 1 when the balancer scans.
  world.spawn(job("big-resident", 1, 24 * sim::kMiB, /*touches=*/120000, sim::Time::zero()));
  world.spawn(job("small-resident", 2, 2 * sim::kMiB, /*touches=*/120000, sim::Time::zero()));

  // The burst: three identical migrants on node 0 (loads 3/1/1, imbalance 2
  // > 1.5); after one move the imbalance is 1 and the balancer goes quiet.
  for (int i = 0; i < 3; ++i) {
    world.spawn(job("migrant", 0, wss_kib * sim::kKiB, /*touches=*/30000,
                    sim::Time::from_ms(25 * i)));
  }

  balancer::LoadBalancer::Config balancer_config;
  balancer_config.assumed_freeze_seconds = 0.2;
  balancer_config.placement = placement;
  balancer::LoadBalancer balancer{world, balancer_config};
  balancer.start();
  world.run();

  PolicyResult result;
  result.makespan_sec = world.makespan().sec();
  for (const auto& host : world.hosts()) {
    result.migrations += host->migrations();
    result.warmup_charged_ms += host->stats().warmup_charged.ms();
    result.warmup_paid_ms += host->stats().warmup_paid.ms();
  }
  return result;
}

CaseResult run_case(std::uint64_t wss_kib) {
  CaseResult result;
  result.wss_kib = wss_kib;
  result.nodes = 3;
  result.procs = 5;
  for (const driver::Placement placement :
       {driver::Placement::kLoad, driver::Placement::kEq3, driver::Placement::kCacheAware}) {
    result.policies.emplace_back(driver::placement_name(placement),
                                 run_policy(wss_kib, placement));
  }
  return result;
}

std::string fmt(double v) {
  std::ostringstream out;
  out.precision(6);
  out << v;
  return out.str();
}

std::string render_json(const std::vector<CaseResult>& results) {
  std::string out = "{\n  \"schema\": 1,\n  \"tool\": \"cache_ablation\",\n  \"cases\": {\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const CaseResult& r = results[i];
    out += "    \"wss" + std::to_string(r.wss_kib) + "k\": {";
    out += "\"wss_kib\": " + std::to_string(r.wss_kib);
    out += ", \"nodes\": " + std::to_string(r.nodes);
    out += ", \"procs\": " + std::to_string(r.procs);
    out += ", \"policies\": {";
    for (std::size_t p = 0; p < r.policies.size(); ++p) {
      const auto& [name, pr] = r.policies[p];
      out += "\"" + name + "\": {";
      out += "\"migrations\": " + std::to_string(pr.migrations);
      out += ", \"warmup_charged_ms\": " + fmt(pr.warmup_charged_ms);
      out += ", \"warmup_paid_ms\": " + fmt(pr.warmup_paid_ms);
      out += ", \"makespan_sec\": " + fmt(pr.makespan_sec);
      out += p + 1 < r.policies.size() ? "}, " : "}";
    }
    out += "}";
    out += i + 1 < results.size() ? "},\n" : "}\n";
  }
  out += "  }\n}\n";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool full = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--full") {
      full = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: " << argv[0] << " [--quick|--full] [--json=FILE]\n";
      return 0;
    } else {
      std::cerr << "unknown option: " << arg << "\n";
      return 2;
    }
  }

  std::vector<std::uint64_t> grid = {1024, 4096};
  if (!quick) {
    grid.push_back(16384);
  }
  if (full) {
    grid.push_back(65536);
  }

  std::vector<CaseResult> results;
  for (const std::uint64_t wss_kib : grid) {
    const CaseResult r = run_case(wss_kib);
    std::cout << "wss" << r.wss_kib << "k:";
    for (const auto& [name, pr] : r.policies) {
      std::cout << "  " << name << " charged " << fmt(pr.warmup_charged_ms) << " ms ("
                << pr.migrations << " moves)";
    }
    std::cout << "\n";
    results.push_back(r);
  }

  const std::string json = render_json(results);
  if (!json_path.empty()) {
    std::ofstream out{json_path, std::ios::binary};
    if (!out) {
      std::cerr << "cannot write " << json_path << "\n";
      return 2;
    }
    out << json;
  } else {
    std::cout << json;
  }
  return 0;
}
