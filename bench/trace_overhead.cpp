// Trace overhead: what does Scenario::trace cost?
//
// Runs the same STREAM cell three ways — tracing off, tracing on, tracing
// on without the scheduler sampler — timing each wall-clock (best of
// several repetitions) and cross-checking that the simulated results are
// bit-identical in all three: the recorder observes the run, it must never
// steer it. Exits nonzero if the off/on metrics diverge (a determinism
// bug); the timing rows document the <5 % target for the enabled path and
// the ~zero cost of the disabled one.

#include <chrono>
#include <iostream>

#include "bench/common.hpp"
#include "driver/runner.hpp"

namespace {

using namespace ampom;

struct Timed {
  driver::RunMetrics metrics;
  double best_ms{0.0};
  std::uint64_t events{0};
};

Timed time_scenario(const driver::Scenario& s, int reps) {
  Timed t;
  for (int i = 0; i < reps; ++i) {
    driver::Runner runner;
    // ampom-lint: nondet-ok(wall-clock overhead is the quantity this bench measures)
    const auto begin = std::chrono::steady_clock::now();
    t.metrics = runner.run(s);
    // ampom-lint: nondet-ok(wall-clock overhead is the quantity this bench measures)
    const auto end = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(end - begin).count();
    if (i == 0 || ms < t.best_ms) {
      t.best_ms = ms;
    }
    t.events = runner.trace()->events().size();
  }
  return t;
}

// The simulated quantities that must not move when tracing flips on.
bool identical(const driver::RunMetrics& a, const driver::RunMetrics& b) {
  return a.total_time == b.total_time && a.freeze_time == b.freeze_time &&
         a.cpu_time == b.cpu_time && a.stall_time == b.stall_time &&
         a.hard_faults == b.hard_faults && a.soft_faults == b.soft_faults &&
         a.pages_arrived == b.pages_arrived && a.pages_migrated == b.pages_migrated &&
         a.remote_fault_requests == b.remote_fault_requests &&
         a.prefetch_pages_issued == b.prefetch_pages_issued &&
         a.bytes_freeze == b.bytes_freeze && a.bytes_paging == b.bytes_paging &&
         a.refs_consumed == b.refs_consumed;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opts = bench::parse_options(argc, argv);
  // Wall-clock timing: the repetitions stay serial on purpose (--jobs would
  // make them contend for cores and corrupt the measurement).
  bench::SweepRunner runner{opts};
  const auto kernel = workload::HpccKernel::Stream;
  const std::uint64_t mib = bench::kernel_sizes(kernel, opts.quick).back();
  const int reps = opts.quick ? 5 : 9;

  const driver::Scenario off =
      bench::cell_builder(kernel, mib, driver::Scheme::Ampom).build();

  trace::TraceConfig on_cfg;
  on_cfg.enabled = true;
  const driver::Scenario on =
      bench::cell_builder(kernel, mib, driver::Scheme::Ampom).trace(on_cfg).build();

  trace::TraceConfig no_sampler_cfg = on_cfg;
  no_sampler_cfg.sched_sample_period = sim::Time::zero();
  const driver::Scenario on_no_sampler =
      bench::cell_builder(kernel, mib, driver::Scheme::Ampom).trace(no_sampler_cfg).build();

  (void)time_scenario(off, 1);  // warm caches before timing anything

  const Timed t_off = time_scenario(off, reps);
  const Timed t_on = time_scenario(on, reps);
  const Timed t_on_ns = time_scenario(on_no_sampler, reps);

  const double on_overhead = t_off.best_ms > 0.0 ? t_on.best_ms / t_off.best_ms - 1.0 : 0.0;
  const double ns_overhead = t_off.best_ms > 0.0 ? t_on_ns.best_ms / t_off.best_ms - 1.0 : 0.0;

  stats::Table table{"Trace overhead: STREAM " + std::to_string(mib) + " MB, AMPoM, best of " +
                         std::to_string(reps),
                     {"tracing", "wall (ms)", "events", "overhead", "same results"}};
  table.add_row({"off", stats::Table::num(t_off.best_ms, 1), "0", "-", "(baseline)"});
  table.add_row({"on", stats::Table::num(t_on.best_ms, 1),
                 stats::Table::integer(t_on.events), stats::Table::percent(on_overhead),
                 identical(t_off.metrics, t_on.metrics) ? "yes" : "NO"});
  table.add_row({"on, no sched sampler", stats::Table::num(t_on_ns.best_ms, 1),
                 stats::Table::integer(t_on_ns.events), stats::Table::percent(ns_overhead),
                 identical(t_off.metrics, t_on_ns.metrics) ? "yes" : "NO"});
  runner.emit(table);

  if (!identical(t_off.metrics, t_on.metrics) ||
      !identical(t_off.metrics, t_on_ns.metrics)) {
    std::cerr << "FAIL: enabling tracing changed the simulated results\n";
    return 1;
  }
  std::cout << "Tracing observed " << t_on.events
            << " events without moving a single simulated quantity.\n"
            << "Target: <5% wall-clock overhead enabled, ~0% disabled.\n";
  return 0;
}
