// Figure 6: total execution time of HPCC under the three migration
// mechanisms (freeze + post-migration run, as in the paper's Figs. 6/10).
//
// Paper reference points (largest runs, relative to openMosix):
//   NoPrefetch: +35 % (DGEMM), +51 % (STREAM), +20 % (RandomAccess),
//               +41 % (FFT);
//   AMPoM:      within 0-5 % of openMosix (RandomAccess worst at +4 %).

#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace ampom;
  const bench::Options opts = bench::parse_options(argc, argv);
  bench::SweepRunner runner{opts};

  for (const auto kernel : bench::kAllKernels) {
    bench::SweepSpec spec{
        std::string("Fig. 6: total execution time (s) - ") + workload::hpcc_kernel_name(kernel),
        {"size (MB)", "AMPoM", "openMosix", "NoPrefetch", "AMPoM vs oM", "NoPf vs oM"}};
    for (const std::uint64_t mib : bench::kernel_sizes(kernel, opts.quick)) {
      spec.add_case({bench::cell(kernel, mib, driver::Scheme::Ampom),
                     bench::cell(kernel, mib, driver::Scheme::OpenMosix),
                     bench::cell(kernel, mib, driver::Scheme::NoPrefetch)},
                    [mib](std::span<const driver::RunMetrics> m) -> bench::SweepSpec::Row {
                      const double am = m[0].total_time.sec();
                      const double om = m[1].total_time.sec();
                      const double np = m[2].total_time.sec();
                      return {stats::Table::integer(mib), stats::Table::num(am, 2),
                              stats::Table::num(om, 2), stats::Table::num(np, 2),
                              stats::Table::percent(am / om - 1.0),
                              stats::Table::percent(np / om - 1.0)};
                    });
    }
    runner.run(spec);
  }
  return 0;
}
