// Figure 6: total execution time of HPCC under the three migration
// mechanisms (freeze + post-migration run, as in the paper's Figs. 6/10).
//
// Paper reference points (largest runs, relative to openMosix):
//   NoPrefetch: +35 % (DGEMM), +51 % (STREAM), +20 % (RandomAccess),
//               +41 % (FFT);
//   AMPoM:      within 0-5 % of openMosix (RandomAccess worst at +4 %).

#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace ampom;
  const bench::Options opts = bench::parse_options(argc, argv);

  for (const auto kernel : bench::kAllKernels) {
    stats::Table table{
        std::string("Fig. 6: total execution time (s) - ") + workload::hpcc_kernel_name(kernel),
        {"size (MB)", "AMPoM", "openMosix", "NoPrefetch", "AMPoM vs oM", "NoPf vs oM"}};
    for (const std::uint64_t mib : bench::kernel_sizes(kernel, opts.quick)) {
      double total[3] = {};
      for (const auto scheme : bench::kAllSchemes) {
        total[static_cast<int>(scheme)] =
            bench::run_cell(kernel, mib, scheme).total_time.sec();
      }
      const double om = total[static_cast<int>(driver::Scheme::OpenMosix)];
      const double am = total[static_cast<int>(driver::Scheme::Ampom)];
      const double np = total[static_cast<int>(driver::Scheme::NoPrefetch)];
      table.add_row({stats::Table::integer(mib), stats::Table::num(am, 2),
                     stats::Table::num(om, 2), stats::Table::num(np, 2),
                     stats::Table::percent(am / om - 1.0),
                     stats::Table::percent(np / om - 1.0)});
    }
    bench::emit(table, opts);
  }
  return 0;
}
