// Ablation of the §7 extension: partitioned lookback windows for migrants
// that interleave many independent sequential streams (the VM-migration
// scenario). With k streams and a single window, the fault stream shows
// stride-k patterns — invisible once k exceeds dmax — and the single-window
// algorithm degrades to the read-ahead floor. Per-partition windows see
// each stream as purely sequential.

#include "bench/common.hpp"
#include "workload/synthetic.hpp"

int main(int argc, char** argv) {
  using namespace ampom;
  const bench::Options opts = bench::parse_options(argc, argv);
  bench::SweepRunner runner{opts};
  const sim::Bytes memory = (opts.quick ? 16 : 65) * sim::kMiB;

  bench::SweepSpec spec{"Ablation: window partitions vs interleaved stream count (dmax = 4)",
                        {"streams", "partitions", "fault reqs", "prevented", "total (s)"}};
  for (const std::uint64_t streams : {2u, 4u, 8u, 16u}) {
    for (const std::size_t partitions : {1u, 16u}) {
      spec.add_case(
          [memory, streams, partitions] {
            driver::Scenario s;
            s.scheme = driver::Scheme::Ampom;
            s.memory_mib = memory / sim::kMiB;
            s.workload_label = "interleaved";
            s.make_workload = [memory, streams] {
              return std::make_unique<workload::InterleavedStream>(memory, streams,
                                                                   sim::Time::from_us(15));
            };
            s.ampom.window_partitions = partitions;
            return s;
          },
          [streams, partitions](const driver::RunMetrics& m) -> bench::SweepSpec::Row {
            return {stats::Table::integer(streams), stats::Table::integer(partitions),
                    stats::Table::integer(m.remote_fault_requests),
                    stats::Table::percent(m.prevented_fault_fraction()),
                    stats::Table::num(m.total_time.sec(), 2)};
          });
    }
  }
  runner.run(spec);
  return 0;
}
