// Ablation: the dependent-zone cap (and the read-ahead floor). Eq. 3 is
// unbounded when the paging rate spikes; the cap bounds burstiness. The
// floor is the Linux-style read-ahead baseline that keeps RandomAccess
// partially prefetched (§5.3).

#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace ampom;
  const bench::Options opts = bench::parse_options(argc, argv);
  bench::SweepRunner runner{opts};
  const std::uint64_t mib = opts.quick ? 33 : 129;

  bench::SweepSpec cap_spec{"Ablation: zone cap (default 256)",
                            {"kernel", "cap", "prevented", "zone/fault", "total (s)"}};
  for (const auto kernel : {workload::HpccKernel::Stream, workload::HpccKernel::Dgemm}) {
    for (const std::uint64_t cap : {16u, 64u, 256u, 1024u}) {
      cap_spec.add_case(
          [kernel, mib, cap] {
            driver::Scenario s = bench::make_scenario(kernel, mib, driver::Scheme::Ampom);
            s.ampom.zone_cap = cap;
            return s;
          },
          [kernel, cap](const driver::RunMetrics& m) -> bench::SweepSpec::Row {
            return {workload::hpcc_kernel_name(kernel), stats::Table::integer(cap),
                    stats::Table::percent(m.prevented_fault_fraction()),
                    stats::Table::num(m.prefetched_per_fault(), 1),
                    stats::Table::num(m.total_time.sec(), 2)};
          });
    }
  }
  runner.run(cap_spec);

  bench::SweepSpec floor_spec{"Ablation: read-ahead floor min_zone (default 8)",
                              {"floor", "RandomAccess prevented", "RandomAccess total (s)"}};
  for (const std::uint64_t floor : {0u, 2u, 4u, 8u, 16u, 32u}) {
    floor_spec.add_case(
        [mib, floor] {
          driver::Scenario s = bench::make_scenario(workload::HpccKernel::RandomAccess, mib,
                                                    driver::Scheme::Ampom);
          s.ampom.min_zone = floor;
          return s;
        },
        [floor](const driver::RunMetrics& m) -> bench::SweepSpec::Row {
          return {stats::Table::integer(floor),
                  stats::Table::percent(m.prevented_fault_fraction()),
                  stats::Table::num(m.total_time.sec(), 2)};
        });
  }
  runner.run(floor_spec);
  return 0;
}
