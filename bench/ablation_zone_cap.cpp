// Ablation: the dependent-zone cap (and the read-ahead floor). Eq. 3 is
// unbounded when the paging rate spikes; the cap bounds burstiness. The
// floor is the Linux-style read-ahead baseline that keeps RandomAccess
// partially prefetched (§5.3).

#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace ampom;
  const bench::Options opts = bench::parse_options(argc, argv);
  const std::uint64_t mib = opts.quick ? 33 : 129;

  stats::Table cap_table{"Ablation: zone cap (default 256)",
                         {"kernel", "cap", "prevented", "zone/fault", "total (s)"}};
  for (const auto kernel : {workload::HpccKernel::Stream, workload::HpccKernel::Dgemm}) {
    for (const std::uint64_t cap : {16u, 64u, 256u, 1024u}) {
      driver::Scenario s = bench::make_scenario(kernel, mib, driver::Scheme::Ampom);
      s.ampom.zone_cap = cap;
      const auto m = run_experiment(s);
      cap_table.add_row({workload::hpcc_kernel_name(kernel), stats::Table::integer(cap),
                         stats::Table::percent(m.prevented_fault_fraction()),
                         stats::Table::num(m.prefetched_per_fault(), 1),
                         stats::Table::num(m.total_time.sec(), 2)});
    }
  }
  bench::emit(cap_table, opts);

  stats::Table floor_table{"Ablation: read-ahead floor min_zone (default 8)",
                           {"floor", "RandomAccess prevented", "RandomAccess total (s)"}};
  for (const std::uint64_t floor : {0u, 2u, 4u, 8u, 16u, 32u}) {
    driver::Scenario s =
        bench::make_scenario(workload::HpccKernel::RandomAccess, mib, driver::Scheme::Ampom);
    s.ampom.min_zone = floor;
    const auto m = run_experiment(s);
    floor_table.add_row({stats::Table::integer(floor),
                         stats::Table::percent(m.prevented_fault_fraction()),
                         stats::Table::num(m.total_time.sec(), 2)});
  }
  bench::emit(floor_table, opts);
  return 0;
}
