// The paper's abstract in one table: on the largest HPCC runs,
//   (1) AMPoM avoids ~98 % of the migration freeze time,
//   (2) prevents 85-99 % of page-fault requests,
//   (3) adds only 0-5 % runtime over openMosix,
//   (4) wins outright when the working set is smaller than the allocation.

#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace ampom;
  const bench::Options opts = bench::parse_options(argc, argv);
  bench::SweepRunner runner{opts};

  bench::SweepSpec spec{"Headline claims (largest runs per kernel)",
                        {"kernel", "size (MB)", "freeze avoided", "faults prevented",
                         "runtime vs openMosix"}};
  for (const auto kernel : bench::kAllKernels) {
    const std::uint64_t mib = bench::kernel_sizes(kernel, opts.quick).back();
    spec.add_case({bench::cell(kernel, mib, driver::Scheme::OpenMosix),
                   bench::cell(kernel, mib, driver::Scheme::Ampom)},
                  [kernel, mib](std::span<const driver::RunMetrics> m) -> bench::SweepSpec::Row {
                    const driver::RunMetrics& om = m[0];
                    const driver::RunMetrics& am = m[1];
                    return {workload::hpcc_kernel_name(kernel), stats::Table::integer(mib),
                            stats::Table::percent(1.0 - am.freeze_time / om.freeze_time),
                            stats::Table::percent(am.prevented_fault_fraction()),
                            stats::Table::percent(am.total_time / om.total_time - 1.0)};
                  });
  }
  runner.run(spec);

  // Claim (4): small working set (quarter of the allocation).
  const std::uint64_t alloc = opts.quick ? 129 : 575;
  const std::uint64_t ws = opts.quick ? 33 : 115;
  auto ws_cell = [alloc, ws](driver::Scheme scheme) -> bench::SweepSpec::ScenarioFn {
    return [alloc, ws, scheme] {
      driver::Scenario s;
      s.scheme = scheme;
      s.memory_mib = alloc;
      s.workload_label = "DGEMM-ws";
      s.make_workload = [alloc, ws] { return workload::make_small_ws_dgemm(alloc, ws); };
      return s;
    };
  };
  bench::SweepSpec small{"Small working set: DGEMM allocating " + std::to_string(alloc) +
                             " MB, touching " + std::to_string(ws) + " MB",
                         {"scheme", "total (s)", "pages moved"}};
  for (const auto scheme : {driver::Scheme::OpenMosix, driver::Scheme::Ampom}) {
    small.add_case(ws_cell(scheme), [](const driver::RunMetrics& m) -> bench::SweepSpec::Row {
      return {m.scheme, stats::Table::num(m.total_time.sec(), 2),
              stats::Table::integer(m.pages_arrived + m.pages_migrated)};
    });
  }
  runner.run(small);
  return 0;
}
