// The paper's abstract in one table: on the largest HPCC runs,
//   (1) AMPoM avoids ~98 % of the migration freeze time,
//   (2) prevents 85-99 % of page-fault requests,
//   (3) adds only 0-5 % runtime over openMosix,
//   (4) wins outright when the working set is smaller than the allocation.

#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace ampom;
  const bench::Options opts = bench::parse_options(argc, argv);

  stats::Table table{"Headline claims (largest runs per kernel)",
                     {"kernel", "size (MB)", "freeze avoided", "faults prevented",
                      "runtime vs openMosix"}};
  for (const auto kernel : bench::kAllKernels) {
    const auto sizes = bench::kernel_sizes(kernel, opts.quick);
    const std::uint64_t mib = sizes.back();
    const auto om = bench::run_cell(kernel, mib, driver::Scheme::OpenMosix);
    const auto am = bench::run_cell(kernel, mib, driver::Scheme::Ampom);
    table.add_row(
        {workload::hpcc_kernel_name(kernel), stats::Table::integer(mib),
         stats::Table::percent(1.0 - am.freeze_time / om.freeze_time),
         stats::Table::percent(am.prevented_fault_fraction()),
         stats::Table::percent(am.total_time / om.total_time - 1.0)});
  }
  bench::emit(table, opts);

  // Claim (4): small working set (quarter of the allocation).
  const std::uint64_t alloc = opts.quick ? 129 : 575;
  const std::uint64_t ws = opts.quick ? 33 : 115;
  stats::Table small{"Small working set: DGEMM allocating " + std::to_string(alloc) +
                         " MB, touching " + std::to_string(ws) + " MB",
                     {"scheme", "total (s)", "pages moved"}};
  for (const auto scheme : {driver::Scheme::OpenMosix, driver::Scheme::Ampom}) {
    driver::Scenario s;
    s.scheme = scheme;
    s.memory_mib = alloc;
    s.workload_label = "DGEMM-ws";
    s.make_workload = [alloc, ws] { return workload::make_small_ws_dgemm(alloc, ws); };
    const auto m = driver::run_experiment(s);
    small.add_row({m.scheme, stats::Table::num(m.total_time.sec(), 2),
                   stats::Table::integer(m.pages_arrived + m.pages_migrated)});
  }
  bench::emit(small, opts);
  return 0;
}
