// Figure 8: prefetched pages per page fault — AMPoM's aggressiveness as a
// function of the kernel's locality and paging rate.
//
// Paper shape: STREAM prefetches by far the most per fault (sequential,
// memory-bound), DGEMM/FFT considerably less (more compute per page ->
// lower paging rate), RandomAccess the least (the read-ahead baseline).

#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace ampom;
  const bench::Options opts = bench::parse_options(argc, argv);

  stats::Table table{"Fig. 8: prefetched pages per page fault (AMPoM)",
                     {"kernel", "size (MB)", "zone/fault", "prefetch pages", "faults",
                      "last S"}};
  for (const auto kernel : bench::kAllKernels) {
    for (const std::uint64_t mib : bench::kernel_sizes(kernel, opts.quick)) {
      const auto m = bench::run_cell(kernel, mib, driver::Scheme::Ampom);
      table.add_row({workload::hpcc_kernel_name(kernel), stats::Table::integer(mib),
                     stats::Table::num(m.prefetched_per_fault(), 1),
                     stats::Table::integer(m.prefetch_pages_issued),
                     stats::Table::integer(m.ampom_faults_seen),
                     stats::Table::num(m.last_locality_score, 3)});
    }
  }
  bench::emit(table, opts);
  return 0;
}
