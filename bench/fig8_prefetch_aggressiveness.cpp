// Figure 8: prefetched pages per page fault — AMPoM's aggressiveness as a
// function of the kernel's locality and paging rate.
//
// Paper shape: STREAM prefetches by far the most per fault (sequential,
// memory-bound), DGEMM/FFT considerably less (more compute per page ->
// lower paging rate), RandomAccess the least (the read-ahead baseline).

#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace ampom;
  const bench::Options opts = bench::parse_options(argc, argv);
  bench::SweepRunner runner{opts};

  bench::SweepSpec spec{"Fig. 8: prefetched pages per page fault (AMPoM)",
                        {"kernel", "size (MB)", "zone/fault", "prefetch pages", "faults",
                         "last S"}};
  for (const auto kernel : bench::kAllKernels) {
    for (const std::uint64_t mib : bench::kernel_sizes(kernel, opts.quick)) {
      spec.add_case(bench::cell(kernel, mib, driver::Scheme::Ampom),
                    [kernel, mib](const driver::RunMetrics& m) -> bench::SweepSpec::Row {
                      return {workload::hpcc_kernel_name(kernel), stats::Table::integer(mib),
                              stats::Table::num(m.prefetched_per_fault(), 1),
                              stats::Table::integer(m.prefetch_pages_issued),
                              stats::Table::integer(m.ampom_faults_seen),
                              stats::Table::num(m.last_locality_score, 3)};
                    });
    }
  }
  runner.run(spec);
  return 0;
}
